module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf

type t = {
  ctrl : Controller.t;
  mutable policy : Packet.t -> Controller.nf;
  punt_cookie : int;
  mutable sub : Controller.subscription option;
  pins : (Flow.key * string) Flow.Table.t;  (* canonical key -> pin *)
  pins_sorted : (Flow.key, string) Opennf_util.Omap.t;
      (* Ordered mirror of [pins]: [pinned_flows] walks it in key order
         instead of sorting the whole pin set on every call. *)
}

let pin_priority = 120
(* Above the base route, below any move's rules. *)

let on_packet_in t (p : Packet.t) =
  let k = Flow.canonical p.Packet.key in
  if not (Flow.Table.mem t.pins k) then begin
    let nf = t.policy p in
    let name = Controller.nf_name nf in
    Flow.Table.replace t.pins k (k, name);
    Opennf_util.Omap.set t.pins_sorted k name;
    let cookie = Controller.fresh_cookie t.ctrl in
    Controller.install_rule t.ctrl ~cookie ~priority:pin_priority
      ~filters:[ Filter.of_key k; Filter.of_key (Flow.reverse k) ]
      ~actions:[ Flowtable.Forward name ];
    (* Send the triggering packet along so it is not lost while the rule
       installs; subsequent packets may still punt until then and are
       forwarded the same way (possible mild reordering — inherent to
       this baseline). *)
    Controller.packet_out t.ctrl ~port:name p
  end
  else begin
    let _, name = Flow.Table.find t.pins k in
    Controller.packet_out t.ctrl ~port:name p
  end

let start ctrl ~policy ?(filter = Filter.any) () =
  let punt_cookie = Controller.fresh_cookie ctrl in
  let t =
    {
      ctrl;
      policy;
      punt_cookie;
      sub = None;
      pins = Flow.Table.create 256;
      pins_sorted = Opennf_util.Omap.create ~cmp:Flow.compare;
    }
  in
  t.sub <- Some (Controller.subscribe_packet_in ctrl filter (on_packet_in t));
  let filters =
    if Filter.is_symmetric filter then [ filter ]
    else [ filter; Filter.mirror filter ]
  in
  Controller.install_rule ctrl ~cookie:punt_cookie
    ~priority:Controller.base_priority ~filters
    ~actions:[ Flowtable.To_controller ];
  Controller.barrier ctrl;
  t

let set_policy t policy = t.policy <- policy

(* In-order walk of the maintained mirror — same output as sorting the
   pin set by key, without the per-call sort. *)
let pinned_flows t =
  Opennf_util.Omap.fold_desc (fun k name acc -> (k, name) :: acc) t.pins_sorted []

let pinned_on t nf =
  let name = Controller.nf_name nf in
  Flow.Table.fold
    (fun _ (_, n) acc -> if n = name then acc + 1 else acc)
    t.pins 0

let stop t =
  Option.iter (Controller.unsubscribe t.ctrl) t.sub;
  t.sub <- None;
  Controller.remove_rule t.ctrl ~cookie:t.punt_cookie;
  Controller.barrier t.ctrl
