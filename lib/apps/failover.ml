module Proc = Opennf_sim.Proc
module Scope = Opennf_state.Scope
module Backend = Opennf_state.Backend
open Opennf_net
open Opennf

(* Two ways to keep the standby warm. [Copy] is the paper's Figure 9:
   notify triggers drive bulk copy_op refreshes through the controller.
   [Replicated] is the FlexState rebase: the instances were built over a
   replicated backend pair, the delta stream keeps the standby fresh on
   every packet, and recovery is promote + reroute. The copy-based path
   is retained as the oracle the backend bench compares against. *)
type mode =
  | Copy
  | Replicated of { standby_backend : Backend.t }

type t = {
  ctrl : Controller.t;
  sched : Sched.t option;
  normal : Controller.nf;
  standby : Controller.nf;
  mode : mode;
  mutable handles : Notify.handle list;
  mutable refreshes : int;
  mutable bulk_bytes : int;  (* get/put copy traffic (seed + refreshes) *)
  mutable refreshing : Flow.Set.t;  (* Coalesce concurrent refreshes. *)
  mutable recovered_at : float option;
}

(* Refresh copies are independent background work; with a scheduler they
   queue behind conflicting moves instead of racing them. *)
let copy t ~filter ~scope =
  match t.sched with
  | None ->
    Copy_op.run t.ctrl ~src:t.normal ~dst:t.standby ~filter ~scope ()
  | Some s ->
    Proc.Ivar.read
      (Copy_op.submit s ~src:t.normal ~dst:t.standby ~filter ~scope ())

(* Copy the per-flow state for the event packet's flow to the standby
   (Figure 9, updateStandby); SYN/RST packets also update multi-flow
   counters, so refresh the source host's multi-flow state alongside —
   that is what keeps "all per-flow and multi-flow state" eventually
   consistent (§2.1). *)
let update_standby t (p : Packet.t) =
  let key = Flow.canonical p.Packet.key in
  if not (Flow.Set.mem key t.refreshing) then begin
    t.refreshing <- Flow.Set.add key t.refreshing;
    let host_filter = Filter.of_src_host p.Packet.key.Flow.src_ip in
    let touches_counters = Packet.has_flag p Syn || Packet.has_flag p Rst in
    Proc.spawn (Controller.engine t.ctrl) (fun () ->
        (* A refresh racing the primary's death must not take the app
           down: a failed copy is simply skipped (the standby keeps its
           previous, eventually-consistent snapshot). *)
        (match copy t ~filter:(Filter.of_key key) ~scope:[ Scope.Per ] with
        | Ok r1 ->
          t.bulk_bytes <- t.bulk_bytes + r1.Copy_op.state_bytes;
          if touches_counters then begin
            match copy t ~filter:host_filter ~scope:[ Scope.Multi ] with
            | Ok r2 -> t.bulk_bytes <- t.bulk_bytes + r2.Copy_op.state_bytes
            | Error _ -> ()
          end;
          t.refreshes <- t.refreshes + 1
        | Error _ -> ());
        t.refreshing <- Flow.Set.remove key t.refreshing)
  end

let detect_mode ~normal ~standby =
  match (Controller.backend_of normal, Controller.backend_of standby) with
  | Some pb, Some sb when Backend.replica_pair ~primary:pb ~standby:sb ->
    Replicated { standby_backend = sb }
  | _ -> Copy

let init_standby ctrl ?sched ~normal ~standby
    ?(local_net = Ipaddr.Prefix.of_string "10.0.0.0/8") () =
  let mode = detect_mode ~normal ~standby in
  let t =
    {
      ctrl;
      sched;
      normal;
      standby;
      mode;
      handles = [];
      refreshes = 0;
      bulk_bytes = 0;
      refreshing = Flow.Set.empty;
      recovered_at = None;
    }
  in
  (match mode with
  | Replicated _ ->
    (* The delta stream already refreshes per-flow and per-host state on
       every processed packet; there is nothing to trigger or to seed. *)
    ()
  | Copy ->
    let triggers =
      [
        (* notify({nw_proto: TCP, tcp_flags: SYN}) *)
        Filter.make ~proto:Flow.Tcp ~tcp_flag:Packet.Syn ();
        (* notify({nw_proto: TCP, tcp_flags: RST}) *)
        Filter.make ~proto:Flow.Tcp ~tcp_flag:Packet.Rst ();
        (* notify({nw_src: 10.0.0.0/8, nw_proto: TCP, tp_dst: 80}) *)
        Filter.make ~src:local_net ~proto:Flow.Tcp ~dst_port:80 ();
      ]
    in
    t.handles <-
      List.map
        (fun filter ->
          match Notify.enable ?sched ctrl normal filter (update_standby t) with
          | Ok h -> h
          | Error e -> raise (Op_error.Op_failed e))
        triggers;
    (* Seed the standby's multi-flow state once; SYN/RST notifications
       keep the relevant parts fresh afterwards. *)
    Proc.spawn (Controller.engine ctrl) (fun () ->
        match copy t ~filter:Filter.any ~scope:[ Scope.Multi; Scope.All ] with
        | Ok r -> t.bulk_bytes <- t.bulk_bytes + r.Copy_op.state_bytes
        | Error _ -> ()));
  t

let fail_over t ~filter =
  (match t.mode with
  | Replicated { standby_backend } ->
    (* Promote first: frames still in flight from the dead primary must
       not rewrite state the standby now owns. *)
    Backend.promote standby_backend
  | Copy -> ());
  Controller.set_route t.ctrl filter t.standby;
  if t.recovered_at = None then
    t.recovered_at <- Some (Opennf_sim.Engine.now (Controller.engine t.ctrl))

let stop t =
  List.iter (Notify.disable t.ctrl) t.handles;
  t.handles <- []

(* Close the loop with the controller's liveness monitor: the instant
   the primary is declared dead, reroute to the standby and stop the
   (now pointless) refresh notifications. *)
let enable_auto t ~filter =
  Controller.on_nf_death t.ctrl (fun name ->
      if String.equal name (Controller.nf_name t.normal) then begin
        fail_over t ~filter;
        stop t
      end)

let replicated t = match t.mode with Replicated _ -> true | Copy -> false
let refreshes t = t.refreshes
let bulk_bytes t = t.bulk_bytes

let delta_bytes t =
  match t.mode with
  | Copy -> 0
  | Replicated { standby_backend } -> Backend.delta_bytes standby_backend

let bytes_transferred t = t.bulk_bytes + delta_bytes t
let recovered_at t = t.recovered_at
