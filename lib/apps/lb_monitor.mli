(** High-performance network monitoring (Figure 8 of the paper).

    Balances local network prefixes across IDS instances. Reassigning a
    prefix runs the paper's [movePrefix]: copy the scan-detection
    multi-flow state, then a loss-free move of the per-flow state for
    all active flows in the prefix. Multi-flow state stays eventually
    consistent by copying it in both directions every [sync_period]. *)

open Opennf_net
open Opennf

type t

val create :
  Controller.t ->
  ?sched:Sched.t ->
  instances:(Controller.nf * Ipaddr.Prefix.t list) list ->
  ?sync_period:float ->
  unit ->
  t
(** Blocking: installs the initial prefix→instance routes. The periodic
    multi-flow synchronization loops start at the first reassignment
    (pairs that never exchanged a prefix have nothing to keep
    consistent). [sync_period] defaults to 60 s, as in Figure 8. With
    [sched], prefix moves and sync copies are admitted through the
    scheduler: moves of disjoint prefixes overlap, while operations on
    the same prefix or instance pair serialize. *)

val move_prefix : t -> Ipaddr.Prefix.t -> to_:Controller.nf -> Move.report
(** Blocking: the paper's [movePrefix(prefix, oldInst, newInst)]. *)

val assignment : t -> (string * Ipaddr.Prefix.t list) list
val syncs_performed : t -> int
val stop : t -> unit
(** Cancel the periodic synchronization loops. *)
