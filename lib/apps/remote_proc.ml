module Proc = Opennf_sim.Proc
module Scope = Opennf_state.Scope
open Opennf_net
open Opennf

type t = {
  ctrl : Controller.t;
  sched : Sched.t option;
  cloud : Controller.nf;
  mutable offloaded : Flow.key list;  (* Newest first. *)
  mutable in_flight : Flow.Set.t;
}

let on_alert t local_nf alert =
  match (alert : Opennf_nfs.Ids.alert) with
  | Outdated_browser { flow; _ } ->
    if not (Flow.Set.mem flow t.in_flight || List.mem flow t.offloaded) then begin
      t.in_flight <- Flow.Set.add flow t.in_flight;
      Proc.spawn (Controller.engine t.ctrl) (fun () ->
          (* move(locInst, cloudInst, flowid, perflow, lossfree) — §6. *)
          let spec =
            Move.spec ~src:local_nf ~dst:t.cloud ~filter:(Filter.of_key flow)
              ~scope:[ Scope.Per ] ~guarantee:Move.Loss_free ~parallel:true ()
          in
          let result =
            match t.sched with
            | None -> Move.run t.ctrl spec
            | Some s -> Proc.Ivar.read (Move.submit s spec)
          in
          (match result with
          | Ok _ -> ()
          | Error e -> raise (Op_error.Op_failed e));
          t.in_flight <- Flow.Set.remove flow t.in_flight;
          t.offloaded <- flow :: t.offloaded)
    end
  | Port_scan _ | Malware _ | Weird _ -> ()

let start ctrl ?sched ~local ~cloud () =
  let t = { ctrl; sched; cloud; offloaded = []; in_flight = Flow.Set.empty } in
  List.iter
    (fun (nf, ids) -> Opennf_nfs.Ids.on_alert ids (on_alert t nf))
    local;
  t

let offloaded t = List.rev t.offloaded
let offload_count t = List.length t.offloaded
