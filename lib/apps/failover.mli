(** Fast failure recovery (Figure 9 of the paper).

    Maintains a hot standby with an eventually consistent copy of
    another instance's state. Rather than re-copying everything
    periodically, the standby is refreshed when packets that matter for
    the NF's analyses are processed: TCP SYN, TCP RST, and HTTP requests
    from local clients — exactly Figure 9's three [notify] calls. On
    failure, traffic is rerouted to the standby, which already holds the
    critical state.

    When both instances were built over a replicated backend pair
    ({!Opennf_state.Backend.replicated_pair}, detected automatically
    from the controller's registry at {!init_standby}), the app skips
    the triggers and seed copy entirely — the backend's per-packet
    delta stream keeps the standby fresh — and {!fail_over} becomes
    promote-standby + reroute with zero bulk transfer. The copy-based
    path is retained (and used whenever no such pair is registered) as
    the oracle the backend bench compares against. *)

open Opennf_net
open Opennf

type t

val init_standby :
  Controller.t ->
  ?sched:Sched.t ->
  normal:Controller.nf ->
  standby:Controller.nf ->
  ?local_net:Ipaddr.Prefix.t ->
  unit ->
  t
(** Registers the notifications. [local_net] (default 10.0.0.0/8) scopes
    the HTTP-request trigger, as in Figure 9 line 6. Multi-flow state is
    copied up front so scan counters exist at the standby. With [sched],
    every refresh copy is admitted through the scheduler, so refreshes
    queue behind conflicting moves instead of racing them. *)

val fail_over : t -> filter:Filter.t -> unit
(** Blocking: reroute matching traffic to the standby (the "normal"
    instance is presumed dead — nothing is fetched from it). Records
    {!recovered_at} on first invocation. *)

val enable_auto : t -> filter:Filter.t -> unit
(** Drive {!fail_over} from the controller's liveness monitor: when the
    primary is declared dead ({!Opennf.Controller.on_nf_death}), traffic
    matching [filter] is rerouted to the standby and the refresh
    notifications are stopped. Requires the controller to have a
    resilience policy (and probes or traffic) for deaths to be
    detected. *)

val recovered_at : t -> float option
(** Virtual time of the first {!fail_over}, if any — used to measure
    recovery time against the crash instant. *)

val replicated : t -> bool
(** True when the app detected a replicated backend pair and runs in
    promote-on-failure mode. *)

val refreshes : t -> int
(** Number of per-flow state refreshes pushed to the standby by the
    copy-based path (always 0 in replicated mode — freshness comes from
    the delta stream, counted in {!delta_bytes}). *)

val bulk_bytes : t -> int
(** Bytes moved by get/put copies (the seed copy and every refresh).
    Zero in replicated mode. *)

val delta_bytes : t -> int
(** Wire bytes of the backend's delta stream so far. Zero in copy mode.
    The two counters are disjoint by construction, so the new backend
    bench can report both honestly. *)

val bytes_transferred : t -> int
(** Serialized state bytes shipped to the standby so far:
    [bulk_bytes + delta_bytes]. *)

val stop : t -> unit
