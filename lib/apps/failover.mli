(** Fast failure recovery (Figure 9 of the paper).

    Maintains a hot standby with an eventually consistent copy of
    another instance's state. Rather than re-copying everything
    periodically, the standby is refreshed when packets that matter for
    the NF's analyses are processed: TCP SYN, TCP RST, and HTTP requests
    from local clients — exactly Figure 9's three [notify] calls. On
    failure, traffic is rerouted to the standby, which already holds the
    critical state. *)

open Opennf_net
open Opennf

type t

val init_standby :
  Controller.t ->
  ?sched:Sched.t ->
  normal:Controller.nf ->
  standby:Controller.nf ->
  ?local_net:Ipaddr.Prefix.t ->
  unit ->
  t
(** Registers the notifications. [local_net] (default 10.0.0.0/8) scopes
    the HTTP-request trigger, as in Figure 9 line 6. Multi-flow state is
    copied up front so scan counters exist at the standby. With [sched],
    every refresh copy is admitted through the scheduler, so refreshes
    queue behind conflicting moves instead of racing them. *)

val fail_over : t -> filter:Filter.t -> unit
(** Blocking: reroute matching traffic to the standby (the "normal"
    instance is presumed dead — nothing is fetched from it). Records
    {!recovered_at} on first invocation. *)

val enable_auto : t -> filter:Filter.t -> unit
(** Drive {!fail_over} from the controller's liveness monitor: when the
    primary is declared dead ({!Opennf.Controller.on_nf_death}), traffic
    matching [filter] is rerouted to the standby and the refresh
    notifications are stopped. Requires the controller to have a
    resilience policy (and probes or traffic) for deaths to be
    detected. *)

val recovered_at : t -> float option
(** Virtual time of the first {!fail_over}, if any — used to measure
    recovery time against the crash instant. *)

val refreshes : t -> int
(** Number of per-flow state refreshes pushed to the standby. *)

val bytes_transferred : t -> int
(** Serialized state bytes shipped to the standby so far. *)

val stop : t -> unit
