(** Selectively invoking advanced remote processing (§2.1, §6).

    Local IDS instances watch for HTTP requests from outdated browsers.
    When one raises that alert, the flow's per-flow state is moved —
    loss-free, so the cloud instance's malware digest covers the whole
    reply — to a more capable cloud IDS, and the flow's packets follow.
    Multi-flow scan counters stay local: they are irrelevant to the
    cloud instance's job (§6). *)

open Opennf_net
open Opennf

type t

val start :
  Controller.t ->
  ?sched:Sched.t ->
  local:(Controller.nf * Opennf_nfs.Ids.t) list ->
  cloud:Controller.nf ->
  unit ->
  t
(** Hooks each local IDS's alert stream (the stand-in for watching Bro's
    log output). With [sched], offload moves are admitted through the
    scheduler — moves of distinct flows overlap, and they queue behind
    any conflicting operation on the same instances and flows. *)

val offloaded : t -> Flow.key list
(** Flows moved to the cloud so far, oldest first. *)

val offload_count : t -> int
