module Proc = Opennf_sim.Proc
module Scope = Opennf_state.Scope
open Opennf_net
open Opennf

type sync_pair = { a : Controller.nf; b : Controller.nf }

type t = {
  ctrl : Controller.t;
  sched : Sched.t option;
  mutable assignment : (Controller.nf * Ipaddr.Prefix.t list) list;
  sync_period : float;
  mutable sync_pairs : sync_pair list;
  mutable syncs : int;
  mutable stopped : bool;
}

let prefix_filter prefix = Filter.of_src_prefix prefix

(* Copies and moves here run in fault-free scenarios; a typed error is
   a wiring bug, surfaced loudly. *)
let copy_exn t ~src ~dst ~filter ~scope =
  let result =
    match t.sched with
    | None -> Copy_op.run t.ctrl ~src ~dst ~filter ~scope ()
    | Some s ->
      Proc.Ivar.read (Copy_op.submit s ~src ~dst ~filter ~scope ())
  in
  match result with Ok r -> r | Error e -> raise (Op_error.Op_failed e)

let create ctrl ?sched ~instances ?(sync_period = 60.0) () =
  let t =
    {
      ctrl;
      sched;
      assignment = instances;
      sync_period;
      sync_pairs = [];
      syncs = 0;
      stopped = false;
    }
  in
  List.iter
    (fun (nf, prefixes) ->
      List.iter
        (fun prefix -> Controller.set_route ctrl (prefix_filter prefix) nf)
        prefixes)
    instances;
  t

let owner_of t prefix =
  List.find_opt (fun (_, ps) -> List.mem prefix ps) t.assignment

let same_nf a b = Controller.nf_name a = Controller.nf_name b

(* Keep scan counters eventually consistent between two instances that
   have exchanged a prefix: copy multi-flow state in both directions
   every period (Figure 8, lines 4-7). *)
let start_sync_loop t pair =
  Proc.spawn (Controller.engine t.ctrl) (fun () ->
      let rec loop () =
        Proc.sleep t.sync_period;
        if not t.stopped then begin
          ignore
            (copy_exn t ~src:pair.a ~dst:pair.b ~filter:Filter.any
               ~scope:[ Scope.Multi ]);
          ignore
            (copy_exn t ~src:pair.b ~dst:pair.a ~filter:Filter.any
               ~scope:[ Scope.Multi ]);
          t.syncs <- t.syncs + 1;
          loop ()
        end
      in
      loop ())

let ensure_sync_pair t a b =
  let have =
    List.exists
      (fun p -> (same_nf p.a a && same_nf p.b b) || (same_nf p.a b && same_nf p.b a))
      t.sync_pairs
  in
  if not have then begin
    let pair = { a; b } in
    t.sync_pairs <- pair :: t.sync_pairs;
    start_sync_loop t pair
  end

let move_prefix t prefix ~to_ =
  match owner_of t prefix with
  | None -> invalid_arg "Lb_monitor.move_prefix: unknown prefix"
  | Some (old_inst, _) when same_nf old_inst to_ ->
    invalid_arg "Lb_monitor.move_prefix: prefix already there"
  | Some (old_inst, _) ->
    let filter = prefix_filter prefix in
    (* Copy (not move) the multi-flow state: scan counters are kept per
       <external IP, port> and may matter to flows of other prefixes. *)
    ignore
      (copy_exn t ~src:old_inst ~dst:to_ ~filter ~scope:[ Scope.Multi ]);
    (* Loss-free (but not order-preserving) move of the per-flow state:
       reordering only delays scan detection (§6). *)
    let spec =
      Move.spec ~src:old_inst ~dst:to_ ~filter ~scope:[ Scope.Per ]
        ~guarantee:Move.Loss_free ~parallel:true ()
    in
    let report =
      let result =
        match t.sched with
        | None -> Move.run t.ctrl spec
        | Some s -> Proc.Ivar.read (Move.submit s spec)
      in
      match result with Ok r -> r | Error e -> raise (Op_error.Op_failed e)
    in
    let target_known = List.exists (fun (nf, _) -> same_nf nf to_) t.assignment in
    t.assignment <-
      List.map
        (fun (nf, ps) ->
          if same_nf nf old_inst then (nf, List.filter (fun p -> p <> prefix) ps)
          else if same_nf nf to_ then (nf, prefix :: ps)
          else (nf, ps))
        t.assignment;
    if not target_known then t.assignment <- (to_, [ prefix ]) :: t.assignment;
    ensure_sync_pair t old_inst to_;
    report

let assignment t =
  List.map (fun (nf, ps) -> (Controller.nf_name nf, ps)) t.assignment

let syncs_performed t = t.syncs
let stop t = t.stopped <- true
