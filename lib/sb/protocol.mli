(** Controller ⇄ NF wire protocol (the southbound API, §4.2–§4.3).

    The paper exchanges JSON over TCP; here messages travel over
    simulated FIFO channels. [Get_*] with [stream = true] is the
    parallelizing optimization (§5.1.3): the NF emits one [Piece] per
    chunk as it is serialized instead of a single bulk reply, letting
    the controller pipeline the matching put. [late_lock = true] is the
    late-locking half of the early-release optimization: the NF enables
    a drop-events filter for each flow just before serializing that
    flow's chunk, instead of requiring a prior [Enable_events] on the
    whole move filter. *)

open Opennf_net
open Opennf_state

type event_action = Process | Buffer | Drop

val pp_event_action : Format.formatter -> event_action -> unit

type request =
  | Enable_events of { filter : Filter.t; action : event_action }
  | Disable_events of { filter : Filter.t }
  | Get_perflow of {
      req : int;
      filter : Filter.t;
      stream : bool;
      late_lock : bool;
      compress : bool;
    }
  | Put_perflow of { req : int; chunks : (Filter.t * Chunk.t) list }
  | Del_perflow of { req : int; flowids : Filter.t list }
  | Get_multiflow of { req : int; filter : Filter.t; stream : bool; compress : bool }
  | Put_multiflow of { req : int; chunks : (Filter.t * Chunk.t) list }
  | Del_multiflow of { req : int; flowids : Filter.t list }
  | Get_allflows of { req : int }
  | Put_allflows of { req : int; chunks : Chunk.t list }
  | Ping of { req : int }
      (** Liveness probe; answered with [Ack] through the NF's normal
          southbound work queue, so a wedged NF fails to answer. *)
  | Set_batching of { bytes : int option }
      (** Configure reply batching (§8.3 scalability knob): the NF
          coalesces streamed [Piece]s into one [Batch_reply] once the
          buffered payload reaches [bytes]; [None] disables batching
          (the default, preserving per-message behaviour exactly). *)

type reply =
  | Piece of { req : int; flowid : Filter.t; chunk : Chunk.t }
      (** One streamed chunk of an in-progress [Get_*]. *)
  | Done of { req : int; chunks : (Filter.t * Chunk.t) list }
      (** [Get_*] finished; carries the chunks when not streaming
          (all-flows chunks use [Filter.any] as flowid). *)
  | Ack of { req : int }  (** A [Put_*] or [Del_*] completed. *)
  | Event of {
      nf : string;
      packet : Packet.t;
      disposition : event_action;
          (** What the NF did with the packet (§4.3). *)
    }
  | Batch_reply of { items : reply list }
      (** Several replies coalesced into one wire message under the
          [Set_batching] byte budget; the controller charges its
          per-message cost once for the whole batch. Items are in send
          order and never nest. *)

val message_overhead : int
(** Fixed wire size (bytes) charged per protocol message, matching the
    paper's ≈128-byte JSON messages. *)

val batch_item_overhead : int
(** Per-item framing (bytes) inside a [Batch_reply]; each member costs
    its own size minus {!message_overhead} plus this delimiter. *)

val request_size : request -> int
val reply_size : reply -> int

val request_kind : request -> string
(** Constant-allocation message label for tracing taps. *)

val reply_kind : reply -> string
