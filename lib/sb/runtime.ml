module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf_state

type event_filter = {
  filter : Filter.t;
  action : Protocol.event_action;
  parent : Filter.t option;
      (** Set for per-flow filters installed by late locking; removed
          when the parent filter is disabled. *)
  buffer : Packet.t Queue.t;
}

type t = {
  engine : Engine.t;
  audit : Audit.t;
  name : string;
  impl : Nf_api.impl;
  costs : Costs.t;
  faults : Opennf_sim.Faults.t option;
  backend : Backend.t option;
  (* Packet path: two queues consumed by one worker; [release_q] (packets
     freed from event buffers) has priority so released packets are
     processed before later direct arrivals. *)
  input_q : Packet.t Queue.t;
  release_q : Packet.t Queue.t;
  mutable worker_wakeup : (unit -> unit) option;
  (* Southbound state operations, FIFO. *)
  work : Protocol.request Proc.Mailbox.t;
  mutable to_ctrl : Protocol.reply Channel.t option;
  mutable event_filters : event_filter list;  (** Newest first. *)
  mutable tombstones : Filter.t list;
  mutable busy_ops : int;
  mutable in_service : unit Proc.Ivar.t option;
      (** Filled when the packet currently on the CPU finishes; state
          exports synchronize on it (the paper's per-connection mutex in
          the Bro patch, §7). *)
  mutable processed : int;
  mutable dropped : int;
  mutable tombstone_drops : int;
  (* Reply batching (§8.3): when [batch_budget] is set, streamed pieces
     accumulate here (newest first) and go out as one [Batch_reply] once
     the buffered payload reaches the budget; any non-piece reply
     flushes the buffer first so the controller still sees FIFO order. *)
  mutable batch_budget : int option;
  mutable rbuf : (Protocol.reply * int) list;
  mutable rbuf_bytes : int;
  mutable shard : int;
      (** Controller shard this runtime is bound to (set at attach). *)
  trace : Opennf_obs.Trace.t;
  m_replies : Opennf_obs.Metrics.counter;
  m_reply_bytes : Opennf_obs.Metrics.counter;
  m_flushes : Opennf_obs.Metrics.counter;
  m_batch_items : Opennf_obs.Metrics.counter;
}

let name t = t.name
let impl t = t.impl
let costs t = t.costs
let backend t = t.backend
let bind_shard t shard = t.shard <- shard
let shard t = t.shard

let alive t =
  match t.faults with
  | None -> true
  | Some f -> Opennf_sim.Faults.alive f ~node:t.name

let send_raw t reply ~size =
  match t.to_ctrl with
  | Some chan when alive t ->
    Opennf_obs.Metrics.incr t.m_replies;
    Opennf_obs.Metrics.add t.m_reply_bytes size;
    if Opennf_obs.Trace.enabled t.trace then
      Opennf_obs.Trace.instant t.trace ~cat:"sb"
        ~name:(Protocol.reply_kind reply)
        ~attrs:
          [|
            ("nf", Opennf_obs.Trace.Str t.name);
            ("bytes", Opennf_obs.Trace.Int size);
          |]
        ();
    Channel.send chan ~size reply
  | Some _ | None -> ()

let flush_replies t =
  match t.rbuf with
  | [] -> ()
  | [ (reply, size) ] ->
    t.rbuf <- [];
    t.rbuf_bytes <- 0;
    send_raw t reply ~size
  | buffered ->
    let items = List.rev buffered in
    let size =
      List.fold_left
        (fun acc (_, s) ->
          acc + s - Protocol.message_overhead + Protocol.batch_item_overhead)
        Protocol.message_overhead items
    in
    t.rbuf <- [];
    t.rbuf_bytes <- 0;
    Opennf_obs.Metrics.incr t.m_flushes;
    Opennf_obs.Metrics.add t.m_batch_items (List.length items);
    send_raw t (Protocol.Batch_reply { items = List.map fst items }) ~size

let send_reply t ?size reply =
  let size = match size with Some s -> s | None -> Protocol.reply_size reply in
  match (t.batch_budget, reply) with
  | Some budget, Protocol.Piece _ ->
    t.rbuf <- (reply, size) :: t.rbuf;
    t.rbuf_bytes <- t.rbuf_bytes + size - Protocol.message_overhead;
    if t.rbuf_bytes >= budget then flush_replies t
  | _ ->
    flush_replies t;
    send_raw t reply ~size

let raise_event t (p : Packet.t) disposition =
  Audit.log_evented t.audit p ~nf:t.name;
  send_reply t (Protocol.Event { nf = t.name; packet = p; disposition })

let event_filter_matches ef (p : Packet.t) =
  Filter.matches_flow ef.filter p.key
  &&
  match ef.filter.Filter.tcp_flag with
  | None -> true
  | Some f -> Packet.has_flag p f

let find_event_filter t p =
  List.find_opt (fun ef -> event_filter_matches ef p) t.event_filters

let matches_tombstone t (p : Packet.t) =
  List.exists (fun f -> Filter.matches_flow f p.key) t.tombstones

let clear_tombstones_for t flowid =
  t.tombstones <-
    List.filter (fun f -> not (Filter.accepts_flowid f flowid)) t.tombstones

(* Process one packet on the NF CPU. *)
let process t (p : Packet.t) =
  let done_ivar = Proc.Ivar.create t.engine in
  t.in_service <- Some done_ivar;
  let penalty = if t.busy_ops > 0 then 1.0 +. t.costs.Costs.export_penalty else 1.0 in
  Proc.sleep (t.costs.Costs.proc_time *. penalty);
  (* A crash while the packet was on the CPU loses it mid-flight. *)
  if alive t then begin
    t.impl.Nf_api.process_packet p;
    t.processed <- t.processed + 1;
    Audit.log_process t.audit p ~nf:t.name;
    (* Delta replication rides the packet's own service time: marking
       and flushing schedule nothing on the NF, only (for a replicated
       primary) a send on the delta channel. *)
    Option.iter (fun b -> Backend.note_packet b p.Packet.key) t.backend
  end;
  t.in_service <- None;
  Proc.Ivar.fill done_ivar ()

(* Wait for the packet currently being serviced (if any) to finish, so a
   state capture cannot miss an update that is already half-applied. *)
let wait_for_service t =
  match t.in_service with
  | Some done_ivar -> Proc.Ivar.read done_ivar
  | None -> ()

let dispose t (p : Packet.t) =
  match find_event_filter t p with
  | Some ef -> (
    match ef.action with
    | Protocol.Drop when not p.do_not_drop ->
      t.dropped <- t.dropped + 1;
      Audit.log_drop t.audit p ~nf:t.name;
      raise_event t p Protocol.Drop
    | Protocol.Buffer when not p.do_not_buffer ->
      Queue.push p ef.buffer;
      Audit.log_buffered t.audit p ~nf:t.name;
      raise_event t p Protocol.Buffer
    | Protocol.Process | Protocol.Drop | Protocol.Buffer ->
      process t p;
      raise_event t p Protocol.Process)
  | None ->
    if matches_tombstone t p then begin
      t.dropped <- t.dropped + 1;
      t.tombstone_drops <- t.tombstone_drops + 1;
      Audit.log_drop t.audit p ~nf:t.name
    end
    else process t p

let wake_worker t =
  match t.worker_wakeup with
  | Some resume ->
    t.worker_wakeup <- None;
    resume ()
  | None -> ()

let worker_loop t () =
  let rec loop () =
    if not (alive t) then begin
      (* Crashed or hung: leave queued packets where they are and stall;
         a hang's recovery wakes the worker via [receive]/[wake_worker]. *)
      Proc.suspend (fun resume ->
          assert (t.worker_wakeup = None);
          t.worker_wakeup <- Some resume);
      loop ()
    end
    else if not (Queue.is_empty t.release_q) then begin
      dispose t (Queue.pop t.release_q);
      loop ()
    end
    else if not (Queue.is_empty t.input_q) then begin
      dispose t (Queue.pop t.input_q);
      loop ()
    end
    else begin
      Proc.suspend (fun resume ->
          assert (t.worker_wakeup = None);
          t.worker_wakeup <- Some resume);
      loop ()
    end
  in
  loop ()

let receive t p =
  Audit.log_nf_arrival t.audit p ~nf:t.name;
  Queue.push p t.input_q;
  wake_worker t

(* Southbound state operations, executed FIFO by a dedicated process so
   puts pipeline behind gets without blocking enable/disable. *)

let serialize_pause t chunk =
  Proc.sleep (Costs.serialize_time t.costs ~bytes:(Chunk.size chunk))

let deserialize_pause t chunk =
  Proc.sleep (Costs.deserialize_time t.costs ~bytes:(Chunk.size chunk))

let add_event_filter t ?parent filter action =
  t.event_filters <-
    { filter; action; parent; buffer = Queue.create () } :: t.event_filters

(* With [compress], the NF->controller connection behaves like a
   compressed socket stream (§8.3): each chunk's wire footprint is what
   it adds to the stream given the previous chunk as dictionary, and the
   compression work shares the serialization path's CPU. *)
let run_get t ~req ~filter ~stream ~late_lock ~compress ~list ~export =
  wait_for_service t;
  t.busy_ops <- t.busy_ops + 1;
  let flowids = list filter in
  let collected = ref [] in
  let dict = ref "" in
  List.iter
    (fun flowid ->
      if late_lock then add_event_filter t ~parent:filter flowid Protocol.Drop;
      match export flowid with
      | None -> ()
      | Some chunk ->
        serialize_pause t chunk;
        let wire_size =
          if compress then begin
            Proc.sleep
              (0.2 *. Costs.serialize_time t.costs ~bytes:(Chunk.size chunk));
            let w =
              Opennf_util.Lz.wire_size_with_dict ~dict:!dict
                chunk.Chunk.data
            in
            dict := chunk.Chunk.data;
            (* Framing (repetitive JSON in the paper's protocol)
               compresses ~4x in the same stream. *)
            Some ((Protocol.message_overhead / 4) + 32 + w)
          end
          else None
        in
        if stream then
          send_reply t ?size:wire_size (Protocol.Piece { req; flowid; chunk })
        else collected := (flowid, chunk) :: !collected)
    flowids;
  t.busy_ops <- t.busy_ops - 1;
  let done_msg = Protocol.Done { req; chunks = List.rev !collected } in
  let done_size =
    if compress && not stream then
      Some
        (Protocol.message_overhead
        + (32 * List.length !collected)
        + int_of_float
            (float_of_int
               (List.fold_left
                  (fun acc (_, c) -> acc + Chunk.size c)
                  0 !collected)
            *. Opennf_util.Lz.stream_ratio
                 (List.rev_map (fun (_, c) -> c.Chunk.data) !collected)))
    else None
  in
  send_reply t ?size:done_size done_msg

let run_put t ~req ~chunks ~import =
  t.busy_ops <- t.busy_ops + 1;
  List.iter
    (fun (flowid, chunk) ->
      deserialize_pause t chunk;
      import flowid (Chunk.decompress chunk))
    chunks;
  t.busy_ops <- t.busy_ops - 1;
  send_reply t (Protocol.Ack { req })

let handle_op t (req : Protocol.request) =
  match req with
  | Protocol.Get_perflow { req; filter; stream; late_lock; compress } ->
    run_get t ~req ~filter ~stream ~late_lock ~compress
      ~list:t.impl.Nf_api.list_perflow ~export:t.impl.Nf_api.export_perflow
  | Protocol.Get_multiflow { req; filter; stream; compress } ->
    run_get t ~req ~filter ~stream ~late_lock:false ~compress
      ~list:t.impl.Nf_api.list_multiflow ~export:t.impl.Nf_api.export_multiflow
  | Protocol.Get_allflows { req } ->
    wait_for_service t;
    t.busy_ops <- t.busy_ops + 1;
    let chunks = t.impl.Nf_api.export_allflows () in
    List.iter (serialize_pause t) chunks;
    t.busy_ops <- t.busy_ops - 1;
    send_reply t
      (Protocol.Done { req; chunks = List.map (fun c -> (Filter.any, c)) chunks })
  | Protocol.Put_perflow { req; chunks } ->
    run_put t ~req ~chunks ~import:(fun flowid chunk ->
        clear_tombstones_for t flowid;
        t.impl.Nf_api.import_perflow flowid chunk)
  | Protocol.Put_multiflow { req; chunks } ->
    run_put t ~req ~chunks ~import:t.impl.Nf_api.import_multiflow
  | Protocol.Put_allflows { req; chunks } ->
    t.busy_ops <- t.busy_ops + 1;
    List.iter (deserialize_pause t) chunks;
    t.impl.Nf_api.import_allflows chunks;
    t.busy_ops <- t.busy_ops - 1;
    send_reply t (Protocol.Ack { req })
  | Protocol.Del_perflow { req; flowids } ->
    (* Like exports, deletions synchronize with the packet on the CPU:
       otherwise the in-service packet would re-create state for a flow
       deleted underneath it. *)
    wait_for_service t;
    List.iter
      (fun flowid ->
        t.impl.Nf_api.delete_perflow flowid;
        t.tombstones <- flowid :: t.tombstones)
      flowids;
    send_reply t (Protocol.Ack { req })
  | Protocol.Del_multiflow { req; flowids } ->
    wait_for_service t;
    List.iter t.impl.Nf_api.delete_multiflow flowids;
    send_reply t (Protocol.Ack { req })
  | Protocol.Ping { req } -> send_reply t (Protocol.Ack { req })
  | Protocol.Enable_events _ | Protocol.Disable_events _
  | Protocol.Set_batching _ ->
    assert false (* handled inline in [control] *)

let disable_events t filter =
  let keep, drop =
    List.partition
      (fun ef ->
        not
          (Filter.equal ef.filter filter
          || match ef.parent with
             | Some p -> Filter.equal p filter
             | None -> false))
      t.event_filters
  in
  t.event_filters <- keep;
  (* Release buffered packets in arrival order. *)
  List.iter
    (fun ef -> Queue.iter (fun p -> Queue.push p t.release_q) ef.buffer)
    (List.rev drop);
  wake_worker t

let control t (req : Protocol.request) =
  Option.iter
    (fun f -> Opennf_sim.Faults.note_op f ~node:t.name)
    t.faults;
  if alive t then
    match req with
    | Protocol.Enable_events { filter; action } ->
      add_event_filter t filter action
    | Protocol.Disable_events { filter } -> disable_events t filter
    | Protocol.Set_batching { bytes } -> t.batch_budget <- bytes
    | _ -> Proc.Mailbox.send t.work req

let set_controller t chan = t.to_ctrl <- Some chan

let create engine audit ~name ~impl ~costs ?faults ?backend () =
  let obs = Engine.obs engine in
  let metrics = Opennf_obs.Hub.metrics obs in
  let t =
    {
      engine;
      audit;
      name;
      impl;
      costs;
      faults;
      backend;
      input_q = Queue.create ();
      release_q = Queue.create ();
      worker_wakeup = None;
      work = Proc.Mailbox.create engine;
      to_ctrl = None;
      event_filters = [];
      tombstones = [];
      busy_ops = 0;
      in_service = None;
      processed = 0;
      dropped = 0;
      tombstone_drops = 0;
      batch_budget = None;
      rbuf = [];
      rbuf_bytes = 0;
      shard = 0;
      trace = Opennf_obs.Hub.trace obs;
      m_replies = Opennf_obs.Metrics.counter metrics "sb.replies";
      m_reply_bytes = Opennf_obs.Metrics.counter metrics "sb.reply_bytes";
      m_flushes = Opennf_obs.Metrics.counter metrics "sb.batch.flushes";
      m_batch_items = Opennf_obs.Metrics.counter metrics "sb.batch.items";
    }
  in
  (* Both ends of a replicated pair wire both directions; the backend's
     role decides which one is exercised. Export reuses the NF's own
     southbound serializers, so delta frames carry exactly the chunks a
     get would — byte-comparable with bulk transfer. *)
  Option.iter
    (fun b ->
      Backend.set_exporter b (fun scope flowid ->
          match (scope : Scope.t) with
          | Scope.Per -> impl.Nf_api.export_perflow flowid
          | Scope.Multi -> impl.Nf_api.export_multiflow flowid
          | Scope.All -> None);
      Backend.set_applier b (fun scope flowid chunk ->
          match ((scope : Scope.t), chunk) with
          | Scope.Per, Some c -> impl.Nf_api.import_perflow flowid c
          | Scope.Per, None -> impl.Nf_api.delete_perflow flowid
          | Scope.Multi, Some c -> impl.Nf_api.import_multiflow flowid c
          | Scope.Multi, None -> impl.Nf_api.delete_multiflow flowid
          | Scope.All, _ -> ()))
    backend;
  Proc.spawn engine (worker_loop t);
  Proc.spawn engine (fun () ->
      let rec loop () =
        let req = Proc.Mailbox.recv t.work in
        (* A dead NF drains its queue silently: the op neither runs nor
           is answered, so the controller's deadline fires. *)
        if alive t then handle_op t req;
        loop ()
      in
      loop ());
  t

let processed_count t = t.processed
let dropped_count t = t.dropped
let tombstone_dropped t = t.tombstone_drops

let buffered_count t =
  List.fold_left (fun acc ef -> acc + Queue.length ef.buffer) 0 t.event_filters

let queue_length t = Queue.length t.input_q + Queue.length t.release_q
let busy t = t.busy_ops > 0
