open Opennf_net
open Opennf_state

type event_action = Process | Buffer | Drop

let pp_event_action ppf a =
  Format.pp_print_string ppf
    (match a with Process -> "process" | Buffer -> "buffer" | Drop -> "drop")

type request =
  | Enable_events of { filter : Filter.t; action : event_action }
  | Disable_events of { filter : Filter.t }
  | Get_perflow of {
      req : int;
      filter : Filter.t;
      stream : bool;
      late_lock : bool;
      compress : bool;
    }
  | Put_perflow of { req : int; chunks : (Filter.t * Chunk.t) list }
  | Del_perflow of { req : int; flowids : Filter.t list }
  | Get_multiflow of { req : int; filter : Filter.t; stream : bool; compress : bool }
  | Put_multiflow of { req : int; chunks : (Filter.t * Chunk.t) list }
  | Del_multiflow of { req : int; flowids : Filter.t list }
  | Get_allflows of { req : int }
  | Put_allflows of { req : int; chunks : Chunk.t list }
  | Ping of { req : int }
  | Set_batching of { bytes : int option }

type reply =
  | Piece of { req : int; flowid : Filter.t; chunk : Chunk.t }
  | Done of { req : int; chunks : (Filter.t * Chunk.t) list }
  | Ack of { req : int }
  | Event of {
      nf : string;
      packet : Packet.t;
      disposition : event_action;
    }
  | Batch_reply of { items : reply list }

let message_overhead = 128
let batch_item_overhead = 8

(* Static strings so tracing taps never allocate a label. *)
let request_kind = function
  | Enable_events _ -> "enable_events"
  | Disable_events _ -> "disable_events"
  | Get_perflow _ -> "get_perflow"
  | Put_perflow _ -> "put_perflow"
  | Del_perflow _ -> "del_perflow"
  | Get_multiflow _ -> "get_multiflow"
  | Put_multiflow _ -> "put_multiflow"
  | Del_multiflow _ -> "del_multiflow"
  | Get_allflows _ -> "get_allflows"
  | Put_allflows _ -> "put_allflows"
  | Ping _ -> "ping"
  | Set_batching _ -> "set_batching"

let reply_kind = function
  | Piece _ -> "piece"
  | Done _ -> "done"
  | Ack _ -> "ack"
  | Event _ -> "event"
  | Batch_reply _ -> "batch_reply"

let chunks_size chunks =
  List.fold_left (fun acc (_, c) -> acc + Chunk.size c + 32) 0 chunks

let request_size = function
  | Enable_events _ | Disable_events _ | Ping _ | Set_batching _ ->
    message_overhead
  | Get_perflow _ | Get_multiflow _ | Get_allflows _ -> message_overhead
  | Put_perflow { chunks; _ } | Put_multiflow { chunks; _ } ->
    message_overhead + chunks_size chunks
  | Del_perflow { flowids; _ } | Del_multiflow { flowids; _ } ->
    message_overhead + (32 * List.length flowids)
  | Put_allflows { chunks; _ } ->
    message_overhead
    + List.fold_left (fun acc c -> acc + Chunk.size c) 0 chunks

(* A batch pays the fixed framing once; each member costs its own size
   minus the per-message overhead it no longer needs, plus a small
   per-item delimiter. *)
let rec reply_size = function
  | Piece { chunk; _ } -> message_overhead + Chunk.size chunk + 32
  | Done { chunks; _ } -> message_overhead + chunks_size chunks
  | Ack _ -> message_overhead
  | Event { packet; _ } -> message_overhead + packet.Packet.wire_size
  | Batch_reply { items } ->
    List.fold_left
      (fun acc r -> acc + reply_size r - message_overhead + batch_item_overhead)
      message_overhead items
