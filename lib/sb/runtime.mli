(** NF runtime: hosts an NF implementation inside the simulation.

    The runtime owns the NF's packet queue and CPU (a serial worker
    process), executes southbound requests, generates packet-received
    events, and maintains the event filters, per-filter packet buffers
    and the "moved away" tombstones that make packets for relocated
    flows drop instead of re-creating state (§5.1).

    Event semantics (§4.3): when a packet matches an enabled event
    filter, the NF raises an [Event] carrying a copy of the packet and
    applies the filter's action — [Drop] discards it (unless the packet
    carries "do-not-drop"), [Buffer] parks it until events are disabled
    (unless it carries "do-not-buffer"), [Process] handles it normally.
    For packets that are processed, the event is raised {e after}
    processing completes, which is what lets the controller use events
    as "state updates are done" signals (§5.1.2, §5.2.2). *)

open Opennf_net

type t

val create :
  Opennf_sim.Engine.t ->
  Audit.t ->
  name:string ->
  impl:Nf_api.impl ->
  costs:Costs.t ->
  ?faults:Opennf_sim.Faults.t ->
  ?backend:Opennf_state.Backend.t ->
  unit ->
  t
(** Starts the worker processes immediately. With [faults], the runtime
    consults the fault plan: once its node is crashed (or while hung) it
    stops processing packets, ignores southbound requests and sends no
    replies.

    With [backend], the runtime wires the NF's export/import functions
    as the backend's delta exporter/applier and marks the packet's keys
    dirty after every processed packet ({!Opennf_state.Backend.note_packet}),
    which is what keeps a replicated backend's standby fresh. [Local]
    and [Shared] backends make all of that a no-op. *)

val backend : t -> Opennf_state.Backend.t option

val name : t -> string
val impl : t -> Nf_api.impl
val costs : t -> Costs.t

val bind_shard : t -> int -> unit
(** Record the controller shard this runtime answers to; called by
    [Controller.attach]. Purely descriptive (the runtime talks to its
    home shard through the channels attach wired up), but lets tools
    and tests ask a runtime where it lives. *)

val shard : t -> int
(** The bound controller shard; 0 until {!bind_shard}. *)

val receive : t -> Packet.t -> unit
(** Data-plane entry point: wire this as the handler of the switch-port
    channel feeding this NF. *)

val control : t -> Protocol.request -> unit
(** Control-plane entry point (handler of the controller→NF channel).
    [Enable_events]/[Disable_events] take effect immediately; state
    operations are queued and executed FIFO on the NF's CPU. *)

val set_controller : t -> Protocol.reply Channel.t -> unit
(** Channel on which replies and events are sent. *)

(** {1 Introspection for tests and benches} *)

val processed_count : t -> int
val dropped_count : t -> int
(** All intentionally dropped packets (event-drop + tombstone). *)

val tombstone_dropped : t -> int
(** Packets dropped because their flow's state was moved away (these are
    the losses of a move without guarantees). *)

val buffered_count : t -> int
(** Packets currently parked in event buffers. *)

val queue_length : t -> int
val busy : t -> bool
(** A state export/import is currently running. *)
