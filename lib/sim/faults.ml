module Rng = Opennf_util.Rng

type link_profile = { drop : float; dup : float; jitter : float }

type node = {
  mutable crashed_at : float option;  (* Time the crash takes effect. *)
  mutable crash_on_op : int option;  (* Remaining ops before crashing. *)
  mutable hangs : (float * float) list;  (* Unresponsive windows. *)
  mutable ops : int;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  links : (string, link_profile) Hashtbl.t;
  nodes : (string, node) Hashtbl.t;
  mutable dropped : int;
  mutable duplicated : int;
}

let create engine ?(seed = 0xFA17) () =
  {
    engine;
    rng = Rng.create ~seed;
    links = Hashtbl.create 8;
    nodes = Hashtbl.create 8;
    dropped = 0;
    duplicated = 0;
  }

(* --- links --------------------------------------------------------------- *)

let set_link t ~name ?(drop = 0.0) ?(dup = 0.0) ?(jitter = 0.0) () =
  Hashtbl.replace t.links name { drop; dup; jitter }

let clear_link t ~name = Hashtbl.remove t.links name

let plan t ~link =
  match Hashtbl.find_opt t.links link with
  | None -> (1, 0.0)
  | Some p ->
    let copies =
      if p.drop > 0.0 && Rng.float t.rng 1.0 < p.drop then begin
        t.dropped <- t.dropped + 1;
        0
      end
      else if p.dup > 0.0 && Rng.float t.rng 1.0 < p.dup then begin
        t.duplicated <- t.duplicated + 1;
        2
      end
      else 1
    in
    let jitter = if p.jitter > 0.0 then Rng.float t.rng p.jitter else 0.0 in
    (copies, jitter)

let dropped_count t = t.dropped
let duplicated_count t = t.duplicated

(* --- nodes --------------------------------------------------------------- *)

let node t name =
  match Hashtbl.find_opt t.nodes name with
  | Some n -> n
  | None ->
    let n = { crashed_at = None; crash_on_op = None; hangs = []; ops = 0 } in
    Hashtbl.add t.nodes name n;
    n

let crash_at t ~node:name time =
  let n = node t name in
  match n.crashed_at with
  | Some existing when existing <= time -> ()
  | Some _ | None -> n.crashed_at <- Some time

let crash_now t ~node:name = crash_at t ~node:name (Engine.now t.engine)

let crash_on_nth_op t ~node:name nth =
  if nth <= 0 then invalid_arg "Faults.crash_on_nth_op: nth must be positive";
  (node t name).crash_on_op <- Some nth

let hang t ~node:name ~from_ ~until =
  if until < from_ then invalid_arg "Faults.hang: until < from_";
  let n = node t name in
  n.hangs <- (from_, until) :: n.hangs

let note_op t ~node:name =
  let n = node t name in
  n.ops <- n.ops + 1;
  match n.crash_on_op with
  | Some nth when n.ops >= nth && n.crashed_at = None ->
    n.crash_on_op <- None;
    n.crashed_at <- Some (Engine.now t.engine)
  | Some _ | None -> ()

let crashed t ~node:name =
  match Hashtbl.find_opt t.nodes name with
  | None -> false
  | Some n -> (
    match n.crashed_at with
    | Some at -> at <= Engine.now t.engine
    | None -> false)

let alive t ~node:name =
  match Hashtbl.find_opt t.nodes name with
  | None -> true
  | Some n ->
    let now = Engine.now t.engine in
    (match n.crashed_at with Some at -> at > now | None -> true)
    && not (List.exists (fun (f, u) -> f <= now && now < u) n.hangs)

let crash_time t ~node:name =
  match Hashtbl.find_opt t.nodes name with
  | None -> None
  | Some n -> (
    match n.crashed_at with
    | Some at when at <= Engine.now t.engine -> Some at
    | Some _ | None -> None)
