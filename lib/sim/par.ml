(* Parallel shard execution: one engine per shard, one domain per
   shard, deterministic cross-engine channels.

   Classic conservative parallel DES. Engines advance in rounds driven
   by a coordinator (the caller's domain). At each round boundary every
   engine is quiescent; the coordinator delivers all buffered
   cross-engine messages in (time, src shard, seq) order, recomputes
   each engine's safe horizon, and releases the engines to step their
   own event queues concurrently up to that horizon.

   The horizon for engine [j] is

     bound(j) = min over i <> j of next(i)

   where next(i) is the time of engine i's earliest pending event
   (infinity when empty). Any message engine [i] emits this round comes
   from an event it processes, so it is stamped >= next(i) >= bound(j):
   engine [j] may process events strictly below bound(j) without ever
   receiving a message in its past — from a peer's own event queue.
   Responses to [j]'s own messages are the second arrival source: the
   channels are zero-latency, so a message [j] posts at time T can draw
   a response stamped T, invisible to every peer's queue until it is
   delivered. The window send cap (see [window]) closes that hole:
   once a window emits a message at its clock T, it finishes the
   events at T and stops, so the engine never runs past a time it
   might hear back about. Ties are handled by the batch rule:
   engines whose next event sits exactly at the global minimum T may
   additionally drain events at exactly T (otherwise an all-tied round
   would make no progress). Messages stamped T that such a batch emits
   are delivered at the next round boundary, again at time T — the
   receiving engine revisits T, which is legal (its clock never runs
   backwards) and deterministic (delivery order is a pure function of
   (time, src, seq), never of domain scheduling).

   Because bound(j) is infinity once every other engine has drained,
   disjoint workloads degenerate to each engine free-running on its own
   domain — the whole point of the exercise.

   Worker mapping is fixed for the life of a run: shard [j] always
   steps on worker [j mod workers], so effect-handler continuations
   captured inside an engine's events are resumed on one consistent
   domain. The mapping affects which core does the work and nothing
   else; results are identical for any worker count, including 1 —
   which is how `dune runtest` exercises this code deterministically on
   a single-core CI runner. *)

module Workers = Opennf_util.Domain_pool.Workers

type msg = {
  m_time : float;
  m_src : int;
  m_seq : int;
  m_dst : int;
  m_run : unit -> unit;
}

type t = {
  engines : Engine.t array;
  outbox : msg list ref array; (* per SRC shard, newest first *)
  seqs : int array; (* per-src message counter, monotone over the run *)
  mutable workers : int; (* worker count used by the last/current run *)
  mutable rounds : int;
  mutable delivered : int;
  mutable active : bool;
}

(* Ambient context: set while a worker steps a shard's window, so that
   [post] called from inside an event knows its source shard (and its
   timestamp — the source engine's clock). *)
let context : (Obj.t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let create engines =
  if Array.length engines < 1 then invalid_arg "Par.create: no engines";
  {
    engines;
    outbox = Array.init (Array.length engines) (fun _ -> ref []);
    seqs = Array.make (Array.length engines) 0;
    workers = 1;
    rounds = 0;
    delivered = 0;
    active = false;
  }

let shards t = Array.length t.engines
let engine t i = t.engines.(i)
let rounds t = t.rounds
let delivered t = t.delivered
let workers_used t = t.workers

let self t =
  match !(Domain.DLS.get context) with
  | Some (p, src) when p == Obj.repr t -> Some src
  | _ -> None

(* One process-wide helper pool, created on first parallel run and kept
   for the life of the process: fabrics come and go by the hundred in
   the test suite, and the runtime caps the number of domains ever
   spawned, so per-fabric pools would exhaust it. Helpers block when
   idle, so the standing pool costs nothing between runs. *)
let global_pool : Workers.t option ref = ref None

let pool () =
  match !global_pool with
  | Some p -> p
  | None ->
    let p = Workers.create () in
    global_pool := Some p;
    p

let post t ~dst thunk =
  if dst < 0 || dst >= shards t then invalid_arg "Par.post: bad shard";
  match self t with
  | Some src ->
    let seq = t.seqs.(src) in
    t.seqs.(src) <- seq + 1;
    let m =
      {
        m_time = Engine.now t.engines.(src);
        m_src = src;
        m_seq = seq;
        m_dst = dst;
        m_run = thunk;
      }
    in
    t.outbox.(src) := m :: !(t.outbox.(src))
  | None ->
    (* Setup phase (no round in flight): everything runs on one domain,
       so the message can take effect immediately and deterministically. *)
    if t.active then
      invalid_arg "Par.post: cross-engine post from outside any shard window";
    thunk ()

(* A bridged round trip: run [f fill] on [dst]'s engine; [f] eventually
   calls [fill v] (at any later virtual time, from any shard window),
   which completes the ivar back on the caller's engine at that virtual
   time. Must be called from a Proc on the current shard's engine. *)
let call t ~dst f =
  match self t with
  | None -> invalid_arg "Par.call: not inside a shard window"
  | Some src ->
    let iv = Proc.Ivar.create t.engines.(src) in
    post t ~dst (fun () ->
        f (fun v -> post t ~dst:src (fun () -> Proc.Ivar.fill iv v)));
    Proc.Ivar.read iv

let debug = Sys.getenv_opt "OPENNF_PAR_DEBUG" <> None

let msg_before a b =
  a.m_time < b.m_time
  || (a.m_time = b.m_time
     && (a.m_src < b.m_src || (a.m_src = b.m_src && a.m_seq < b.m_seq)))

(* Step shard [j]'s engine through its window: events strictly below
   [bound], plus the tie batch at exactly [tmin]. New events landing
   inside the window (zero-delay chains) extend it naturally — the
   condition re-peeks after every step.

   The send cap: the channels have zero virtual latency, so a message
   posted at time T can draw a response stamped T. Once this window
   emits its first cross-engine message — at the engine's clock, call
   it T — the engine must not run past T: events at exactly T are still
   safe (a response lands at >= T, and revisiting the current time is
   legal), but anything later would put a possible response in the
   engine's past. [bound] alone cannot see this: it derives from the
   peers' queues, which know nothing of the messages buffered here
   until the next round boundary. *)
let window t j ~bound ~tmin =
  let e = t.engines.(j) in
  let ob = t.outbox.(j) in
  let ctx = Domain.DLS.get context in
  ctx := Some (Obj.repr t, j);
  Fun.protect
    ~finally:(fun () -> ctx := None)
    (fun () ->
      let cap = ref infinity in
      let continue = ref true in
      while !continue do
        let nt = Engine.next_time e in
        if (nt < bound || nt = tmin) && nt <= !cap then begin
          ignore (Engine.step e);
          if !cap = infinity && !ob <> [] then cap := Engine.now e
        end
        else continue := false
      done)

let quiescent t =
  Array.for_all (fun e -> Engine.next_time e = infinity) t.engines
  && Array.for_all (fun ob -> !ob = []) t.outbox

(* The coordinator loop. Runs until every engine is drained and no
   message is in flight. [workers] caps the domains used (default: the
   usable-core count, never more than there are shards). *)
let run ?workers t =
  if t.active then invalid_arg "Par.run: already running";
  t.active <- true;
  Fun.protect
    ~finally:(fun () -> t.active <- false)
    (fun () ->
      let n = shards t in
      let p = pool () in
      let w_use =
        Stdlib.max 1
          (Stdlib.min n
             (match workers with Some w -> w | None -> Workers.size p))
      in
      t.workers <- w_use;
      let nexts = Array.make n infinity in
      let bounds = Array.make n infinity in
      let finished = ref false in
      while not !finished do
        (* Deliver: merge all outboxes in (time, src, seq) order and
           schedule each message on its destination engine. All engines
           are quiescent here, so this is plain single-threaded work. *)
        let msgs =
          Array.fold_left (fun acc ob ->
              let l = !ob in
              ob := [];
              List.rev_append l acc)
            [] t.outbox
        in
        let msgs = List.sort (fun a b -> if msg_before a b then -1 else 1) msgs in
        List.iter
          (fun m ->
            t.delivered <- t.delivered + 1;
            if debug then
              Printf.eprintf "[par] deliver t=%.6f %d->%d seq=%d (dst now=%.6f next=%.6f)\n%!"
                m.m_time m.m_src m.m_dst m.m_seq
                (Engine.now t.engines.(m.m_dst))
                (Engine.next_time t.engines.(m.m_dst));
            Engine.schedule_at t.engines.(m.m_dst) m.m_time m.m_run)
          msgs;
        for i = 0 to n - 1 do
          nexts.(i) <- Engine.next_time t.engines.(i)
        done;
        let tmin = Array.fold_left Stdlib.min infinity nexts in
        if tmin = infinity then finished := true
        else begin
          for j = 0 to n - 1 do
            let b = ref infinity in
            for i = 0 to n - 1 do
              if i <> j && nexts.(i) < !b then b := nexts.(i)
            done;
            bounds.(j) <- !b
          done;
          t.rounds <- t.rounds + 1;
          if debug then begin
            Printf.eprintf "[par] round %d tmin=%.6f" t.rounds tmin;
            for i = 0 to n - 1 do
              Printf.eprintf " [%d: now=%.6f next=%.6f bound=%.6f]"
                i (Engine.now t.engines.(i)) nexts.(i) bounds.(i)
            done;
            Printf.eprintf "\n%!"
          end;
          if w_use = 1 then
            for j = 0 to n - 1 do
              window t j ~bound:bounds.(j) ~tmin
            done
          else
            Workers.run p (fun w ->
                if w < w_use then begin
                  let j = ref w in
                  while !j < n do
                    window t !j ~bound:bounds.(!j) ~tmin;
                    j := !j + w_use
                  done
                end)
        end
      done;
      assert (quiescent t))
