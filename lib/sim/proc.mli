(** Simulation processes: direct-style coroutines over the event engine.

    A process is ordinary OCaml code started with [spawn] that may block
    on virtual time ([sleep]) or on data ([Ivar.read], [Mailbox.recv]).
    Blocking is implemented with OCaml 5 effects, so controller
    operations read like the paper's pseudo-code — e.g. Figure 6's
    "wait (GOT_FIRST_PKT_FROM_SW)" is an [Ivar.read].

    [sleep]/[Ivar.read]/[Mailbox.recv] must be called from inside a
    process (i.e. under [spawn]); calling them elsewhere raises
    [Not_in_process]. *)

exception Not_in_process

val spawn : Engine.t -> (unit -> unit) -> unit
(** Start a process at the current virtual time. Exceptions escaping the
    process body are re-raised out of [Engine.run]. *)

val sleep : float -> unit
(** Suspend the calling process for the given number of virtual seconds. *)

val yield : unit -> unit
(** [yield ()] is [sleep 0.]: lets other events at this instant run. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling process and passes its resume
    thunk to [register]. The process continues when the thunk is called
    (call it at most once). This is the low-level primitive [Ivar] and
    [Mailbox] are built from; use it for custom wait queues. *)

module Ivar : sig
  type 'a t
  (** Write-once synchronization variable. *)

  val create : Engine.t -> 'a t
  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. Waiting readers are
      resumed at the current virtual time (after currently queued
      events). *)

  val fill_if_empty : 'a t -> 'a -> bool
  (** Like {!fill} but a no-op on an already-filled ivar; returns
      whether the value was written. Duplicate-reply tolerance: a
      retried request may be answered twice. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option
  val read : 'a t -> 'a
  (** Block the calling process until the ivar is filled. *)

  val read_timeout : 'a t -> timeout:float -> 'a option
  (** Block until the ivar is filled or [timeout] virtual seconds pass,
      whichever comes first; [None] on timeout. The deadline mechanism
      behind the controller's resilient southbound calls. *)
end

module Mailbox : sig
  type 'a t
  (** Unbounded FIFO channel between processes. *)

  val create : Engine.t -> 'a t
  val send : 'a t -> 'a -> unit
  (** Never blocks. *)

  val recv : 'a t -> 'a
  (** Block the calling process until a message is available. *)

  val length : 'a t -> int
end
