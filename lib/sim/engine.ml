type event = {
  time : float;
  seq : int;
  thunk : unit -> unit;
  mutable vb : int; (* virtual bucket: floor (time / width) at last index *)
  mutable next : event; (* intrusive sorted chain; [nil]-terminated *)
}

(* Sentinel terminating every chain (compared with [==]). *)
let rec nil = { time = 0.0; seq = 0; thunk = ignore; vb = 0; next = nil }

(* Dispatch order, shared by both queue implementations: strictly by
   (time, seq) — virtual time first, FIFO of scheduling on ties. *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Array-based binary min-heap ordered by (time, seq). Retained as the
   reference scheduler: O(log n) per operation, trivially correct. The
   timing wheel below must dispatch in exactly this order (QCheck
   equivalence in test_arena, scenario-level diff in bench_scale). *)
module Heap = struct
  type t = { mutable arr : event array; mutable size : int }

  let create () = { arr = Array.make 64 nil; size = 0 }

  let push t ev =
    if t.size = Array.length t.arr then begin
      let bigger = Array.make (2 * t.size) nil in
      Array.blit t.arr 0 bigger 0 t.size;
      t.arr <- bigger
    end;
    t.arr.(t.size) <- ev;
    t.size <- t.size + 1;
    (* Sift up. *)
    let i = ref (t.size - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      before t.arr.(!i) t.arr.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = t.arr.(parent) in
      t.arr.(parent) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := parent
    done

  let peek t = if t.size = 0 then None else Some t.arr.(0)

  let pop t =
    assert (t.size > 0);
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    t.arr.(0) <- t.arr.(t.size);
    t.arr.(t.size) <- nil;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.arr.(l) t.arr.(!smallest) then smallest := l;
      if r < t.size && before t.arr.(r) t.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.arr.(!smallest) in
        t.arr.(!smallest) <- t.arr.(!i);
        t.arr.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

(* Calendar-queue timing wheel: O(1) amortized schedule and dispatch.

   Events hash by virtual bucket number [vb] = floor (time / width)
   into a circular array of sorted chains; the bucket width adapts to
   the observed inter-event gap whenever the wheel resizes, keeping
   average occupancy (and thus sorted-insert cost) at a handful of
   events. Dispatch scans forward from the current bucket and takes the
   first chain head whose [vb] matches the scanned slot — by
   construction the global minimum under (time, seq), because [vb] is
   monotone in [time] and equal times always share a bucket (so FIFO
   seq ties are resolved inside one sorted chain, exactly as the heap
   resolves them). If a whole rotation finds nothing in the current
   year, a direct minimum over all chain heads (the safety net for any
   distribution the geometry mispredicts) restores the invariant.

   Far-future events — beyond [far_horizon] buckets ahead, including
   anything whose bucket number would overflow [int_of_float] — wait in
   a sorted overflow chain that is consulted at every dispatch and
   reindexed on every resize. *)
module Wheel = struct
  let min_buckets = 256
  let max_buckets = 1 lsl 20
  let far_horizon = 1 lsl 32
  let far_vb = max_int
  let max_vb_float = 1.15292150460684698e18 (* 2^60 *)

  type t = {
    mutable width : float;
    mutable inv_width : float;
    mutable buckets : event array;
    mutable mask : int; (* Array.length buckets - 1 *)
    mutable size : int; (* wheel + overflow *)
    mutable wheel_size : int;
    mutable cur_vb : int; (* bucket of the last dispatched event *)
    mutable lastprio : float; (* time of the last dispatched event *)
    mutable overflow : event;
    mutable cached : event; (* memoized peek result; nil = none *)
    mutable cached_overflow : bool;
  }

  let create () =
    {
      width = 1e-3;
      inv_width = 1e3;
      buckets = Array.make min_buckets nil;
      mask = min_buckets - 1;
      size = 0;
      wheel_size = 0;
      cur_vb = 0;
      lastprio = 0.0;
      overflow = nil;
      cached = nil;
      cached_overflow = false;
    }

  let[@inline] vb_of t time =
    let f = time *. t.inv_width in
    if f >= max_vb_float then far_vb else int_of_float f

  (* Sorted insert by (time, seq) into the chain rooted at [get]/[set]. *)
  let insert_sorted ev ~head ~set_head =
    if head == nil || before ev head then begin
      ev.next <- head;
      set_head ev
    end
    else begin
      let prev = ref head in
      while !prev.next != nil && not (before ev !prev.next) do
        prev := !prev.next
      done;
      ev.next <- !prev.next;
      !prev.next <- ev
    end

  let insert_bucket t ev =
    let i = ev.vb land t.mask in
    insert_sorted ev ~head:t.buckets.(i) ~set_head:(fun e -> t.buckets.(i) <- e)

  let insert_overflow t ev =
    insert_sorted ev ~head:t.overflow ~set_head:(fun e -> t.overflow <- e)

  let next_pow2 n =
    let p = ref min_buckets in
    while !p < n && !p < max_buckets do
      p := !p * 2
    done;
    !p

  (* Adapt the bucket width to the observed event spacing: the average
     positive gap over the first (up to) 1024 events of the sorted
     schedule, doubled. Deterministic — no sampling randomness — and
     robust to time ties (zero gaps are ignored) and far outliers (the
     head of the schedule sets the cadence). *)
  let width_of_sorted old_width (evs : event array) =
    let n = Array.length evs in
    let k = min n 1024 in
    let sum = ref 0.0 and cnt = ref 0 in
    for i = 1 to k - 1 do
      let g = evs.(i).time -. evs.(i - 1).time in
      if g > 0.0 then begin
        sum := !sum +. g;
        incr cnt
      end
    done;
    if !cnt = 0 then old_width
    else Float.max 1e-9 (Float.min 1e6 (2.0 *. !sum /. float_of_int !cnt))

  let rebuild t =
    let evs = Array.make t.size nil in
    let j = ref 0 in
    Array.iter
      (fun head ->
        let e = ref head in
        while !e != nil do
          evs.(!j) <- !e;
          incr j;
          e := !e.next
        done)
      t.buckets;
    let e = ref t.overflow in
    while !e != nil do
      evs.(!j) <- !e;
      incr j;
      e := !e.next
    done;
    Array.sort (fun a b -> if before a b then -1 else 1) evs;
    t.width <- width_of_sorted t.width evs;
    t.inv_width <- 1.0 /. t.width;
    let n = next_pow2 t.size in
    t.buckets <- Array.make n nil;
    t.mask <- n - 1;
    t.cur_vb <- vb_of t t.lastprio;
    t.overflow <- nil;
    t.wheel_size <- 0;
    t.cached <- nil;
    (* Walk the sorted schedule backwards, prepending: each chain comes
       out ascending with O(1) work per event. *)
    for i = Array.length evs - 1 downto 0 do
      let ev = evs.(i) in
      let vb = vb_of t ev.time in
      ev.vb <- vb;
      if vb - t.cur_vb > far_horizon then begin
        ev.next <- t.overflow;
        t.overflow <- ev
      end
      else begin
        let b = vb land t.mask in
        ev.next <- t.buckets.(b);
        t.buckets.(b) <- ev;
        t.wheel_size <- t.wheel_size + 1
      end
    done

  let push t ev =
    t.cached <- nil;
    ev.vb <- vb_of t ev.time;
    if ev.vb - t.cur_vb > far_horizon then insert_overflow t ev
    else begin
      insert_bucket t ev;
      t.wheel_size <- t.wheel_size + 1
    end;
    t.size <- t.size + 1;
    if t.wheel_size > 2 * (t.mask + 1) && t.mask + 1 < max_buckets then
      rebuild t

  (* Locate the global minimum without removing it; memoized for the
     pop that typically follows. *)
  let find_min t =
    if t.size = 0 then nil
    else begin
      let best = ref nil in
      if t.wheel_size > 0 then begin
        (* One year, starting at the current bucket. *)
        let n = t.mask + 1 in
        let vb = ref t.cur_vb and count = ref 0 in
        while !best == nil && !count < n do
          let h = t.buckets.(!vb land t.mask) in
          if h != nil && h.vb = !vb then best := h
          else begin
            incr vb;
            incr count
          end
        done;
        if !best == nil then begin
          (* Nothing due this year: direct minimum over chain heads.
             Distinct buckets never hold equal times (same time = same
             bucket), so (time, seq) comparison needs no extra care. *)
          Array.iter
            (fun h ->
              if h != nil && (!best == nil || before h !best) then best := h)
            t.buckets
        end
      end;
      (match t.overflow with
      | o when o != nil && (!best == nil || before o !best) ->
        t.cached_overflow <- true;
        best := o
      | _ -> t.cached_overflow <- false);
      t.cached <- !best;
      !best
    end

  let peek t = if t.cached != nil then t.cached else find_min t

  let pop t =
    let ev = peek t in
    assert (ev != nil);
    if t.cached_overflow then t.overflow <- ev.next
    else begin
      let i = ev.vb land t.mask in
      (* The minimum is always the head of its chain. *)
      assert (t.buckets.(i) == ev);
      t.buckets.(i) <- ev.next;
      t.wheel_size <- t.wheel_size - 1
    end;
    ev.next <- nil;
    t.size <- t.size - 1;
    t.cached <- nil;
    t.lastprio <- ev.time;
    if not t.cached_overflow then t.cur_vb <- ev.vb
    else begin
      t.cached_overflow <- false;
      let vb = vb_of t ev.time in
      if vb <> far_vb then t.cur_vb <- vb
    end;
    if t.size >= 1 && t.wheel_size < (t.mask + 1) / 8 && t.mask + 1 > min_buckets
    then rebuild t;
    ev

  let peek_opt t =
    let ev = peek t in
    if ev == nil then None else Some ev
end

type queue = Qheap of Heap.t | Qwheel of Wheel.t

type t = {
  q : queue;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable running : bool;
  rng : Opennf_util.Rng.t;
  obs : Opennf_obs.Hub.t;
  m_events : Opennf_obs.Metrics.counter;
}

(* The wheel is the default; OPENNF_SCHEDULER=heap flips every engine
   in the process to the reference binary heap (the two dispatch
   identically — that is what the bench-check smoke diff asserts). *)
let default_queue () =
  match Sys.getenv_opt "OPENNF_SCHEDULER" with
  | Some ("heap" | "binheap") -> `Heap
  | _ -> `Wheel

let create ?(seed = 1) ?(obs = Opennf_obs.Hub.disabled) ?queue () =
  let kind = match queue with Some k -> k | None -> default_queue () in
  let t =
    {
      q =
        (match kind with
        | `Heap -> Qheap (Heap.create ())
        | `Wheel -> Qwheel (Wheel.create ()));
      clock = 0.0;
      next_seq = 0;
      processed = 0;
      running = false;
      rng = Opennf_util.Rng.create ~seed;
      obs;
      m_events = Opennf_obs.Metrics.counter (Opennf_obs.Hub.metrics obs) "engine.events";
    }
  in
  (* Observation reads the clock; it never schedules or touches the RNG,
     so instrumentation cannot perturb the simulation. *)
  Opennf_obs.Trace.set_clock (Opennf_obs.Hub.trace obs) (fun () -> t.clock);
  t

let obs t = t.obs
let now t = t.clock
let rng t = t.rng

let schedule_at t time thunk =
  if not (Float.is_finite time) then
    invalid_arg "Engine.schedule_at: time must be finite";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time t.clock);
  let ev = { time; seq = t.next_seq; thunk; vb = 0; next = nil } in
  (match t.q with Qheap h -> Heap.push h ev | Qwheel w -> Wheel.push w ev);
  t.next_seq <- t.next_seq + 1

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock +. delay) thunk

let peek t =
  match t.q with Qheap h -> Heap.peek h | Qwheel w -> Wheel.peek_opt w

let pop t = match t.q with Qheap h -> Heap.pop h | Qwheel w -> Wheel.pop w

let next_time t = match peek t with None -> infinity | Some ev -> ev.time

(* Dispatch exactly one event. Shared by [run], [step] and [run_until]:
   both queue implementations pop in identical (time, seq) order, so
   bounded stepping observes the same dispatch sequence as a free
   [run] regardless of OPENNF_SCHEDULER. *)
let dispatch_one t =
  let ev = pop t in
  t.clock <- ev.time;
  t.processed <- t.processed + 1;
  Opennf_obs.Metrics.incr t.m_events;
  ev.thunk ()

let step t =
  if t.running then invalid_arg "Engine.step: engine is already running";
  match peek t with
  | None -> false
  | Some _ ->
    t.running <- true;
    Fun.protect ~finally:(fun () -> t.running <- false) (fun () ->
        dispatch_one t);
    true

type stop = Empty | Reached_until

let run_until t ~until =
  if t.running then invalid_arg "Engine.run_until: engine is already running";
  t.running <- true;
  Fun.protect ~finally:(fun () -> t.running <- false) (fun () ->
      let rec loop () =
        match peek t with
        | None -> Empty
        | Some ev when ev.time > until -> Reached_until
        | Some _ ->
          dispatch_one t;
          loop ()
      in
      loop ())

let run ?(until = infinity) t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  let continue = ref true in
  while !continue do
    match peek t with
    | None -> continue := false
    | Some ev when ev.time > until -> continue := false
    | Some _ -> dispatch_one t
  done;
  if until <> infinity && t.clock < until then t.clock <- until;
  t.running <- false

let pending t =
  match t.q with Qheap h -> h.Heap.size | Qwheel w -> w.Wheel.size

let processed t = t.processed
