type event = { time : float; seq : int; thunk : unit -> unit }

(* Array-based binary min-heap ordered by (time, seq). *)
module Heap = struct
  type t = { mutable arr : event array; mutable size : int }

  let dummy = { time = 0.0; seq = 0; thunk = ignore }
  let create () = { arr = Array.make 64 dummy; size = 0 }

  let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push t ev =
    if t.size = Array.length t.arr then begin
      let bigger = Array.make (2 * t.size) dummy in
      Array.blit t.arr 0 bigger 0 t.size;
      t.arr <- bigger
    end;
    t.arr.(t.size) <- ev;
    t.size <- t.size + 1;
    (* Sift up. *)
    let i = ref (t.size - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      before t.arr.(!i) t.arr.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = t.arr.(parent) in
      t.arr.(parent) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := parent
    done

  let peek t = if t.size = 0 then None else Some t.arr.(0)

  let pop t =
    assert (t.size > 0);
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    t.arr.(0) <- t.arr.(t.size);
    t.arr.(t.size) <- dummy;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before t.arr.(l) t.arr.(!smallest) then smallest := l;
      if r < t.size && before t.arr.(r) t.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.arr.(!smallest) in
        t.arr.(!smallest) <- t.arr.(!i);
        t.arr.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

type t = {
  heap : Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
  mutable running : bool;
  rng : Opennf_util.Rng.t;
  obs : Opennf_obs.Hub.t;
  m_events : Opennf_obs.Metrics.counter;
}

let create ?(seed = 1) ?(obs = Opennf_obs.Hub.disabled) () =
  let t =
    {
      heap = Heap.create ();
      clock = 0.0;
      next_seq = 0;
      processed = 0;
      running = false;
      rng = Opennf_util.Rng.create ~seed;
      obs;
      m_events = Opennf_obs.Metrics.counter (Opennf_obs.Hub.metrics obs) "engine.events";
    }
  in
  (* Observation reads the clock; it never schedules or touches the RNG,
     so instrumentation cannot perturb the simulation. *)
  Opennf_obs.Trace.set_clock (Opennf_obs.Hub.trace obs) (fun () -> t.clock);
  t

let obs t = t.obs
let now t = t.clock
let rng t = t.rng

let schedule_at t time thunk =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is in the past (now %g)"
         time t.clock);
  Heap.push t.heap { time; seq = t.next_seq; thunk };
  t.next_seq <- t.next_seq + 1

let schedule t ~delay thunk =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t (t.clock +. delay) thunk

let run ?(until = infinity) t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  let continue = ref true in
  while !continue do
    match Heap.peek t.heap with
    | None -> continue := false
    | Some ev when ev.time > until -> continue := false
    | Some _ ->
      let ev = Heap.pop t.heap in
      t.clock <- ev.time;
      t.processed <- t.processed + 1;
      Opennf_obs.Metrics.incr t.m_events;
      ev.thunk ()
  done;
  if until <> infinity && t.clock < until then t.clock <- until;
  t.running <- false

let pending t = t.heap.Heap.size
let processed t = t.processed
