(** Conservative-lookahead parallel execution of multiple engines.

    Couples [n] {!Engine}s — one per shard, each stepped on its own
    domain — through deterministic cross-engine channels. The
    coordinator alternates two phases:

    - {b deliver}: with every engine quiescent, buffered cross-engine
      messages are merged in (time, src shard, seq) order and scheduled
      on their destination engines;
    - {b advance}: each engine [j] concurrently drains events strictly
      below [bound(j) = min over i <> j of next(i)] — no peer can emit
      a message stamped earlier than its own next event, so nothing can
      arrive in [j]'s past — plus the tie batch at exactly the global
      minimum time, which guarantees progress when horizons collide.

    Delivery order is a pure function of (time, src, seq) and never of
    domain scheduling, so a parallel run is deterministic and
    independent of the worker count (including 1: the whole protocol
    degenerates to a serial interleaving with identical results, which
    is how the test suite exercises it on single-core runners). *)

type t

val create : Engine.t array -> t
(** Couple the given engines. Index in the array is the shard id. *)

val shards : t -> int
val engine : t -> int -> Engine.t

val self : t -> int option
(** The shard whose window is executing on the calling domain, or
    [None] outside any window (setup phase, coordinator phase). *)

val post : t -> dst:int -> (unit -> unit) -> unit
(** [post t ~dst f] runs [f] on shard [dst]'s engine at the sender's
    current virtual time (zero-latency channel). From inside a shard
    window the message is buffered and delivered at the next round
    boundary; during the setup phase (no run in flight, everything on
    one domain) it takes effect immediately. [f] must only touch state
    owned by shard [dst]. *)

val call : t -> dst:int -> (('a -> unit) -> unit) -> 'a
(** [call t ~dst f] bridges a round trip: [f fill] runs on shard
    [dst]'s engine at the caller's current virtual time; whenever
    (later, from any shard window) [fill v] is invoked, the caller —
    which must be a {!Proc} on its own shard's engine — resumes with
    [v] at that virtual time. The virtual-time cost is identical to
    running [f] directly in a single-engine simulation: both hops ride
    zero-latency channels. *)

val run : ?workers:int -> t -> unit
(** Drive all engines to quiescence (every queue empty, no message in
    flight). [workers] caps the domains used (default: the process-wide
    persistent {!Opennf_util.Domain_pool.Workers} pool size, never more
    than there are shards). The worker count affects wall-clock time
    only, never results. Re-entrant calls are rejected. *)

val rounds : t -> int
(** Coordinator rounds executed by the last run (statistics). *)

val delivered : t -> int
(** Cross-engine messages delivered by the last run (statistics). *)

val workers_used : t -> int
(** Parallel worker domains the last run stepped engines on. *)
