(** Discrete-event simulation engine.

    A single-threaded event loop over virtual time (seconds, as float).
    Events scheduled for the same instant run in FIFO order of
    scheduling, which makes every run deterministic: same seed, same
    schedule, same results. *)

type t

val create :
  ?seed:int -> ?obs:Opennf_obs.Hub.t -> ?queue:[ `Wheel | `Heap ] -> unit -> t
(** [create ~seed ()] makes an engine whose clock is at 0.0 and whose
    root RNG is seeded with [seed] (default 1). [obs] (default
    {!Opennf_obs.Hub.disabled}) is the observability hub; the engine
    installs its virtual clock as the hub's trace timebase and counts
    dispatched events under ["engine.events"].

    [queue] selects the event-queue implementation: [`Wheel] (default)
    is an O(1)-amortized calendar-queue timing wheel; [`Heap] is the
    reference O(log n) binary heap. Both dispatch in identical
    (time, seq) order, so simulation results do not depend on the
    choice. When [queue] is omitted, the [OPENNF_SCHEDULER] environment
    variable picks ("heap" forces the reference heap). *)

val obs : t -> Opennf_obs.Hub.t
(** The hub this engine was created with, for components to share. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Opennf_util.Rng.t
(** The engine's root RNG. Subsystems should [Rng.split] it. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    [time] must not be in the past. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] after [delay] seconds ([delay >= 0]). *)

val run : ?until:float -> t -> unit
(** Process events until the queue is empty, or the clock would pass
    [until]. Re-entrant calls are not allowed. *)

val pending : t -> int
(** Number of queued events. *)

val processed : t -> int
(** Total number of events executed so far. *)
