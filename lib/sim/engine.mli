(** Discrete-event simulation engine.

    A single-threaded event loop over virtual time (seconds, as float).
    Events scheduled for the same instant run in FIFO order of
    scheduling, which makes every run deterministic: same seed, same
    schedule, same results. *)

type t

val create :
  ?seed:int -> ?obs:Opennf_obs.Hub.t -> ?queue:[ `Wheel | `Heap ] -> unit -> t
(** [create ~seed ()] makes an engine whose clock is at 0.0 and whose
    root RNG is seeded with [seed] (default 1). [obs] (default
    {!Opennf_obs.Hub.disabled}) is the observability hub; the engine
    installs its virtual clock as the hub's trace timebase and counts
    dispatched events under ["engine.events"].

    [queue] selects the event-queue implementation: [`Wheel] (default)
    is an O(1)-amortized calendar-queue timing wheel; [`Heap] is the
    reference O(log n) binary heap. Both dispatch in identical
    (time, seq) order, so simulation results do not depend on the
    choice. When [queue] is omitted, the [OPENNF_SCHEDULER] environment
    variable picks ("heap" forces the reference heap). *)

val obs : t -> Opennf_obs.Hub.t
(** The hub this engine was created with, for components to share. *)

val now : t -> float
(** Current virtual time in seconds. *)

val rng : t -> Opennf_util.Rng.t
(** The engine's root RNG. Subsystems should [Rng.split] it. *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when the clock reaches [time].
    [time] must not be in the past. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] after [delay] seconds ([delay >= 0]). *)

val run : ?until:float -> t -> unit
(** Process events until the queue is empty, or the clock would pass
    [until]. Re-entrant calls are not allowed. *)

(** {2 Bounded stepping}

    First-class bounded-advance entry points for external coordinators
    (see {!Par}): unlike piggybacking on [run ?until], they report why
    they stopped and never fast-forward the clock past the last
    dispatched event. All three entry points share one dispatch path,
    and both queue implementations ([`Wheel] and [`Heap]) pop in
    identical (time, seq) order, so a simulation driven by [step] /
    [run_until] observes exactly the event sequence a free [run] would
    — bounded stepping cannot perturb determinism. *)

val next_time : t -> float
(** Virtual time of the earliest pending event, or [infinity] when the
    queue is empty. Never dispatches anything. *)

val step : t -> bool
(** Dispatch exactly one event (the (time, seq) minimum). Returns
    [false] if the queue was empty. Raises [Invalid_argument
    "Engine.step: engine is already running"] when called from inside
    an executing event or a live [run]. *)

type stop = Empty | Reached_until

val run_until : t -> until:float -> stop
(** Dispatch events while their time is [<= until]. Returns [Empty]
    when the queue ran dry, [Reached_until] when the next pending event
    lies beyond [until] (the clock is left at the last dispatched
    event, NOT advanced to [until] — the caller owns the horizon).
    Raises [Invalid_argument] on re-entrant use, like {!step}. *)

val pending : t -> int
(** Number of queued events. *)

val processed : t -> int
(** Total number of events executed so far. *)
