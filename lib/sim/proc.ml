open Effect
open Effect.Deep

exception Not_in_process

type _ Effect.t += Sleep : float -> unit Effect.t

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t
(* [Suspend register] captures the current continuation as a resume thunk
   and hands it to [register]; the process stays blocked until the thunk
   is called (typically scheduled on the engine by Ivar.fill or
   Mailbox.send). *)

let spawn engine body =
  let run () =
    match_with body ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Sleep delay ->
              Some
                (fun (k : (a, unit) continuation) ->
                  Engine.schedule engine ~delay (fun () -> continue k ()))
            | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  register (fun () -> continue k ()))
            | _ -> None);
      }
  in
  Engine.schedule engine ~delay:0.0 run

let sleep delay =
  try perform (Sleep delay) with Effect.Unhandled _ -> raise Not_in_process

let yield () = sleep 0.0

let suspend register =
  try perform (Suspend register)
  with Effect.Unhandled _ -> raise Not_in_process

module Ivar = struct
  type 'a state = Empty of (unit -> unit) list | Full of 'a
  type 'a t = { engine : Engine.t; mutable state : 'a state }

  let create engine = { engine; state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Ivar.fill: already filled"
    | Empty waiters ->
      t.state <- Full v;
      (* Resume in registration order, after currently queued events. *)
      List.iter
        (fun resume -> Engine.schedule t.engine ~delay:0.0 resume)
        (List.rev waiters)

  let fill_if_empty t v =
    match t.state with
    | Full _ -> false
    | Empty _ ->
      fill t v;
      true

  let is_filled t = match t.state with Full _ -> true | Empty _ -> false
  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ ->
      (try
         perform
           (Suspend
              (fun resume ->
                match t.state with
                | Full _ ->
                  (* Filled between the check and the registration cannot
                     happen in a single-threaded engine, but resume anyway
                     to be safe. *)
                  Engine.schedule t.engine ~delay:0.0 resume
                | Empty waiters -> t.state <- Empty (resume :: waiters)))
       with Effect.Unhandled _ -> raise Not_in_process);
      (match t.state with
      | Full v -> v
      | Empty _ -> assert false)

  let read_timeout t ~timeout =
    (match t.state with
    | Full _ -> ()
    | Empty _ -> (
      try
        perform
          (Suspend
             (fun resume ->
               (* Resume on whichever comes first — the fill or the
                  timer — and make the loser a no-op. *)
               let resumed = ref false in
               let once () =
                 if not !resumed then begin
                   resumed := true;
                   resume ()
                 end
               in
               (match t.state with
               | Full _ -> Engine.schedule t.engine ~delay:0.0 once
               | Empty waiters -> t.state <- Empty (once :: waiters));
               Engine.schedule t.engine ~delay:timeout once))
      with Effect.Unhandled _ -> raise Not_in_process));
    peek t
end

module Mailbox = struct
  type 'a t = {
    engine : Engine.t;
    queue : 'a Queue.t;
    mutable waiters : (unit -> unit) list;
  }

  let create engine = { engine; queue = Queue.create (); waiters = [] }

  let send t v =
    Queue.push v t.queue;
    match t.waiters with
    | [] -> ()
    | resume :: rest ->
      t.waiters <- rest;
      Engine.schedule t.engine ~delay:0.0 resume

  let rec recv t =
    if Queue.is_empty t.queue then begin
      (try
         perform
           (Suspend (fun resume -> t.waiters <- t.waiters @ [ resume ]))
       with Effect.Unhandled _ -> raise Not_in_process);
      (* A competing receiver may have taken the message; loop. *)
      recv t
    end
    else Queue.pop t.queue

  let length t = Queue.length t.queue
end
