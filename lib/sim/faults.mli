(** Deterministic, seeded fault injection.

    One [Faults.t] per engine describes which links misbehave and which
    nodes (NF instances) crash or hang. Channels consult {!plan} per
    message; NF runtimes consult {!alive} before processing or replying
    and {!note_op} per southbound message. When no [Faults.t] is wired
    in — or no profile/fault is registered for a link or node — every
    consultation is a no-op and no randomness is drawn, so fault-free
    runs are bit-identical to runs of a build without this module.

    All decisions come from a private splitmix64 stream, so a given
    seed yields the same fault schedule on every run. *)

type t

val create : Engine.t -> ?seed:int -> unit -> t

(** {1 Link faults}

    A profile applies to the channel whose [name] matches. [drop] and
    [dup] are per-message probabilities (drop wins over dup); [jitter]
    is an extra delivery delay drawn uniformly from [\[0, jitter\]]
    seconds. Jitter is FIFO-preserving: it delays a message and every
    later one past it, modeling congestion rather than reordering. *)

val set_link :
  t -> name:string -> ?drop:float -> ?dup:float -> ?jitter:float -> unit -> unit

val clear_link : t -> name:string -> unit

val plan : t -> link:string -> int * float
(** [plan t ~link] decides one message's fate: [(copies, jitter)] where
    [copies] is 0 (dropped), 1 or 2, and [jitter] the extra delay. *)

val dropped_count : t -> int
val duplicated_count : t -> int

(** {1 Node faults}

    A crashed node is permanently silent: it drops packets, ignores
    southbound requests and sends no replies. A hung node behaves the
    same within its window and recovers after. *)

val crash_at : t -> node:string -> float -> unit
val crash_now : t -> node:string -> unit

val crash_on_nth_op : t -> node:string -> int -> unit
(** Crash when the node receives its [nth] southbound message (1-based,
    counted across the node's lifetime by {!note_op}). *)

val hang : t -> node:string -> from_:float -> until:float -> unit

val note_op : t -> node:string -> unit
(** Record a southbound message arrival; may trip {!crash_on_nth_op}. *)

val alive : t -> node:string -> bool
(** False iff the node is crashed or inside a hang window now. *)

val crashed : t -> node:string -> bool
val crash_time : t -> node:string -> float option
(** The effective crash instant, once it has passed. *)
