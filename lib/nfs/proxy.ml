module Hashing = Opennf_util.Hashing
module Bytes_io = Opennf_util.Bytes_io
open Opennf_net
open Opennf_state

let chunk_bytes = 65536
(* Bytes of object data delivered per continuation packet. *)

let object_size url =
  (* Deterministic in [512 KiB, ~2.25 MiB): 40 URLs total ≈ 55 MB, the
     size of the paper's full cache. *)
  let h = Int64.to_int (Hashing.fnv1a64 url) land max_int in
  (512 * 1024) + (h mod (1792 * 1024))

let request_payload url = "GET " ^ url
let continuation_payload = "CONT"

module Ip_set = Set.Make (Ipaddr)

type entry = {
  url : string;
  size : int;
  mutable refs : Ip_set.t;  (* Clients actively served from this entry. *)
  mutable entry_hits : int;
}

type conn = {
  key : Flow.key;
  client : Ipaddr.t;
  mutable serving : (string * int) option;  (* url, offset *)
  mutable requests : int;
}

type t = {
  conns : conn Store.Perflow.t;
  cache : (string, entry) Store.Keyed.t;
  mutable hits : int;
  mutable misses : int;
  mutable crashed : bool;
}

(* A cache entry is relevant to a filter when the filter names its URL,
   constrains an address one of its active readers matches, or has no
   address/app constraints at all. *)
let entry_relevant (filter : Filter.t) _url entry =
  match filter.Filter.app with
  | Some url -> String.equal url entry.url
  | None -> (
    match (filter.Filter.src, filter.Filter.dst) with
    | None, None -> true
    | _ -> Ip_set.exists (fun ip -> Filter.matches_host filter ip) entry.refs)

let create () =
  {
    conns = Store.Perflow.create ();
    cache = Store.Keyed.create ~relevant:entry_relevant ();
    hits = 0;
    misses = 0;
    crashed = false;
  }

let finish_transfer t conn url =
  conn.serving <- None;
  match Store.Keyed.find t.cache url with
  | None -> ()
  | Some entry -> entry.refs <- Ip_set.remove conn.client entry.refs

let start_transfer t conn url =
  let entry =
    match Store.Keyed.find t.cache url with
    | Some entry ->
      t.hits <- t.hits + 1;
      entry.entry_hits <- entry.entry_hits + 1;
      entry
    | None ->
      (* Miss: fetch from the origin and cache. *)
      t.misses <- t.misses + 1;
      let entry =
        { url; size = object_size url; refs = Ip_set.empty; entry_hits = 0 }
      in
      Store.Keyed.set t.cache url entry;
      entry
  in
  entry.refs <- Ip_set.add conn.client entry.refs;
  conn.serving <- Some (url, 0)

let advance_transfer t conn =
  match conn.serving with
  | None -> ()
  | Some (url, offset) -> (
    match Store.Keyed.find t.cache url with
    | None ->
      (* Serving state references an object this instance does not have:
         unrecoverable (Table 1, "ignore"). *)
      t.crashed <- true
    | Some entry ->
      let offset = offset + chunk_bytes in
      if offset >= entry.size then finish_transfer t conn url
      else conn.serving <- Some (url, offset))

let process_packet t (p : Packet.t) =
  if not t.crashed then begin
    let conn =
      match Store.Perflow.find t.conns p.key with
      | Some c -> c
      | None ->
        let c =
          {
            key = Flow.canonical p.key;
            client = p.key.Flow.src_ip;
            serving = None;
            requests = 0;
          }
        in
        Store.Perflow.set t.conns p.key c;
        c
    in
    if Ipaddr.equal p.key.Flow.src_ip conn.client then
      if String.length p.payload >= 4 && String.sub p.payload 0 4 = "GET " then begin
        conn.requests <- conn.requests + 1;
        let url = String.sub p.payload 4 (String.length p.payload - 4) in
        (match conn.serving with
        | Some (current, _) -> finish_transfer t conn current
        | None -> ());
        start_transfer t conn url
      end
      else if String.equal p.payload continuation_payload then
        advance_transfer t conn
  end

(* --- serialization ------------------------------------------------------ *)

let conn_chunk (c : conn) =
  Chunk.encode ~kind:"squid.conn" (fun w ->
      let open Bytes_io.Writer in
      int w (Ipaddr.to_int c.key.Flow.src_ip);
      int w (Ipaddr.to_int c.key.Flow.dst_ip);
      u16 w c.key.Flow.src_port;
      u16 w c.key.Flow.dst_port;
      int w (Ipaddr.to_int c.client);
      int w c.requests;
      match c.serving with
      | None -> bool w false
      | Some (url, offset) ->
        bool w true;
        string w url;
        int w offset)

let conn_of_chunk chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let src = Ipaddr.of_int (int r) in
  let dst = Ipaddr.of_int (int r) in
  let sport = u16 r in
  let dport = u16 r in
  let key = Flow.make ~src ~dst ~proto:Flow.Tcp ~sport ~dport () in
  let client = Ipaddr.of_int (int r) in
  let requests = int r in
  let serving =
    if bool r then begin
      let url = string r in
      let offset = int r in
      Some (url, offset)
    end
    else None
  in
  { key; client; serving; requests }

(* Cache-entry chunks carry the full object content, so transfer sizes in
   Table 1 are real. The content itself is synthetic filler. *)
let entry_chunk (e : entry) =
  Chunk.encode ~kind:"squid.entry" (fun w ->
      let open Bytes_io.Writer in
      string w e.url;
      int w e.size;
      int w e.entry_hits;
      list w (fun ip -> int w (Ipaddr.to_int ip)) (Ip_set.elements e.refs);
      string w (String.make e.size 'x'))

let entry_of_chunk chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let url = string r in
  let size = int r in
  let entry_hits = int r in
  let refs = Ip_set.of_list (List.map Ipaddr.of_int (list r (fun () -> int r))) in
  ignore (string r);
  { url; size; refs; entry_hits }

(* --- southbound implementation ------------------------------------------ *)

let impl t =
  {
    Opennf_sb.Nf_api.kind = "squid";
    process_packet = process_packet t;
    list_perflow =
      (fun filter ->
        List.map (fun (k, _) -> Filter.of_key k)
          (Store.Perflow.matching t.conns filter));
    export_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> None
        | Some key -> Option.map conn_chunk (Store.Perflow.find t.conns key));
    import_perflow =
      (fun _flowid chunk ->
        let c = conn_of_chunk chunk in
        Store.Perflow.set t.conns c.key c);
    delete_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> ()
        | Some key -> Store.Perflow.remove t.conns key);
    list_multiflow =
      (fun filter ->
        List.map (fun (url, _) -> Filter.of_app url)
          (Store.Keyed.matching t.cache filter));
    export_multiflow =
      (fun flowid ->
        match flowid.Filter.app with
        | None -> None
        | Some url -> Option.map entry_chunk (Store.Keyed.find t.cache url));
    import_multiflow =
      (fun _flowid chunk ->
        let incoming = entry_of_chunk chunk in
        match Store.Keyed.find t.cache incoming.url with
        | None -> Store.Keyed.set t.cache incoming.url incoming
        | Some existing ->
          existing.refs <- Ip_set.union existing.refs incoming.refs;
          existing.entry_hits <- existing.entry_hits + incoming.entry_hits);
    delete_multiflow =
      (fun flowid ->
        match flowid.Filter.app with
        | None -> ()
        | Some url -> Store.Keyed.remove t.cache url);
    export_allflows = (fun () -> []);
    import_allflows = (fun _ -> ());
  }

(* --- inspection ----------------------------------------------------------- *)

let hits t = t.hits
let misses t = t.misses
let crashed t = t.crashed
let cache_size t = Store.Keyed.size t.cache

let cache_bytes t =
  Store.Keyed.fold t.cache ~init:0 ~f:(fun _ e acc -> acc + e.size)

let in_progress t =
  Store.Perflow.fold t.conns ~init:0 ~f:(fun _ c acc ->
      if Option.is_some c.serving then acc + 1 else acc)
