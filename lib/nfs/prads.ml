module Bytes_io = Opennf_util.Bytes_io
module Arena = Opennf_util.Arena
module Pfa = Opennf_state.Store.Perflow_arena
open Opennf_net
open Opennf_state

(* Connection records are arena rows (the hot, million-entry state);
   asset records and the globals stay boxed — there is one asset per
   host, not per flow, and their service maps are genuinely structured. *)
let off_first = Pfa.payload_off (* f64 *)
let off_last = Pfa.payload_off + 8 (* f64 *)
let off_pkts = Pfa.payload_off + 16 (* int *)
let off_bytes = Pfa.payload_off + 24 (* int *)
let payload_bytes = 32

module Service_map = Map.Make (Int)

type asset = {
  ip : Ipaddr.t;
  mutable os_guess : string;
  mutable services : string Service_map.t;  (* port -> service *)
  mutable a_first_seen : float;
  mutable a_last_seen : float;
}

type globals = { mutable g_pkts : int; mutable g_bytes : int; mutable g_flows : int }

type t = {
  conns : Pfa.t;
  assets : asset Store.Per_host.t;
  globals : globals;
  mutable now : float;  (* Advanced by packet timestamps. *)
}

let state_id : t Type.Id.t = Type.Id.make ()

let create ?backend () =
  let make () =
    {
      conns = Pfa.create ~payload:payload_bytes ();
      assets = Store.Per_host.create ();
      globals = { g_pkts = 0; g_bytes = 0; g_flows = 0 };
      now = 0.0;
    }
  in
  match backend with
  | None -> make ()
  | Some b -> Backend.get_store b ~name:"prads" ~id:state_id ~make

let service_of_port = function
  | 80 -> "http"
  | 443 -> "https"
  | 22 -> "ssh"
  | 53 -> "dns"
  | 25 -> "smtp"
  | p when p < 1024 -> "well-known"
  | _ -> "ephemeral"

(* A stand-in for passive OS fingerprinting: deterministic per host. *)
let os_of_host ip =
  match Ipaddr.to_int ip mod 4 with
  | 0 -> "linux"
  | 1 -> "windows"
  | 2 -> "macos"
  | _ -> "bsd"

let touch_asset t ip =
  match Store.Per_host.find t.assets ip with
  | Some a ->
    a.a_last_seen <- t.now;
    a
  | None ->
    let a =
      {
        ip;
        os_guess = os_of_host ip;
        services = Service_map.empty;
        a_first_seen = t.now;
        a_last_seen = t.now;
      }
    in
    Store.Per_host.set t.assets ip a;
    a

let process_packet t (p : Packet.t) =
  t.now <- Float.max t.now p.sent_at;
  t.globals.g_pkts <- t.globals.g_pkts + 1;
  t.globals.g_bytes <- t.globals.g_bytes + p.wire_size;
  let a = Pfa.arena t.conns in
  let h = Pfa.find t.conns p.key in
  if h <> Arena.null then begin
    Arena.set_f64 a h off_last t.now;
    Arena.set_int a h off_pkts (Arena.get_int a h off_pkts + 1);
    Arena.set_int a h off_bytes (Arena.get_int a h off_bytes + p.wire_size)
  end
  else begin
    t.globals.g_flows <- t.globals.g_flows + 1;
    let h = Pfa.insert t.conns p.key in
    Arena.set_f64 a h off_first t.now;
    Arena.set_f64 a h off_last t.now;
    Arena.set_int a h off_pkts 1;
    Arena.set_int a h off_bytes p.wire_size
  end;
  let src_asset = touch_asset t p.key.Flow.src_ip in
  ignore (touch_asset t p.key.Flow.dst_ip);
  (* A reply from a server port reveals a service on the source host. *)
  if Packet.has_flag p Ack && p.key.Flow.src_port < 10000 then
    src_asset.services <-
      Service_map.add p.key.Flow.src_port
        (service_of_port p.key.Flow.src_port)
        src_asset.services

(* --- serialization ----------------------------------------------------- *)

(* The textual fingerprint hints PRADS records per connection; they make
   real PRADS state a couple hundred bytes per flow and are what makes
   compression worthwhile (§8.3). Derived from key fields only, so it is
   computed from the row at export time rather than stored. *)
let fingerprint_of ~proto_rank ~src ~dport =
  Printf.sprintf
    "match:tcp-syn[%s];os:%s;uptime:unknown;link:ethernet;distance:%d;service:%s"
    (match proto_rank with 0 -> "tcp" | 1 -> "udp" | _ -> "icmp")
    (os_of_host (Ipaddr.of_int src))
    (src mod 30)
    (service_of_port dport)

let conn_chunk t h =
  let a = Pfa.arena t.conns in
  Chunk.encode ~kind:"prads.conn" (fun w ->
      let open Bytes_io.Writer in
      let src = Arena.get_u32 a h 0 in
      let proto_rank = Arena.get_u8 a h 8 in
      let dport = Arena.get_u16 a h 11 in
      int w src;
      int w (Arena.get_u32 a h 4);
      u8 w proto_rank;
      u16 w (Arena.get_u16 a h 9);
      u16 w dport;
      f64 w (Arena.get_f64 a h off_first);
      f64 w (Arena.get_f64 a h off_last);
      int w (Arena.get_int a h off_pkts);
      int w (Arena.get_int a h off_bytes);
      string w (fingerprint_of ~proto_rank ~src ~dport))

(* Import replaces the row wholesale (same semantics as the boxed
   [Store.Perflow.set] this used to be). *)
let import_conn t chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let src = Ipaddr.of_int (int r) in
  let dst = Ipaddr.of_int (int r) in
  let proto =
    match u8 r with
    | 0 -> Flow.Tcp
    | 1 -> Flow.Udp
    | _ -> Flow.Icmp
  in
  let sport = u16 r in
  let dport = u16 r in
  let key = Flow.make ~src ~dst ~proto ~sport ~dport () in
  let first_seen = f64 r in
  let last_seen = f64 r in
  let pkts = int r in
  let bytes = int r in
  let _fingerprint = string r in
  let a = Pfa.arena t.conns in
  let h = Pfa.insert t.conns key in
  Arena.set_f64 a h off_first first_seen;
  Arena.set_f64 a h off_last last_seen;
  Arena.set_int a h off_pkts pkts;
  Arena.set_int a h off_bytes bytes

let asset_chunk (a : asset) =
  Chunk.encode ~kind:"prads.asset" (fun w ->
      let open Bytes_io.Writer in
      int w (Ipaddr.to_int a.ip);
      string w a.os_guess;
      list w
        (fun (port, svc) ->
          u16 w port;
          string w svc)
        (Service_map.bindings a.services);
      f64 w a.a_first_seen;
      f64 w a.a_last_seen)

let asset_of_chunk chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let ip = Ipaddr.of_int (int r) in
  let os_guess = string r in
  let services =
    List.fold_left
      (fun m (port, svc) -> Service_map.add port svc m)
      Service_map.empty
      (list r (fun () ->
           let port = u16 r in
           let svc = string r in
           (port, svc)))
  in
  let a_first_seen = f64 r in
  let a_last_seen = f64 r in
  { ip; os_guess; services; a_first_seen; a_last_seen }

(* --- southbound implementation ------------------------------------------ *)

let impl t =
  {
    Opennf_sb.Nf_api.kind = "prads";
    process_packet = process_packet t;
    list_perflow =
      (fun filter ->
        List.map (fun (k, _) -> Filter.of_key k) (Pfa.matching t.conns filter));
    export_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> None
        | Some key ->
          let h = Pfa.find t.conns key in
          if h = Arena.null then None else Some (conn_chunk t h));
    import_perflow = (fun _flowid chunk -> import_conn t chunk);
    delete_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> ()
        | Some key -> ignore (Pfa.remove t.conns key));
    list_multiflow =
      (fun filter ->
        List.map (fun (ip, _) -> Filter.of_src_host ip)
          (Store.Per_host.matching t.assets filter));
    export_multiflow =
      (fun flowid ->
        match Filter.exact_src_host flowid with
        | None -> None
        | Some ip -> Option.map asset_chunk (Store.Per_host.find t.assets ip));
    import_multiflow =
      (fun _flowid chunk ->
        let incoming = asset_of_chunk chunk in
        match Store.Per_host.find t.assets incoming.ip with
        | None -> Store.Per_host.set t.assets incoming.ip incoming
        | Some existing ->
          (* Merge: union services, earliest first-seen, latest last-seen. *)
          existing.services <-
            Service_map.union (fun _ a _ -> Some a) existing.services
              incoming.services;
          existing.a_first_seen <-
            Float.min existing.a_first_seen incoming.a_first_seen;
          existing.a_last_seen <-
            Float.max existing.a_last_seen incoming.a_last_seen);
    delete_multiflow =
      (fun flowid ->
        match Filter.exact_src_host flowid with
        | None -> ()
        | Some ip -> Store.Per_host.remove t.assets ip);
    export_allflows =
      (fun () ->
        [
          Chunk.encode ~kind:"prads.stats" (fun w ->
              let open Bytes_io.Writer in
              int w t.globals.g_pkts;
              int w t.globals.g_bytes;
              int w t.globals.g_flows);
        ]);
    import_allflows =
      (fun chunks ->
        List.iter
          (fun chunk ->
            let r = Chunk.reader chunk in
            let open Bytes_io.Reader in
            t.globals.g_pkts <- t.globals.g_pkts + int r;
            t.globals.g_bytes <- t.globals.g_bytes + int r;
            t.globals.g_flows <- t.globals.g_flows + int r)
          chunks);
  }

(* --- inspection ---------------------------------------------------------- *)

let connection_count t = Pfa.size t.conns
let asset_count t = Store.Per_host.size t.assets

let services_of t ip =
  match Store.Per_host.find t.assets ip with
  | None -> []
  | Some a -> Service_map.bindings a.services

let stats t = (t.globals.g_pkts, t.globals.g_bytes, t.globals.g_flows)

let last_seen t ip =
  Option.map (fun a -> a.a_last_seen) (Store.Per_host.find t.assets ip)
