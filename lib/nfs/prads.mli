(** A PRADS-like passive asset monitor.

    Identifies active hosts and the services they run, purely from
    observed traffic. State taxonomy (§7 of the paper):

    - {b per-flow}: connection metadata (first/last seen, packets,
      bytes);
    - {b multi-flow}: one asset record per host (OS guess, service set),
      merged on import when both instances know the host;
    - {b all-flows}: a global statistics structure, merged by summing. *)

open Opennf_net

type t

val create : ?backend:Opennf_state.Backend.t -> unit -> t
(** With [backend], the monitor's entire state (connections, assets,
    globals) is obtained from the backend's store registry (name
    ["prads"]): instances over the same shared backend observe one
    asset database, so reallocating flows between them moves nothing. *)

val impl : t -> Opennf_sb.Nf_api.impl

(** {1 Inspection} *)

val connection_count : t -> int
val asset_count : t -> int

val services_of : t -> Ipaddr.t -> (int * string) list
(** [(port, service)] pairs recorded for a host, sorted by port. *)

val stats : t -> int * int * int
(** (packets, bytes, flows) from the all-flows structure. *)

val last_seen : t -> Ipaddr.t -> float option
