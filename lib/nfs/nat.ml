module Bytes_io = Opennf_util.Bytes_io
module Arena = Opennf_util.Arena
module Pfa = Opennf_state.Store.Perflow_arena
open Opennf_net
open Opennf_state

type tcp_state = New | Established | Fin_wait | Closed

(* Conntrack entries are arena rows, not records: the key lives at the
   row head (owned by {!Store.Perflow_arena}) and the NF's fields sit in
   the payload. State codes match the chunk encoding, so export is a
   field-for-field copy with no intermediate boxing. *)
let off_state = Pfa.payload_off (* u8: 0=New 1=Established 2=Fin_wait 3=Closed *)
let off_tport = Pfa.payload_off + 1 (* u16 *)
let off_pkts = Pfa.payload_off + 3 (* int *)
let payload_bytes = 11

let state_to_code = function
  | New -> 0
  | Established -> 1
  | Fin_wait -> 2
  | Closed -> 3

let state_of_code = function
  | 0 -> New
  | 1 -> Established
  | 2 -> Fin_wait
  | _ -> Closed

type t = {
  nat_ip : Ipaddr.t;
  table : Pfa.t;
  port_base : int;
  port_limit : int;
  (* ports.(p - port_base) = handle of the entry holding external port
     [p], or [Arena.null]. Stale handles (entry freed behind our back)
     are treated as free. *)
  ports : Arena.handle array;
  mutable next_port : int; (* scan cursor within [port_base, port_limit] *)
  (* True after a full scan found every slot backing a live, unclosed
     flow. Nothing can become claimable until a slot is released or some
     entry reaches Closed, so allocation fails O(1) until then — under
     SYN floods past capacity the allocator would otherwise rescan the
     whole range per dropped packet. *)
  mutable full : bool;
  mutable invalid : int;
  mutable exhausted : int;
}

(* One witness per NF module: instances constructed over the same
   backend registry share the whole state record (conntrack table, port
   slots, allocation cursor) — the FlexState externalization. *)
let state_id : t Type.Id.t = Type.Id.make ()

let create ?backend ?(nat_ip = Ipaddr.v 192 0 2 1) ?(port_base = 20000)
    ?(port_limit = 65535) () =
  if port_base < 1 || port_limit > 65535 || port_base > port_limit then
    invalid_arg "Nat.create: need 1 <= port_base <= port_limit <= 65535";
  let make () =
    {
      nat_ip;
      table = Pfa.create ~payload:payload_bytes ();
      port_base;
      port_limit;
      ports = Array.make (port_limit - port_base + 1) Arena.null;
      next_port = port_base;
      full = false;
      invalid = 0;
      exhausted = 0;
    }
  in
  match backend with
  | None -> make ()
  | Some b -> Backend.get_store b ~name:"nat" ~id:state_id ~make

let arena t = Pfa.arena t.table

(* Release [port]'s slot if [h] still owns it (an import may have
   handed the slot to another entry in the meantime). *)
let release_port t h port =
  if port >= t.port_base && port <= t.port_limit then begin
    let i = port - t.port_base in
    if t.ports.(i) = h then begin
      t.ports.(i) <- Arena.null;
      t.full <- false
    end
  end

let remove_entry t h =
  release_port t h (Arena.get_u16 (arena t) h off_tport);
  ignore (Pfa.remove t.table (Pfa.key_of t.table h))

(* Allocate an external port: scan from the cursor, wrapping within
   [port_base, port_limit]. A slot is claimable when it is empty, its
   handle went stale, or its owner has reached Closed — in the last
   case the dead conntrack entry is evicted, which is how closed flows
   recycle their ports. Returns -1 when every port backs a live,
   unclosed flow. *)
let alloc_port t =
  if t.full then -1
  else begin
    let range = t.port_limit - t.port_base + 1 in
    let a = arena t in
    let result = ref (-1) in
    let tries = ref 0 in
    while !result = -1 && !tries < range do
      let port = t.next_port in
      t.next_port <- (if port = t.port_limit then t.port_base else port + 1);
      incr tries;
      let i = port - t.port_base in
      let h = t.ports.(i) in
      if h = Arena.null || not (Arena.is_live a h) then begin
        t.ports.(i) <- Arena.null;
        result := port
      end
      else if Arena.get_u8 a h off_state = state_to_code Closed then begin
        remove_entry t h;
        result := port
      end
    done;
    (* A failed scan wraps the cursor back to its start and frees
       nothing, so remembering the exhaustion is observationally free. *)
    if !result = -1 then t.full <- true;
    !result
  end

let advance_state t h (p : Packet.t) =
  let a = arena t in
  Arena.set_int a h off_pkts (Arena.get_int a h off_pkts + 1);
  let close () =
    Arena.set_u8 a h off_state 3;
    (* This entry's port is now reclaimable. *)
    t.full <- false
  in
  if Packet.has_flag p Rst then close ()
  else
    match state_of_code (Arena.get_u8 a h off_state) with
    | New -> if Packet.has_flag p Ack then Arena.set_u8 a h off_state 1
    | Established -> if Packet.has_flag p Fin then Arena.set_u8 a h off_state 2
    | Fin_wait -> if Packet.has_flag p Ack then close ()
    | Closed -> ()

let process_packet t (p : Packet.t) =
  let h = Pfa.find t.table p.key in
  if h <> Arena.null then advance_state t h p
  else if Packet.is_syn p then begin
    let port = alloc_port t in
    if port = -1 then begin
      (* Port range exhausted by live flows: no entry, drop as invalid. *)
      t.exhausted <- t.exhausted + 1;
      t.invalid <- t.invalid + 1
    end
    else begin
      let a = arena t in
      let h = Pfa.insert t.table p.key in
      Arena.set_u8 a h off_state (state_to_code New);
      Arena.set_u16 a h off_tport port;
      Arena.set_int a h off_pkts 1;
      t.ports.(port - t.port_base) <- h
    end
  end
  else t.invalid <- t.invalid + 1

(* --- serialization ------------------------------------------------------ *)

(* Wire format unchanged from the record-based implementation: src, dst,
   proto, ports, state, translated port, packet count — read straight
   from the row bytes into the writer's scratch. *)
let entry_chunk t h =
  let a = arena t in
  Chunk.encode ~kind:"nat.conntrack" (fun w ->
      let open Bytes_io.Writer in
      int w (Arena.get_u32 a h 0);
      int w (Arena.get_u32 a h 4);
      u8 w (Arena.get_u8 a h 8);
      u16 w (Arena.get_u16 a h 9);
      u16 w (Arena.get_u16 a h 11);
      u8 w (Arena.get_u8 a h off_state);
      u16 w (Arena.get_u16 a h off_tport);
      int w (Arena.get_int a h off_pkts))

(* Claim [port] for [h] on import if the slot is free or stale; a live
   competing owner keeps it (the allocator skips contested slots, so a
   duplicate translated port degrades capacity, never correctness). *)
let claim_port t h port =
  if port >= t.port_base && port <= t.port_limit then begin
    let i = port - t.port_base in
    let owner = t.ports.(i) in
    if owner = Arena.null || owner = h || not (Arena.is_live (arena t) owner)
    then t.ports.(i) <- h
  end

let import_chunk t chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let src = Ipaddr.of_int (int r) in
  let dst = Ipaddr.of_int (int r) in
  let proto = match u8 r with 0 -> Flow.Tcp | 1 -> Flow.Udp | _ -> Flow.Icmp in
  let sport = u16 r in
  let dport = u16 r in
  let key = Flow.make ~src ~dst ~proto ~sport ~dport () in
  let state = u8 r in
  let tport = u16 r in
  let pkts = int r in
  let a = arena t in
  let h = Pfa.insert t.table key in
  (* Overwrite semantics: an existing entry for the key is replaced,
     releasing whatever port it held before. *)
  let old_tport = Arena.get_u16 a h off_tport in
  if old_tport <> tport then release_port t h old_tport;
  Arena.set_u8 a h off_state state;
  Arena.set_u16 a h off_tport tport;
  Arena.set_int a h off_pkts pkts;
  if state = state_to_code Closed then t.full <- false;
  claim_port t h tport

(* --- southbound implementation ------------------------------------------ *)

let impl t =
  {
    Opennf_sb.Nf_api.kind = "iptables";
    process_packet = process_packet t;
    list_perflow =
      (fun filter ->
        List.map (fun (k, _) -> Filter.of_key k) (Pfa.matching t.table filter));
    export_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> None
        | Some key ->
          let h = Pfa.find t.table key in
          if h = Arena.null then None else Some (entry_chunk t h));
    import_perflow = (fun _flowid chunk -> import_chunk t chunk);
    delete_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> ()
        | Some key ->
          let h = Pfa.find t.table key in
          if h <> Arena.null then remove_entry t h);
    (* iptables has no multi- or all-flows state (§7). *)
    list_multiflow = (fun _ -> []);
    export_multiflow = (fun _ -> None);
    import_multiflow = (fun _ _ -> ());
    delete_multiflow = (fun _ -> ());
    export_allflows = (fun () -> []);
    import_allflows = (fun _ -> ());
  }

(* --- inspection ----------------------------------------------------------- *)

let entry_count t = Pfa.size t.table
let invalid_count t = t.invalid
let exhausted_count t = t.exhausted

let state_of t key =
  let h = Pfa.find t.table key in
  if h = Arena.null then None
  else Some (state_of_code (Arena.get_u8 (arena t) h off_state))

let translation_of t key =
  let h = Pfa.find t.table key in
  if h = Arena.null then None else Some (Arena.get_u16 (arena t) h off_tport)
