(** An iptables/conntrack-like NAT and stateful firewall.

    Tracks the 5-tuple, TCP state and the allocated translation port for
    every active flow (per-flow state only — like iptables, it has no
    multi- or all-flows state, §7). A non-SYN packet for an unknown flow
    is invalid and dropped, which is why moving conntrack entries
    alongside reroutes matters. *)

open Opennf_net

type tcp_state = New | Established | Fin_wait | Closed

type t

val create :
  ?backend:Opennf_state.Backend.t ->
  ?nat_ip:Ipaddr.t -> ?port_base:int -> ?port_limit:int -> unit -> t
(** Translation ports are drawn from [\[port_base, port_limit\]]
    (defaults 20000–65535) and recycled: allocation wraps within the
    range and reclaims ports whose flows have reached [Closed]. When
    every port backs a live unclosed flow, new flows are dropped (and
    counted) rather than handed an out-of-range port.

    With [backend], the whole conntrack state lives in the backend's
    store registry (under the name ["nat"]) instead of the instance:
    every instance created over the same shared backend sees one table
    (and the first creator's configuration), so moving flows between
    them is a pure forwarding-state operation. *)

val impl : t -> Opennf_sb.Nf_api.impl

(** {1 Inspection} *)

val entry_count : t -> int
val invalid_count : t -> int
(** Packets rejected for lacking a conntrack entry (including SYNs
    dropped on port exhaustion). *)

val exhausted_count : t -> int
(** SYNs dropped because the translation port range was exhausted. *)

val state_of : t -> Flow.key -> tcp_state option
val translation_of : t -> Flow.key -> int option
(** The external port allocated to a flow. *)
