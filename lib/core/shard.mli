(** Sharded control plane: flowspace partition and cross-shard admission.

    The flowspace is partitioned by a deterministic hash of the
    canonical 5-tuple into [shards] slices; each slice is owned by one
    {!Controller} instance with its own switch connection, inbox CPU,
    rule-cookie stripe and {!Sched} admission queue. All shards live in
    the same simulation engine, so a sharded fabric is one coherent
    virtual-time run — parallelism shows up as overlapped controller CPU
    in virtual time, and with [shards = 1] every event is bit-identical
    to the unsharded control plane.

    Operations whose footprint stays within one shard are admitted by
    that shard's scheduler exactly as before. An operation spanning two
    (or more) shards — a move whose source and destination live on
    different shards — is admitted by a handshake that acquires the
    footprint on every involved scheduler in ascending shard-id order,
    runs the unchanged operation code (controller home-routing sends
    each southbound call to the owning shard), and releases in reverse
    order. Ascending acquisition order makes the handshake deadlock-free. *)

open Opennf_net

(** {1 Partition} *)

val of_key : shards:int -> Flow.key -> int
(** Owning shard of a flow key: FNV-1a of the canonical 5-tuple mod
    [shards]. Both directions of a connection map to the same shard;
    [shards <= 1] always yields 0. *)

val of_name : shards:int -> string -> int
(** Default home shard for an NF, hashed from its name. *)

val of_filter : shards:int -> Filter.t -> int option
(** Owning shard when the filter pins an exact connection; [None] for
    wildcard filters (which may span shards). *)

(** {1 Shard groups} *)

type t
(** A group of shard controllers and their schedulers, index = shard id. *)

val make : Controller.t array -> Sched.t array -> t
(** The controllers must have been created with matching
    [?shard]/[?shards] arguments and already introduced to each other
    via {!Controller.set_group}. Registers the ["shard.cross_ops"]
    counter only when the group has more than one member. *)

val count : t -> int
val ctrl : t -> int -> Controller.t
val sched : t -> int -> Sched.t

val home : t -> Controller.nf -> int
(** The shard owning an NF (where it was attached). *)

val shard_of_key : t -> Flow.key -> int
(** {!of_key} with this group's shard count. *)

val shard_ids : t -> Controller.nf list -> int list
(** Distinct home shards of the given instances, ascending — the lock
    order used by cross-shard admission. *)

val cross_shard_ops : t -> int
(** Operations admitted through the multi-shard handshake so far. *)

val messages_handled : t -> int
(** Sum of {!Controller.messages_handled} across the group. *)

(** {1 Admission} *)

val submit :
  t -> footprint:Sched.Footprint.t -> nfs:Controller.nf list ->
  (unit -> 'a) -> 'a Opennf_sim.Proc.Ivar.t
(** Admit [body] under [footprint] on the home shards of [nfs]. One
    home shard: plain {!Sched.submit} there. Several: the cross-shard
    handshake described above. *)

val run :
  t -> footprint:Sched.Footprint.t -> nfs:Controller.nf list ->
  (unit -> 'a) -> 'a
(** {!submit} and block for the result. *)

val release_flow :
  t -> footprint:Sched.Footprint.t -> nfs:Controller.nf list ->
  Flow.key -> unit
(** Early-release [key] from a held footprint on every involved
    scheduler (the per-flow pipelining of §5.1.3, shard-aware). *)

(** {1 Long-lived holds}

    Used by {!Share}, whose strong-consistency locks outlive a single
    admission body. *)

type hold

val acquire :
  t -> footprint:Sched.Footprint.t -> nfs:Controller.nf list -> hold
(** Block until the footprint is admitted on every involved shard
    (ascending order), then keep holding it. *)

val release_hold : hold -> unit
(** Release on every shard, reverse acquisition order. *)
