module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf_state

let ( let* ) = Result.bind

(* --- chunk accounting ----------------------------------------------------- *)

type tally = { mutable chunks : int; mutable bytes : int }

let tally () = { chunks = 0; bytes = 0 }

let chunk_bytes chunks =
  List.fold_left (fun acc (_, c) -> acc + Chunk.size c) 0 chunks

let account t chunks =
  t.chunks <- t.chunks + List.length chunks;
  t.bytes <- t.bytes + chunk_bytes chunks

(* --- operation frame ------------------------------------------------------ *)

type frame = {
  ctrl : Controller.t;
  engine : Engine.t;
  started : float;
  options : Op_options.t;
}

let start ctrl ~options =
  let engine = Controller.engine ctrl in
  { ctrl; engine; started = Engine.now engine; options }

let now frame = Engine.now frame.engine

let deadline_guard frame ~nf =
  match frame.options.Op_options.deadline with
  | None -> Ok ()
  | Some d ->
    if Engine.now frame.engine -. frame.started > d then
      Error (Op_error.Timeout { nf; after = d })
    else Ok ()

(* --- small shared helpers ------------------------------------------------- *)

let bad_spec reason = Error (Op_error.Bad_spec { reason })

let ensure_alive ctrl nf =
  if not (Controller.nf_alive ctrl nf) then
    Error (Op_error.Nf_crashed { nf = Controller.nf_name nf })
  else Ok ()

let drain_pipelined pending =
  List.fold_left
    (fun acc iv ->
      match Proc.Ivar.read iv with
      | Ok () -> acc
      | Error e -> ( match acc with None -> Some e | Some _ -> acc))
    None pending

let background ctrl f =
  let engine = Controller.engine ctrl in
  let ivar = Proc.Ivar.create engine in
  Proc.spawn engine (fun () -> Proc.Ivar.fill ivar (f ()));
  ivar

let broadcast_put ctrl ~scope ~others chunks =
  if chunks <> [] then
    List.map (fun other -> Controller.put_async ctrl other ~scope chunks) others
    |> List.iter (fun iv -> ignore (Proc.Ivar.read iv))

(* --- the shared transfer core --------------------------------------------- *)

let transfer frame ~src ~dst ~scope ~filter ?(parallel = false)
    ?(delete = false) ?(late_lock = false) ?(compress = false) ?record
    ?on_captured ?on_deleted ?on_installed ?on_put_ack tally =
  let t = frame.ctrl in
  let fire hook = Option.iter (fun f -> f ()) hook in
  let* chunks =
    match (scope : Scope.t) with
    | Scope.All ->
      (* All-flows state never streams, is never deleted (there is no
         delAllflows, §4.2) and ignores the filter. *)
      let* chunks = Controller.get t src ~scope:Scope.All Filter.any in
      let* () =
        if chunks <> [] then Controller.put t dst ~scope:Scope.All chunks
        else Ok ()
      in
      Ok chunks
    | Scope.Per | Scope.Multi ->
      if parallel then begin
        let pending = ref [] in
        let got =
          Controller.get t src ~scope ~late_lock ~compress
            ~on_piece:(fun flowid chunk ->
              (* Each exported chunk is (optionally) deleted at the
                 source and put at the destination immediately (§5.1.3):
                 the state is never live at both instances. *)
              Option.iter (fun r -> r := (flowid, chunk) :: !r) record;
              if delete then
                pending :=
                  Controller.del_async t src ~scope [ flowid ] :: !pending;
              let ack = Controller.put_async t dst ~scope [ (flowid, chunk) ] in
              pending := ack :: !pending;
              match on_put_ack with
              | None -> ()
              | Some f ->
                Proc.spawn frame.engine (fun () ->
                    match Proc.Ivar.read ack with
                    | Ok () -> f flowid
                    | Error _ -> ()))
            filter
        in
        (match got with Ok _ -> fire on_captured | Error _ -> ());
        (* Drain the pipelined dels and puts even when something failed,
           so no supervised call is left dangling past a rollback. *)
        let first_err = drain_pipelined !pending in
        match (got, first_err) with
        | (Error _ as e), _ -> e
        | Ok _, Some e -> Error e
        | Ok chunks, None ->
          fire on_installed;
          Ok chunks
      end
      else begin
        let* chunks = Controller.get t src ~scope ~late_lock ~compress filter in
        Option.iter (fun r -> r := chunks) record;
        fire on_captured;
        let* () =
          if delete then Controller.del t src ~scope (List.map fst chunks)
          else Ok ()
        in
        if delete then fire on_deleted;
        let* () =
          if chunks <> [] then Controller.put t dst ~scope chunks else Ok ()
        in
        fire on_installed;
        (match on_put_ack with
        | None -> ()
        | Some f -> List.iter (fun (flowid, _) -> f flowid) chunks);
        Ok chunks
      end
  in
  account tally chunks;
  Ok ()
