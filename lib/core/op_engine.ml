module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf_state

let ( let* ) = Result.bind

(* --- chunk accounting ----------------------------------------------------- *)

type tally = { mutable chunks : int; mutable bytes : int }

let tally () = { chunks = 0; bytes = 0 }

let chunk_bytes chunks =
  List.fold_left (fun acc (_, c) -> acc + Chunk.size c) 0 chunks

let account t chunks =
  t.chunks <- t.chunks + List.length chunks;
  t.bytes <- t.bytes + chunk_bytes chunks

(* --- operation frame ------------------------------------------------------ *)

type frame = {
  ctrl : Controller.t;
  engine : Engine.t;
  started : float;
  options : Op_options.t;
  obs : Opennf_obs.Hub.t;
  span : int;  (** The operation's open trace span; 0 when not tracing. *)
}

let start ?(kind = "op") ctrl ~options =
  let engine = Controller.engine ctrl in
  let obs = Controller.obs ctrl in
  let metrics = Opennf_obs.Hub.metrics obs in
  Opennf_obs.Metrics.incr (Opennf_obs.Metrics.counter metrics "op.started");
  (* When the scheduler admitted us it left its entry's span as the
     ambient parent (consumed here even when not tracing, so a stale
     value never leaks to a later op). *)
  let parent = Controller.take_op_parent ctrl in
  let span =
    if Controller.shard_count ctrl > 1 then
      Opennf_obs.Trace.span_open (Opennf_obs.Hub.trace obs) ~parent ~cat:"op"
        ~name:kind
        ~attrs:[| ("shard", Opennf_obs.Trace.Int (Controller.shard_id ctrl)) |]
        ()
    else
      Opennf_obs.Trace.span_open (Opennf_obs.Hub.trace obs) ~parent ~cat:"op"
        ~name:kind ()
  in
  { ctrl; engine; started = Engine.now engine; options; obs; span }

let now frame = Engine.now frame.engine

(* Op-level phase mark: an instant under the operation's own span, for
   protocol steps that happen outside a transfer (buffer flushes, the
   two-phase handoff). Free when not tracing. *)
let mark frame name =
  if frame.span <> 0 then
    Opennf_obs.Trace.instant
      (Opennf_obs.Hub.trace frame.obs)
      ~parent:frame.span ~cat:"op" ~name ()

(* --- observation ----------------------------------------------------------- *)

let str s = Opennf_obs.Trace.Str s

let failed_counter_name = function
  | Op_error.Nf_crashed _ -> "op.failed.nf_crashed"
  | Op_error.Timeout _ -> "op.failed.timeout"
  | Op_error.Aborted _ -> "op.failed.aborted"
  | Op_error.Bad_spec _ -> "op.failed.bad_spec"

(* Terminal accounting for one operation: outcome counters, the duration
   histogram, and the span close (status + error attrs). Passes the
   result through so operations end with [finish frame @@ ...]. *)
let finish frame result =
  let metrics = Opennf_obs.Hub.metrics frame.obs in
  if Opennf_obs.Metrics.enabled metrics then begin
    (match result with
    | Ok _ ->
      Opennf_obs.Metrics.incr (Opennf_obs.Metrics.counter metrics "op.completed")
    | Error e ->
      Opennf_obs.Metrics.incr (Opennf_obs.Metrics.counter metrics "op.failed");
      Opennf_obs.Metrics.incr
        (Opennf_obs.Metrics.counter metrics (failed_counter_name e)));
    Opennf_obs.Metrics.observe
      (Opennf_obs.Metrics.hist metrics "op.duration_s")
      (Engine.now frame.engine -. frame.started)
  end;
  if frame.span <> 0 then begin
    let trace = Opennf_obs.Hub.trace frame.obs in
    match result with
    | Ok _ ->
      Opennf_obs.Trace.span_close trace frame.span
        ~attrs:[| ("status", str "ok") |] ()
    | Error e ->
      Opennf_obs.Trace.span_close trace frame.span
        ~attrs:
          [| ("status", str "error"); ("error", str (Op_error.kind e)) |]
        ()
  end;
  result

(* Satellite of the rollback path: every rollback stamps the triggering
   error onto the op's trace as a child span, so a failed move's
   unwinding is attributable in the export. *)
let rollback_span frame err =
  Opennf_obs.Metrics.incr
    (Opennf_obs.Metrics.counter (Opennf_obs.Hub.metrics frame.obs)
       "op.rollbacks");
  let trace = Opennf_obs.Hub.trace frame.obs in
  if Opennf_obs.Trace.enabled trace then
    Opennf_obs.Trace.span_open trace ~parent:frame.span ~cat:"op"
      ~name:"rollback"
      ~attrs:
        [|
          ("error", str (Op_error.kind err));
          ("detail", str (Op_error.to_string err));
        |]
      ()
  else 0

let rollback_done frame span =
  if span <> 0 then
    Opennf_obs.Trace.span_close (Opennf_obs.Hub.trace frame.obs) span ()

let deadline_guard frame ~nf =
  match frame.options.Op_options.deadline with
  | None -> Ok ()
  | Some d ->
    if Engine.now frame.engine -. frame.started > d then
      Error (Op_error.Timeout { nf; after = d })
    else Ok ()

(* --- small shared helpers ------------------------------------------------- *)

let bad_spec reason = Error (Op_error.Bad_spec { reason })

let ensure_alive ctrl nf =
  if not (Controller.nf_alive ctrl nf) then
    Error (Op_error.Nf_crashed { nf = Controller.nf_name nf })
  else Ok ()

let drain_pipelined pending =
  List.fold_left
    (fun acc iv ->
      match Proc.Ivar.read iv with
      | Ok () -> acc
      | Error e -> ( match acc with None -> Some e | Some _ -> acc))
    None pending

let background ctrl f =
  let engine = Controller.engine ctrl in
  let ivar = Proc.Ivar.create engine in
  Proc.spawn engine (fun () -> Proc.Ivar.fill ivar (f ()));
  ivar

let broadcast_put ctrl ~scope ~others chunks =
  if chunks <> [] then
    List.map (fun other -> Controller.put_async ctrl other ~scope chunks) others
    |> List.iter (fun iv -> ignore (Proc.Ivar.read iv))

(* --- the shared transfer core --------------------------------------------- *)

let transfer frame ~src ~dst ~scope ~filter ?(parallel = false)
    ?(delete = false) ?(late_lock = false) ?(compress = false) ?record
    ?on_captured ?on_deleted ?on_installed ?on_put_ack tally =
  let t = frame.ctrl in
  let trace = Opennf_obs.Hub.trace frame.obs in
  let tspan =
    if Opennf_obs.Trace.enabled trace then
      Opennf_obs.Trace.span_open trace ~parent:frame.span ~cat:"op"
        ~name:"transfer"
        ~attrs:
          [|
            ("scope", str (Scope.to_string scope));
            ("src", str (Controller.nf_name src));
            ("dst", str (Controller.nf_name dst));
            ("parallel", Opennf_obs.Trace.Bool parallel);
          |]
        ()
    else 0
  in
  (* Phase marks are emitted alongside the progress hooks; they read the
     clock but never schedule, so they cannot perturb virtual time. *)
  let phase name =
    if tspan <> 0 then
      Opennf_obs.Trace.instant trace ~parent:tspan ~cat:"op" ~name ()
  in
  let fire ph hook =
    phase ph;
    Option.iter (fun f -> f ()) hook
  in
  (* Backend fast paths: when src and dst resolve to the same (shared)
     store, or to the two ends of a replication stream that already
     carries this scope, there is no state to capture, delete or
     install — the "move" is a metadata flip. The progress hooks still
     fire (in order) so protocol drivers like [Move] see the usual
     lifecycle; [record] stays empty, so a rollback re-puts nothing;
     the tally accounts zero chunks and zero bytes, honestly. Without
     backends [state_path] answers [`Transfer] and the legacy code runs
     unchanged, event for event. *)
  let path = Controller.state_path t ~src ~dst ~scope in
  let result =
    match path with
    | `Same_store ->
      phase "same-store";
      Option.iter (fun r -> r := []) record;
      fire "captured" on_captured;
      if delete then fire "deleted" on_deleted;
      fire "installed" on_installed;
      Ok []
    | `Replicated b ->
      (* Wait until the standby applied everything the primary sent, so
         traffic rerouted to it cannot observe state from before the
         last processed packet. *)
      phase "replicated";
      Backend.drain b;
      Option.iter (fun r -> r := []) record;
      fire "captured" on_captured;
      if delete then fire "deleted" on_deleted;
      fire "installed" on_installed;
      Ok []
    | `Transfer -> (
    match (scope : Scope.t) with
    | Scope.All ->
      (* All-flows state never streams, is never deleted (there is no
         delAllflows, §4.2) and ignores the filter. *)
      let* chunks = Controller.get t src ~scope:Scope.All Filter.any in
      let* () =
        if chunks <> [] then Controller.put t dst ~scope:Scope.All chunks
        else Ok ()
      in
      Ok chunks
    | Scope.Per | Scope.Multi ->
      if parallel then begin
        let pending = ref [] in
        let got =
          Controller.get t src ~scope ~late_lock ~compress
            ~on_piece:(fun flowid chunk ->
              (* Each exported chunk is (optionally) deleted at the
                 source and put at the destination immediately (§5.1.3):
                 the state is never live at both instances. *)
              Option.iter (fun r -> r := (flowid, chunk) :: !r) record;
              if delete then
                pending :=
                  Controller.del_async t src ~scope [ flowid ] :: !pending;
              let ack = Controller.put_async t dst ~scope [ (flowid, chunk) ] in
              pending := ack :: !pending;
              match on_put_ack with
              | None -> ()
              | Some f ->
                Proc.spawn frame.engine (fun () ->
                    match Proc.Ivar.read ack with
                    | Ok () ->
                      phase "ack";
                      f flowid
                    | Error _ -> ()))
            filter
        in
        (match got with
        | Ok _ -> fire "captured" on_captured
        | Error _ -> ());
        (* Drain the pipelined dels and puts even when something failed,
           so no supervised call is left dangling past a rollback. *)
        let first_err = drain_pipelined !pending in
        match (got, first_err) with
        | (Error _ as e), _ -> e
        | Ok _, Some e -> Error e
        | Ok chunks, None ->
          fire "installed" on_installed;
          Ok chunks
      end
      else begin
        let* chunks = Controller.get t src ~scope ~late_lock ~compress filter in
        Option.iter (fun r -> r := chunks) record;
        fire "captured" on_captured;
        let* () =
          if delete then Controller.del t src ~scope (List.map fst chunks)
          else Ok ()
        in
        if delete then fire "deleted" on_deleted;
        let* () =
          if chunks <> [] then Controller.put t dst ~scope chunks else Ok ()
        in
        fire "installed" on_installed;
        (match on_put_ack with
        | None -> ()
        | Some f ->
          List.iter
            (fun (flowid, _) ->
              phase "ack";
              f flowid)
            chunks);
        Ok chunks
      end)
  in
  match result with
  | Error e ->
    if tspan <> 0 then
      Opennf_obs.Trace.span_close trace tspan
        ~attrs:[| ("status", str "error"); ("error", str (Op_error.kind e)) |]
        ();
    Error e
  | Ok chunks ->
    account tally chunks;
    let metrics = Opennf_obs.Hub.metrics frame.obs in
    if Opennf_obs.Metrics.enabled metrics then begin
      Opennf_obs.Metrics.add
        (Opennf_obs.Metrics.counter metrics "op.chunks")
        (List.length chunks);
      Opennf_obs.Metrics.add
        (Opennf_obs.Metrics.counter metrics "op.bytes")
        (chunk_bytes chunks)
    end;
    if tspan <> 0 then
      Opennf_obs.Trace.span_close trace tspan
        ~attrs:
          [|
            ("status", str "ok");
            ("chunks", Opennf_obs.Trace.Int (List.length chunks));
          |]
        ();
    Ok ()
