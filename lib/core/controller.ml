module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
module Protocol = Opennf_sb.Protocol
module Runtime = Opennf_sb.Runtime
open Opennf_net
open Opennf_state

type config = {
  nf_latency : float;
  sw_latency : float;
  sw_bandwidth : float option;
  msg_cost : float;
  msg_cost_per_byte : float;
  sb_batch_bytes : int option;
}

let default_config =
  {
    nf_latency = 0.002;
    sw_latency = 0.002;
    (* An OpenFlow control connection moves roughly 600 kB/s of
       packet-outs on the paper's testbed (~3000 packet-outs/s), so the
       final flow-mod of a move queues behind the event flush. *)
    sw_bandwidth = Some 600_000.0;
    msg_cost = 25e-6;
    msg_cost_per_byte = 0.35e-6;
    sb_batch_bytes = None;
  }

type resilience = {
  call_timeout : float;
  max_retries : int;
  backoff : float;
  liveness_misses : int;
  probe_period : float;
}

let default_resilience =
  {
    call_timeout = 0.05;
    max_retries = 2;
    backoff = 0.01;
    liveness_misses = 3;
    probe_period = 0.1;
  }

(* Worst-case budget of one resilient call: every attempt times out and
   every backoff is paid. Operations use it to bound their own waits. *)
let call_budget r =
  let rec backoffs n acc =
    if n >= r.max_retries then acc
    else backoffs (n + 1) (acc +. (r.backoff *. (2.0 ** float_of_int n)))
  in
  (float_of_int (r.max_retries + 1) *. r.call_timeout) +. backoffs 0 0.0

type nf = {
  nf_name : string;
  to_nf : Protocol.request Channel.t;
  runtime : Runtime.t;
  backend : Backend.t option;
  mutable misses : int;  (** Consecutive missed call deadlines. *)
  mutable live : bool;
}

type pending =
  | Get of {
      mutable chunks : (Filter.t * Chunk.t) list;  (* Reverse order. *)
      on_piece : (Filter.t -> Chunk.t -> unit) option;
      result : ((Filter.t * Chunk.t) list, Op_error.t) result Proc.Ivar.t;
    }
  | Write of (unit, Op_error.t) result Proc.Ivar.t

type event_sub = {
  es_nf : string;
  es_filter : Filter.t;
  es_callback : Packet.t -> Protocol.event_action -> unit;
}

type pkt_in_sub = {
  ps_filter : Filter.t;
  ps_callback : Packet.t -> unit;
}

type subscription = int

(* Inbound messages funneled through the serial controller CPU. *)
type inbound =
  | From_nf of Protocol.reply
  | From_switch of Switch.from_switch

type t = {
  engine : Engine.t;
  audit : Audit.t;
  switch : Switch.t;
  config : config;
  resilience : resilience option;
  faults : Faults.t option;
  to_switch : Switch.to_switch Channel.t;
  inbox : (inbound * int) Proc.Mailbox.t;  (* message, wire size *)
  nfs : (string, nf) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  barriers : (int, unit Proc.Ivar.t) Hashtbl.t;
  event_subs : (int, event_sub) Hashtbl.t;
  pkt_in_subs : (int, pkt_in_sub) Hashtbl.t;
  route_cookies : int Filter.Table.t;
  final_cookies : int Filter.Table.t;
  mutable on_death : (string -> unit) list;
  mutable next_req : int;
  mutable next_barrier : int;
  mutable next_cookie : int;
  mutable next_sub : int;
  mutable handled : int;
  trace : Opennf_obs.Trace.t;
  m_requests : Opennf_obs.Metrics.counter;
  m_request_bytes : Opennf_obs.Metrics.counter;
  m_retries : Opennf_obs.Metrics.counter;
  m_dup_pieces : Opennf_obs.Metrics.counter;
}

let base_priority = 100
let move_final_priority = 150
let phase1_priority = 200
let phase2_priority = 300

let engine t = t.engine
let obs t = Engine.obs t.engine
let audit t = t.audit
let messages_handled t = t.handled
let resilience t = t.resilience

(* Subscriptions live in hashtables so unsubscribe is O(1); dispatch
   still visits them in subscription (id) order for determinism. *)
let iter_subs tbl f =
  Hashtbl.fold (fun id sub acc -> (id, sub) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (_, sub) -> f sub)

let rec dispatch_reply t (reply : Protocol.reply) =
  match reply with
  | Protocol.Piece { req; flowid; chunk } -> (
    match Hashtbl.find_opt t.pending req with
    | Some (Get g) ->
      (* A retried or duplicated streaming get may replay a piece;
         idempotent request ids mean replays are ignored. *)
      if not (List.exists (fun (f, _) -> Filter.equal f flowid) g.chunks)
      then begin
        g.chunks <- (flowid, chunk) :: g.chunks;
        Option.iter (fun f -> f flowid chunk) g.on_piece
      end
      else Opennf_obs.Metrics.incr t.m_dup_pieces
    | Some (Write _) | None -> ())
  | Protocol.Done { req; chunks } -> (
    match Hashtbl.find_opt t.pending req with
    | Some (Get g) ->
      Hashtbl.remove t.pending req;
      ignore
        (Proc.Ivar.fill_if_empty g.result (Ok (List.rev g.chunks @ chunks)))
    | Some (Write _) | None -> ())
  | Protocol.Ack { req } -> (
    match Hashtbl.find_opt t.pending req with
    | Some (Write ivar) ->
      Hashtbl.remove t.pending req;
      ignore (Proc.Ivar.fill_if_empty ivar (Ok ()))
    | Some (Get _) | None -> ())
  | Protocol.Event { nf; packet; disposition } ->
    iter_subs t.event_subs (fun sub ->
        if
          String.equal sub.es_nf nf
          && Filter.matches_flow sub.es_filter packet.Packet.key
        then sub.es_callback packet disposition)
  | Protocol.Batch_reply { items } ->
    (* One inbound message, one msg_cost charge in [cpu_loop]; the
       members dispatch in send order. *)
    List.iter (dispatch_reply t) items

let dispatch t msg =
  match msg with
  | From_nf reply -> dispatch_reply t reply
  | From_switch (Switch.Packet_in { packet; cookie = _ }) ->
    iter_subs t.pkt_in_subs (fun sub ->
        if Filter.matches_flow sub.ps_filter packet.Packet.key then
          sub.ps_callback packet)
  | From_switch (Switch.Barrier_reply { id }) -> (
    match Hashtbl.find_opt t.barriers id with
    | Some ivar ->
      Hashtbl.remove t.barriers id;
      Proc.Ivar.fill ivar ()
    | None -> ())

let cpu_loop t () =
  let rec loop () =
    let msg, size = Proc.Mailbox.recv t.inbox in
    Proc.sleep
      (t.config.msg_cost +. (t.config.msg_cost_per_byte *. float_of_int size));
    t.handled <- t.handled + 1;
    dispatch t msg;
    loop ()
  in
  loop ()

let create engine audit ~switch ?(config = default_config) ?faults ?resilience
    () =
  let to_switch =
    Channel.create engine ~latency:config.sw_latency
      ?bandwidth:config.sw_bandwidth ?faults ~name:"ctrl->sw" ()
  in
  Channel.set_handler to_switch (Switch.control switch);
  let hub = Engine.obs engine in
  let metrics = Opennf_obs.Hub.metrics hub in
  let t =
    {
      engine;
      audit;
      switch;
      config;
      resilience;
      faults;
      to_switch;
      inbox = Proc.Mailbox.create engine;
      nfs = Hashtbl.create 16;
      pending = Hashtbl.create 64;
      barriers = Hashtbl.create 16;
      event_subs = Hashtbl.create 16;
      pkt_in_subs = Hashtbl.create 16;
      route_cookies = Filter.Table.create 64;
      final_cookies = Filter.Table.create 64;
      on_death = [];
      next_req = 0;
      next_barrier = 0;
      next_cookie = 1;
      next_sub = 0;
      handled = 0;
      trace = Opennf_obs.Hub.trace hub;
      m_requests = Opennf_obs.Metrics.counter metrics "sb.requests";
      m_request_bytes = Opennf_obs.Metrics.counter metrics "sb.request_bytes";
      m_retries = Opennf_obs.Metrics.counter metrics "ctrl.retries";
      m_dup_pieces = Opennf_obs.Metrics.counter metrics "ctrl.dup_pieces";
    }
  in
  let from_switch =
    Channel.create engine ~latency:config.sw_latency ?faults ~name:"sw->ctrl" ()
  in
  Channel.set_handler_with_size from_switch (fun msg size ->
      Proc.Mailbox.send t.inbox (From_switch msg, size));
  Switch.set_controller switch from_switch;
  Proc.spawn engine (cpu_loop t);
  t

let attach ?backend t runtime =
  let name = Runtime.name runtime in
  let backend =
    match backend with Some _ -> backend | None -> Runtime.backend runtime
  in
  let to_nf =
    Channel.create t.engine ~latency:t.config.nf_latency ?faults:t.faults
      ~name:("ctrl->" ^ name) ()
  in
  Channel.set_handler to_nf (Runtime.control runtime);
  let from_nf =
    Channel.create t.engine ~latency:t.config.nf_latency ?faults:t.faults
      ~name:(name ^ "->ctrl") ()
  in
  Channel.set_handler_with_size from_nf (fun reply size ->
      Proc.Mailbox.send t.inbox (From_nf reply, size));
  Runtime.set_controller runtime from_nf;
  let nf =
    { nf_name = name; to_nf; runtime; backend; misses = 0; live = true }
  in
  Hashtbl.replace t.nfs name nf;
  (match t.config.sb_batch_bytes with
  | None -> ()
  | Some bytes ->
    let msg = Protocol.Set_batching { bytes = Some bytes } in
    Channel.send to_nf ~size:(Protocol.request_size msg) msg);
  nf

let nf_name nf = nf.nf_name
let find_nf t name = Hashtbl.find_opt t.nfs name
let backend_of nf = nf.backend

(* Resolve how state labelled [scope] actually gets from [src] to [dst]:
   the classic bulk transfer, nothing at all (both instances read the
   same backend), or a drain of the replication stream already carrying
   it. The no-backend answer is [`Transfer] by construction, so fabrics
   that never attach a backend take exactly the legacy path. *)
let state_path _t ~src ~dst ~scope =
  match (src.backend, dst.backend) with
  | Some sb, Some db when Backend.same_store sb db && Backend.covers sb scope
    ->
    `Same_store
  | Some sb, Some db
    when Backend.replica_pair ~primary:sb ~standby:db
         && Backend.covers sb scope ->
    `Replicated sb
  | _ -> `Transfer

(* --- liveness monitor ---------------------------------------------------- *)

let nf_alive _t nf = nf.live
let on_nf_death t f = t.on_death <- f :: t.on_death

let declare_nf_dead t nf =
  if nf.live then begin
    nf.live <- false;
    (* Callbacks may run blocking operations (reroutes); give each its
       own process. *)
    List.iter
      (fun f -> Proc.spawn t.engine (fun () -> f nf.nf_name))
      (List.rev t.on_death)
  end

let note_deadline_miss t nf r =
  nf.misses <- nf.misses + 1;
  if nf.misses >= r.liveness_misses then declare_nf_dead t nf

let send_request t nf req =
  let size = Protocol.request_size req in
  Opennf_obs.Metrics.incr t.m_requests;
  Opennf_obs.Metrics.add t.m_request_bytes size;
  if Opennf_obs.Trace.enabled t.trace then
    Opennf_obs.Trace.instant t.trace ~cat:"sb"
      ~name:(Protocol.request_kind req)
      ~attrs:
        [|
          ("nf", Opennf_obs.Trace.Str nf.nf_name);
          ("bytes", Opennf_obs.Trace.Int size);
        |]
      ();
  Channel.send nf.to_nf ~size req

let fresh_req t =
  let r = t.next_req in
  t.next_req <- t.next_req + 1;
  r

(* Watch one outstanding call: wake at the deadline, resend with
   exponential backoff, and fail the result ivar with a typed error once
   the NF is declared dead or retries are exhausted. Replies that arrive
   after a resend hit the same request id, so duplicates are ignored by
   the pending table and [fill_if_empty]. *)
let supervise t nf ~req ~result ~resend r =
  Proc.spawn t.engine (fun () ->
      let rec attempt n =
        match Proc.Ivar.read_timeout result ~timeout:r.call_timeout with
        | Some _ -> nf.misses <- 0
        | None ->
          note_deadline_miss t nf r;
          if not nf.live then begin
            Hashtbl.remove t.pending req;
            ignore
              (Proc.Ivar.fill_if_empty result
                 (Error (Op_error.Nf_crashed { nf = nf.nf_name })))
          end
          else if n >= r.max_retries then begin
            Hashtbl.remove t.pending req;
            ignore
              (Proc.Ivar.fill_if_empty result
                 (Error
                    (Op_error.Timeout { nf = nf.nf_name; after = call_budget r })))
          end
          else begin
            Proc.sleep (r.backoff *. (2.0 ** float_of_int n));
            Opennf_obs.Metrics.incr t.m_retries;
            if Opennf_obs.Trace.enabled t.trace then
              Opennf_obs.Trace.instant t.trace ~cat:"sb" ~name:"retry"
                ~attrs:
                  [|
                    ("nf", Opennf_obs.Trace.Str nf.nf_name);
                    ("attempt", Opennf_obs.Trace.Int (n + 1));
                  |]
                ();
            resend ();
            attempt (n + 1)
          end
      in
      attempt 0)

(* --- the scope-indexed southbound API ------------------------------------ *)

let enable_events t nf filter action =
  send_request t nf (Protocol.Enable_events { filter; action })

let disable_events t nf filter =
  send_request t nf (Protocol.Disable_events { filter })

let dead_result t err =
  let ivar = Proc.Ivar.create t.engine in
  Proc.Ivar.fill ivar (Error err);
  ivar

let start_call t nf ~req ~request ~pending_entry ~result =
  (* Request ids come from one shared counter, so two in-flight calls can
     never share a pending slot; a collision here means an id was reused
     and replies would be mis-routed — fail loudly instead. *)
  if Hashtbl.mem t.pending req then
    invalid_arg
      (Printf.sprintf "Controller: duplicate in-flight request id %d" req);
  Hashtbl.replace t.pending req pending_entry;
  send_request t nf request;
  match t.resilience with
  | None -> ()
  | Some r ->
    supervise t nf ~req ~result ~resend:(fun () -> send_request t nf request) r

let get_async t nf ~scope ?on_piece ?(late_lock = false) ?(compress = false)
    filter =
  if not nf.live then
    dead_result t (Op_error.Nf_crashed { nf = nf.nf_name })
  else begin
    let req = fresh_req t in
    let stream = Option.is_some on_piece in
    let request =
      match (scope : Scope.t) with
      | Scope.Per ->
        Protocol.Get_perflow { req; filter; stream; late_lock; compress }
      | Scope.Multi -> Protocol.Get_multiflow { req; filter; stream; compress }
      | Scope.All -> Protocol.Get_allflows { req }
    in
    let result = Proc.Ivar.create t.engine in
    start_call t nf ~req ~request
      ~pending_entry:(Get { chunks = []; on_piece; result })
      ~result;
    result
  end

let put_async t nf ~scope chunks =
  if not nf.live then
    dead_result t (Op_error.Nf_crashed { nf = nf.nf_name })
  else begin
    let req = fresh_req t in
    let request =
      match (scope : Scope.t) with
      | Scope.Per -> Protocol.Put_perflow { req; chunks }
      | Scope.Multi -> Protocol.Put_multiflow { req; chunks }
      | Scope.All -> Protocol.Put_allflows { req; chunks = List.map snd chunks }
    in
    let result = Proc.Ivar.create t.engine in
    start_call t nf ~req ~request ~pending_entry:(Write result) ~result;
    result
  end

let del_async t nf ~scope flowids =
  match (scope : Scope.t) with
  | Scope.All ->
    (* All-flows state is always relevant; there is no delAllflows (§4.2). *)
    dead_result t
      (Op_error.Bad_spec { reason = "del is undefined for all-flows scope" })
  | Scope.Per | Scope.Multi ->
    if not nf.live then
      dead_result t (Op_error.Nf_crashed { nf = nf.nf_name })
    else begin
      let req = fresh_req t in
      let request =
        match (scope : Scope.t) with
        | Scope.Per -> Protocol.Del_perflow { req; flowids }
        | Scope.Multi | Scope.All -> Protocol.Del_multiflow { req; flowids }
      in
      let result = Proc.Ivar.create t.engine in
      start_call t nf ~req ~request ~pending_entry:(Write result) ~result;
      result
    end

let get t nf ~scope ?on_piece ?late_lock ?compress filter =
  Proc.Ivar.read (get_async t nf ~scope ?on_piece ?late_lock ?compress filter)

let put t nf ~scope chunks = Proc.Ivar.read (put_async t nf ~scope chunks)
let del t nf ~scope flowids = Proc.Ivar.read (del_async t nf ~scope flowids)

let probe_async t nf =
  if not nf.live then
    dead_result t (Op_error.Nf_crashed { nf = nf.nf_name })
  else begin
    let req = fresh_req t in
    let request = Protocol.Ping { req } in
    let result = Proc.Ivar.create t.engine in
    start_call t nf ~req ~request ~pending_entry:(Write result) ~result;
    result
  end

let start_probes t ~until =
  match t.resilience with
  | None ->
    invalid_arg "Controller.start_probes: no resilience config installed"
  | Some r ->
    Proc.spawn t.engine (fun () ->
        let rec loop () =
          Proc.sleep r.probe_period;
          if Engine.now t.engine <= until then begin
            (* Probe in name order for determinism; supervision marks
               misses and flips liveness. *)
            Hashtbl.fold (fun name _ acc -> name :: acc) t.nfs []
            |> List.sort String.compare
            |> List.iter (fun name ->
                   let nf = Hashtbl.find t.nfs name in
                   if nf.live then ignore (probe_async t nf));
            loop ()
          end
        in
        loop ())

(* --- legacy per-scope wrappers (thin aliases) ----------------------------- *)

(* Inlined rather than [Op_error.ok_exn], which is deprecated. *)
let ok_exn = function Ok v -> v | Error e -> raise (Op_error.Op_failed e)

let get_perflow t nf filter ?on_piece ?(late_lock = false) ?(compress = false)
    () =
  ok_exn (get t nf ~scope:Scope.Per ?on_piece ~late_lock ~compress filter)

let get_multiflow t nf filter ?on_piece ?(compress = false) () =
  ok_exn (get t nf ~scope:Scope.Multi ?on_piece ~compress filter)

let get_allflows t nf =
  List.map snd (ok_exn (get t nf ~scope:Scope.All Filter.any))

let put_perflow_async t nf chunks = put_async t nf ~scope:Scope.Per chunks
let put_perflow t nf chunks = ok_exn (put t nf ~scope:Scope.Per chunks)
let put_multiflow_async t nf chunks = put_async t nf ~scope:Scope.Multi chunks
let put_multiflow t nf chunks = ok_exn (put t nf ~scope:Scope.Multi chunks)
let del_perflow_async t nf flowids = del_async t nf ~scope:Scope.Per flowids
let del_perflow t nf flowids = ok_exn (del t nf ~scope:Scope.Per flowids)
let del_multiflow t nf flowids = ok_exn (del t nf ~scope:Scope.Multi flowids)

let put_allflows t nf chunks =
  ok_exn (put t nf ~scope:Scope.All (List.map (fun c -> (Filter.any, c)) chunks))

(* --- subscriptions ------------------------------------------------------- *)

let fresh_sub t =
  let s = t.next_sub in
  t.next_sub <- t.next_sub + 1;
  s

let subscribe_events t ~nf filter callback =
  let id = fresh_sub t in
  Hashtbl.replace t.event_subs id
    { es_nf = nf; es_filter = filter; es_callback = callback };
  id

let subscribe_packet_in t filter callback =
  let id = fresh_sub t in
  Hashtbl.replace t.pkt_in_subs id
    { ps_filter = filter; ps_callback = callback };
  id

(* Sub ids are unique across both tables, so removing from both is safe. *)
let unsubscribe t id =
  Hashtbl.remove t.event_subs id;
  Hashtbl.remove t.pkt_in_subs id

(* --- forwarding state ----------------------------------------------------- *)

let fresh_cookie t =
  let c = t.next_cookie in
  t.next_cookie <- t.next_cookie + 1;
  c

let install_rule t ~cookie ~priority ~filters ~actions =
  Channel.send t.to_switch ~size:128
    (Switch.Install { cookie; priority; filters; actions })

let remove_rule t ~cookie =
  Channel.send t.to_switch ~size:128 (Switch.Remove { cookie })

(* Barrier ids are a separate namespace from southbound request ids:
   they are matched in [t.barriers], never in [t.pending], so sharing
   the request counter would only invite confusion. *)
let barrier t =
  let id = t.next_barrier in
  t.next_barrier <- t.next_barrier + 1;
  let ivar = Proc.Ivar.create t.engine in
  Hashtbl.replace t.barriers id ivar;
  Channel.send t.to_switch ~size:128 (Switch.Barrier { id });
  Proc.Ivar.read ivar

let packet_out t ~port packet =
  Channel.send t.to_switch ~size:(128 + packet.Packet.wire_size)
    (Switch.Packet_out { port; packet })

let rule_filters filter =
  if Filter.is_symmetric filter then [ filter ]
  else [ filter; Filter.mirror filter ]

let memo_cookie t tbl filter =
  match Filter.Table.find_opt tbl filter with
  | Some c -> c
  | None ->
    let c = fresh_cookie t in
    Filter.Table.replace tbl filter c;
    c

let set_route t filter nf =
  let cookie = memo_cookie t t.route_cookies filter in
  install_rule t ~cookie ~priority:base_priority ~filters:(rule_filters filter)
    ~actions:[ Flowtable.Forward nf.nf_name ];
  barrier t

(* One stable cookie per filter for move-final routes: repeated moves of
   the same flows replace the previous final rule instead of piling up a
   rule per reallocation. *)
let final_route_cookie t filter = memo_cookie t t.final_cookies filter
