module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Protocol = Opennf_sb.Protocol
module Runtime = Opennf_sb.Runtime
open Opennf_net
open Opennf_state

type config = {
  nf_latency : float;
  sw_latency : float;
  sw_bandwidth : float option;
  msg_cost : float;
  msg_cost_per_byte : float;
}

let default_config =
  {
    nf_latency = 0.002;
    sw_latency = 0.002;
    (* An OpenFlow control connection moves roughly 600 kB/s of
       packet-outs on the paper's testbed (~3000 packet-outs/s), so the
       final flow-mod of a move queues behind the event flush. *)
    sw_bandwidth = Some 600_000.0;
    msg_cost = 25e-6;
    msg_cost_per_byte = 0.35e-6;
  }

type nf = {
  nf_name : string;
  to_nf : Protocol.request Channel.t;
  runtime : Runtime.t;
}

type pending =
  | Get of {
      mutable chunks : (Filter.t * Chunk.t) list;  (* Reverse order. *)
      on_piece : (Filter.t -> Chunk.t -> unit) option;
      result : (Filter.t * Chunk.t) list Proc.Ivar.t;
    }
  | Write of unit Proc.Ivar.t

type event_sub = {
  es_nf : string;
  es_filter : Filter.t;
  es_callback : Packet.t -> Protocol.event_action -> unit;
}

type pkt_in_sub = {
  ps_filter : Filter.t;
  ps_callback : Packet.t -> unit;
}

type subscription = int

(* Inbound messages funneled through the serial controller CPU. *)
type inbound =
  | From_nf of Protocol.reply
  | From_switch of Switch.from_switch

type t = {
  engine : Engine.t;
  audit : Audit.t;
  switch : Switch.t;
  config : config;
  to_switch : Switch.to_switch Channel.t;
  inbox : (inbound * int) Proc.Mailbox.t;  (* message, wire size *)
  nfs : (string, nf) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  barriers : (int, unit Proc.Ivar.t) Hashtbl.t;
  event_subs : (int, event_sub) Hashtbl.t;
  pkt_in_subs : (int, pkt_in_sub) Hashtbl.t;
  route_cookies : int Filter.Table.t;
  final_cookies : int Filter.Table.t;
  mutable next_req : int;
  mutable next_cookie : int;
  mutable next_sub : int;
  mutable handled : int;
}

let base_priority = 100
let move_final_priority = 150
let phase1_priority = 200
let phase2_priority = 300

let engine t = t.engine
let audit t = t.audit
let messages_handled t = t.handled

(* Subscriptions live in hashtables so unsubscribe is O(1); dispatch
   still visits them in subscription (id) order for determinism. *)
let iter_subs tbl f =
  Hashtbl.fold (fun id sub acc -> (id, sub) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (_, sub) -> f sub)

let dispatch t msg =
  match msg with
  | From_nf (Protocol.Piece { req; flowid; chunk }) -> (
    match Hashtbl.find_opt t.pending req with
    | Some (Get g) ->
      g.chunks <- (flowid, chunk) :: g.chunks;
      Option.iter (fun f -> f flowid chunk) g.on_piece
    | Some (Write _) | None -> ())
  | From_nf (Protocol.Done { req; chunks }) -> (
    match Hashtbl.find_opt t.pending req with
    | Some (Get g) ->
      Hashtbl.remove t.pending req;
      Proc.Ivar.fill g.result (List.rev g.chunks @ chunks)
    | Some (Write _) | None -> ())
  | From_nf (Protocol.Ack { req }) -> (
    match Hashtbl.find_opt t.pending req with
    | Some (Write ivar) ->
      Hashtbl.remove t.pending req;
      Proc.Ivar.fill ivar ()
    | Some (Get _) | None -> ())
  | From_nf (Protocol.Event { nf; packet; disposition }) ->
    iter_subs t.event_subs (fun sub ->
        if
          String.equal sub.es_nf nf
          && Filter.matches_flow sub.es_filter packet.Packet.key
        then sub.es_callback packet disposition)
  | From_switch (Switch.Packet_in { packet; cookie = _ }) ->
    iter_subs t.pkt_in_subs (fun sub ->
        if Filter.matches_flow sub.ps_filter packet.Packet.key then
          sub.ps_callback packet)
  | From_switch (Switch.Barrier_reply { id }) -> (
    match Hashtbl.find_opt t.barriers id with
    | Some ivar ->
      Hashtbl.remove t.barriers id;
      Proc.Ivar.fill ivar ()
    | None -> ())

let cpu_loop t () =
  let rec loop () =
    let msg, size = Proc.Mailbox.recv t.inbox in
    Proc.sleep
      (t.config.msg_cost +. (t.config.msg_cost_per_byte *. float_of_int size));
    t.handled <- t.handled + 1;
    dispatch t msg;
    loop ()
  in
  loop ()

let create engine audit ~switch ?(config = default_config) () =
  let to_switch =
    Channel.create engine ~latency:config.sw_latency
      ?bandwidth:config.sw_bandwidth ~name:"ctrl->sw" ()
  in
  Channel.set_handler to_switch (Switch.control switch);
  let t =
    {
      engine;
      audit;
      switch;
      config;
      to_switch;
      inbox = Proc.Mailbox.create engine;
      nfs = Hashtbl.create 16;
      pending = Hashtbl.create 64;
      barriers = Hashtbl.create 16;
      event_subs = Hashtbl.create 16;
      pkt_in_subs = Hashtbl.create 16;
      route_cookies = Filter.Table.create 64;
      final_cookies = Filter.Table.create 64;
      next_req = 0;
      next_cookie = 1;
      next_sub = 0;
      handled = 0;
    }
  in
  let from_switch =
    Channel.create engine ~latency:config.sw_latency ~name:"sw->ctrl" ()
  in
  Channel.set_handler_with_size from_switch (fun msg size ->
      Proc.Mailbox.send t.inbox (From_switch msg, size));
  Switch.set_controller switch from_switch;
  Proc.spawn engine (cpu_loop t);
  t

let attach t runtime =
  let name = Runtime.name runtime in
  let to_nf =
    Channel.create t.engine ~latency:t.config.nf_latency
      ~name:("ctrl->" ^ name) ()
  in
  Channel.set_handler to_nf (Runtime.control runtime);
  let from_nf =
    Channel.create t.engine ~latency:t.config.nf_latency
      ~name:(name ^ "->ctrl") ()
  in
  Channel.set_handler_with_size from_nf (fun reply size ->
      Proc.Mailbox.send t.inbox (From_nf reply, size));
  Runtime.set_controller runtime from_nf;
  let nf = { nf_name = name; to_nf; runtime } in
  Hashtbl.replace t.nfs name nf;
  nf

let nf_name nf = nf.nf_name
let find_nf t name = Hashtbl.find_opt t.nfs name

let send_request nf req =
  Channel.send nf.to_nf ~size:(Protocol.request_size req) req

let fresh_req t =
  let r = t.next_req in
  t.next_req <- t.next_req + 1;
  r

(* --- southbound wrappers ------------------------------------------------ *)

let enable_events _t nf filter action =
  send_request nf (Protocol.Enable_events { filter; action })

let disable_events _t nf filter =
  send_request nf (Protocol.Disable_events { filter })

let run_get t nf ?on_piece request =
  let req, request = request (fresh_req t) in
  let result = Proc.Ivar.create t.engine in
  Hashtbl.replace t.pending req (Get { chunks = []; on_piece; result });
  send_request nf request;
  Proc.Ivar.read result

let get_perflow t nf filter ?on_piece ?(late_lock = false) ?(compress = false)
    () =
  run_get t nf ?on_piece (fun req ->
      ( req,
        Protocol.Get_perflow
          { req; filter; stream = Option.is_some on_piece; late_lock; compress }
      ))

let get_multiflow t nf filter ?on_piece ?(compress = false) () =
  run_get t nf ?on_piece (fun req ->
      ( req,
        Protocol.Get_multiflow
          { req; filter; stream = Option.is_some on_piece; compress } ))

let get_allflows t nf =
  List.map snd
    (run_get t nf (fun req -> (req, Protocol.Get_allflows { req })))

let run_write_async t nf request =
  let req = fresh_req t in
  let ivar = Proc.Ivar.create t.engine in
  Hashtbl.replace t.pending req (Write ivar);
  send_request nf (request req);
  ivar

let put_perflow_async t nf chunks =
  run_write_async t nf (fun req -> Protocol.Put_perflow { req; chunks })

let put_perflow t nf chunks = Proc.Ivar.read (put_perflow_async t nf chunks)

let put_multiflow_async t nf chunks =
  run_write_async t nf (fun req -> Protocol.Put_multiflow { req; chunks })

let put_multiflow t nf chunks = Proc.Ivar.read (put_multiflow_async t nf chunks)

let del_perflow_async t nf flowids =
  run_write_async t nf (fun req -> Protocol.Del_perflow { req; flowids })

let del_perflow t nf flowids = Proc.Ivar.read (del_perflow_async t nf flowids)

let del_multiflow t nf flowids =
  Proc.Ivar.read
    (run_write_async t nf (fun req -> Protocol.Del_multiflow { req; flowids }))

let put_allflows t nf chunks =
  Proc.Ivar.read
    (run_write_async t nf (fun req -> Protocol.Put_allflows { req; chunks }))

(* --- subscriptions ------------------------------------------------------- *)

let fresh_sub t =
  let s = t.next_sub in
  t.next_sub <- t.next_sub + 1;
  s

let subscribe_events t ~nf filter callback =
  let id = fresh_sub t in
  Hashtbl.replace t.event_subs id
    { es_nf = nf; es_filter = filter; es_callback = callback };
  id

let subscribe_packet_in t filter callback =
  let id = fresh_sub t in
  Hashtbl.replace t.pkt_in_subs id
    { ps_filter = filter; ps_callback = callback };
  id

(* Sub ids are unique across both tables, so removing from both is safe. *)
let unsubscribe t id =
  Hashtbl.remove t.event_subs id;
  Hashtbl.remove t.pkt_in_subs id

(* --- forwarding state ----------------------------------------------------- *)

let fresh_cookie t =
  let c = t.next_cookie in
  t.next_cookie <- t.next_cookie + 1;
  c

let install_rule t ~cookie ~priority ~filters ~actions =
  Channel.send t.to_switch ~size:128
    (Switch.Install { cookie; priority; filters; actions })

let remove_rule t ~cookie =
  Channel.send t.to_switch ~size:128 (Switch.Remove { cookie })

let barrier t =
  let id = fresh_req t in
  let ivar = Proc.Ivar.create t.engine in
  Hashtbl.replace t.barriers id ivar;
  Channel.send t.to_switch ~size:128 (Switch.Barrier { id });
  Proc.Ivar.read ivar

let packet_out t ~port packet =
  Channel.send t.to_switch ~size:(128 + packet.Packet.wire_size)
    (Switch.Packet_out { port; packet })

let rule_filters filter =
  if Filter.is_symmetric filter then [ filter ]
  else [ filter; Filter.mirror filter ]

let memo_cookie t tbl filter =
  match Filter.Table.find_opt tbl filter with
  | Some c -> c
  | None ->
    let c = fresh_cookie t in
    Filter.Table.replace tbl filter c;
    c

let set_route t filter nf =
  let cookie = memo_cookie t t.route_cookies filter in
  install_rule t ~cookie ~priority:base_priority ~filters:(rule_filters filter)
    ~actions:[ Flowtable.Forward nf.nf_name ];
  barrier t

(* One stable cookie per filter for move-final routes: repeated moves of
   the same flows replace the previous final rule instead of piling up a
   rule per reallocation. *)
let final_route_cookie t filter = memo_cookie t t.final_cookies filter
