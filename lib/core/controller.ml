module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
module Protocol = Opennf_sb.Protocol
module Runtime = Opennf_sb.Runtime
open Opennf_net
open Opennf_state

type config = {
  nf_latency : float;
  sw_latency : float;
  sw_bandwidth : float option;
  msg_cost : float;
  msg_cost_per_byte : float;
  sb_batch_bytes : int option;
}

let default_config =
  {
    nf_latency = 0.002;
    sw_latency = 0.002;
    (* An OpenFlow control connection moves roughly 600 kB/s of
       packet-outs on the paper's testbed (~3000 packet-outs/s), so the
       final flow-mod of a move queues behind the event flush. *)
    sw_bandwidth = Some 600_000.0;
    msg_cost = 25e-6;
    msg_cost_per_byte = 0.35e-6;
    sb_batch_bytes = None;
  }

type resilience = {
  call_timeout : float;
  max_retries : int;
  backoff : float;
  liveness_misses : int;
  probe_period : float;
}

let default_resilience =
  {
    call_timeout = 0.05;
    max_retries = 2;
    backoff = 0.01;
    liveness_misses = 3;
    probe_period = 0.1;
  }

(* Worst-case budget of one resilient call: every attempt times out and
   every backoff is paid. Operations use it to bound their own waits. *)
let call_budget r =
  let rec backoffs n acc =
    if n >= r.max_retries then acc
    else backoffs (n + 1) (acc +. (r.backoff *. (2.0 ** float_of_int n)))
  in
  (float_of_int (r.max_retries + 1) *. r.call_timeout) +. backoffs 0 0.0

type pending =
  | Get of {
      mutable chunks : (Filter.t * Chunk.t) list;  (* Reverse order. *)
      on_piece : (Filter.t -> Chunk.t -> unit) option;
      result : ((Filter.t * Chunk.t) list, Op_error.t) result Proc.Ivar.t;
    }
  | Write of (unit, Op_error.t) result Proc.Ivar.t

type event_sub = {
  es_nf : string;
  es_filter : Filter.t;
  es_callback : Packet.t -> Protocol.event_action -> unit;
}

type pkt_in_sub = {
  ps_filter : Filter.t;
  ps_callback : Packet.t -> unit;
}

(* Inbound messages funneled through the serial controller CPU. *)
type inbound =
  | From_nf of Protocol.reply
  | From_switch of Switch.from_switch

(* An NF record carries its [home] shard: the controller instance whose
   channels, request-id namespace and pending table serve this NF. All
   NF-directed calls route through [nf.home], so an operation led by one
   shard transparently reaches instances owned by another (the cross-
   shard handshake in {!Shard} only has to arbitrate admission, not
   plumbing). With one shard, [home] is physically the only controller
   and every path below is byte-identical to the unsharded code. *)
type nf = {
  nf_name : string;
  to_nf : Protocol.request Channel.t;
  runtime : Runtime.t;
  backend : Backend.t option;
  home : t;
  mutable misses : int;  (** Consecutive missed call deadlines. *)
  mutable live : bool;
}

and t = {
  engine : Engine.t;
  audit : Audit.t;
  switch : Switch.t;
  config : config;
  resilience : resilience option;
  faults : Faults.t option;
  shard : int;  (** This instance's shard id, 0 .. shards-1. *)
  shards : int;  (** Shard count of the control plane this belongs to. *)
  mutable peers : t array;
      (** The full shard group, set by {!set_group}; [[||]] = just us. *)
  mutable par : Opennf_sim.Par.t option;
      (** Set by the parallel fabric: each shard runs on its own engine
          and cross-shard touches must ride the {!Opennf_sim.Par}
          channels. [None] (always, in a serial fabric) keeps every
          path below the unchanged direct code. *)
  to_switch : Switch.to_switch Channel.t;
  inbox : (inbound * int) Proc.Mailbox.t;  (* message, wire size *)
  nfs : (string, nf) Hashtbl.t;
  pending : (int, pending) Hashtbl.t;
  barriers : (int, unit Proc.Ivar.t) Hashtbl.t;
  event_subs : (int, event_sub) Hashtbl.t;
  pkt_in_subs : (int, pkt_in_sub) Hashtbl.t;
  route_cookies : int Filter.Table.t;
  final_cookies : int Filter.Table.t;
  mutable on_death : (string -> unit) list;
  mutable next_req : int;
  mutable next_barrier : int;
  mutable next_cookie : int;
  mutable next_sub : int;
  mutable handled : int;
  mutable op_parent : int;
      (** Ambient parent span for the next op started on this shard: the
          scheduler stamps its entry's span here just before running the
          admitted body, and {!Op_engine.start} consumes it, linking the
          op span under its scheduler span (queue-wait attribution).
          Safe as an ambient: procs are cooperative and the consume
          happens before the op's first blocking point. 0 = unlinked. *)
  trace : Opennf_obs.Trace.t;
  m_requests : Opennf_obs.Metrics.counter;
  m_request_bytes : Opennf_obs.Metrics.counter;
  m_retries : Opennf_obs.Metrics.counter;
  m_dup_pieces : Opennf_obs.Metrics.counter;
  m_handled : Opennf_obs.Metrics.counter option;
      (** Per-shard inbound-message counter; only registered when
          [shards > 1] so single-shard metric snapshots are unchanged. *)
}

(* A subscription names the shard(s) actually holding the entry: event
   subscriptions live on the NF's home shard, packet-in subscriptions on
   every shard (packet-ins are routed to shards by flow hash, and a
   wildcard subscription must see all of them). *)
type subscription = (t * int) list

let base_priority = 100
let move_final_priority = 150
let phase1_priority = 200
let phase2_priority = 300

let engine t = t.engine
let obs t = Engine.obs t.engine
let audit t = t.audit
let messages_handled t = t.handled
let resilience t = t.resilience
let shard_id t = t.shard
let shard_count t = t.shards

let metric_suffix t =
  if t.shards <= 1 then "" else Printf.sprintf ".shard%d" t.shard

let set_op_parent t span = t.op_parent <- span

let take_op_parent t =
  let span = t.op_parent in
  t.op_parent <- 0;
  span

(* The shard group. Before {!set_group} (and always at [shards = 1]) a
   controller is its own whole group. *)
let group t = if Array.length t.peers = 0 then [| t |] else t.peers

let set_group peers =
  if Array.length peers = 0 then invalid_arg "Controller.set_group: empty";
  Array.iter (fun p -> p.peers <- peers) peers

let set_par t par = Array.iter (fun p -> p.par <- Some par) (group t)
let par t = t.par

(* --- parallel shard bridging ----------------------------------------------

   In a parallel fabric every shard has its own engine on its own
   domain, so any touch of another shard's mutable state (its channels,
   counters, tables) must execute on that shard's engine. The helpers
   below route such touches over the deterministic cross-engine
   channels of {!Opennf_sim.Par}; cross-engine delivery is zero-latency
   in virtual time, so bridged calls complete at the same virtual times
   as the serial direct calls. In a serial fabric [par] is [None] and
   every helper reduces to the unchanged direct code. *)

(* [Some (par, src)] exactly when the calling code runs inside shard
   [src]'s window of a parallel run and [h] lives on a different shard. *)
let remote_ctx h =
  match h.par with
  | None -> None
  | Some par -> (
    match Opennf_sim.Par.self par with
    | Some src when src <> h.shard -> Some (par, src)
    | _ -> None)

(* Run [f] on [h]'s engine: directly when local (or serial, or during
   single-domain setup), via a post otherwise. Fire-and-forget. *)
let on_home h f =
  match remote_ctx h with
  | None -> f ()
  | Some (par, _) -> Opennf_sim.Par.post par ~dst:h.shard f

(* Bridge a home-side async call: the caller gets an ivar on its own
   shard's engine, filled at the same virtual time the home-side ivar
   resolves. [make] runs on [h]'s engine and returns an ivar there. *)
let bridged par ~src h make =
  let result = Proc.Ivar.create (group h).(src).engine in
  Opennf_sim.Par.post par ~dst:h.shard (fun () ->
      let iv = make () in
      Proc.spawn h.engine (fun () ->
          let v = Proc.Ivar.read iv in
          Opennf_sim.Par.post par ~dst:src (fun () ->
              ignore (Proc.Ivar.fill_if_empty result v))));
  result


(* Subscriptions live in hashtables so unsubscribe is O(1); dispatch
   still visits them in subscription (id) order for determinism. *)
let iter_subs tbl f =
  Hashtbl.fold (fun id sub acc -> (id, sub) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (_, sub) -> f sub)

let rec dispatch_reply t (reply : Protocol.reply) =
  match reply with
  | Protocol.Piece { req; flowid; chunk } -> (
    match Hashtbl.find_opt t.pending req with
    | Some (Get g) ->
      (* A retried or duplicated streaming get may replay a piece;
         idempotent request ids mean replays are ignored. *)
      if not (List.exists (fun (f, _) -> Filter.equal f flowid) g.chunks)
      then begin
        g.chunks <- (flowid, chunk) :: g.chunks;
        Option.iter (fun f -> f flowid chunk) g.on_piece
      end
      else Opennf_obs.Metrics.incr t.m_dup_pieces
    | Some (Write _) | None -> ())
  | Protocol.Done { req; chunks } -> (
    match Hashtbl.find_opt t.pending req with
    | Some (Get g) ->
      Hashtbl.remove t.pending req;
      ignore
        (Proc.Ivar.fill_if_empty g.result (Ok (List.rev g.chunks @ chunks)))
    | Some (Write _) | None -> ())
  | Protocol.Ack { req } -> (
    match Hashtbl.find_opt t.pending req with
    | Some (Write ivar) ->
      Hashtbl.remove t.pending req;
      ignore (Proc.Ivar.fill_if_empty ivar (Ok ()))
    | Some (Get _) | None -> ())
  | Protocol.Event { nf; packet; disposition } ->
    iter_subs t.event_subs (fun sub ->
        if
          String.equal sub.es_nf nf
          && Filter.matches_flow sub.es_filter packet.Packet.key
        then sub.es_callback packet disposition)
  | Protocol.Batch_reply { items } ->
    (* One inbound message, one msg_cost charge in [cpu_loop]; the
       members dispatch in send order. *)
    List.iter (dispatch_reply t) items

let dispatch t msg =
  match msg with
  | From_nf reply -> dispatch_reply t reply
  | From_switch (Switch.Packet_in { packet; cookie = _ }) ->
    iter_subs t.pkt_in_subs (fun sub ->
        if Filter.matches_flow sub.ps_filter packet.Packet.key then
          sub.ps_callback packet)
  | From_switch (Switch.Barrier_reply { id }) -> (
    match Hashtbl.find_opt t.barriers id with
    | Some ivar ->
      Hashtbl.remove t.barriers id;
      Proc.Ivar.fill ivar ()
    | None -> ())

let cpu_loop t () =
  let rec loop () =
    let msg, size = Proc.Mailbox.recv t.inbox in
    Proc.sleep
      (t.config.msg_cost +. (t.config.msg_cost_per_byte *. float_of_int size));
    t.handled <- t.handled + 1;
    (match t.m_handled with
    | Some c -> Opennf_obs.Metrics.incr c
    | None -> ());
    dispatch t msg;
    loop ()
  in
  loop ()

let create engine audit ~switch ?(config = default_config) ?faults ?resilience
    ?(shard = 0) ?(shards = 1) ?conn () =
  if shards < 1 then invalid_arg "Controller.create: shards must be >= 1";
  if shard < 0 || shard >= shards then
    invalid_arg "Controller.create: shard out of range";
  (* At [shards = 1] every name below (channels, metrics) is exactly the
     single-controller name, so seeded runs stay byte-identical. *)
  let sw_out_name =
    if shards <= 1 then "ctrl->sw" else Printf.sprintf "ctrl%d->sw" shard
  in
  let sw_in_name =
    if shards <= 1 then "sw->ctrl" else Printf.sprintf "sw->ctrl%d" shard
  in
  let msuf = if shards <= 1 then "" else Printf.sprintf ".shard%d" shard in
  let to_switch =
    Channel.create engine ~latency:config.sw_latency
      ?bandwidth:config.sw_bandwidth ?faults ~name:sw_out_name ()
  in
  let hub = Engine.obs engine in
  let metrics = Opennf_obs.Hub.metrics hub in
  let t =
    {
      engine;
      audit;
      switch;
      config;
      resilience;
      faults;
      shard;
      shards;
      peers = [||];
      par = None;
      to_switch;
      inbox = Proc.Mailbox.create engine;
      nfs = Hashtbl.create 16;
      pending = Hashtbl.create 64;
      barriers = Hashtbl.create 16;
      event_subs = Hashtbl.create 16;
      pkt_in_subs = Hashtbl.create 16;
      route_cookies = Filter.Table.create 64;
      final_cookies = Filter.Table.create 64;
      on_death = [];
      next_req = 0;
      next_barrier = 0;
      next_cookie = 1;
      next_sub = 0;
      handled = 0;
      op_parent = 0;
      trace = Opennf_obs.Hub.trace hub;
      m_requests = Opennf_obs.Metrics.counter metrics ("sb.requests" ^ msuf);
      m_request_bytes =
        Opennf_obs.Metrics.counter metrics ("sb.request_bytes" ^ msuf);
      m_retries = Opennf_obs.Metrics.counter metrics ("ctrl.retries" ^ msuf);
      m_dup_pieces =
        Opennf_obs.Metrics.counter metrics ("ctrl.dup_pieces" ^ msuf);
      m_handled =
        (if shards <= 1 then None
         else Some (Opennf_obs.Metrics.counter metrics ("ctrl.handled" ^ msuf)));
    }
  in
  let from_switch =
    Channel.create engine ~latency:config.sw_latency ?faults ~name:sw_in_name ()
  in
  Channel.set_handler_with_size from_switch (fun msg size ->
      Proc.Mailbox.send t.inbox (From_switch msg, size));
  (* Our connection id: barrier replies come back on it, and our
     flow-mods are fenced per connection (OpenFlow barrier semantics),
     so shard barriers never wait on another shard's installs. A
     parallel fabric pins the id ([?conn]) so every switch replica
     agrees that controller [k] speaks on connection [k]. *)
  let conn =
    match conn with
    | None -> Switch.register_controller switch from_switch
    | Some c ->
      Switch.register_controller_at switch ~conn:c from_switch;
      c
  in
  Channel.set_handler to_switch (Switch.control_from switch ~conn);
  Proc.spawn engine (cpu_loop t);
  t

let attach ?backend t runtime =
  let name = Runtime.name runtime in
  let backend =
    match backend with Some _ -> backend | None -> Runtime.backend runtime
  in
  let to_nf =
    Channel.create t.engine ~latency:t.config.nf_latency ?faults:t.faults
      ~name:("ctrl->" ^ name) ()
  in
  Channel.set_handler to_nf (Runtime.control runtime);
  let from_nf =
    Channel.create t.engine ~latency:t.config.nf_latency ?faults:t.faults
      ~name:(name ^ "->ctrl") ()
  in
  Channel.set_handler_with_size from_nf (fun reply size ->
      Proc.Mailbox.send t.inbox (From_nf reply, size));
  Runtime.set_controller runtime from_nf;
  Runtime.bind_shard runtime t.shard;
  let nf =
    { nf_name = name; to_nf; runtime; backend; home = t; misses = 0; live = true }
  in
  Hashtbl.replace t.nfs name nf;
  (match t.config.sb_batch_bytes with
  | None -> ()
  | Some bytes ->
    let msg = Protocol.Set_batching { bytes = Some bytes } in
    Channel.send to_nf ~size:(Protocol.request_size msg) msg);
  nf

let nf_name nf = nf.nf_name
let nf_home nf = nf.home
let nf_shard nf = nf.home.shard

let find_nf t name =
  match Hashtbl.find_opt t.nfs name with
  | Some _ as r -> r
  | None ->
    let peers = group t in
    let rec scan i =
      if i >= Array.length peers then None
      else if peers.(i) == t then scan (i + 1)
      else
        match Hashtbl.find_opt peers.(i).nfs name with
        | Some _ as r -> r
        | None -> scan (i + 1)
    in
    scan 0

(* The shard whose tables serve [name]: its home if attached anywhere,
   else the asking shard (subscriptions to not-yet-attached names stay
   local, as before). *)
let home_of_name t name =
  if Hashtbl.mem t.nfs name then t
  else begin
    let peers = group t in
    let rec scan i =
      if i >= Array.length peers then t
      else if Hashtbl.mem peers.(i).nfs name then peers.(i)
      else scan (i + 1)
    in
    scan 0
  end

let backend_of nf = nf.backend

(* Resolve how state labelled [scope] actually gets from [src] to [dst]:
   the classic bulk transfer, nothing at all (both instances read the
   same backend), or a drain of the replication stream already carrying
   it. The no-backend answer is [`Transfer] by construction, so fabrics
   that never attach a backend take exactly the legacy path. *)
let state_path _t ~src ~dst ~scope =
  match (src.backend, dst.backend) with
  | Some sb, Some db when Backend.same_store sb db && Backend.covers sb scope
    ->
    `Same_store
  | Some sb, Some db
    when Backend.replica_pair ~primary:sb ~standby:db
         && Backend.covers sb scope ->
    `Replicated sb
  | _ -> `Transfer

(* --- liveness monitor ---------------------------------------------------- *)

(* [nf.live] is written only on the home engine; a remote reader asks
   the home shard (a same-virtual-time round trip) rather than racing
   on the field. *)
let nf_alive _t nf =
  match remote_ctx nf.home with
  | None -> nf.live
  | Some (par, _) ->
    Opennf_sim.Par.call par ~dst:nf.home.shard (fun fill -> fill nf.live)

(* Death callbacks register on every shard: a watcher (failover app,
   operation rollback) holds whichever controller it was built on, but
   the NF that dies fires its *home* shard's list. *)
let on_nf_death t f =
  Array.iter
    (fun p -> on_home p (fun () -> p.on_death <- f :: p.on_death))
    (group t)

let declare_nf_dead _t nf =
  on_home nf.home (fun () ->
      let t = nf.home in
      if nf.live then begin
        nf.live <- false;
        (* Callbacks may run blocking operations (reroutes); give each
           its own process. *)
        List.iter
          (fun f -> Proc.spawn t.engine (fun () -> f nf.nf_name))
          (List.rev t.on_death)
      end)

let note_deadline_miss t nf r =
  nf.misses <- nf.misses + 1;
  if nf.misses >= r.liveness_misses then declare_nf_dead t nf

let send_request _t nf req =
  (* Route through the NF's home shard: its trace/metrics handles are
     the ones labelled with the owning shard. *)
  let t = nf.home in
  let size = Protocol.request_size req in
  Opennf_obs.Metrics.incr t.m_requests;
  Opennf_obs.Metrics.add t.m_request_bytes size;
  if Opennf_obs.Trace.enabled t.trace then
    Opennf_obs.Trace.instant t.trace ~cat:"sb"
      ~name:(Protocol.request_kind req)
      ~attrs:
        [|
          ("nf", Opennf_obs.Trace.Str nf.nf_name);
          ("bytes", Opennf_obs.Trace.Int size);
        |]
      ();
  Channel.send nf.to_nf ~size req

let fresh_req t =
  let r = t.next_req in
  t.next_req <- t.next_req + 1;
  r

(* Watch one outstanding call: wake at the deadline, resend with
   exponential backoff, and fail the result ivar with a typed error once
   the NF is declared dead or retries are exhausted. Replies that arrive
   after a resend hit the same request id, so duplicates are ignored by
   the pending table and [fill_if_empty]. *)
let supervise t nf ~req ~result ~resend r =
  Proc.spawn t.engine (fun () ->
      let rec attempt n =
        match Proc.Ivar.read_timeout result ~timeout:r.call_timeout with
        | Some _ -> nf.misses <- 0
        | None ->
          note_deadline_miss t nf r;
          if not nf.live then begin
            Hashtbl.remove t.pending req;
            ignore
              (Proc.Ivar.fill_if_empty result
                 (Error (Op_error.Nf_crashed { nf = nf.nf_name })))
          end
          else if n >= r.max_retries then begin
            Hashtbl.remove t.pending req;
            ignore
              (Proc.Ivar.fill_if_empty result
                 (Error
                    (Op_error.Timeout { nf = nf.nf_name; after = call_budget r })))
          end
          else begin
            Proc.sleep (r.backoff *. (2.0 ** float_of_int n));
            Opennf_obs.Metrics.incr t.m_retries;
            if Opennf_obs.Trace.enabled t.trace then
              Opennf_obs.Trace.instant t.trace ~cat:"sb" ~name:"retry"
                ~attrs:
                  [|
                    ("nf", Opennf_obs.Trace.Str nf.nf_name);
                    ("attempt", Opennf_obs.Trace.Int (n + 1));
                  |]
                ();
            resend ();
            attempt (n + 1)
          end
      in
      attempt 0)

(* --- the scope-indexed southbound API ------------------------------------ *)

let enable_events _t nf filter action =
  on_home nf.home (fun () ->
      send_request nf.home nf (Protocol.Enable_events { filter; action }))

let disable_events _t nf filter =
  on_home nf.home (fun () ->
      send_request nf.home nf (Protocol.Disable_events { filter }))

let dead_result t err =
  let ivar = Proc.Ivar.create t.engine in
  Proc.Ivar.fill ivar (Error err);
  ivar

let start_call t nf ~req ~request ~pending_entry ~result =
  (* Request ids come from one shared counter, so two in-flight calls can
     never share a pending slot; a collision here means an id was reused
     and replies would be mis-routed — fail loudly instead. *)
  if Hashtbl.mem t.pending req then
    invalid_arg
      (Printf.sprintf "Controller: duplicate in-flight request id %d" req);
  Hashtbl.replace t.pending req pending_entry;
  send_request t nf request;
  match t.resilience with
  | None -> ()
  | Some r ->
    supervise t nf ~req ~result ~resend:(fun () -> send_request t nf request) r

let get_async_home nf ~scope ?on_piece ?(late_lock = false) ?(compress = false)
    filter =
  let t = nf.home in
  if not nf.live then
    dead_result t (Op_error.Nf_crashed { nf = nf.nf_name })
  else begin
    let req = fresh_req t in
    let stream = Option.is_some on_piece in
    let request =
      match (scope : Scope.t) with
      | Scope.Per ->
        Protocol.Get_perflow { req; filter; stream; late_lock; compress }
      | Scope.Multi -> Protocol.Get_multiflow { req; filter; stream; compress }
      | Scope.All -> Protocol.Get_allflows { req }
    in
    let result = Proc.Ivar.create t.engine in
    start_call t nf ~req ~request
      ~pending_entry:(Get { chunks = []; on_piece; result })
      ~result;
    result
  end

let get_async _t nf ~scope ?on_piece ?late_lock ?compress filter =
  match remote_ctx nf.home with
  | None -> get_async_home nf ~scope ?on_piece ?late_lock ?compress filter
  | Some (par, src) ->
    (* The piece callback closes over caller-shard state (the op's
       record sinks): dispatch posts it back to the caller's engine. *)
    let on_piece =
      Option.map
        (fun f flowid chunk ->
          Opennf_sim.Par.post par ~dst:src (fun () -> f flowid chunk))
        on_piece
    in
    bridged par ~src nf.home (fun () ->
        get_async_home nf ~scope ?on_piece ?late_lock ?compress filter)

let put_async_home nf ~scope chunks =
  let t = nf.home in
  if not nf.live then
    dead_result t (Op_error.Nf_crashed { nf = nf.nf_name })
  else begin
    let req = fresh_req t in
    let request =
      match (scope : Scope.t) with
      | Scope.Per -> Protocol.Put_perflow { req; chunks }
      | Scope.Multi -> Protocol.Put_multiflow { req; chunks }
      | Scope.All -> Protocol.Put_allflows { req; chunks = List.map snd chunks }
    in
    let result = Proc.Ivar.create t.engine in
    start_call t nf ~req ~request ~pending_entry:(Write result) ~result;
    result
  end

let put_async _t nf ~scope chunks =
  match remote_ctx nf.home with
  | None -> put_async_home nf ~scope chunks
  | Some (par, src) ->
    bridged par ~src nf.home (fun () -> put_async_home nf ~scope chunks)

let del_async_home nf ~scope flowids =
  let t = nf.home in
  match (scope : Scope.t) with
  | Scope.All ->
    (* All-flows state is always relevant; there is no delAllflows (§4.2). *)
    dead_result t
      (Op_error.Bad_spec { reason = "del is undefined for all-flows scope" })
  | Scope.Per | Scope.Multi ->
    if not nf.live then
      dead_result t (Op_error.Nf_crashed { nf = nf.nf_name })
    else begin
      let req = fresh_req t in
      let request =
        match (scope : Scope.t) with
        | Scope.Per -> Protocol.Del_perflow { req; flowids }
        | Scope.Multi | Scope.All -> Protocol.Del_multiflow { req; flowids }
      in
      let result = Proc.Ivar.create t.engine in
      start_call t nf ~req ~request ~pending_entry:(Write result) ~result;
      result
    end

let del_async _t nf ~scope flowids =
  match remote_ctx nf.home with
  | None -> del_async_home nf ~scope flowids
  | Some (par, src) ->
    bridged par ~src nf.home (fun () -> del_async_home nf ~scope flowids)

let get t nf ~scope ?on_piece ?late_lock ?compress filter =
  Proc.Ivar.read (get_async t nf ~scope ?on_piece ?late_lock ?compress filter)

let put t nf ~scope chunks = Proc.Ivar.read (put_async t nf ~scope chunks)
let del t nf ~scope flowids = Proc.Ivar.read (del_async t nf ~scope flowids)

let probe_async_home nf =
  let t = nf.home in
  if not nf.live then
    dead_result t (Op_error.Nf_crashed { nf = nf.nf_name })
  else begin
    let req = fresh_req t in
    let request = Protocol.Ping { req } in
    let result = Proc.Ivar.create t.engine in
    start_call t nf ~req ~request ~pending_entry:(Write result) ~result;
    result
  end

let probe_async _t nf =
  match remote_ctx nf.home with
  | None -> probe_async_home nf
  | Some (par, src) -> bridged par ~src nf.home (fun () -> probe_async_home nf)

let start_probes_local t r ~until =
  Proc.spawn t.engine (fun () ->
      let rec loop () =
        Proc.sleep r.probe_period;
        if Engine.now t.engine <= until then begin
          (* Probe in name order for determinism; supervision marks
             misses and flips liveness. *)
          Hashtbl.fold (fun name _ acc -> name :: acc) t.nfs []
          |> List.sort String.compare
          |> List.iter (fun name ->
                 let nf = Hashtbl.find t.nfs name in
                 if nf.live then ignore (probe_async t nf));
          loop ()
        end
      in
      loop ())

(* The liveness monitor is per-shard by design: each shard probes only
   the NFs it owns (one heartbeat process per shard, over its own
   channels), so arming it from any member covers the whole group. *)
let start_probes t ~until =
  match t.resilience with
  | None ->
    invalid_arg "Controller.start_probes: no resilience config installed"
  | Some _ ->
    Array.iter
      (fun p ->
        match p.resilience with
        | Some r -> on_home p (fun () -> start_probes_local p r ~until)
        | None -> ())
      (group t)

(* --- legacy per-scope wrappers (thin aliases) ----------------------------- *)

(* Inlined rather than [Op_error.ok_exn], which is deprecated. *)
let ok_exn = function Ok v -> v | Error e -> raise (Op_error.Op_failed e)

let get_perflow t nf filter ?on_piece ?(late_lock = false) ?(compress = false)
    () =
  ok_exn (get t nf ~scope:Scope.Per ?on_piece ~late_lock ~compress filter)

let get_multiflow t nf filter ?on_piece ?(compress = false) () =
  ok_exn (get t nf ~scope:Scope.Multi ?on_piece ~compress filter)

let get_allflows t nf =
  List.map snd (ok_exn (get t nf ~scope:Scope.All Filter.any))

let put_perflow_async t nf chunks = put_async t nf ~scope:Scope.Per chunks
let put_perflow t nf chunks = ok_exn (put t nf ~scope:Scope.Per chunks)
let put_multiflow_async t nf chunks = put_async t nf ~scope:Scope.Multi chunks
let put_multiflow t nf chunks = ok_exn (put t nf ~scope:Scope.Multi chunks)
let del_perflow_async t nf flowids = del_async t nf ~scope:Scope.Per flowids
let del_perflow t nf flowids = ok_exn (del t nf ~scope:Scope.Per flowids)
let del_multiflow t nf flowids = ok_exn (del t nf ~scope:Scope.Multi flowids)

let put_allflows t nf chunks =
  ok_exn (put t nf ~scope:Scope.All (List.map (fun c -> (Filter.any, c)) chunks))

(* --- subscriptions ------------------------------------------------------- *)

let fresh_sub t =
  let s = t.next_sub in
  t.next_sub <- t.next_sub + 1;
  s

(* Events from an NF arrive at its home shard's inbox, so the entry must
   live in the home shard's table — wherever the subscriber got its
   controller handle. In a parallel run with a remote home, the entry is
   installed by a same-virtual-time round trip (the sub id lives in the
   home's counter), and the callback — which closes over caller-shard
   state — is posted back to the subscriber's engine at dispatch. *)
let subscribe_events t ~nf filter callback =
  let h = home_of_name t nf in
  match remote_ctx h with
  | None ->
    let id = fresh_sub h in
    Hashtbl.replace h.event_subs id
      { es_nf = nf; es_filter = filter; es_callback = callback };
    [ (h, id) ]
  | Some (par, src) ->
    let cb p d = Opennf_sim.Par.post par ~dst:src (fun () -> callback p d) in
    let id =
      Opennf_sim.Par.call par ~dst:h.shard (fun fill ->
          let id = fresh_sub h in
          Hashtbl.replace h.event_subs id
            { es_nf = nf; es_filter = filter; es_callback = cb };
          fill id)
    in
    [ (h, id) ]

(* Packet-ins are routed to shards by flow hash, and a subscription
   filter may span many shards' flowspace — register on every shard.
   Each shard burns one sub id, in the same group order on every run,
   so dispatch order stays deterministic. *)
let subscribe_packet_in t filter callback =
  Array.to_list (group t)
  |> List.map (fun p ->
         match remote_ctx p with
         | None ->
           let id = fresh_sub p in
           Hashtbl.replace p.pkt_in_subs id
             { ps_filter = filter; ps_callback = callback };
           (p, id)
         | Some (par, src) ->
           let cb pkt =
             Opennf_sim.Par.post par ~dst:src (fun () -> callback pkt)
           in
           let id =
             Opennf_sim.Par.call par ~dst:p.shard (fun fill ->
                 let id = fresh_sub p in
                 Hashtbl.replace p.pkt_in_subs id
                   { ps_filter = filter; ps_callback = cb };
                 fill id)
           in
           (p, id))

(* Sub ids are unique across both tables, so removing from both is safe. *)
let unsubscribe _t subs =
  List.iter
    (fun (p, id) ->
      on_home p (fun () ->
          Hashtbl.remove p.event_subs id;
          Hashtbl.remove p.pkt_in_subs id))
    subs

(* --- forwarding state ----------------------------------------------------- *)

(* Cookies are strided by shard ([c * shards + shard]) so concurrent
   shards can never mint the same cookie and silently replace each
   other's rules in the shared table — and [cookie mod shards] names the
   owning shard, which is what {!Switch.slice_rule_counts} counts. With
   one shard this is the identity on the legacy sequence 1, 2, 3, … *)
let fresh_cookie t =
  let c = t.next_cookie in
  t.next_cookie <- t.next_cookie + 1;
  if t.shards <= 1 then c else (c * t.shards) + t.shard

let install_rule t ~cookie ~priority ~filters ~actions =
  Channel.send t.to_switch ~size:128
    (Switch.Install { cookie; priority; filters; actions })

let remove_rule t ~cookie =
  Channel.send t.to_switch ~size:128 (Switch.Remove { cookie })

(* Barrier ids are a separate namespace from southbound request ids:
   they are matched in [t.barriers], never in [t.pending], so sharing
   the request counter would only invite confusion. *)
let barrier t =
  let id = t.next_barrier in
  t.next_barrier <- t.next_barrier + 1;
  let ivar = Proc.Ivar.create t.engine in
  Hashtbl.replace t.barriers id ivar;
  Channel.send t.to_switch ~size:128 (Switch.Barrier { id });
  Proc.Ivar.read ivar

let packet_out t ~port packet =
  Channel.send t.to_switch ~size:(128 + packet.Packet.wire_size)
    (Switch.Packet_out { port; packet })

let rule_filters filter =
  if Filter.is_symmetric filter then [ filter ]
  else [ filter; Filter.mirror filter ]

let memo_cookie t tbl filter =
  match Filter.Table.find_opt tbl filter with
  | Some c -> c
  | None ->
    let c = fresh_cookie t in
    Filter.Table.replace tbl filter c;
    c

let set_route t filter nf =
  let cookie = memo_cookie t t.route_cookies filter in
  install_rule t ~cookie ~priority:base_priority ~filters:(rule_filters filter)
    ~actions:[ Flowtable.Forward nf.nf_name ];
  barrier t

(* One stable cookie per filter for move-final routes: repeated moves of
   the same flows replace the previous final rule instead of piling up a
   rule per reallocation. *)
let final_route_cookie t filter = memo_cookie t t.final_cookies filter
