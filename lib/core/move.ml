module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Protocol = Opennf_sb.Protocol
open Opennf_net
open Opennf_state

let ( let* ) = Result.bind

type guarantee = No_guarantee | Loss_free | Order_preserving

let pp_guarantee ppf g =
  Format.pp_print_string ppf
    (match g with
    | No_guarantee -> "none"
    | Loss_free -> "loss-free"
    | Order_preserving -> "loss-free+order-preserving")

type phase =
  | Transfer_started
  | State_captured
  | State_deleted
  | State_installed
  | Phase1_installed
  | Phase2_installed

(* Deliberately broken protocol variants (monitor test fixtures). *)
type break_for_test = Skip_order_wait | Drop_buffered

type spec = {
  src : Controller.nf;
  dst : Controller.nf;
  filter : Filter.t;
  scope : Scope.t list;
  guarantee : guarantee;
  options : Op_options.t;
  disable_grace : float;
      (** How long after completion to disable the source's events
          (§5.1.1: "after several minutes" — long enough for stragglers
          in flight or queued at the source to drain). *)
  on_phase : (phase -> unit) option;
  break_for_test : break_for_test option;
}

let spec ~src ~dst ~filter ?(scope = [ Scope.Per ]) ?(guarantee = Loss_free)
    ?options ?parallel ?early_release ?compress ?(disable_grace = 0.5)
    ?on_phase ?break_for_test () =
  let options =
    match options with
    | Some o -> o
    | None -> Op_options.make ?parallel ?early_release ?compress ()
  in
  {
    src;
    dst;
    filter;
    scope;
    guarantee;
    options;
    disable_grace;
    on_phase;
    break_for_test;
  }

let validate spec =
  if
    spec.options.Op_options.early_release
    && Scope.mem Scope.Per spec.scope
    && Scope.mem Scope.Multi spec.scope
  then
    Error
      (Op_error.Bad_spec
         {
           reason =
             "early release cannot combine per-flow and multi-flow scopes \
              (§5.1.3)";
         })
  else if spec.options.Op_options.early_release && Scope.mem Scope.All spec.scope
  then
    Error
      (Op_error.Bad_spec
         {
           reason =
             "early release lets the source keep processing during the \
              transfer, so it cannot give a consistent all-flows snapshot";
         })
  else Ok ()

let fire spec phase = Option.iter (fun f -> f phase) spec.on_phase

type report = {
  rp_filter : Filter.t;
  rp_src : string;
  rp_dst : string;
  rp_guarantee : guarantee;
  started : float;
  finished : float;
  per_chunks : int;
  multi_chunks : int;
  state_bytes : int;
  relayed : int;
}

let duration r = r.finished -. r.started

let pp_report ppf r =
  Format.fprintf ppf
    "move %s->%s %a (%a): %.1fms, %d per-flow + %d multi-flow chunks, %dB \
     state, %d packets relayed"
    r.rp_src r.rp_dst Filter.pp r.rp_filter pp_guarantee r.rp_guarantee
    (1000.0 *. duration r)
    r.per_chunks r.multi_chunks r.state_bytes r.relayed

(* Relay bookkeeping for loss-free moves: packets arriving at the source
   during the move reach the controller as events and are re-injected
   toward the destination via packet-outs. [dst_port] is mutable so a
   rollback can redirect still-buffered packets to the survivor. *)
type relay_state = {
  ctrl : Controller.t;
  mutable dst_port : string;
  mark_do_not_buffer : bool;
  mutable buffering : bool;  (* Queue events until the put completes. *)
  global_q : Packet.t Queue.t;
  (* Early release: per-flow queues until that flow's chunk is put. *)
  flow_q : Packet.t Queue.t Flow.Table.t;
  released : unit Flow.Table.t;
  (* Packet ids already relayed: a duplicated event message must not
     become a duplicated packet at the destination. *)
  seen : (int, unit) Hashtbl.t;
  mutable relayed : int;
}

let relay rs (p : Packet.t) =
  if not (Hashtbl.mem rs.seen p.Packet.id) then begin
    Hashtbl.replace rs.seen p.Packet.id ();
    if rs.mark_do_not_buffer then p.Packet.do_not_buffer <- true;
    rs.relayed <- rs.relayed + 1;
    Controller.packet_out rs.ctrl ~port:rs.dst_port p
  end

let on_source_event rs ~early_release (p : Packet.t) =
  if early_release then begin
    let k = Flow.canonical p.Packet.key in
    if Flow.Table.mem rs.released k then relay rs p
    else begin
      let q =
        match Flow.Table.find_opt rs.flow_q k with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Flow.Table.add rs.flow_q k q;
          q
      in
      Queue.push p q
    end
  end
  else if rs.buffering then Queue.push p rs.global_q
  else relay rs p

let release_flow rs flowid =
  match Filter.exact_key flowid with
  | None -> ()
  | Some key ->
    let k = Flow.canonical key in
    Flow.Table.replace rs.released k ();
    (match Flow.Table.find_opt rs.flow_q k with
    | Some q ->
      Queue.iter (relay rs) q;
      Queue.clear q
    | None -> ())

let flush_all rs =
  Queue.iter (relay rs) rs.global_q;
  Queue.clear rs.global_q;
  Flow.Table.iter
    (fun k q ->
      Flow.Table.replace rs.released k ();
      Queue.iter (relay rs) q;
      Queue.clear q)
    rs.flow_q;
  rs.buffering <- false

(* Mid-operation progress, kept so a failure can roll back: chunks the
   controller captured (and therefore still holds), and forwarding rules
   installed by the two-phase update. The transfers themselves live in
   {!Op_engine.transfer}; [per_got]/[multi_got] are its [record] sinks. *)
type ctx = {
  per_got : (Filter.t * Chunk.t) list ref;  (* Newest first. *)
  multi_got : (Filter.t * Chunk.t) list ref;
  mutable phase_cookies : int list;
  mutable handoff_subs : Controller.subscription list;
  mutable final_cookie : int option;
      (* The [move_final_priority] rule toward the destination, if
         already installed: it outranks the base route, so a rollback
         must retire it or the survivor's route would never match. *)
}

let reroute_final t spec =
  let filters =
    if Filter.is_symmetric spec.filter then [ spec.filter ]
    else [ spec.filter; Filter.mirror spec.filter ]
  in
  (* Stable per-filter cookie: moving the same flows again replaces the
     previous final rule instead of growing the table per move. *)
  let cookie = Controller.final_route_cookie t spec.filter in
  Controller.install_rule t ~cookie ~priority:Controller.move_final_priority
    ~filters ~actions:[ Flowtable.Forward (Controller.nf_name spec.dst) ];
  cookie

(* Wait for the destination to process a specific packet. With a
   resilience policy, the wait is chopped into call-sized slices; each
   miss probes the destination through its work queue, so a dead or
   wedged NF turns the wait into a typed error instead of a wedged
   simulation. *)
let wait_for_dst t spec ivar =
  match Controller.resilience t with
  | None ->
    Proc.Ivar.read ivar;
    Ok ()
  | Some r ->
    let dst_name = Controller.nf_name spec.dst in
    let rec loop rounds =
      match Proc.Ivar.read_timeout ivar ~timeout:r.Controller.call_timeout with
      | Some () -> Ok ()
      | None ->
        if not (Controller.nf_alive t spec.dst) then
          Error (Op_error.Nf_crashed { nf = dst_name })
        else if rounds <= 0 then
          Error
            (Op_error.Timeout
               { nf = dst_name; after = 10.0 *. r.Controller.call_timeout })
        else (
          match Proc.Ivar.read (Controller.probe_async t spec.dst) with
          | Ok () -> loop (rounds - 1)
          | Error e -> Error e)
    in
    loop 10

(* The two-phase forwarding update plus destination handoff of Figure 6,
   with barriers in place of the paper's wait-for-first-packet (see the
   interface comment). *)
let order_preserving_handoff t spec ctx ~frame =
  let engine = Controller.engine t in
  let dst_name = Controller.nf_name spec.dst in
  (* Track which packets dst has finished processing, so we can wait for
     the last packet the switch sent toward the source. *)
  let dst_processed = Hashtbl.create 256 in
  let waiting : (int * unit Proc.Ivar.t) option ref = ref None in
  let dst_sub =
    Controller.subscribe_events t ~nf:dst_name spec.filter
      (fun p disposition ->
        match disposition with
        | Protocol.Process ->
          Hashtbl.replace dst_processed p.Packet.id ();
          (match !waiting with
          | Some (id, ivar) when id = p.Packet.id ->
            waiting := None;
            ignore (Proc.Ivar.fill_if_empty ivar ())
          | Some _ | None -> ())
        | Protocol.Buffer | Protocol.Drop -> ())
  in
  ctx.handoff_subs <- dst_sub :: ctx.handoff_subs;
  Controller.enable_events t spec.dst spec.filter Protocol.Buffer;
  (* Remember the most recent packet the switch copied to us. *)
  let last_packet = ref None in
  let pin_sub =
    Controller.subscribe_packet_in t spec.filter (fun p -> last_packet := Some p)
  in
  ctx.handoff_subs <- pin_sub :: ctx.handoff_subs;
  let filters =
    if Filter.is_symmetric spec.filter then [ spec.filter ]
    else [ spec.filter; Filter.mirror spec.filter ]
  in
  (* Phase 1: to both the source and the controller. *)
  let cookie1 = Controller.fresh_cookie t in
  Controller.install_rule t ~cookie:cookie1
    ~priority:Controller.phase1_priority ~filters
    ~actions:
      [
        Flowtable.Forward (Controller.nf_name spec.src); Flowtable.To_controller;
      ];
  ctx.phase_cookies <- cookie1 :: ctx.phase_cookies;
  Controller.barrier t;
  Op_engine.mark frame "phase1";
  fire spec Phase1_installed;
  (* Phase 2: directly to the destination. *)
  let cookie2 = Controller.fresh_cookie t in
  Controller.install_rule t ~cookie:cookie2
    ~priority:Controller.phase2_priority ~filters
    ~actions:[ Flowtable.Forward dst_name ];
  ctx.phase_cookies <- cookie2 :: ctx.phase_cookies;
  Controller.barrier t;
  Op_engine.mark frame "phase2";
  fire spec Phase2_installed;
  (* The switch→controller channel is FIFO, so after the phase-2 barrier
     reply every phase-1 packet-in has been received: [!last_packet] is
     the true last packet forwarded toward the source. *)
  let* () =
    match spec.break_for_test with
    | Some Skip_order_wait ->
      (* Fixture: release the destination's buffer without waiting for
         the last source-bound packet — relayed stragglers then race the
         buffered phase-2 packets, the §5.1.2 inversion. *)
      Ok ()
    | Some Drop_buffered | None -> (
      match !last_packet with
      | None -> Ok ()
      | Some p ->
        if Hashtbl.mem dst_processed p.Packet.id then Ok ()
        else begin
          let ivar = Proc.Ivar.create engine in
          waiting := Some (p.Packet.id, ivar);
          wait_for_dst t spec ivar
        end)
  in
  Op_engine.mark frame "handoff";
  (* Release the packets buffered at the destination. *)
  Controller.disable_events t spec.dst spec.filter;
  (* Permanent route, then retire the phase rules. *)
  ctx.final_cookie <- Some (reroute_final t spec);
  Controller.remove_rule t ~cookie:cookie1;
  Controller.remove_rule t ~cookie:cookie2;
  Controller.barrier t;
  ctx.phase_cookies <- [];
  Controller.unsubscribe t dst_sub;
  Controller.unsubscribe t pin_sub;
  ctx.handoff_subs <- [];
  Ok ()

(* Undo a failed move so no flow is left blackholed: give every chunk
   the controller still holds to the surviving instance, redirect the
   buffered packets there, retire any half-installed phase rules, and
   point the base route at the survivor. *)
let rollback t spec ctx rs ~src_sub ~frame err =
  let rspan = Op_engine.rollback_span frame err in
  Option.iter (fun sub -> Controller.unsubscribe t sub) src_sub;
  List.iter (fun sub -> Controller.unsubscribe t sub) ctx.handoff_subs;
  ctx.handoff_subs <- [];
  let survivor =
    if Controller.nf_alive t spec.src then spec.src else spec.dst
  in
  (* Re-install captured state on the survivor; put replaces existing
     chunks, so this is idempotent even if some already landed there.
     If the survivor fails too there is nobody left to roll back to. *)
  (match !(ctx.multi_got) with
  | [] -> ()
  | chunks -> ignore (Controller.put t survivor ~scope:Scope.Multi chunks));
  (match !(ctx.per_got) with
  | [] -> ()
  | chunks ->
    ignore (Controller.put t survivor ~scope:Scope.Per (List.rev chunks)));
  rs.dst_port <- Controller.nf_name survivor;
  flush_all rs;
  List.iter
    (fun cookie -> Controller.remove_rule t ~cookie)
    ctx.phase_cookies;
  ctx.phase_cookies <- [];
  (* The final-route rule outranks the base route: if it was already
     installed toward the (dead) destination, retire it. *)
  Option.iter (fun cookie -> Controller.remove_rule t ~cookie) ctx.final_cookie;
  ctx.final_cookie <- None;
  Controller.set_route t spec.filter survivor;
  (* Stop any event generation the move turned on; the message to a dead
     instance is harmless. *)
  Controller.disable_events t spec.src spec.filter;
  Controller.disable_events t spec.dst spec.filter;
  Op_engine.rollback_done frame rspan;
  Error err

let run ?notify_release t spec =
  let engine = Controller.engine t in
  let frame = Op_engine.start ~kind:"move" t ~options:spec.options in
  Op_engine.finish frame
  @@
  let* () = validate spec in
  let per_tally = Op_engine.tally () and multi_tally = Op_engine.tally () in
  let lossfree = spec.guarantee <> No_guarantee in
  let rs =
    {
      ctrl = t;
      dst_port = Controller.nf_name spec.dst;
      mark_do_not_buffer = spec.guarantee = Order_preserving;
      buffering = true;
      global_q = Queue.create ();
      flow_q = Flow.Table.create 64;
      released = Flow.Table.create 64;
      seen = Hashtbl.create 256;
      relayed = 0;
    }
  in
  let ctx =
    {
      per_got = ref [];
      multi_got = ref [];
      phase_cookies = [];
      handoff_subs = [];
      final_cookie = None;
    }
  in
  let src_sub =
    if lossfree then
      Some
        (Controller.subscribe_events t ~nf:(Controller.nf_name spec.src)
           spec.filter (fun p disposition ->
             match disposition with
             | Protocol.Drop ->
               on_source_event rs
                 ~early_release:spec.options.Op_options.early_release p
             | Protocol.Buffer | Protocol.Process -> ()))
    else None
  in
  (* Clear any stale event filter a previous move of the same set of
     flows may have left at today's destination (it was that move's
     source); without this, moving flows back within the grace period
     would bounce packets between the instances forever. *)
  if lossfree then Controller.disable_events t spec.dst spec.filter;
  if lossfree && not spec.options.Op_options.early_release then
    Controller.enable_events t spec.src spec.filter Protocol.Drop;
  fire spec Transfer_started;
  let attempt =
    (* Multi-flow state moves with get + del + put (§5.1). *)
    let* () =
      if Scope.mem Scope.Multi spec.scope then
        Op_engine.transfer frame ~src:spec.src ~dst:spec.dst ~scope:Scope.Multi
          ~filter:spec.filter ~delete:true
          ~compress:spec.options.Op_options.compress ~record:ctx.multi_got
          multi_tally
      else Ok ()
    in
    (* All-flows state is get + put (no delAllflows, §4.2); the
       destination merges. Doing it inside the move — after events halt
       the source — is what gives NFs like the RE decoder a consistent
       fingerprint store at the destination. *)
    let* () =
      if Scope.mem Scope.All spec.scope then
        Op_engine.transfer frame ~src:spec.src ~dst:spec.dst ~scope:Scope.All
          ~filter:Filter.any multi_tally
      else Ok ()
    in
    let* () =
      if Scope.mem Scope.Per spec.scope then
        Op_engine.transfer frame ~src:spec.src ~dst:spec.dst ~scope:Scope.Per
          ~filter:spec.filter ~parallel:spec.options.Op_options.parallel
          ~delete:true ~late_lock:spec.options.Op_options.early_release
          ~compress:spec.options.Op_options.compress ~record:ctx.per_got
          ~on_captured:(fun () -> fire spec State_captured)
          ~on_deleted:(fun () -> fire spec State_deleted)
          ~on_installed:(fun () -> fire spec State_installed)
          ~on_put_ack:(fun flowid ->
            if spec.options.Op_options.early_release then begin
              release_flow rs flowid;
              Option.iter (fun f -> f flowid) notify_release
            end)
          per_tally
      else Ok ()
    in
    let* () =
      Op_engine.deadline_guard frame ~nf:(Controller.nf_name spec.dst)
    in
    (* Fixture: a buggy controller that loses one buffered packet on the
       flush — the canonical loss-freedom violation the monitor exists
       to catch. *)
    (match spec.break_for_test with
    | Some Drop_buffered when not (Queue.is_empty rs.global_q) ->
      ignore (Queue.pop rs.global_q)
    | Some _ | None -> ());
    if lossfree then begin
      flush_all rs;
      Op_engine.mark frame "flush"
    end;
    match spec.guarantee with
    | No_guarantee | Loss_free ->
      ctx.final_cookie <- Some (reroute_final t spec);
      Controller.barrier t;
      (* Disabling events on the source immediately would drop stragglers
         still in flight or queued there; the paper issues the disable
         "after several minutes" (§5.1.1). Here: after a grace period
         that comfortably exceeds link and queueing delays. *)
      if lossfree then
        Proc.spawn engine (fun () ->
            Proc.sleep spec.disable_grace;
            Controller.disable_events t spec.src spec.filter;
            Option.iter (fun sub -> Controller.unsubscribe t sub) src_sub);
      Ok ()
    | Order_preserving ->
      let* () = order_preserving_handoff t spec ctx ~frame in
      (* Safe here: the handoff waited for the destination to process
         the last packet the switch ever sent toward the source. *)
      Controller.disable_events t spec.src spec.filter;
      Option.iter (fun sub -> Controller.unsubscribe t sub) src_sub;
      Ok ()
  in
  (* With a resilience policy, confirm the destination outlived the
     protocol before declaring success: a crash after the last message
     of the handoff would otherwise leave the final route pointing at a
     dead instance. *)
  let attempt =
    match attempt with
    | Error _ as e -> e
    | Ok () -> (
      match Controller.resilience t with
      | None -> Ok ()
      | Some _ -> Proc.Ivar.read (Controller.probe_async t spec.dst))
  in
  match attempt with
  | Ok () ->
    Ok
      {
        rp_filter = spec.filter;
        rp_src = Controller.nf_name spec.src;
        rp_dst = Controller.nf_name spec.dst;
        rp_guarantee = spec.guarantee;
        started = frame.Op_engine.started;
        finished = Op_engine.now frame;
        per_chunks = per_tally.Op_engine.chunks;
        multi_chunks = multi_tally.Op_engine.chunks;
        state_bytes = per_tally.Op_engine.bytes + multi_tally.Op_engine.bytes;
        relayed = rs.relayed;
      }
  | Error err -> rollback t spec ctx rs ~src_sub ~frame err

let run_exn t spec =
  match run t spec with Ok r -> r | Error e -> raise (Op_error.Op_failed e)
let start t spec = Op_engine.background t (fun () -> run t spec)

(* Raises inside the spawned process on a typed error; meant for
   fault-free scenarios where that cannot happen. *)
let start_exn t spec = Op_engine.background t (fun () -> run_exn t spec)

(* A move writes state on both instances (del at the source, put at the
   destination) and rewrites the flows' forwarding state. *)
let footprint spec =
  Sched.Footprint.make ~filters:[ spec.filter ]
    ~writes:[ Controller.nf_name spec.src; Controller.nf_name spec.dst ]
    ~routes:true ()

let submit sched spec =
  let fp = footprint spec in
  (* Early release shrinks the held footprint flow by flow: once a
     flow's chunk is acked at the destination, an exact-flow waiter on
     it may be admitted even though this move is still running. *)
  let notify_release flowid =
    match Filter.exact_key flowid with
    | Some key -> Sched.release_flow sched ~footprint:fp key
    | None -> ()
  in
  Sched.submit sched ~footprint:fp (fun () ->
      run ~notify_release (Sched.ctrl sched) spec)

(* Shard-aware admission: the source's home shard leads the move (its
   channels already reach the source NF; destination-side calls route to
   the destination's home via [Controller.nf_home]). With one shard this
   is [submit] on that shard's scheduler. *)
let submit_sharded group spec =
  let fp = footprint spec in
  let nfs = [ spec.src; spec.dst ] in
  let notify_release flowid =
    match Filter.exact_key flowid with
    | Some key -> Shard.release_flow group ~footprint:fp ~nfs key
    | None -> ()
  in
  let leader = Controller.nf_home spec.src in
  Shard.submit group ~footprint:fp ~nfs (fun () ->
      run ~notify_release leader spec)
