module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Protocol = Opennf_sb.Protocol
open Opennf_net
open Opennf_state

type guarantee = No_guarantee | Loss_free | Order_preserving

let pp_guarantee ppf g =
  Format.pp_print_string ppf
    (match g with
    | No_guarantee -> "none"
    | Loss_free -> "loss-free"
    | Order_preserving -> "loss-free+order-preserving")

type spec = {
  src : Controller.nf;
  dst : Controller.nf;
  filter : Filter.t;
  scope : Scope.t list;
  guarantee : guarantee;
  parallel : bool;
  early_release : bool;
  compress : bool;
  disable_grace : float;
      (** How long after completion to disable the source's events
          (§5.1.1: "after several minutes" — long enough for stragglers
          in flight or queued at the source to drain). *)
}

let spec ~src ~dst ~filter ?(scope = [ Scope.Per ]) ?(guarantee = Loss_free)
    ?(parallel = false) ?(early_release = false) ?(compress = false)
    ?(disable_grace = 0.5) () =
  if early_release && Scope.mem Scope.Per scope && Scope.mem Scope.Multi scope
  then
    invalid_arg
      "Move.spec: early release cannot combine per-flow and multi-flow \
       scopes (§5.1.3)";
  if early_release && Scope.mem Scope.All scope then
    invalid_arg
      "Move.spec: early release lets the source keep processing during \
       the transfer, so it cannot give a consistent all-flows snapshot";
  (* Early release only makes sense when chunks stream. *)
  let parallel = parallel || early_release in
  {
    src; dst; filter; scope; guarantee; parallel; early_release; compress;
    disable_grace;
  }

type report = {
  rp_filter : Filter.t;
  rp_src : string;
  rp_dst : string;
  rp_guarantee : guarantee;
  started : float;
  finished : float;
  per_chunks : int;
  multi_chunks : int;
  state_bytes : int;
  relayed : int;
}

let duration r = r.finished -. r.started

let pp_report ppf r =
  Format.fprintf ppf
    "move %s->%s %a (%a): %.1fms, %d per-flow + %d multi-flow chunks, %dB \
     state, %d packets relayed"
    r.rp_src r.rp_dst Filter.pp r.rp_filter pp_guarantee r.rp_guarantee
    (1000.0 *. duration r)
    r.per_chunks r.multi_chunks r.state_bytes r.relayed

(* Relay bookkeeping for loss-free moves: packets arriving at the source
   during the move reach the controller as events and are re-injected
   toward the destination via packet-outs. *)
type relay_state = {
  ctrl : Controller.t;
  dst_port : string;
  mark_do_not_buffer : bool;
  mutable buffering : bool;  (* Queue events until the put completes. *)
  global_q : Packet.t Queue.t;
  (* Early release: per-flow queues until that flow's chunk is put. *)
  flow_q : Packet.t Queue.t Flow.Table.t;
  released : unit Flow.Table.t;
  mutable relayed : int;
}

let relay rs (p : Packet.t) =
  if rs.mark_do_not_buffer then p.Packet.do_not_buffer <- true;
  rs.relayed <- rs.relayed + 1;
  Controller.packet_out rs.ctrl ~port:rs.dst_port p

let on_source_event rs ~early_release (p : Packet.t) =
  if early_release then begin
    let k = Flow.canonical p.Packet.key in
    if Flow.Table.mem rs.released k then relay rs p
    else begin
      let q =
        match Flow.Table.find_opt rs.flow_q k with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Flow.Table.add rs.flow_q k q;
          q
      in
      Queue.push p q
    end
  end
  else if rs.buffering then Queue.push p rs.global_q
  else relay rs p

let release_flow rs flowid =
  match Filter.exact_key flowid with
  | None -> ()
  | Some key ->
    let k = Flow.canonical key in
    Flow.Table.replace rs.released k ();
    (match Flow.Table.find_opt rs.flow_q k with
    | Some q ->
      Queue.iter (relay rs) q;
      Queue.clear q
    | None -> ())

let flush_all rs =
  Queue.iter (relay rs) rs.global_q;
  Queue.clear rs.global_q;
  Flow.Table.iter
    (fun k q ->
      Flow.Table.replace rs.released k ();
      Queue.iter (relay rs) q;
      Queue.clear q)
    rs.flow_q;
  rs.buffering <- false

(* Transfer all-flows state under the move's event protection. There is
   no delAllflows (all-flows state is always relevant, §4.2), so this is
   get + put; the destination merges. Doing it inside the move — after
   events halt the source — is what gives NFs like the RE decoder a
   consistent fingerprint store at the destination. *)
let transfer_allflows t spec counters =
  let bytes, multi = counters in
  let chunks = Controller.get_allflows t spec.src in
  if chunks <> [] then Controller.put_allflows t spec.dst chunks;
  multi := !multi + List.length chunks;
  bytes := !bytes + List.fold_left (fun acc c -> acc + Chunk.size c) 0 chunks

(* Transfer multi-flow state: get + del + put (§5.1). *)
let transfer_multiflow t spec counters =
  let bytes, multi = counters in
  let chunks =
    Controller.get_multiflow t spec.src spec.filter ~compress:spec.compress ()
  in
  Controller.del_multiflow t spec.src (List.map fst chunks);
  if chunks <> [] then Controller.put_multiflow t spec.dst chunks;
  multi := !multi + List.length chunks;
  bytes :=
    !bytes + List.fold_left (fun acc (_, c) -> acc + Chunk.size c) 0 chunks

(* Transfer per-flow state, optionally pipelining puts behind the
   streaming get (the parallelizing optimization). [on_put_ack] fires as
   each chunk's put completes (used by early release). *)
let transfer_perflow t spec ~late_lock ~on_put_ack counters =
  let bytes, per = counters in
  let engine = Controller.engine t in
  let chunks =
    if spec.parallel then begin
      let pending = ref [] in
      let chunks =
        Controller.get_perflow t spec.src spec.filter ~late_lock
          ~compress:spec.compress
          ~on_piece:(fun flowid chunk ->
            (* Each exported chunk is deleted at the source and put at
               the destination immediately (§5.1.3): the state is never
               live at both instances. *)
            pending :=
              Controller.del_perflow_async t spec.src [ flowid ] :: !pending;
            let ack =
              Controller.put_perflow_async t spec.dst [ (flowid, chunk) ]
            in
            pending := ack :: !pending;
            Proc.spawn engine (fun () ->
                Proc.Ivar.read ack;
                on_put_ack flowid))
          ()
      in
      List.iter Proc.Ivar.read !pending;
      chunks
    end
    else begin
      let chunks =
        Controller.get_perflow t spec.src spec.filter ~late_lock
          ~compress:spec.compress ()
      in
      Controller.del_perflow t spec.src (List.map fst chunks);
      if chunks <> [] then Controller.put_perflow t spec.dst chunks;
      List.iter (fun (flowid, _) -> on_put_ack flowid) chunks;
      chunks
    end
  in
  per := !per + List.length chunks;
  bytes :=
    !bytes + List.fold_left (fun acc (_, c) -> acc + Chunk.size c) 0 chunks

let reroute_final t spec =
  let filters =
    if Filter.is_symmetric spec.filter then [ spec.filter ]
    else [ spec.filter; Filter.mirror spec.filter ]
  in
  (* Stable per-filter cookie: moving the same flows again replaces the
     previous final rule instead of growing the table per move. *)
  let cookie = Controller.final_route_cookie t spec.filter in
  Controller.install_rule t ~cookie ~priority:Controller.move_final_priority
    ~filters ~actions:[ Flowtable.Forward (Controller.nf_name spec.dst) ];
  cookie

(* The two-phase forwarding update plus destination handoff of Figure 6,
   with barriers in place of the paper's wait-for-first-packet (see the
   interface comment). *)
let order_preserving_handoff t spec rs =
  let engine = Controller.engine t in
  let dst_name = Controller.nf_name spec.dst in
  (* Track which packets dst has finished processing, so we can wait for
     the last packet the switch sent toward the source. *)
  let dst_processed = Hashtbl.create 256 in
  let waiting : (int * unit Proc.Ivar.t) option ref = ref None in
  let dst_sub =
    Controller.subscribe_events t ~nf:dst_name spec.filter
      (fun p disposition ->
        match disposition with
        | Protocol.Process ->
          Hashtbl.replace dst_processed p.Packet.id ();
          (match !waiting with
          | Some (id, ivar) when id = p.Packet.id ->
            waiting := None;
            Proc.Ivar.fill ivar ()
          | Some _ | None -> ())
        | Protocol.Buffer | Protocol.Drop -> ())
  in
  Controller.enable_events t spec.dst spec.filter Protocol.Buffer;
  (* Remember the most recent packet the switch copied to us. *)
  let last_packet = ref None in
  let pin_sub =
    Controller.subscribe_packet_in t spec.filter (fun p -> last_packet := Some p)
  in
  let filters =
    if Filter.is_symmetric spec.filter then [ spec.filter ]
    else [ spec.filter; Filter.mirror spec.filter ]
  in
  (* Phase 1: to both the source and the controller. *)
  let cookie1 = Controller.fresh_cookie t in
  Controller.install_rule t ~cookie:cookie1
    ~priority:Controller.phase1_priority ~filters
    ~actions:
      [
        Flowtable.Forward (Controller.nf_name spec.src); Flowtable.To_controller;
      ];
  Controller.barrier t;
  (* Phase 2: directly to the destination. *)
  let cookie2 = Controller.fresh_cookie t in
  Controller.install_rule t ~cookie:cookie2
    ~priority:Controller.phase2_priority ~filters
    ~actions:[ Flowtable.Forward dst_name ];
  Controller.barrier t;
  (* The switch→controller channel is FIFO, so after the phase-2 barrier
     reply every phase-1 packet-in has been received: [!last_packet] is
     the true last packet forwarded toward the source. *)
  (match !last_packet with
  | None -> ()
  | Some p ->
    if not (Hashtbl.mem dst_processed p.Packet.id) then begin
      let ivar = Proc.Ivar.create engine in
      waiting := Some (p.Packet.id, ivar);
      Proc.Ivar.read ivar
    end);
  (* Release the packets buffered at the destination. *)
  Controller.disable_events t spec.dst spec.filter;
  (* Permanent route, then retire the phase rules. *)
  let _final = reroute_final t spec in
  Controller.remove_rule t ~cookie:cookie1;
  Controller.remove_rule t ~cookie:cookie2;
  Controller.barrier t;
  Controller.unsubscribe t dst_sub;
  Controller.unsubscribe t pin_sub;
  ignore rs

let run t spec =
  let engine = Controller.engine t in
  let started = Engine.now engine in
  let bytes = ref 0 and per = ref 0 and multi = ref 0 in
  let lossfree = spec.guarantee <> No_guarantee in
  let rs =
    {
      ctrl = t;
      dst_port = Controller.nf_name spec.dst;
      mark_do_not_buffer = spec.guarantee = Order_preserving;
      buffering = true;
      global_q = Queue.create ();
      flow_q = Flow.Table.create 64;
      released = Flow.Table.create 64;
      relayed = 0;
    }
  in
  let src_sub =
    if lossfree then
      Some
        (Controller.subscribe_events t ~nf:(Controller.nf_name spec.src)
           spec.filter (fun p disposition ->
             match disposition with
             | Protocol.Drop ->
               on_source_event rs ~early_release:spec.early_release p
             | Protocol.Buffer | Protocol.Process -> ()))
    else None
  in
  (* Clear any stale event filter a previous move of the same set of
     flows may have left at today's destination (it was that move's
     source); without this, moving flows back within the grace period
     would bounce packets between the instances forever. *)
  if lossfree then Controller.disable_events t spec.dst spec.filter;
  if lossfree && not spec.early_release then
    Controller.enable_events t spec.src spec.filter Protocol.Drop;
  if Scope.mem Scope.Multi spec.scope then
    transfer_multiflow t spec (bytes, multi);
  if Scope.mem Scope.All spec.scope then transfer_allflows t spec (bytes, multi);
  if Scope.mem Scope.Per spec.scope then
    transfer_perflow t spec ~late_lock:spec.early_release
      ~on_put_ack:(fun flowid -> if spec.early_release then release_flow rs flowid)
      (bytes, per);
  if lossfree then flush_all rs;
  (match spec.guarantee with
  | No_guarantee | Loss_free ->
    let _final = reroute_final t spec in
    Controller.barrier t;
    (* Disabling events on the source immediately would drop stragglers
       still in flight or queued there; the paper issues the disable
       "after several minutes" (§5.1.1). Here: after a grace period that
       comfortably exceeds link and queueing delays. *)
    if lossfree then
      Proc.spawn engine (fun () ->
          Proc.sleep spec.disable_grace;
          Controller.disable_events t spec.src spec.filter;
          Option.iter (fun sub -> Controller.unsubscribe t sub) src_sub)
  | Order_preserving ->
    order_preserving_handoff t spec rs;
    (* Safe here: the handoff waited for the destination to process the
       last packet the switch ever sent toward the source. *)
    Controller.disable_events t spec.src spec.filter;
    Option.iter (fun sub -> Controller.unsubscribe t sub) src_sub);
  {
    rp_filter = spec.filter;
    rp_src = Controller.nf_name spec.src;
    rp_dst = Controller.nf_name spec.dst;
    rp_guarantee = spec.guarantee;
    started;
    finished = Engine.now engine;
    per_chunks = !per;
    multi_chunks = !multi;
    state_bytes = !bytes;
    relayed = rs.relayed;
  }

let start t spec =
  let engine = Controller.engine t in
  let ivar = Proc.Ivar.create engine in
  Proc.spawn engine (fun () -> Proc.Ivar.fill ivar (run t spec));
  ivar
