(** The [notify] convenience (§5.2.1): lets control applications learn
    when state is being updated, by turning NF packet-received events
    into controller-side callbacks. Used by the failure-recovery
    application to re-copy state whenever a significant packet (SYN,
    RST, HTTP request) is processed. *)

open Opennf_net

type handle

val enable :
  ?sched:Sched.t ->
  ?shard_group:Shard.t ->
  Controller.t -> Controller.nf -> Filter.t -> (Packet.t -> unit) ->
  (handle, Op_error.t) result
(** [enable t inst filter callback]: events with action [process] are
    enabled on [inst]; the callback fires at the controller for every
    matching packet the instance processes. [Error (Nf_crashed _)] if
    the instance is already known dead. With [sched], the enable is
    admitted as a short read of the instance — it waits out conflicting
    writes in flight but holds no footprint afterwards. [shard_group]
    routes that read through the instance's home shard instead, and
    takes precedence over [sched]. *)

val enable_exn :
  ?sched:Sched.t ->
  ?shard_group:Shard.t ->
  Controller.t -> Controller.nf -> Filter.t -> (Packet.t -> unit) -> handle
  [@@deprecated "use Notify.enable and match on the result"]

val disable : Controller.t -> handle -> unit
