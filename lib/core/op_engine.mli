(** Shared transactional core of the northbound operations.

    {!Move}, {!Copy_op}, {!Share} and {!Notify} used to be four
    hand-rolled state machines repeating the same lifecycle: validate
    the spec, stamp a start time, run scoped get/del/put transfers with
    per-chunk accounting, guard the deadline, fire progress hooks and
    assemble a report. This module owns that lifecycle; the operations
    keep only their protocol-specific deltas (event wiring, two-phase
    forwarding updates, rollback policy).

    Everything here replicates the legacy per-operation code paths
    {e exactly} — same southbound call order, same chunk-recording
    order, same process spawns — so fault-free runs stay bit-identical
    in virtual time to the pre-refactor code. *)

open Opennf_net
open Opennf_state
module Proc = Opennf_sim.Proc

(** {1 Chunk accounting} *)

type tally = { mutable chunks : int; mutable bytes : int }
(** Running chunk count and byte total for one scope group of an
    operation (the fold every op used to hand-roll). *)

val tally : unit -> tally

val chunk_bytes : (Filter.t * Chunk.t) list -> int
(** Total payload bytes of a chunk list. *)

val account : tally -> (Filter.t * Chunk.t) list -> unit
(** Add a completed transfer's chunks to the tally. *)

(** {1 Operation frame} *)

type frame = {
  ctrl : Controller.t;
  engine : Opennf_sim.Engine.t;
  started : float;  (** Virtual time the operation began. *)
  options : Op_options.t;
  obs : Opennf_obs.Hub.t;  (** The controller's observability hub. *)
  span : int;  (** The op's open trace span; 0 when not tracing. *)
}
(** Per-operation context: controller handle, start stamp and the
    resolved {!Op_options.t}. Created once per run and threaded through
    the transfer/guard helpers. *)

val start : ?kind:string -> Controller.t -> options:Op_options.t -> frame
(** Opens the op's trace span under [kind] (["move"], ["copy"], ...;
    default ["op"]) and bumps the ["op.started"] counter. *)

val now : frame -> float

val mark : frame -> string -> unit
(** Phase-mark instant under the op's span — for protocol steps outside
    a transfer (buffer flush, two-phase handoff), so critical-path
    analysis can attribute their time. No-op when not tracing. *)

val finish :
  frame -> ('a, Op_error.t) result -> ('a, Op_error.t) result
(** Terminal accounting: bumps ["op.completed"] or
    ["op.failed"]/["op.failed.<kind>"], observes ["op.duration_s"], and
    closes the op span with status (and error) attributes. Returns the
    result unchanged, so operations end with [finish frame @@ ...]. *)

val rollback_span : frame -> Op_error.t -> int
(** Open a ["rollback"] child span stamped with the triggering error
    (kind + rendered detail) and bump ["op.rollbacks"]. Close it with
    {!rollback_done} once the unwind completes. *)

val rollback_done : frame -> int -> unit

val deadline_guard : frame -> nf:string -> (unit, Op_error.t) result
(** [Error (Timeout _)] (blaming [nf]) once the operation has run longer
    than [options.deadline]; [Ok ()] without a deadline. *)

(** {1 Shared helpers} *)

val bad_spec : string -> ('a, Op_error.t) result

val ensure_alive : Controller.t -> Controller.nf -> (unit, Op_error.t) result
(** [Error (Nf_crashed _)] once the liveness monitor declared it dead. *)

val drain_pipelined :
  (unit, Op_error.t) result Proc.Ivar.t list -> Op_error.t option
(** Read every pipelined del/put ivar — even after a failure, so no
    supervised call is left dangling — and return the first error in
    list order, if any. *)

val background :
  Controller.t -> (unit -> 'a) -> 'a Proc.Ivar.t
(** Run [f] in its own simulation process; the ivar resolves with its
    result (the [start]/[start_exn] pattern of every operation). *)

val broadcast_put :
  Controller.t -> scope:Scope.t -> others:Controller.nf list ->
  (Filter.t * Chunk.t) list -> unit
(** Pipeline one put of [chunks] to every instance in [others] and wait
    for all acks, ignoring per-replica errors (a failed put to one
    replica must not stop propagation to the rest — {!Share}'s
    tolerance policy). No-op on an empty chunk list. *)

(** {1 The transfer core} *)

val transfer :
  frame ->
  src:Controller.nf ->
  dst:Controller.nf ->
  scope:Scope.t ->
  filter:Filter.t ->
  ?parallel:bool ->
  ?delete:bool ->
  ?late_lock:bool ->
  ?compress:bool ->
  ?record:(Filter.t * Chunk.t) list ref ->
  ?on_captured:(unit -> unit) ->
  ?on_deleted:(unit -> unit) ->
  ?on_installed:(unit -> unit) ->
  ?on_put_ack:(Filter.t -> unit) ->
  tally ->
  (unit, Op_error.t) result
(** One scoped state transfer from [src] to [dst]: get, optional del
    ([delete], move semantics; copy leaves the source untouched), put,
    with the chunks added to [tally] on success.

    With [parallel] (the §5.1.3 parallelizing optimization) the get
    streams and each piece's del/put is issued immediately; [record]
    then accumulates chunks {e newest-first} (rollback re-puts
    [List.rev]), [on_captured] fires when the get completes (before the
    pipelined calls drain), [on_deleted] never fires, and [on_put_ack]
    fires per chunk as its put is acked (early release hangs off this).
    Sequentially, [record] holds the chunks in arrival order and the
    hooks fire in capture → delete → install order, with [on_put_ack]
    called per chunk after install. [Scope.All] forces the sequential
    path, ignores [filter] (and [delete]: all-flows state is always
    relevant, §4.2) and never streams. *)
