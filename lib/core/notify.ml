module Protocol = Opennf_sb.Protocol
open Opennf_net

type handle = {
  nf : Controller.nf;
  filter : Filter.t;
  sub : Controller.subscription;
}

let enable t nf filter callback =
  if not (Controller.nf_alive t nf) then
    Error (Op_error.Nf_crashed { nf = Controller.nf_name nf })
  else begin
    let sub =
      Controller.subscribe_events t ~nf:(Controller.nf_name nf) filter
        (fun packet disposition ->
          match disposition with
          | Protocol.Process -> callback packet
          | Protocol.Buffer | Protocol.Drop -> ())
    in
    Controller.enable_events t nf filter Protocol.Process;
    Ok { nf; filter; sub }
  end

let enable_exn t nf filter callback =
  Op_error.ok_exn (enable t nf filter callback)

let disable t handle =
  Controller.disable_events t handle.nf handle.filter;
  Controller.unsubscribe t handle.sub
