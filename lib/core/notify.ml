module Protocol = Opennf_sb.Protocol
open Opennf_net

type handle = {
  nf : Controller.nf;
  filter : Filter.t;
  sub : Controller.subscription;
}

let ( let* ) = Result.bind

let enable ?sched ?shard_group t nf filter callback =
  let act () =
    let* () = Op_engine.ensure_alive t nf in
    let sub =
      Controller.subscribe_events t ~nf:(Controller.nf_name nf) filter
        (fun packet disposition ->
          match disposition with
          | Protocol.Process -> callback packet
          | Protocol.Buffer | Protocol.Drop -> ())
    in
    Controller.enable_events t nf filter Protocol.Process;
    Ok { nf; filter; sub }
  in
  (* The enable itself is a short read of the instance: route it
     through a scheduler so events are not armed in the middle of a
     conflicting write (e.g. a move of the same flows), but hold
     nothing afterwards — notifications coexist with later ops. With a
     shard group, the read runs on the instance's home shard. *)
  let fp () =
    Sched.Footprint.make ~filters:[ filter ]
      ~reads:[ Controller.nf_name nf ] ()
  in
  match (shard_group, sched) with
  | Some g, _ -> Shard.run g ~footprint:(fp ()) ~nfs:[ nf ] act
  | None, Some s -> Sched.run s ~footprint:(fp ()) act
  | None, None -> act ()

let enable_exn ?sched ?shard_group t nf filter callback =
  match enable ?sched ?shard_group t nf filter callback with
  | Ok h -> h
  | Error e -> raise (Op_error.Op_failed e)

let disable t handle =
  Controller.disable_events t handle.nf handle.filter;
  Controller.unsubscribe t handle.sub
