module Protocol = Opennf_sb.Protocol
open Opennf_net

type handle = {
  nf : Controller.nf;
  filter : Filter.t;
  sub : Controller.subscription;
}

let ( let* ) = Result.bind

let enable ?sched t nf filter callback =
  let act () =
    let* () = Op_engine.ensure_alive t nf in
    let sub =
      Controller.subscribe_events t ~nf:(Controller.nf_name nf) filter
        (fun packet disposition ->
          match disposition with
          | Protocol.Process -> callback packet
          | Protocol.Buffer | Protocol.Drop -> ())
    in
    Controller.enable_events t nf filter Protocol.Process;
    Ok { nf; filter; sub }
  in
  match sched with
  | None -> act ()
  | Some s ->
    (* The enable itself is a short read of the instance: route it
       through the scheduler so events are not armed in the middle of a
       conflicting write (e.g. a move of the same flows), but hold
       nothing afterwards — notifications coexist with later ops. *)
    Sched.run s
      ~footprint:
        (Sched.Footprint.make ~filters:[ filter ]
           ~reads:[ Controller.nf_name nf ] ())
      act

let enable_exn ?sched t nf filter callback =
  match enable ?sched t nf filter callback with
  | Ok h -> h
  | Error e -> raise (Op_error.Op_failed e)

let disable t handle =
  Controller.disable_events t handle.nf handle.filter;
  Controller.unsubscribe t handle.sub
