module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf_state

let ( let* ) = Result.bind

type report = {
  cp_filter : Filter.t;
  cp_src : string;
  cp_dst : string;
  cp_scope : Scope.t list;
  started : float;
  finished : float;
  chunks : int;
  state_bytes : int;
}

let duration r = r.finished -. r.started

let pp_report ppf r =
  Format.fprintf ppf "copy %s->%s %a: %.1fms, %d chunks, %dB" r.cp_src r.cp_dst
    Filter.pp r.cp_filter
    (1000.0 *. duration r)
    r.chunks r.state_bytes

(* Copy never deletes at the source and never touches forwarding state,
   so there is nothing to roll back: a failure simply reports which call
   died. The destination may hold a partial import — harmless, since
   imports merge and the next copy round completes it. *)
let run t ~src ~dst ~filter ?(scope = [ Scope.Multi ]) ?options
    ?(parallel = true) () =
  let options =
    match options with Some o -> o | None -> Op_options.make ~parallel ()
  in
  let frame = Op_engine.start ~kind:"copy" t ~options in
  let parallel = options.Op_options.parallel in
  let tally = Op_engine.tally () in
  let guard () = Op_engine.deadline_guard frame ~nf:(Controller.nf_name dst) in
  let copy sc =
    Op_engine.transfer frame ~src ~dst ~scope:sc ~filter ~parallel tally
  in
  Op_engine.finish frame
  @@
  let* () = if Scope.mem Scope.Per scope then copy Scope.Per else Ok () in
  let* () = guard () in
  let* () = if Scope.mem Scope.Multi scope then copy Scope.Multi else Ok () in
  let* () = guard () in
  let* () = if Scope.mem Scope.All scope then copy Scope.All else Ok () in
  Ok
    {
      cp_filter = filter;
      cp_src = Controller.nf_name src;
      cp_dst = Controller.nf_name dst;
      cp_scope = scope;
      started = frame.Op_engine.started;
      finished = Op_engine.now frame;
      chunks = tally.Op_engine.chunks;
      state_bytes = tally.Op_engine.bytes;
    }

let run_exn t ~src ~dst ~filter ?scope ?options ?parallel () =
  match run t ~src ~dst ~filter ?scope ?options ?parallel () with
  | Ok r -> r
  | Error e -> raise (Op_error.Op_failed e)

let start t ~src ~dst ~filter ?scope ?options ?parallel () =
  Op_engine.background t (fun () ->
      run t ~src ~dst ~filter ?scope ?options ?parallel ())

let start_exn t ~src ~dst ~filter ?scope ?options ?parallel () =
  Op_engine.background t (fun () ->
      run_exn t ~src ~dst ~filter ?scope ?options ?parallel ())

(* A copy reads the source, writes the destination and leaves
   forwarding state alone. *)
let footprint ~src ~dst ~filter =
  Sched.Footprint.make ~filters:[ filter ]
    ~reads:[ Controller.nf_name src ]
    ~writes:[ Controller.nf_name dst ]
    ()

let submit sched ~src ~dst ~filter ?scope ?options ?parallel () =
  Sched.submit sched
    ~footprint:(footprint ~src ~dst ~filter)
    (fun () ->
      run (Sched.ctrl sched) ~src ~dst ~filter ?scope ?options ?parallel ())

let submit_sharded group ~src ~dst ~filter ?scope ?options ?parallel () =
  Shard.submit group
    ~footprint:(footprint ~src ~dst ~filter)
    ~nfs:[ src; dst ]
    (fun () ->
      run (Controller.nf_home src) ~src ~dst ~filter ?scope ?options ?parallel
        ())
