module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf_state

let ( let* ) = Result.bind

type report = {
  cp_filter : Filter.t;
  cp_src : string;
  cp_dst : string;
  cp_scope : Scope.t list;
  started : float;
  finished : float;
  chunks : int;
  state_bytes : int;
}

let duration r = r.finished -. r.started

let pp_report ppf r =
  Format.fprintf ppf "copy %s->%s %a: %.1fms, %d chunks, %dB" r.cp_src r.cp_dst
    Filter.pp r.cp_filter
    (1000.0 *. duration r)
    r.chunks r.state_bytes

let copy_stream t ~src ~dst ~scope ~filter ~parallel counters =
  let chunks_n, bytes = counters in
  let account chunks =
    chunks_n := !chunks_n + List.length chunks;
    bytes :=
      !bytes + List.fold_left (fun acc (_, c) -> acc + Chunk.size c) 0 chunks
  in
  if parallel then begin
    let pending = ref [] in
    let got =
      Controller.get t src ~scope
        ~on_piece:(fun flowid chunk ->
          pending :=
            Controller.put_async t dst ~scope [ (flowid, chunk) ] :: !pending)
        filter
    in
    (* Drain pipelined puts even on failure so nothing dangles. *)
    let first_err =
      List.fold_left
        (fun acc iv ->
          match Proc.Ivar.read iv with
          | Ok () -> acc
          | Error e -> ( match acc with None -> Some e | Some _ -> acc))
        None !pending
    in
    match (got, first_err) with
    | (Error _ as e), _ -> e
    | Ok _, Some e -> Error e
    | Ok chunks, None ->
      account chunks;
      Ok ()
  end
  else begin
    let* chunks = Controller.get t src ~scope filter in
    let* () =
      if chunks <> [] then Controller.put t dst ~scope chunks else Ok ()
    in
    account chunks;
    Ok ()
  end

(* Copy never deletes at the source and never touches forwarding state,
   so there is nothing to roll back: a failure simply reports which call
   died. The destination may hold a partial import — harmless, since
   imports merge and the next copy round completes it. *)
let run t ~src ~dst ~filter ?(scope = [ Scope.Multi ]) ?options
    ?(parallel = true) () =
  let options =
    match options with Some o -> o | None -> Op_options.make ~parallel ()
  in
  let engine = Controller.engine t in
  let started = Engine.now engine in
  let deadline_guard () =
    match options.Op_options.deadline with
    | None -> Ok ()
    | Some d ->
      if Engine.now engine -. started > d then
        Error (Op_error.Timeout { nf = Controller.nf_name dst; after = d })
      else Ok ()
  in
  let parallel = options.Op_options.parallel in
  let chunks_n = ref 0 and bytes = ref 0 in
  let* () =
    if Scope.mem Scope.Per scope then
      copy_stream t ~src ~dst ~scope:Scope.Per ~filter ~parallel
        (chunks_n, bytes)
    else Ok ()
  in
  let* () = deadline_guard () in
  let* () =
    if Scope.mem Scope.Multi scope then
      copy_stream t ~src ~dst ~scope:Scope.Multi ~filter ~parallel
        (chunks_n, bytes)
    else Ok ()
  in
  let* () = deadline_guard () in
  let* () =
    if Scope.mem Scope.All scope then begin
      let* chunks = Controller.get t src ~scope:Scope.All Filter.any in
      let* () =
        if chunks <> [] then Controller.put t dst ~scope:Scope.All chunks
        else Ok ()
      in
      chunks_n := !chunks_n + List.length chunks;
      bytes :=
        !bytes + List.fold_left (fun acc (_, c) -> acc + Chunk.size c) 0 chunks;
      Ok ()
    end
    else Ok ()
  in
  Ok
    {
      cp_filter = filter;
      cp_src = Controller.nf_name src;
      cp_dst = Controller.nf_name dst;
      cp_scope = scope;
      started;
      finished = Engine.now engine;
      chunks = !chunks_n;
      state_bytes = !bytes;
    }

let run_exn t ~src ~dst ~filter ?scope ?options ?parallel () =
  Op_error.ok_exn (run t ~src ~dst ~filter ?scope ?options ?parallel ())

let start t ~src ~dst ~filter ?scope ?options ?parallel () =
  let engine = Controller.engine t in
  let ivar = Proc.Ivar.create engine in
  Proc.spawn engine (fun () ->
      Proc.Ivar.fill ivar (run t ~src ~dst ~filter ?scope ?options ?parallel ()));
  ivar

let start_exn t ~src ~dst ~filter ?scope ?options ?parallel () =
  let engine = Controller.engine t in
  let ivar = Proc.Ivar.create engine in
  Proc.spawn engine (fun () ->
      Proc.Ivar.fill ivar
        (run_exn t ~src ~dst ~filter ?scope ?options ?parallel ()));
  ivar
