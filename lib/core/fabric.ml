module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
module Runtime = Opennf_sb.Runtime
open Opennf_net

type t = {
  engine : Engine.t;
  audit : Audit.t;
  switch : Switch.t;
  ctrl : Controller.t;
  sched : Sched.t;
  faults : Faults.t;
  link_latency : float;
}

let create ?(seed = 1) ?obs ?config ?flow_mod_delay ?packet_out_rate
    ?(link_latency = 0.0002) ?fault_seed ?resilience ?max_concurrent_ops () =
  let engine = Engine.create ~seed ?obs () in
  let audit = Audit.create engine in
  let faults = Faults.create engine ?seed:fault_seed () in
  let switch =
    Switch.create engine audit ~name:"sw" ?flow_mod_delay ?packet_out_rate ()
  in
  let ctrl =
    Controller.create engine audit ~switch ?config ~faults ?resilience ()
  in
  let sched = Sched.create ?max_concurrent:max_concurrent_ops ctrl in
  { engine; audit; switch; ctrl; sched; faults; link_latency }

let add_nf ?backend t ~name ~impl ~costs =
  let runtime =
    Runtime.create t.engine t.audit ~name ~impl ~costs ~faults:t.faults
      ?backend ()
  in
  let port =
    Channel.create t.engine ~latency:t.link_latency ~faults:t.faults
      ~name:("sw->" ^ name) ()
  in
  Channel.set_handler port (Runtime.receive runtime);
  Switch.attach_port t.switch ~name port;
  let nf = Controller.attach t.ctrl runtime in
  (nf, runtime)

let inject t p = Switch.inject t.switch p

let inject_at t time p =
  Engine.schedule_at t.engine time (fun () -> Switch.inject t.switch p)

let run ?until t = Engine.run ?until t.engine

let run_proc t body =
  Proc.spawn t.engine body;
  Engine.run t.engine
