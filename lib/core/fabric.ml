module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
module Runtime = Opennf_sb.Runtime
open Opennf_net

type t = {
  engine : Engine.t;
  audit : Audit.t;
  switch : Switch.t;
  ctrl : Controller.t;
  sched : Sched.t;
  group : Shard.t;
  faults : Faults.t;
  link_latency : float;
}

let shards_from_env () =
  match Sys.getenv_opt "OPENNF_SHARDS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> invalid_arg ("bad OPENNF_SHARDS: " ^ s))

let create ?(seed = 1) ?obs ?config ?flow_mod_delay ?packet_out_rate
    ?(link_latency = 0.0002) ?fault_seed ?resilience ?max_concurrent_ops
    ?shards () =
  let shards =
    match shards with Some n -> n | None -> shards_from_env ()
  in
  if shards < 1 then invalid_arg "Fabric.create: shards must be >= 1";
  let engine = Engine.create ~seed ?obs () in
  let audit = Audit.create engine in
  let faults = Faults.create engine ?seed:fault_seed () in
  let switch =
    Switch.create engine audit ~name:"sw" ?flow_mod_delay ?packet_out_rate ()
  in
  (* Shard k registers switch connection k (creation order), so routing
     a packet-in to its flow's owning shard is routing to conn index
     [Shard.of_key]. With one shard none of this machinery engages and
     the fabric is event-for-event the pre-shard one. *)
  let ctrls =
    Array.init shards (fun shard ->
        Controller.create engine audit ~switch ?config ~faults ?resilience
          ~shard ~shards ())
  in
  Controller.set_group ctrls;
  let scheds =
    Array.map (Sched.create ?max_concurrent:max_concurrent_ops) ctrls
  in
  let group = Shard.make ctrls scheds in
  if shards > 1 then
    Switch.set_packet_in_router switch (fun (p : Packet.t) ->
        Shard.of_key ~shards p.Packet.key);
  {
    engine;
    audit;
    switch;
    ctrl = ctrls.(0);
    sched = scheds.(0);
    group;
    faults;
    link_latency;
  }

let shards t = Shard.count t.group
let ctrl_of t k = Shard.ctrl t.group k
let sched_of t k = Shard.sched t.group k
let nf_sched t nf = Shard.sched t.group (Controller.nf_shard nf)

let add_nf ?backend ?shard t ~name ~impl ~costs =
  let shard =
    match shard with
    | Some s ->
      if s < 0 || s >= shards t then invalid_arg "Fabric.add_nf: bad shard";
      s
    | None -> Shard.of_name ~shards:(shards t) name
  in
  let runtime =
    Runtime.create t.engine t.audit ~name ~impl ~costs ~faults:t.faults
      ?backend ()
  in
  let port =
    Channel.create t.engine ~latency:t.link_latency ~faults:t.faults
      ~name:("sw->" ^ name) ()
  in
  Channel.set_handler port (Runtime.receive runtime);
  Switch.attach_port t.switch ~name port;
  let nf = Controller.attach (ctrl_of t shard) runtime in
  (nf, runtime)

let inject t p = Switch.inject t.switch p

let inject_at t time p =
  Engine.schedule_at t.engine time (fun () -> Switch.inject t.switch p)

let run ?until t = Engine.run ?until t.engine

let run_proc t body =
  Proc.spawn t.engine body;
  Engine.run t.engine
