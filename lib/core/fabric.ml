module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Par = Opennf_sim.Par
module Faults = Opennf_sim.Faults
module Runtime = Opennf_sb.Runtime
open Opennf_net

type t = {
  engine : Engine.t;
  audit : Audit.t;
  switch : Switch.t;
  ctrl : Controller.t;
  sched : Sched.t;
  group : Shard.t;
  faults : Faults.t;
  link_latency : float;
  par : Par.t option;
  engines : Engine.t array;
  audits : Audit.t array;
  switches : Switch.t array;
  shard_faults : Faults.t array;
  ports : (string, int * Packet.t Channel.t) Hashtbl.t;
  monitors : Opennf_obs.Monitor.t array;
      (** Live §5.1 checkers, one per audit stream; [[||]] when the
          fabric was created without [~monitor:true]. *)
}

let shards_from_env () =
  match Sys.getenv_opt "OPENNF_SHARDS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> invalid_arg ("bad OPENNF_SHARDS: " ^ s))

let par_from_env () =
  match Sys.getenv_opt "OPENNF_PAR" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let monitor_from_env () =
  match Sys.getenv_opt "OPENNF_MONITOR" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* Stitch the per-shard switch replicas into one logical switch (see
   {!Switch}'s replica-stitching hooks): flow-mods received on one
   replica mirror to the others at the same virtual time; packet-ins
   for a connection bound elsewhere, and forwards out a port attached
   elsewhere, ride the cross-engine channels to the owning shard. *)
let stitch_switches p ~shards switches audits ports =
  Array.iteri
    (fun k sw ->
      Switch.set_packet_in_router sw (fun (pkt : Packet.t) ->
          Shard.of_key ~shards pkt.Packet.key);
      Switch.set_mod_tap sw (fun ~conn msg ->
          Array.iteri
            (fun j peer ->
              if j <> k then
                Par.post p ~dst:j (fun () -> Switch.apply_mod peer ~conn msg))
            switches);
      Switch.set_conn_proxy sw (fun ~conn msg ->
          if conn >= 0 && conn < shards then begin
            Par.post p ~dst:conn (fun () ->
                Switch.emit_to switches.(conn) ~conn msg);
            true
          end
          else false);
      Switch.set_port_proxy sw (fun ~port pkt ->
          match Hashtbl.find_opt ports port with
          | None -> false
          | Some (s, ch) ->
            Par.post p ~dst:s (fun () ->
                Audit.log_forward audits.(s) pkt ~dst:port;
                Channel.send ch ~size:pkt.Packet.wire_size pkt);
            true))
    switches

let create ?(seed = 1) ?obs ?shard_obs ?config ?flow_mod_delay ?packet_out_rate
    ?(link_latency = 0.0002) ?fault_seed ?resilience ?max_concurrent_ops
    ?shards ?par ?monitor () =
  let shards =
    match shards with Some n -> n | None -> shards_from_env ()
  in
  if shards < 1 then invalid_arg "Fabric.create: shards must be >= 1";
  let par =
    (match par with Some b -> b | None -> par_from_env ()) && shards > 1
  in
  let monitor =
    match monitor with Some b -> b | None -> monitor_from_env ()
  in
  (* One live checker per audit stream. The monitor taps the audit's
     tracer (the shared hub trace when tracing, the private ledger
     otherwise) and never schedules or records, so virtual-time results
     are unchanged. *)
  let make_monitors audits_distinct =
    if not monitor then [||]
    else
      Array.mapi
        (fun k audit ->
          let m = Opennf_obs.Monitor.create ~shard:k () in
          Opennf_obs.Monitor.attach m (Audit.trace audit);
          m)
        audits_distinct
  in
  if not par then begin
    let engine = Engine.create ~seed ?obs () in
    let audit = Audit.create engine in
    let faults = Faults.create engine ?seed:fault_seed () in
    let switch =
      Switch.create engine audit ~name:"sw" ?flow_mod_delay ?packet_out_rate ()
    in
    (* Shard k registers switch connection k (creation order), so routing
       a packet-in to its flow's owning shard is routing to conn index
       [Shard.of_key]. With one shard none of this machinery engages and
       the fabric is event-for-event the pre-shard one. *)
    let ctrls =
      Array.init shards (fun shard ->
          Controller.create engine audit ~switch ?config ~faults ?resilience
            ~shard ~shards ())
    in
    Controller.set_group ctrls;
    let scheds =
      Array.map (Sched.create ?max_concurrent:max_concurrent_ops) ctrls
    in
    let group = Shard.make ctrls scheds in
    if shards > 1 then
      Switch.set_packet_in_router switch (fun (p : Packet.t) ->
          Shard.of_key ~shards p.Packet.key);
    let monitors = make_monitors [| audit |] in
    {
      engine;
      audit;
      switch;
      ctrl = ctrls.(0);
      sched = scheds.(0);
      group;
      faults;
      link_latency;
      par = None;
      engines = Array.make shards engine;
      audits = Array.make shards audit;
      switches = Array.make shards switch;
      shard_faults = Array.make shards faults;
      ports = Hashtbl.create 16;
      monitors;
    }
  end
  else begin
    (* Parallel mode: one engine (and one audit, faults handle and
       switch replica) per shard. Observability hubs cannot be shared
       across engines — each shard buffers its own trace, merged after
       the run ({!Audit.merged}, {!Opennf_obs.Export.canonical}). *)
    if Option.is_some obs then
      invalid_arg "Fabric.create: pass ~shard_obs (one hub per shard) with ~par";
    let engines =
      Array.init shards (fun k ->
          let obs = Option.map (fun f -> f k) shard_obs in
          Engine.create ~seed ?obs ())
    in
    let audits = Array.map Audit.create engines in
    let shard_faults =
      Array.map (fun e -> Faults.create e ?seed:fault_seed ()) engines
    in
    let switches =
      Array.init shards (fun k ->
          Switch.create engines.(k) audits.(k) ~name:"sw" ?flow_mod_delay
            ?packet_out_rate ())
    in
    (* [~conn:k] pins controller k at connection k on its own replica,
       so every replica agrees on the global connection numbering (the
       other slots stay empty and route through the conn proxy). *)
    let ctrls =
      Array.init shards (fun k ->
          Controller.create engines.(k) audits.(k) ~switch:switches.(k) ?config
            ~faults:shard_faults.(k) ?resilience ~shard:k ~shards ~conn:k ())
    in
    Controller.set_group ctrls;
    let scheds =
      Array.map (Sched.create ?max_concurrent:max_concurrent_ops) ctrls
    in
    let group = Shard.make ctrls scheds in
    let p = Par.create engines in
    Controller.set_par ctrls.(0) p;
    let ports = Hashtbl.create 16 in
    stitch_switches p ~shards switches audits ports;
    let monitors = make_monitors audits in
    {
      engine = engines.(0);
      audit = audits.(0);
      switch = switches.(0);
      ctrl = ctrls.(0);
      sched = scheds.(0);
      group;
      faults = shard_faults.(0);
      link_latency;
      par = Some p;
      engines;
      audits;
      switches;
      shard_faults;
      ports;
      monitors;
    }
  end

let shards t = Shard.count t.group
let parallel t = Option.is_some t.par
let ctrl_of t k = Shard.ctrl t.group k
let sched_of t k = Shard.sched t.group k
let nf_sched t nf = Shard.sched t.group (Controller.nf_shard nf)

let add_nf ?backend ?shard t ~name ~impl ~costs =
  let shard =
    match shard with
    | Some s ->
      if s < 0 || s >= shards t then invalid_arg "Fabric.add_nf: bad shard";
      s
    | None -> Shard.of_name ~shards:(shards t) name
  in
  (* In a serial fabric every array entry aliases the one engine/audit/
     switch, so indexing by home shard is the unchanged wiring. *)
  let runtime =
    Runtime.create t.engines.(shard) t.audits.(shard) ~name ~impl ~costs
      ~faults:t.shard_faults.(shard) ?backend ()
  in
  let port =
    Channel.create t.engines.(shard) ~latency:t.link_latency
      ~faults:t.shard_faults.(shard) ~name:("sw->" ^ name) ()
  in
  Channel.set_handler port (Runtime.receive runtime);
  Switch.attach_port t.switches.(shard) ~name port;
  Hashtbl.replace t.ports name (shard, port);
  let nf = Controller.attach (ctrl_of t shard) runtime in
  (nf, runtime)

(* Packets enter at their flow's owning replica, so the packet-in (if
   the rule says To_controller) is a local delivery to the owning
   shard's controller connection. Serial: owner is replica 0, the one
   switch. *)
let owner t (p : Packet.t) =
  match t.par with
  | None -> 0
  | Some _ -> Shard.of_key ~shards:(shards t) p.Packet.key

let inject t p = Switch.inject t.switches.(owner t p) p

let inject_at t time p =
  let s = owner t p in
  Engine.schedule_at t.engines.(s) time (fun () ->
      Switch.inject t.switches.(s) p)

let run ?until ?workers t =
  match t.par with
  | None ->
    ignore (workers : int option);
    Engine.run ?until t.engine
  | Some p ->
    (match until with
    | Some _ ->
      invalid_arg "Fabric.run: ~until is not supported in parallel mode"
    | None -> ());
    Par.run ?workers p

let run_proc ?workers t body =
  Proc.spawn t.engine body;
  run ?workers t

let merged_audit t =
  match t.par with
  | None -> t.audit
  | Some _ -> Audit.merged t.engine (Array.to_list t.audits)

let monitored t = Array.length t.monitors > 0

(* The audit streams, shard-tagged, deduplicated: a serial fabric's
   [audits] array aliases the one ledger in every slot. *)
let audit_traces t =
  match t.par with
  | None -> [ (0, Audit.trace t.audit) ]
  | Some _ -> List.mapi (fun k a -> (k, Audit.trace a)) (Array.to_list t.audits)

let verdict ?history t =
  Opennf_obs.Monitor.merged_verdict ?history (audit_traces t)

let live_findings t =
  Array.to_list t.monitors
  |> List.concat_map Opennf_obs.Monitor.findings
