(** Options shared by the northbound operations (move/copy/share).

    One record instead of a per-operation flag zoo: [parallel] streams
    chunks and pipelines puts (§5.1.3), [early_release] adds late
    locking and per-flow release (move only; implies [parallel]),
    [compress] runs state through the compressed-stream model (§8.3),
    and [deadline] bounds the whole operation in virtual seconds —
    exceeding it aborts and rolls back with [Op_error.Timeout]. *)

type t = {
  parallel : bool;
  early_release : bool;
  compress : bool;
  deadline : float option;
}

val default : t
(** All optimizations off, no deadline. *)

val make :
  ?parallel:bool ->
  ?early_release:bool ->
  ?compress:bool ->
  ?deadline:float ->
  unit ->
  t
(** [early_release] forces [parallel] on, as in the paper. *)
