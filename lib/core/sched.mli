(** Scope-aware admission control for northbound operations.

    Nothing in the controller stops two concurrent operations whose
    filters overlap from interleaving get/del/put on the same flows and
    corrupting state (the migration-correctness hazard formalized in
    arXiv:2404.07701). The scheduler closes that hole: every operation
    declares a {e footprint} — the filters it covers, the NF instances
    it reads/writes, and whether it updates forwarding state — and the
    scheduler admits operations so that

    - footprint-disjoint operations run concurrently, up to a
      configurable cap ([max_concurrent]);
    - conflicting operations queue FIFO per conflict class: each waiter
      runs after every earlier-submitted operation it conflicts with,
      but may overtake unrelated queues;
    - admission is deterministic (fixed scan order, monotone ids), so
      simulation runs stay reproducible.

    Footprints can shrink while held: an early-release move reports each
    flow as its chunk lands ({!release_flow}), letting an exact-flow
    waiter start before the whole move finishes.

    The scheduler is advisory plumbing, not a lock manager inside the
    controller: operations started directly ({!Move.start}) bypass it
    unchanged, which keeps single-op runs bit-identical to the
    pre-scheduler code. *)

open Opennf_net
module Proc = Opennf_sim.Proc

module Footprint : sig
  type t = {
    filters : Filter.t list;  (** Flow coverage (empty = none). *)
    reads : string list;  (** NF instances only read. *)
    writes : string list;  (** NF instances whose state is written. *)
    routes : bool;  (** Installs/removes forwarding rules. *)
    mutable released : Flow.key list;
        (** Flows already handed off (early release); exact-flow
            candidates for these keys no longer conflict. *)
  }

  val make :
    ?filters:Filter.t list ->
    ?reads:string list ->
    ?writes:string list ->
    ?routes:bool ->
    unit ->
    t

  val conflicts : held:t -> cand:t -> bool
  (** True when the operations must not interleave: they clash on a
      resource (route updates, write/write, or write/read on a common
      instance) {e and} their filters overlap ({!Filter.overlaps}),
      minus [held]'s released exact flows. *)

  val release : t -> Flow.key -> unit
  (** Record that [key]'s state has safely landed; exact-key candidates
      for it no longer conflict. Prefer {!Sched.release_flow}, which
      also re-pumps the admission queue. *)
end

type t

val create : ?max_concurrent:int -> Controller.t -> t
(** A scheduler over [ctrl]'s operations. [max_concurrent] (default 8)
    caps simultaneously admitted operations; raises [Invalid_argument]
    below 1. Creation schedules nothing on the engine. *)

val ctrl : t -> Controller.t

val submit : t -> footprint:Footprint.t -> (unit -> 'a) -> 'a Proc.Ivar.t
(** Queue [body] under [footprint]. Once admitted it runs in its own
    simulation process; the ivar resolves with its result. The footprint
    is held until [body] returns. *)

val run : t -> footprint:Footprint.t -> (unit -> 'a) -> 'a
(** [submit] and block for the result. *)

val release_flow : t -> footprint:Footprint.t -> Flow.key -> unit
(** Shrink a held footprint: [key]'s state has safely landed, so
    exact-flow waiters on it may be admitted now. No-op on footprints
    that are not currently held. *)

val repump : t -> unit
(** Re-scan the admission queue after a footprint was shrunk elsewhere
    ({!Footprint.release} without this scheduler's involvement). The
    parallel sharded fabric mutates a cross-shard footprint once, on
    the owning shard, and repumps the other involved schedulers. *)

(** {1 Long-lived holds}

    {!Share} (and similar standing services) own their instances' state
    for their whole lifetime rather than for one call. *)

type handle

val acquire : t -> footprint:Footprint.t -> handle
(** Block until the footprint can be admitted, then hold it until
    {!release}. Counts against [max_concurrent]. *)

val release : t -> handle -> unit
(** Give the footprint back and admit eligible waiters. Idempotent. *)

val release_key : t -> handle -> Flow.key -> unit
(** {!release_flow} for a held handle. *)

(** {1 Introspection} *)

type stats = {
  admitted : int;  (** Operations admitted so far. *)
  completed : int;  (** Operations finished or released. *)
  peak_active : int;  (** Max simultaneously admitted. *)
  peak_waiting : int;  (** Max queue length observed. *)
}

val stats : t -> stats
val active_count : t -> int
val waiting_count : t -> int
