type t = {
  parallel : bool;
  early_release : bool;
  compress : bool;
  deadline : float option;
}

let default =
  { parallel = false; early_release = false; compress = false; deadline = None }

let make ?(parallel = false) ?(early_release = false) ?(compress = false)
    ?deadline () =
  (* Early release only makes sense when chunks stream. *)
  { parallel = parallel || early_release; early_release; compress; deadline }
