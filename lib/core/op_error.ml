type t =
  | Nf_crashed of { nf : string }
  | Timeout of { nf : string; after : float }
  | Aborted of { reason : string }
  | Bad_spec of { reason : string }

exception Op_failed of t

let pp ppf = function
  | Nf_crashed { nf } -> Format.fprintf ppf "NF %s crashed" nf
  | Timeout { nf; after } ->
    Format.fprintf ppf "call to %s timed out after %.0fms" nf (1000.0 *. after)
  | Aborted { reason } -> Format.fprintf ppf "operation aborted: %s" reason
  | Bad_spec { reason } -> Format.fprintf ppf "bad spec: %s" reason

let to_string t = Format.asprintf "%a" pp t

(* Static strings: tracing and metrics label errors without allocating. *)
let kind = function
  | Nf_crashed _ -> "nf_crashed"
  | Timeout _ -> "timeout"
  | Aborted _ -> "aborted"
  | Bad_spec _ -> "bad_spec"

let ok_exn = function Ok v -> v | Error e -> raise (Op_failed e)

let () =
  Printexc.register_printer (function
    | Op_failed e -> Some ("Op_failed: " ^ to_string e)
    | _ -> None)
