(** The OpenNF controller: plumbing layer.

    Owns the channels to the SDN switch and to every attached NF,
    provides the scope-indexed southbound API (callable from simulation
    processes), event and packet-in subscriptions, and OpenFlow-style
    rule management with barriers. The northbound operations of §5 are
    built on top in {!Move}, {!Copy_op}, {!Share} and {!Notify}.

    All inbound messages (NF replies, events, packet-ins, barrier
    replies) pass through a serial controller CPU whose per-message cost
    scales with message size — the bottleneck the paper identifies in
    §8.3 ("threads are busy reading from sockets").

    {2 Resilience}

    With a {!resilience} config installed, every southbound call gets a
    deadline; missed deadlines are retried with exponential backoff
    under the {e same} request id (so duplicate replies are ignored),
    and [liveness_misses] consecutive misses declare the NF dead, firing
    {!on_nf_death} callbacks. Without it (the default) the controller
    behaves exactly as before: calls block until the reply arrives and
    no timer events are scheduled, keeping fault-free runs bit-identical
    to the legacy code. *)

open Opennf_net
open Opennf_state
module Proc = Opennf_sim.Proc

type config = {
  nf_latency : float;  (** Controller ↔ NF channel latency (s). *)
  sw_latency : float;  (** Controller ↔ switch channel latency (s). *)
  sw_bandwidth : float option;
      (** Bytes/s of the OpenFlow control connection; bounds the
          packet-out rate and makes flow-mods queue behind packet
          flushes (the paper's switch sustains ~3000 packet-outs/s). *)
  msg_cost : float;  (** Controller CPU per inbound message (s). *)
  msg_cost_per_byte : float;  (** Additional CPU per inbound byte. *)
  sb_batch_bytes : int option;
      (** When set, every attached NF is told ([Set_batching]) to
          coalesce streamed pieces into [Batch_reply] messages once the
          buffered payload reaches this many bytes, so N concurrent
          operations do not pay N× the per-message controller cost
          (§8.3). [None] (the default) keeps the per-message wire
          behaviour — and every virtual-time trace — exactly as before. *)
}

val default_config : config

type resilience = {
  call_timeout : float;  (** Deadline per southbound call attempt (s). *)
  max_retries : int;  (** Resends after the first attempt times out. *)
  backoff : float;  (** First retry delay; doubles per retry. *)
  liveness_misses : int;
      (** Consecutive missed deadlines before the NF is declared dead. *)
  probe_period : float;  (** Period of {!start_probes} heartbeats (s). *)
}

val default_resilience : resilience

val call_budget : resilience -> float
(** Worst-case wall-clock of one resilient call: all attempts time out
    and every backoff is paid. Operations use it to bound rollback. *)

type t
type nf

val create :
  Opennf_sim.Engine.t -> Audit.t -> switch:Switch.t -> ?config:config ->
  ?faults:Opennf_sim.Faults.t -> ?resilience:resilience ->
  ?shard:int -> ?shards:int -> ?conn:int -> unit -> t
(** [faults] is consulted by every control channel the controller
    creates (switch and NF links), keyed by channel name.

    [shard]/[shards] (defaults 0/1) place this instance in a sharded
    control plane (see {!Shard}): the instance registers its own switch
    connection (per-connection barriers), stripes its rule cookies by
    shard id, and labels its channels and metrics with the shard. With
    the defaults every name and every virtual-time event is identical
    to the single-controller controller.

    [conn] pins the switch connection id instead of taking the next
    free one ({!Switch.register_controller_at}) — the parallel fabric
    uses it so every switch replica binds controller [k] at connection
    [k]. *)

val engine : t -> Opennf_sim.Engine.t

val shard_id : t -> int
(** This instance's shard id (0 in a single-controller fabric). *)

val shard_count : t -> int
(** Shard count of the control plane this instance belongs to. *)

val metric_suffix : t -> string
(** [".shard<k>"] when [shard_count > 1], [""] otherwise — appended to
    metric names by the controller and by per-shard components
    ({!Sched}) so single-shard metric namespaces are unchanged. *)

val set_group : t array -> unit
(** Introduce the members of a shard group to each other (index =
    shard id). Cross-shard routing ({!find_nf}, subscription placement,
    {!on_nf_death}, {!start_probes}) spans the group afterwards.
    Called by {!Fabric.create}; idempotent. *)

val set_par : t -> Opennf_sim.Par.t -> unit
(** Declare (to the whole group) that this control plane runs in
    parallel mode: one engine per shard on the channels of [par].
    Every cross-shard touch thereafter — southbound calls to NFs homed
    elsewhere, subscription placement, liveness reads — rides those
    channels instead of touching the peer's state directly. Called by
    the parallel {!Fabric.create}. *)

val par : t -> Opennf_sim.Par.t option
(** The parallel-run handle, when {!set_par} was called. *)

val nf_home : nf -> t
(** The controller shard that owns this NF: its channels, request-id
    namespace and pending tables serve every call to the NF, whichever
    shard's handle the caller holds. *)

val nf_shard : nf -> int
(** [shard_id (nf_home nf)]. *)

val obs : t -> Opennf_obs.Hub.t
(** The engine's observability hub (southbound taps, op spans and the
    scheduler's queue metrics all record through it). *)

val audit : t -> Audit.t
val resilience : t -> resilience option

val set_op_parent : t -> int -> unit
(** Stamp the ambient parent span for the next operation started on
    this shard. {!Sched} sets it (to the scheduler entry's span) right
    before running an admitted body; {!Op_engine.start} consumes it via
    {!take_op_parent}, so the op span nests under its scheduler span
    and queue wait is attributable per op. Safe as a per-shard ambient:
    procs are cooperative and the consume happens before the op's first
    blocking point. *)

val take_op_parent : t -> int
(** Read-and-clear the ambient op parent (0 when unset). *)

val attach : ?backend:Backend.t -> t -> Opennf_sb.Runtime.t -> nf
(** Wire an NF into the controller. The NF must (separately) be attached
    to a switch port bearing its runtime name. [backend] (default: the
    runtime's own backend, if it was created over one) registers where
    this instance's state lives, which lets operations take the
    {!state_path} fast paths. *)

val nf_name : nf -> string
val find_nf : t -> string -> nf option
val messages_handled : t -> int

val backend_of : nf -> Backend.t option
(** The state backend registered at {!attach} time, if any. *)

val state_path :
  t -> src:nf -> dst:nf -> scope:Scope.t ->
  [ `Transfer | `Same_store | `Replicated of Backend.t ]
(** How [scope]-labelled state actually gets from [src] to [dst]:
    [`Transfer] is the classic bulk get/del/put; [`Same_store] means
    both instances read the same (shared) backend and there is nothing
    to move; [`Replicated b] means the replication stream of [b]
    already carries it and a {!Backend.drain} suffices. Instances
    without backends always resolve to [`Transfer]. *)

(** {1 Liveness} *)

val nf_alive : t -> nf -> bool
(** False once the liveness monitor declared the NF dead. *)

val on_nf_death : t -> (string -> unit) -> unit
(** Register a callback fired (in its own process, so it may block) when
    an NF is declared dead. Callbacks fire in registration order. *)

val declare_nf_dead : t -> nf -> unit
(** Force the liveness verdict (used by tests and by operations that
    witness a crash directly). Idempotent. *)

val probe_async : t -> nf -> (unit, Op_error.t) result Proc.Ivar.t
(** Send a [Ping] through the NF's work queue; resolves [Ok ()] on the
    ack, or a typed error under the resilience policy. Detects wedged
    NFs, not just dead channels. *)

val start_probes : t -> until:float -> unit
(** Spawn a heartbeat process probing every live NF each [probe_period]
    until virtual time [until] (bounded so the simulation quiesces).
    Requires a resilience config; raises [Invalid_argument] without. *)

(** {1 Southbound calls}

    One scope-indexed family replaces the per-scope triplets. The
    blocking forms suspend the calling simulation process; the [_async]
    forms return a result ivar immediately (used to pipeline puts behind
    a streaming get). [enable_events]/[disable_events] are
    fire-and-forget, as in the paper. *)

val enable_events : t -> nf -> Filter.t -> Opennf_sb.Protocol.event_action -> unit
val disable_events : t -> nf -> Filter.t -> unit

val get_async :
  t -> nf -> scope:Scope.t ->
  ?on_piece:(Filter.t -> Chunk.t -> unit) ->
  ?late_lock:bool -> ?compress:bool -> Filter.t ->
  ((Filter.t * Chunk.t) list, Op_error.t) result Proc.Ivar.t
(** With [on_piece], the get streams (parallelizing optimization §5.1.3):
    the callback fires at each arriving chunk (exactly once per flowid,
    even under retries/duplication) and the resolved list contains all
    of them. [late_lock] applies to [Per] scope only; [All] scope
    ignores the filter and never streams. *)

val put_async :
  t -> nf -> scope:Scope.t -> (Filter.t * Chunk.t) list ->
  (unit, Op_error.t) result Proc.Ivar.t

val del_async :
  t -> nf -> scope:Scope.t -> Filter.t list ->
  (unit, Op_error.t) result Proc.Ivar.t
(** [All] scope resolves [Error (Bad_spec _)]: all-flows state is always
    relevant, so the API has no delete for it (§4.2). *)

val get :
  t -> nf -> scope:Scope.t ->
  ?on_piece:(Filter.t -> Chunk.t -> unit) ->
  ?late_lock:bool -> ?compress:bool -> Filter.t ->
  ((Filter.t * Chunk.t) list, Op_error.t) result

val put :
  t -> nf -> scope:Scope.t -> (Filter.t * Chunk.t) list ->
  (unit, Op_error.t) result

val del :
  t -> nf -> scope:Scope.t -> Filter.t list -> (unit, Op_error.t) result

(** {2 Legacy per-scope wrappers}

    Thin aliases over the scope-indexed API, kept for source
    compatibility. They raise {!Op_error.Op_failed} on typed errors
    (which cannot happen without a resilience config or fault
    injection). *)

val get_perflow :
  t -> nf -> Filter.t ->
  ?on_piece:(Filter.t -> Chunk.t -> unit) ->
  ?late_lock:bool -> ?compress:bool -> unit ->
  (Filter.t * Chunk.t) list

val put_perflow : t -> nf -> (Filter.t * Chunk.t) list -> unit

val put_perflow_async :
  t -> nf -> (Filter.t * Chunk.t) list ->
  (unit, Op_error.t) result Proc.Ivar.t
(** Non-blocking put used to pipeline puts behind a streaming get. *)

val del_perflow : t -> nf -> Filter.t list -> unit

val del_perflow_async :
  t -> nf -> Filter.t list -> (unit, Op_error.t) result Proc.Ivar.t

val get_multiflow :
  t -> nf -> Filter.t ->
  ?on_piece:(Filter.t -> Chunk.t -> unit) -> ?compress:bool -> unit ->
  (Filter.t * Chunk.t) list

val put_multiflow : t -> nf -> (Filter.t * Chunk.t) list -> unit

val put_multiflow_async :
  t -> nf -> (Filter.t * Chunk.t) list ->
  (unit, Op_error.t) result Proc.Ivar.t

val del_multiflow : t -> nf -> Filter.t list -> unit
val get_allflows : t -> nf -> Chunk.t list
val put_allflows : t -> nf -> Chunk.t list -> unit

(** {1 Events and packet-ins} *)

type subscription

val subscribe_events :
  t -> nf:string -> Filter.t ->
  (Packet.t -> Opennf_sb.Protocol.event_action -> unit) -> subscription
(** Callback runs for every event from [nf] whose packet matches the
    filter (connection-level match). *)

val subscribe_packet_in : t -> Filter.t -> (Packet.t -> unit) -> subscription
val unsubscribe : t -> subscription -> unit

(** {1 Forwarding state} *)

val fresh_cookie : t -> int

val install_rule :
  t -> cookie:int -> priority:int -> filters:Filter.t list ->
  actions:Flowtable.action list -> unit

val remove_rule : t -> cookie:int -> unit

val barrier : t -> unit
(** Block until the switch confirms all earlier flow-mods are active. *)

val packet_out : t -> port:string -> Packet.t -> unit

val set_route : t -> Filter.t -> nf -> unit
(** Blocking: point [filter] (and its mirror) at the NF with a base-
    priority rule, replacing any previous route set for the same filter,
    and wait for it to take effect. *)

val final_route_cookie : t -> Filter.t -> int
(** The stable cookie used for [filter]'s move-final rule. Memoized per
    filter, so repeated moves of the same flows replace one rule rather
    than accumulating one per move. *)

(** Rule priority conventions used by the move protocols. *)

val base_priority : int
val move_final_priority : int
val phase1_priority : int
val phase2_priority : int
