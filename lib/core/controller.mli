(** The OpenNF controller: plumbing layer.

    Owns the channels to the SDN switch and to every attached NF,
    provides blocking wrappers for the southbound API (callable from
    simulation processes), event and packet-in subscriptions, and
    OpenFlow-style rule management with barriers. The northbound
    operations of §5 are built on top in {!Northbound}.

    All inbound messages (NF replies, events, packet-ins, barrier
    replies) pass through a serial controller CPU whose per-message cost
    scales with message size — the bottleneck the paper identifies in
    §8.3 ("threads are busy reading from sockets"). *)

open Opennf_net
open Opennf_state
module Proc = Opennf_sim.Proc

type config = {
  nf_latency : float;  (** Controller ↔ NF channel latency (s). *)
  sw_latency : float;  (** Controller ↔ switch channel latency (s). *)
  sw_bandwidth : float option;
      (** Bytes/s of the OpenFlow control connection; bounds the
          packet-out rate and makes flow-mods queue behind packet
          flushes (the paper's switch sustains ~3000 packet-outs/s). *)
  msg_cost : float;  (** Controller CPU per inbound message (s). *)
  msg_cost_per_byte : float;  (** Additional CPU per inbound byte. *)
}

val default_config : config

type t
type nf

val create :
  Opennf_sim.Engine.t -> Audit.t -> switch:Switch.t -> ?config:config ->
  unit -> t

val engine : t -> Opennf_sim.Engine.t
val audit : t -> Audit.t

val attach : t -> Opennf_sb.Runtime.t -> nf
(** Wire an NF into the controller. The NF must (separately) be attached
    to a switch port bearing its runtime name. *)

val nf_name : nf -> string
val find_nf : t -> string -> nf option
val messages_handled : t -> int

(** {1 Southbound calls}

    The [get_*]/[put_*]/[del_*] wrappers block the calling simulation
    process until the NF replies, so northbound operations read like the
    paper's pseudo-code. [enable_events]/[disable_events] are
    fire-and-forget, as in the paper. *)

val enable_events : t -> nf -> Filter.t -> Opennf_sb.Protocol.event_action -> unit
val disable_events : t -> nf -> Filter.t -> unit

val get_perflow :
  t -> nf -> Filter.t ->
  ?on_piece:(Filter.t -> Chunk.t -> unit) ->
  ?late_lock:bool -> ?compress:bool -> unit ->
  (Filter.t * Chunk.t) list
(** With [on_piece], the get streams (parallelizing optimization §5.1.3):
    the callback fires at each arriving chunk and the returned list
    contains all of them once the NF finishes. *)

val put_perflow : t -> nf -> (Filter.t * Chunk.t) list -> unit

val put_perflow_async : t -> nf -> (Filter.t * Chunk.t) list -> unit Proc.Ivar.t
(** Non-blocking put used to pipeline puts behind a streaming get. *)

val del_perflow : t -> nf -> Filter.t list -> unit
val del_perflow_async : t -> nf -> Filter.t list -> unit Proc.Ivar.t

val get_multiflow :
  t -> nf -> Filter.t ->
  ?on_piece:(Filter.t -> Chunk.t -> unit) -> ?compress:bool -> unit ->
  (Filter.t * Chunk.t) list

val put_multiflow : t -> nf -> (Filter.t * Chunk.t) list -> unit
val put_multiflow_async : t -> nf -> (Filter.t * Chunk.t) list -> unit Proc.Ivar.t
val del_multiflow : t -> nf -> Filter.t list -> unit
val get_allflows : t -> nf -> Chunk.t list
val put_allflows : t -> nf -> Chunk.t list -> unit

(** {1 Events and packet-ins} *)

type subscription

val subscribe_events :
  t -> nf:string -> Filter.t ->
  (Packet.t -> Opennf_sb.Protocol.event_action -> unit) -> subscription
(** Callback runs for every event from [nf] whose packet matches the
    filter (connection-level match). *)

val subscribe_packet_in : t -> Filter.t -> (Packet.t -> unit) -> subscription
val unsubscribe : t -> subscription -> unit

(** {1 Forwarding state} *)

val fresh_cookie : t -> int

val install_rule :
  t -> cookie:int -> priority:int -> filters:Filter.t list ->
  actions:Flowtable.action list -> unit

val remove_rule : t -> cookie:int -> unit

val barrier : t -> unit
(** Block until the switch confirms all earlier flow-mods are active. *)

val packet_out : t -> port:string -> Packet.t -> unit

val set_route : t -> Filter.t -> nf -> unit
(** Blocking: point [filter] (and its mirror) at the NF with a base-
    priority rule, replacing any previous route set for the same filter,
    and wait for it to take effect. *)

val final_route_cookie : t -> Filter.t -> int
(** The stable cookie used for [filter]'s move-final rule. Memoized per
    filter, so repeated moves of the same flows replace one rule rather
    than accumulating one per move. *)

(** Rule priority conventions used by the move protocols. *)

val base_priority : int
val move_final_priority : int
val phase1_priority : int
val phase2_priority : int
