module Proc = Opennf_sim.Proc
open Opennf_net

(* --- flowspace partition -------------------------------------------------- *)

(* FNV-1a over the canonical (direction-independent) 5-tuple: both
   directions of a connection land on the same shard, the mapping is a
   pure function of the key (stable under any table growth), and any
   string-stable change to [Flow.to_string] would be caught by the
   partition-stability property tests. *)
let of_key ~shards key =
  if shards <= 1 then 0
  else
    let h = Opennf_util.Hashing.fnv1a64 (Flow.to_string (Flow.canonical key)) in
    Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))

let of_name ~shards name =
  if shards <= 1 then 0
  else
    let h = Opennf_util.Hashing.fnv1a64 name in
    Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))

let of_filter ~shards filter =
  Option.map (fun key -> of_key ~shards key) (Filter.exact_key filter)

(* --- the shard group ------------------------------------------------------- *)

type t = {
  ctrls : Controller.t array;
  scheds : Sched.t array;
  m_cross : Opennf_obs.Metrics.counter option;
      (** Cross-shard admissions; only registered when [shards > 1] so
          single-shard metric snapshots carry no new names. *)
  mutable cross_ops : int;
}

let make ctrls scheds =
  let n = Array.length ctrls in
  if n = 0 then invalid_arg "Shard.make: empty group";
  if Array.length scheds <> n then
    invalid_arg "Shard.make: one scheduler per controller required";
  Array.iteri
    (fun k c ->
      if Controller.shard_id c <> k || Controller.shard_count c <> n then
        invalid_arg "Shard.make: controllers out of order or wrong count")
    ctrls;
  let m_cross =
    if n <= 1 then None
    else
      Some
        (Opennf_obs.Metrics.counter
           (Opennf_obs.Hub.metrics (Controller.obs ctrls.(0)))
           "shard.cross_ops")
  in
  { ctrls; scheds; m_cross; cross_ops = 0 }

let count g = Array.length g.ctrls
let ctrl g k = g.ctrls.(k)
let sched g k = g.scheds.(k)
let home _g nf = Controller.nf_shard nf
let shard_of_key g key = of_key ~shards:(count g) key
let cross_shard_ops g = g.cross_ops

let messages_handled g =
  Array.fold_left (fun acc c -> acc + Controller.messages_handled c) 0 g.ctrls

(* The distinct home shards of an operation's instances, ascending. The
   ascending order is the lock order of the cross-shard handshake:
   every multi-shard admission acquires in it, so two cross-shard
   operations can never deadlock on each other's scheduler queues. *)
let shard_ids g nfs =
  List.sort_uniq Int.compare (List.map (home g) nfs)

(* --- parallel bridging ----------------------------------------------------

   In a parallel fabric each shard's scheduler lives on its own engine;
   submissions, acquisitions and releases aimed at another shard ride
   the {!Opennf_sim.Par} channels (zero virtual latency), so admission
   times match the serial single-engine run. [par g] is [None] in a
   serial fabric and every path below is the unchanged direct code. *)

let par g = Controller.par g.ctrls.(0)

(* [Some (par, src)] when called from inside shard [src]'s window of a
   parallel run and the target shard [s] is a different one. *)
let remote g s =
  match par g with
  | None -> None
  | Some p -> (
    match Opennf_sim.Par.self p with
    | Some src when src <> s -> Some (p, src)
    | _ -> None)

let note_cross g =
  let bump () =
    g.cross_ops <- g.cross_ops + 1;
    match g.m_cross with
    | Some c -> Opennf_obs.Metrics.incr c
    | None -> ()
  in
  (* The counter (and its metric, registered on shard 0's hub) is
     single-writer: shard 0's engine. *)
  match remote g 0 with
  | None -> bump ()
  | Some (p, _) -> Opennf_sim.Par.post p ~dst:0 bump

(* Blocking acquire on shard [s]'s scheduler from wherever the caller
   runs: direct when local, else a round trip that parks a proc on the
   owning engine and resumes the caller at the admission's virtual
   time. *)
let acquire_on g s ~footprint =
  match remote g s with
  | None -> Sched.acquire g.scheds.(s) ~footprint
  | Some (p, _) ->
    Opennf_sim.Par.call p ~dst:s (fun fill ->
        Opennf_sim.Proc.spawn
          (Controller.engine g.ctrls.(s))
          (fun () -> fill (Sched.acquire g.scheds.(s) ~footprint)))

let release_on g s h =
  match remote g s with
  | None -> Sched.release g.scheds.(s) h
  | Some (p, _) ->
    Opennf_sim.Par.post p ~dst:s (fun () -> Sched.release g.scheds.(s) h)

(* --- cross-shard admission ------------------------------------------------- *)

(* Admission of an operation whose footprint spans [nfs]' home shards.

   Single shard: exactly [Sched.submit] on that shard — the unsharded
   fast path, taken by everything when [count g = 1].

   Multiple shards: the two-shard handshake. A coordinator process
   acquires a hold for the same footprint on every involved scheduler in
   ascending shard-id order (deadlock-free), runs the body — which
   reuses the ordinary operation code; [Controller]'s home routing makes
   southbound calls land on the right shard — and releases in reverse
   order. Each shard's scheduler sees the footprint in its own queue, so
   per-shard operations conflict with the cross-shard one exactly as
   they would with a local one. *)
(* Ship a single-home submission to the owning engine and bridge the
   result ivar back to the caller's. The body runs in a proc on the
   home engine — exactly where its southbound calls are local. *)
let submit_remote g p ~src s ~footprint body =
  let result = Proc.Ivar.create (Controller.engine g.ctrls.(src)) in
  Opennf_sim.Par.post p ~dst:s (fun () ->
      let iv = Sched.submit g.scheds.(s) ~footprint body in
      Proc.spawn
        (Controller.engine g.ctrls.(s))
        (fun () ->
          let v = Proc.Ivar.read iv in
          Opennf_sim.Par.post p ~dst:src (fun () ->
              ignore (Proc.Ivar.fill_if_empty result v))));
  result

(* The multi-shard handshake of a parallel run. The coordinator proc
   lives on the leader — the home of the operation's first instance, so
   the body (whose southbound calls route to that leader) runs on its
   own engine — and acquires ascending through [acquire_on], which
   bridges the non-leader schedulers. *)
let submit_cross_par g p ~footprint ss nfs body =
  let lead = match nfs with [] -> List.hd ss | nf :: _ -> home g nf in
  let src = Opennf_sim.Par.self p in
  let caller_engine =
    match src with
    | Some s -> Controller.engine g.ctrls.(s)
    | None -> Controller.engine g.ctrls.(lead)
  in
  let ivar = Proc.Ivar.create caller_engine in
  let fill_back result =
    match src with
    | Some s when s <> lead ->
      Opennf_sim.Par.post p ~dst:s (fun () -> Proc.Ivar.fill ivar result)
    | _ -> Proc.Ivar.fill ivar result
  in
  let spawn_coordinator () =
    Proc.spawn
      (Controller.engine g.ctrls.(lead))
      (fun () ->
        let holds = List.map (fun s -> (s, acquire_on g s ~footprint)) ss in
        let result = body () in
        List.iter (fun (s, h) -> release_on g s h) (List.rev holds);
        fill_back result)
  in
  (match src with
  | Some s when s <> lead ->
    Opennf_sim.Par.post p ~dst:lead spawn_coordinator
  | _ -> spawn_coordinator ());
  ivar

let submit g ~footprint ~nfs body =
  match shard_ids g nfs with
  | [] -> Sched.submit g.scheds.(0) ~footprint body
  | [ s ] -> (
    match remote g s with
    | None -> Sched.submit g.scheds.(s) ~footprint body
    | Some (p, src) -> submit_remote g p ~src s ~footprint body)
  | ss -> (
    note_cross g;
    match par g with
    | Some p -> submit_cross_par g p ~footprint ss nfs body
    | None ->
      let engine = Controller.engine g.ctrls.(0) in
      let ivar = Proc.Ivar.create engine in
      Proc.spawn engine (fun () ->
          let holds =
            List.map
              (fun s -> (g.scheds.(s), Sched.acquire g.scheds.(s) ~footprint))
              ss
          in
          let result = body () in
          List.iter (fun (sch, h) -> Sched.release sch h) (List.rev holds);
          Proc.Ivar.fill ivar result);
      ivar)

let run g ~footprint ~nfs body = Proc.Ivar.read (submit g ~footprint ~nfs body)

(* Early release must reach every scheduler holding the footprint: the
   released-key list lives in the footprint itself (shared across the
   holds), so releasing through each involved scheduler just re-pumps
   the right queues. In a parallel run the footprint record is mutated
   exactly once — on the calling (owning) shard — and the other
   schedulers get a repump message: a footprint must never be written
   from two engines. *)
let release_flow g ~footprint ~nfs key =
  match par g with
  | None ->
    List.iter
      (fun s -> Sched.release_flow g.scheds.(s) ~footprint key)
      (shard_ids g nfs)
  | Some p ->
    Sched.Footprint.release footprint key;
    List.iter
      (fun s ->
        match remote g s with
        | None -> Sched.repump g.scheds.(s)
        | Some _ ->
          Opennf_sim.Par.post p ~dst:s (fun () -> Sched.repump g.scheds.(s)))
      (shard_ids g nfs)

(* --- long-lived multi-shard holds (Share) ---------------------------------- *)

type hold = { hg : t; hss : (int * Sched.handle) list }

let acquire g ~footprint ~nfs =
  let ss = shard_ids g nfs in
  (match ss with _ :: _ :: _ -> note_cross g | _ -> ());
  { hg = g; hss = List.map (fun s -> (s, acquire_on g s ~footprint)) ss }

let release_hold { hg; hss } =
  List.iter (fun (s, h) -> release_on hg s h) (List.rev hss)
