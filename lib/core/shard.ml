module Proc = Opennf_sim.Proc
open Opennf_net

(* --- flowspace partition -------------------------------------------------- *)

(* FNV-1a over the canonical (direction-independent) 5-tuple: both
   directions of a connection land on the same shard, the mapping is a
   pure function of the key (stable under any table growth), and any
   string-stable change to [Flow.to_string] would be caught by the
   partition-stability property tests. *)
let of_key ~shards key =
  if shards <= 1 then 0
  else
    let h = Opennf_util.Hashing.fnv1a64 (Flow.to_string (Flow.canonical key)) in
    Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))

let of_name ~shards name =
  if shards <= 1 then 0
  else
    let h = Opennf_util.Hashing.fnv1a64 name in
    Int64.to_int (Int64.rem (Int64.logand h Int64.max_int) (Int64.of_int shards))

let of_filter ~shards filter =
  Option.map (fun key -> of_key ~shards key) (Filter.exact_key filter)

(* --- the shard group ------------------------------------------------------- *)

type t = {
  ctrls : Controller.t array;
  scheds : Sched.t array;
  m_cross : Opennf_obs.Metrics.counter option;
      (** Cross-shard admissions; only registered when [shards > 1] so
          single-shard metric snapshots carry no new names. *)
  mutable cross_ops : int;
}

let make ctrls scheds =
  let n = Array.length ctrls in
  if n = 0 then invalid_arg "Shard.make: empty group";
  if Array.length scheds <> n then
    invalid_arg "Shard.make: one scheduler per controller required";
  Array.iteri
    (fun k c ->
      if Controller.shard_id c <> k || Controller.shard_count c <> n then
        invalid_arg "Shard.make: controllers out of order or wrong count")
    ctrls;
  let m_cross =
    if n <= 1 then None
    else
      Some
        (Opennf_obs.Metrics.counter
           (Opennf_obs.Hub.metrics (Controller.obs ctrls.(0)))
           "shard.cross_ops")
  in
  { ctrls; scheds; m_cross; cross_ops = 0 }

let count g = Array.length g.ctrls
let ctrl g k = g.ctrls.(k)
let sched g k = g.scheds.(k)
let home _g nf = Controller.nf_shard nf
let shard_of_key g key = of_key ~shards:(count g) key
let cross_shard_ops g = g.cross_ops

let messages_handled g =
  Array.fold_left (fun acc c -> acc + Controller.messages_handled c) 0 g.ctrls

(* The distinct home shards of an operation's instances, ascending. The
   ascending order is the lock order of the cross-shard handshake:
   every multi-shard admission acquires in it, so two cross-shard
   operations can never deadlock on each other's scheduler queues. *)
let shard_ids g nfs =
  List.sort_uniq Int.compare (List.map (home g) nfs)

let note_cross g =
  g.cross_ops <- g.cross_ops + 1;
  match g.m_cross with
  | Some c -> Opennf_obs.Metrics.incr c
  | None -> ()

(* --- cross-shard admission ------------------------------------------------- *)

(* Admission of an operation whose footprint spans [nfs]' home shards.

   Single shard: exactly [Sched.submit] on that shard — the unsharded
   fast path, taken by everything when [count g = 1].

   Multiple shards: the two-shard handshake. A coordinator process
   acquires a hold for the same footprint on every involved scheduler in
   ascending shard-id order (deadlock-free), runs the body — which
   reuses the ordinary operation code; [Controller]'s home routing makes
   southbound calls land on the right shard — and releases in reverse
   order. Each shard's scheduler sees the footprint in its own queue, so
   per-shard operations conflict with the cross-shard one exactly as
   they would with a local one. *)
let submit g ~footprint ~nfs body =
  match shard_ids g nfs with
  | [] -> Sched.submit g.scheds.(0) ~footprint body
  | [ s ] -> Sched.submit g.scheds.(s) ~footprint body
  | ss ->
    note_cross g;
    let engine = Controller.engine g.ctrls.(0) in
    let ivar = Proc.Ivar.create engine in
    Proc.spawn engine (fun () ->
        let holds =
          List.map (fun s -> (g.scheds.(s), Sched.acquire g.scheds.(s) ~footprint)) ss
        in
        let result = body () in
        List.iter (fun (sch, h) -> Sched.release sch h) (List.rev holds);
        Proc.Ivar.fill ivar result);
    ivar

let run g ~footprint ~nfs body = Proc.Ivar.read (submit g ~footprint ~nfs body)

(* Early release must reach every scheduler holding the footprint: the
   released-key list lives in the footprint itself (shared across the
   holds), so releasing through each involved scheduler just re-pumps
   the right queues. *)
let release_flow g ~footprint ~nfs key =
  List.iter
    (fun s -> Sched.release_flow g.scheds.(s) ~footprint key)
    (shard_ids g nfs)

(* --- long-lived multi-shard holds (Share) ---------------------------------- *)

type hold = (Sched.t * Sched.handle) list

let acquire g ~footprint ~nfs =
  let ss = shard_ids g nfs in
  (match ss with _ :: _ :: _ -> note_cross g | _ -> ());
  List.map (fun s -> (g.scheds.(s), Sched.acquire g.scheds.(s) ~footprint)) ss

let release_hold holds =
  List.iter (fun (sch, h) -> Sched.release sch h) (List.rev holds)
