(** Typed failures of northbound operations and southbound calls.

    Operations ([Move.run], [Copy_op.run], [Share.start], ...) and the
    controller's scope-indexed southbound API return
    [(_, Op_error.t) result] instead of wedging the simulation or
    raising [Invalid_argument]. *)

type t =
  | Nf_crashed of { nf : string }
      (** The liveness monitor declared the NF dead (K consecutive
          missed deadlines, or a probe failure). *)
  | Timeout of { nf : string; after : float }
      (** A call exhausted its deadline and retries, but the NF was not
          (yet) declared dead. *)
  | Aborted of { reason : string }
      (** The operation was abandoned mid-protocol and rolled back. *)
  | Bad_spec of { reason : string }
      (** The request was invalid before any message was sent. *)

exception Op_failed of t
(** Raised by the [*_exn] compatibility wrappers. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val kind : t -> string
(** Constant constructor label (["timeout"], ["nf_crashed"], ...) for
    metrics names and trace attributes; never allocates. *)

val ok_exn : ('a, t) result -> 'a
  [@@deprecated "match on the result instead"]
(** [Ok v -> v]; [Error e -> raise (Op_failed e)]. Kept for external
    users of the [*_exn] era; internal code matches on results. *)
