module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Protocol = Opennf_sb.Protocol
open Opennf_net
open Opennf_state

type consistency = Strong | Strict

let strict_priority = 400

type group = {
  flowid : Filter.t;
  queue : (Controller.nf * Packet.t) Queue.t;
  mutable busy : bool;
}

type t = {
  ctrl : Controller.t;
  instances : Controller.nf list;
  filter : Filter.t;
  scope : Scope.t list;
  group_of : Packet.t -> Filter.t;
  consistency : consistency;
  groups : (Filter.t, group) Hashtbl.t;
  completion : (int, unit Proc.Ivar.t) Hashtbl.t;
  mutable subs : Controller.subscription list;
  strict_cookie : int option;
  release_hold : unit -> unit;
      (** Gives back the scheduler footprint held for the share's
          lifetime: the share owns its instances' state continuously, so
          conflicting operations must wait until {!stop}. A no-op when
          the share was started without a scheduler; with a shard group,
          releases on every shard the instances live on. *)
  mutable updates_synced : int;
  mutable packets_serialized : int;
}

type stats = { updates_synced : int; packets_serialized : int }

(* Synchronization tolerates dead instances: a failed get skips the
   round (the next packet of the group retries), and a failed put to one
   replica must not stop propagation to the others. *)
let sync_group t nf =
  let others =
    List.filter
      (fun i -> Controller.nf_name i <> Controller.nf_name nf)
      t.instances
  in
  let push scope flowid =
    match Controller.get t.ctrl nf ~scope flowid with
    | Error _ -> ()
    | Ok chunks -> Op_engine.broadcast_put t.ctrl ~scope ~others chunks
  in
  fun group_flowid ->
    if Scope.mem Scope.Per t.scope then push Scope.Per group_flowid;
    if Scope.mem Scope.Multi t.scope then push Scope.Multi group_flowid;
    if Scope.mem Scope.All t.scope then begin
      match Controller.get t.ctrl nf ~scope:Scope.All Filter.any with
      | Error _ -> ()
      | Ok chunks ->
        if chunks <> [] then
          List.iter
            (fun other ->
              ignore (Controller.put t.ctrl other ~scope:Scope.All chunks))
            others
    end;
    t.updates_synced <- t.updates_synced + 1

let rec drain t group =
  match Queue.take_opt group.queue with
  | None -> group.busy <- false
  | Some (nf, pkt) ->
    pkt.Packet.do_not_drop <- true;
    let done_ivar = Proc.Ivar.create (Controller.engine t.ctrl) in
    Hashtbl.replace t.completion pkt.Packet.id done_ivar;
    t.packets_serialized <- t.packets_serialized + 1;
    Controller.packet_out t.ctrl ~port:(Controller.nf_name nf) pkt;
    (* A dead instance never signals completion; with a resilience
       policy, bound the wait so the group is not wedged forever. *)
    let completed =
      match Controller.resilience t.ctrl with
      | None ->
        Proc.Ivar.read done_ivar;
        true
      | Some r -> (
        match
          Proc.Ivar.read_timeout done_ivar
            ~timeout:(Controller.call_budget r)
        with
        | Some () -> true
        | None -> false)
    in
    Hashtbl.remove t.completion pkt.Packet.id;
    (* State reads/updates at the instance are complete; propagate. *)
    if completed then sync_group t nf group.flowid;
    drain t group

let enqueue t nf pkt =
  let flowid = t.group_of pkt in
  let group =
    match Hashtbl.find_opt t.groups flowid with
    | Some g -> g
    | None ->
      let g = { flowid; queue = Queue.create (); busy = false } in
      Hashtbl.add t.groups flowid g;
      g
  in
  Queue.push (nf, pkt) group.queue;
  if not group.busy then begin
    group.busy <- true;
    Proc.spawn (Controller.engine t.ctrl) (fun () -> drain t group)
  end

let on_event t nf (pkt : Packet.t) disposition =
  match disposition with
  | Protocol.Process -> (
    match Hashtbl.find_opt t.completion pkt.Packet.id with
    (* fill_if_empty: a duplicated event message must not double-fill. *)
    | Some ivar -> ignore (Proc.Ivar.fill_if_empty ivar ())
    | None ->
      (* Strict mode: packets reach instances only through our replays,
         so an unknown Process event is a packet from before the share
         was set up; ignore it. In strong mode the same holds. *)
      ())
  | Protocol.Drop -> enqueue t nf pkt
  | Protocol.Buffer -> ()

let initial_sync t =
  match t.instances with
  | [] | [ _ ] -> ()
  | first :: _ -> sync_group t first t.filter

(* A share writes state on every instance it keeps consistent; strict
   mode additionally diverts the filter's traffic through the switch. *)
let footprint ~instances ~filter ~consistency =
  Sched.Footprint.make ~filters:[ filter ]
    ~writes:(List.map Controller.nf_name instances)
    ~routes:(consistency = Strict) ()

let start ctrl ?sched ?shard_group ~instances ~filter
    ?(scope = [ Scope.Multi ]) ?group_of ?route ~consistency () =
  if instances = [] then Op_engine.bad_spec "Share.start: no instances"
  else begin
    let release_hold =
      match (shard_group, sched) with
      | Some g, _ ->
        let fp = footprint ~instances ~filter ~consistency in
        let h = Shard.acquire g ~footprint:fp ~nfs:instances in
        fun () -> Shard.release_hold h
      | None, Some s ->
        let fp = footprint ~instances ~filter ~consistency in
        let h = Sched.acquire s ~footprint:fp in
        fun () -> Sched.release s h
      | None, None -> fun () -> ()
    in
    let group_of =
      match group_of with
      | Some f -> f
      | None ->
        fun (p : Packet.t) -> Filter.of_src_host p.Packet.key.Flow.src_ip
    in
    let strict_cookie =
      match consistency with
      | Strong -> None
      | Strict -> Some (Controller.fresh_cookie ctrl)
    in
    let t =
      {
        ctrl;
        instances;
        filter;
        scope;
        group_of;
        consistency;
        groups = Hashtbl.create 16;
        completion = Hashtbl.create 64;
        subs = [];
        strict_cookie;
        release_hold;
        updates_synced = 0;
        packets_serialized = 0;
      }
    in
    (* Subscribe to events from every instance. *)
    t.subs <-
      List.map
        (fun nf ->
          Controller.subscribe_events ctrl ~nf:(Controller.nf_name nf) filter
            (on_event t nf))
        instances;
    (match consistency with
    | Strong ->
      List.iter
        (fun nf -> Controller.enable_events ctrl nf filter Protocol.Drop)
        instances
    | Strict ->
      List.iter
        (fun nf -> Controller.enable_events ctrl nf filter Protocol.Process)
        instances;
      (* Divert matching traffic to the controller so it observes the true
         arrival order. *)
      let route =
        match route with Some r -> r | None -> fun _ -> List.hd instances
      in
      let sub =
        Controller.subscribe_packet_in ctrl filter (fun p ->
            enqueue t (route p) p)
      in
      t.subs <- sub :: t.subs;
      let filters =
        if Filter.is_symmetric filter then [ filter ]
        else [ filter; Filter.mirror filter ]
      in
      Controller.install_rule ctrl
        ~cookie:(Option.get strict_cookie)
        ~priority:strict_priority ~filters ~actions:[ Flowtable.To_controller ];
      Controller.barrier ctrl);
    initial_sync t;
    Ok t
  end

let start_exn ctrl ?sched ?shard_group ~instances ~filter ?scope ?group_of
    ?route ~consistency () =
  match
    start ctrl ?sched ?shard_group ~instances ~filter ?scope ?group_of ?route
      ~consistency ()
  with
  | Ok t -> t
  | Error e -> raise (Op_error.Op_failed e)

let stats (t : t) : stats =
  {
    updates_synced = t.updates_synced;
    packets_serialized = t.packets_serialized;
  }

let idle t =
  Hashtbl.fold
    (fun _ g acc -> acc && (not g.busy) && Queue.is_empty g.queue)
    t.groups true

let stop t =
  (* Stop the sources of new work first, then drain what is in flight. *)
  (match t.strict_cookie with
  | Some cookie ->
    Controller.remove_rule t.ctrl ~cookie;
    Controller.barrier t.ctrl
  | None -> ());
  List.iter
    (fun nf -> Controller.disable_events t.ctrl nf t.filter)
    t.instances;
  (* Allow in-flight events to arrive, then wait for the queues to empty. *)
  Proc.sleep 0.01;
  let rec wait () =
    if not (idle t) then begin
      Proc.sleep 0.001;
      wait ()
    end
  in
  wait ();
  List.iter (Controller.unsubscribe t.ctrl) t.subs;
  t.subs <- [];
  t.release_hold ()
