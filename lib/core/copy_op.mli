(** The northbound [copy] operation (§5.2.1).

    Clones state from one instance to another without deleting it at the
    source or touching forwarding state. Imports merge per the NF's
    semantics, so repeatedly copying yields eventual consistency;
    deciding {e when} to re-copy is the application's job (see
    {!Notify}).

    A copy has nothing to roll back: on a typed error the destination
    may hold a partial import, which the next copy round completes. *)

open Opennf_net
open Opennf_state
module Proc = Opennf_sim.Proc

type report = {
  cp_filter : Filter.t;
  cp_src : string;
  cp_dst : string;
  cp_scope : Scope.t list;
  started : float;
  finished : float;
  chunks : int;
  state_bytes : int;
}

val duration : report -> float
val pp_report : Format.formatter -> report -> unit

val run :
  Controller.t ->
  src:Controller.nf ->
  dst:Controller.nf ->
  filter:Filter.t ->
  ?scope:Scope.t list ->
  ?options:Op_options.t ->
  ?parallel:bool ->
  unit ->
  (report, Op_error.t) result
(** Blocking. Defaults: scope [[Multi]] (the common case in §6),
    [parallel] true. [options] overrides [parallel] when given. *)

val run_exn :
  Controller.t ->
  src:Controller.nf ->
  dst:Controller.nf ->
  filter:Filter.t ->
  ?scope:Scope.t list ->
  ?options:Op_options.t ->
  ?parallel:bool ->
  unit ->
  report
  [@@deprecated "use Copy_op.run and match on the result"]

val start :
  Controller.t ->
  src:Controller.nf ->
  dst:Controller.nf ->
  filter:Filter.t ->
  ?scope:Scope.t list ->
  ?options:Op_options.t ->
  ?parallel:bool ->
  unit ->
  (report, Op_error.t) result Proc.Ivar.t

val start_exn :
  Controller.t ->
  src:Controller.nf ->
  dst:Controller.nf ->
  filter:Filter.t ->
  ?scope:Scope.t list ->
  ?options:Op_options.t ->
  ?parallel:bool ->
  unit ->
  report Proc.Ivar.t
  [@@deprecated "use Copy_op.start and match on the ivar's result"]
(** Like [start] but unwrapped; a typed error raises inside the spawned
    process, so use only where faults are impossible. *)

val footprint :
  src:Controller.nf -> dst:Controller.nf -> filter:Filter.t ->
  Sched.Footprint.t
(** What a copy touches: source read, destination written, no
    forwarding changes. *)

val submit :
  Sched.t ->
  src:Controller.nf ->
  dst:Controller.nf ->
  filter:Filter.t ->
  ?scope:Scope.t list ->
  ?options:Op_options.t ->
  ?parallel:bool ->
  unit ->
  (report, Op_error.t) result Proc.Ivar.t
(** Queue the copy on the scheduler; it runs once no conflicting
    operation is ahead of it. Two copies out of the same source may
    overlap (reads don't conflict); a copy conflicts with any move
    touching the same instances and flows. *)

val submit_sharded :
  Shard.t ->
  src:Controller.nf ->
  dst:Controller.nf ->
  filter:Filter.t ->
  ?scope:Scope.t list ->
  ?options:Op_options.t ->
  ?parallel:bool ->
  unit ->
  (report, Op_error.t) result Proc.Ivar.t
(** {!submit} routed through a shard group (see {!Move.submit_sharded}). *)
