(** The northbound [share] operation (§5.2.2).

    Keeps state for a set of flows consistent across several instances
    by serializing reads/updates through the controller:

    - {b Strong}: events (action [drop]) are enabled on every instance;
      each triggering packet is queued per flow-group, re-injected with
      "do-not-drop" to its originating instance, and — once the instance
      signals completion by raising the processed event — the updated
      state is fetched and pushed to all other instances before the next
      packet of that group is handled. Updates happen in a global order
      per group, but that order may differ from switch arrival order.
    - {b Strict}: forwarding entries for the filter are redirected to
      the controller, which therefore observes the exact switch arrival
      order and replays packets one at a time to the instance chosen by
      [route]; synchronization proceeds as for [Strong].

    Flow grouping defaults to the source host, the paper's running
    example (per-host connection counters). Stop a share with {!stop}.

    A share degrades rather than wedges when an instance dies: waits for
    completion events are bounded by the controller's resilience policy,
    failed gets skip the sync round, and failed puts to one replica do
    not stop propagation to the others. *)

open Opennf_net
open Opennf_state
module Proc = Opennf_sim.Proc

type consistency = Strong | Strict

type t
(** A live share. *)

type stats = {
  updates_synced : int;  (** get+put rounds completed. *)
  packets_serialized : int;
}

val footprint :
  instances:Controller.nf list ->
  filter:Filter.t ->
  consistency:consistency ->
  Sched.Footprint.t
(** What a share holds for its lifetime: every instance written, the
    filter's flows covered; strict mode also owns forwarding state. *)

val start :
  Controller.t ->
  ?sched:Sched.t ->
  ?shard_group:Shard.t ->
  instances:Controller.nf list ->
  filter:Filter.t ->
  ?scope:Scope.t list ->
  ?group_of:(Packet.t -> Filter.t) ->
  ?route:(Packet.t -> Controller.nf) ->
  consistency:consistency ->
  unit ->
  (t, Op_error.t) result
(** Blocking (performs the initial state synchronization). [route] is
    required for [Strict] (defaults to the first instance). [scope]
    defaults to [[Multi]]. An empty instance list is
    [Error (Bad_spec _)]. With [sched], the share's {!footprint} is
    acquired before any setup and held until {!stop}, so conflicting
    operations queue behind it. [shard_group] does the same across a
    sharded control plane — the footprint is held on every shard the
    instances live on (ascending shard-id order) — and takes precedence
    over [sched]. *)

val start_exn :
  Controller.t ->
  ?sched:Sched.t ->
  ?shard_group:Shard.t ->
  instances:Controller.nf list ->
  filter:Filter.t ->
  ?scope:Scope.t list ->
  ?group_of:(Packet.t -> Filter.t) ->
  ?route:(Packet.t -> Controller.nf) ->
  consistency:consistency ->
  unit ->
  t
  [@@deprecated "use Share.start and match on the result"]

val stats : t -> stats

val stop : t -> unit
(** Blocking: disable events, drop subscriptions and (for strict) stop
    diverting packets to the controller. Queued packets are flushed
    first. *)
