(** Testbed wiring: one switch, one controller, N NF instances.

    Mirrors the paper's evaluation setup (§8): an OpenFlow switch whose
    ports feed NF instances, an OpenNF controller connected to both, and
    traffic injected at the switch. Every experiment, test and example
    builds on this module.

    Every fabric owns a {!Opennf_sim.Faults.t} handle, consulted by all
    control channels, NF runtimes and switch ports it wires up. With no
    fault profiles registered it draws no randomness and schedules no
    events, so fault-free runs are bit-identical to a fabric without
    it. Pass [resilience] to also arm the controller's deadline/retry/
    liveness machinery. *)

open Opennf_net
module Engine = Opennf_sim.Engine

type t = {
  engine : Engine.t;
  audit : Audit.t;
  switch : Switch.t;
  ctrl : Controller.t;
      (** Shard 0's controller — {e the} controller of an unsharded
          fabric. *)
  sched : Sched.t;
      (** Ready-made operation scheduler over [ctrl]; idle (and free)
          until something is submitted to it. *)
  group : Shard.t;
      (** The full shard group (a single-member group when [shards]
          is 1). Shard-aware submission ({!Move.submit_sharded}) goes
          through this. *)
  faults : Opennf_sim.Faults.t;
  link_latency : float;
  par : Opennf_sim.Par.t option;
      (** The parallel-run handle when the fabric was created with
          [~par:true] (round/delivery counts live on it); [None] in a
          serial fabric. *)
  engines : Engine.t array;
      (** Per-shard engines. In a serial fabric every entry aliases
          [engine]; in a parallel fabric entry [k] is shard [k]'s own
          engine. *)
  audits : Audit.t array;  (** Per-shard audits (see {!merged_audit}). *)
  switches : Switch.t array;  (** Per-shard switch replicas. *)
  shard_faults : Opennf_sim.Faults.t array;
  ports : (string, int * Opennf_net.Packet.t Channel.t) Hashtbl.t;
      (** NF port registry: name to (home shard, switch-side channel).
          The parallel port proxy routes cross-replica forwards with
          it. *)
  monitors : Opennf_obs.Monitor.t array;
      (** Live §5.1 guarantee checkers ({!Opennf_obs.Monitor}), one per
          audit stream, when the fabric was created with [~monitor:true];
          [[||]] otherwise. Online findings (order/duplicate) surface on
          them during the run; use {!verdict} for the full end-of-run
          check. *)
}

val create :
  ?seed:int ->
  ?obs:Opennf_obs.Hub.t ->
  ?shard_obs:(int -> Opennf_obs.Hub.t) ->
  ?config:Controller.config ->
  ?flow_mod_delay:float ->
  ?packet_out_rate:float ->
  ?link_latency:float ->
  ?fault_seed:int ->
  ?resilience:Controller.resilience ->
  ?max_concurrent_ops:int ->
  ?shards:int ->
  ?par:bool ->
  ?monitor:bool ->
  unit ->
  t
(** Defaults: [link_latency] 200 µs, switch defaults per {!Switch}, no
    resilience policy (legacy blocking behavior), [max_concurrent_ops]
    per {!Sched.create}. [obs] (default disabled) is handed to the
    engine and from there reaches every component the fabric wires up:
    op spans, scheduler queues, southbound taps, channel counters, the
    flow table and the audit ledger all record through it.

    [shards] (default: the [OPENNF_SHARDS] environment variable, else 1)
    partitions the control plane: [shards] controller instances share
    the one switch (one OpenFlow connection each), packet-ins are routed
    to the shard owning the packet's flow ({!Shard.of_key}), and each
    shard has its own scheduler. By default all shards run in the same
    engine, so the fabric stays one deterministic virtual-time
    simulation. With [shards = 1] every event is bit-identical to
    earlier fabrics.

    [par] (default: the [OPENNF_PAR] environment variable, else false;
    only meaningful with [shards > 1]) runs each shard on its own
    engine, on its own domain, connected by the deterministic
    cross-engine channels of {!Opennf_sim.Par}: one switch replica,
    audit ledger and faults handle per shard, stitched back into one
    logical fabric. Results are independent of how many domains
    actually run the shards; semantic digests and virtual-time trace
    content match the serial run of the same scenario (same-timestamp
    micro-ordering may differ — compare with {!merged_audit} and
    {!Opennf_obs.Export.canonical}). Random link faults draw from
    per-shard RNG streams in parallel mode, so serial-vs-parallel
    equivalence holds for deterministic fault plans ([crash_at]), not
    random drop profiles. A single [obs] hub cannot span engines: pass
    [shard_obs] (one hub per shard index) to trace a parallel run.

    [monitor] (default: the [OPENNF_MONITOR] environment variable, else
    false) attaches one {!Opennf_obs.Monitor} per audit stream — a pure
    observer, so monitored runs keep virtual-time results byte-identical
    to unmonitored ones. *)

val shards : t -> int

val parallel : t -> bool
(** Whether this fabric runs one engine per shard ([par]). *)

val merged_audit : t -> Audit.t
(** The fabric's audit ledger for queries: the single ledger of a
    serial fabric, or the deterministic merge of the per-shard ledgers
    ({!Audit.merged}) of a parallel one. *)

val monitored : t -> bool
(** Whether live guarantee monitors are attached ([~monitor:true]). *)

val verdict :
  ?history:int -> t -> Opennf_obs.Monitor.finding list
(** End-of-run guarantee check: replays the (shard-tagged) audit
    streams through {!Opennf_obs.Monitor.merged_verdict}, so the result
    is deterministic regardless of shard count or parallelism — and
    available on {e any} fabric, monitored or not (the audit ledger is
    always on). Call after {!run} returns. *)

val live_findings : t -> Opennf_obs.Monitor.finding list
(** Online findings (order/duplicate violations) streamed by the live
    monitors so far; [[]] when {!monitored} is false. Per-shard
    detection order — use {!verdict} for the canonical list. *)

val ctrl_of : t -> int -> Controller.t
val sched_of : t -> int -> Sched.t

val nf_sched : t -> Controller.nf -> Sched.t
(** The scheduler of the NF's home shard. *)

val add_nf :
  ?backend:Opennf_state.Backend.t ->
  ?shard:int ->
  t ->
  name:string ->
  impl:Opennf_sb.Nf_api.impl ->
  costs:Opennf_sb.Costs.t ->
  Controller.nf * Opennf_sb.Runtime.t
(** Creates the NF runtime, connects it to a switch port named [name]
    and to the controller. [backend] declares where this instance's
    state lives (see {!Opennf_state.Backend}): it is wired into the
    runtime's packet path and registered with the controller, enabling
    the shared-store and replicated fast paths of {!Controller.state_path}.
    [shard] picks the home shard (default {!Shard.of_name} of [name];
    always 0 in a 1-shard fabric). *)

val inject : t -> Packet.t -> unit
(** Deliver a packet to the switch now. *)

val inject_at : t -> float -> Packet.t -> unit
(** Deliver a packet to the switch at an absolute virtual time. *)

val run : ?until:float -> ?workers:int -> t -> unit
(** Run the simulation: [Engine.run] on a serial fabric, the parallel
    coordinator ({!Opennf_sim.Par.run}) on a parallel one. [workers]
    caps the domains a parallel run uses (default: the machine's usable
    cores, never more than there are shards; ignored on a serial
    fabric); [until] is not supported in parallel mode. *)

val run_proc : ?workers:int -> t -> (unit -> unit) -> unit
(** Spawn a simulation process (for calling blocking northbound
    operations) on shard 0's engine and run until quiescent. *)
