(** Testbed wiring: one switch, one controller, N NF instances.

    Mirrors the paper's evaluation setup (§8): an OpenFlow switch whose
    ports feed NF instances, an OpenNF controller connected to both, and
    traffic injected at the switch. Every experiment, test and example
    builds on this module.

    Every fabric owns a {!Opennf_sim.Faults.t} handle, consulted by all
    control channels, NF runtimes and switch ports it wires up. With no
    fault profiles registered it draws no randomness and schedules no
    events, so fault-free runs are bit-identical to a fabric without
    it. Pass [resilience] to also arm the controller's deadline/retry/
    liveness machinery. *)

open Opennf_net
module Engine = Opennf_sim.Engine

type t = {
  engine : Engine.t;
  audit : Audit.t;
  switch : Switch.t;
  ctrl : Controller.t;
  sched : Sched.t;
      (** Ready-made operation scheduler over [ctrl]; idle (and free)
          until something is submitted to it. *)
  faults : Opennf_sim.Faults.t;
  link_latency : float;
}

val create :
  ?seed:int ->
  ?obs:Opennf_obs.Hub.t ->
  ?config:Controller.config ->
  ?flow_mod_delay:float ->
  ?packet_out_rate:float ->
  ?link_latency:float ->
  ?fault_seed:int ->
  ?resilience:Controller.resilience ->
  ?max_concurrent_ops:int ->
  unit ->
  t
(** Defaults: [link_latency] 200 µs, switch defaults per {!Switch}, no
    resilience policy (legacy blocking behavior), [max_concurrent_ops]
    per {!Sched.create}. [obs] (default disabled) is handed to the
    engine and from there reaches every component the fabric wires up:
    op spans, scheduler queues, southbound taps, channel counters, the
    flow table and the audit ledger all record through it. *)

val add_nf :
  ?backend:Opennf_state.Backend.t ->
  t ->
  name:string ->
  impl:Opennf_sb.Nf_api.impl ->
  costs:Opennf_sb.Costs.t ->
  Controller.nf * Opennf_sb.Runtime.t
(** Creates the NF runtime, connects it to a switch port named [name]
    and to the controller. [backend] declares where this instance's
    state lives (see {!Opennf_state.Backend}): it is wired into the
    runtime's packet path and registered with the controller, enabling
    the shared-store and replicated fast paths of {!Controller.state_path}. *)

val inject : t -> Packet.t -> unit
(** Deliver a packet to the switch now. *)

val inject_at : t -> float -> Packet.t -> unit
(** Deliver a packet to the switch at an absolute virtual time. *)

val run : ?until:float -> t -> unit
(** Run the simulation ([Engine.run]). *)

val run_proc : t -> (unit -> unit) -> unit
(** Spawn a simulation process (for calling blocking northbound
    operations) and run the engine until quiescent. *)
