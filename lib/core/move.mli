(** The northbound [move] operation (§5.1).

    Transfers both the state and the input (traffic) for a set of flows
    from one NF instance to another:

    - {b No_guarantee}: get → del → put → reroute. Packets reaching the
      source mid-move are dropped (§5.1, Figure 11(a)).
    - {b Loss_free}: events are enabled (action [drop]) on the source
      before the state transfer, buffered at the controller, and flushed
      to the destination after the put completes; then the route is
      updated (§5.1.1).
    - {b Order_preserving} (implies loss-free): additionally buffers at
      the destination and performs the two-phase forwarding update of
      Figure 6, so processing order equals the switch's forwarding
      order. Where the paper waits for the first packet-in before
      installing the second phase, this implementation uses switch
      barriers (footnote 8's consistency mechanisms) and then waits for
      the destination to have processed the last packet the switch sent
      toward the source — a strengthening that is provably race-free on
      FIFO channels and never blocks on idle flows.

    Optimizations (§5.1.3, {!Op_options.t}): [parallel] streams chunks
    from the get and pipelines one put per chunk; [early_release] adds
    late locking (the source starts raising events for a flow only when
    that flow's chunk is captured) and per-flow release of buffered
    events as soon as that flow's put is acknowledged. [early_release]
    implies [parallel] and, per the paper, must not be combined with a
    move of both per-flow and multi-flow scopes.

    {2 Failure handling}

    [run] returns [(report, Op_error.t) result]. A malformed spec is
    [Error (Bad_spec _)] before any message is sent. If an instance dies
    or a call times out mid-protocol (under the controller's resilience
    policy), the move {e rolls back}: every chunk the controller still
    holds is re-installed on the surviving instance, buffered packets
    are flushed to it, half-installed phase rules are removed, and the
    base route is pointed at the survivor — no flow is left blackholed.
    The error is then reported as [Nf_crashed] or [Timeout]. *)

open Opennf_net
open Opennf_state
module Proc = Opennf_sim.Proc

type guarantee = No_guarantee | Loss_free | Order_preserving

val pp_guarantee : Format.formatter -> guarantee -> unit

(** Observable protocol milestones, in order. [on_phase] hooks fire
    synchronously as each is reached — fault-injection tests use them to
    crash an instance at an exact protocol point. *)
type phase =
  | Transfer_started  (** Events armed; no state captured yet. *)
  | State_captured  (** Per-flow get finished; controller holds chunks. *)
  | State_deleted  (** Per-flow state deleted at the source. *)
  | State_installed  (** Per-flow state acked by the destination. *)
  | Phase1_installed  (** Two-phase update: src + controller rule live. *)
  | Phase2_installed  (** Two-phase update: dst rule live. *)

(** Deliberately broken-protocol knobs for exercising the runtime
    monitor ({!Opennf_obs.Monitor}): each reproduces a classic buggy
    controller. {b Test fixtures only} — never set in production specs. *)
type break_for_test =
  | Skip_order_wait
      (** Order-preserving handoff releases the destination's buffer
          without waiting for the last source-bound packet — the race
          the §5.1.2 two-phase wait exists to close. *)
  | Drop_buffered
      (** The flush at the end of a loss-free move silently discards
          the first buffered packet instead of relaying it. *)

type spec = {
  src : Controller.nf;
  dst : Controller.nf;
  filter : Filter.t;
  scope : Scope.t list;
      (** [Per], [Multi] and/or [All]. All-flows state has no delete
          (§4.2), so including [All] copies it under the move's event
          protection — giving the destination a snapshot consistent with
          exactly the packets the source processed. *)
  guarantee : guarantee;
  options : Op_options.t;
  disable_grace : float;
      (** Loss-free moves leave the source's drop-events enabled so
          in-flight stragglers keep being relayed; they are disabled
          this long after the move completes (the paper's "after
          several minutes", §5.1.1; default 0.5 s of virtual time). *)
  on_phase : (phase -> unit) option;
  break_for_test : break_for_test option;  (** Seeded-violation fixtures. *)
}

val spec :
  src:Controller.nf ->
  dst:Controller.nf ->
  filter:Filter.t ->
  ?scope:Scope.t list ->
  ?guarantee:guarantee ->
  ?options:Op_options.t ->
  ?parallel:bool ->
  ?early_release:bool ->
  ?compress:bool ->
  ?disable_grace:float ->
  ?on_phase:(phase -> unit) ->
  ?break_for_test:break_for_test ->
  unit ->
  spec
(** Defaults: scope [[Per]], [Loss_free], optimizations off. [options]
    overrides the individual optimization flags when given. Specs are
    not validated here — an impossible combination surfaces as
    [Error (Bad_spec _)] from {!run}. *)

type report = {
  rp_filter : Filter.t;
  rp_src : string;
  rp_dst : string;
  rp_guarantee : guarantee;
  started : float;
  finished : float;
  per_chunks : int;
  multi_chunks : int;
  state_bytes : int;  (** Serialized state transferred. *)
  relayed : int;  (** Packets carried through controller events. *)
}

val duration : report -> float
val pp_report : Format.formatter -> report -> unit

val run :
  ?notify_release:(Filter.t -> unit) ->
  Controller.t -> spec -> (report, Op_error.t) result
(** Blocking; call from a simulation process. [notify_release] fires per
    flow as its put is acknowledged under [early_release] (used by
    {!submit} to shrink the scheduler footprint); plain callers omit
    it. *)

val run_exn : Controller.t -> spec -> report
  [@@deprecated "use Move.run and match on the result"]
(** [run] unwrapped ([Op_error.Op_failed] on error); for fault-free
    scenarios. Kept for external users; internal code uses {!run}. *)

val start : Controller.t -> spec -> (report, Op_error.t) result Proc.Ivar.t
(** Spawn the move and return an ivar filled with its result. *)

val start_exn : Controller.t -> spec -> report Proc.Ivar.t
  [@@deprecated "use Move.start and match on the ivar's result"]
(** Like [start] but unwrapped; a typed error raises inside the spawned
    process, so use only where faults are impossible. *)

val footprint : spec -> Sched.Footprint.t
(** What the move touches: both instances written, the filter's flows
    covered, forwarding state updated. *)

val submit : Sched.t -> spec -> (report, Op_error.t) result Proc.Ivar.t
(** Queue the move on the scheduler; it runs once no conflicting
    operation is ahead of it. Under [early_release], flows leave the
    held footprint as their chunks land. *)

val submit_sharded : Shard.t -> spec -> (report, Op_error.t) result Proc.Ivar.t
(** {!submit} routed through a shard group: a move within one shard goes
    to that shard's scheduler; a cross-shard move is admitted by the
    two-shard handshake and led by the source's home shard. Early
    release reaches every involved scheduler. With a 1-shard group this
    is exactly [submit]. *)
