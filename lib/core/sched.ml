module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net

module Footprint = struct
  type t = {
    filters : Filter.t list;
    reads : string list;
    writes : string list;
    routes : bool;
    mutable released : Flow.key list;
  }

  let make ?(filters = []) ?(reads = []) ?(writes = []) ?(routes = false) () =
    { filters; reads; writes; routes; released = [] }

  let names_intersect a b = List.exists (fun x -> List.mem x b) a

  (* Do the two footprints touch a common resource in a way where order
     matters? Read/read never conflicts; everything else does. *)
  let resources_clash a b =
    (a.routes && b.routes)
    || names_intersect a.writes b.writes
    || names_intersect a.writes b.reads
    || names_intersect a.reads b.writes

  (* A candidate filter pinned to a flow the holder has already released
     (early release: its chunk landed at the destination) is exempt —
     that flow's state is no longer covered by the holder. *)
  let filters_clash ~held ~cand =
    List.exists
      (fun cf ->
        let exempt =
          match Filter.exact_key cf with
          | Some k -> List.exists (Flow.equal (Flow.canonical k)) held.released
          | None -> false
        in
        (not exempt)
        && List.exists (fun hf -> Filter.overlaps hf cf) held.filters)
      cand.filters

  (* Conflict = shared resource with a write (or competing route
     updates) AND overlapping flow coverage: two moves between the same
     pair of instances are fine as long as their filters are disjoint. *)
  let conflicts ~held ~cand =
    resources_clash held cand && filters_clash ~held ~cand

  let release held key = held.released <- Flow.canonical key :: held.released
end

type entry = {
  id : int;
  footprint : Footprint.t;
  start : unit -> unit;
  enq_vt : float;  (** Virtual time this entry joined the queue. *)
  span : int;  (** Open "sched" trace span; 0 when not tracing. *)
}

type t = {
  engine : Engine.t;
  ctrl : Controller.t;
  max_concurrent : int;
  mutable active : entry list;  (** Admission order. *)
  mutable waiting : entry list;  (** FIFO, oldest first. *)
  mutable next_id : int;
  mutable admitted : int;
  mutable completed : int;
  mutable peak_active : int;
  mutable peak_waiting : int;
  trace : Opennf_obs.Trace.t;
  m_submitted : Opennf_obs.Metrics.counter;
  m_admitted : Opennf_obs.Metrics.counter;
  g_depth : Opennf_obs.Metrics.gauge;
  h_wait : Opennf_obs.Metrics.hist;
}

type stats = {
  admitted : int;
  completed : int;
  peak_active : int;
  peak_waiting : int;
}

let create ?(max_concurrent = 8) ctrl =
  if max_concurrent < 1 then
    invalid_arg "Sched.create: max_concurrent must be at least 1";
  let obs = Controller.obs ctrl in
  let metrics = Opennf_obs.Hub.metrics obs in
  let sfx = Controller.metric_suffix ctrl in
  {
    engine = Controller.engine ctrl;
    ctrl;
    max_concurrent;
    active = [];
    waiting = [];
    next_id = 0;
    admitted = 0;
    completed = 0;
    peak_active = 0;
    peak_waiting = 0;
    trace = Opennf_obs.Hub.trace obs;
    m_submitted = Opennf_obs.Metrics.counter metrics ("sched.submitted" ^ sfx);
    m_admitted = Opennf_obs.Metrics.counter metrics ("sched.admitted" ^ sfx);
    g_depth = Opennf_obs.Metrics.gauge metrics ("sched.queue_depth" ^ sfx);
    h_wait = Opennf_obs.Metrics.hist metrics ("sched.wait_s" ^ sfx);
  }

let ctrl t = t.ctrl
let active_count t = List.length t.active
let waiting_count t = List.length t.waiting

let stats (t : t) : stats =
  {
    admitted = t.admitted;
    completed = t.completed;
    peak_active = t.peak_active;
    peak_waiting = t.peak_waiting;
  }

let blocked_by fp others =
  List.exists (fun e -> Footprint.conflicts ~held:e.footprint ~cand:fp) others

(* Admission scan, oldest waiter first. An entry is admitted when the
   cap has room and it conflicts with no active operation AND no waiter
   ahead of it in line — the latter keeps admission FIFO per conflict
   class (a newcomer cannot jump a queue it conflicts with) while
   letting it overtake unrelated queues. Entry ids grow monotonically
   and the scan order is fixed, so admission is deterministic. *)
let pump t =
  let rec scan blocked = function
    | [] -> List.rev blocked
    | e :: rest ->
      if List.length t.active >= t.max_concurrent then
        List.rev_append blocked (e :: rest)
      else if
        blocked_by e.footprint t.active || blocked_by e.footprint blocked
      then scan (e :: blocked) rest
      else begin
        t.active <- t.active @ [ e ];
        t.admitted <- t.admitted + 1;
        t.peak_active <- max t.peak_active (List.length t.active);
        Opennf_obs.Metrics.incr t.m_admitted;
        Opennf_obs.Metrics.observe t.h_wait (Engine.now t.engine -. e.enq_vt);
        if e.span <> 0 then
          Opennf_obs.Trace.instant t.trace ~parent:e.span ~cat:"sched"
            ~name:"admit" ();
        e.start ();
        scan blocked rest
      end
  in
  t.waiting <- scan [] t.waiting;
  Opennf_obs.Metrics.set t.g_depth (float_of_int (List.length t.waiting))

let enqueue t entry =
  t.waiting <- t.waiting @ [ entry ];
  t.peak_waiting <- max t.peak_waiting (List.length t.waiting);
  Opennf_obs.Metrics.incr t.m_submitted;
  pump t

let retire t id =
  (match List.find_opt (fun e -> e.id = id) t.active with
  | Some e when e.span <> 0 -> Opennf_obs.Trace.span_close t.trace e.span ()
  | Some _ | None -> ());
  t.active <- List.filter (fun e -> e.id <> id) t.active;
  t.completed <- t.completed + 1;
  pump t

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

(* The span's conflict-class attribute names what the entry can collide
   on: flow filters, instance reads/writes, and route updates. Built
   only when tracing. *)
let conflict_label (fp : Footprint.t) =
  let parts =
    List.map Filter.to_string fp.Footprint.filters
    @ List.map (fun w -> "w:" ^ w) fp.Footprint.writes
    @ List.map (fun r -> "r:" ^ r) fp.Footprint.reads
  in
  String.concat " " (if fp.Footprint.routes then parts @ [ "routes" ] else parts)

let open_span t ~name footprint =
  if Opennf_obs.Trace.enabled t.trace then begin
    let cls = ("class", Opennf_obs.Trace.Str (conflict_label footprint)) in
    let attrs =
      if Controller.shard_count t.ctrl > 1 then
        [|
          cls;
          ("shard", Opennf_obs.Trace.Int (Controller.shard_id t.ctrl));
        |]
      else [| cls |]
    in
    Opennf_obs.Trace.span_open t.trace ~cat:"sched" ~name ~attrs ()
  end
  else 0

let submit t ~footprint body =
  let id = fresh_id t in
  let span = open_span t ~name:"op" footprint in
  let ivar = Proc.Ivar.create t.engine in
  let start () =
    Proc.spawn t.engine (fun () ->
        (* Hand the entry's span to the op the body is about to start:
           Op_engine.start consumes it before the body's first blocking
           point, so the op span nests under this scheduler span and
           critical-path analysis can attribute the queue wait. *)
        if span <> 0 then Controller.set_op_parent t.ctrl span;
        let result = body () in
        (* Retire (and pump the queue) before resolving the ivar, so
           waiters in line get the slot ahead of whatever the submitter
           does next. *)
        retire t id;
        Proc.Ivar.fill ivar result)
  in
  enqueue t { id; footprint; start; enq_vt = Engine.now t.engine; span };
  ivar

let run t ~footprint body = Proc.Ivar.read (submit t ~footprint body)

let release_flow t ~footprint key =
  Footprint.release footprint key;
  pump t

(* Re-scan after an external footprint change. The parallel sharded
   fabric mutates a cross-shard footprint exactly once (on the shard
   that owns the operation) and sends the other involved schedulers a
   repump instead of a second mutation — the footprint record must
   never be written from two engines. *)
let repump t = pump t

(* --- long-lived holds (Share, Notify-style setups) ------------------------ *)

type handle = {
  h_id : int;
  h_footprint : Footprint.t;
  mutable h_held : bool;
}

let acquire t ~footprint =
  let id = fresh_id t in
  let span = open_span t ~name:"hold" footprint in
  let admitted = Proc.Ivar.create t.engine in
  let start () = Proc.Ivar.fill admitted () in
  enqueue t { id; footprint; start; enq_vt = Engine.now t.engine; span };
  Proc.Ivar.read admitted;
  { h_id = id; h_footprint = footprint; h_held = true }

let release t h =
  if h.h_held then begin
    h.h_held <- false;
    retire t h.h_id
  end

let release_key t h key =
  if h.h_held then release_flow t ~footprint:h.h_footprint key
