module Engine = Opennf_sim.Engine
module Trace = Opennf_obs.Trace

type record = { pkt : int; key : Flow.key; nf : string; time : float }

(* The ledger is a view over the span tracer: every audit record is a
   trace instant under cat ["audit"], so when the simulation runs with
   tracing enabled the packet ledger and the op/sched/southbound spans
   land interleaved in one deterministic buffer (and one Chrome export).
   When the hub is not tracing, the audit keeps a private always-on
   tracer so its queries — the ground truth for the safety tests — keep
   working unchanged. Index hashtables (first-times, arrival dedup) are
   maintained at log time exactly as before. *)
type t = {
  engine : Engine.t;
  trace : Trace.t;
  arrived : (int, unit) Hashtbl.t;
  first_forward : (int, float) Hashtbl.t;
  first_arrival : (int, float) Hashtbl.t;
  first_process : (int, float) Hashtbl.t;
}

let create engine =
  let obs = Engine.obs engine in
  let trace =
    if Opennf_obs.Hub.tracing obs then Opennf_obs.Hub.trace obs
    else begin
      let tr = Trace.create () in
      Trace.set_clock tr (fun () -> Engine.now engine);
      tr
    end
  in
  {
    engine;
    trace;
    arrived = Hashtbl.create 1024;
    first_forward = Hashtbl.create 1024;
    first_arrival = Hashtbl.create 1024;
    first_process = Hashtbl.create 1024;
  }

let trace t = t.trace

(* Standard IP protocol numbers, so traces read like packet captures. *)
let proto_code = function Flow.Tcp -> 6 | Flow.Udp -> 17 | Flow.Icmp -> 1
let proto_of_code = function 17 -> Flow.Udp | 1 -> Flow.Icmp | _ -> Flow.Tcp

(* Attribute layout is positional: decode indexes straight in. *)
let log t name (p : Packet.t) nf =
  let k = p.Packet.key in
  Trace.instant t.trace ~cat:"audit" ~name
    ~attrs:
      [|
        ("pkt", Trace.Int p.Packet.id);
        ("nf", Trace.Str nf);
        ("src", Trace.Int (Ipaddr.to_int k.Flow.src_ip));
        ("dst", Trace.Int (Ipaddr.to_int k.Flow.dst_ip));
        ("proto", Trace.Int (proto_code k.Flow.proto));
        ("sport", Trace.Int k.Flow.src_port);
        ("dport", Trace.Int k.Flow.dst_port);
      |]
    ()

let decode (ev : Trace.ev) =
  let a = ev.Trace.attrs in
  let int i = match snd a.(i) with Trace.Int v -> v | _ -> 0 in
  let str i = match snd a.(i) with Trace.Str s -> s | _ -> "" in
  {
    pkt = int 0;
    nf = str 1;
    key =
      Flow.make
        ~src:(Ipaddr.of_int (int 2))
        ~dst:(Ipaddr.of_int (int 3))
        ~proto:(proto_of_code (int 4))
        ~sport:(int 5) ~dport:(int 6) ();
    time = ev.Trace.vt;
  }

(* Live subscription: ride the tracer's sink instead of folding the
   buffer after the fact. The tap fires synchronously per audit instant,
   in emission order, decoding on the fly; non-audit events sharing the
   hub trace are filtered out. Decoding allocates, so this is strictly
   an opt-in path — an audit without subscribers records exactly as
   before. *)
let on_record t f =
  Trace.on_event t.trace (fun ev ->
      if ev.Trace.kind = Trace.Instant && ev.Trace.cat = "audit" then
        f ev.Trace.name (decode ev))

(* Chronological records of one audit event kind: the trace buffer is
   already in emission order, so a single forward scan suffices. *)
let records t wanted =
  List.rev
    (Trace.fold t.trace
       (fun acc ev ->
         if
           ev.Trace.kind = Trace.Instant
           && ev.Trace.cat = "audit"
           && ev.Trace.name = wanted
         then decode ev :: acc
         else acc)
       [])

let remember tbl id time =
  if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id time

(* Read-only union of several shard audits (parallel shard execution
   keeps one audit per shard engine). Records merge in (virtual time,
   shard index, buffer position) order — a pure function of the
   per-shard buffers, so the merged ledger is as deterministic as its
   parts. Per-key relative order matches a serial run's: one flow's
   packets all live on one shard, so their relative order is that
   shard's buffer order. The result is a snapshot for queries; nothing
   should log to it. *)
let merged engine sources =
  let cursor = ref 0.0 in
  let tr = Trace.create () in
  Trace.set_clock tr (fun () -> !cursor);
  let t =
    {
      engine;
      trace = tr;
      arrived = Hashtbl.create 1024;
      first_forward = Hashtbl.create 1024;
      first_arrival = Hashtbl.create 1024;
      first_process = Hashtbl.create 1024;
    }
  in
  let evs = ref [] in
  List.iteri
    (fun src a ->
      let pos = ref 0 in
      Trace.iter a.trace (fun ev ->
          if ev.Trace.kind = Trace.Instant && ev.Trace.cat = "audit" then begin
            evs := (ev.Trace.vt, src, !pos, ev) :: !evs;
            incr pos
          end))
    sources;
  let evs = List.sort compare (List.rev !evs) in
  List.iter
    (fun ((vt : float), _, _, (ev : Trace.ev)) ->
      cursor := vt;
      Trace.instant tr ~cat:"audit" ~name:ev.Trace.name ~attrs:ev.Trace.attrs ();
      let r = decode ev in
      match ev.Trace.name with
      | "arrival" -> Hashtbl.replace t.arrived r.pkt ()
      | "forward" -> remember t.first_forward r.pkt vt
      | "nf_arrival" -> remember t.first_arrival r.pkt vt
      | "process" -> remember t.first_process r.pkt vt
      | _ -> ())
    evs;
  t

let now t = Engine.now t.engine

let log_switch_arrival t p =
  if not (Hashtbl.mem t.arrived p.Packet.id) then begin
    Hashtbl.add t.arrived p.Packet.id ();
    log t "arrival" p "sw"
  end

let log_forward t p ~dst =
  log t "forward" p dst;
  remember t.first_forward p.Packet.id (now t)

let log_nf_arrival t p ~nf =
  log t "nf_arrival" p nf;
  remember t.first_arrival p.Packet.id (now t)

let log_process t p ~nf =
  log t "process" p nf;
  remember t.first_process p.Packet.id (now t)

let log_drop t p ~nf = log t "drop" p nf
let log_evented t p ~nf = log t "event" p nf
let log_buffered t p ~nf = log t "buffer" p nf

let in_filter filter (r : record) =
  match filter with None -> true | Some f -> Filter.matches_flow f r.key

let by_nf nf (r : record) = match nf with None -> true | Some n -> r.nf = n

let forwarded_order ?filter t =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun r ->
      if in_filter filter r && not (Hashtbl.mem seen r.pkt) then begin
        Hashtbl.add seen r.pkt ();
        Some r.pkt
      end
      else None)
    (records t "forward")

let processed_order ?filter ?nf t =
  List.filter_map
    (fun r -> if in_filter filter r && by_nf nf r then Some r.pkt else None)
    (records t "process")

let drop_count ?nf t = List.length (List.filter (by_nf nf) (records t "drop"))

let processed_count ?nf t =
  List.length (List.filter (by_nf nf) (records t "process"))

let lost ?filter t ~nfs =
  let processes = records t "process" in
  let processed = Hashtbl.create 1024 in
  List.iter
    (fun (r : record) ->
      if List.mem r.nf nfs then Hashtbl.replace processed r.pkt ())
    processes;
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (r : record) ->
      if
        in_filter filter r
        && List.mem r.nf nfs
        && (not (Hashtbl.mem seen r.pkt))
        && not (Hashtbl.mem processed r.pkt)
      then begin
        Hashtbl.add seen r.pkt ();
        Some r.pkt
      end
      else None)
    (records t "forward")

let duplicated ?filter t =
  let counts = Hashtbl.create 1024 in
  List.iter
    (fun (r : record) ->
      if in_filter filter r then
        Hashtbl.replace counts r.pkt
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts r.pkt)))
    (records t "process");
  Hashtbl.fold (fun id n acc -> if n > 1 then id :: acc else acc) counts []

let violations_against t reference_order ?filter () =
  let pos = Hashtbl.create 1024 in
  List.iteri (fun i id -> Hashtbl.replace pos id i) reference_order;
  let proc =
    List.filter (fun id -> Hashtbl.mem pos id) (processed_order ?filter t)
  in
  (* A violation is an inversion between the reference position and the
     processing position. Report adjacent-in-processing inversions, which
     is enough to witness any reordering. *)
  let rec scan acc = function
    | a :: (b :: _ as rest) ->
      let pa = Hashtbl.find pos a and pb = Hashtbl.find pos b in
      let acc = if pa > pb then (b, a) :: acc else acc in
      scan acc rest
    | [ _ ] | [] -> List.rev acc
  in
  scan [] proc

let order_violations ?filter t =
  violations_against t (forwarded_order ?filter t) ?filter ()

let arrival_order t filter =
  List.filter_map
    (fun r -> if in_filter filter r then Some r.pkt else None)
    (records t "arrival")

let arrival_order_violations ?filter t =
  violations_against t (arrival_order t filter) ?filter ()

let added_latency t ~pkt =
  match
    (Hashtbl.find_opt t.first_arrival pkt, Hashtbl.find_opt t.first_process pkt)
  with
  | Some arrival, Some proc -> Some (proc -. arrival)
  | _ -> None

let evented_ids ?nf t =
  List.filter_map
    (fun r -> if by_nf nf r then Some r.pkt else None)
    (records t "event")

let buffered_ids ?nf t =
  List.filter_map
    (fun r -> if by_nf nf r then Some r.pkt else None)
    (records t "buffer")

let first_forward_time t ~pkt = Hashtbl.find_opt t.first_forward pkt
let process_time t ~pkt = Hashtbl.find_opt t.first_process pkt
