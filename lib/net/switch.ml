module Engine = Opennf_sim.Engine

type to_switch =
  | Install of {
      cookie : int;
      priority : int;
      filters : Filter.t list;
      actions : Flowtable.action list;
    }
  | Remove of { cookie : int }
  | Packet_out of { port : string; packet : Packet.t }
  | Barrier of { id : int }

type from_switch =
  | Packet_in of { packet : Packet.t; cookie : int }
  | Barrier_reply of { id : int }

type t = {
  engine : Engine.t;
  audit : Audit.t;
  name : string;
  flow_mod_delay : float;
  packet_out_rate : float;
  table : Flowtable.t;
  ports : (string, Packet.t Channel.t) Hashtbl.t;
  mutable to_controller : from_switch Channel.t option;
  mutable mods_applied_by : float;
      (** Latest activation time among received flow-mods. *)
  mutable packet_out_free_at : float;
      (** Next instant the packet-out path is idle. *)
  mutable packet_out_backlog : int;
  mutable table_misses : int;
}

let create engine audit ~name ?(flow_mod_delay = 0.010)
    ?(packet_out_rate = 1.0e9) () =
  {
    engine;
    audit;
    name;
    flow_mod_delay;
    packet_out_rate;
    table = Flowtable.create ~engine ();
    ports = Hashtbl.create 8;
    to_controller = None;
    mods_applied_by = 0.0;
    packet_out_free_at = 0.0;
    packet_out_backlog = 0;
    table_misses = 0;
  }

let attach_port t ~name chan = Hashtbl.replace t.ports name chan
let set_controller t chan = t.to_controller <- Some chan

let send_to_controller t msg =
  match t.to_controller with
  | Some chan -> Channel.send chan ~size:128 msg
  | None -> ()

let forward t (p : Packet.t) port =
  match Hashtbl.find_opt t.ports port with
  | None -> invalid_arg (Printf.sprintf "Switch %s: no port %s" t.name port)
  | Some chan ->
    Audit.log_forward t.audit p ~dst:port;
    Channel.send chan ~size:p.Packet.wire_size p

let apply_actions t p cookie actions =
  List.iter
    (fun action ->
      match (action : Flowtable.action) with
      | Forward port -> forward t p port
      | To_controller -> send_to_controller t (Packet_in { packet = p; cookie }))
    actions

let inject t p =
  Audit.log_switch_arrival t.audit p;
  match Flowtable.lookup t.table p with
  | None -> t.table_misses <- t.table_misses + 1
  | Some rule -> apply_actions t p rule.Flowtable.cookie rule.Flowtable.actions

let control t msg =
  let now = Engine.now t.engine in
  match msg with
  | Install { cookie; priority; filters; actions } ->
    let apply_at = now +. t.flow_mod_delay in
    t.mods_applied_by <- Float.max t.mods_applied_by apply_at;
    Engine.schedule_at t.engine apply_at (fun () ->
        Flowtable.install t.table ~cookie ~priority ~filters ~actions)
  | Remove { cookie } ->
    let apply_at = now +. t.flow_mod_delay in
    t.mods_applied_by <- Float.max t.mods_applied_by apply_at;
    Engine.schedule_at t.engine apply_at (fun () ->
        Flowtable.remove t.table ~cookie)
  | Packet_out { port; packet } ->
    let start = Float.max now t.packet_out_free_at in
    t.packet_out_free_at <- start +. (1.0 /. t.packet_out_rate);
    t.packet_out_backlog <- t.packet_out_backlog + 1;
    Engine.schedule_at t.engine t.packet_out_free_at (fun () ->
        t.packet_out_backlog <- t.packet_out_backlog - 1;
        forward t packet port)
  | Barrier { id } ->
    (* Reply once every earlier flow-mod is active. Control-channel
       serialization (which makes a flow-mod queue behind a packet-out
       flush) is modeled on the controller->switch channel itself. *)
    let reply_at = Float.max now t.mods_applied_by in
    Engine.schedule_at t.engine reply_at (fun () ->
        send_to_controller t (Barrier_reply { id }))

let table t = t.table
let table_misses t = t.table_misses
let table_generation t = Flowtable.generation t.table

let decision_cache_stats t = Flowtable.cache_stats t.table

let packet_out_backlog t = t.packet_out_backlog
