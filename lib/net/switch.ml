module Engine = Opennf_sim.Engine

type to_switch =
  | Install of {
      cookie : int;
      priority : int;
      filters : Filter.t list;
      actions : Flowtable.action list;
    }
  | Remove of { cookie : int }
  | Packet_out of { port : string; packet : Packet.t }
  | Barrier of { id : int }

type from_switch =
  | Packet_in of { packet : Packet.t; cookie : int }
  | Barrier_reply of { id : int }

type t = {
  engine : Engine.t;
  audit : Audit.t;
  name : string;
  flow_mod_delay : float;
  packet_out_rate : float;
  table : Flowtable.t;
  ports : (string, Packet.t Channel.t) Hashtbl.t;
  mutable controllers : from_switch Channel.t option array;
      (** Indexed by connection id; slot 0 is the legacy controller. *)
  mutable pick_conn : (Packet.t -> int) option;
      (** Routes packet-ins to a connection; [None] = everything to 0. *)
  mutable mods_applied_by : float array;
      (** Per connection: latest activation time among its flow-mods.
          Barriers are per-connection, as in OpenFlow: a barrier covers
          only the flow-mods that arrived on the same connection. *)
  mutable packet_out_free_at : float;
      (** Next instant the packet-out path is idle. *)
  mutable packet_out_backlog : int;
  mutable table_misses : int;
  (* Replica hooks (parallel shard execution). A sharded-parallel
     fabric runs one switch replica per shard; the three hooks stitch
     the replicas back into one logical switch: flow-mods received on
     one replica are re-applied on the others (tap), and traffic aimed
     at a connection or port homed on another replica is routed there
     (proxies). All [None] in the single-switch wiring. *)
  mutable mod_tap : (conn:int -> to_switch -> unit) option;
  mutable conn_proxy : (conn:int -> from_switch -> bool) option;
  mutable port_proxy : (port:string -> Packet.t -> bool) option;
}

let create engine audit ~name ?(flow_mod_delay = 0.010)
    ?(packet_out_rate = 1.0e9) () =
  {
    engine;
    audit;
    name;
    flow_mod_delay;
    packet_out_rate;
    table = Flowtable.create ~engine ();
    ports = Hashtbl.create 8;
    controllers = [||];
    pick_conn = None;
    mods_applied_by = [||];
    packet_out_free_at = 0.0;
    packet_out_backlog = 0;
    table_misses = 0;
    mod_tap = None;
    conn_proxy = None;
    port_proxy = None;
  }

let attach_port t ~name chan = Hashtbl.replace t.ports name chan

(* Connection state (the channel slot and the barrier clock) is grown on
   demand: a barrier can arrive on a connection before its reply channel
   is registered, and the reply — scheduled for later — must still find
   the channel if registration happens in between. *)
let ensure_conn t conn =
  let n = Array.length t.controllers in
  if conn >= n then begin
    let grown = Array.make (conn + 1) None in
    Array.blit t.controllers 0 grown 0 n;
    t.controllers <- grown;
    let clocks = Array.make (conn + 1) 0.0 in
    Array.blit t.mods_applied_by 0 clocks 0 n;
    t.mods_applied_by <- clocks
  end

let register_controller t chan =
  let conn =
    let n = Array.length t.controllers in
    let rec first i = if i >= n || t.controllers.(i) = None then i else first (i + 1) in
    first 0
  in
  ensure_conn t conn;
  t.controllers.(conn) <- Some chan;
  conn

let set_controller t chan =
  ensure_conn t 0;
  t.controllers.(0) <- Some chan

let register_controller_at t ~conn chan =
  ensure_conn t conn;
  (match t.controllers.(conn) with
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Switch %s: connection %d already bound" t.name conn)
  | None -> ());
  t.controllers.(conn) <- Some chan

let set_packet_in_router t f = t.pick_conn <- Some f
let set_mod_tap t f = t.mod_tap <- Some f
let set_conn_proxy t f = t.conn_proxy <- Some f
let set_port_proxy t f = t.port_proxy <- Some f

let connections t =
  Array.fold_left
    (fun acc c -> match c with Some _ -> acc + 1 | None -> acc)
    0 t.controllers

let send_on t ~conn msg =
  let local =
    if conn >= 0 && conn < Array.length t.controllers then t.controllers.(conn)
    else None
  in
  match local with
  | Some chan -> Channel.send chan ~size:128 msg
  | None -> (
    match t.conn_proxy with
    | Some proxy -> ignore (proxy ~conn msg)
    | None -> ())

let emit_to t ~conn msg = send_on t ~conn msg

let send_packet_in t packet cookie =
  let conn = match t.pick_conn with None -> 0 | Some f -> f packet in
  send_on t ~conn (Packet_in { packet; cookie })

let forward t (p : Packet.t) port =
  match Hashtbl.find_opt t.ports port with
  | None -> (
    match t.port_proxy with
    | Some proxy when proxy ~port p -> ()
    | _ -> invalid_arg (Printf.sprintf "Switch %s: no port %s" t.name port))
  | Some chan ->
    Audit.log_forward t.audit p ~dst:port;
    Channel.send chan ~size:p.Packet.wire_size p

let apply_actions t p cookie actions =
  List.iter
    (fun action ->
      match (action : Flowtable.action) with
      | Forward port -> forward t p port
      | To_controller -> send_packet_in t p cookie)
    actions

let inject t p =
  Audit.log_switch_arrival t.audit p;
  match Flowtable.lookup t.table p with
  | None -> t.table_misses <- t.table_misses + 1
  | Some rule -> apply_actions t p rule.Flowtable.cookie rule.Flowtable.actions

(* A flow-mod's table mutation, shared by the receiving replica and any
   peer replica it is mirrored to ([apply_mod] never re-fires the tap,
   so mirroring cannot loop). Both run it at the same virtual [now], so
   every replica's table and per-conn barrier clock evolve
   identically. *)
let apply_mod t ~conn msg =
  let now = Engine.now t.engine in
  ensure_conn t conn;
  match msg with
  | Install { cookie; priority; filters; actions } ->
    let apply_at = now +. t.flow_mod_delay in
    t.mods_applied_by.(conn) <- Float.max t.mods_applied_by.(conn) apply_at;
    Engine.schedule_at t.engine apply_at (fun () ->
        Flowtable.install t.table ~cookie ~priority ~filters ~actions)
  | Remove { cookie } ->
    let apply_at = now +. t.flow_mod_delay in
    t.mods_applied_by.(conn) <- Float.max t.mods_applied_by.(conn) apply_at;
    Engine.schedule_at t.engine apply_at (fun () ->
        Flowtable.remove t.table ~cookie)
  | Packet_out _ | Barrier _ -> invalid_arg "Switch.apply_mod: not a flow-mod"

let control_from t ~conn msg =
  let now = Engine.now t.engine in
  ensure_conn t conn;
  match msg with
  | Install _ | Remove _ ->
    apply_mod t ~conn msg;
    (match t.mod_tap with Some tap -> tap ~conn msg | None -> ())
  | Packet_out { port; packet } ->
    let start = Float.max now t.packet_out_free_at in
    t.packet_out_free_at <- start +. (1.0 /. t.packet_out_rate);
    t.packet_out_backlog <- t.packet_out_backlog + 1;
    Engine.schedule_at t.engine t.packet_out_free_at (fun () ->
        t.packet_out_backlog <- t.packet_out_backlog - 1;
        forward t packet port)
  | Barrier { id } ->
    (* Reply once every earlier flow-mod of this connection is active.
       Control-channel serialization (which makes a flow-mod queue
       behind a packet-out flush) is modeled on the controller->switch
       channel itself. *)
    let reply_at = Float.max now t.mods_applied_by.(conn) in
    Engine.schedule_at t.engine reply_at (fun () ->
        send_on t ~conn (Barrier_reply { id }))

let control t msg = control_from t ~conn:0 msg

let table t = t.table
let table_misses t = t.table_misses
let table_generation t = Flowtable.generation t.table

let decision_cache_stats t = Flowtable.cache_stats t.table

let packet_out_backlog t = t.packet_out_backlog

let slice_rule_counts t ~shards = Flowtable.slice_counts t.table ~shards
