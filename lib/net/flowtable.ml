type action = Forward of string | To_controller

type rule = {
  cookie : int;
  priority : int;
  filters : Filter.t list;
  actions : action list;
  mutable matched : int;
}

type entry = { rule : rule; installed_seq : int }

(* Entries are indexed two ways (plus a cookie map for management):

   - [exact]: rules whose every filter pins a full 5-tuple live in flat
     memory — one {!Opennf_util.Arena} row per (rule, key), chained per
     directed 5-tuple through an open-addressing int table. A packet
     probes with its own key, so a lookup inspects only the handful of
     rows installed for exactly that flow, however many flows the table
     holds — and at a million installed flows the rows cost the GC
     nothing, unlike the former per-key entry lists. Filters may still
     carry a TCP-flag constraint — rows marked with it are re-checked
     against the full rule via the cookie map.
   - [wild]: everything else, bucketed by priority. Buckets are kept in
     a list sorted by descending priority; within a bucket, entries are
     newest (highest [installed_seq]) first, so the first match found is
     the bucket's winner and scanning stops at the first bucket that
     yields one (or as soon as the exact-match candidate outranks the
     remaining buckets).

   A per-table decision cache memoizes the winning rule per directed
   flow key (one slot per direction; flow-table matching is directional,
   so the two directions of a connection can legitimately hit different
   rules). It is a bounded direct-mapped cache — like a switch's flow
   cache, its working set tracks the traffic, not the table, which is
   what keeps hit cost flat as installed rules grow. Conflicting flows
   simply evict each other and recompute through the indexes. The cache
   is only consulted while no installed rule constrains TCP flags
   ([flag_rules] = 0) — otherwise two packets of the same flow can
   legitimately match different rules — and slots are validated against
   [generation], which every install/remove bumps. *)

type bucket = { prio : int; mutable entries : entry list }

(* Slots are flat — the winning rule is stored directly (with a dummy
   standing in for "no rule matched") so a cache hit dereferences one
   record beyond the slot itself. *)
type slot = {
  mutable d_key : Flow.key;
  mutable d_gen : int;  (* -1 = never filled. *)
  mutable d_rule : rule;
  mutable d_hit : bool;  (* False: the memoized decision is "no match". *)
}

module Omap = Opennf_util.Omap
module Arena = Opennf_util.Arena

(* Exact-index row layout: directed 5-tuple at the head, then the three
   ints [decide] compares (priority, install seq, cookie) and the chain
   link — everything a lookup needs without touching a rule record
   until the winner is known. *)
let eo_flag = 13 (* u8: rule carries a TCP-flag filter; re-check it *)
let eo_prio = 16 (* int *)
let eo_seq = 24 (* int *)
let eo_cookie = 32 (* int *)
let eo_next = 40 (* handle of the next row for the same key; null ends *)
let e_stride = 48

type t = {
  by_cookie : (int, entry) Hashtbl.t;
  by_seq : (int, entry) Omap.t;  (* Ordered by install sequence. *)
  exact : Arena.t;
  (* eidx: directed-key probe table; slots hold the chain-head handle
     (0 = empty, -1 = tombstone). *)
  mutable eidx : int array;
  mutable emask : int;
  mutable ecount : int; (* distinct exact keys (chains) *)
  mutable etombs : int;
  mutable wild : bucket list;  (* Sorted by descending priority. *)
  mutable flag_rules : int;
  mutable generation : int;
  mutable cache : slot array;  (* Direct-mapped; length is a power of 2. *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable next_seq : int;
  m_lookups : Opennf_obs.Metrics.counter;
  m_hits : Opennf_obs.Metrics.counter;
  m_misses : Opennf_obs.Metrics.counter;
}

let dummy_key =
  Flow.make ~src:(Ipaddr.of_int 0) ~dst:(Ipaddr.of_int 0) ~sport:0 ~dport:0 ()

let dummy_rule =
  { cookie = min_int; priority = 0; filters = []; actions = []; matched = 0 }

let cache_slots len =
  Array.init len (fun _ ->
      { d_key = dummy_key; d_gen = -1; d_rule = dummy_rule; d_hit = false })

(* The cache starts small and doubles as rules are installed, up to a
   fixed ceiling: small simulated switches stay cheap, large tables get
   enough slots that concurrent flows rarely collide. *)
let cache_initial = 256
let cache_max = 1 lsl 17

let create ?engine ?(obs = Opennf_obs.Hub.disabled) () =
  let obs =
    match engine with
    | Some e -> Opennf_sim.Engine.obs e
    | None -> obs
  in
  let metrics = Opennf_obs.Hub.metrics obs in
  {
    by_cookie = Hashtbl.create 64;
    by_seq = Omap.create ~cmp:Int.compare;
    exact = Arena.create ~stride:e_stride ();
    eidx = Array.make 256 0;
    emask = 255;
    ecount = 0;
    etombs = 0;
    wild = [];
    flag_rules = 0;
    generation = 0;
    cache = cache_slots cache_initial;
    cache_hits = 0;
    cache_misses = 0;
    next_seq = 0;
    m_lookups = Opennf_obs.Metrics.counter metrics "ft.lookups";
    m_hits = Opennf_obs.Metrics.counter metrics "ft.cache_hits";
    m_misses = Opennf_obs.Metrics.counter metrics "ft.cache_misses";
  }

let has_flag_filter rule =
  List.exists (fun f -> Option.is_some f.Filter.tcp_flag) rule.filters

(* --- exact index ---------------------------------------------------------
   Open addressing over int slots, same discipline as the arena-backed
   per-flow stores: probes compare the packet's key fields against the
   chain head's row bytes, so the hot path allocates nothing. *)

let[@inline] emix h v = (h lxor v) * 0x2545F4914F6CDD1D

let[@inline] ehash src dst pr sp dp =
  let h = emix (emix (emix (emix (emix 0x9E3779B9 src) dst) pr) sp) dp in
  (h lxor (h lsr 29)) land max_int

let proto_rank = function Flow.Tcp -> 0 | Flow.Udp -> 1 | Flow.Icmp -> 2

let[@inline] erow_matches t h src dst pr sp dp =
  Arena.get_u32 t.exact h 0 = src
  && Arena.get_u32 t.exact h 4 = dst
  && Arena.get_u8 t.exact h 8 = pr
  && Arena.get_u16 t.exact h 9 = sp
  && Arena.get_u16 t.exact h 11 = dp

(* Slot holding the chain for the directed key, or -1. *)
let eprobe_find t src dst pr sp dp =
  let i = ref (ehash src dst pr sp dp land t.emask) in
  let slot = ref (-1) in
  let continue = ref true in
  while !continue do
    let v = t.eidx.(!i) in
    if v = 0 then continue := false
    else if v <> -1 && erow_matches t v src dst pr sp dp then begin
      slot := !i;
      continue := false
    end
    else i := (!i + 1) land t.emask
  done;
  !slot

let erehash t slots =
  let idx = Array.make slots 0 in
  let mask = slots - 1 in
  Array.iter
    (fun v ->
      if v <> 0 && v <> -1 then begin
        let h =
          ehash (Arena.get_u32 t.exact v 0) (Arena.get_u32 t.exact v 4)
            (Arena.get_u8 t.exact v 8)
            (Arena.get_u16 t.exact v 9)
            (Arena.get_u16 t.exact v 11)
        in
        let i = ref (h land mask) in
        while idx.(!i) <> 0 do
          i := (!i + 1) land mask
        done;
        idx.(!i) <- v
      end)
    t.eidx;
  t.eidx <- idx;
  t.emask <- mask;
  t.etombs <- 0

(* Prepend a row for [e] onto [k]'s chain (newest-first, like the entry
   lists this replaces), creating the chain if the key is new. *)
let eindex_add t e (k : Flow.key) =
  let src = Ipaddr.to_int k.Flow.src_ip
  and dst = Ipaddr.to_int k.Flow.dst_ip
  and pr = proto_rank k.Flow.proto
  and sp = k.Flow.src_port
  and dp = k.Flow.dst_port in
  let i = ref (ehash src dst pr sp dp land t.emask) in
  let free = ref (-1) in
  let found = ref (-1) in
  let continue = ref true in
  while !continue do
    let v = t.eidx.(!i) in
    if v = 0 then begin
      if !free = -1 then free := !i;
      continue := false
    end
    else if v = -1 then begin
      if !free = -1 then free := !i;
      i := (!i + 1) land t.emask
    end
    else if erow_matches t v src dst pr sp dp then begin
      found := !i;
      continue := false
    end
    else i := (!i + 1) land t.emask
  done;
  let h = Arena.alloc t.exact in
  Arena.set_u32 t.exact h 0 src;
  Arena.set_u32 t.exact h 4 dst;
  Arena.set_u8 t.exact h 8 pr;
  Arena.set_u16 t.exact h 9 sp;
  Arena.set_u16 t.exact h 11 dp;
  Arena.set_u8 t.exact h eo_flag (if has_flag_filter e.rule then 1 else 0);
  Arena.set_int t.exact h eo_prio e.rule.priority;
  Arena.set_int t.exact h eo_seq e.installed_seq;
  Arena.set_int t.exact h eo_cookie e.rule.cookie;
  if !found <> -1 then begin
    Arena.set_int t.exact h eo_next t.eidx.(!found);
    t.eidx.(!found) <- h
  end
  else begin
    Arena.set_int t.exact h eo_next Arena.null;
    if t.eidx.(!free) = -1 then t.etombs <- t.etombs - 1;
    t.eidx.(!free) <- h;
    t.ecount <- t.ecount + 1;
    if 2 * (t.ecount + t.etombs) > t.emask + 1 then begin
      let slots = ref (t.emask + 1) in
      while 2 * (t.ecount + 1) > !slots do
        slots := !slots * 2
      done;
      erehash t !slots
    end
  end

(* Drop [e]'s row from [k]'s chain, tombstoning the slot if the chain
   empties. Cookie identifies the row: install replaces (unlinks) any
   previous entry with the same cookie before linking the new one. *)
let eindex_remove t e (k : Flow.key) =
  let s =
    eprobe_find t
      (Ipaddr.to_int k.Flow.src_ip)
      (Ipaddr.to_int k.Flow.dst_ip)
      (proto_rank k.Flow.proto) k.Flow.src_port k.Flow.dst_port
  in
  if s <> -1 then begin
    let cookie = e.rule.cookie in
    let rec filter h =
      if h = Arena.null then Arena.null
      else begin
        let next = Arena.get_int t.exact h eo_next in
        if Arena.get_int t.exact h eo_cookie = cookie then begin
          Arena.free t.exact h;
          filter next
        end
        else begin
          Arena.set_int t.exact h eo_next (filter next);
          h
        end
      end
    in
    match filter t.eidx.(s) with
    | 0 ->
      t.eidx.(s) <- -1;
      t.ecount <- t.ecount - 1;
      t.etombs <- t.etombs + 1
    | head -> t.eidx.(s) <- head
  end

let exact_keys rule =
  let keys = List.map Filter.exact_key rule.filters in
  if List.for_all Option.is_some keys then
    (* Dedup + order through the same ordered-enumeration helper the
       state stores use. *)
    Some (Omap.sort_uniq ~cmp:Flow.compare (List.filter_map Fun.id keys))
  else None

let unlink t e =
  Hashtbl.remove t.by_cookie e.rule.cookie;
  Omap.remove t.by_seq e.installed_seq;
  if has_flag_filter e.rule then t.flag_rules <- t.flag_rules - 1;
  match exact_keys e.rule with
  | Some keys -> List.iter (eindex_remove t e) keys
  | None ->
    List.iter
      (fun b -> b.entries <- List.filter (fun e' -> e' != e) b.entries)
      t.wild;
    t.wild <- List.filter (fun b -> b.entries <> []) t.wild

let link t e =
  Hashtbl.replace t.by_cookie e.rule.cookie e;
  Omap.set t.by_seq e.installed_seq e;
  if has_flag_filter e.rule then t.flag_rules <- t.flag_rules + 1;
  match exact_keys e.rule with
  | Some keys -> List.iter (eindex_add t e) keys
  | None -> (
    (* New entries always carry the largest seq, so prepending keeps the
       bucket newest-first. *)
    match List.find_opt (fun b -> b.prio = e.rule.priority) t.wild with
    | Some b -> b.entries <- e :: b.entries
    | None ->
      (* Sorted insert (descending priority): the bucket list stays
         ordered without re-sorting it on every new priority. *)
      let b = { prio = e.rule.priority; entries = [ e ] } in
      let rec insert = function
        | [] -> [ b ]
        | b' :: _ as rest when b.prio > b'.prio -> b :: rest
        | b' :: rest -> b' :: insert rest
      in
      t.wild <- insert t.wild)

let invalidate t = t.generation <- t.generation + 1

let maybe_grow_cache t =
  let len = Array.length t.cache in
  if len < cache_max && 2 * Hashtbl.length t.by_cookie >= len then
    t.cache <- cache_slots (min cache_max (4 * len))

let install t ~cookie ~priority ~filters ~actions =
  let rule = { cookie; priority; filters; actions; matched = 0 } in
  let entry = { rule; installed_seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  (match Hashtbl.find_opt t.by_cookie cookie with
  | Some old -> unlink t old
  | None -> ());
  link t entry;
  maybe_grow_cache t;
  invalidate t

let remove t ~cookie =
  match Hashtbl.find_opt t.by_cookie cookie with
  | None -> ()
  | Some e ->
    unlink t e;
    invalidate t

let rule_matches r p = List.exists (fun f -> Filter.matches_packet f p) r.filters

(* Higher priority wins; the most recent install breaks ties. *)
let beats a b =
  a.rule.priority > b.rule.priority
  || (a.rule.priority = b.rule.priority && a.installed_seq > b.installed_seq)

(* Walk the packet key's chain comparing raw (priority, seq) ints; only
   the winning row's entry is fetched (via the cookie map), and only
   flag-marked rows pay a full [rule_matches] re-check. Unmarked rows
   match by construction: their filters pin exactly this 5-tuple and
   packet matching ignores the app field. *)
let exact_best t p =
  let k = p.Packet.key in
  let s =
    eprobe_find t
      (Ipaddr.to_int k.Flow.src_ip)
      (Ipaddr.to_int k.Flow.dst_ip)
      (proto_rank k.Flow.proto) k.Flow.src_port k.Flow.dst_port
  in
  if s = -1 then None
  else begin
    let a = t.exact in
    let best = ref Arena.null in
    let bp = ref min_int and bs = ref min_int in
    let h = ref t.eidx.(s) in
    while !h <> Arena.null do
      let prio = Arena.get_int a !h eo_prio in
      let seq = Arena.get_int a !h eo_seq in
      if prio > !bp || (prio = !bp && seq > !bs) then begin
        let ok =
          Arena.get_u8 a !h eo_flag = 0
          ||
          match Hashtbl.find_opt t.by_cookie (Arena.get_int a !h eo_cookie) with
          | Some e -> rule_matches e.rule p
          | None -> false
        in
        if ok then begin
          best := !h;
          bp := prio;
          bs := seq
        end
      end;
      h := Arena.get_int a !h eo_next
    done;
    if !best = Arena.null then None
    else Hashtbl.find_opt t.by_cookie (Arena.get_int a !best eo_cookie)
  end

let wild_best t p ~stop_at =
  let rec bucket_scan = function
    | [] -> None
    | b :: rest -> (
      match stop_at with
      | Some limit when limit.rule.priority > b.prio -> None
      | _ -> (
        match List.find_opt (fun e -> rule_matches e.rule p) b.entries with
        | Some e -> Some e
        | None -> bucket_scan rest))
  in
  bucket_scan t.wild

let decide t p =
  let exact = exact_best t p in
  let winner =
    match (exact, wild_best t p ~stop_at:exact) with
    | best, None | None, best -> best
    | Some a, Some b -> if beats a b then Some a else Some b
  in
  winner

let record_match = function
  | None -> None
  | Some e ->
    e.rule.matched <- e.rule.matched + 1;
    Some e.rule

let lookup t p =
  Opennf_obs.Metrics.incr t.m_lookups;
  if t.flag_rules > 0 then record_match (decide t p)
  else begin
    let key = p.Packet.key in
    let slot = t.cache.(Flow.hash key land (Array.length t.cache - 1)) in
    if slot.d_gen = t.generation && Flow.equal slot.d_key key then begin
      t.cache_hits <- t.cache_hits + 1;
      Opennf_obs.Metrics.incr t.m_hits;
      if slot.d_hit then begin
        let r = slot.d_rule in
        r.matched <- r.matched + 1;
        Some r
      end
      else None
    end
    else begin
      t.cache_misses <- t.cache_misses + 1;
      Opennf_obs.Metrics.incr t.m_misses;
      let winner = decide t p in
      slot.d_key <- key;
      slot.d_gen <- t.generation;
      (match winner with
      | Some e ->
        slot.d_rule <- e.rule;
        slot.d_hit <- true
      | None ->
        slot.d_rule <- dummy_rule;
        slot.d_hit <- false);
      record_match winner
    end
  end

(* Reference implementation: a linear scan over every installed rule,
   shaped like the original unindexed table. Retained as the oracle for
   the randomized equivalence tests (and the bench baseline); does not
   touch the [matched] counters or the cache. *)
let lookup_reference t p =
  Hashtbl.fold
    (fun _ e best ->
      if rule_matches e.rule p then
        match best with Some b when beats b e -> best | _ -> Some e
      else best)
    t.by_cookie None
  |> Option.map (fun e -> e.rule)

let find t ~cookie =
  Option.map (fun e -> e.rule) (Hashtbl.find_opt t.by_cookie cookie)

(* Newest-first dump via the seq-ordered mirror: an ascending fold with
   prepend yields descending install order — no per-call sort. *)
let rules t = Omap.fold_asc (fun _ e acc -> e.rule :: acc) t.by_seq []

let size t = Hashtbl.length t.by_cookie
let generation t = t.generation
let cache_stats t = (t.cache_hits, t.cache_misses)

(* Cookies are allocated strided by controller shard (see
   {!Opennf.Controller.fresh_cookie}): cookie mod shards names the
   owning shard, so the cookie partition is the table slice. *)
let slice_counts t ~shards =
  if shards < 1 then invalid_arg "Flowtable.slice_counts: shards must be >= 1";
  let counts = Array.make shards 0 in
  Hashtbl.iter
    (fun cookie _ ->
      let s = ((cookie mod shards) + shards) mod shards in
      counts.(s) <- counts.(s) + 1)
    t.by_cookie;
  counts
