type action = Forward of string | To_controller

type rule = {
  cookie : int;
  priority : int;
  filters : Filter.t list;
  actions : action list;
  mutable matched : int;
}

type entry = { rule : rule; installed_seq : int }

(* Entries are indexed two ways (plus a cookie map for management):

   - [exact]: rules whose every filter pins a full 5-tuple live in a
     hash keyed on that 5-tuple. A packet probes with its own key, so a
     lookup inspects only the handful of rules installed for exactly
     that flow, however many flows the table holds. Filters may still
     carry a TCP-flag constraint — the probe yields candidates that are
     re-checked with the full match.
   - [wild]: everything else, bucketed by priority. Buckets are kept in
     a list sorted by descending priority; within a bucket, entries are
     newest (highest [installed_seq]) first, so the first match found is
     the bucket's winner and scanning stops at the first bucket that
     yields one (or as soon as the exact-match candidate outranks the
     remaining buckets).

   A per-table decision cache memoizes the winning rule per directed
   flow key (one slot per direction; flow-table matching is directional,
   so the two directions of a connection can legitimately hit different
   rules). It is a bounded direct-mapped cache — like a switch's flow
   cache, its working set tracks the traffic, not the table, which is
   what keeps hit cost flat as installed rules grow. Conflicting flows
   simply evict each other and recompute through the indexes. The cache
   is only consulted while no installed rule constrains TCP flags
   ([flag_rules] = 0) — otherwise two packets of the same flow can
   legitimately match different rules — and slots are validated against
   [generation], which every install/remove bumps. *)

type bucket = { prio : int; mutable entries : entry list }

(* Slots are flat — the winning rule is stored directly (with a dummy
   standing in for "no rule matched") so a cache hit dereferences one
   record beyond the slot itself. *)
type slot = {
  mutable d_key : Flow.key;
  mutable d_gen : int;  (* -1 = never filled. *)
  mutable d_rule : rule;
  mutable d_hit : bool;  (* False: the memoized decision is "no match". *)
}

module Omap = Opennf_util.Omap

type t = {
  by_cookie : (int, entry) Hashtbl.t;
  by_seq : (int, entry) Omap.t;  (* Ordered by install sequence. *)
  exact : entry list Flow.Table.t;
  mutable wild : bucket list;  (* Sorted by descending priority. *)
  mutable flag_rules : int;
  mutable generation : int;
  mutable cache : slot array;  (* Direct-mapped; length is a power of 2. *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable next_seq : int;
  m_lookups : Opennf_obs.Metrics.counter;
  m_hits : Opennf_obs.Metrics.counter;
  m_misses : Opennf_obs.Metrics.counter;
}

let dummy_key =
  Flow.make ~src:(Ipaddr.of_int 0) ~dst:(Ipaddr.of_int 0) ~sport:0 ~dport:0 ()

let dummy_rule =
  { cookie = min_int; priority = 0; filters = []; actions = []; matched = 0 }

let cache_slots len =
  Array.init len (fun _ ->
      { d_key = dummy_key; d_gen = -1; d_rule = dummy_rule; d_hit = false })

(* The cache starts small and doubles as rules are installed, up to a
   fixed ceiling: small simulated switches stay cheap, large tables get
   enough slots that concurrent flows rarely collide. *)
let cache_initial = 256
let cache_max = 1 lsl 17

let create ?(obs = Opennf_obs.Hub.disabled) () =
  let metrics = Opennf_obs.Hub.metrics obs in
  {
    by_cookie = Hashtbl.create 64;
    by_seq = Omap.create ~cmp:Int.compare;
    exact = Flow.Table.create 64;
    wild = [];
    flag_rules = 0;
    generation = 0;
    cache = cache_slots cache_initial;
    cache_hits = 0;
    cache_misses = 0;
    next_seq = 0;
    m_lookups = Opennf_obs.Metrics.counter metrics "ft.lookups";
    m_hits = Opennf_obs.Metrics.counter metrics "ft.cache_hits";
    m_misses = Opennf_obs.Metrics.counter metrics "ft.cache_misses";
  }

let exact_keys rule =
  let keys = List.map Filter.exact_key rule.filters in
  if List.for_all Option.is_some keys then
    (* Dedup + order through the same ordered-enumeration helper the
       state stores use. *)
    Some (Omap.sort_uniq ~cmp:Flow.compare (List.filter_map Fun.id keys))
  else None

let has_flag_filter rule =
  List.exists (fun f -> Option.is_some f.Filter.tcp_flag) rule.filters

let unlink t e =
  Hashtbl.remove t.by_cookie e.rule.cookie;
  Omap.remove t.by_seq e.installed_seq;
  if has_flag_filter e.rule then t.flag_rules <- t.flag_rules - 1;
  match exact_keys e.rule with
  | Some keys ->
    List.iter
      (fun k ->
        match Flow.Table.find_opt t.exact k with
        | None -> ()
        | Some es -> (
          match List.filter (fun e' -> e' != e) es with
          | [] -> Flow.Table.remove t.exact k
          | es' -> Flow.Table.replace t.exact k es'))
      keys
  | None ->
    List.iter
      (fun b -> b.entries <- List.filter (fun e' -> e' != e) b.entries)
      t.wild;
    t.wild <- List.filter (fun b -> b.entries <> []) t.wild

let link t e =
  Hashtbl.replace t.by_cookie e.rule.cookie e;
  Omap.set t.by_seq e.installed_seq e;
  if has_flag_filter e.rule then t.flag_rules <- t.flag_rules + 1;
  match exact_keys e.rule with
  | Some keys ->
    List.iter
      (fun k ->
        let es =
          match Flow.Table.find_opt t.exact k with Some es -> es | None -> []
        in
        Flow.Table.replace t.exact k (e :: es))
      keys
  | None -> (
    (* New entries always carry the largest seq, so prepending keeps the
       bucket newest-first. *)
    match List.find_opt (fun b -> b.prio = e.rule.priority) t.wild with
    | Some b -> b.entries <- e :: b.entries
    | None ->
      (* Sorted insert (descending priority): the bucket list stays
         ordered without re-sorting it on every new priority. *)
      let b = { prio = e.rule.priority; entries = [ e ] } in
      let rec insert = function
        | [] -> [ b ]
        | b' :: _ as rest when b.prio > b'.prio -> b :: rest
        | b' :: rest -> b' :: insert rest
      in
      t.wild <- insert t.wild)

let invalidate t = t.generation <- t.generation + 1

let maybe_grow_cache t =
  let len = Array.length t.cache in
  if len < cache_max && 2 * Hashtbl.length t.by_cookie >= len then
    t.cache <- cache_slots (min cache_max (4 * len))

let install t ~cookie ~priority ~filters ~actions =
  let rule = { cookie; priority; filters; actions; matched = 0 } in
  let entry = { rule; installed_seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  (match Hashtbl.find_opt t.by_cookie cookie with
  | Some old -> unlink t old
  | None -> ());
  link t entry;
  maybe_grow_cache t;
  invalidate t

let remove t ~cookie =
  match Hashtbl.find_opt t.by_cookie cookie with
  | None -> ()
  | Some e ->
    unlink t e;
    invalidate t

let rule_matches r p = List.exists (fun f -> Filter.matches_packet f p) r.filters

(* Higher priority wins; the most recent install breaks ties. *)
let beats a b =
  a.rule.priority > b.rule.priority
  || (a.rule.priority = b.rule.priority && a.installed_seq > b.installed_seq)

let exact_best t p =
  match Flow.Table.find_opt t.exact p.Packet.key with
  | None -> None
  | Some es ->
    List.fold_left
      (fun best e ->
        if rule_matches e.rule p then
          match best with
          | Some b when beats b e -> best
          | Some _ | None -> Some e
        else best)
      None es

let wild_best t p ~stop_at =
  let rec bucket_scan = function
    | [] -> None
    | b :: rest -> (
      match stop_at with
      | Some limit when limit.rule.priority > b.prio -> None
      | _ -> (
        match List.find_opt (fun e -> rule_matches e.rule p) b.entries with
        | Some e -> Some e
        | None -> bucket_scan rest))
  in
  bucket_scan t.wild

let decide t p =
  let exact = exact_best t p in
  let winner =
    match (exact, wild_best t p ~stop_at:exact) with
    | best, None | None, best -> best
    | Some a, Some b -> if beats a b then Some a else Some b
  in
  winner

let record_match = function
  | None -> None
  | Some e ->
    e.rule.matched <- e.rule.matched + 1;
    Some e.rule

let lookup t p =
  Opennf_obs.Metrics.incr t.m_lookups;
  if t.flag_rules > 0 then record_match (decide t p)
  else begin
    let key = p.Packet.key in
    let slot = t.cache.(Flow.hash key land (Array.length t.cache - 1)) in
    if slot.d_gen = t.generation && Flow.equal slot.d_key key then begin
      t.cache_hits <- t.cache_hits + 1;
      Opennf_obs.Metrics.incr t.m_hits;
      if slot.d_hit then begin
        let r = slot.d_rule in
        r.matched <- r.matched + 1;
        Some r
      end
      else None
    end
    else begin
      t.cache_misses <- t.cache_misses + 1;
      Opennf_obs.Metrics.incr t.m_misses;
      let winner = decide t p in
      slot.d_key <- key;
      slot.d_gen <- t.generation;
      (match winner with
      | Some e ->
        slot.d_rule <- e.rule;
        slot.d_hit <- true
      | None ->
        slot.d_rule <- dummy_rule;
        slot.d_hit <- false);
      record_match winner
    end
  end

(* Reference implementation: a linear scan over every installed rule,
   shaped like the original unindexed table. Retained as the oracle for
   the randomized equivalence tests (and the bench baseline); does not
   touch the [matched] counters or the cache. *)
let lookup_reference t p =
  Hashtbl.fold
    (fun _ e best ->
      if rule_matches e.rule p then
        match best with Some b when beats b e -> best | _ -> Some e
      else best)
    t.by_cookie None
  |> Option.map (fun e -> e.rule)

let find t ~cookie =
  Option.map (fun e -> e.rule) (Hashtbl.find_opt t.by_cookie cookie)

(* Newest-first dump via the seq-ordered mirror: an ascending fold with
   prepend yields descending install order — no per-call sort. *)
let rules t = Omap.fold_asc (fun _ e acc -> e.rule :: acc) t.by_seq []

let size t = Hashtbl.length t.by_cookie
let generation t = t.generation
let cache_stats t = (t.cache_hits, t.cache_misses)
