(** Priority flow tables (the data-plane half of the SDN switch). *)

type action =
  | Forward of string  (** Output on the port with this name. *)
  | To_controller  (** Send a packet-in to the controller. *)

type rule = {
  cookie : int;  (** Controller-chosen identity; install replaces. *)
  priority : int;
  filters : Filter.t list;  (** The rule matches if any filter matches. *)
  actions : action list;
  mutable matched : int;  (** Packets matched so far (OpenFlow counter). *)
}

type t

val create :
  ?engine:Opennf_sim.Engine.t -> ?obs:Opennf_obs.Hub.t -> unit -> t
(** A table created with [~engine] records ["ft.lookups"],
    ["ft.cache_hits"] and ["ft.cache_misses"] counters on the engine's
    observability hub, so its metrics land next to every other
    engine-sourced series. Without either argument metrics are disabled.

    [?obs] is deprecated: it predates engines carrying their own hub and
    exists only for external callers that wired one by hand. It is
    ignored when [~engine] is given. *)

val install :
  t -> cookie:int -> priority:int -> filters:Filter.t list ->
  actions:action list -> unit
(** Atomically adds the rule, replacing any rule with the same cookie. *)

val remove : t -> cookie:int -> unit
(** No-op if absent. *)

val lookup : t -> Packet.t -> rule option
(** Highest-priority matching rule; among equal priorities the most
    recently installed wins.

    O(1) for the common case: rules pinning full 5-tuples are probed by
    hash on the packet's key, remaining (wildcard) rules are scanned by
    descending priority bucket with early exit, and the winning decision
    is memoized per flow while no installed rule constrains TCP flags.
    Install/remove invalidate memoized decisions (generation counter),
    so results are always identical to a full linear scan. *)

val lookup_reference : t -> Packet.t -> rule option
(** Oracle: unindexed linear scan over all rules, bypassing both indexes
    and the decision cache. Same winner as {!lookup}, but does not
    increment [matched]. For tests and benchmarks. *)

val find : t -> cookie:int -> rule option
val rules : t -> rule list
(** Most recently installed first. *)

val size : t -> int

val generation : t -> int
(** Bumped by every install/remove; decision-cache entries from older
    generations are dead. *)

val cache_stats : t -> int * int
(** [(hits, misses)] of the per-flow decision cache. *)

val slice_counts : t -> shards:int -> int array
(** Installed rules per controller shard, by cookie residue
    ([cookie mod shards]). Controller shards allocate cookies strided
    by shard id, so this is the per-shard slice of the shared table. *)
