module Faults = Opennf_sim.Faults

type 'a t = {
  engine : Opennf_sim.Engine.t;
  latency : float;
  bandwidth : float option;
  name : string;
  faults : Faults.t option;
  mutable handler : ('a -> int -> unit) option;
  early : ('a * int) Queue.t;
      (** Deliveries that came due before a handler was installed. *)
  mutable busy_until : float;  (** Sender-side serialization. *)
  mutable last_delivery : float;  (** Enforces FIFO delivery. *)
  mutable sent_count : int;
  mutable bytes_sent : int;
  mutable dropped_count : int;
  trace : Opennf_obs.Trace.t;
  m_msgs : Opennf_obs.Metrics.counter;
  m_bytes : Opennf_obs.Metrics.counter;
  m_dropped : Opennf_obs.Metrics.counter;
}

let create engine ~latency ?bandwidth ?faults ~name () =
  let obs = Opennf_sim.Engine.obs engine in
  let metrics = Opennf_obs.Hub.metrics obs in
  {
    engine;
    latency;
    bandwidth;
    name;
    faults;
    handler = None;
    early = Queue.create ();
    busy_until = 0.0;
    last_delivery = 0.0;
    sent_count = 0;
    bytes_sent = 0;
    dropped_count = 0;
    trace = Opennf_obs.Hub.trace obs;
    m_msgs = Opennf_obs.Metrics.counter metrics "ch.msgs";
    m_bytes = Opennf_obs.Metrics.counter metrics "ch.bytes";
    m_dropped = Opennf_obs.Metrics.counter metrics "ch.dropped";
  }

let drain_early t =
  match t.handler with
  | None -> ()
  | Some f ->
    while not (Queue.is_empty t.early) do
      let msg, size = Queue.pop t.early in
      f msg size
    done

let set_handler t f =
  t.handler <- Some (fun msg _size -> f msg);
  drain_early t

let set_handler_with_size t f =
  t.handler <- Some f;
  drain_early t

let deliver t msg size =
  match t.handler with
  | Some f -> f msg size
  | None -> Queue.push (msg, size) t.early

let send t ?(size = 0) msg =
  let module Engine = Opennf_sim.Engine in
  let now = Engine.now t.engine in
  let start = Float.max now t.busy_until in
  let tx_time =
    match t.bandwidth with
    | None -> 0.0
    | Some bw -> float_of_int size /. bw
  in
  t.busy_until <- start +. tx_time;
  t.sent_count <- t.sent_count + 1;
  t.bytes_sent <- t.bytes_sent + size;
  Opennf_obs.Metrics.incr t.m_msgs;
  Opennf_obs.Metrics.add t.m_bytes size;
  if Opennf_obs.Trace.enabled t.trace then
    Opennf_obs.Trace.instant t.trace ~cat:"ch" ~name:t.name
      ~attrs:[| ("bytes", Opennf_obs.Trace.Int size) |] ();
  match t.faults with
  | None ->
    let delivery = Float.max (t.busy_until +. t.latency) t.last_delivery in
    t.last_delivery <- delivery;
    Engine.schedule_at t.engine delivery (fun () -> deliver t msg size)
  | Some faults ->
    let copies, jitter = Faults.plan faults ~link:t.name in
    (* Jitter raises [last_delivery] too, so delivery order still equals
       send order (congestion, not reordering). *)
    let delivery =
      Float.max (t.busy_until +. t.latency +. jitter) t.last_delivery
    in
    t.last_delivery <- delivery;
    if copies = 0 then begin
      t.dropped_count <- t.dropped_count + 1;
      Opennf_obs.Metrics.incr t.m_dropped
    end
    else
      for _ = 1 to copies do
        Engine.schedule_at t.engine delivery (fun () -> deliver t msg size)
      done

let name t = t.name
let sent_count t = t.sent_count
let bytes_sent t = t.bytes_sent
let dropped_count t = t.dropped_count
