(** Point-to-point FIFO message channels.

    Models both data links (switch port → NF) and control channels
    (controller ↔ switch, controller ↔ NF). Delivery time accounts for
    propagation latency and optional serialization at a byte bandwidth;
    delivery order always equals send order (FIFO), which the
    order-preserving move protocol relies on.

    When a {!Opennf_sim.Faults.t} is wired in, each send consults the
    channel's fault profile (by channel [name]): messages may be
    dropped, duplicated, or delayed by FIFO-preserving jitter. Without
    one, behaviour is exactly fault-free and fully deterministic. *)

type 'a t

val create :
  Opennf_sim.Engine.t ->
  latency:float ->
  ?bandwidth:float ->
  ?faults:Opennf_sim.Faults.t ->
  name:string ->
  unit ->
  'a t
(** [bandwidth] is bytes/second; omitted means infinite. *)

val set_handler : 'a t -> ('a -> unit) -> unit
(** Installs the delivery handler. Deliveries that came due earlier are
    buffered and handed to the new handler immediately, in order. *)

val set_handler_with_size : 'a t -> ('a -> int -> unit) -> unit
(** Like [set_handler], but the handler also receives the wire size the
    sender declared (receivers whose processing cost scales with bytes
    read need it). *)

val send : 'a t -> ?size:int -> 'a -> unit
(** [size] (bytes) matters only when the channel has finite bandwidth;
    defaults to 0. *)

val name : 'a t -> string
val sent_count : 'a t -> int
val bytes_sent : 'a t -> int

val dropped_count : 'a t -> int
(** Messages discarded by fault injection on this channel. *)
