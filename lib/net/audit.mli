(** Audit ledger: the ground truth for safety properties.

    The switch logs every forwarding decision; NF runtimes log arrivals,
    processing, drops, buffering and event generation. Tests and benches
    query this ledger to check the paper's §5.1 definitions:

    - {b loss-freedom}: every packet the switch forwarded toward NF
      instances is eventually processed by exactly one instance;
    - {b order preservation}: the cross-instance processing order equals
      the switch's (first-time) forwarding order.

    Records are stored as trace instants (cat ["audit"]) through the
    same {!Opennf_obs.Trace} sink the op/scheduler spans use: when the
    engine's hub is tracing, audit events share its buffer (and appear
    in the Chrome export); otherwise the ledger keeps a private
    always-on tracer and this API behaves exactly as before. *)

type t

val create : Opennf_sim.Engine.t -> t
(** Shares the engine hub's tracer when it is tracing. *)

val merged : Opennf_sim.Engine.t -> t list -> t
(** Read-only union of several shard audits (the parallel fabric keeps
    one audit per shard engine). Records merge in (virtual time, shard
    index, buffer position) order — deterministic, and per-key order
    identical to a serial run's, since one flow's packets all live on
    one shard. A query snapshot: do not log to it. *)

val trace : t -> Opennf_obs.Trace.t
(** The tracer this ledger records through — the shared hub trace when
    the engine's hub is tracing, the audit's private always-on tracer
    otherwise. Streaming checkers ({!Opennf_obs.Monitor}) attach here. *)

type record = { pkt : int; key : Flow.key; nf : string; time : float }

val on_record : t -> (string -> record -> unit) -> unit
(** Subscribe to the live ledger: [f name record] runs synchronously on
    every audit event as it is logged (names: ["arrival"], ["forward"],
    ["nf_arrival"], ["process"], ["drop"], ["event"], ["buffer"]), in
    emission order. The callback must observe only — it must not log
    back into the ledger or touch the simulation. *)

(** {1 Recording} *)

val log_forward : t -> Packet.t -> dst:string -> unit
(** The switch forwarded the packet out the port named [dst]. Relays of
    an already-forwarded id are recorded but do not change the packet's
    first-forwarding position. *)

val log_switch_arrival : t -> Packet.t -> unit
(** The packet reached the switch from the network (recorded once per
    id). Arrival order is the ground truth for control planes that
    divert packets entirely to the controller, where no port forwarding
    happens until re-injection. *)

val log_nf_arrival : t -> Packet.t -> nf:string -> unit
val log_process : t -> Packet.t -> nf:string -> unit
val log_drop : t -> Packet.t -> nf:string -> unit
val log_evented : t -> Packet.t -> nf:string -> unit
(** The NF raised a packet-received event for this packet. *)

val log_buffered : t -> Packet.t -> nf:string -> unit

(** {1 Queries} *)

val forwarded_order : ?filter:Filter.t -> t -> int list
(** Packet ids in first-forwarding order (deduplicated). *)

val processed_order : ?filter:Filter.t -> ?nf:string -> t -> int list
(** Packet ids in processing order, across all instances unless [nf] is
    given. Ids repeat if a packet was processed more than once. *)

val drop_count : ?nf:string -> t -> int
val processed_count : ?nf:string -> t -> int

val lost : ?filter:Filter.t -> t -> nfs:string list -> int list
(** Ids forwarded to one of [nfs] (first forwarding) but never processed
    by any of them. *)

val duplicated : ?filter:Filter.t -> t -> int list
(** Ids processed more than once across all instances. *)

val order_violations : ?filter:Filter.t -> t -> (int * int) list
(** Pairs [(a, b)] where [a] was first-forwarded before [b] but processed
    after it (both restricted to [filter] and to processed packets). *)

val arrival_order_violations : ?filter:Filter.t -> t -> (int * int) list
(** Like {!order_violations}, but against switch {e arrival} order. *)

val added_latency : t -> pkt:int -> float option
(** [process_time - first NF arrival time] for the packet, if both are
    recorded. *)

val evented_ids : ?nf:string -> t -> int list
val buffered_ids : ?nf:string -> t -> int list
val first_forward_time : t -> pkt:int -> float option
val process_time : t -> pkt:int -> float option
