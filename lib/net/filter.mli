(** Header filters.

    A filter is a dictionary of standard header fields, like an OpenFlow
    match: unspecified fields are wildcards (§4.2 of the paper). Filters
    are used in three roles:

    - selecting which NF state to export/import (southbound get/put),
    - selecting which packets raise events (enableEvents),
    - matching packets in switch flow tables.

    The same type also represents southbound {e flowids}: a flowid is a
    filter whose present fields exactly describe the flow (full 5-tuple)
    or flow aggregate (e.g. only a host address) the state pertains to. *)

type t = {
  src : Ipaddr.Prefix.t option;
  dst : Ipaddr.Prefix.t option;
  proto : Flow.proto option;
  src_port : int option;
  dst_port : int option;
  tcp_flag : Packet.tcp_flag option;
      (** When set, matches only packets carrying this TCP flag (used by
          [notify] for SYN/RST triggers). Ignored for state selection. *)
  app : string option;
      (** Application-layer selector — the paper's footnote 6 extended
          filter fields (e.g. an HTTP URL for the Squid proxy). Only
          compared between filters and flowids; packet matching ignores
          it. *)
}

val any : t
(** Matches everything. *)

val make :
  ?src:Ipaddr.Prefix.t ->
  ?dst:Ipaddr.Prefix.t ->
  ?proto:Flow.proto ->
  ?src_port:int ->
  ?dst_port:int ->
  ?tcp_flag:Packet.tcp_flag ->
  ?app:string ->
  unit ->
  t

val of_key : Flow.key -> t
(** Exact 5-tuple filter (or per-flow flowid). *)

val of_src_prefix : Ipaddr.Prefix.t -> t
val of_src_host : Ipaddr.t -> t
val of_dst_host : Ipaddr.t -> t
val of_app : string -> t
(** Flowid naming application-layer state (e.g. one cached URL). *)

val mirror : t -> t
(** Swap source and destination constraints. *)

val is_symmetric : t -> bool
(** [mirror t = t]. *)

val matches_packet : t -> Packet.t -> bool
(** Directed header match, including the TCP-flag constraint. This is
    the flow-table / event-trigger semantics. *)

val matches_key : t -> Flow.key -> bool
(** Directed 5-tuple match (flag constraint ignored). *)

val matches_flow : t -> Flow.key -> bool
(** Connection-level match: the key or its reverse matches. This is the
    state-selection semantics: state for a connection is exported if the
    filter matches either direction. *)

val matches_host : t -> Ipaddr.t -> bool
(** True if the address satisfies the filter's src or dst constraint
    (used for host-scoped multi-flow state; per §4.2 only fields relevant
    to the state are considered, so port/proto constraints are ignored). *)

val accepts_flowid : t -> t -> bool
(** [accepts_flowid filter flowid]: would state labelled [flowid] be
    selected by [filter]? Only fields present in both are compared;
    direction-insensitive. *)

val overlaps : t -> t -> bool
(** [overlaps a b]: could some flow match both filters (in either
    direction)? Conservative: [tcp_flag] and [app] constraints are
    ignored, so a [true] may be spurious but a [false] is definite.
    Used by the operation scheduler to detect footprint conflicts. *)

val exact_key : t -> Flow.key option
(** When the filter pins a full 5-tuple (/32 prefixes, both ports and
    the protocol), the corresponding flow key. Used to interpret
    per-flow flowids. *)

val exact_src_host : t -> Ipaddr.t option
(** The source address when pinned to a /32 (host-scoped flowids). *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Structural, field by field (wildcard sorts before any constraint).
    Agrees with {!equal}. *)

val hash : t -> int
(** Structural hash consistent with {!equal}; safe for keying the
    controller's route tables. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Hashed : Hashtbl.HashedType with type t = t
module Table : Hashtbl.S with type key = t
