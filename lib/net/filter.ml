type t = {
  src : Ipaddr.Prefix.t option;
  dst : Ipaddr.Prefix.t option;
  proto : Flow.proto option;
  src_port : int option;
  dst_port : int option;
  tcp_flag : Packet.tcp_flag option;
  app : string option;
}

let any =
  {
    src = None;
    dst = None;
    proto = None;
    src_port = None;
    dst_port = None;
    tcp_flag = None;
    app = None;
  }

let make ?src ?dst ?proto ?src_port ?dst_port ?tcp_flag ?app () =
  { src; dst; proto; src_port; dst_port; tcp_flag; app }

let of_key (k : Flow.key) =
  {
    src = Some (Ipaddr.Prefix.host k.src_ip);
    dst = Some (Ipaddr.Prefix.host k.dst_ip);
    proto = Some k.proto;
    src_port = Some k.src_port;
    dst_port = Some k.dst_port;
    tcp_flag = None;
    app = None;
  }

let of_src_prefix p = { any with src = Some p }
let of_src_host ip = { any with src = Some (Ipaddr.Prefix.host ip) }
let of_dst_host ip = { any with dst = Some (Ipaddr.Prefix.host ip) }
let of_app app = { any with app = Some app }

let mirror t =
  { t with src = t.dst; dst = t.src; src_port = t.dst_port; dst_port = t.src_port }

let opt_equal eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | None, Some _ | Some _, None -> false

let equal a b =
  opt_equal Ipaddr.Prefix.equal a.src b.src
  && opt_equal Ipaddr.Prefix.equal a.dst b.dst
  && opt_equal ( = ) a.proto b.proto
  && opt_equal Int.equal a.src_port b.src_port
  && opt_equal Int.equal a.dst_port b.dst_port
  && opt_equal ( = ) a.tcp_flag b.tcp_flag
  && opt_equal String.equal a.app b.app

let compare_opt cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let proto_rank = function Flow.Tcp -> 0 | Flow.Udp -> 1 | Flow.Icmp -> 2

let flag_rank = function
  | Packet.Syn -> 0
  | Packet.Ack -> 1
  | Packet.Fin -> 2
  | Packet.Rst -> 3
  | Packet.Psh -> 4

let compare a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  compare_opt Ipaddr.Prefix.compare a.src b.src <?> fun () ->
  compare_opt Ipaddr.Prefix.compare a.dst b.dst <?> fun () ->
  compare_opt (fun x y -> Int.compare (proto_rank x) (proto_rank y)) a.proto
    b.proto
  <?> fun () ->
  compare_opt Int.compare a.src_port b.src_port <?> fun () ->
  compare_opt Int.compare a.dst_port b.dst_port <?> fun () ->
  compare_opt (fun x y -> Int.compare (flag_rank x) (flag_rank y)) a.tcp_flag
    b.tcp_flag
  <?> fun () -> compare_opt String.compare a.app b.app

let hash t =
  let open Opennf_util.Hashing in
  let prefix64 = function
    | None -> -1L
    | Some p ->
      Int64.of_int
        ((Ipaddr.to_int (Ipaddr.Prefix.network p) lsl 6)
        lor Ipaddr.Prefix.bits p)
  in
  let int64_of_opt f = function None -> -1L | Some x -> Int64.of_int (f x) in
  let h = combine (prefix64 t.src) (prefix64 t.dst) in
  let h = combine h (int64_of_opt proto_rank t.proto) in
  let h = combine h (int64_of_opt Fun.id t.src_port) in
  let h = combine h (int64_of_opt Fun.id t.dst_port) in
  let h = combine h (int64_of_opt flag_rank t.tcp_flag) in
  let h = combine h (match t.app with None -> 0L | Some a -> fnv1a64 a) in
  Int64.to_int h land max_int

let is_symmetric t = equal (mirror t) t

let field_matches check constraint_ value =
  match constraint_ with None -> true | Some c -> check c value

let matches_key t (k : Flow.key) =
  field_matches (fun p v -> Ipaddr.Prefix.mem v p) t.src k.src_ip
  && field_matches (fun p v -> Ipaddr.Prefix.mem v p) t.dst k.dst_ip
  && field_matches ( = ) t.proto k.proto
  && field_matches Int.equal t.src_port k.src_port
  && field_matches Int.equal t.dst_port k.dst_port

let matches_packet t (p : Packet.t) =
  matches_key t p.key
  && field_matches (fun f pkt -> Packet.has_flag pkt f) t.tcp_flag p

let matches_flow t k = matches_key t k || matches_key t (Flow.reverse k)

let matches_host t ip =
  let mem = function None -> false | Some p -> Ipaddr.Prefix.mem ip p in
  match (t.src, t.dst) with
  | None, None -> true
  | _ -> mem t.src || mem t.dst

(* A flowid field is accepted if the filter has no constraint on it or the
   constraint is compatible (prefix inclusion for addresses, equality
   otherwise). Fields absent from the flowid are ignored (§4.2). *)
let accepts_flowid_directed filter flowid =
  let prefix_ok c v =
    match (c, v) with
    | None, _ | _, None -> true
    | Some c, Some v -> Ipaddr.Prefix.subset v c
  in
  let eq_ok c v =
    match (c, v) with
    | None, _ | _, None -> true
    | Some c, Some v -> c = v
  in
  prefix_ok filter.src flowid.src
  && prefix_ok filter.dst flowid.dst
  && eq_ok filter.proto flowid.proto
  && eq_ok filter.src_port flowid.src_port
  && eq_ok filter.dst_port flowid.dst_port
  && eq_ok filter.app flowid.app

let accepts_flowid filter flowid =
  accepts_flowid_directed filter flowid
  || accepts_flowid_directed filter (mirror flowid)

(* Could some flow match both filters? Address prefixes intersect iff
   one contains the other; equality fields intersect unless both are
   pinned to different values. [tcp_flag] and [app] are ignored — they
   don't narrow the 5-tuple space a state footprint covers, so ignoring
   them errs on the safe (overlapping) side. *)
let overlap_prefix a b =
  match (a, b) with
  | None, _ | _, None -> true
  | Some p, Some q -> Ipaddr.Prefix.subset p q || Ipaddr.Prefix.subset q p

let overlap_eq a b =
  match (a, b) with None, _ | _, None -> true | Some x, Some y -> x = y

let overlaps_directed a b =
  overlap_prefix a.src b.src
  && overlap_prefix a.dst b.dst
  && overlap_eq a.proto b.proto
  && overlap_eq a.src_port b.src_port
  && overlap_eq a.dst_port b.dst_port

(* Connection-level, like [matches_flow]: a flow matches a filter in
   either direction, so two filters overlap if their directed forms
   intersect directly or mirrored. *)
let overlaps a b = overlaps_directed a b || overlaps_directed a (mirror b)

let exact_prefix = function
  | Some p when Ipaddr.Prefix.bits p = 32 -> Some (Ipaddr.Prefix.network p)
  | Some _ | None -> None

let exact_key t =
  match
    ( exact_prefix t.src,
      exact_prefix t.dst,
      t.proto,
      t.src_port,
      t.dst_port )
  with
  | Some src, Some dst, Some proto, Some sport, Some dport ->
    Some (Flow.make ~src ~dst ~proto ~sport ~dport ())
  | _ -> None

let exact_src_host t = exact_prefix t.src

let to_string t =
  let parts = ref [] in
  let add name v = parts := Printf.sprintf "%s=%s" name v :: !parts in
  Option.iter (fun p -> add "src" (Ipaddr.Prefix.to_string p)) t.src;
  Option.iter (fun p -> add "dst" (Ipaddr.Prefix.to_string p)) t.dst;
  Option.iter (fun p -> add "proto" (Flow.proto_to_string p)) t.proto;
  Option.iter (fun p -> add "sport" (string_of_int p)) t.src_port;
  Option.iter (fun p -> add "dport" (string_of_int p)) t.dst_port;
  Option.iter
    (fun f ->
      add "flag" (Format.asprintf "%a" Packet.pp_flags [ f ]))
    t.tcp_flag;
  Option.iter (fun a -> add "app" a) t.app;
  match !parts with
  | [] -> "{*}"
  | ps -> "{" ^ String.concat "," (List.rev ps) ^ "}"

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Table = Hashtbl.Make (Hashed)
