(** An OpenFlow-style SDN switch.

    The switch matches arriving packets against its flow table and
    forwards them out ports (channels to NF instances) and/or to the
    controller as packet-ins. The control interface models the costs
    that drive OpenNF's evaluation:

    - flow-mods take [flow_mod_delay] to become active after arriving;
    - barriers reply only after every earlier flow-mod is active
      (footnote 8's "existing SDN consistency mechanisms");
    - packet-outs drain at [packet_out_rate] per second. The production
      bottleneck behind Figure 11(b) — the control connection's
      throughput — is modeled on the controller→switch channel (see
      {!Controller.config}); the switch-side limiter defaults to
      effectively unlimited and exists for experiments that need a slow
      packet-out engine specifically. *)

type to_switch =
  | Install of {
      cookie : int;
      priority : int;
      filters : Filter.t list;
      actions : Flowtable.action list;
    }
  | Remove of { cookie : int }
  | Packet_out of { port : string; packet : Packet.t }
  | Barrier of { id : int }

type from_switch =
  | Packet_in of { packet : Packet.t; cookie : int }
  | Barrier_reply of { id : int }

type t

val create :
  Opennf_sim.Engine.t ->
  Audit.t ->
  name:string ->
  ?flow_mod_delay:float ->
  ?packet_out_rate:float ->
  unit ->
  t
(** Defaults: [flow_mod_delay] 10 ms, [packet_out_rate] effectively
    unlimited. *)

val attach_port : t -> name:string -> Packet.t Channel.t -> unit
(** Connect an output port. [Flowtable.Forward name] sends on it. *)

val set_controller : t -> from_switch Channel.t -> unit
(** Channel on which the switch emits packet-ins and barrier replies;
    binds connection 0 (the single-controller wiring). *)

val register_controller : t -> from_switch Channel.t -> int
(** Bind an additional controller connection; returns its connection
    id (0, 1, 2, … in registration order). Barrier replies return on
    the connection that issued the barrier; packet-ins are routed by
    {!set_packet_in_router} (default: everything to connection 0). *)

val set_packet_in_router : t -> (Packet.t -> int) -> unit
(** Route packet-ins by packet (e.g. a flowspace-shard hash). Replies
    to barriers are unaffected — those always return to the issuing
    connection. *)

(** {2 Replica stitching}

    A parallel sharded fabric runs one switch replica per shard (each
    on its own engine) standing in for one logical switch. The hooks
    below stitch them together; none are set in single-switch wiring.
    See {!Opennf.Fabric}. *)

val register_controller_at : t -> conn:int -> from_switch Channel.t -> unit
(** Bind a controller at a {e specific} connection id, so replicas can
    agree on the global conn numbering (replica [k] binds controller
    [k] at conn [k]; the other slots stay empty and route through the
    conn proxy). Raises if the slot is taken. *)

val set_mod_tap : t -> (conn:int -> to_switch -> unit) -> unit
(** Called for every Install/Remove this replica receives, after local
    application — the parallel fabric mirrors it to the other replicas
    (via {!apply_mod}) at the same virtual time. *)

val apply_mod : t -> conn:int -> to_switch -> unit
(** Apply a mirrored Install/Remove exactly as {!control_from} would —
    same [flow_mod_delay], same per-conn barrier clock — but without
    re-firing the mod tap. Raises on non-flow-mod messages. *)

val set_conn_proxy : t -> (conn:int -> from_switch -> bool) -> unit
(** Fallback for switch→controller messages aimed at a connection not
    bound on this replica (e.g. a packet-in hashed to another shard);
    returns whether the proxy delivered it. *)

val set_port_proxy : t -> (port:string -> Packet.t -> bool) -> unit
(** Fallback for forwards out a port not attached on this replica (an
    NF homed on another shard); returns whether the proxy took the
    packet. When it declines, forward raises as for an unknown port. *)

val emit_to : t -> conn:int -> from_switch -> unit
(** Emit a switch→controller message on a connection, exactly as the
    switch itself would (the bound channel, or the conn proxy). A conn
    proxy calls this on the replica that owns the connection. *)

val connections : t -> int
(** Number of registered controller connections. *)

val control : t -> to_switch -> unit
(** Deliver a control message to the switch (call through a channel to
    model controller→switch latency). Equivalent to [control_from]
    on connection 0. *)

val control_from : t -> conn:int -> to_switch -> unit
(** Deliver a control message arriving on a specific controller
    connection. Barrier semantics are per-connection, as in OpenFlow: a
    barrier covers only the flow-mods that arrived on [conn], and its
    reply is emitted on [conn]'s channel. *)

val inject : t -> Packet.t -> unit
(** A data packet arrives at the switch. No matching rule ⇒ the packet
    is dropped (counted in [table_misses]). *)

val table : t -> Flowtable.t
val table_misses : t -> int

val table_generation : t -> int
(** Flow-table generation: bumped by every applied flow-mod. Decisions
    memoized under an older generation are never served. *)

val decision_cache_stats : t -> int * int
(** [(hits, misses)] of the flow table's per-flow decision cache. *)

val packet_out_backlog : t -> int
(** Packet-outs accepted but not yet transmitted. *)

val slice_rule_counts : t -> shards:int -> int array
(** Installed rules per flow-table slice. The data plane is one shared
    table (it is one switch), but cookies are allocated strided by the
    owning controller shard ([cookie mod shards] = shard id), so the
    cookie partition {e is} the slice: entry [k] counts the rules shard
    [k] owns. *)
