(* Flat-memory slab arena: fixed-stride rows in Bytes chunks, addressed
   by integer handles. The point is what the GC does NOT see — a
   million live rows are a handful of byte slabs plus small int arrays,
   so major-heap marking cost stays flat however much per-flow state an
   NF holds. Boxed record stores are the thing this replaces: at 1M
   flows those put tens of millions of pointered words in front of
   every collection.

   Handles are generation-stamped (the pattern proven by Lz's
   match-finder table): a handle packs (generation << 32 | row index),
   every alloc/free bumps the row's generation, and each accessor
   validates the stamp — so a handle kept across a free (or across a
   free-list reuse of the row) raises instead of silently reading
   someone else's row. Live rows always carry an odd generation, which
   also rejects forged or [null] handles against never-used rows.

   Freed rows are threaded onto a free list through their own first 8
   bytes (hence the stride >= 8 requirement) — freeing costs no
   allocation, and reuse pops in LIFO order, deterministically. *)

type handle = int

let null : handle = 0

(* Row index lives in the low 32 bits; generation in the bits above.
   Generations wrap modulo 2^30 (parity-preserving, so live stays odd). *)
let idx_bits = 32
let idx_mask = (1 lsl idx_bits) - 1
let gen_mask = (1 lsl 30) - 1

(* 32k rows per slab: big enough that slab bookkeeping vanishes, small
   enough that growth never copies row storage. *)
let slab_bits = 15
let slab_rows = 1 lsl slab_bits
let slab_mask = slab_rows - 1

type t = {
  stride : int;
  mutable slabs : Bytes.t array;
  mutable gens : int array array; (* per-slab generation stamps *)
  mutable free_head : int; (* row index; -1 = empty *)
  mutable next_fresh : int; (* first never-allocated row *)
  mutable live : int;
}

let create ~stride () =
  if stride < 8 then invalid_arg "Arena.create: stride must be >= 8";
  { stride; slabs = [||]; gens = [||]; free_head = -1; next_fresh = 0; live = 0 }

let stride t = t.stride
let live t = t.live
let capacity t = Array.length t.slabs * slab_rows

let stale () = invalid_arg "Arena: stale or invalid handle"

(* Validate [h] and return its row index. Live handles carry the odd
   generation currently stamped on their row; anything else raises. *)
let[@inline] idx_of t h =
  let g = h lsr idx_bits in
  let idx = h land idx_mask in
  let s = idx lsr slab_bits in
  if
    g land 1 = 0
    || s >= Array.length t.gens
    || Array.unsafe_get (Array.unsafe_get t.gens s) (idx land slab_mask) <> g
  then stale ();
  idx

let is_live t h =
  let g = h lsr idx_bits in
  let idx = h land idx_mask in
  let s = idx lsr slab_bits in
  g land 1 = 1
  && s < Array.length t.gens
  && t.gens.(s).(idx land slab_mask) = g

let add_slab t =
  let n = Array.length t.slabs in
  let slabs = Array.make (n + 1) Bytes.empty in
  Array.blit t.slabs 0 slabs 0 n;
  slabs.(n) <- Bytes.create (slab_rows * t.stride);
  t.slabs <- slabs;
  let gens = Array.make (n + 1) [||] in
  Array.blit t.gens 0 gens 0 n;
  gens.(n) <- Array.make slab_rows 0;
  t.gens <- gens

let alloc t =
  let idx =
    if t.free_head >= 0 then begin
      let idx = t.free_head in
      let b = t.slabs.(idx lsr slab_bits) in
      t.free_head <-
        Int64.to_int (Bytes.get_int64_le b ((idx land slab_mask) * t.stride));
      idx
    end
    else begin
      if t.next_fresh = capacity t then add_slab t;
      let idx = t.next_fresh in
      t.next_fresh <- idx + 1;
      idx
    end
  in
  let s = idx lsr slab_bits and r = idx land slab_mask in
  let g = (t.gens.(s).(r) + 1) land gen_mask in
  t.gens.(s).(r) <- g;
  (* Rows are handed out zeroed, so equivalence between an arena-backed
     store and a boxed reference cannot depend on stale bytes. *)
  Bytes.fill t.slabs.(s) (r * t.stride) t.stride '\000';
  t.live <- t.live + 1;
  (g lsl idx_bits) lor idx

let free t h =
  let idx = idx_of t h in
  let s = idx lsr slab_bits and r = idx land slab_mask in
  t.gens.(s).(r) <- (t.gens.(s).(r) + 1) land gen_mask;
  Bytes.set_int64_le t.slabs.(s) (r * t.stride) (Int64.of_int t.free_head);
  t.free_head <- idx;
  t.live <- t.live - 1

(* --- typed field accessors ----------------------------------------------

   Each accessor validates the handle and addresses [off] bytes into the
   row. Integer accessors compose 16-bit loads/stores so no Int32/Int64
   box is allocated on the hot path; [f64] goes through Int64 bits (a
   short-lived box, irrelevant next to what a boxed record costs). *)

let[@inline] addr t idx off = ((idx land slab_mask) * t.stride) + off

let get_u8 t h off =
  let idx = idx_of t h in
  Bytes.get_uint8 t.slabs.(idx lsr slab_bits) (addr t idx off)

let set_u8 t h off v =
  let idx = idx_of t h in
  Bytes.set_uint8 t.slabs.(idx lsr slab_bits) (addr t idx off) v

let get_u16 t h off =
  let idx = idx_of t h in
  Bytes.get_uint16_le t.slabs.(idx lsr slab_bits) (addr t idx off)

let set_u16 t h off v =
  let idx = idx_of t h in
  Bytes.set_uint16_le t.slabs.(idx lsr slab_bits) (addr t idx off) (v land 0xFFFF)

let get_u32 t h off =
  let idx = idx_of t h in
  let b = t.slabs.(idx lsr slab_bits) in
  let p = addr t idx off in
  Bytes.get_uint16_le b p lor (Bytes.get_uint16_le b (p + 2) lsl 16)

let set_u32 t h off v =
  let idx = idx_of t h in
  let b = t.slabs.(idx lsr slab_bits) in
  let p = addr t idx off in
  Bytes.set_uint16_le b p (v land 0xFFFF);
  Bytes.set_uint16_le b (p + 2) ((v lsr 16) land 0xFFFF)

(* Full-width OCaml int (63-bit): arithmetic shifts sign-extend on the
   way out exactly as the truncated top bits demand, mirroring
   [Bytes_io]'s box-free int codec. *)
let get_int t h off =
  let idx = idx_of t h in
  let b = t.slabs.(idx lsr slab_bits) in
  let p = addr t idx off in
  Bytes.get_uint16_le b p
  lor (Bytes.get_uint16_le b (p + 2) lsl 16)
  lor (Bytes.get_uint16_le b (p + 4) lsl 32)
  lor (Bytes.get_uint16_le b (p + 6) lsl 48)

let set_int t h off v =
  let idx = idx_of t h in
  let b = t.slabs.(idx lsr slab_bits) in
  let p = addr t idx off in
  Bytes.set_uint16_le b p (v land 0xFFFF);
  Bytes.set_uint16_le b (p + 2) ((v asr 16) land 0xFFFF);
  Bytes.set_uint16_le b (p + 4) ((v asr 32) land 0xFFFF);
  Bytes.set_uint16_le b (p + 6) ((v asr 48) land 0xFFFF)

let get_f64 t h off =
  let idx = idx_of t h in
  Int64.float_of_bits
    (Bytes.get_int64_le t.slabs.(idx lsr slab_bits) (addr t idx off))

let set_f64 t h off v =
  let idx = idx_of t h in
  Bytes.set_int64_le t.slabs.(idx lsr slab_bits) (addr t idx off)
    (Int64.bits_of_float v)

(* Live rows in ascending row-index order (deterministic, independent
   of free-list history). *)
let iter_live t f =
  for s = 0 to Array.length t.gens - 1 do
    let gens = t.gens.(s) in
    for r = 0 to slab_rows - 1 do
      let g = gens.(r) in
      if g land 1 = 1 then f ((g lsl idx_bits) lor ((s lsl slab_bits) lor r))
    done
  done
