(* Token stream format:
   - 0x00 len(u16) bytes...      literal run (len >= 1)
   - 0x01 dist(u16) len(u16)     back-reference: copy [len] bytes from
                                 [dist] bytes behind the output cursor
   Matches are found with a 4-byte hash table, greedy parsing. *)

let min_match = 4
let min_gainful = 6
(* A back-reference costs 5 bytes, so shorter matches are kept literal. *)
let max_match = 0xFFFF
let max_dist = 0xFFFF
let hash_bits = 15
let hash_size = 1 lsl hash_bits

let hash4 s i =
  let b k = Char.code s.[i + k] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  (v * 2654435761) lsr (31 - hash_bits) land (hash_size - 1)

(* The match-finder hash table is reused across calls (per domain): a
   fresh 32k-slot array per [compress] call was the single largest
   allocation on the serialization fast path. Slots are validated by a
   generation stamp instead of refilled, so reuse costs nothing. *)
type scratch = {
  tbl : int array;
  gen_of : int array;
  mutable gen : int;
  out : Buffer.t;
  mutable out_in_use : bool;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        tbl = Array.make hash_size 0;
        gen_of = Array.make hash_size 0;
        gen = 0;
        out = Buffer.create 4096;
        out_in_use = false;
      })

let with_out f =
  let s = Domain.DLS.get scratch_key in
  if s.out_in_use then f (Buffer.create 256)
  else begin
    s.out_in_use <- true;
    Buffer.clear s.out;
    Fun.protect ~finally:(fun () -> s.out_in_use <- false) (fun () -> f s.out)
  end

(* Greedy parse shared by [compress] (emitting tokens) and
   [compress_length] (counting bytes): one algorithm, so the length-only
   path is exact by construction. [literal start stop] is only called
   with a non-empty range. *)
let scan s ~literal ~backref =
  let n = String.length s in
  if n < min_match then begin
    if n > 0 then literal 0 n
  end
  else begin
    let sc = Domain.DLS.get scratch_key in
    sc.gen <- sc.gen + 1;
    let gen = sc.gen in
    let tbl = sc.tbl and gen_of = sc.gen_of in
    let lit_start = ref 0 in
    let i = ref 0 in
    while !i + min_match <= n do
      let h = hash4 s !i in
      let cand = if gen_of.(h) = gen then tbl.(h) else -1 in
      tbl.(h) <- !i;
      gen_of.(h) <- gen;
      let matched =
        cand >= 0
        && !i - cand <= max_dist
        && s.[cand] = s.[!i]
        && s.[cand + 1] = s.[!i + 1]
        && s.[cand + 2] = s.[!i + 2]
        && s.[cand + 3] = s.[!i + 3]
      in
      let len = ref 0 in
      if matched then begin
        (* Extend the match as far as possible. *)
        len := min_match;
        while
          !len < max_match
          && !i + !len < n
          && s.[cand + !len] = s.[!i + !len]
        do
          incr len
        done
      end;
      if matched && !len >= min_gainful then begin
        if !i > !lit_start then literal !lit_start !i;
        backref ~dist:(!i - cand) ~len:!len;
        i := !i + !len;
        lit_start := !i
      end
      else incr i
    done;
    if n > !lit_start then literal !lit_start n
  end

let put_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let flush_literals buf s lit_start lit_end =
  let pos = ref lit_start in
  while !pos < lit_end do
    let len = min (lit_end - !pos) 0xFFFF in
    Buffer.add_char buf '\x00';
    put_u16 buf len;
    Buffer.add_substring buf s !pos len;
    pos := !pos + len
  done

let compress s =
  with_out (fun buf ->
      scan s
        ~literal:(fun start stop -> flush_literals buf s start stop)
        ~backref:(fun ~dist ~len ->
          Buffer.add_char buf '\x01';
          put_u16 buf dist;
          put_u16 buf len);
      Buffer.contents buf)

(* [String.length (compress s)] without building the output. *)
let compress_length s =
  let total = ref 0 in
  scan s
    ~literal:(fun start stop ->
      let len = stop - start in
      total := !total + len + (3 * ((len + 0xFFFE) / 0xFFFF)))
    ~backref:(fun ~dist:_ ~len:_ -> total := !total + 5);
  !total

let get_u16 s i = Char.code s.[i] lor (Char.code s.[i + 1] lsl 8)

let decompress s =
  let n = String.length s in
  with_out (fun out ->
      let i = ref 0 in
      while !i < n do
        match s.[!i] with
        | '\x00' ->
          if !i + 3 > n then invalid_arg "Lz.decompress: truncated literal";
          let len = get_u16 s (!i + 1) in
          if !i + 3 + len > n then
            invalid_arg "Lz.decompress: truncated literal";
          Buffer.add_substring out s (!i + 3) len;
          i := !i + 3 + len
        | '\x01' ->
          if !i + 5 > n then invalid_arg "Lz.decompress: truncated match";
          let dist = get_u16 s (!i + 1) in
          let len = get_u16 s (!i + 3) in
          let start = Buffer.length out - dist in
          if start < 0 then invalid_arg "Lz.decompress: bad distance";
          (* Copy byte-by-byte: source may overlap destination. *)
          for k = 0 to len - 1 do
            Buffer.add_char out (Buffer.nth out (start + k))
          done;
          i := !i + 5
        | _ -> invalid_arg "Lz.decompress: bad token"
      done;
      Buffer.contents out)

let ratio s =
  let n = String.length s in
  if n = 0 then 1.0 else float_of_int (compress_length s) /. float_of_int n

let wire_size_with_dict ~dict s =
  if String.length s = 0 then 0
  else begin
    let base = compress_length dict in
    let full = compress_length (dict ^ s) in
    max 4 (full - base)
  end

let stream_ratio chunks =
  let total = List.fold_left (fun acc s -> acc + String.length s) 0 chunks in
  if total = 0 then 1.0
  else begin
    let wire, _ =
      List.fold_left
        (fun (acc, dict) s -> (acc + wire_size_with_dict ~dict s, s))
        (0, "") chunks
    in
    float_of_int wire /. float_of_int total
  end
