(** Ordered map over a runtime comparator.

    The shared always-sorted structure behind the stores' scoped
    enumeration and the flow table's key dedup: a height-balanced tree
    (stdlib [Map] balancing) in a mutable cell, so updates are O(log n)
    in place while enumeration is an in-order walk — the exact order
    [List.sort cmp] used to produce, without a per-query sort. The tree
    itself is persistent: a walk in progress is unaffected by later
    [set]/[remove] on the container. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> ('k, 'v) t
val set : ('k, 'v) t -> 'k -> 'v -> unit
val remove : ('k, 'v) t -> 'k -> unit
val find_opt : ('k, 'v) t -> 'k -> 'v option

val fold_asc : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Ascending key order: leftmost binding is combined first. *)

val fold_desc : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Descending key order — prepending under this fold yields an
    ascending list with no sort and no reversal. *)

val iter_asc : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val cardinal : ('k, 'v) t -> int
val to_alist : ('k, 'v) t -> ('k * 'v) list
val is_empty : ('k, 'v) t -> bool

val sort_uniq : cmp:('k -> 'k -> int) -> 'k list -> 'k list
(** [List.sort_uniq cmp] via the same tree, for small key lists that
    need deduplicated ordered enumeration. *)
