module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let min t = t.min
  let max t = t.max

  let stddev t =
    if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f" t.count
      (mean t) t.min t.max (stddev t)

  (* Chan et al.'s parallel-variance combine: folding [b] into [a] gives
     the same count/mean/m2 as if every sample had been added to [a]. *)
  let merge a b =
    if b.count > 0 then
      if a.count = 0 then begin
        a.count <- b.count;
        a.mean <- b.mean;
        a.m2 <- b.m2;
        a.min <- b.min;
        a.max <- b.max
      end
      else begin
        let na = float_of_int a.count and nb = float_of_int b.count in
        let n = na +. nb in
        let delta = b.mean -. a.mean in
        a.m2 <- a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
        a.mean <- a.mean +. (delta *. nb /. n);
        a.count <- a.count + b.count;
        if b.min < a.min then a.min <- b.min;
        if b.max > a.max then a.max <- b.max
      end
end

module Histogram = struct
  (* Fixed log-spaced buckets: [per_decade] buckets per decade from [lo]
     up, plus an underflow bucket 0 (x <= lo) and a final catch-all.
     Every histogram shares the one bucket layout, so [merge] is always
     an elementwise sum — no resampling, no retained sample lists. *)
  let per_decade = 8
  let decades = 21
  let lo = 1e-9
  let nbuckets = (per_decade * decades) + 2

  type t = {
    mutable count : int;
    mutable sum : float;
    mutable mn : float;
    mutable mx : float;
    buckets : int array;
  }

  let create () =
    {
      count = 0;
      sum = 0.0;
      mn = infinity;
      mx = neg_infinity;
      buckets = Array.make nbuckets 0;
    }

  let bucket_of x =
    if x <= lo then 0
    else begin
      let i = 1 + int_of_float (log10 (x /. lo) *. float_of_int per_decade) in
      if i >= nbuckets then nbuckets - 1 else i
    end

  let add t x =
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x;
    let i = bucket_of x in
    t.buckets.(i) <- t.buckets.(i) + 1

  let count t = t.count
  let sum t = t.sum
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
  let min t = t.mn
  let max t = t.mx

  (* Geometric midpoint of bucket [i], clamped into the observed range
     so tail quantiles never exceed the true extremes. *)
  let representative t i =
    let v =
      if i = 0 then lo
      else lo *. (10.0 ** ((float_of_int i -. 0.5) /. float_of_int per_decade))
    in
    Stdlib.min t.mx (Stdlib.max t.mn v)

  let quantile t p =
    if t.count = 0 then 0.0
    else begin
      let rank =
        let r = int_of_float (ceil (p *. float_of_int t.count)) in
        Stdlib.max 1 (Stdlib.min t.count r)
      in
      let i = ref 0 and seen = ref 0 in
      while !seen < rank && !i < nbuckets do
        seen := !seen + t.buckets.(!i);
        incr i
      done;
      representative t (!i - 1)
    end

  let merge a b =
    if b.count > 0 then begin
      a.count <- a.count + b.count;
      a.sum <- a.sum +. b.sum;
      if b.mn < a.mn then a.mn <- b.mn;
      if b.mx > a.mx then a.mx <- b.mx;
      for i = 0 to nbuckets - 1 do
        a.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
      done
    end

  (* Worst-case multiplicative error of [quantile] against an exact
     nearest-rank percentile over the same samples: one bucket width. *)
  let relative_error = 10.0 ** (1.0 /. float_of_int per_decade)
end

module Reservoir = struct
  type t = { mutable samples : float list; mutable count : int }

  let create () = { samples = []; count = 0 }

  let add t x =
    t.samples <- x :: t.samples;
    t.count <- t.count + 1

  let count t = t.count

  let percentile t p =
    if t.count = 0 then 0.0
    else begin
      let arr = Array.of_list t.samples in
      (* Float.compare, not polymorphic compare: an order of magnitude
         cheaper per comparison and totally ordered under NaN. *)
      Array.sort Float.compare arr;
      let rank = int_of_float (ceil (p *. float_of_int t.count)) - 1 in
      let rank = Stdlib.max 0 (Stdlib.min (t.count - 1) rank) in
      arr.(rank)
    end

  let mean t =
    if t.count = 0 then 0.0
    else List.fold_left ( +. ) 0.0 t.samples /. float_of_int t.count

  let max t = List.fold_left Stdlib.max neg_infinity t.samples
  let to_list t = List.rev t.samples
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr ?(by = 1) t = t.v <- t.v + by
  let get t = t.v
end
