module Summary = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then 0.0 else t.mean
  let min t = t.min
  let max t = t.max

  let stddev t =
    if t.count < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.count - 1))

  let pp ppf t =
    Format.fprintf ppf "n=%d mean=%.3f min=%.3f max=%.3f sd=%.3f" t.count
      (mean t) t.min t.max (stddev t)
end

module Reservoir = struct
  type t = { mutable samples : float list; mutable count : int }

  let create () = { samples = []; count = 0 }

  let add t x =
    t.samples <- x :: t.samples;
    t.count <- t.count + 1

  let count t = t.count

  let percentile t p =
    if t.count = 0 then 0.0
    else begin
      let arr = Array.of_list t.samples in
      (* Float.compare, not polymorphic compare: an order of magnitude
         cheaper per comparison and totally ordered under NaN. *)
      Array.sort Float.compare arr;
      let rank = int_of_float (ceil (p *. float_of_int t.count)) - 1 in
      let rank = Stdlib.max 0 (Stdlib.min (t.count - 1) rank) in
      arr.(rank)
    end

  let mean t =
    if t.count = 0 then 0.0
    else List.fold_left ( +. ) 0.0 t.samples /. float_of_int t.count

  let max t = List.fold_left Stdlib.max neg_infinity t.samples
  let to_list t = List.rev t.samples
end

module Counter = struct
  type t = { mutable v : int }

  let create () = { v = 0 }
  let incr ?(by = 1) t = t.v <- t.v + by
  let get t = t.v
end
