(** A small LZ77-style compressor.

    Used for the §8.3 compression experiment: the controller optionally
    compresses serialized state chunks before transfer. The format is a
    simple token stream (literal runs and back-references); it is a real
    codec — [decompress (compress s) = s] — so measured ratios on
    serialized NF state are genuine, not modelled. *)

val compress : string -> string
val decompress : string -> string
(** Raises [Invalid_argument] on malformed input. *)

val compress_length : string -> int
(** [String.length (compress s)] computed by the same greedy parse
    without materializing the output — the allocation-free path for
    wire-size accounting. *)

val ratio : string -> float
(** [ratio s] is [compressed_size / original_size] (1.0 for empty). *)

val wire_size_with_dict : dict:string -> string -> int
(** Bytes [s] adds to a compressed stream whose window already contains
    [dict]: [|compress (dict ^ s)| - |compress dict|], floored at a small
    token minimum. Models streaming (socket-level) compression, where
    redundancy {e across} state chunks is exploited. *)

val stream_ratio : string list -> float
(** Compressed/original ratio of a whole sequence of chunks sent through
    one compressed stream (each chunk using its predecessor as
    dictionary). *)
