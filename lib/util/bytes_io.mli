(** Binary writer/reader for the state codec.

    Little-endian fixed-width integers plus length-prefixed strings. The
    reader raises [Decode_error] (never [Invalid_argument]) on malformed
    input so callers can distinguish protocol errors from bugs. *)

exception Decode_error of string

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t

  val with_scratch : (t -> 'a) -> 'a
  (** Run [f] with a cleared, reusable writer (one per domain) — the
      allocation-light path for high-rate encodes. The writer is only
      valid during [f]; take [contents] before returning. Nested calls
      fall back to a fresh writer. *)

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit
  val int : t -> int -> unit
  (** Full OCaml int, stored as 64 bits. *)

  val f64 : t -> float -> unit
  val bool : t -> bool -> unit
  val string : t -> string -> unit
  (** u32 length prefix + bytes. *)

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** u32 count prefix, then each element via the callback. *)

  val contents : t -> string
  val length : t -> int
end

module Reader : sig
  type t

  val of_string : string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int : t -> int
  val f64 : t -> float
  val bool : t -> bool
  val string : t -> string
  val list : t -> (unit -> 'a) -> 'a list
  val at_end : t -> bool
end
