(** Flat-memory slab arena: fixed-stride unboxed rows, int handles.

    Rows live in [Bytes] slabs the GC never traverses, so holding a
    million rows adds nothing to marking cost. Handles are
    generation-stamped: every accessor validates its handle and raises
    [Invalid_argument] on a handle that was freed (or whose row was
    reused off the free list) — dangling state is an error, never a
    silent misread. *)

type handle = int
(** Packed (generation, row index). Treat as opaque; [null] and any
    freed handle are rejected by every accessor. *)

val null : handle
(** A handle no arena ever issues; useful as an "absent" sentinel in
    unboxed contexts where [option] would allocate. *)

type t

val create : stride:int -> unit -> t
(** [create ~stride ()] makes an arena of [stride]-byte rows
    ([stride >= 8]; the free list is threaded through the first 8 bytes
    of freed rows). *)

val stride : t -> int

val alloc : t -> handle
(** Claim a row (zero-filled), reusing the most recently freed row
    first. O(1) amortized; growth adds a fixed-size slab, never copies
    row storage. *)

val free : t -> handle -> unit
(** Return a row to the free list. The handle (and any copy of it)
    becomes invalid immediately. *)

val is_live : t -> handle -> bool
val live : t -> int
val capacity : t -> int

val iter_live : t -> (handle -> unit) -> unit
(** Live rows in ascending row-index order (deterministic, independent
    of allocation/free history). *)

(** {1 Typed field accessors}

    [off] is a byte offset within the row; the caller owns the layout.
    Integer accessors are box-free; [f64] round-trips exact IEEE bits. *)

val get_u8 : t -> handle -> int -> int
val set_u8 : t -> handle -> int -> int -> unit
val get_u16 : t -> handle -> int -> int
val set_u16 : t -> handle -> int -> int -> unit
val get_u32 : t -> handle -> int -> int
val set_u32 : t -> handle -> int -> int -> unit

val get_int : t -> handle -> int -> int
(** Full 63-bit OCaml int in 8 bytes (sign-preserving). *)

val set_int : t -> handle -> int -> int -> unit
val get_f64 : t -> handle -> int -> float
val set_f64 : t -> handle -> int -> float -> unit
