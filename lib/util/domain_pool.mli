(** A small domain pool for the bench harness.

    Runs independent, fully-seeded scenarios in parallel, one scenario
    per domain at a time. Each task runs entirely within a single
    domain, so scenario-internal determinism (simulation engine, RNG
    streams, domain-local scratch buffers) is untouched — parallelism
    only changes which wall-clock core a scenario occupies. *)

val default_domains : unit -> int
(** The runtime's recommended domain count (at least 1). *)

val run : ?domains:int -> (unit -> 'a) array -> 'a array
(** [run tasks] evaluates every thunk and returns their results in task
    order. [domains] caps the pool size (default
    {!default_domains}, never more than there are tasks). An exception
    in any task is re-raised after all domains finish. *)
