(** A small domain pool for the bench harness.

    Runs independent, fully-seeded scenarios in parallel, one scenario
    per domain at a time. Each task runs entirely within a single
    domain, so scenario-internal determinism (simulation engine, RNG
    streams, domain-local scratch buffers) is untouched — parallelism
    only changes which wall-clock core a scenario occupies. *)

val default_domains : unit -> int
(** Usable domain count (at least 1): the runtime's recommendation,
    capped by the process CPU affinity mask when the kernel exposes it
    — a cpuset-restricted process gets the domains it can actually
    run, not the machine's core count. *)

val pool_size : ?domains:int -> tasks:int -> unit -> int
(** The pool size {!run} will use for [tasks] thunks under the same
    [domains] argument (0 when there are no tasks). Lets callers report
    real parallelism and skip pool-vs-serial comparisons when the
    answer is 1 (tasks then run inline, with no dispatch overhead). *)

val run : ?domains:int -> (unit -> 'a) array -> 'a array
(** [run tasks] evaluates every thunk and returns their results in task
    order. [domains] caps the pool size (default
    {!default_domains}, never more than there are tasks). An exception
    in any task is re-raised after all domains finish. *)

(** Persistent pinned workers: spawn once, submit many rounds.

    For callers that dispatch thousands of tiny synchronous rounds
    (the parallel-DES epoch loop), where a [Domain.spawn] per round
    would dwarf the work. Worker 0 is the calling domain itself, so a
    pool of size [n] spawns [n - 1] helper domains; worker [w] always
    runs on the same domain, which keeps any domain-local state (and
    effect-handler continuations captured inside a worker's share)
    on one consistent domain across rounds. *)
module Workers : sig
  type t

  val create : ?domains:int -> unit -> t
  (** Spawn the helpers now. [domains] caps the pool size (default
      {!default_domains}; minimum 1 — a size-1 pool spawns nothing and
      {!run} degenerates to an inline call). *)

  val size : t -> int
  (** Number of workers, including the caller's domain as worker 0. *)

  val run : t -> (int -> unit) -> unit
  (** [run t f] executes [f w] on every worker [w] (0 inclusive) and
      returns when all have finished. The atomics protecting the round
      hand-off give the usual happens-before edges: writes made before
      [run] are visible to every worker, and writes made by workers are
      visible to the caller after [run] returns. Helpers spin briefly
      between rounds, then block — an idle pool costs no CPU. *)

  val shutdown : t -> unit
  (** Stop and join the helper domains. Idempotent. Required before the
      process can spawn unrelated domains past the runtime's limit —
      don't leak pools in loops that create many of them. *)
end
