(** A small domain pool for the bench harness.

    Runs independent, fully-seeded scenarios in parallel, one scenario
    per domain at a time. Each task runs entirely within a single
    domain, so scenario-internal determinism (simulation engine, RNG
    streams, domain-local scratch buffers) is untouched — parallelism
    only changes which wall-clock core a scenario occupies. *)

val default_domains : unit -> int
(** Usable domain count (at least 1): the runtime's recommendation,
    capped by the process CPU affinity mask when the kernel exposes it
    — a cpuset-restricted process gets the domains it can actually
    run, not the machine's core count. *)

val pool_size : ?domains:int -> tasks:int -> unit -> int
(** The pool size {!run} will use for [tasks] thunks under the same
    [domains] argument (0 when there are no tasks). Lets callers report
    real parallelism and skip pool-vs-serial comparisons when the
    answer is 1 (tasks then run inline, with no dispatch overhead). *)

val run : ?domains:int -> (unit -> 'a) array -> 'a array
(** [run tasks] evaluates every thunk and returns their results in task
    order. [domains] caps the pool size (default
    {!default_domains}, never more than there are tasks). An exception
    in any task is re-raised after all domains finish. *)
