(* Ordered map over a runtime comparator — the shared always-sorted
   structure behind every store's scoped enumeration (and the flow
   table's key dedup). A height-balanced tree in the style of the
   stdlib [Map] keeps updates O(log n) while enumeration is an in-order
   walk: callers get the exact order [List.sort cmp] used to produce,
   without materializing and re-sorting on every query.

   The container is a mutable cell around a persistent tree, so stores
   mutate it in place alongside their hash tables; the tree itself is
   immutable and safe to walk while the container is later updated. *)

type ('k, 'v) tree =
  | Empty
  | Node of {
      l : ('k, 'v) tree;
      k : 'k;
      v : 'v;
      r : ('k, 'v) tree;
      h : int;
    }

type ('k, 'v) t = { cmp : 'k -> 'k -> int; mutable root : ('k, 'v) tree }

let create ~cmp = { cmp; root = Empty }
let height = function Empty -> 0 | Node n -> n.h

let mk l k v r =
  Node { l; k; v; r; h = 1 + Stdlib.max (height l) (height r) }

let bal l k v r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    | Empty -> invalid_arg "Omap.bal"
    | Node { l = ll; k = lk; v = lv; r = lr; _ } ->
      if height ll >= height lr then mk ll lk lv (mk lr k v r)
      else (
        match lr with
        | Empty -> invalid_arg "Omap.bal"
        | Node { l = lrl; k = lrk; v = lrv; r = lrr; _ } ->
          mk (mk ll lk lv lrl) lrk lrv (mk lrr k v r))
  else if hr > hl + 2 then
    match r with
    | Empty -> invalid_arg "Omap.bal"
    | Node { l = rl; k = rk; v = rv; r = rr; _ } ->
      if height rr >= height rl then mk (mk l k v rl) rk rv rr
      else (
        match rl with
        | Empty -> invalid_arg "Omap.bal"
        | Node { l = rll; k = rlk; v = rlv; r = rlr; _ } ->
          mk (mk l k v rll) rlk rlv (mk rlr rk rv rr))
  else mk l k v r

let rec add_tree cmp x data = function
  | Empty -> Node { l = Empty; k = x; v = data; r = Empty; h = 1 }
  | Node { l; k; v; r; h } as t ->
    let c = cmp x k in
    if c = 0 then if v == data then t else Node { l; k = x; v = data; r; h }
    else if c < 0 then
      let l' = add_tree cmp x data l in
      if l == l' then t else bal l' k v r
    else
      let r' = add_tree cmp x data r in
      if r == r' then t else bal l k v r'

let rec min_binding = function
  | Empty -> invalid_arg "Omap.min_binding"
  | Node { l = Empty; k; v; _ } -> (k, v)
  | Node { l; _ } -> min_binding l

let rec remove_min_binding = function
  | Empty -> invalid_arg "Omap.remove_min_binding"
  | Node { l = Empty; r; _ } -> r
  | Node { l; k; v; r; _ } -> bal (remove_min_binding l) k v r

let merge_trees t1 t2 =
  match (t1, t2) with
  | Empty, t | t, Empty -> t
  | _, _ ->
    let k, v = min_binding t2 in
    bal t1 k v (remove_min_binding t2)

let rec remove_tree cmp x = function
  | Empty -> Empty
  | Node { l; k; v; r; _ } as t ->
    let c = cmp x k in
    if c = 0 then merge_trees l r
    else if c < 0 then
      let l' = remove_tree cmp x l in
      if l == l' then t else bal l' k v r
    else
      let r' = remove_tree cmp x r in
      if r == r' then t else bal l k v r'

let set t k v = t.root <- add_tree t.cmp k v t.root
let remove t k = t.root <- remove_tree t.cmp k t.root

let find_opt t x =
  let rec go = function
    | Empty -> None
    | Node { l; k; v; r; _ } ->
      let c = t.cmp x k in
      if c = 0 then Some v else go (if c < 0 then l else r)
  in
  go t.root

let rec fold_asc_tree f tree acc =
  match tree with
  | Empty -> acc
  | Node { l; k; v; r; _ } -> fold_asc_tree f r (f k v (fold_asc_tree f l acc))

let rec fold_desc_tree f tree acc =
  match tree with
  | Empty -> acc
  | Node { l; k; v; r; _ } -> fold_desc_tree f l (f k v (fold_desc_tree f r acc))

(* Ascending key order: leftmost binding is combined first. *)
let fold_asc f t init = fold_asc_tree f t.root init

(* Descending key order — prepending under this fold yields an
   ascending list with no sort and no reversal. *)
let fold_desc f t init = fold_desc_tree f t.root init

let iter_asc f t = fold_asc (fun k v () -> f k v) t ()
let cardinal t = fold_asc (fun _ _ n -> n + 1) t 0
let to_alist t = fold_desc (fun k v acc -> (k, v) :: acc) t []
let is_empty t = t.root = Empty

(* [List.sort_uniq cmp] via the same tree: used where small key lists
   need deduplicated ordered enumeration (e.g. flow-table exact keys). *)
let sort_uniq ~cmp keys =
  let tree =
    List.fold_left (fun acc k -> add_tree cmp k () acc) Empty keys
  in
  fold_desc_tree (fun k () acc -> k :: acc) tree []
