exception Decode_error of string

let fail msg = raise (Decode_error msg)

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity

  (* Reusable encode scratch: chunk serialization on the get/put fast
     path runs millions of times per scenario, and a fresh [Buffer] per
     chunk (plus its internal growth copies) is pure minor-heap
     garbage. Each domain owns one scratch buffer; [with_scratch] hands
     it out cleared, and nested use (an encode inside an encode) falls
     back to a fresh buffer so reuse can never alias. *)
  type scratch = { buf : Buffer.t; mutable in_use : bool }

  let scratch_key =
    Domain.DLS.new_key (fun () -> { buf = Buffer.create 4096; in_use = false })

  let with_scratch f =
    let s = Domain.DLS.get scratch_key in
    if s.in_use then f (Buffer.create 256)
    else begin
      s.in_use <- true;
      Buffer.clear s.buf;
      Fun.protect ~finally:(fun () -> s.in_use <- false) (fun () -> f s.buf)
    end

  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t (v land 0xFFFF);
    u16 t ((v lsr 16) land 0xFFFF)

  let i64 t v =
    (* Split once into two 32-bit halves instead of boxing a shifted
       Int64 per byte. *)
    u32 t (Int64.to_int (Int64.logand v 0xFFFF_FFFFL));
    u32 t (Int64.to_int (Int64.shift_right_logical v 32))

  (* Same wire bytes as [i64 (Int64.of_int v)] — arithmetic shifts
     sign-extend exactly like the Int64 widening — with no boxing. *)
  let int t v =
    u8 t v;
    u8 t (v asr 8);
    u8 t (v asr 16);
    u8 t (v asr 24);
    u8 t (v asr 32);
    u8 t (v asr 40);
    u8 t (v asr 48);
    u8 t (v asr 56)

  let f64 t v = i64 t (Int64.bits_of_float v)
  let bool t v = u8 t (if v then 1 else 0)

  let string t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let list t f xs =
    u32 t (List.length xs);
    List.iter f xs

  let contents = Buffer.contents
  let length = Buffer.length
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }

  let u8 t =
    if t.pos >= String.length t.src then fail "u8: past end";
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let lo = u8 t in
    let hi = u8 t in
    lo lor (hi lsl 8)

  let u32 t =
    let lo = u16 t in
    let hi = u16 t in
    lo lor (hi lsl 16)

  let i64 t =
    let lo = u32 t in
    let hi = u32 t in
    Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 32)

  (* Box-free inverse of [Writer.int]: byte 7's high bits fall off the
     63-bit int exactly as [Int64.to_int] would drop them. *)
  let int t =
    let b0 = u8 t in
    let b1 = u8 t in
    let b2 = u8 t in
    let b3 = u8 t in
    let b4 = u8 t in
    let b5 = u8 t in
    let b6 = u8 t in
    let b7 = u8 t in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24) lor (b4 lsl 32)
    lor (b5 lsl 40) lor (b6 lsl 48) lor (b7 lsl 56)

  let f64 t = Int64.float_of_bits (i64 t)

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | n -> fail (Printf.sprintf "bool: bad byte %d" n)

  let string t =
    let len = u32 t in
    if t.pos + len > String.length t.src then fail "string: past end";
    let s = String.sub t.src t.pos len in
    t.pos <- t.pos + len;
    s

  let list t f =
    let n = u32 t in
    List.init n (fun _ -> f ())

  let at_end t = t.pos = String.length t.src
end
