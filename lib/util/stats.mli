(** Online statistics accumulators used by the measurement harness. *)

module Summary : sig
  type t
  (** Streaming summary: count, mean (Welford), min, max, variance. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val stddev : t -> float
  val pp : Format.formatter -> t -> unit

  val merge : t -> t -> unit
  (** [merge a b] folds [b]'s samples into [a] (count, mean, variance,
      min, max) exactly as if they had been [add]ed to [a]. [b] is
      unchanged. *)
end

module Histogram : sig
  type t
  (** Streaming histogram over fixed log-spaced buckets (8 per decade
      from 1e-9). Constant memory regardless of sample count — the
      million-flow replacement for keeping a {!Reservoir} around — and
      every instance shares the one bucket layout, so histograms merge
      bucketwise. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int

  val sum : t -> float
  (** Exact running sum of every sample added, in addition order — the
      float you get by folding [+.] over the observations yourself, so
      external per-item totals can be reconciled against it exactly. *)

  val mean : t -> float
  (** Exact (from a running sum), not bucket-approximated. 0 if empty. *)

  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val quantile : t -> float -> float
  (** [quantile t 0.99]: nearest-rank over the buckets; the answer is
      the matched bucket's geometric midpoint clamped to the observed
      min/max, so it is within {!relative_error} (multiplicative) of the
      exact sample percentile. 0 when empty. *)

  val merge : t -> t -> unit
  (** [merge a b] adds [b]'s buckets into [a]; [b] is unchanged. *)

  val relative_error : float
  (** Worst-case ratio between {!quantile} and the exact nearest-rank
      percentile of the same samples (one bucket width, ~1.33). *)
end

module Reservoir : sig
  type t
  (** Keeps all samples; supports exact percentiles. Intended for the
      bounded sample counts of simulation experiments. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t 0.99]; nearest-rank on the sorted samples. 0 when
      empty. *)

  val mean : t -> float
  val max : t -> float
  val to_list : t -> float list
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val get : t -> int
end
