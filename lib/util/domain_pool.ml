(* A small work-stealing-free domain pool for the bench harness: run
   independent, fully-seeded scenarios in parallel, one scenario per
   domain at a time. Each task runs entirely within a single domain, so
   scenario-internal determinism (simulation engine, RNG streams,
   domain-local scratch buffers) is untouched — parallelism only
   changes which wall-clock core a scenario occupies.

   Tasks are claimed from a shared atomic counter; results land in
   per-task slots, and [Domain.join] publishes them to the caller. An
   exception in any task is re-raised after all domains finish. *)

(* The runtime's recommendation can exceed what the process may
   actually use (containers and cpusets restrict affinity without
   shrinking the machine), and spawning domains that must time-share
   one core is pure overhead. Cross-check against the kernel's
   affinity mask when it is readable. *)
let affinity_cpus () =
  let count_list spec =
    (* "0-2,4" — comma-separated single CPUs or inclusive ranges. *)
    try
      let n =
        String.split_on_char ',' (String.trim spec)
        |> List.fold_left
             (fun acc part ->
               match String.index_opt part '-' with
               | None -> acc + 1
               | Some i ->
                 let lo = int_of_string (String.sub part 0 i) in
                 let hi =
                   int_of_string
                     (String.sub part (i + 1) (String.length part - i - 1))
                 in
                 acc + hi - lo + 1)
             0
      in
      if n > 0 then Some n else None
    with Failure _ -> None
  in
  let tag = "Cpus_allowed_list:" in
  let tag_len = String.length tag in
  match
    In_channel.with_open_text "/proc/self/status" (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> None
          | Some l when String.length l > tag_len && String.sub l 0 tag_len = tag
            ->
            count_list (String.sub l tag_len (String.length l - tag_len))
          | Some _ -> scan ()
        in
        scan ())
  with
  | exception Sys_error _ -> None
  | r -> r

let default_domains () =
  let rec_count = Domain.recommended_domain_count () in
  let usable =
    match affinity_cpus () with
    | Some cpus -> Stdlib.min rec_count cpus
    | None -> rec_count
  in
  Stdlib.max 1 usable

(* The pool size [run ?domains tasks] will actually use — exposed so
   callers (the benches) can report real parallelism instead of what
   they asked for, and skip pool-vs-serial comparisons that would
   measure nothing. *)
let pool_size ?domains ~tasks () =
  if tasks = 0 then 0
  else
    Stdlib.max 1
      (Stdlib.min tasks
         (match domains with Some d -> d | None -> default_domains ()))

(* [run ?domains tasks] evaluates every thunk and returns their results
   in task order. [domains] caps the pool size (default: the runtime's
   recommended domain count, never more than there are tasks). With a
   one-domain pool there is nothing to dispatch: tasks run inline with
   no atomics, no spawns and no join. *)
let run ?domains (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  let pool = pool_size ?domains ~tasks:n () in
  if n = 0 then [||]
  else if pool = 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (tasks.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let helpers = Array.init (pool - 1) (fun _ -> Domain.spawn worker) in
    let first_exn = ref None in
    (try worker () with e -> first_exn := Some e);
    Array.iter
      (fun d ->
        try Domain.join d
        with e -> if Option.is_none !first_exn then first_exn := Some e)
      helpers;
    (match !first_exn with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> failwith "Domain_pool.run: missing result")
      results
  end
