(* A small work-stealing-free domain pool for the bench harness: run
   independent, fully-seeded scenarios in parallel, one scenario per
   domain at a time. Each task runs entirely within a single domain, so
   scenario-internal determinism (simulation engine, RNG streams,
   domain-local scratch buffers) is untouched — parallelism only
   changes which wall-clock core a scenario occupies.

   Tasks are claimed from a shared atomic counter; results land in
   per-task slots, and [Domain.join] publishes them to the caller. An
   exception in any task is re-raised after all domains finish. *)

let default_domains () = Stdlib.max 1 (Domain.recommended_domain_count ())

(* [run ?domains tasks] evaluates every thunk and returns their results
   in task order. [domains] caps the pool size (default: the runtime's
   recommended domain count, never more than there are tasks). *)
let run ?domains (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  let pool =
    Stdlib.max 1
      (Stdlib.min n (match domains with Some d -> d | None -> default_domains ()))
  in
  if n = 0 then [||]
  else if pool = 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (tasks.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let helpers = Array.init (pool - 1) (fun _ -> Domain.spawn worker) in
    let first_exn = ref None in
    (try worker () with e -> first_exn := Some e);
    Array.iter
      (fun d ->
        try Domain.join d
        with e -> if Option.is_none !first_exn then first_exn := Some e)
      helpers;
    (match !first_exn with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> failwith "Domain_pool.run: missing result")
      results
  end
