(* A small work-stealing-free domain pool for the bench harness: run
   independent, fully-seeded scenarios in parallel, one scenario per
   domain at a time. Each task runs entirely within a single domain, so
   scenario-internal determinism (simulation engine, RNG streams,
   domain-local scratch buffers) is untouched — parallelism only
   changes which wall-clock core a scenario occupies.

   Tasks are claimed from a shared atomic counter; results land in
   per-task slots, and [Domain.join] publishes them to the caller. An
   exception in any task is re-raised after all domains finish. *)

(* The runtime's recommendation can exceed what the process may
   actually use (containers and cpusets restrict affinity without
   shrinking the machine), and spawning domains that must time-share
   one core is pure overhead. Cross-check against the kernel's
   affinity mask when it is readable. *)
let affinity_cpus () =
  let count_list spec =
    (* "0-2,4" — comma-separated single CPUs or inclusive ranges. *)
    try
      let n =
        String.split_on_char ',' (String.trim spec)
        |> List.fold_left
             (fun acc part ->
               match String.index_opt part '-' with
               | None -> acc + 1
               | Some i ->
                 let lo = int_of_string (String.sub part 0 i) in
                 let hi =
                   int_of_string
                     (String.sub part (i + 1) (String.length part - i - 1))
                 in
                 acc + hi - lo + 1)
             0
      in
      if n > 0 then Some n else None
    with Failure _ -> None
  in
  let tag = "Cpus_allowed_list:" in
  let tag_len = String.length tag in
  match
    In_channel.with_open_text "/proc/self/status" (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> None
          | Some l when String.length l > tag_len && String.sub l 0 tag_len = tag
            ->
            count_list (String.sub l tag_len (String.length l - tag_len))
          | Some _ -> scan ()
        in
        scan ())
  with
  | exception Sys_error _ -> None
  | r -> r

let default_domains () =
  let rec_count = Domain.recommended_domain_count () in
  let usable =
    match affinity_cpus () with
    | Some cpus -> Stdlib.min rec_count cpus
    | None -> rec_count
  in
  Stdlib.max 1 usable

(* The pool size [run ?domains tasks] will actually use — exposed so
   callers (the benches) can report real parallelism instead of what
   they asked for, and skip pool-vs-serial comparisons that would
   measure nothing. *)
let pool_size ?domains ~tasks () =
  if tasks = 0 then 0
  else
    Stdlib.max 1
      (Stdlib.min tasks
         (match domains with Some d -> d | None -> default_domains ()))

(* --- persistent workers -------------------------------------------------- *)

(* Spawn-once / submit-many workers for callers that dispatch many tiny
   rounds (the parallel-DES epoch loop steps engines thousands of times
   per run; paying Domain.spawn per round would dwarf the work). The
   caller's own domain doubles as worker 0, so [size] workers cost
   [size - 1] spawned domains.

   Each helper owns a slot with a published epoch counter: the caller
   writes the job, bumps [go], and the helper (spinning briefly, then
   blocking on a condvar) runs it and bumps [done_]. Atomics give the
   happens-before edges for the job closure and everything it touches;
   the mutex/condvar pair only arbitrates sleep/wake. *)
module Workers = struct
  type slot = {
    mutable job : int -> unit;
    go : int Atomic.t; (* epoch the helper should run next *)
    done_ : int Atomic.t; (* last epoch the helper completed *)
    m : Mutex.t;
    cv : Condition.t;
    mutable helper_asleep : bool;
    mutable caller_asleep : bool;
  }

  type t = {
    size : int;
    slots : slot array; (* size - 1 helpers; index w-1 drives worker w *)
    domains : unit Domain.t array;
    mutable epoch : int;
    mutable live : bool;
  }

  let spin_budget = 2_000

  let helper_loop slot w =
    let epoch = ref 1 in
    let continue = ref true in
    while !continue do
      (* Wait for [go] to reach our epoch: spin, then block. *)
      let spins = ref 0 in
      while Atomic.get slot.go < !epoch && !spins < spin_budget do
        Domain.cpu_relax ();
        incr spins
      done;
      if Atomic.get slot.go < !epoch then begin
        Mutex.lock slot.m;
        while Atomic.get slot.go < !epoch do
          slot.helper_asleep <- true;
          Condition.wait slot.cv slot.m
        done;
        slot.helper_asleep <- false;
        Mutex.unlock slot.m
      end;
      let j = slot.job in
      if j == ignore then continue := false
      else begin
        (try j w
         with e ->
           (* Parallel engine windows never raise in normal operation;
              anything else is a bug we must not swallow silently. *)
           prerr_endline
             ("Domain_pool.Workers: worker raised " ^ Printexc.to_string e));
        ()
      end;
      Atomic.set slot.done_ !epoch;
      Mutex.lock slot.m;
      if slot.caller_asleep then Condition.broadcast slot.cv;
      Mutex.unlock slot.m;
      incr epoch
    done

  let create ?domains () =
    let size =
      Stdlib.max 1
        (match domains with Some d -> d | None -> default_domains ())
    in
    let slots =
      Array.init (size - 1) (fun _ ->
          {
            job = ignore;
            go = Atomic.make 0;
            done_ = Atomic.make 0;
            m = Mutex.create ();
            cv = Condition.create ();
            helper_asleep = false;
            caller_asleep = false;
          })
    in
    let domains =
      Array.mapi (fun i slot -> Domain.spawn (fun () -> helper_loop slot (i + 1)))
        slots
    in
    { size; slots; domains; epoch = 0; live = true }

  let size t = t.size

  let post t f =
    t.epoch <- t.epoch + 1;
    Array.iter
      (fun slot ->
        slot.job <- f;
        Atomic.set slot.go t.epoch;
        Mutex.lock slot.m;
        if slot.helper_asleep then Condition.broadcast slot.cv;
        Mutex.unlock slot.m)
      t.slots

  let await t =
    Array.iter
      (fun slot ->
        let spins = ref 0 in
        while Atomic.get slot.done_ < t.epoch && !spins < spin_budget do
          Domain.cpu_relax ();
          incr spins
        done;
        if Atomic.get slot.done_ < t.epoch then begin
          Mutex.lock slot.m;
          while Atomic.get slot.done_ < t.epoch do
            slot.caller_asleep <- true;
            Condition.wait slot.cv slot.m
          done;
          slot.caller_asleep <- false;
          Mutex.unlock slot.m
        end)
      t.slots

  let run t f =
    if not t.live then invalid_arg "Domain_pool.Workers.run: shut down";
    post t f;
    (* The caller is worker 0 — run its share inline while helpers work. *)
    f 0;
    await t

  let shutdown t =
    if t.live then begin
      t.live <- false;
      post t ignore;
      Array.iter Domain.join t.domains
    end
end

(* [run ?domains tasks] evaluates every thunk and returns their results
   in task order. [domains] caps the pool size (default: the runtime's
   recommended domain count, never more than there are tasks). With a
   one-domain pool there is nothing to dispatch: tasks run inline with
   no atomics, no spawns and no join. *)
let run ?domains (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  let pool = pool_size ?domains ~tasks:n () in
  if n = 0 then [||]
  else if pool = 1 then Array.map (fun f -> f ()) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (tasks.(i) ());
          loop ()
        end
      in
      loop ()
    in
    let helpers = Array.init (pool - 1) (fun _ -> Domain.spawn worker) in
    let first_exn = ref None in
    (try worker () with e -> first_exn := Some e);
    Array.iter
      (fun d ->
        try Domain.join d
        with e -> if Option.is_none !first_exn then first_exn := Some e)
      helpers;
    (match !first_exn with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> failwith "Domain_pool.run: missing result")
      results
  end
