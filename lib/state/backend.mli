(** Pluggable state backends (the FlexState decoupling).

    A backend is where an NF instance's externalized state lives. The
    classic OpenNF model is {!local}: every instance owns in-process
    stores and reallocation means bulk get/put transfer. Decoupling the
    state from the instance enables two cheaper models:

    - {!shared}: several scale-out instances attach to one backend and
      obtain the {e same} store objects from its registry, so a [move]
      between them has nothing to transfer — the operation collapses to
      flow-mods (a metadata flip).
    - {!replicated_pair}: a primary streams per-key deltas to a standby
      over a {!Opennf_net.Channel}, so failover becomes promote-standby
      + reroute with zero bulk transfer at recovery time.

    The backend never interprets state: it moves opaque {!Chunk}s
    labelled with a {!Scope} and a flowid {!Opennf_net.Filter}, exactly
    the southbound currency. The NF runtime wires export/apply callbacks
    from its {!Opennf_sb.Nf_api.impl} and calls {!note_packet} after
    each packet; everything else is backend-internal.

    {2 Delta-frame wire format}

    Frames are seq-numbered and dedup-safe: [seq] increases by one per
    frame; a receiver drops any frame with [seq <= applied_seq] (channel
    duplication is harmless) and counts — but still applies — frames
    that arrive past a gap (each entry is a full-value snapshot of one
    key, so application is idempotent per key and self-healing). An
    entry is [(scope, flowid, chunk option)]; [None] propagates a
    deletion. Frames are cut at a byte budget mirroring the southbound
    [sb_batch_bytes] batching. *)

open Opennf_net

type t

type kind = Local | Shared | Replicated

type role =
  | Sole  (** Local and shared backends. *)
  | Primary  (** Replicated: exports deltas. *)
  | Standby  (** Replicated: applies deltas. *)
  | Promoted  (** A standby that took over; later frames are stale. *)

type stats = {
  frames_sent : int;
  entries_sent : int;
  delta_bytes : int;  (** Wire bytes of every frame sent so far. *)
  frames_applied : int;
  entries_applied : int;
  dup_frames : int;  (** Frames dropped by seq dedup. *)
  gap_frames : int;  (** Frames applied after a sequence gap. *)
  stale_frames : int;  (** Frames arriving after {!promote}. *)
}

val local : ?name:string -> unit -> t
(** In-process backend, the seed behavior: one instance, its own
    stores. Exists so every NF can be constructed over a backend handle
    uniformly; marking/flush entry points are no-ops. *)

val shared : ?name:string -> unit -> t
(** One store registry attached to N scale-out instances: every
    {!get_store} with the same [name] returns the same object. *)

val replicated_pair :
  Opennf_sim.Engine.t ->
  ?name:string ->
  ?latency:float ->
  ?bandwidth:float ->
  ?batch_bytes:int ->
  ?faults:Opennf_sim.Faults.t ->
  unit ->
  t * t
(** [(primary, standby)] joined by a delta channel named
    ["<name>.delta"] (fault-injectable through [faults] under that
    name, like any channel). [latency] defaults to 2 ms (the control
    channel's), [bandwidth] to infinite. [batch_bytes] cuts frames at a
    byte budget; omitted means one frame per flush. *)

val kind : t -> kind
val role : t -> role
val name : t -> string

(** {2 Store registry} *)

val get_store : t -> name:string -> id:'a Type.Id.t -> make:(unit -> 'a) -> 'a
(** First call under [name] stores [make ()]; later calls return that
    same value, which is how instances attached to a {!shared} backend
    end up reading and writing one set of stores. The witness [id] must
    be the one used at first registration ([Invalid_argument]
    otherwise — two NFs colliding on a name is a wiring bug). *)

(** {2 Delta replication}

    All of these are no-ops on [Local]/[Shared] backends, so the NF
    runtime calls them unconditionally. *)

val set_exporter : t -> (Scope.t -> Filter.t -> Chunk.t option) -> unit
(** Primary side: how to serialize one key's current value ([None] =
    the key no longer exists, which propagates as a delete). *)

val set_applier : t -> (Scope.t -> Filter.t -> Chunk.t option -> unit) -> unit
(** Standby side: how to install ([Some]) or delete ([None]) one key. *)

val note : t -> Scope.t -> Filter.t -> unit
(** Mark one key dirty; it is exported at the next {!flush}. Re-marking
    a key already dirty coalesces. *)

val note_packet : t -> Flow.key -> unit
(** The runtime's per-packet hook: marks the packet's flow (Per scope)
    and both endpoint hosts (Multi scope) dirty, then flushes — so the
    delta stream stays as fresh as the packet stream, and replication
    work rides the packet's own service time (no extra virtual-time
    events on the primary). *)

val flush : t -> unit
(** Export every dirty key and send the resulting frame(s). *)

val drain : t -> unit
(** Blocking (call from a process): {!flush}, then wait until the
    standby has applied everything sent. Used by the [move] fast path
    to guarantee the destination is caught up before traffic lands
    there. Returns immediately on non-primary backends. *)

val promote : t -> unit
(** Standby side: take over. Frames still in flight are ignored (and
    counted as [stale_frames]); pending {!drain} waiters are released. *)

(** {2 Routing predicates (used by the operation fast path)} *)

val same_store : t -> t -> bool
(** Physically the same non-replicated backend: src and dst read the
    same stores, a transfer between them has nothing to do. *)

val replica_pair : primary:t -> standby:t -> bool
(** [primary] streams to [standby] (and the standby has not been
    promoted): a transfer from primary to standby only needs {!drain}. *)

val covers : t -> Scope.t -> bool
(** Does the delta stream carry this scope? [Per] and [Multi] do;
    [All] (aggregate counters) does not stream and needs a bulk copy. *)

val stats : t -> stats
(** Counters of the replication link (zeros for non-replicated
    backends). Both ends of a pair report the same link. *)

val delta_bytes : t -> int
(** [ (stats t).delta_bytes ] — convenience for accounting. *)
