module Bytes_io = Opennf_util.Bytes_io
module Lz = Opennf_util.Lz

type t = { kind : string; data : string }

let v ~kind data = { kind; data }
let size t = String.length t.data + String.length t.kind

let encode ~kind build =
  (* Chunk encodes are the serialization fast path: build into the
     domain-local scratch buffer instead of allocating a writer (and
     its growth copies) per chunk. *)
  Bytes_io.Writer.with_scratch (fun w ->
      build w;
      { kind; data = Bytes_io.Writer.contents w })

let reader t = Bytes_io.Reader.of_string t.data

let lz_suffix = "+lz"

let compress t =
  if Filename.check_suffix t.kind lz_suffix then t
  else { kind = t.kind ^ lz_suffix; data = Lz.compress t.data }

let decompress t =
  if Filename.check_suffix t.kind lz_suffix then
    {
      kind = Filename.chop_suffix t.kind lz_suffix;
      data = Lz.decompress t.data;
    }
  else t

let pp ppf t = Format.fprintf ppf "<%s:%dB>" t.kind (String.length t.data)
