module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net

type kind = Local | Shared | Replicated
type role = Sole | Primary | Standby | Promoted

type stats = {
  frames_sent : int;
  entries_sent : int;
  delta_bytes : int;
  frames_applied : int;
  entries_applied : int;
  dup_frames : int;
  gap_frames : int;
  stale_frames : int;
}

let zero_stats =
  {
    frames_sent = 0;
    entries_sent = 0;
    delta_bytes = 0;
    frames_applied = 0;
    entries_applied = 0;
    dup_frames = 0;
    gap_frames = 0;
    stale_frames = 0;
  }

type entry = {
  e_scope : Scope.t;
  e_flowid : Filter.t;
  e_chunk : Chunk.t option;  (* None propagates a deletion. *)
}

type frame_msg = { seq : int; sent_at : float; entries : entry list }

(* Wire-size model of a frame: matches the southbound protocol's framing
   costs so delta traffic and get/put traffic are comparable byte for
   byte (a flowid plus message framing, then the chunk payload). *)
let frame_overhead = 16
let entry_overhead = 32
let entry_size e =
  entry_overhead + match e.e_chunk with None -> 0 | Some c -> Chunk.size c

type binding = B : 'a Type.Id.t * 'a -> binding

type link = {
  engine : Engine.t;
  chan : frame_msg Channel.t;
  batch_bytes : int option;
  mutable sent_seq : int;
  mutable applied_seq : int;
  mutable st : stats;
  mutable waiters : (int * unit Proc.Ivar.t) list;  (* seq awaited *)
  m_bytes : Opennf_obs.Metrics.counter;
  m_frames : Opennf_obs.Metrics.counter;
  m_entries : Opennf_obs.Metrics.counter;
  m_dup : Opennf_obs.Metrics.counter;
  m_lag : Opennf_obs.Metrics.hist;
}

type t = {
  kind : kind;
  name : string;
  stores : (string, binding) Hashtbl.t;
  link : link option;
  mutable role : role;
  mutable peer : t option;
  mutable exporter : (Scope.t -> Filter.t -> Chunk.t option) option;
  mutable applier : (Scope.t -> Filter.t -> Chunk.t option -> unit) option;
  (* Dirty keys pending export, in first-marked order; the tables give
     O(1) coalescing of re-marked keys. *)
  dirty_per : unit Filter.Table.t;
  dirty_multi : unit Filter.Table.t;
  dirty_q : (Scope.t * Filter.t) Queue.t;
  (* Keys the standby has been sent, so a later disappearance at the
     primary is propagated as a delete (and never-sent keys are not). *)
  sent_per : unit Filter.Table.t;
  sent_multi : unit Filter.Table.t;
}

let kind t = t.kind
let role t = t.role
let name t = t.name

let mk ?(name = "backend") kind role link =
  {
    kind;
    name;
    stores = Hashtbl.create 8;
    link;
    role;
    peer = None;
    exporter = None;
    applier = None;
    dirty_per = Filter.Table.create 16;
    dirty_multi = Filter.Table.create 16;
    dirty_q = Queue.create ();
    sent_per = Filter.Table.create 64;
    sent_multi = Filter.Table.create 64;
  }

let local ?name () = mk ?name Local Sole None
let shared ?name () = mk ?name Shared Sole None

(* --- standby side --------------------------------------------------------- *)

let release_waiters l upto =
  let ready, waiting = List.partition (fun (seq, _) -> seq <= upto) l.waiters in
  l.waiters <- waiting;
  List.iter (fun (_, iv) -> Proc.Ivar.fill iv ()) ready

let apply_frame t (fr : frame_msg) =
  match t.link with
  | None -> ()
  | Some l ->
    if t.role = Promoted then l.st <- { l.st with stale_frames = l.st.stale_frames + 1 }
    else if fr.seq <= l.applied_seq then begin
      (* Channel duplication (or a replayed frame): already applied. *)
      l.st <- { l.st with dup_frames = l.st.dup_frames + 1 };
      Opennf_obs.Metrics.incr l.m_dup
    end
    else begin
      if fr.seq > l.applied_seq + 1 then
        l.st <- { l.st with gap_frames = l.st.gap_frames + 1 };
      (match t.applier with
      | None -> ()
      | Some apply ->
        List.iter (fun e -> apply e.e_scope e.e_flowid e.e_chunk) fr.entries);
      l.applied_seq <- fr.seq;
      l.st <-
        {
          l.st with
          frames_applied = l.st.frames_applied + 1;
          entries_applied = l.st.entries_applied + List.length fr.entries;
        };
      Opennf_obs.Metrics.observe l.m_lag (Engine.now l.engine -. fr.sent_at);
      release_waiters l l.applied_seq
    end

let replicated_pair engine ?name ?(latency = 0.002) ?bandwidth ?batch_bytes
    ?faults () =
  let base = Option.value name ~default:"backend" in
  let chan =
    Channel.create engine ~latency ?bandwidth ?faults
      ~name:(base ^ ".delta") ()
  in
  let metrics = Opennf_obs.Hub.metrics (Engine.obs engine) in
  let link =
    {
      engine;
      chan;
      batch_bytes;
      sent_seq = 0;
      applied_seq = 0;
      st = zero_stats;
      waiters = [];
      m_bytes = Opennf_obs.Metrics.counter metrics "backend.delta.bytes";
      m_frames = Opennf_obs.Metrics.counter metrics "backend.delta.frames";
      m_entries = Opennf_obs.Metrics.counter metrics "backend.delta.entries";
      m_dup = Opennf_obs.Metrics.counter metrics "backend.delta.dup_frames";
      m_lag = Opennf_obs.Metrics.hist metrics "backend.delta.lag_s";
    }
  in
  let primary = mk ?name Replicated Primary (Some link) in
  let standby = mk ?name Replicated Standby (Some link) in
  primary.peer <- Some standby;
  standby.peer <- Some primary;
  Channel.set_handler chan (apply_frame standby);
  (primary, standby)

(* --- store registry ------------------------------------------------------- *)

let get_store (type a) t ~name ~(id : a Type.Id.t) ~make : a =
  match Hashtbl.find_opt t.stores name with
  | Some (B (id', v)) -> (
    match Type.Id.provably_equal id' id with
    | Some Type.Equal -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Backend.get_store: %S registered with another type"
           name))
  | None ->
    let v = make () in
    Hashtbl.replace t.stores name (B (id, v));
    v

(* --- primary side --------------------------------------------------------- *)

let set_exporter t f = t.exporter <- Some f
let set_applier t f = t.applier <- Some f

let note t scope flowid =
  if t.role = Primary then begin
    let tbl =
      match (scope : Scope.t) with
      | Scope.Per -> Some t.dirty_per
      | Scope.Multi -> Some t.dirty_multi
      | Scope.All -> None  (* aggregate state does not stream *)
    in
    match tbl with
    | None -> ()
    | Some tbl ->
      if not (Filter.Table.mem tbl flowid) then begin
        Filter.Table.replace tbl flowid ();
        Queue.push (scope, flowid) t.dirty_q
      end
  end

let sent_tbl t = function
  | Scope.Per -> t.sent_per
  | Scope.Multi -> t.sent_multi
  | Scope.All -> assert false

let send_frame l entries_rev =
  match entries_rev with
  | [] -> ()
  | _ ->
    let entries = List.rev entries_rev in
    l.sent_seq <- l.sent_seq + 1;
    let size =
      List.fold_left (fun acc e -> acc + entry_size e) frame_overhead entries
    in
    l.st <-
      {
        l.st with
        frames_sent = l.st.frames_sent + 1;
        entries_sent = l.st.entries_sent + List.length entries;
        delta_bytes = l.st.delta_bytes + size;
      };
    Opennf_obs.Metrics.incr l.m_frames;
    Opennf_obs.Metrics.add l.m_entries (List.length entries);
    Opennf_obs.Metrics.add l.m_bytes size;
    Channel.send l.chan ~size
      { seq = l.sent_seq; sent_at = Engine.now l.engine; entries }

let flush t =
  match (t.role, t.link, t.exporter) with
  | Primary, Some l, Some export ->
    let pending = ref [] in
    let pending_bytes = ref frame_overhead in
    let emit e =
      let sz = entry_size e in
      (match l.batch_bytes with
      | Some budget when !pending <> [] && !pending_bytes + sz > budget ->
        send_frame l !pending;
        pending := [];
        pending_bytes := frame_overhead
      | _ -> ());
      pending := e :: !pending;
      pending_bytes := !pending_bytes + sz
    in
    while not (Queue.is_empty t.dirty_q) do
      let scope, flowid = Queue.pop t.dirty_q in
      let tbl =
        match scope with Scope.Per -> t.dirty_per | _ -> t.dirty_multi
      in
      if Filter.Table.mem tbl flowid then begin
        Filter.Table.remove tbl flowid;
        let sent = sent_tbl t scope in
        match export scope flowid with
        | Some chunk ->
          Filter.Table.replace sent flowid ();
          emit { e_scope = scope; e_flowid = flowid; e_chunk = Some chunk }
        | None ->
          (* Only propagate a delete for keys the standby has seen. *)
          if Filter.Table.mem sent flowid then begin
            Filter.Table.remove sent flowid;
            emit { e_scope = scope; e_flowid = flowid; e_chunk = None }
          end
      end
    done;
    send_frame l !pending
  | _ -> ()

let note_packet t (key : Flow.key) =
  if t.role = Primary then begin
    note t Scope.Per (Filter.of_key key);
    note t Scope.Multi (Filter.of_src_host key.Flow.src_ip);
    note t Scope.Multi (Filter.of_src_host key.Flow.dst_ip);
    flush t
  end

let drain t =
  match (t.role, t.link) with
  | Primary, Some l ->
    flush t;
    if l.applied_seq < l.sent_seq then begin
      let iv = Proc.Ivar.create l.engine in
      l.waiters <- (l.sent_seq, iv) :: l.waiters;
      Proc.Ivar.read iv
    end
  | _ -> ()

let promote t =
  match t.link with
  | Some l when t.role = Standby ->
    t.role <- Promoted;
    release_waiters l max_int
  | _ -> ()

(* --- routing predicates --------------------------------------------------- *)

let same_store a b = a == b && a.kind <> Replicated

let replica_pair ~primary ~standby =
  primary.role = Primary && standby.role = Standby
  && match primary.peer with Some p -> p == standby | None -> false

let covers t scope =
  match t.kind with
  | Local | Shared -> true
  | Replicated -> ( match (scope : Scope.t) with
    | Scope.Per | Scope.Multi -> true
    | Scope.All -> false)

let stats t = match t.link with None -> zero_stats | Some l -> l.st
let delta_bytes t = (stats t).delta_bytes
