module Omap = Opennf_util.Omap
open Opennf_net

(* Deterministic enumeration: results are in key order so simulation
   runs do not depend on hash-table iteration order. Each store pairs a
   hash table (O(1) point lookups on the packet path) with an
   always-sorted mirror ({!Opennf_util.Omap}, O(log n) update), so a
   scoped enumeration is an in-order walk — never materialize-then-sort
   on the query path. The [matching_reference] functions retain the
   original fold-and-sort shape as oracles for the equivalence tests
   (and as the bench baselines). *)

module Perflow = struct
  (* Alongside the canonical-keyed value table, a secondary index maps
     each endpoint address to the set of canonical keys touching it, so
     host- and prefix-scoped getters enumerate candidates instead of
     folding the whole store. *)
  type 'a t = {
    table : 'a Flow.Table.t;
    by_host : (Ipaddr.t, Flow.Set.t ref) Hashtbl.t;
    sorted : (Flow.key, 'a) Omap.t;
  }

  let create () =
    {
      table = Flow.Table.create 64;
      by_host = Hashtbl.create 64;
      sorted = Omap.create ~cmp:Flow.compare;
    }

  let find t k = Flow.Table.find_opt t.table (Flow.canonical k)

  let index_add t ip k =
    match Hashtbl.find_opt t.by_host ip with
    | Some s -> s := Flow.Set.add k !s
    | None -> Hashtbl.replace t.by_host ip (ref (Flow.Set.singleton k))

  let index_remove t ip k =
    match Hashtbl.find_opt t.by_host ip with
    | None -> ()
    | Some s ->
      s := Flow.Set.remove k !s;
      if Flow.Set.is_empty !s then Hashtbl.remove t.by_host ip

  let set t k v =
    let k = Flow.canonical k in
    if not (Flow.Table.mem t.table k) then begin
      index_add t k.Flow.src_ip k;
      index_add t k.Flow.dst_ip k
    end;
    Flow.Table.replace t.table k v;
    Omap.set t.sorted k v

  let remove t k =
    let k = Flow.canonical k in
    if Flow.Table.mem t.table k then begin
      Flow.Table.remove t.table k;
      index_remove t k.Flow.src_ip k;
      index_remove t k.Flow.dst_ip k;
      Omap.remove t.sorted k
    end

  let mem t k = Flow.Table.mem t.table (Flow.canonical k)

  (* Reference path (and oracle for the equivalence tests): fold over
     every entry, then sort — the seed's sort-per-call behavior. *)
  let matching_reference t filter =
    Flow.Table.fold
      (fun k v acc -> if Filter.matches_flow filter k then (k, v) :: acc else acc)
      t.table []
    |> List.sort (fun (a, _) (b, _) -> Flow.compare a b)

  (* Candidate sets ({!Flow.Set}) already enumerate in [Flow.compare]
     order, so folding and reversing reproduces the sorted result with
     no comparison sort at all. *)
  let of_candidates t filter keys =
    Flow.Set.fold
      (fun k acc ->
        if Filter.matches_flow filter k then
          match Flow.Table.find_opt t.table k with
          | Some v -> (k, v) :: acc
          | None -> acc
        else acc)
      keys []
    |> List.rev

  (* Candidates for an address constraint: a connection matches only if
     one of its endpoints lies in the prefix ({!Filter.matches_flow}
     tries both directions), and the index holds every key under both
     endpoints, so the union over the prefix's hosts is complete. *)
  let prefix_candidates t p =
    if Ipaddr.Prefix.bits p = 32 then
      match Hashtbl.find_opt t.by_host (Ipaddr.Prefix.network p) with
      | Some s -> !s
      | None -> Flow.Set.empty
    else
      Hashtbl.fold
        (fun ip s acc ->
          if Ipaddr.Prefix.mem ip p then Flow.Set.union !s acc else acc)
        t.by_host Flow.Set.empty

  let matching t filter =
    match Filter.exact_key filter with
    | Some key -> (
      (* O(1): the filter pins one connection. *)
      let k = Flow.canonical key in
      match Flow.Table.find_opt t.table k with
      | Some v -> [ (k, v) ]
      | None -> [])
    | None -> (
      match (filter.Filter.src, filter.Filter.dst) with
      | Some p, _ | None, Some p ->
        of_candidates t filter (prefix_candidates t p)
      | None, None ->
        (* Unscoped: in-order walk of the sorted mirror. A descending
           fold with prepend yields the ascending list directly. *)
        Omap.fold_desc
          (fun k v acc ->
            if Filter.matches_flow filter k then (k, v) :: acc else acc)
          t.sorted [])

  let fold t ~init ~f = Flow.Table.fold (fun k v acc -> f k v acc) t.table init
  let size t = Flow.Table.length t.table
end

module Per_host = struct
  type 'a t = {
    table : (Ipaddr.t, 'a) Hashtbl.t;
    sorted : (Ipaddr.t, 'a) Omap.t;
  }

  let create () =
    { table = Hashtbl.create 64; sorted = Omap.create ~cmp:Ipaddr.compare }

  let find t ip = Hashtbl.find_opt t.table ip

  let set t ip v =
    Hashtbl.replace t.table ip v;
    Omap.set t.sorted ip v

  let remove t ip =
    Hashtbl.remove t.table ip;
    Omap.remove t.sorted ip

  let update t ip ~default ~f =
    let current = match find t ip with Some v -> v | None -> default () in
    set t ip (f current)

  (* Oracle: the seed's fold-and-sort shape. *)
  let matching_reference t filter =
    Hashtbl.fold
      (fun ip v acc ->
        if Filter.matches_host filter ip then (ip, v) :: acc else acc)
      t.table []
    |> List.sort (fun (a, _) (b, _) -> Ipaddr.compare a b)

  (* When every address constraint pins a single host, probe the table
     instead of walking it. [matches_host] is satisfied by either
     endpoint constraint, so the candidates are the union of the pinned
     hosts (deduplicated, ascending). *)
  let exact_host = function
    | None -> Some None (* no constraint on this endpoint *)
    | Some p when Ipaddr.Prefix.bits p = 32 ->
      Some (Some (Ipaddr.Prefix.network p))
    | Some _ -> None (* wide prefix: no cheap candidate set *)

  let host_candidates filter =
    match (exact_host filter.Filter.src, exact_host filter.Filter.dst) with
    | Some None, Some None -> None (* unconstrained: full walk *)
    | Some (Some a), Some (Some b) ->
      let c = Ipaddr.compare a b in
      Some (if c < 0 then [ a; b ] else if c = 0 then [ a ] else [ b; a ])
    | Some (Some a), Some None | Some None, Some (Some a) -> Some [ a ]
    | None, _ | _, None -> None

  let matching t filter =
    match host_candidates filter with
    | Some hosts ->
      List.filter_map
        (fun ip ->
          if Filter.matches_host filter ip then
            Option.map (fun v -> (ip, v)) (Hashtbl.find_opt t.table ip)
          else None)
        hosts
    | None ->
      Omap.fold_desc
        (fun ip v acc ->
          if Filter.matches_host filter ip then (ip, v) :: acc else acc)
        t.sorted []

  let fold t ~init ~f = Hashtbl.fold (fun k v acc -> f k v acc) t.table init
  let size t = Hashtbl.length t.table
end

module Keyed = struct
  type ('k, 'a) t = {
    table : ('k, 'a) Hashtbl.t;
    relevant : Filter.t -> 'k -> 'a -> bool;
    sorted : ('k, 'a) Omap.t;
  }

  (* [compare] orders enumeration; the default matches the polymorphic
     ordering the seed's [List.sort compare] produced. *)
  let create ?(compare = Stdlib.compare) ~relevant () =
    {
      table = Hashtbl.create 64;
      relevant;
      sorted = Omap.create ~cmp:compare;
    }

  let find t k = Hashtbl.find_opt t.table k

  let set t k v =
    Hashtbl.replace t.table k v;
    Omap.set t.sorted k v

  let remove t k =
    Hashtbl.remove t.table k;
    Omap.remove t.sorted k

  (* Oracle: the seed's fold-and-sort shape. *)
  let matching_reference t filter =
    Hashtbl.fold
      (fun k v acc -> if t.relevant filter k v then (k, v) :: acc else acc)
      t.table []
    |> List.sort compare

  let matching t filter =
    Omap.fold_desc
      (fun k v acc -> if t.relevant filter k v then (k, v) :: acc else acc)
      t.sorted []

  let fold t ~init ~f = Hashtbl.fold (fun k v acc -> f k v acc) t.table init
  let size t = Hashtbl.length t.table
end
