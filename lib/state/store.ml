module Omap = Opennf_util.Omap
open Opennf_net

(* Deterministic enumeration: results are in key order so simulation
   runs do not depend on hash-table iteration order. Each store pairs a
   hash table (O(1) point lookups on the packet path) with an
   always-sorted mirror ({!Opennf_util.Omap}, O(log n) update), so a
   scoped enumeration is an in-order walk — never materialize-then-sort
   on the query path. The [matching_reference] functions retain the
   original fold-and-sort shape as oracles for the equivalence tests
   (and as the bench baselines). *)

module Perflow = struct
  (* Alongside the canonical-keyed value table, a secondary index maps
     each endpoint address to the set of canonical keys touching it, so
     host- and prefix-scoped getters enumerate candidates instead of
     folding the whole store. *)
  type 'a t = {
    table : 'a Flow.Table.t;
    by_host : (Ipaddr.t, Flow.Set.t ref) Hashtbl.t;
    sorted : (Flow.key, 'a) Omap.t;
  }

  let create () =
    {
      table = Flow.Table.create 64;
      by_host = Hashtbl.create 64;
      sorted = Omap.create ~cmp:Flow.compare;
    }

  let find t k = Flow.Table.find_opt t.table (Flow.canonical k)

  let index_add t ip k =
    match Hashtbl.find_opt t.by_host ip with
    | Some s -> s := Flow.Set.add k !s
    | None -> Hashtbl.replace t.by_host ip (ref (Flow.Set.singleton k))

  let index_remove t ip k =
    match Hashtbl.find_opt t.by_host ip with
    | None -> ()
    | Some s ->
      s := Flow.Set.remove k !s;
      if Flow.Set.is_empty !s then Hashtbl.remove t.by_host ip

  let set t k v =
    let k = Flow.canonical k in
    if not (Flow.Table.mem t.table k) then begin
      index_add t k.Flow.src_ip k;
      index_add t k.Flow.dst_ip k
    end;
    Flow.Table.replace t.table k v;
    Omap.set t.sorted k v

  let remove t k =
    let k = Flow.canonical k in
    if Flow.Table.mem t.table k then begin
      Flow.Table.remove t.table k;
      index_remove t k.Flow.src_ip k;
      index_remove t k.Flow.dst_ip k;
      Omap.remove t.sorted k
    end

  let mem t k = Flow.Table.mem t.table (Flow.canonical k)

  (* Reference path (and oracle for the equivalence tests): fold over
     every entry, then sort — the seed's sort-per-call behavior. *)
  let matching_reference t filter =
    Flow.Table.fold
      (fun k v acc -> if Filter.matches_flow filter k then (k, v) :: acc else acc)
      t.table []
    |> List.sort (fun (a, _) (b, _) -> Flow.compare a b)

  (* Candidate sets ({!Flow.Set}) already enumerate in [Flow.compare]
     order, so folding and reversing reproduces the sorted result with
     no comparison sort at all. *)
  let of_candidates t filter keys =
    Flow.Set.fold
      (fun k acc ->
        if Filter.matches_flow filter k then
          match Flow.Table.find_opt t.table k with
          | Some v -> (k, v) :: acc
          | None -> acc
        else acc)
      keys []
    |> List.rev

  (* Candidates for an address constraint: a connection matches only if
     one of its endpoints lies in the prefix ({!Filter.matches_flow}
     tries both directions), and the index holds every key under both
     endpoints, so the union over the prefix's hosts is complete. *)
  let prefix_candidates t p =
    if Ipaddr.Prefix.bits p = 32 then
      match Hashtbl.find_opt t.by_host (Ipaddr.Prefix.network p) with
      | Some s -> !s
      | None -> Flow.Set.empty
    else
      Hashtbl.fold
        (fun ip s acc ->
          if Ipaddr.Prefix.mem ip p then Flow.Set.union !s acc else acc)
        t.by_host Flow.Set.empty

  let matching t filter =
    match Filter.exact_key filter with
    | Some key -> (
      (* O(1): the filter pins one connection. *)
      let k = Flow.canonical key in
      match Flow.Table.find_opt t.table k with
      | Some v -> [ (k, v) ]
      | None -> [])
    | None -> (
      match (filter.Filter.src, filter.Filter.dst) with
      | Some p, _ | None, Some p ->
        of_candidates t filter (prefix_candidates t p)
      | None, None ->
        (* Unscoped: in-order walk of the sorted mirror. A descending
           fold with prepend yields the ascending list directly. *)
        Omap.fold_desc
          (fun k v acc ->
            if Filter.matches_flow filter k then (k, v) :: acc else acc)
          t.sorted [])

  let fold t ~init ~f = Flow.Table.fold (fun k v acc -> f k v acc) t.table init
  let size t = Flow.Table.length t.table
end

(* Arena-backed per-flow store: same key semantics as {!Perflow}
   (canonicalized 5-tuples) but rows live in an {!Opennf_util.Arena}
   slab — the GC never walks them — and the value is not an OCaml
   object at all: the NF reads and writes typed fields of the row
   payload through an integer handle. Point lookups go through a flat
   open-addressing index (an int array: no buckets, no cons cells);
   ordered enumeration walks the same {!Opennf_util.Omap} mirror shape
   as {!Perflow}, except the mirror is keyed by handles and the
   comparator reads the 5-tuple straight out of the row bytes. *)
module Perflow_arena = struct
  module Arena = Opennf_util.Arena

  (* Row layout: canonical key at offset 0, payload at {!payload_off}.
     13 key bytes, then padding so NF payload layouts start 8-aligned. *)
  let key_size = 13
  let payload_off = 16
  let proto_rank = function Flow.Tcp -> 0 | Flow.Udp -> 1 | Flow.Icmp -> 2
  let proto_of_rank = function
    | 0 -> Flow.Tcp
    | 1 -> Flow.Udp
    | 2 -> Flow.Icmp
    | r -> invalid_arg (Printf.sprintf "Perflow_arena: proto rank %d" r)

  type t = {
    arena : Arena.t;
    (* Open-addressing index: slot 0 = empty, -1 = tombstone, else a
       live handle (handles are never 0: live generations are odd). *)
    mutable idx : int array;
    mutable mask : int;
    mutable count : int;
    mutable tombs : int;
    mirror : (Arena.handle, unit) Omap.t;
  }

  let min_slots = 64

  (* Same field order as [Flow.compare], read from row bytes. *)
  let cmp_rows arena a b =
    let c = Int.compare (Arena.get_u32 arena a 0) (Arena.get_u32 arena b 0) in
    if c <> 0 then c
    else
      let c = Int.compare (Arena.get_u32 arena a 4) (Arena.get_u32 arena b 4) in
      if c <> 0 then c
      else
        let c = Int.compare (Arena.get_u8 arena a 8) (Arena.get_u8 arena b 8) in
        if c <> 0 then c
        else
          let c =
            Int.compare (Arena.get_u16 arena a 9) (Arena.get_u16 arena b 9)
          in
          if c <> 0 then c
          else
            Int.compare (Arena.get_u16 arena a 11) (Arena.get_u16 arena b 11)

  let create ~payload () =
    if payload < 0 then invalid_arg "Perflow_arena.create: negative payload";
    let arena = Arena.create ~stride:(payload_off + payload) () in
    {
      arena;
      idx = Array.make min_slots 0;
      mask = min_slots - 1;
      count = 0;
      tombs = 0;
      mirror = Omap.create ~cmp:(cmp_rows arena);
    }

  let arena t = t.arena
  let size t = t.count

  (* Integer hash over the five key fields — applied identically to a
     [Flow.key] record and to row bytes, so probes need no boxing. *)
  let[@inline] mix h v = (h lxor v) * 0x2545F4914F6CDD1D
  let[@inline] hash5 src dst pr sp dp =
    let h = mix (mix (mix (mix (mix 0x9E3779B9 src) dst) pr) sp) dp in
    (h lxor (h lsr 29)) land max_int

  let[@inline] row_matches t h src dst pr sp dp =
    Arena.get_u32 t.arena h 0 = src
    && Arena.get_u32 t.arena h 4 = dst
    && Arena.get_u8 t.arena h 8 = pr
    && Arena.get_u16 t.arena h 9 = sp
    && Arena.get_u16 t.arena h 11 = dp

  (* Find the slot holding the key, or -1. Canonical key fields only. *)
  let probe_find t src dst pr sp dp =
    let hash = hash5 src dst pr sp dp in
    let i = ref (hash land t.mask) in
    let slot = ref (-1) in
    let continue = ref true in
    while !continue do
      let v = t.idx.(!i) in
      if v = 0 then continue := false
      else if v <> -1 && row_matches t v src dst pr sp dp then begin
        slot := !i;
        continue := false
      end
      else i := (!i + 1) land t.mask
    done;
    !slot

  let rehash t slots =
    let idx = Array.make slots 0 in
    let mask = slots - 1 in
    Array.iter
      (fun v ->
        if v <> 0 && v <> -1 then begin
          let hash =
            hash5 (Arena.get_u32 t.arena v 0) (Arena.get_u32 t.arena v 4)
              (Arena.get_u8 t.arena v 8)
              (Arena.get_u16 t.arena v 9)
              (Arena.get_u16 t.arena v 11)
          in
          let i = ref (hash land mask) in
          while idx.(!i) <> 0 do
            i := (!i + 1) land mask
          done;
          idx.(!i) <- v
        end)
      t.idx;
    t.idx <- idx;
    t.mask <- mask;
    t.tombs <- 0

  let key_of t h =
    {
      Flow.src_ip = Ipaddr.of_int (Arena.get_u32 t.arena h 0);
      dst_ip = Ipaddr.of_int (Arena.get_u32 t.arena h 4);
      proto = proto_of_rank (Arena.get_u8 t.arena h 8);
      src_port = Arena.get_u16 t.arena h 9;
      dst_port = Arena.get_u16 t.arena h 11;
    }

  (* Box-free point lookup: [Arena.null] means absent. *)
  let find t k =
    let k = Flow.canonical k in
    let s =
      probe_find t
        (Ipaddr.to_int k.Flow.src_ip)
        (Ipaddr.to_int k.Flow.dst_ip)
        (proto_rank k.Flow.proto) k.Flow.src_port k.Flow.dst_port
    in
    if s = -1 then Arena.null else t.idx.(s)

  let find_opt t k =
    let h = find t k in
    if h = Arena.null then None else Some h

  let mem t k = find t k <> Arena.null

  let insert t k =
    let k = Flow.canonical k in
    let src = Ipaddr.to_int k.Flow.src_ip
    and dst = Ipaddr.to_int k.Flow.dst_ip
    and pr = proto_rank k.Flow.proto
    and sp = k.Flow.src_port
    and dp = k.Flow.dst_port in
    (* One pass: find the key, remembering the first reusable slot. *)
    let hash = hash5 src dst pr sp dp in
    let i = ref (hash land t.mask) in
    let free = ref (-1) in
    let found = ref 0 in
    let continue = ref true in
    while !continue do
      let v = t.idx.(!i) in
      if v = 0 then begin
        if !free = -1 then free := !i;
        continue := false
      end
      else if v = -1 then begin
        if !free = -1 then free := !i;
        i := (!i + 1) land t.mask
      end
      else if row_matches t v src dst pr sp dp then begin
        found := v;
        continue := false
      end
      else i := (!i + 1) land t.mask
    done;
    if !found <> 0 then !found
    else begin
      let h = Arena.alloc t.arena in
      Arena.set_u32 t.arena h 0 src;
      Arena.set_u32 t.arena h 4 dst;
      Arena.set_u8 t.arena h 8 pr;
      Arena.set_u16 t.arena h 9 sp;
      Arena.set_u16 t.arena h 11 dp;
      if t.idx.(!free) = -1 then t.tombs <- t.tombs - 1;
      t.idx.(!free) <- h;
      t.count <- t.count + 1;
      Omap.set t.mirror h ();
      (* Keep (live + tombstones) at or below half the slots. *)
      if 2 * (t.count + t.tombs) > t.mask + 1 then begin
        let slots = ref (t.mask + 1) in
        while 2 * (t.count + 1) > !slots do
          slots := !slots * 2
        done;
        rehash t !slots
      end;
      h
    end

  let remove t k =
    let k = Flow.canonical k in
    let s =
      probe_find t
        (Ipaddr.to_int k.Flow.src_ip)
        (Ipaddr.to_int k.Flow.dst_ip)
        (proto_rank k.Flow.proto) k.Flow.src_port k.Flow.dst_port
    in
    if s = -1 then false
    else begin
      let h = t.idx.(s) in
      (* Mirror removal must precede the free: its comparator reads the
         row bytes, which the free invalidates. *)
      Omap.remove t.mirror h;
      Arena.free t.arena h;
      t.idx.(s) <- -1;
      t.count <- t.count - 1;
      t.tombs <- t.tombs + 1;
      true
    end

  (* Handles in ascending key order (the mirror's order). *)
  let iter_ordered t f = Omap.fold_asc (fun h () () -> f h) t.mirror ()
  let fold_ordered t ~init ~f = Omap.fold_asc (fun h () acc -> f h acc) t.mirror init

  let matching t filter =
    match Filter.exact_key filter with
    | Some key ->
      let h = find t key in
      if h = Arena.null then [] else [ (key_of t h, h) ]
    | None ->
      Omap.fold_desc
        (fun h () acc ->
          let k = key_of t h in
          if Filter.matches_flow filter k then (k, h) :: acc else acc)
        t.mirror []
end

module Per_host = struct
  type 'a t = {
    table : (Ipaddr.t, 'a) Hashtbl.t;
    sorted : (Ipaddr.t, 'a) Omap.t;
  }

  let create () =
    { table = Hashtbl.create 64; sorted = Omap.create ~cmp:Ipaddr.compare }

  let find t ip = Hashtbl.find_opt t.table ip

  let set t ip v =
    Hashtbl.replace t.table ip v;
    Omap.set t.sorted ip v

  let remove t ip =
    Hashtbl.remove t.table ip;
    Omap.remove t.sorted ip

  let update t ip ~default ~f =
    let current = match find t ip with Some v -> v | None -> default () in
    set t ip (f current)

  (* Oracle: the seed's fold-and-sort shape. *)
  let matching_reference t filter =
    Hashtbl.fold
      (fun ip v acc ->
        if Filter.matches_host filter ip then (ip, v) :: acc else acc)
      t.table []
    |> List.sort (fun (a, _) (b, _) -> Ipaddr.compare a b)

  (* When every address constraint pins a single host, probe the table
     instead of walking it. [matches_host] is satisfied by either
     endpoint constraint, so the candidates are the union of the pinned
     hosts (deduplicated, ascending). *)
  let exact_host = function
    | None -> Some None (* no constraint on this endpoint *)
    | Some p when Ipaddr.Prefix.bits p = 32 ->
      Some (Some (Ipaddr.Prefix.network p))
    | Some _ -> None (* wide prefix: no cheap candidate set *)

  let host_candidates filter =
    match (exact_host filter.Filter.src, exact_host filter.Filter.dst) with
    | Some None, Some None -> None (* unconstrained: full walk *)
    | Some (Some a), Some (Some b) ->
      let c = Ipaddr.compare a b in
      Some (if c < 0 then [ a; b ] else if c = 0 then [ a ] else [ b; a ])
    | Some (Some a), Some None | Some None, Some (Some a) -> Some [ a ]
    | None, _ | _, None -> None

  let matching t filter =
    match host_candidates filter with
    | Some hosts ->
      List.filter_map
        (fun ip ->
          if Filter.matches_host filter ip then
            Option.map (fun v -> (ip, v)) (Hashtbl.find_opt t.table ip)
          else None)
        hosts
    | None ->
      Omap.fold_desc
        (fun ip v acc ->
          if Filter.matches_host filter ip then (ip, v) :: acc else acc)
        t.sorted []

  let fold t ~init ~f = Hashtbl.fold (fun k v acc -> f k v acc) t.table init
  let size t = Hashtbl.length t.table
end

module Keyed = struct
  type ('k, 'a) t = {
    table : ('k, 'a) Hashtbl.t;
    relevant : Filter.t -> 'k -> 'a -> bool;
    sorted : ('k, 'a) Omap.t;
  }

  (* [compare] orders enumeration; the default matches the polymorphic
     ordering the seed's [List.sort compare] produced. *)
  let create ?(compare = Stdlib.compare) ~relevant () =
    {
      table = Hashtbl.create 64;
      relevant;
      sorted = Omap.create ~cmp:compare;
    }

  let find t k = Hashtbl.find_opt t.table k

  let set t k v =
    Hashtbl.replace t.table k v;
    Omap.set t.sorted k v

  let remove t k =
    Hashtbl.remove t.table k;
    Omap.remove t.sorted k

  (* Oracle: the seed's fold-and-sort shape. *)
  let matching_reference t filter =
    Hashtbl.fold
      (fun k v acc -> if t.relevant filter k v then (k, v) :: acc else acc)
      t.table []
    |> List.sort compare

  let matching t filter =
    Omap.fold_desc
      (fun k v acc -> if t.relevant filter k v then (k, v) :: acc else acc)
      t.sorted []

  let fold t ~init ~f = Hashtbl.fold (fun k v acc -> f k v acc) t.table init
  let size t = Hashtbl.length t.table
end
