open Opennf_net

(* Deterministic enumeration: sort by key so simulation runs do not
   depend on hash-table iteration order. *)

module Perflow = struct
  (* Alongside the canonical-keyed value table, a secondary index maps
     each endpoint address to the set of canonical keys touching it, so
     host- and prefix-scoped getters enumerate candidates instead of
     folding the whole store. *)
  type 'a t = {
    table : 'a Flow.Table.t;
    by_host : (Ipaddr.t, Flow.Set.t ref) Hashtbl.t;
  }

  let create () = { table = Flow.Table.create 64; by_host = Hashtbl.create 64 }
  let find t k = Flow.Table.find_opt t.table (Flow.canonical k)

  let index_add t ip k =
    match Hashtbl.find_opt t.by_host ip with
    | Some s -> s := Flow.Set.add k !s
    | None -> Hashtbl.replace t.by_host ip (ref (Flow.Set.singleton k))

  let index_remove t ip k =
    match Hashtbl.find_opt t.by_host ip with
    | None -> ()
    | Some s ->
      s := Flow.Set.remove k !s;
      if Flow.Set.is_empty !s then Hashtbl.remove t.by_host ip

  let set t k v =
    let k = Flow.canonical k in
    if not (Flow.Table.mem t.table k) then begin
      index_add t k.Flow.src_ip k;
      index_add t k.Flow.dst_ip k
    end;
    Flow.Table.replace t.table k v

  let remove t k =
    let k = Flow.canonical k in
    if Flow.Table.mem t.table k then begin
      Flow.Table.remove t.table k;
      index_remove t k.Flow.src_ip k;
      index_remove t k.Flow.dst_ip k
    end

  let mem t k = Flow.Table.mem t.table (Flow.canonical k)

  (* Reference path (and oracle for the equivalence tests): fold over
     every entry. *)
  let matching_reference t filter =
    Flow.Table.fold
      (fun k v acc -> if Filter.matches_flow filter k then (k, v) :: acc else acc)
      t.table []
    |> List.sort (fun (a, _) (b, _) -> Flow.compare a b)

  let of_candidates t filter keys =
    Flow.Set.fold
      (fun k acc ->
        if Filter.matches_flow filter k then
          match Flow.Table.find_opt t.table k with
          | Some v -> (k, v) :: acc
          | None -> acc
        else acc)
      keys []
    |> List.sort (fun (a, _) (b, _) -> Flow.compare a b)

  (* Candidates for an address constraint: a connection matches only if
     one of its endpoints lies in the prefix ({!Filter.matches_flow}
     tries both directions), and the index holds every key under both
     endpoints, so the union over the prefix's hosts is complete. *)
  let prefix_candidates t p =
    if Ipaddr.Prefix.bits p = 32 then
      match Hashtbl.find_opt t.by_host (Ipaddr.Prefix.network p) with
      | Some s -> !s
      | None -> Flow.Set.empty
    else
      Hashtbl.fold
        (fun ip s acc ->
          if Ipaddr.Prefix.mem ip p then Flow.Set.union !s acc else acc)
        t.by_host Flow.Set.empty

  let matching t filter =
    match Filter.exact_key filter with
    | Some key -> (
      (* O(1): the filter pins one connection. *)
      let k = Flow.canonical key in
      match Flow.Table.find_opt t.table k with
      | Some v -> [ (k, v) ]
      | None -> [])
    | None -> (
      match (filter.Filter.src, filter.Filter.dst) with
      | Some p, _ | None, Some p ->
        of_candidates t filter (prefix_candidates t p)
      | None, None -> matching_reference t filter)

  let fold t ~init ~f = Flow.Table.fold (fun k v acc -> f k v acc) t.table init
  let size t = Flow.Table.length t.table
end

module Per_host = struct
  type 'a t = (Ipaddr.t, 'a) Hashtbl.t

  let create () = Hashtbl.create 64
  let find t ip = Hashtbl.find_opt t ip
  let set t ip v = Hashtbl.replace t ip v
  let remove t ip = Hashtbl.remove t ip

  let update t ip ~default ~f =
    let current = match find t ip with Some v -> v | None -> default () in
    set t ip (f current)

  let matching t filter =
    Hashtbl.fold
      (fun ip v acc ->
        if Filter.matches_host filter ip then (ip, v) :: acc else acc)
      t []
    |> List.sort (fun (a, _) (b, _) -> Ipaddr.compare a b)

  let fold t ~init ~f = Hashtbl.fold (fun k v acc -> f k v acc) t init
  let size = Hashtbl.length
end

module Keyed = struct
  type ('k, 'a) t = {
    table : ('k, 'a) Hashtbl.t;
    relevant : Filter.t -> 'k -> 'a -> bool;
  }

  let create ~relevant = { table = Hashtbl.create 64; relevant }
  let find t k = Hashtbl.find_opt t.table k
  let set t k v = Hashtbl.replace t.table k v
  let remove t k = Hashtbl.remove t.table k

  let matching t filter =
    Hashtbl.fold
      (fun k v acc -> if t.relevant filter k v then (k, v) :: acc else acc)
      t.table []
    |> List.sort compare

  let fold t ~init ~f = Hashtbl.fold (fun k v acc -> f k v acc) t.table init
  let size t = Hashtbl.length t.table
end
