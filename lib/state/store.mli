(** Keyed in-memory stores NFs build their state on.

    These are plain hash tables with filter-aware enumeration, so that
    NF implementations of [get*] can answer "all state pertaining to
    flows matching this filter" without bespoke lookup code. They impose
    no structure on the values — the NF keeps whatever objects it likes,
    which is the point of the southbound API design (§4.2). *)

open Opennf_net

module Perflow : sig
  type 'a t
  (** Connection-scoped state, keyed by the canonical 5-tuple. *)

  val create : unit -> 'a t
  val find : 'a t -> Flow.key -> 'a option
  (** Keys are canonicalized: both directions find the same entry. *)

  val set : 'a t -> Flow.key -> 'a -> unit
  val remove : 'a t -> Flow.key -> unit
  val mem : 'a t -> Flow.key -> bool
  val matching : 'a t -> Filter.t -> (Flow.key * 'a) list
  (** Entries whose connection matches the filter (either direction),
      in unspecified but deterministic order.

      Indexed: an exact 5-tuple filter is a single hash probe, and
      src/dst address constraints enumerate a per-host secondary index
      instead of the whole store; only filters with no address
      constraint fall back to a full scan. *)

  val matching_reference : 'a t -> Filter.t -> (Flow.key * 'a) list
  (** Oracle: fold over every entry, ignoring the indexes. Same result
      as {!matching}; for tests and benchmarks. *)

  val fold : 'a t -> init:'b -> f:(Flow.key -> 'a -> 'b -> 'b) -> 'b
  val size : 'a t -> int
end

module Per_host : sig
  type 'a t
  (** Host-scoped multi-flow state (e.g. per-host scan counters). *)

  val create : unit -> 'a t
  val find : 'a t -> Ipaddr.t -> 'a option
  val set : 'a t -> Ipaddr.t -> 'a -> unit
  val remove : 'a t -> Ipaddr.t -> unit
  val update : 'a t -> Ipaddr.t -> default:(unit -> 'a) -> f:('a -> 'a) -> unit
  val matching : 'a t -> Filter.t -> (Ipaddr.t * 'a) list
  (** Hosts accepted by the filter's address constraints
      ([Filter.matches_host]), in ascending address order.

      Indexed: filters whose address constraints all pin single hosts
      are answered by hash probes; anything else is an in-order walk of
      the sorted mirror (never a per-call sort). *)

  val matching_reference : 'a t -> Filter.t -> (Ipaddr.t * 'a) list
  (** Oracle: fold-and-sort over every entry. Same result as
      {!matching}; for tests and benchmarks. *)

  val fold : 'a t -> init:'b -> f:(Ipaddr.t -> 'a -> 'b -> 'b) -> 'b
  val size : 'a t -> int
end

module Keyed : sig
  type ('k, 'a) t
  (** Generic store for NF-specific keys (e.g. URLs in a cache) with a
      caller-supplied relevance test for filters. *)

  val create :
    ?compare:('k -> 'k -> int) ->
    relevant:(Filter.t -> 'k -> 'a -> bool) ->
    unit ->
    ('k, 'a) t
  (** [compare] orders {!matching} enumeration (default: the polymorphic
      ordering, matching the historical sort-by-key behavior). *)

  val find : ('k, 'a) t -> 'k -> 'a option
  val set : ('k, 'a) t -> 'k -> 'a -> unit
  val remove : ('k, 'a) t -> 'k -> unit

  val matching : ('k, 'a) t -> Filter.t -> ('k * 'a) list
  (** Relevant entries in ascending [compare] key order — an in-order
      walk of the sorted mirror, never a per-call sort. *)

  val matching_reference : ('k, 'a) t -> Filter.t -> ('k * 'a) list
  (** Oracle: fold-and-sort with the polymorphic comparison. Same result
      as {!matching} under the default [compare]. *)

  val fold : ('k, 'a) t -> init:'b -> f:('k -> 'a -> 'b -> 'b) -> 'b
  val size : ('k, 'a) t -> int
end
