(** Keyed in-memory stores NFs build their state on.

    These are plain hash tables with filter-aware enumeration, so that
    NF implementations of [get*] can answer "all state pertaining to
    flows matching this filter" without bespoke lookup code. They impose
    no structure on the values — the NF keeps whatever objects it likes,
    which is the point of the southbound API design (§4.2). *)

open Opennf_net

module Perflow : sig
  type 'a t
  (** Connection-scoped state, keyed by the canonical 5-tuple. *)

  val create : unit -> 'a t
  val find : 'a t -> Flow.key -> 'a option
  (** Keys are canonicalized: both directions find the same entry. *)

  val set : 'a t -> Flow.key -> 'a -> unit
  val remove : 'a t -> Flow.key -> unit
  val mem : 'a t -> Flow.key -> bool
  val matching : 'a t -> Filter.t -> (Flow.key * 'a) list
  (** Entries whose connection matches the filter (either direction),
      in unspecified but deterministic order.

      Indexed: an exact 5-tuple filter is a single hash probe, and
      src/dst address constraints enumerate a per-host secondary index
      instead of the whole store; only filters with no address
      constraint fall back to a full scan. *)

  val matching_reference : 'a t -> Filter.t -> (Flow.key * 'a) list
  (** Oracle: fold over every entry, ignoring the indexes. Same result
      as {!matching}; for tests and benchmarks. *)

  val fold : 'a t -> init:'b -> f:(Flow.key -> 'a -> 'b -> 'b) -> 'b
  val size : 'a t -> int
end

module Perflow_arena : sig
  type t
  (** Connection-scoped state in flat memory: rows of a fixed-stride
      {!Opennf_util.Arena} slab, addressed by integer handles. Same
      canonical-key semantics as {!Perflow}, but the GC never traverses
      the resident state — the marking cost of a million live flows is
      a handful of byte slabs, not millions of boxed records. Point
      lookups probe a flat open-addressing int array; ordered
      enumeration walks an {!Opennf_util.Omap} mirror whose comparator
      reads 5-tuples straight out of the row bytes. *)

  val key_size : int
  (** Bytes of each row holding the canonical key (13). *)

  val payload_off : int
  (** Byte offset where the caller's payload fields start (16; the key
      plus padding, so 8-byte payload fields sit aligned). *)

  val create : payload:int -> unit -> t
  (** [create ~payload ()]: a store whose rows carry [payload] bytes of
      caller-defined fields after the key. *)

  val arena : t -> Opennf_util.Arena.t
  (** The underlying arena, for typed payload access and direct
      chunk-codec reads. Offsets passed to accessors must be
      [payload_off]-relative plus the field offset. *)

  val find : t -> Flow.key -> Opennf_util.Arena.handle
  (** Box-free lookup: the live handle, or {!Opennf_util.Arena.null}
      when absent. Keys are canonicalized, as in {!Perflow.find}. *)

  val find_opt : t -> Flow.key -> Opennf_util.Arena.handle option
  val mem : t -> Flow.key -> bool

  val insert : t -> Flow.key -> Opennf_util.Arena.handle
  (** The existing handle for the (canonicalized) key, or a fresh
      zero-payload row with the key written. *)

  val remove : t -> Flow.key -> bool
  (** Frees the row; any retained handle becomes stale (every arena
      accessor will reject it). Returns whether the key was present. *)

  val key_of : t -> Opennf_util.Arena.handle -> Flow.key

  val matching : t -> Filter.t -> (Flow.key * Opennf_util.Arena.handle) list
  (** Entries matching the filter, ascending key order. Exact 5-tuple
      filters are a single probe; anything else is an in-order walk of
      the sorted mirror (no per-host index on the arena path — scoped
      selection on this store is enumeration, not indexed lookup). *)

  val iter_ordered : t -> (Opennf_util.Arena.handle -> unit) -> unit
  (** Live handles in ascending key order. *)

  val fold_ordered :
    t -> init:'b -> f:(Opennf_util.Arena.handle -> 'b -> 'b) -> 'b

  val size : t -> int
end

module Per_host : sig
  type 'a t
  (** Host-scoped multi-flow state (e.g. per-host scan counters). *)

  val create : unit -> 'a t
  val find : 'a t -> Ipaddr.t -> 'a option
  val set : 'a t -> Ipaddr.t -> 'a -> unit
  val remove : 'a t -> Ipaddr.t -> unit
  val update : 'a t -> Ipaddr.t -> default:(unit -> 'a) -> f:('a -> 'a) -> unit
  val matching : 'a t -> Filter.t -> (Ipaddr.t * 'a) list
  (** Hosts accepted by the filter's address constraints
      ([Filter.matches_host]), in ascending address order.

      Indexed: filters whose address constraints all pin single hosts
      are answered by hash probes; anything else is an in-order walk of
      the sorted mirror (never a per-call sort). *)

  val matching_reference : 'a t -> Filter.t -> (Ipaddr.t * 'a) list
  (** Oracle: fold-and-sort over every entry. Same result as
      {!matching}; for tests and benchmarks. *)

  val fold : 'a t -> init:'b -> f:(Ipaddr.t -> 'a -> 'b -> 'b) -> 'b
  val size : 'a t -> int
end

module Keyed : sig
  type ('k, 'a) t
  (** Generic store for NF-specific keys (e.g. URLs in a cache) with a
      caller-supplied relevance test for filters. *)

  val create :
    ?compare:('k -> 'k -> int) ->
    relevant:(Filter.t -> 'k -> 'a -> bool) ->
    unit ->
    ('k, 'a) t
  (** [compare] orders {!matching} enumeration (default: the polymorphic
      ordering, matching the historical sort-by-key behavior). *)

  val find : ('k, 'a) t -> 'k -> 'a option
  val set : ('k, 'a) t -> 'k -> 'a -> unit
  val remove : ('k, 'a) t -> 'k -> unit

  val matching : ('k, 'a) t -> Filter.t -> ('k * 'a) list
  (** Relevant entries in ascending [compare] key order — an in-order
      walk of the sorted mirror, never a per-call sort. *)

  val matching_reference : ('k, 'a) t -> Filter.t -> ('k * 'a) list
  (** Oracle: fold-and-sort with the polymorphic comparison. Same result
      as {!matching} under the default [compare]. *)

  val fold : ('k, 'a) t -> init:'b -> f:('k -> 'a -> 'b -> 'b) -> 'b
  val size : ('k, 'a) t -> int
end
