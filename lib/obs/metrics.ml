module Stats = Opennf_util.Stats

type counter = { mutable c : int; c_on : bool }
type gauge = { mutable g : float; mutable g_peak : float; g_on : bool }
type hist = { h : Stats.Histogram.t; h_on : bool }

type t = {
  on : bool;
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    on = true;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
  }

(* The null registry hands out shared dead instruments whose update
   functions check [*_on] and do nothing — so components can hold
   handles unconditionally and the disabled path neither allocates nor
   writes (safe to share across domains). *)
let null =
  {
    on = false;
    counters = Hashtbl.create 1;
    gauges = Hashtbl.create 1;
    hists = Hashtbl.create 1;
  }

let enabled t = t.on

let null_counter = { c = 0; c_on = false }
let null_gauge = { g = 0.0; g_peak = 0.0; g_on = false }
let null_hist = { h = Stats.Histogram.create (); h_on = false }

let intern tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
    let v = make () in
    Hashtbl.replace tbl name v;
    v

let counter t name =
  if not t.on then null_counter
  else intern t.counters name (fun () -> { c = 0; c_on = true })

let gauge t name =
  if not t.on then null_gauge
  else intern t.gauges name (fun () -> { g = 0.0; g_peak = 0.0; g_on = true })

let hist t name =
  if not t.on then null_hist
  else
    intern t.hists name (fun () ->
        { h = Stats.Histogram.create (); h_on = true })

let incr c = if c.c_on then c.c <- c.c + 1
let add c n = if c.c_on then c.c <- c.c + n
let value c = c.c

let set g v =
  if g.g_on then begin
    g.g <- v;
    if v > g.g_peak then g.g_peak <- v
  end

let observe h x = if h.h_on then Stats.Histogram.add h.h x

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.c | None -> 0

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = List.map (fun (n, c) -> (n, c.c)) (sorted_bindings t.counters)

let gauges t =
  List.map (fun (n, g) -> (n, g.g, g.g_peak)) (sorted_bindings t.gauges)

let hists t = List.map (fun (n, h) -> (n, h.h)) (sorted_bindings t.hists)
