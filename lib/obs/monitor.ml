(* Streaming checker for the §5.1 guarantees, fed by the trace sink.

   The monitor decodes audit instants by their positional attribute
   layout (pkt, nf, src, dst, proto, sport, dport — see Audit.log) so it
   can live below lib/net in the dependency order and still check any
   audit stream. Op spans (cat "op") interleaved in the same stream give
   findings their op/phase context. *)

type property = Loss | Order | Duplicate | Buffer_conservation

let property_name = function
  | Loss -> "loss"
  | Order -> "order"
  | Duplicate -> "duplicate"
  | Buffer_conservation -> "buffer"

let property_rank = function
  | Loss -> 0
  | Order -> 1
  | Duplicate -> 2
  | Buffer_conservation -> 3

type finding = {
  property : property;
  flow : string;
  pkt : int;
  shard : int;
  vt : float;
  op_span : int;
  op : string;
  phase : string;
  detail : string;
  history : string list;
}

(* Per-flow automaton: two counters (forward sequence numbering and the
   highest forwarded-sequence processed so far) plus a bounded ring of
   rendered audit lines — O(1) state however long the flow lives. *)
type flow_state = {
  f_key : string;
  mutable next_fwd : int;
  mutable max_done : int;
  ring : string array;
  mutable ring_len : int;
  mutable ring_pos : int;
}

(* Per-packet lifecycle, cleared down to a processed-marker once the
   packet completes (the marker is what duplicate-freedom needs). *)
type pkt_state = {
  p_flow : flow_state;
  mutable p_seq : int;  (* First-forward sequence within the flow; -1. *)
  mutable p_forwarded : bool;
  mutable p_buffered : bool;
  mutable p_processed : bool;
  mutable p_nf : string;  (* Instance of the last event. *)
  mutable p_vt : float;
  mutable p_shard : int;
  mutable p_op : int;
  mutable p_op_name : string;
  mutable p_phase : string;
}

type op_info = { o_name : string; o_shard : int }

type t = {
  k : int;
  shard : int;
  mutable cur_shard : int;  (* Stream tag; only merged replay varies it. *)
  flows : (string, flow_state) Hashtbl.t;
  pkts : (int, pkt_state) Hashtbl.t;
  (* Op-context tracking, keyed by (shard, span id): span ids are
     per-tracer counters, so merged replays of several shard buffers
     would collide on the bare id. *)
  roots : (int * int, op_info) Hashtbl.t;
  children : (int * int, int * int) Hashtbl.t;  (* child -> its root *)
  mutable open_roots : (int * int) list;  (* Newest first. *)
  phases : (int * int, string) Hashtbl.t;  (* root -> last phase mark *)
  mutable streamed : finding list;  (* Newest first. *)
  mutable events : int;
  mutable taps : (finding -> unit) list;
}

let create ?(shard = 0) ?(history = 8) () =
  {
    k = Stdlib.max 1 history;
    shard;
    cur_shard = shard;
    flows = Hashtbl.create 256;
    pkts = Hashtbl.create 1024;
    roots = Hashtbl.create 16;
    children = Hashtbl.create 16;
    open_roots = [];
    phases = Hashtbl.create 16;
    streamed = [];
    events = 0;
    taps = [];
  }

let events_seen t = t.events
let on_finding t f = t.taps <- t.taps @ [ f ]
let findings t = List.rev t.streamed
let clean = function [] -> true | _ :: _ -> false

(* --- attribute decoding --------------------------------------------------- *)

let int_attr a i =
  if i < Array.length a then
    match snd a.(i) with Trace.Int v -> v | _ -> 0
  else 0

let str_attr a i =
  if i < Array.length a then
    match snd a.(i) with Trace.Str s -> s | _ -> ""
  else ""

let ip_str v =
  Printf.sprintf "%d.%d.%d.%d"
    ((v lsr 24) land 0xff)
    ((v lsr 16) land 0xff)
    ((v lsr 8) land 0xff)
    (v land 0xff)

let proto_str = function 17 -> "udp" | 1 -> "icmp" | _ -> "tcp"

let flow_key attrs =
  Printf.sprintf "%s:%d->%s:%d/%s"
    (ip_str (int_attr attrs 2))
    (int_attr attrs 5)
    (ip_str (int_attr attrs 3))
    (int_attr attrs 6)
    (proto_str (int_attr attrs 4))

(* --- per-flow / per-packet state ------------------------------------------ *)

let flow_state t key =
  match Hashtbl.find_opt t.flows key with
  | Some fs -> fs
  | None ->
    let fs =
      {
        f_key = key;
        next_fwd = 0;
        max_done = -1;
        ring = Array.make t.k "";
        ring_len = 0;
        ring_pos = 0;
      }
    in
    Hashtbl.add t.flows key fs;
    fs

let ring_push fs line =
  fs.ring.(fs.ring_pos) <- line;
  fs.ring_pos <- (fs.ring_pos + 1) mod Array.length fs.ring;
  if fs.ring_len < Array.length fs.ring then fs.ring_len <- fs.ring_len + 1

let ring_lines fs =
  let n = Array.length fs.ring in
  List.init fs.ring_len (fun i ->
      fs.ring.((fs.ring_pos - fs.ring_len + i + (2 * n)) mod n))

let pkt_state t fs pkt =
  match Hashtbl.find_opt t.pkts pkt with
  | Some ps -> ps
  | None ->
    let ps =
      {
        p_flow = fs;
        p_seq = -1;
        p_forwarded = false;
        p_buffered = false;
        p_processed = false;
        p_nf = "";
        p_vt = 0.0;
        p_shard = t.cur_shard;
        p_op = 0;
        p_op_name = "";
        p_phase = "";
      }
    in
    Hashtbl.add t.pkts pkt ps;
    ps

(* --- op context ------------------------------------------------------------ *)

let root_of t key =
  if Hashtbl.mem t.roots key then Some key else Hashtbl.find_opt t.children key

(* The op an audit event "occurred under": the newest still-open root op
   span on the event's own shard (ops from other shards — merged replay
   only — are someone else's context). *)
let current_op t =
  List.find_opt (fun (sh, _) -> sh = t.cur_shard) t.open_roots

let op_open t (ev : Trace.ev) =
  let key = (t.cur_shard, ev.Trace.id) in
  match
    if ev.Trace.parent = 0 then None
    else root_of t (t.cur_shard, ev.Trace.parent)
  with
  | Some root -> Hashtbl.replace t.children key root
  | None ->
    let o_shard =
      let s = ref t.cur_shard in
      Array.iter
        (fun (k, v) ->
          match v with
          | Trace.Int sh when k = "shard" -> s := sh
          | _ -> ())
        ev.Trace.attrs;
      !s
    in
    Hashtbl.replace t.roots key { o_name = ev.Trace.name; o_shard };
    t.open_roots <- key :: t.open_roots

let span_close t (ev : Trace.ev) =
  let key = (t.cur_shard, ev.Trace.id) in
  if Hashtbl.mem t.roots key then begin
    Hashtbl.remove t.roots key;
    Hashtbl.remove t.phases key;
    t.open_roots <- List.filter (fun k -> k <> key) t.open_roots
  end
  else Hashtbl.remove t.children key

let phase_mark t (ev : Trace.ev) =
  match root_of t (t.cur_shard, ev.Trace.parent) with
  | Some root -> Hashtbl.replace t.phases root ev.Trace.name
  | None -> ()

(* --- findings --------------------------------------------------------------- *)

let emit t ~property ~(ps : pkt_state) ~pkt ~detail =
  let f =
    {
      property;
      flow = ps.p_flow.f_key;
      pkt;
      shard = ps.p_shard;
      vt = ps.p_vt;
      op_span = ps.p_op;
      op = ps.p_op_name;
      phase = ps.p_phase;
      detail;
      history = ring_lines ps.p_flow;
    }
  in
  t.streamed <- f :: t.streamed;
  List.iter (fun tap -> tap f) t.taps

let audit_event t (ev : Trace.ev) =
  let attrs = ev.Trace.attrs in
  if Array.length attrs >= 7 then begin
    t.events <- t.events + 1;
    let pkt = int_attr attrs 0 in
    let nf = str_attr attrs 1 in
    let fs = flow_state t (flow_key attrs) in
    ring_push fs
      (Printf.sprintf "%.6f %s pkt=%d nf=%s" ev.Trace.vt ev.Trace.name pkt nf);
    let ps = pkt_state t fs pkt in
    ps.p_vt <- ev.Trace.vt;
    ps.p_nf <- nf;
    ps.p_shard <- t.cur_shard;
    (match current_op t with
    | Some ((_, id) as key) ->
      (match Hashtbl.find_opt t.roots key with
      | Some info ->
        ps.p_op <- id;
        ps.p_op_name <- info.o_name;
        ps.p_shard <- info.o_shard;
        ps.p_phase <-
          (match Hashtbl.find_opt t.phases key with Some p -> p | None -> "")
      | None -> ())
    | None -> ());
    match ev.Trace.name with
    | "forward" ->
      (* First forwarding assigns the flow-order sequence; relays of the
         same id (packet-outs during a move) keep the original slot. *)
      if not (ps.p_forwarded || ps.p_processed) then begin
        ps.p_forwarded <- true;
        ps.p_seq <- fs.next_fwd;
        fs.next_fwd <- fs.next_fwd + 1
      end
    | "process" ->
      if ps.p_processed then
        emit t ~property:Duplicate ~ps ~pkt
          ~detail:(Printf.sprintf "processed again at %s" nf)
      else begin
        ps.p_processed <- true;
        ps.p_buffered <- false;
        if ps.p_seq >= 0 then
          if ps.p_seq < fs.max_done then
            emit t ~property:Order ~ps ~pkt
              ~detail:
                (Printf.sprintf
                   "forwarded %d packet(s) before the newest processed one \
                    but processed after it"
                   (fs.max_done - ps.p_seq))
          else fs.max_done <- ps.p_seq
      end
    | "buffer" -> if not ps.p_processed then ps.p_buffered <- true
    | _ -> ()
  end

let feed t (ev : Trace.ev) =
  match ev.Trace.kind with
  | Trace.Instant ->
    if ev.Trace.cat = "audit" then audit_event t ev
    else if ev.Trace.cat = "op" && ev.Trace.parent <> 0 then phase_mark t ev
  | Trace.Begin -> if ev.Trace.cat = "op" then op_open t ev
  | Trace.End -> span_close t ev

let attach t tr = Trace.on_event tr (feed t)

(* --- verdict ---------------------------------------------------------------- *)

let finding_key f =
  (f.vt, f.shard, f.pkt, property_rank f.property, f.flow, f.detail)

let verdict t =
  let pending = ref [] in
  Hashtbl.iter
    (fun pkt (ps : pkt_state) ->
      if not ps.p_processed then begin
        if ps.p_forwarded then
          pending :=
            {
              property = Loss;
              flow = ps.p_flow.f_key;
              pkt;
              shard = ps.p_shard;
              vt = ps.p_vt;
              op_span = ps.p_op;
              op = ps.p_op_name;
              phase = ps.p_phase;
              detail =
                Printf.sprintf "forwarded (flow seq %d) but never processed"
                  ps.p_seq;
              history = ring_lines ps.p_flow;
            }
            :: !pending;
        if ps.p_buffered then
          pending :=
            {
              property = Buffer_conservation;
              flow = ps.p_flow.f_key;
              pkt;
              shard = ps.p_shard;
              vt = ps.p_vt;
              op_span = ps.p_op;
              op = ps.p_op_name;
              phase = ps.p_phase;
              detail =
                Printf.sprintf "buffered at %s but never released" ps.p_nf;
              history = ring_lines ps.p_flow;
            }
            :: !pending
      end)
    t.pkts;
  List.sort
    (fun a b -> compare (finding_key a) (finding_key b))
    (List.rev_append t.streamed !pending)

let merged_verdict ?history sources =
  let t = create ?history () in
  let evs = ref [] in
  List.iter
    (fun (shard, tr) ->
      let pos = ref 0 in
      Trace.iter tr (fun ev ->
          evs := (ev.Trace.vt, shard, !pos, ev) :: !evs;
          incr pos))
    sources;
  let evs =
    List.sort
      (fun ((a : float), (b : int), (c : int), _) (d, e, f, _) ->
        compare (a, b, c) (d, e, f))
      !evs
  in
  List.iter
    (fun (_, shard, _, ev) ->
      t.cur_shard <- shard;
      feed t ev)
    evs;
  verdict t

(* --- rendering --------------------------------------------------------------- *)

let render findings =
  match findings with
  | [] -> "monitor: clean (0 violations)\n"
  | fs ->
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf "monitor: %d violation(s)\n" (List.length fs));
    List.iter
      (fun f ->
        Buffer.add_string b
          (Printf.sprintf "  [%s] pkt=%d flow=%s shard=%d t=%.9f%s%s\n"
             (property_name f.property)
             f.pkt f.flow f.shard f.vt
             (if f.op = "" then ""
              else Printf.sprintf " op=%s#%d" f.op f.op_span)
             (if f.phase = "" then "" else " phase=" ^ f.phase));
        Buffer.add_string b ("    " ^ f.detail ^ "\n");
        List.iter
          (fun h -> Buffer.add_string b ("    | " ^ h ^ "\n"))
          f.history)
      fs;
    Buffer.contents b
