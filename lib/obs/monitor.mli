(** Streaming runtime verification of the paper's §5.1 guarantees.

    A monitor subscribes to the live trace stream ({!Trace.on_event} —
    the audit ledger's instants plus the op spans interleaved with them)
    and maintains per-flow automata for:

    - {b loss-freedom}: every packet the switch forwarded toward an NF
      is eventually processed by exactly one instance;
    - {b order preservation}: each flow's processing order equals its
      first-forwarding order (§5.1.2 is a per-flow property);
    - {b duplicate-freedom}: no packet is processed twice;
    - {b buffer conservation}: every packet an NF buffered during a
      move is eventually released and processed.

    Each audit event costs O(1) table work; per-flow state is a pair of
    counters plus a bounded ring of the last-k events, so memory is
    O(flows + in-flight packets + processed ids). The monitor is a pure
    observer: it never reads the engine clock, never schedules, and
    never records through the tracer, so a monitored run's virtual-time
    results are byte-identical to an unmonitored one.

    "Eventually" properties (loss, buffer conservation) cannot fire
    mid-stream; they are checked by {!verdict}, which scans the still-
    pending packets at end of stream. Order and duplicate violations
    are detected online and also delivered to {!on_finding} taps.

    Shard-awareness: in [~par:true] fabrics one monitor rides each
    shard's audit trace; {!merged_verdict} replays the shard-tagged
    buffers in the same [(time, source, sequence)] order as
    [Audit.merged], so the combined verdict is deterministic and
    invariant under permutation of the per-shard buffer list. *)

type property = Loss | Order | Duplicate | Buffer_conservation

val property_name : property -> string
(** ["loss"], ["order"], ["duplicate"], ["buffer"]. *)

type finding = {
  property : property;
  flow : string;  (** Canonical 5-tuple, e.g. ["10.0.0.1:20000->172.31.0.1:443/tcp"]. *)
  pkt : int;  (** Packet id. *)
  shard : int;  (** Shard whose audit stream witnessed the violation. *)
  vt : float;  (** Virtual time of the packet's last relevant event. *)
  op_span : int;  (** Trace span id of the op it occurred under; 0 if none. *)
  op : string;  (** That op's name (["move"], ["copy"], …); [""] if none. *)
  phase : string;  (** Last phase mark under that op (["captured"], …). *)
  detail : string;
  history : string list;  (** Last-k audit events of the flow, oldest first. *)
}

type t

val create : ?shard:int -> ?history:int -> unit -> t
(** [shard] (default 0) tags this monitor's findings; [history]
    (default 8) is the per-flow last-k event ring size. *)

val attach : t -> Trace.t -> unit
(** Subscribe to a tracer's live stream. Typically the audit's tracer:
    when the hub is tracing that is the shared hub trace (so op spans
    flow through too and findings carry op/phase context); otherwise it
    is the audit's private ledger and findings carry packets only. *)

val feed : t -> Trace.ev -> unit
(** Push one event by hand (what {!attach} does per event). Exposed for
    replay-style checkers; events must arrive in stream order. *)

val events_seen : t -> int
(** Audit events consumed so far. *)

val on_finding : t -> (finding -> unit) -> unit
(** Called synchronously on every {e online} finding (order/duplicate
    violations — the properties decidable mid-stream). *)

val findings : t -> finding list
(** Online findings so far, in detection order. *)

val verdict : t -> finding list
(** Full verdict: online findings plus the end-of-stream scan for
    pending packets (loss, buffer conservation), sorted canonically by
    (time, shard, packet, property). Does not mutate the monitor — it
    may be called repeatedly, and more events may still be fed after. *)

val merged_verdict : ?history:int -> (int * Trace.t) list -> finding list
(** Deterministic combined verdict over per-shard trace buffers
    [(shard, trace)]: events replay in ((virtual time, shard tag,
    buffer position)) order — the {!Audit.merged} discipline — through
    a fresh monitor. The result is a pure function of the tagged
    buffers, invariant under permutation of the list. *)

val clean : finding list -> bool
(** [findings = []]. *)

val render : finding list -> string
(** Deterministic human rendering (virtual-time data only): identical
    runs produce identical bytes. *)
