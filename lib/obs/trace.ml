type value = Int of int | Float of float | Str of string | Bool of bool

type kind = Begin | End | Instant

type ev = {
  kind : kind;
  id : int;
  parent : int;
  cat : string;
  name : string;
  vt : float;
  wall : float;
  attrs : (string * value) array;
}

type t = {
  on : bool;
  mutable clock : unit -> float;
  mutable sink : ev -> unit;
  mutable evs : ev array;
  mutable len : int;
  mutable next_id : int;
}

let no_attrs : (string * value) array = [||]

let dummy_ev =
  {
    kind = Instant;
    id = 0;
    parent = 0;
    cat = "";
    name = "";
    vt = 0.0;
    wall = 0.0;
    attrs = no_attrs;
  }

let append t ev =
  let cap = Array.length t.evs in
  if t.len = cap then begin
    let bigger = Array.make (Stdlib.max 1024 (2 * cap)) dummy_ev in
    Array.blit t.evs 0 bigger 0 t.len;
    t.evs <- bigger
  end;
  t.evs.(t.len) <- ev;
  t.len <- t.len + 1

let create ?(enabled = true) () =
  let t =
    {
      on = enabled;
      clock = (fun () -> 0.0);
      sink = ignore;
      evs = (if enabled then Array.make 1024 dummy_ev else [||]);
      len = 0;
      next_id = 1;
    }
  in
  if enabled then t.sink <- append t;
  t

(* Streaming subscription: [f] runs on every event, after the buffer
   append, in emission order. Implemented by wrapping the sink function,
   so a tracer without taps keeps the bare [append] sink (no per-event
   indirection added) and the disabled tracer — whose recording entry
   points never reach the sink — stays at one boolean load per call.
   Taps must not record through the same tracer (the append buffer may
   be mid-resize) and must not touch the simulation: they are observers,
   not participants. *)
let on_event t f =
  if t.on then begin
    let prev = t.sink in
    t.sink <-
      (fun ev ->
        prev ev;
        f ev)
  end

(* The shared off switch: recording functions bail on [on = false]
   before touching the clock or the sink, so a disabled tracer costs one
   boolean load and allocates nothing. *)
let disabled = create ~enabled:false ()
let enabled t = t.on
let set_clock t f = t.clock <- f

(* Wall stamps ride along for profiling but are never part of the
   deterministic surface: exports drop them unless asked. *)
let wall_clock () = Unix.gettimeofday ()

let span_open t ?(parent = 0) ~cat ~name ?(attrs = no_attrs) () =
  if not t.on then 0
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    t.sink
      {
        kind = Begin;
        id;
        parent;
        cat;
        name;
        vt = t.clock ();
        wall = wall_clock ();
        attrs;
      };
    id
  end

let span_close t id ?(attrs = no_attrs) () =
  if t.on && id <> 0 then
    t.sink
      {
        kind = End;
        id;
        parent = 0;
        cat = "";
        name = "";
        vt = t.clock ();
        wall = wall_clock ();
        attrs;
      }

let instant t ?(parent = 0) ~cat ~name ?(attrs = no_attrs) () =
  if t.on then
    t.sink
      {
        kind = Instant;
        id = 0;
        parent;
        cat;
        name;
        vt = t.clock ();
        wall = wall_clock ();
        attrs;
      }

let length t = t.len
let nth t i = t.evs.(i)

let iter t f =
  for i = 0 to t.len - 1 do
    f t.evs.(i)
  done

let fold t f init =
  let acc = ref init in
  iter t (fun ev -> acc := f !acc ev);
  !acc

let pp_value ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b
