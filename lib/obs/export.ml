module Stats = Opennf_util.Stats

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_value b = function
  | Trace.Int i -> Buffer.add_string b (string_of_int i)
  | Trace.Float f -> Buffer.add_string b (Printf.sprintf "%.9g" f)
  | Trace.Str s -> buf_add_json_string b s
  | Trace.Bool v -> Buffer.add_string b (if v then "true" else "false")

let add_args b ~parent attrs =
  Buffer.add_string b "\"args\":{";
  let first = ref true in
  let comma () = if !first then first := false else Buffer.add_char b ',' in
  if parent <> 0 then begin
    comma ();
    Buffer.add_string b (Printf.sprintf "\"parent\":%d" parent)
  end;
  Array.iter
    (fun (k, v) ->
      comma ();
      buf_add_json_string b k;
      Buffer.add_char b ':';
      add_value b v)
    attrs;
  Buffer.add_char b '}'

(* Chrome trace_event JSON. Spans become async nestable "b"/"e" pairs
   matched by cat+id — simulated processes interleave, so spans are not
   stack-nested and the sync "B"/"E" phases would mispair. Timestamps
   are virtual microseconds; wall stamps are only emitted on request
   because they would break byte-identical exports. *)
let chrome ?(wall = false) tr =
  (* End events carry no cat/name of their own: resolve from the open. *)
  let opens = Hashtbl.create 64 in
  Trace.iter tr (fun ev ->
      if ev.Trace.kind = Trace.Begin then Hashtbl.replace opens ev.Trace.id ev);
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  Trace.iter tr (fun ev ->
      let ph, cat, name =
        match ev.Trace.kind with
        | Trace.Begin -> ("b", ev.Trace.cat, ev.Trace.name)
        | Trace.End -> (
          match Hashtbl.find_opt opens ev.Trace.id with
          | Some o -> ("e", o.Trace.cat, o.Trace.name)
          | None -> ("e", "?", "?"))
        | Trace.Instant -> ("i", ev.Trace.cat, ev.Trace.name)
      in
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b "\n{";
      Buffer.add_string b "\"ph\":\"";
      Buffer.add_string b ph;
      Buffer.add_string b "\",\"cat\":";
      buf_add_json_string b cat;
      Buffer.add_string b ",\"name\":";
      buf_add_json_string b name;
      Buffer.add_string b
        (Printf.sprintf ",\"ts\":%.3f" (ev.Trace.vt *. 1e6));
      if ev.Trace.kind <> Trace.Instant then
        Buffer.add_string b (Printf.sprintf ",\"id\":%d" ev.Trace.id);
      if ev.Trace.kind = Trace.Instant then Buffer.add_string b ",\"s\":\"g\"";
      Buffer.add_string b ",\"pid\":1,\"tid\":1,";
      if wall then
        Buffer.add_string b (Printf.sprintf "\"wall\":%.6f," ev.Trace.wall);
      add_args b ~parent:ev.Trace.parent ev.Trace.attrs;
      Buffer.add_char b '}');
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* Human-readable dump: one line per event in emission order, virtual
   time first, indent-free (spans interleave across processes). *)
let timeline tr =
  let opens = Hashtbl.create 64 in
  Trace.iter tr (fun ev ->
      if ev.Trace.kind = Trace.Begin then Hashtbl.replace opens ev.Trace.id ev);
  let b = Buffer.create 4096 in
  Trace.iter tr (fun ev ->
      let tag, cat, name =
        match ev.Trace.kind with
        | Trace.Begin -> ("open ", ev.Trace.cat, ev.Trace.name)
        | Trace.End -> (
          match Hashtbl.find_opt opens ev.Trace.id with
          | Some o -> ("close", o.Trace.cat, o.Trace.name)
          | None -> ("close", "?", "?"))
        | Trace.Instant -> ("inst ", ev.Trace.cat, ev.Trace.name)
      in
      Buffer.add_string b
        (Printf.sprintf "%12.6f  %s %-6s %-20s" ev.Trace.vt tag cat name);
      if ev.Trace.id <> 0 then
        Buffer.add_string b (Printf.sprintf " #%d" ev.Trace.id);
      if ev.Trace.parent <> 0 then
        Buffer.add_string b (Printf.sprintf " ^%d" ev.Trace.parent);
      Array.iter
        (fun (k, v) ->
          Buffer.add_string b
            (Format.asprintf " %s=%a" k Trace.pp_value v))
        ev.Trace.attrs;
      Buffer.add_char b '\n');
  Buffer.contents b

(* Canonical virtual-time content of one or more trace buffers: one
   line per event carrying everything deterministic — virtual time,
   kind, cat, name, attrs — and nothing incidental (span ids, parents
   and wall stamps are numbering/profiling artifacts that legitimately
   differ between a single-engine run and a per-shard-engine run of
   the same simulation). Lines sort by (vt, text), so any interleaving
   of independently-buffered shards canonicalizes to the same string:
   serial-vs-parallel trace equivalence is [canonical a = canonical b].
   End events inherit their opening span's cat/name (resolved within
   the event's own buffer) for the same reason ids are dropped. *)
let canonical trs =
  let lines = ref [] in
  List.iter
    (fun tr ->
      let opens = Hashtbl.create 64 in
      Trace.iter tr (fun ev ->
          if ev.Trace.kind = Trace.Begin then
            Hashtbl.replace opens ev.Trace.id ev);
      Trace.iter tr (fun ev ->
          let tag, cat, name =
            match ev.Trace.kind with
            | Trace.Begin -> ("open", ev.Trace.cat, ev.Trace.name)
            | Trace.End -> (
              match Hashtbl.find_opt opens ev.Trace.id with
              | Some o -> ("close", o.Trace.cat, o.Trace.name)
              | None -> ("close", "?", "?"))
            | Trace.Instant -> ("inst", ev.Trace.cat, ev.Trace.name)
          in
          let b = Buffer.create 96 in
          Buffer.add_string b
            (Printf.sprintf "%.9f %s %s %s" ev.Trace.vt tag cat name);
          Array.iter
            (fun (k, v) ->
              Buffer.add_string b
                (Format.asprintf " %s=%a" k Trace.pp_value v))
            ev.Trace.attrs;
          lines := (ev.Trace.vt, Buffer.contents b) :: !lines))
    trs;
  let lines = List.sort compare !lines in
  let b = Buffer.create 4096 in
  List.iter
    (fun (_, l) ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    lines;
  Buffer.contents b

let metrics_json m =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"counters\": {";
  let first = ref true in
  List.iter
    (fun (n, v) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      buf_add_json_string b n;
      Buffer.add_string b (Printf.sprintf ": %d" v))
    (Metrics.counters m);
  Buffer.add_string b "\n  },\n  \"gauges\": {";
  first := true;
  List.iter
    (fun (n, last, peak) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      buf_add_json_string b n;
      Buffer.add_string b
        (Printf.sprintf ": {\"last\": %.6f, \"peak\": %.6f}" last peak))
    (Metrics.gauges m);
  Buffer.add_string b "\n  },\n  \"histograms\": {";
  first := true;
  List.iter
    (fun (n, h) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      buf_add_json_string b n;
      Buffer.add_string b
        (Printf.sprintf
           ": {\"count\": %d, \"sum\": %.9f, \"mean\": %.9f, \"p50\": %.9f, \
            \"p90\": %.9f, \"p99\": %.9f, \"max\": %.9f}"
           (Stats.Histogram.count h) (Stats.Histogram.sum h)
           (Stats.Histogram.mean h)
           (Stats.Histogram.quantile h 0.50)
           (Stats.Histogram.quantile h 0.90)
           (Stats.Histogram.quantile h 0.99)
           (if Stats.Histogram.count h = 0 then 0.0 else Stats.Histogram.max h)))
    (Metrics.hists m);
  Buffer.add_string b "\n  }\n}\n";
  Buffer.contents b

(* OpenMetrics text exposition. Instrument names sanitize to the metric
   charset ([a-zA-Z0-9_:]); histograms expose as summaries with the
   log-bucket quantiles (p50/p90/p99), an exact _sum and a _count, so a
   scraper sees real tail latencies, not just totals. *)
let om_name n =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    n

let om_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let openmetrics m =
  let b = Buffer.create 2048 in
  List.iter
    (fun (n, v) ->
      let n = om_name n in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string b (Printf.sprintf "%s_total %d\n" n v))
    (Metrics.counters m);
  List.iter
    (fun (n, last, peak) ->
      let n = om_name n in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (om_float last));
      Buffer.add_string b (Printf.sprintf "# TYPE %s_peak gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s_peak %s\n" n (om_float peak)))
    (Metrics.gauges m);
  List.iter
    (fun (n, h) ->
      let n = om_name n in
      Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun q ->
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"%.2f\"} %s\n" n q
               (om_float (Stats.Histogram.quantile h q))))
        [ 0.50; 0.90; 0.99 ];
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" n (om_float (Stats.Histogram.sum h)));
      Buffer.add_string b
        (Printf.sprintf "%s_count %d\n" n (Stats.Histogram.count h)))
    (Metrics.hists m);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b
