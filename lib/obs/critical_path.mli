(** Critical-path latency attribution for completed operations.

    Reconstructs each closed root op span (cat ["op"]) from a trace
    buffer, together with its child spans (transfers, rollbacks) and
    phase-mark instants, and partitions the op's virtual duration into
    named phase slices — capture, install, ack, buffer flush, handoff
    waits, and the residual barrier/settle time. The scheduler queue
    wait (sched span open → admit) is attributed separately: it is time
    spent {e before} the op's own clock starts, so it never perturbs
    the op-total reconciliation below.

    Totals reconcile exactly: an op's [cp_total] is the same float the
    engine observed into the [op.duration_s] histogram (both are
    [close - open] of the same clock reads), and {!total} sums the ops
    in close order — the histogram's observation order — so
    [total (analyze tr) = Stats.Histogram.sum h] bit for bit. *)

type op_path = {
  cp_span : int;  (** Root op span id. *)
  cp_op : string;  (** Op name: ["move"], ["copy"], … *)
  cp_shard : int;
  cp_open : float;  (** Virtual open time. *)
  cp_close : float;
  cp_total : float;  (** [cp_close -. cp_open]. *)
  cp_queue_wait : float;  (** Sched admission wait; 0 when unlinked. *)
  cp_status : string;  (** ["ok"] / ["error"] / [""]. *)
  cp_slices : (string * float) list;
      (** Phase attribution, aggregated by phase name (sorted): e.g.
          [("transfer/captured", d)]. Slice durations sum to [cp_total]
          up to float associativity. *)
}

val analyze : Trace.t -> op_path list
(** Closed root op spans in close order (the [op.duration_s]
    observation order). Unclosed spans are skipped. *)

val total : op_path list -> float
(** Left fold of [cp_total] in list order — comparable bit-for-bit with
    [Stats.Histogram.sum] of [op.duration_s]. *)

val observe : Metrics.t -> op_path list -> unit
(** Per-phase histograms into a registry: [cp.<op>.<phase>_s] per
    slice, [cp.<op>.total_s], and [cp.queue_wait_s]. *)

val folded : op_path list -> string
(** Flamegraph-style folded stacks, one line per [op;phase] with the
    summed virtual nanoseconds — pipe into a flamegraph renderer. Lines
    sorted; deterministic. *)

val report : op_path list -> string
(** Human rendering: per-op table plus aggregated phase attribution.
    Virtual-time data only — identical runs give identical bytes. *)
