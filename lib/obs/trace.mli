(** Span tracer: the one event sink behind operation spans, scheduler
    queues, southbound message taps and the packet audit ledger.

    Events carry both a virtual-time stamp (from the simulation clock,
    deterministic) and a wall-clock stamp (profiling only). Spans are
    open/close pairs keyed by a tracer-assigned id with optional parent
    links; instants are single points. Everything lands in one append
    buffer in emission order, which — the simulation being
    single-threaded per engine — is itself deterministic.

    The tracer is {b off by default and allocation-free when disabled}:
    the recording sink is a no-op function pointer and every recording
    entry point bails on a single boolean before building anything.
    Call sites that must construct attribute arrays or strings guard on
    {!enabled} so the disabled path stays at zero allocations (budget-
    tested in [test_obs.ml]). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type kind = Begin | End | Instant

type ev = {
  kind : kind;
  id : int;  (** Span id for [Begin]/[End]; 0 for instants. *)
  parent : int;  (** Enclosing span id, 0 at the root. *)
  cat : string;
  name : string;  (** Empty on [End]: resolved from the open by id. *)
  vt : float;  (** Virtual time (deterministic). *)
  wall : float;  (** Wall time (never part of the deterministic surface). *)
  attrs : (string * value) array;
}

type t

val create : ?enabled:bool -> unit -> t
(** [enabled] defaults to true; the disabled singleton is {!disabled}. *)

val disabled : t
(** The shared never-records tracer. Recording through it is a boolean
    check; safe to share across domains (nothing is written). *)

val enabled : t -> bool

val set_clock : t -> (unit -> float) -> unit
(** Install the virtual-time source (the owning engine's [now]). *)

val span_open :
  t -> ?parent:int -> cat:string -> name:string ->
  ?attrs:(string * value) array -> unit -> int
(** Returns the span id (0 when disabled; closing 0 is a no-op). *)

val span_close : t -> int -> ?attrs:(string * value) array -> unit -> unit

val instant :
  t -> ?parent:int -> cat:string -> name:string ->
  ?attrs:(string * value) array -> unit -> unit

val on_event : t -> (ev -> unit) -> unit
(** Subscribe [f] to the live event stream: it runs synchronously on
    every recorded event, after the buffer append, in emission order —
    the hook streaming checkers ({!Monitor}) ride instead of post-hoc
    buffer folds. Multiple taps stack (registration order). On a
    disabled tracer this is a no-op; a tracer without taps keeps its
    bare append sink, so the untapped hot path is unchanged. Taps are
    observers: they must not record through the tracer or touch the
    simulation. *)

(** {1 Reading the buffer} *)

val length : t -> int
val nth : t -> int -> ev
val iter : t -> (ev -> unit) -> unit
val fold : t -> ('a -> ev -> 'a) -> 'a -> 'a
val pp_value : Format.formatter -> value -> unit
