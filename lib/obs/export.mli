(** Exporters over the trace buffer and metrics registry. *)

val chrome : ?wall:bool -> Trace.t -> string
(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]): spans as
    async nestable ["b"]/["e"] pairs matched by cat+id, instants as
    ["i"], timestamps in virtual-time microseconds. Deterministic:
    byte-identical across runs of the same seeded scenario. [wall]
    (default false) adds wall-clock stamps — profiling only, breaks
    byte-identity. Load via [chrome://tracing] or Perfetto. *)

val timeline : Trace.t -> string
(** Human-readable one-line-per-event dump in emission order. *)

val canonical : Trace.t list -> string
(** Canonical virtual-time content of one or more trace buffers: one
    line per event — vt, kind, cat, name, attrs — sorted by (vt, text),
    with span ids, parents and wall stamps (numbering and profiling
    artifacts) dropped. Any interleaving of independently-buffered
    shards canonicalizes to the same string, so serial-vs-parallel
    trace equivalence is string equality of [canonical]. *)

val metrics_json : Metrics.t -> string
(** Counters/gauges/histogram summaries as JSON, sorted by name.
    Histograms carry count, exact sum, mean, p50/p90/p99 (log-bucket
    quantiles) and max. *)

val openmetrics : Metrics.t -> string
(** OpenMetrics text exposition: counters as [<name>_total], gauges as
    last value plus a [<name>_peak] companion, histograms as summaries
    with p50/p90/p99 quantile lines, [_sum] and [_count]. Names are
    sanitized to the metric charset; ends with [# EOF]. *)
