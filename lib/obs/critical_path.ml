(* Span-tree reconstruction and phase attribution over a trace buffer.

   An op's timeline is partitioned by boundary events — child span
   opens/closes (transfer, rollback) and phase-mark instants — and each
   segment is labeled by the boundary that ends it: the segment before
   the "captured" mark is capture work, the segment ending at a child
   open is inter-phase wait, the tail after the last boundary is the
   finish (barriers, grace scheduling). Labels aggregate per name, so a
   parallel transfer's 500 "ack" marks become one slice. *)

type op_path = {
  cp_span : int;
  cp_op : string;
  cp_shard : int;
  cp_open : float;
  cp_close : float;
  cp_total : float;
  cp_queue_wait : float;
  cp_status : string;
  cp_slices : (string * float) list;
}

type boundary = Mark of string | Child_open of string | Child_close of string

let str_attr attrs key =
  let r = ref "" in
  Array.iter
    (fun (k, v) -> match v with Trace.Str s when k = key -> r := s | _ -> ())
    attrs;
  !r

let int_attr attrs key =
  let r = ref 0 in
  Array.iter
    (fun (k, v) -> match v with Trace.Int i when k = key -> r := i | _ -> ())
    attrs;
  !r

let analyze tr =
  (* One pass indexes the buffer: opens by id, closes by id (with the
     buffer position, which orders the result), instants by parent. *)
  let opens : (int, Trace.ev) Hashtbl.t = Hashtbl.create 64 in
  let closes : (int, int * Trace.ev) Hashtbl.t = Hashtbl.create 64 in
  let marks : (int, (float * int * string) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let pos = ref 0 in
  Trace.iter tr (fun ev ->
      (match ev.Trace.kind with
      | Trace.Begin ->
        if not (Hashtbl.mem opens ev.Trace.id) then
          Hashtbl.add opens ev.Trace.id ev
      | Trace.End ->
        if not (Hashtbl.mem closes ev.Trace.id) then
          Hashtbl.add closes ev.Trace.id (!pos, ev)
      | Trace.Instant ->
        if ev.Trace.parent <> 0 then
          Hashtbl.replace marks ev.Trace.parent
            ((ev.Trace.vt, !pos, ev.Trace.name)
            :: Option.value ~default:[]
                 (Hashtbl.find_opt marks ev.Trace.parent)));
      incr pos);
  let is_op id =
    match Hashtbl.find_opt opens id with
    | Some ev -> ev.Trace.cat = "op"
    | None -> false
  in
  (* Direct children of each root op span. *)
  let children : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id (ev : Trace.ev) ->
      if ev.Trace.cat = "op" && ev.Trace.parent <> 0 && is_op ev.Trace.parent
      then
        Hashtbl.replace children ev.Trace.parent
          (id :: Option.value ~default:[] (Hashtbl.find_opt children ev.Trace.parent)))
    opens;
  let queue_wait (root : Trace.ev) =
    (* The op span's parent, when present, is its scheduler entry's
       span: open at enqueue, "admit" instant at admission. *)
    match Hashtbl.find_opt opens root.Trace.parent with
    | Some sched when sched.Trace.cat = "sched" -> (
      match Hashtbl.find_opt marks root.Trace.parent with
      | Some ms -> (
        match
          List.find_opt (fun (_, _, name) -> name = "admit") (List.rev ms)
        with
        | Some (vt, _, _) -> vt -. sched.Trace.vt
        | None -> 0.0)
      | None -> 0.0)
    | Some _ | None -> 0.0
  in
  let path_of id (root : Trace.ev) close_ev =
    let t0 = root.Trace.vt in
    let t1 = (close_ev : Trace.ev).Trace.vt in
    (* Boundary points inside [t0, t1], ordered by (vt, buffer pos). *)
    let bounds = ref [] in
    let add vt pos b = bounds := (vt, pos, b) :: !bounds in
    (match Hashtbl.find_opt marks id with
    | Some ms -> List.iter (fun (vt, p, name) -> add vt p (Mark name)) ms
    | None -> ());
    List.iter
      (fun cid ->
        match (Hashtbl.find_opt opens cid, Hashtbl.find_opt closes cid) with
        | Some co, Some (cpos, cc) ->
          let cname = co.Trace.name in
          let has_marks = Hashtbl.mem marks cid in
          add co.Trace.vt 0 (Child_open cname);
          add cc.Trace.vt cpos
            (Child_close (if has_marks then cname ^ "/tail" else cname));
          (match Hashtbl.find_opt marks cid with
          | Some ms ->
            List.iter
              (fun (vt, p, name) -> add vt p (Mark (cname ^ "/" ^ name)))
              ms
          | None -> ())
        | _ -> ())
      (Option.value ~default:[] (Hashtbl.find_opt children id));
    let bounds =
      List.sort
        (fun ((a : float), (b : int), _) (c, d, _) -> compare (a, b) (c, d))
        !bounds
    in
    let slices : (string, float) Hashtbl.t = Hashtbl.create 16 in
    let slice name dur =
      if dur <> 0.0 then
        Hashtbl.replace slices name
          (dur +. Option.value ~default:0.0 (Hashtbl.find_opt slices name))
    in
    let cur = ref t0 in
    List.iter
      (fun (vt, _, b) ->
        let label =
          match b with
          | Mark m -> m
          | Child_open _ -> "wait"
          | Child_close l -> l
        in
        slice label (vt -. !cur);
        cur := vt)
      bounds;
    slice "finish" (t1 -. !cur);
    {
      cp_span = id;
      cp_op = root.Trace.name;
      cp_shard = int_attr root.Trace.attrs "shard";
      cp_open = t0;
      cp_close = t1;
      cp_total = t1 -. t0;
      cp_queue_wait = queue_wait root;
      cp_status = str_attr (close_ev : Trace.ev).Trace.attrs "status";
      cp_slices =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) slices []);
    }
  in
  let roots = ref [] in
  Hashtbl.iter
    (fun id (ev : Trace.ev) ->
      if
        ev.Trace.cat = "op"
        && (ev.Trace.parent = 0 || not (is_op ev.Trace.parent))
      then
        match Hashtbl.find_opt closes id with
        | Some (cpos, close_ev) ->
          roots := (cpos, path_of id ev close_ev) :: !roots
        | None -> ())
    opens;
  List.map snd
    (List.sort (fun ((a : int), _) (b, _) -> compare a b) !roots)

let total ops = List.fold_left (fun acc o -> acc +. o.cp_total) 0.0 ops

let observe m ops =
  List.iter
    (fun o ->
      Metrics.observe (Metrics.hist m ("cp." ^ o.cp_op ^ ".total_s")) o.cp_total;
      Metrics.observe (Metrics.hist m "cp.queue_wait_s") o.cp_queue_wait;
      List.iter
        (fun (name, dur) ->
          Metrics.observe
            (Metrics.hist m ("cp." ^ o.cp_op ^ "." ^ name ^ "_s"))
            dur)
        o.cp_slices)
    ops

let folded ops =
  let stacks : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let bump stack dur =
    Hashtbl.replace stacks stack
      (dur +. Option.value ~default:0.0 (Hashtbl.find_opt stacks stack))
  in
  List.iter
    (fun o ->
      if o.cp_queue_wait > 0.0 then bump (o.cp_op ^ ";queue_wait") o.cp_queue_wait;
      List.iter (fun (name, dur) -> bump (o.cp_op ^ ";" ^ name) dur) o.cp_slices)
    ops;
  let lines =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) stacks [])
  in
  let b = Buffer.create 256 in
  List.iter
    (fun (stack, dur) ->
      (* Virtual nanoseconds: integral, which folded-stack consumers
         expect, and lossless at simulation timescales. *)
      Buffer.add_string b
        (Printf.sprintf "%s %.0f\n" stack (Float.round (dur *. 1e9))))
    lines;
  Buffer.contents b

let report ops =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "critical path: %d completed op(s)\n" (List.length ops));
  if ops <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "\n  %-6s %-10s %-5s %-6s %12s %12s\n" "span" "op"
         "shard" "status" "queue_ms" "total_ms");
    List.iter
      (fun o ->
        Buffer.add_string b
          (Printf.sprintf "  %-6d %-10s %-5d %-6s %12.6f %12.6f\n" o.cp_span
             o.cp_op o.cp_shard o.cp_status
             (1000.0 *. o.cp_queue_wait)
             (1000.0 *. o.cp_total)))
      ops;
    (* Aggregate the slices by op kind for the attribution table. *)
    let agg : (string, float * int) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun o ->
        List.iter
          (fun (name, dur) ->
            let key = o.cp_op ^ "." ^ name in
            let s, n =
              Option.value ~default:(0.0, 0) (Hashtbl.find_opt agg key)
            in
            Hashtbl.replace agg key (s +. dur, n + 1))
          o.cp_slices)
      ops;
    Buffer.add_string b "\n  phase attribution (virtual ms, per op kind):\n";
    List.iter
      (fun (key, (sum, n)) ->
        Buffer.add_string b
          (Printf.sprintf "    %-36s %12.6f  (x%d)\n" key (1000.0 *. sum) n))
      (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) agg []));
    Buffer.add_string b
      (Printf.sprintf "\n  ops total: %.9f s (close order)\n" (total ops))
  end;
  Buffer.contents b
