type t = { trace : Trace.t; metrics : Metrics.t }

let disabled = { trace = Trace.disabled; metrics = Metrics.null }

let create ?(trace = false) ?(metrics = true) () =
  {
    trace = (if trace then Trace.create () else Trace.disabled);
    metrics = (if metrics then Metrics.create () else Metrics.null);
  }

let trace t = t.trace
let metrics t = t.metrics
let tracing t = Trace.enabled t.trace
