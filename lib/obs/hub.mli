(** The observability hub a simulation threads through its components:
    one span tracer plus one metrics registry. {!disabled} — the default
    everywhere — records nothing and allocates nothing. *)

type t

val disabled : t
(** No tracer, no metrics; every tap degrades to a boolean check. *)

val create : ?trace:bool -> ?metrics:bool -> unit -> t
(** [trace] defaults to false (tracing is opt-in, it buffers every
    event); [metrics] defaults to true. *)

val trace : t -> Trace.t
val metrics : t -> Metrics.t

val tracing : t -> bool
(** Whether the tracer records — call sites use this to skip building
    attribute arrays on the disabled path. *)
