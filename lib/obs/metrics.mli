(** Metrics registry: named counters, gauges and histograms.

    Instruments are interned by name and handed back as handles so hot
    paths pay one mutable-field write per update, not a hashtable probe.
    The {!null} registry returns shared dead handles whose updates are a
    boolean check — components hold handles unconditionally and the
    disabled path allocates nothing and writes nothing (so the null
    handles are safe to share across domains). *)

type counter
type gauge
type hist

type t

val create : unit -> t

val null : t
(** The shared never-records registry. *)

val enabled : t -> bool

(** {1 Handles} *)

val counter : t -> string -> counter
(** Find-or-create. On {!null} returns the shared dead counter. *)

val gauge : t -> string -> gauge
val hist : t -> string -> hist

(** {1 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
(** Also tracks the peak value ever set. *)

val observe : hist -> float -> unit

(** {1 Reading} *)

val value : counter -> int

val counter_value : t -> string -> int
(** 0 when the counter was never created. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float * float) list
(** [(name, last, peak)], sorted by name. *)

val hists : t -> (string * Opennf_util.Stats.Histogram.t) list
(** Sorted by name. *)
