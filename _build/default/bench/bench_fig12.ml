(* Figure 12 and §8.2.1: southbound API efficiency per NF.

   (a) getPerflow time vs number of flows (linear; Bro slowest, iptables
       cheapest);
   (b) putPerflow time (at least ~2x faster than getPerflow);
   and the per-packet processing latency increase while an export runs
   (paper: PRADS +5.8% relative, Bro +0.12 ms absolute — both small). *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
module H = Harness

type nf_kind = Iptables | Prads | Bro

let kind_label = function
  | Iptables -> "iptables"
  | Prads -> "PRADS"
  | Bro -> "Bro"

let make_impl = function
  | Iptables -> Opennf_nfs.Nat.impl (Opennf_nfs.Nat.create ())
  | Prads -> Opennf_nfs.Prads.impl (Opennf_nfs.Prads.create ())
  | Bro -> Opennf_nfs.Ids.impl (Opennf_nfs.Ids.create ())

let costs_of = function
  | Iptables -> Costs.iptables
  | Prads -> Costs.prads
  | Bro -> Costs.bro

(* Warm [flows] flows into nf1, then time get on nf1 and put on nf2. *)
let get_put_times kind ~flows =
  let fab = Fabric.create ~seed:(300 + flows) () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"a" ~impl:(make_impl kind) ~costs:(costs_of kind)
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"b" ~impl:(make_impl kind) ~costs:(costs_of kind)
  in
  let gen = Opennf_trace.Gen.create ~seed:2 () in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate:1000.0 ~start:0.05
      ~duration:(float_of_int flows /. 400.0)
      ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  let results = ref (0.0, 0.0) in
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any nf1);
  let start_at = (float_of_int flows /. 400.0) +. 2.0 in
  H.run_at fab ~at:start_at (fun () ->
      let t0 = Engine.now fab.engine in
      let chunks = Controller.get_perflow fab.ctrl nf1 Filter.any () in
      let t1 = Engine.now fab.engine in
      Controller.put_perflow fab.ctrl nf2 chunks;
      let t2 = Engine.now fab.engine in
      assert (List.length chunks = flows);
      results := (t1 -. t0, t2 -. t1));
  !results

(* §8.2.1: per-packet processing latency with and without a concurrent
   getPerflow. *)
let packet_latency_impact kind =
  let fab = Fabric.create ~seed:9 () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"a" ~impl:(make_impl kind) ~costs:(costs_of kind)
  in
  let gen = Opennf_trace.Gen.create ~seed:4 () in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows:100 ~rate:200.0 ~start:0.05
      ~duration:8.0 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any nf1);
  let window = ref (0.0, 0.0) in
  H.run_at fab ~at:4.0 (fun () ->
      let t0 = Engine.now fab.engine in
      ignore (Controller.get_perflow fab.ctrl nf1 Filter.any ());
      window := (t0, Engine.now fab.engine));
  let audit = fab.audit in
  let normal = Opennf_util.Stats.Summary.create () in
  let during = Opennf_util.Stats.Summary.create () in
  let w0, w1 = !window in
  List.iter
    (fun pkt ->
      match (Audit.process_time audit ~pkt, Audit.added_latency audit ~pkt) with
      | Some t, Some l ->
        if t >= w0 && t <= w1 then Opennf_util.Stats.Summary.add during l
        else Opennf_util.Stats.Summary.add normal l
      | _ -> ())
    (Audit.processed_order audit);
  (normal, during)

let flow_counts = [ 250; 500; 1000 ]

let run () =
  H.section "Figure 12(a,b): getPerflow / putPerflow time (ms) vs #flows";
  let rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun flows ->
            let get_t, put_t = get_put_times kind ~flows in
            [
              kind_label kind;
              string_of_int flows;
              H.ms get_t;
              H.ms put_t;
              Printf.sprintf "%.1fx" (get_t /. put_t);
            ])
          flow_counts)
      [ Iptables; Prads; Bro ]
  in
  H.table
    ~header:[ "NF"; "flows"; "get(ms)"; "put(ms)"; "get/put" ]
    rows;
  H.note
    "Expected shape: linear in #flows; put at least ~2x faster than get; \
     Bro slowest (largest state), iptables cheapest. (Paper: PRADS \
     get(500)~89ms put(500)~54ms; Bro get(1000)~1000ms.)";
  H.section "§8.2.1: per-packet latency during state export";
  let module S = Opennf_util.Stats.Summary in
  let rows =
    List.map
      (fun kind ->
        let normal, during = packet_latency_impact kind in
        let n = S.mean normal and d = S.mean during in
        [
          kind_label kind;
          H.ms n;
          H.ms d;
          Printf.sprintf "+%.1f%%" (100.0 *. ((d /. n) -. 1.0));
        ])
      [ Prads; Bro ]
  in
  H.table
    ~header:[ "NF"; "normal(ms)"; "during export(ms)"; "increase" ]
    rows;
  H.note
    "Expected shape: small single-digit-percent increase (paper: PRADS \
     +5.8%%, Bro +0.12ms ~ +1.7%%)."

let () =
  H.register ~id:"fig12" ~descr:"southbound get/put times; export impact" run
