(* Table 2: NF code added to support the southbound API. The paper
   counts lines added to each real NF (at most +9.8%, mostly
   serialization). The analogue here: for each NF module in lib/nfs/,
   the serialization and southbound-implementation sections versus the
   whole module, measured from this repository's sources. *)

module H = Harness

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* NF modules mark their OpenNF-specific parts with banner comments. *)
let count path =
  let lines = read_lines path in
  let total = List.length lines in
  let opennf = ref 0 in
  let in_section = ref false in
  List.iter
    (fun line ->
      let has s =
        let rec find i =
          i + String.length s <= String.length line
          && (String.sub line i (String.length s) = s || find (i + 1))
        in
        String.length s <= String.length line && find 0
      in
      if has "--- serialization" || has "--- southbound" then in_section := true
      else if has "--- inspection" || has "--- packet processing" then
        in_section := false;
      if !in_section then incr opennf)
    lines;
  (total, !opennf)

let candidates =
  [
    ("Bro IDS", "lib/nfs/ids.ml");
    ("PRADS asset monitor", "lib/nfs/prads.ml");
    ("Squid caching proxy", "lib/nfs/proxy.ml");
    ("iptables", "lib/nfs/nat.ml");
  ]

let rec find_root dir depth =
  if depth > 6 then None
  else if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else find_root (Filename.concat dir Filename.parent_dir_name) (depth + 1)

let run () =
  H.section "Table 2: NF code devoted to the southbound API";
  match find_root (Sys.getcwd ()) 0 with
  | None -> H.note "repository sources not found from %s; skipping" (Sys.getcwd ())
  | Some root ->
    let rows =
      List.filter_map
        (fun (name, rel) ->
          let path = Filename.concat root rel in
          if Sys.file_exists path then begin
            let total, opennf = count path in
            Some
              [
                name;
                string_of_int opennf;
                string_of_int total;
                Printf.sprintf "%.1f%%"
                  (100.0 *. float_of_int opennf /. float_of_int total);
              ]
          end
          else None)
        candidates
    in
    H.table
      ~header:[ "NF"; "OpenNF-specific LOC"; "total LOC"; "share" ]
      rows;
    H.note
      "Expected shape: serialization dominates the OpenNF-specific code, \
       as in the paper. The share is higher than the paper's <=9.8%% \
       because these NFs are compact simulations (hundreds of lines), \
       while the real Bro/Squid are 100k-line codebases receiving the \
       same few-hundred-line addition."

let () = H.register ~id:"table2" ~descr:"NF code additions for the southbound API" run
