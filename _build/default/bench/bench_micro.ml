(* Micro-benchmarks (Bechamel): real CPU cost of the hot primitives the
   simulator and controller are built on. One Test.make per primitive;
   results are OLS estimates of ns/iteration. *)

open Bechamel
open Toolkit
module H = Harness
open Opennf_net

let prads_state_sample () =
  (* A realistic serialized-state blob: many PRADS-like chunks. *)
  let prads = Opennf_nfs.Prads.create () in
  let impl = Opennf_nfs.Prads.impl prads in
  let gen = Opennf_trace.Gen.create ~seed:3 () in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows:100 ~rate:1000.0 ~start:0.0
      ~duration:1.0 ()
  in
  List.iter (fun (_, p) -> impl.Opennf_sb.Nf_api.process_packet p) schedule;
  let buf = Buffer.create 4096 in
  List.iter
    (fun flowid ->
      match impl.Opennf_sb.Nf_api.export_perflow flowid with
      | Some chunk -> Buffer.add_string buf chunk.Opennf_state.Chunk.data
      | None -> ())
    (impl.Opennf_sb.Nf_api.list_perflow Filter.any);
  Buffer.contents buf

let flowtable_with_rules n =
  let table = Flowtable.create () in
  for i = 0 to n - 1 do
    Flowtable.install table ~cookie:i ~priority:(100 + (i mod 7))
      ~filters:
        [ Filter.of_src_host (Ipaddr.v 10 ((i / 250) mod 250) 0 (1 + (i mod 250))) ]
      ~actions:[ Flowtable.Forward "nf" ]
  done;
  table

let tests () =
  let state = prads_state_sample () in
  let compressed = Opennf_util.Lz.compress state in
  let table = flowtable_with_rules 1000 in
  let probe =
    Packet.create ~id:0
      ~key:
        (Flow.make ~src:(Ipaddr.v 10 1 0 77) ~dst:(Ipaddr.v 172 16 0 1)
           ~sport:12345 ~dport:80 ())
      ~sent_at:0.0 ()
  in
  let ids = Opennf_nfs.Ids.create () in
  let ids_impl = Opennf_nfs.Ids.impl ids in
  let syn =
    Packet.create ~id:1
      ~key:
        (Flow.make ~src:(Ipaddr.v 10 1 0 8) ~dst:(Ipaddr.v 172 16 0 2)
           ~sport:2222 ~dport:80 ())
      ~flags:[ Syn ] ~sent_at:0.0 ()
  in
  [
    Test.make ~name:"lz/compress-prads-state"
      (Staged.stage (fun () -> Opennf_util.Lz.compress state));
    Test.make ~name:"lz/decompress-prads-state"
      (Staged.stage (fun () -> Opennf_util.Lz.decompress compressed));
    Test.make ~name:"flowtable/lookup-1000-rules"
      (Staged.stage (fun () -> Flowtable.lookup table probe));
    Test.make ~name:"digest/feed-1400B"
      (Staged.stage
         (let block = String.make 1400 'x' in
          fun () ->
            let d = Opennf_util.Hashing.Digest_sig.create () in
            Opennf_util.Hashing.Digest_sig.feed d block;
            Opennf_util.Hashing.Digest_sig.value d));
    Test.make ~name:"engine/schedule-and-run-1000"
      (Staged.stage (fun () ->
           let e = Opennf_sim.Engine.create () in
           for i = 0 to 999 do
             Opennf_sim.Engine.schedule e
               ~delay:(float_of_int (i mod 97) /. 1000.0)
               ignore
           done;
           Opennf_sim.Engine.run e));
    Test.make ~name:"ids/process-syn"
      (Staged.stage (fun () -> ids_impl.Opennf_sb.Nf_api.process_packet syn));
    Test.make ~name:"filter/matches-flow"
      (Staged.stage
         (let f = Filter.of_src_prefix (Ipaddr.Prefix.of_string "10.0.0.0/8") in
          fun () -> Filter.matches_flow f probe.Packet.key));
  ]

let run () =
  H.section "Micro-benchmarks (Bechamel, monotonic clock)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raws =
    Benchmark.all cfg [ Instance.monotonic_clock ]
      (Test.make_grouped ~name:"opennf" (tests ()))
  in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |])
      Instance.monotonic_clock raws
  in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some (v :: _) -> Printf.sprintf "%.1f" v
          | Some [] | None -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square result with
          | Some r -> Printf.sprintf "%.3f" r
          | None -> "-"
        in
        [ name; ns; r2 ] :: acc)
      ols []
    |> List.sort compare
  in
  H.table ~header:[ "benchmark"; "ns/run"; "r²" ] rows

let () = H.register ~id:"micro" ~descr:"Bechamel micro-benchmarks" run
