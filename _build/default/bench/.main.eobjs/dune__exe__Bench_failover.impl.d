bench/bench_failover.ml: Controller Copy_op Fabric Filter Fun Harness Ipaddr List Opennf Opennf_apps Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_state Opennf_trace Option Printf String
