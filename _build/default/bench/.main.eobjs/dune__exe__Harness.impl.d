bench/harness.ml: Audit Controller Fabric Filter Flow Int List Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace Opennf_util Printf String
