bench/main.mli:
