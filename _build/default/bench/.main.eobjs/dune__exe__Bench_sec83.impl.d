bench/bench_sec83.ml: Controller Fabric Filter Flow Harness Ipaddr List Move Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_state Opennf_util Option
