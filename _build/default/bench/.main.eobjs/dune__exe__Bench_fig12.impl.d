bench/bench_fig12.ml: Audit Controller Fabric Filter Harness List Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace Opennf_util Printf
