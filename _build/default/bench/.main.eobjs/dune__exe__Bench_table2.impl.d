bench/bench_table2.ml: Filename Harness List Printf String Sys
