bench/bench_ablation.ml: Controller Fabric Filter Harness List Move Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace Option Printf
