bench/bench_fig13.ml: Controller Fabric Filter Flow Harness Ipaddr List Move Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Printf
