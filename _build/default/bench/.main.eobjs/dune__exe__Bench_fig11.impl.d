bench/bench_fig11.ml: Harness List Move Opennf Opennf_net Opennf_sb Option Printf
