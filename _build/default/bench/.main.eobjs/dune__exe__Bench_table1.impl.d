bench/bench_table1.ml: Array Controller Copy_op Fabric Filter Harness Ipaddr List Move Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_state Opennf_trace Printf
