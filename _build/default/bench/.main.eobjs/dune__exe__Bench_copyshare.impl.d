bench/bench_copyshare.ml: Audit Controller Copy_op Fabric Filter Harness Int List Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_state Opennf_trace Opennf_util Option Printf Share
