bench/bench_fig10.ml: Harness List Move Opennf Opennf_net Opennf_sb Opennf_util Option
