(* Tests for the three control applications of §6. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

let ip = Ipaddr.v
let subnet_a = Ipaddr.Prefix.of_string "10.1.0.0/16"
let subnet_b = Ipaddr.Prefix.of_string "10.2.0.0/16"

let ids_pair ?(scan_threshold = 10) () =
  let fab = Fabric.create ~seed:19 () in
  let ids1 = Opennf_nfs.Ids.create ~scan_threshold () in
  let ids2 = Opennf_nfs.Ids.create ~scan_threshold () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"bro1" ~impl:(Opennf_nfs.Ids.impl ids1) ~costs:Costs.bro
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"bro2" ~impl:(Opennf_nfs.Ids.impl ids2) ~costs:Costs.bro
  in
  (fab, ids1, ids2, nf1, nf2)

let scans ids =
  List.filter
    (function Opennf_nfs.Ids.Port_scan _ -> true | _ -> false)
    (Opennf_nfs.Ids.alert_log ids)

(* --- load-balanced monitoring (Figure 8) ---------------------------------- *)

let test_lb_move_prefix_reassigns () =
  let fab, _, _, nf1, nf2 = ids_pair () in
  let gen = Opennf_trace.Gen.create () in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows:10 ~rate:200.0 ~start:0.05
      ~duration:2.0
      ~src_net:(Ipaddr.Prefix.network subnet_b)
      ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () ->
      let app =
        Opennf_apps.Lb_monitor.create fab.ctrl
          ~instances:[ (nf1, [ subnet_a; subnet_b ]) ]
          ~sync_period:0.5 ()
      in
      Proc.sleep 1.0;
      let report = Opennf_apps.Lb_monitor.move_prefix app subnet_b ~to_:nf2 in
      Alcotest.(check bool) "some flows moved" true (report.Move.per_chunks > 0);
      Alcotest.(check (list (pair string (list bool))))
        "assignment updated"
        [ ("bro1", [ true ]); ("bro2", [ true ]) ]
        (List.map
           (fun (n, ps) ->
             (n, List.map (fun p -> p = subnet_a || p = subnet_b) ps))
           (List.sort compare (Opennf_apps.Lb_monitor.assignment app)));
      Proc.sleep 1.2;
      Alcotest.(check bool) "periodic syncs ran" true
        (Opennf_apps.Lb_monitor.syncs_performed app > 0);
      Opennf_apps.Lb_monitor.stop app);
  Fabric.run fab

let test_lb_rejects_bad_prefix_moves () =
  let fab, _, _, nf1, nf2 = ids_pair () in
  Proc.spawn fab.engine (fun () ->
      let app =
        Opennf_apps.Lb_monitor.create fab.ctrl ~instances:[ (nf1, [ subnet_a ]) ] ()
      in
      Alcotest.(check bool) "unknown prefix refused" true
        (try
           ignore (Opennf_apps.Lb_monitor.move_prefix app subnet_b ~to_:nf2);
           false
         with Invalid_argument _ -> true);
      Alcotest.(check bool) "same-instance move refused" true
        (try
           ignore (Opennf_apps.Lb_monitor.move_prefix app subnet_a ~to_:nf1);
           false
         with Invalid_argument _ -> true);
      Opennf_apps.Lb_monitor.stop app);
  Fabric.run fab

let test_lb_scan_detected_across_split () =
  (* The headline property: a scan split across instances is still
     caught, because counters are copied and kept in sync. *)
  let fab, ids1, ids2, nf1, nf2 = ids_pair ~scan_threshold:12 () in
  let gen = Opennf_trace.Gen.create ~seed:4 () in
  let scanner = ip 203 0 113 66 in
  let scan_a =
    Opennf_trace.Gen.port_scan gen ~src:scanner
      ~dst:(Ipaddr.of_int (Ipaddr.to_int (Ipaddr.Prefix.network subnet_a) + 7))
      ~ports:(List.init 8 (fun i -> 1000 + i))
      ~start:0.1 ~gap:0.1 ()
  in
  let scan_b =
    Opennf_trace.Gen.port_scan gen ~src:scanner
      ~dst:(Ipaddr.of_int (Ipaddr.to_int (Ipaddr.Prefix.network subnet_b) + 7))
      ~ports:(List.init 8 (fun i -> 2000 + i))
      ~start:0.15 ~gap:0.1 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p)
    (Opennf_trace.Gen.merge [ scan_a; scan_b ]);
  Proc.spawn fab.engine (fun () ->
      let app =
        Opennf_apps.Lb_monitor.create fab.ctrl
          ~instances:[ (nf1, [ subnet_a; subnet_b ]) ]
          ~sync_period:0.3 ()
      in
      Proc.sleep 0.5;
      ignore (Opennf_apps.Lb_monitor.move_prefix app subnet_b ~to_:nf2);
      Proc.sleep 1.5;
      Opennf_apps.Lb_monitor.stop app);
  Fabric.run fab;
  Alcotest.(check bool) "scan detected despite the split" true
    (scans ids1 <> [] || scans ids2 <> [])

(* --- failure recovery (Figure 9) --------------------------------------------- *)

let test_failover_standby_has_state () =
  let fab, _, standby_ids, primary, standby = ids_pair () in
  let gen = Opennf_trace.Gen.create ~seed:6 () in
  let http =
    List.concat_map
      (fun i ->
        Opennf_trace.Gen.http_session gen
          ~client:(ip 10 0 1 (10 + i))
          ~server:(ip 8 8 8 8) ~sport:(31000 + i)
          ~start:(0.1 +. (0.1 *. float_of_int i))
          ~url:"/x" ~body:(String.make 2000 'b') ())
      (List.init 5 Fun.id)
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) http;
  let app = ref None in
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any primary;
      app :=
        Some (Opennf_apps.Failover.init_standby fab.ctrl ~normal:primary ~standby ()));
  Fabric.run fab;
  let app = Option.get !app in
  Alcotest.(check bool) "refreshes happened" true
    (Opennf_apps.Failover.refreshes app > 0);
  Alcotest.(check bool) "standby holds connection state" true
    (Opennf_nfs.Ids.conn_count standby_ids > 0);
  Opennf_apps.Failover.stop app

let test_failover_scan_survives_failure () =
  let fab, primary_ids, standby_ids, primary, standby =
    ids_pair ~scan_threshold:10 ()
  in
  let gen = Opennf_trace.Gen.create ~seed:7 () in
  let scan =
    Opennf_trace.Gen.port_scan gen ~src:(ip 198 51 100 9) ~dst:(ip 10 0 1 99)
      ~ports:(List.init 10 (fun i -> 3000 + i))
      ~start:0.2 ~gap:0.15 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) scan;
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any primary;
      let app =
        Opennf_apps.Failover.init_standby fab.ctrl ~normal:primary ~standby ()
      in
      Proc.sleep 1.0;
      Opennf_apps.Failover.stop app;
      Opennf_apps.Failover.fail_over app ~filter:Filter.any);
  Fabric.run fab;
  Alcotest.(check int) "primary saw only half, no alert" 0
    (List.length (scans primary_ids));
  Alcotest.(check bool) "standby completes detection" true (scans standby_ids <> [])

(* --- selective remote processing --------------------------------------------- *)

let test_remote_proc_moves_only_flagged_flow () =
  let body, digest = Opennf_trace.Gen.malware_body 30_000 in
  let fab = Fabric.create ~seed:41 () in
  let local_ids = Opennf_nfs.Ids.create ~check_malware:false () in
  let cloud_ids = Opennf_nfs.Ids.create ~malware:[ digest ] () in
  let local, _ =
    Fabric.add_nf fab ~name:"local" ~impl:(Opennf_nfs.Ids.impl local_ids)
      ~costs:Costs.bro
  in
  let cloud, _ =
    Fabric.add_nf fab ~name:"cloud" ~impl:(Opennf_nfs.Ids.impl cloud_ids)
      ~costs:Costs.bro
  in
  let gen = Opennf_trace.Gen.create ~seed:2 () in
  let bad =
    Opennf_trace.Gen.http_session gen ~client:(ip 10 0 2 7) ~server:(ip 203 0 113 80)
      ~sport:34000 ~start:0.2 ~url:"/evil" ~agent:"IE6" ~body ~gap:0.002 ()
  in
  let good =
    Opennf_trace.Gen.http_session gen ~client:(ip 10 0 2 8) ~server:(ip 8 8 8 8)
      ~sport:35000 ~start:0.1 ~url:"/fine" ~body:(String.make 4000 'n') ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p)
    (Opennf_trace.Gen.merge [ bad; good ]);
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any local);
  let app =
    Opennf_apps.Remote_proc.start fab.ctrl ~local:[ (local, local_ids) ] ~cloud ()
  in
  Fabric.run fab;
  Alcotest.(check int) "exactly one flow offloaded" 1
    (Opennf_apps.Remote_proc.offload_count app);
  Alcotest.(check bool) "the malware flow" true
    (match Opennf_apps.Remote_proc.offloaded app with
    | [ k ] -> Ipaddr.equal (Flow.canonical k).Flow.src_ip (ip 10 0 2 7)
    | _ -> false);
  Alcotest.(check bool) "cloud catches the malware (loss-free move)" true
    (List.exists
       (function Opennf_nfs.Ids.Malware _ -> true | _ -> false)
       (Opennf_nfs.Ids.alert_log cloud_ids));
  Alcotest.(check bool) "clean flow stayed local" true
    (Opennf_nfs.Ids.conn_count local_ids >= 1)

let suite =
  [
    Alcotest.test_case "lb: move_prefix reassigns" `Quick
      test_lb_move_prefix_reassigns;
    Alcotest.test_case "lb: rejects bad moves" `Quick test_lb_rejects_bad_prefix_moves;
    Alcotest.test_case "lb: scan across split" `Quick
      test_lb_scan_detected_across_split;
    Alcotest.test_case "failover: standby state" `Quick
      test_failover_standby_has_state;
    Alcotest.test_case "failover: scan survives failure" `Quick
      test_failover_scan_survives_failure;
    Alcotest.test_case "remote: offloads only flagged flow" `Quick
      test_remote_proc_moves_only_flagged_flow;
  ]
