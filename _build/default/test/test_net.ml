(* Tests for the network substrate: addresses, flows, filters, flow
   tables, channels and the SDN switch. *)

module Engine = Opennf_sim.Engine
open Opennf_net

let ip = Ipaddr.v

(* --- ipaddr -------------------------------------------------------------- *)

let test_ip_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) "roundtrip" s
        (Ipaddr.to_string (Ipaddr.of_string s)))
    [ "0.0.0.0"; "10.1.2.3"; "255.255.255.255"; "192.168.0.1" ]

let test_ip_rejects_bad () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (try
           ignore (Ipaddr.of_string s);
           false
         with Invalid_argument _ -> true))
    [ "10.0.0"; "1.2.3.4.5"; "256.0.0.1"; "a.b.c.d"; "" ]

let test_prefix_membership () =
  let p = Ipaddr.Prefix.of_string "10.1.0.0/16" in
  Alcotest.(check bool) "inside" true (Ipaddr.Prefix.mem (ip 10 1 200 7) p);
  Alcotest.(check bool) "outside" false (Ipaddr.Prefix.mem (ip 10 2 0 1) p);
  let all = Ipaddr.Prefix.of_string "0.0.0.0/0" in
  Alcotest.(check bool) "/0 matches all" true (Ipaddr.Prefix.mem (ip 9 9 9 9) all)

let test_prefix_subset () =
  let p16 = Ipaddr.Prefix.of_string "10.1.0.0/16" in
  let p24 = Ipaddr.Prefix.of_string "10.1.5.0/24" in
  Alcotest.(check bool) "/24 in /16" true (Ipaddr.Prefix.subset p24 p16);
  Alcotest.(check bool) "/16 not in /24" false (Ipaddr.Prefix.subset p16 p24);
  Alcotest.(check bool) "self" true (Ipaddr.Prefix.subset p16 p16)

let test_prefix_normalizes_host_bits () =
  let p = Ipaddr.Prefix.make (ip 10 1 2 3) 16 in
  Alcotest.(check string) "zeroed" "10.1.0.0/16" (Ipaddr.Prefix.to_string p)

(* --- flow ----------------------------------------------------------------- *)

let key = Flow.make ~src:(ip 10 0 0 1) ~dst:(ip 172 16 0 1) ~sport:1234 ~dport:80 ()

let test_flow_canonical_involution () =
  Alcotest.(check bool) "canonical(k) = canonical(rev k)" true
    (Flow.equal (Flow.canonical key) (Flow.canonical (Flow.reverse key)))

let test_flow_reverse_involution () =
  Alcotest.(check bool) "rev rev = id" true
    (Flow.equal key (Flow.reverse (Flow.reverse key)))

let flow_arbitrary =
  QCheck.make
    ~print:(fun k -> Flow.to_string k)
    QCheck.Gen.(
      let ip_gen = map Ipaddr.of_int (int_bound 0xFFFFFF) in
      let port = int_bound 65535 in
      map
        (fun (src, dst, sport, dport) -> Flow.make ~src ~dst ~sport ~dport ())
        (quad ip_gen ip_gen port port))

let flow_canonical_prop =
  QCheck.Test.make ~name:"flow canonical direction-independent" ~count:500
    flow_arbitrary (fun k ->
      Flow.equal (Flow.canonical k) (Flow.canonical (Flow.reverse k)))

let flow_hash_consistent_prop =
  QCheck.Test.make ~name:"flow equal implies same hash" ~count:500
    flow_arbitrary (fun k -> Flow.hash k = Flow.hash { k with Flow.src_ip = k.Flow.src_ip })

(* --- filter ---------------------------------------------------------------- *)

let test_filter_any_matches () =
  Alcotest.(check bool) "any" true (Filter.matches_key Filter.any key)

let test_filter_directed_vs_flow () =
  let f = Filter.of_src_host (ip 10 0 0 1) in
  Alcotest.(check bool) "directed forward" true (Filter.matches_key f key);
  Alcotest.(check bool) "directed reverse" false
    (Filter.matches_key f (Flow.reverse key));
  Alcotest.(check bool) "flow-level both" true
    (Filter.matches_flow f (Flow.reverse key))

let test_filter_ports_proto () =
  let f = Filter.make ~proto:Flow.Tcp ~dst_port:80 () in
  Alcotest.(check bool) "matches" true (Filter.matches_key f key);
  let f2 = Filter.make ~dst_port:443 () in
  Alcotest.(check bool) "port mismatch" false (Filter.matches_key f2 key)

let test_filter_tcp_flag () =
  let f = Filter.make ~proto:Flow.Tcp ~tcp_flag:Packet.Syn () in
  let syn = Packet.create ~id:1 ~key ~flags:[ Syn ] ~sent_at:0.0 () in
  let ack = Packet.create ~id:2 ~key ~flags:[ Ack ] ~sent_at:0.0 () in
  Alcotest.(check bool) "syn matches" true (Filter.matches_packet f syn);
  Alcotest.(check bool) "ack does not" false (Filter.matches_packet f ack)

let test_filter_mirror () =
  let f = Filter.make ~src:(Ipaddr.Prefix.of_string "10.0.0.0/8") ~dst_port:80 () in
  let m = Filter.mirror f in
  Alcotest.(check bool) "mirrored dst" true
    (m.Filter.dst = Some (Ipaddr.Prefix.of_string "10.0.0.0/8"));
  Alcotest.(check bool) "mirrored sport" true (m.Filter.src_port = Some 80);
  Alcotest.(check bool) "double mirror" true (Filter.equal f (Filter.mirror m))

let test_filter_symmetric () =
  Alcotest.(check bool) "any symmetric" true (Filter.is_symmetric Filter.any);
  Alcotest.(check bool) "src filter not" false
    (Filter.is_symmetric (Filter.of_src_host (ip 1 2 3 4)))

let test_accepts_flowid () =
  let prefix_filter = Filter.of_src_prefix (Ipaddr.Prefix.of_string "10.0.0.0/8") in
  let flowid = Filter.of_key key in
  Alcotest.(check bool) "per-flow flowid accepted" true
    (Filter.accepts_flowid prefix_filter flowid);
  let host_flowid = Filter.of_src_host (ip 10 0 0 1) in
  Alcotest.(check bool) "host flowid accepted" true
    (Filter.accepts_flowid prefix_filter host_flowid);
  let other = Filter.of_src_host (ip 203 0 113 1) in
  (* Fields absent from the flowid are ignored: a dst-less flowid is
     accepted by mirror matching only through absent fields, so a
     completely foreign host is still rejected on the direct side but
     accepted via the mirror's wildcard — the filter cannot rule it out.
     Per-flow flowids (full 5-tuples) are exact. *)
  let full_other =
    Filter.of_key
      (Flow.make ~src:(ip 203 0 113 1) ~dst:(ip 203 0 113 2) ~sport:1 ~dport:2 ())
  in
  Alcotest.(check bool) "foreign 5-tuple rejected" false
    (Filter.accepts_flowid prefix_filter full_other);
  ignore other

let test_filter_exact_key () =
  Alcotest.(check (option string)) "full 5-tuple recovered"
    (Some (Flow.to_string key))
    (Option.map Flow.to_string (Filter.exact_key (Filter.of_key key)));
  Alcotest.(check bool) "partial filter has no key" true
    (Filter.exact_key (Filter.of_src_host (ip 1 1 1 1)) = None)

let test_filter_app_field () =
  let flowid = Filter.of_app "/objects/a" in
  Alcotest.(check bool) "app flowid self-accepted" true
    (Filter.accepts_flowid (Filter.of_app "/objects/a") flowid);
  Alcotest.(check bool) "different url rejected" false
    (Filter.accepts_flowid (Filter.of_app "/objects/b") flowid);
  Alcotest.(check bool) "wildcard accepts" true
    (Filter.accepts_flowid Filter.any flowid)

let accepts_own_flowid_prop =
  QCheck.Test.make ~name:"filter accepts its own flows' flowids" ~count:500
    flow_arbitrary (fun k ->
      Filter.accepts_flowid (Filter.of_key k) (Filter.of_key k)
      && Filter.accepts_flowid Filter.any (Filter.of_key k)
      && Filter.accepts_flowid
           (Filter.of_src_host k.Flow.src_ip)
           (Filter.of_key k))

let matches_flow_symmetric_prop =
  QCheck.Test.make ~name:"matches_flow is direction-independent" ~count:500
    flow_arbitrary (fun k ->
      let f = Filter.of_src_host k.Flow.src_ip in
      Filter.matches_flow f k = Filter.matches_flow f (Flow.reverse k))

(* --- flowtable ----------------------------------------------------------- *)

let pkt ?(flags = []) k = Packet.create ~id:0 ~key:k ~flags ~sent_at:0.0 ()

let test_flowtable_priority () =
  let t = Flowtable.create () in
  Flowtable.install t ~cookie:1 ~priority:100 ~filters:[ Filter.any ]
    ~actions:[ Flowtable.Forward "low" ];
  Flowtable.install t ~cookie:2 ~priority:200 ~filters:[ Filter.of_key key ]
    ~actions:[ Flowtable.Forward "high" ];
  (match Flowtable.lookup t (pkt key) with
  | Some r -> Alcotest.(check int) "high priority wins" 2 r.Flowtable.cookie
  | None -> Alcotest.fail "no match");
  let other = Flow.make ~src:(ip 9 9 9 9) ~dst:(ip 8 8 8 8) ~sport:1 ~dport:2 () in
  match Flowtable.lookup t (pkt other) with
  | Some r -> Alcotest.(check int) "fallback" 1 r.Flowtable.cookie
  | None -> Alcotest.fail "no fallback"

let test_flowtable_replace_cookie () =
  let t = Flowtable.create () in
  Flowtable.install t ~cookie:7 ~priority:100 ~filters:[ Filter.any ]
    ~actions:[ Flowtable.Forward "a" ];
  Flowtable.install t ~cookie:7 ~priority:100 ~filters:[ Filter.any ]
    ~actions:[ Flowtable.Forward "b" ];
  Alcotest.(check int) "one rule" 1 (Flowtable.size t);
  match Flowtable.lookup t (pkt key) with
  | Some { Flowtable.actions = [ Flowtable.Forward "b" ]; _ } -> ()
  | _ -> Alcotest.fail "replacement not in effect"

let test_flowtable_tie_latest_wins () =
  let t = Flowtable.create () in
  Flowtable.install t ~cookie:1 ~priority:100 ~filters:[ Filter.any ]
    ~actions:[ Flowtable.Forward "first" ];
  Flowtable.install t ~cookie:2 ~priority:100 ~filters:[ Filter.any ]
    ~actions:[ Flowtable.Forward "second" ];
  match Flowtable.lookup t (pkt key) with
  | Some r -> Alcotest.(check int) "latest wins tie" 2 r.Flowtable.cookie
  | None -> Alcotest.fail "no match"

let test_flowtable_remove_and_counters () =
  let t = Flowtable.create () in
  Flowtable.install t ~cookie:1 ~priority:100 ~filters:[ Filter.any ]
    ~actions:[ Flowtable.Forward "x" ];
  ignore (Flowtable.lookup t (pkt key));
  ignore (Flowtable.lookup t (pkt key));
  (match Flowtable.find t ~cookie:1 with
  | Some r -> Alcotest.(check int) "matched counter" 2 r.Flowtable.matched
  | None -> Alcotest.fail "rule missing");
  Flowtable.remove t ~cookie:1;
  Alcotest.(check bool) "removed" true (Flowtable.lookup t (pkt key) = None)

let test_flowtable_multi_filter_rule () =
  let t = Flowtable.create () in
  Flowtable.install t ~cookie:1 ~priority:100
    ~filters:[ Filter.of_key key; Filter.of_key (Flow.reverse key) ]
    ~actions:[ Flowtable.Forward "nf" ];
  Alcotest.(check bool) "forward dir" true (Flowtable.lookup t (pkt key) <> None);
  Alcotest.(check bool) "reverse dir" true
    (Flowtable.lookup t (pkt (Flow.reverse key)) <> None)

(* --- channel ---------------------------------------------------------------- *)

let test_channel_latency_and_order () =
  let e = Engine.create () in
  let log = ref [] in
  let ch = Channel.create e ~latency:0.010 ~name:"t" () in
  Channel.set_handler ch (fun v -> log := (Engine.now e, v) :: !log);
  Channel.send ch 1;
  Engine.schedule e ~delay:0.001 (fun () -> Channel.send ch 2);
  Engine.run e;
  Alcotest.(check (list (pair (float 1e-9) int)))
    "latency + order"
    [ (0.010, 1); (0.011, 2) ]
    (List.rev !log)

let test_channel_bandwidth_serializes () =
  let e = Engine.create () in
  let log = ref [] in
  let ch = Channel.create e ~latency:0.0 ~bandwidth:1000.0 ~name:"t" () in
  Channel.set_handler ch (fun v -> log := (Engine.now e, v) :: !log);
  Channel.send ch ~size:500 "big";
  Channel.send ch ~size:100 "small";
  Engine.run e;
  Alcotest.(check (list (pair (float 1e-9) string)))
    "serialization delay"
    [ (0.5, "big"); (0.6, "small") ]
    (List.rev !log)

let test_channel_counts () =
  let e = Engine.create () in
  let ch = Channel.create e ~latency:0.0 ~name:"t" () in
  Channel.set_handler ch ignore;
  Channel.send ch ~size:10 ();
  Channel.send ch ~size:20 ();
  Alcotest.(check int) "count" 2 (Channel.sent_count ch);
  Alcotest.(check int) "bytes" 30 (Channel.bytes_sent ch);
  Engine.run e

(* --- switch -------------------------------------------------------------------- *)

type sw_bed = {
  e : Engine.t;
  audit : Audit.t;
  sw : Switch.t;
  received : (string * int) list ref;  (* port, packet id *)
  ctrl_msgs : Switch.from_switch list ref;
}

let switch_bed ?flow_mod_delay () =
  let e = Engine.create () in
  let audit = Audit.create e in
  let sw = Switch.create e audit ~name:"sw" ?flow_mod_delay () in
  let received = ref [] in
  let attach name =
    let ch = Channel.create e ~latency:0.0001 ~name () in
    Channel.set_handler ch (fun (p : Packet.t) ->
        received := (name, p.Packet.id) :: !received);
    Switch.attach_port sw ~name ch
  in
  attach "nf1";
  attach "nf2";
  let ctrl_msgs = ref [] in
  let to_ctrl = Channel.create e ~latency:0.0001 ~name:"sw->ctrl" () in
  Channel.set_handler to_ctrl (fun m -> ctrl_msgs := m :: !ctrl_msgs);
  Switch.set_controller sw to_ctrl;
  { e; audit; sw; received; ctrl_msgs }

let test_switch_forwards_by_rule () =
  let b = switch_bed () in
  Switch.control b.sw
    (Switch.Install
       { cookie = 1; priority = 100; filters = [ Filter.any ];
         actions = [ Flowtable.Forward "nf1" ] });
  Engine.schedule b.e ~delay:0.05 (fun () ->
      Switch.inject b.sw (Packet.create ~id:42 ~key ~sent_at:0.05 ()));
  Engine.run b.e;
  Alcotest.(check (list (pair string int))) "delivered" [ ("nf1", 42) ] !(b.received)

let test_switch_flow_mod_delay () =
  let b = switch_bed ~flow_mod_delay:0.010 () in
  Switch.control b.sw
    (Switch.Install
       { cookie = 1; priority = 100; filters = [ Filter.any ];
         actions = [ Flowtable.Forward "nf1" ] });
  (* Before the mod applies: table miss. *)
  Engine.schedule b.e ~delay:0.005 (fun () ->
      Switch.inject b.sw (Packet.create ~id:1 ~key ~sent_at:0.005 ()));
  Engine.schedule b.e ~delay:0.015 (fun () ->
      Switch.inject b.sw (Packet.create ~id:2 ~key ~sent_at:0.015 ()));
  Engine.run b.e;
  Alcotest.(check (list (pair string int))) "only the late one" [ ("nf1", 2) ]
    !(b.received);
  Alcotest.(check int) "early one missed" 1 (Switch.table_misses b.sw)

let test_switch_packet_in_and_multi_action () =
  let b = switch_bed () in
  Switch.control b.sw
    (Switch.Install
       { cookie = 1; priority = 100; filters = [ Filter.any ];
         actions = [ Flowtable.Forward "nf1"; Flowtable.To_controller ] });
  Engine.schedule b.e ~delay:0.05 (fun () ->
      Switch.inject b.sw (Packet.create ~id:7 ~key ~sent_at:0.05 ()));
  Engine.run b.e;
  Alcotest.(check (list (pair string int))) "forwarded" [ ("nf1", 7) ] !(b.received);
  match !(b.ctrl_msgs) with
  | [ Switch.Packet_in { packet; _ } ] ->
    Alcotest.(check int) "packet-in id" 7 packet.Packet.id
  | _ -> Alcotest.fail "expected exactly one packet-in"

let test_switch_barrier_after_mods () =
  let b = switch_bed ~flow_mod_delay:0.010 () in
  Switch.control b.sw
    (Switch.Install
       { cookie = 1; priority = 100; filters = [ Filter.any ];
         actions = [ Flowtable.Forward "nf1" ] });
  Switch.control b.sw (Switch.Barrier { id = 9 });
  let reply_at = ref 0.0 in
  let saw = ref false in
  Channel.set_handler
    (let ch = Channel.create b.e ~latency:0.0 ~name:"x" () in
     Switch.set_controller b.sw ch;
     ch)
    (fun m ->
      match m with
      | Switch.Barrier_reply { id } ->
        Alcotest.(check int) "id echo" 9 id;
        saw := true;
        reply_at := Engine.now b.e
      | Switch.Packet_in _ -> ());
  Engine.run b.e;
  Alcotest.(check bool) "reply seen" true !saw;
  Alcotest.(check bool) "after flow-mod applied" true (!reply_at >= 0.010)

let test_switch_packet_out_rate_limit () =
  let e = Engine.create () in
  let audit = Audit.create e in
  let sw = Switch.create e audit ~name:"sw" ~packet_out_rate:100.0 () in
  let times = ref [] in
  let ch = Channel.create e ~latency:0.0 ~name:"nf1" () in
  Channel.set_handler ch (fun (_ : Packet.t) -> times := Engine.now e :: !times);
  Switch.attach_port sw ~name:"nf1" ch;
  for i = 0 to 4 do
    Switch.control sw
      (Switch.Packet_out
         { port = "nf1"; packet = Packet.create ~id:i ~key ~sent_at:0.0 () })
  done;
  Alcotest.(check int) "backlog visible" 5 (Switch.packet_out_backlog sw);
  Engine.run e;
  match List.rev !times with
  | [ _; t2; _; _; t5 ] ->
    Alcotest.(check (float 1e-9)) "second at 1/rate spacing" 0.02 t2;
    Alcotest.(check (float 1e-9)) "fifth" 0.05 t5
  | _ -> Alcotest.fail "expected 5 deliveries"

let suite =
  [
    Alcotest.test_case "ipaddr: string roundtrip" `Quick test_ip_string_roundtrip;
    Alcotest.test_case "ipaddr: rejects bad input" `Quick test_ip_rejects_bad;
    Alcotest.test_case "prefix: membership" `Quick test_prefix_membership;
    Alcotest.test_case "prefix: subset" `Quick test_prefix_subset;
    Alcotest.test_case "prefix: normalizes" `Quick test_prefix_normalizes_host_bits;
    Alcotest.test_case "flow: canonical" `Quick test_flow_canonical_involution;
    Alcotest.test_case "flow: reverse involution" `Quick
      test_flow_reverse_involution;
    QCheck_alcotest.to_alcotest flow_canonical_prop;
    QCheck_alcotest.to_alcotest flow_hash_consistent_prop;
    Alcotest.test_case "filter: any" `Quick test_filter_any_matches;
    Alcotest.test_case "filter: directed vs flow-level" `Quick
      test_filter_directed_vs_flow;
    Alcotest.test_case "filter: ports/proto" `Quick test_filter_ports_proto;
    Alcotest.test_case "filter: tcp flag" `Quick test_filter_tcp_flag;
    Alcotest.test_case "filter: mirror" `Quick test_filter_mirror;
    Alcotest.test_case "filter: symmetry" `Quick test_filter_symmetric;
    Alcotest.test_case "filter: accepts_flowid" `Quick test_accepts_flowid;
    Alcotest.test_case "filter: exact key" `Quick test_filter_exact_key;
    Alcotest.test_case "filter: app (URL) field" `Quick test_filter_app_field;
    QCheck_alcotest.to_alcotest accepts_own_flowid_prop;
    QCheck_alcotest.to_alcotest matches_flow_symmetric_prop;
    Alcotest.test_case "flowtable: priority" `Quick test_flowtable_priority;
    Alcotest.test_case "flowtable: cookie replace" `Quick
      test_flowtable_replace_cookie;
    Alcotest.test_case "flowtable: tie latest wins" `Quick
      test_flowtable_tie_latest_wins;
    Alcotest.test_case "flowtable: remove & counters" `Quick
      test_flowtable_remove_and_counters;
    Alcotest.test_case "flowtable: multi-filter rule" `Quick
      test_flowtable_multi_filter_rule;
    Alcotest.test_case "channel: latency & order" `Quick
      test_channel_latency_and_order;
    Alcotest.test_case "channel: bandwidth" `Quick test_channel_bandwidth_serializes;
    Alcotest.test_case "channel: counters" `Quick test_channel_counts;
    Alcotest.test_case "switch: forwards by rule" `Quick test_switch_forwards_by_rule;
    Alcotest.test_case "switch: flow-mod delay" `Quick test_switch_flow_mod_delay;
    Alcotest.test_case "switch: packet-in & multi-action" `Quick
      test_switch_packet_in_and_multi_action;
    Alcotest.test_case "switch: barrier waits for mods" `Quick
      test_switch_barrier_after_mods;
    Alcotest.test_case "switch: packet-out rate limit" `Quick
      test_switch_packet_out_rate_limit;
  ]
