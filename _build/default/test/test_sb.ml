(* Tests for the NF runtime: event actions and flags, buffering and
   release order, tombstones, streaming gets, costs, and the in-service
   synchronization that keeps exports loss-free. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
module Protocol = Opennf_sb.Protocol
module Runtime = Opennf_sb.Runtime
module Nf_api = Opennf_sb.Nf_api
open Opennf_net
open Opennf_state

let ip = Ipaddr.v
let key = Flow.make ~src:(ip 10 0 0 1) ~dst:(ip 172 16 0 1) ~sport:1234 ~dport:80 ()

(* A probe NF: records processed packet ids, exports one chunk per seen
   flow. *)
type probe = { mutable seen : int list; flows : unit Store.Perflow.t }

let probe_impl p =
  {
    Nf_api.kind = "probe";
    process_packet =
      (fun pkt ->
        p.seen <- pkt.Packet.id :: p.seen;
        Store.Perflow.set p.flows pkt.Packet.key ());
    list_perflow =
      (fun filter ->
        List.map (fun (k, _) -> Filter.of_key k)
          (Store.Perflow.matching p.flows filter));
    export_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | Some k when Store.Perflow.mem p.flows k ->
          Some (Chunk.v ~kind:"probe" (String.make 64 'p'))
        | _ -> None);
    import_perflow =
      (fun flowid _ ->
        match Filter.exact_key flowid with
        | Some k -> Store.Perflow.set p.flows k ()
        | None -> ());
    delete_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | Some k -> Store.Perflow.remove p.flows k
        | None -> ());
    list_multiflow = (fun _ -> []);
    export_multiflow = (fun _ -> None);
    import_multiflow = (fun _ _ -> ());
    delete_multiflow = (fun _ -> ());
    export_allflows = (fun () -> []);
    import_allflows = (fun _ -> ());
  }

type bed = {
  e : Engine.t;
  rt : Runtime.t;
  probe : probe;
  replies : Protocol.reply list ref;
}

let make_bed ?(costs = Costs.dummy) () =
  let e = Engine.create () in
  let audit = Audit.create e in
  let probe = { seen = []; flows = Store.Perflow.create () } in
  let rt = Runtime.create e audit ~name:"nf" ~impl:(probe_impl probe) ~costs () in
  let replies = ref [] in
  let ch = Channel.create e ~latency:0.0001 ~name:"nf->ctrl" () in
  Channel.set_handler ch (fun r -> replies := r :: !replies);
  Runtime.set_controller rt ch;
  { e; rt; probe; replies }

let packet ?(id = 1) ?(k = key) ?(flags = []) () =
  Packet.create ~id ~key:k ~flags ~sent_at:0.0 ()

let events b =
  List.filter_map
    (function
      | Protocol.Event { packet; disposition; _ } ->
        Some (packet.Packet.id, disposition)
      | _ -> None)
    (List.rev !(b.replies))

let test_process_normally () =
  let b = make_bed () in
  Runtime.receive b.rt (packet ~id:5 ());
  Engine.run b.e;
  Alcotest.(check (list int)) "processed" [ 5 ] b.probe.seen;
  Alcotest.(check int) "counter" 1 (Runtime.processed_count b.rt)

let test_event_drop () =
  let b = make_bed () in
  Runtime.control b.rt (Protocol.Enable_events { filter = Filter.any; action = Protocol.Drop });
  Runtime.receive b.rt (packet ~id:9 ());
  Engine.run b.e;
  Alcotest.(check (list int)) "not processed" [] b.probe.seen;
  Alcotest.(check int) "dropped" 1 (Runtime.dropped_count b.rt);
  Alcotest.(check (list (pair int bool))) "event raised with drop"
    [ (9, true) ]
    (List.map (fun (id, d) -> (id, d = Protocol.Drop)) (events b))

let test_event_drop_do_not_drop_flag () =
  let b = make_bed () in
  Runtime.control b.rt (Protocol.Enable_events { filter = Filter.any; action = Protocol.Drop });
  let p = packet ~id:3 () in
  p.Packet.do_not_drop <- true;
  Runtime.receive b.rt p;
  Engine.run b.e;
  Alcotest.(check (list int)) "processed despite drop filter" [ 3 ] b.probe.seen;
  match events b with
  | [ (3, Protocol.Process) ] -> ()
  | _ -> Alcotest.fail "expected a processed event"

let test_event_buffer_and_release () =
  let b = make_bed () in
  Runtime.control b.rt (Protocol.Enable_events { filter = Filter.any; action = Protocol.Buffer });
  Runtime.receive b.rt (packet ~id:1 ());
  Runtime.receive b.rt (packet ~id:2 ());
  Engine.run b.e;
  Alcotest.(check (list int)) "held" [] b.probe.seen;
  Alcotest.(check int) "buffered" 2 (Runtime.buffered_count b.rt);
  Runtime.control b.rt (Protocol.Disable_events { filter = Filter.any });
  Engine.run b.e;
  Alcotest.(check (list int)) "released in order" [ 1; 2 ] (List.rev b.probe.seen)

let test_released_before_later_arrivals () =
  let b = make_bed ~costs:{ Costs.dummy with Costs.proc_time = 0.001 } () in
  Runtime.control b.rt (Protocol.Enable_events { filter = Filter.any; action = Protocol.Buffer });
  Runtime.receive b.rt (packet ~id:1 ());
  Runtime.receive b.rt (packet ~id:2 ());
  (* Disable at t=0 (releasing 1,2), and let 3 arrive right after: the
     released packets must be processed before it. *)
  Engine.schedule b.e ~delay:0.0 (fun () ->
      Runtime.control b.rt (Protocol.Disable_events { filter = Filter.any });
      Runtime.receive b.rt (packet ~id:3 ()));
  Engine.run b.e;
  Alcotest.(check (list int)) "buffer drains first" [ 1; 2; 3 ]
    (List.rev b.probe.seen)

let test_buffer_do_not_buffer_flag () =
  let b = make_bed () in
  Runtime.control b.rt (Protocol.Enable_events { filter = Filter.any; action = Protocol.Buffer });
  let p = packet ~id:8 () in
  p.Packet.do_not_buffer <- true;
  Runtime.receive b.rt p;
  Engine.run b.e;
  Alcotest.(check (list int)) "processed through buffer filter" [ 8 ] b.probe.seen;
  match events b with
  | [ (8, Protocol.Process) ] -> ()
  | _ -> Alcotest.fail "expected processed event after do-not-buffer"

let test_event_process_action () =
  let b = make_bed () in
  Runtime.control b.rt (Protocol.Enable_events { filter = Filter.any; action = Protocol.Process });
  Runtime.receive b.rt (packet ~id:4 ());
  Engine.run b.e;
  Alcotest.(check (list int)) "processed" [ 4 ] b.probe.seen;
  match events b with
  | [ (4, Protocol.Process) ] -> ()
  | _ -> Alcotest.fail "expected processed event"

let test_event_filter_scoping () =
  let b = make_bed () in
  Runtime.control b.rt
    (Protocol.Enable_events
       { filter = Filter.of_src_host (ip 10 0 0 1); action = Protocol.Drop });
  let other = Flow.make ~src:(ip 9 9 9 9) ~dst:(ip 8 8 8 8) ~sport:1 ~dport:2 () in
  Runtime.receive b.rt (packet ~id:1 ());
  (* Reverse direction of a matching flow also triggers. *)
  Runtime.receive b.rt (packet ~id:2 ~k:(Flow.reverse key) ());
  Runtime.receive b.rt (packet ~id:3 ~k:other ());
  Engine.run b.e;
  Alcotest.(check (list int)) "only the foreign packet processed" [ 3 ]
    b.probe.seen;
  Alcotest.(check int) "two events" 2 (List.length (events b))

let test_tombstones_drop_moved_flows () =
  let b = make_bed () in
  Runtime.receive b.rt (packet ~id:1 ());
  Engine.run b.e;
  Runtime.control b.rt (Protocol.Del_perflow { req = 1; flowids = [ Filter.of_key key ] });
  Engine.run b.e;
  Runtime.receive b.rt (packet ~id:2 ());
  Engine.run b.e;
  Alcotest.(check (list int)) "post-del packet dropped" [ 1 ]
    (List.rev b.probe.seen);
  Alcotest.(check int) "tombstone counter" 1 (Runtime.tombstone_dropped b.rt);
  (* A put for the flow clears the tombstone. *)
  Runtime.control b.rt
    (Protocol.Put_perflow
       { req = 2; chunks = [ (Filter.of_key key, Chunk.v ~kind:"probe" "x") ] });
  Engine.run b.e;
  Runtime.receive b.rt (packet ~id:3 ());
  Engine.run b.e;
  Alcotest.(check (list int)) "processing resumes" [ 1; 3 ] (List.rev b.probe.seen)

let test_get_streaming_pieces () =
  let b = make_bed () in
  List.iteri
    (fun i _ ->
      Runtime.receive b.rt
        (packet ~id:i
           ~k:(Flow.make ~src:(ip 10 0 0 (1 + i)) ~dst:(ip 172 16 0 1) ~sport:i ~dport:80 ())
           ()))
    [ (); (); () ];
  Engine.run b.e;
  Runtime.control b.rt
    (Protocol.Get_perflow
       { req = 42; filter = Filter.any; stream = true; late_lock = false; compress = false });
  Engine.run b.e;
  let pieces =
    List.filter (function Protocol.Piece { req = 42; _ } -> true | _ -> false)
      !(b.replies)
  in
  let dones =
    List.filter (function Protocol.Done { req = 42; _ } -> true | _ -> false)
      !(b.replies)
  in
  Alcotest.(check int) "three pieces" 3 (List.length pieces);
  Alcotest.(check int) "one done" 1 (List.length dones)

let test_get_bulk () =
  let b = make_bed () in
  Runtime.receive b.rt (packet ~id:1 ());
  Engine.run b.e;
  Runtime.control b.rt
    (Protocol.Get_perflow
       { req = 1; filter = Filter.any; stream = false; late_lock = false; compress = false });
  Engine.run b.e;
  match
    List.find_opt (function Protocol.Done { req = 1; _ } -> true | _ -> false)
      !(b.replies)
  with
  | Some (Protocol.Done { chunks; _ }) ->
    Alcotest.(check int) "one chunk in done" 1 (List.length chunks)
  | _ -> Alcotest.fail "no done"

let test_get_charges_serialization_time () =
  let costs = { Costs.dummy with Costs.serialize_chunk = 0.01 } in
  let b = make_bed ~costs () in
  for i = 0 to 9 do
    Runtime.receive b.rt
      (packet ~id:i
         ~k:(Flow.make ~src:(ip 10 0 0 (1 + i)) ~dst:(ip 172 16 0 1) ~sport:i ~dport:80 ())
         ())
  done;
  Engine.run b.e;
  Runtime.control b.rt
    (Protocol.Get_perflow
       { req = 1; filter = Filter.any; stream = false; late_lock = false; compress = false });
  let t0 = Engine.now b.e in
  Engine.run b.e;
  Alcotest.(check bool) "10 chunks take >= 100ms" true (Engine.now b.e -. t0 >= 0.1)

let test_late_lock_installs_per_flow_filters () =
  let costs = { Costs.dummy with Costs.serialize_chunk = 0.005 } in
  let b = make_bed ~costs () in
  Runtime.receive b.rt (packet ~id:1 ());
  Engine.run b.e;
  Runtime.control b.rt
    (Protocol.Get_perflow
       { req = 1; filter = Filter.any; stream = true; late_lock = true; compress = false });
  (* A packet arriving after the flow's chunk is captured is dropped and
     evented, not processed. *)
  Engine.schedule b.e ~delay:0.006 (fun () -> Runtime.receive b.rt (packet ~id:2 ()));
  Engine.run b.e;
  Alcotest.(check (list int)) "second packet locked out" [ 1 ]
    (List.rev b.probe.seen);
  Alcotest.(check bool) "drop event raised" true
    (List.exists (fun (id, d) -> id = 2 && d = Protocol.Drop) (events b));
  (* Disabling the parent filter also removes the late-lock children. *)
  Runtime.control b.rt (Protocol.Disable_events { filter = Filter.any });
  Engine.run b.e;
  Runtime.receive b.rt (packet ~id:3 ());
  Engine.run b.e;
  Alcotest.(check bool) "flow unlocked after disable... but tombstone-free" true
    (List.mem 3 b.probe.seen)

let test_export_waits_for_in_service_packet () =
  (* A packet already on the CPU when the get arrives must have its
     update captured (the per-connection-mutex behaviour, §7). *)
  let costs = { Costs.dummy with Costs.proc_time = 0.010 } in
  let b = make_bed ~costs () in
  Runtime.receive b.rt (packet ~id:1 ());
  (* Get arrives 2ms into the 10ms service. *)
  Engine.schedule b.e ~delay:0.002 (fun () ->
      Runtime.control b.rt
        (Protocol.Get_perflow
           { req = 1; filter = Filter.any; stream = false; late_lock = false; compress = false }));
  Engine.run b.e;
  match
    List.find_opt (function Protocol.Done { req = 1; _ } -> true | _ -> false)
      !(b.replies)
  with
  | Some (Protocol.Done { chunks; _ }) ->
    Alcotest.(check int) "the in-flight packet's flow was captured" 1
      (List.length chunks)
  | _ -> Alcotest.fail "no done"

let test_processing_penalty_during_export () =
  let costs =
    { Costs.dummy with Costs.proc_time = 0.001; Costs.serialize_chunk = 0.05;
      Costs.export_penalty = 0.5 }
  in
  let b = make_bed ~costs () in
  Runtime.receive b.rt (packet ~id:1 ());
  Engine.run b.e;
  (* Start a slow export, then time a packet processed during it. *)
  Runtime.control b.rt
    (Protocol.Get_perflow
       { req = 1; filter = Filter.of_src_host (ip 99 0 0 1); stream = false;
         late_lock = false; compress = false });
  ignore b;
  Engine.run b.e;
  Alcotest.(check bool) "busy flag cleared after ops" false (Runtime.busy b.rt)

let suite =
  [
    Alcotest.test_case "runtime: processes packets" `Quick test_process_normally;
    Alcotest.test_case "runtime: drop action" `Quick test_event_drop;
    Alcotest.test_case "runtime: do-not-drop flag" `Quick
      test_event_drop_do_not_drop_flag;
    Alcotest.test_case "runtime: buffer & release" `Quick
      test_event_buffer_and_release;
    Alcotest.test_case "runtime: release ordering" `Quick
      test_released_before_later_arrivals;
    Alcotest.test_case "runtime: do-not-buffer flag" `Quick
      test_buffer_do_not_buffer_flag;
    Alcotest.test_case "runtime: process action" `Quick test_event_process_action;
    Alcotest.test_case "runtime: filter scoping" `Quick test_event_filter_scoping;
    Alcotest.test_case "runtime: tombstones" `Quick test_tombstones_drop_moved_flows;
    Alcotest.test_case "runtime: streaming get" `Quick test_get_streaming_pieces;
    Alcotest.test_case "runtime: bulk get" `Quick test_get_bulk;
    Alcotest.test_case "runtime: serialization time" `Quick
      test_get_charges_serialization_time;
    Alcotest.test_case "runtime: late locking" `Quick
      test_late_lock_installs_per_flow_filters;
    Alcotest.test_case "runtime: export waits for in-service packet" `Quick
      test_export_waits_for_in_service_packet;
    Alcotest.test_case "runtime: export penalty bookkeeping" `Quick
      test_processing_penalty_during_export;
  ]
