(* Unit tests for the audit ledger itself — the checker the safety
   claims rest on must be right. *)

module Engine = Opennf_sim.Engine
open Opennf_net

let ip = Ipaddr.v
let key = Flow.make ~src:(ip 10 0 0 1) ~dst:(ip 172 16 0 1) ~sport:1 ~dport:80 ()
let other = Flow.make ~src:(ip 9 9 9 9) ~dst:(ip 8 8 8 8) ~sport:2 ~dport:443 ()

let pkt id k = Packet.create ~id ~key:k ~sent_at:0.0 ()

let bed () =
  let e = Engine.create () in
  (e, Audit.create e)

let test_forwarded_order_dedupes () =
  let _, a = bed () in
  Audit.log_forward a (pkt 1 key) ~dst:"nf1";
  Audit.log_forward a (pkt 2 key) ~dst:"nf1";
  Audit.log_forward a (pkt 1 key) ~dst:"nf2" (* relay of 1 *);
  Alcotest.(check (list int)) "first positions kept" [ 1; 2 ]
    (Audit.forwarded_order a)

let test_lost_and_processed () =
  let _, a = bed () in
  Audit.log_forward a (pkt 1 key) ~dst:"nf1";
  Audit.log_forward a (pkt 2 key) ~dst:"nf1";
  Audit.log_forward a (pkt 3 key) ~dst:"elsewhere";
  Audit.log_process a (pkt 1 key) ~nf:"nf1";
  Alcotest.(check (list int)) "2 lost, 3 out of scope" [ 2 ]
    (Audit.lost a ~nfs:[ "nf1" ]);
  Alcotest.(check int) "processed count" 1 (Audit.processed_count ~nf:"nf1" a)

let test_duplicated () =
  let _, a = bed () in
  Audit.log_process a (pkt 1 key) ~nf:"nf1";
  Audit.log_process a (pkt 1 key) ~nf:"nf2";
  Audit.log_process a (pkt 2 key) ~nf:"nf1";
  Alcotest.(check (list int)) "id 1 twice" [ 1 ] (Audit.duplicated a)

let test_order_violations_detects_inversion () =
  let _, a = bed () in
  Audit.log_forward a (pkt 1 key) ~dst:"nf1";
  Audit.log_forward a (pkt 2 key) ~dst:"nf1";
  Audit.log_process a (pkt 2 key) ~nf:"nf1";
  Audit.log_process a (pkt 1 key) ~nf:"nf1";
  Alcotest.(check (list (pair int int))) "inversion found" [ (1, 2) ]
    (Audit.order_violations a)

let test_order_violations_in_order_silent () =
  let _, a = bed () in
  Audit.log_forward a (pkt 1 key) ~dst:"nf1";
  Audit.log_forward a (pkt 2 key) ~dst:"nf1";
  Audit.log_process a (pkt 1 key) ~nf:"nf1";
  Audit.log_process a (pkt 2 key) ~nf:"nf2";
  Alcotest.(check (list (pair int int))) "cross-instance but ordered" []
    (Audit.order_violations a)

let test_order_violations_filtered () =
  let _, a = bed () in
  Audit.log_forward a (pkt 1 key) ~dst:"nf1";
  Audit.log_forward a (pkt 2 other) ~dst:"nf1";
  Audit.log_process a (pkt 2 other) ~nf:"nf1";
  Audit.log_process a (pkt 1 key) ~nf:"nf1";
  (* Globally inverted, but each flow alone is ordered. *)
  Alcotest.(check int) "global inversion" 1
    (List.length (Audit.order_violations a));
  Alcotest.(check (list (pair int int))) "per-flow clean" []
    (Audit.order_violations ~filter:(Filter.of_key key) a)

let test_arrival_vs_forward_order () =
  let _, a = bed () in
  (* Arrives 1 then 2, but 1 is diverted (no forward) and re-injected
     late: forwarding order is 2,1 while arrival order is 1,2. *)
  Audit.log_switch_arrival a (pkt 1 key);
  Audit.log_switch_arrival a (pkt 2 key);
  Audit.log_forward a (pkt 2 key) ~dst:"nf1";
  Audit.log_forward a (pkt 1 key) ~dst:"nf1";
  Audit.log_process a (pkt 2 key) ~nf:"nf1";
  Audit.log_process a (pkt 1 key) ~nf:"nf1";
  Alcotest.(check (list (pair int int))) "fine vs forwarding" []
    (Audit.order_violations a);
  Alcotest.(check (list (pair int int))) "violation vs arrival" [ (1, 2) ]
    (Audit.arrival_order_violations a)

let test_added_latency () =
  let e, a = bed () in
  Engine.schedule e ~delay:1.0 (fun () -> Audit.log_nf_arrival a (pkt 5 key) ~nf:"nf1");
  Engine.schedule e ~delay:1.5 (fun () -> Audit.log_process a (pkt 5 key) ~nf:"nf2");
  Engine.run e;
  match Audit.added_latency a ~pkt:5 with
  | Some l -> Alcotest.(check (float 1e-9)) "0.5s" 0.5 l
  | None -> Alcotest.fail "latency missing"

let test_evented_and_buffered_ids () =
  let _, a = bed () in
  Audit.log_evented a (pkt 1 key) ~nf:"nf1";
  Audit.log_evented a (pkt 2 key) ~nf:"nf2";
  Audit.log_buffered a (pkt 3 key) ~nf:"nf2";
  Alcotest.(check (list int)) "all events" [ 1; 2 ] (Audit.evented_ids a);
  Alcotest.(check (list int)) "per nf" [ 2 ] (Audit.evented_ids ~nf:"nf2" a);
  Alcotest.(check (list int)) "buffered" [ 3 ] (Audit.buffered_ids a)

let suite =
  [
    Alcotest.test_case "forwarded order dedupes relays" `Quick
      test_forwarded_order_dedupes;
    Alcotest.test_case "lost/processed accounting" `Quick test_lost_and_processed;
    Alcotest.test_case "duplicate detection" `Quick test_duplicated;
    Alcotest.test_case "order violation detection" `Quick
      test_order_violations_detects_inversion;
    Alcotest.test_case "ordered runs are silent" `Quick
      test_order_violations_in_order_silent;
    Alcotest.test_case "per-flow filtering" `Quick test_order_violations_filtered;
    Alcotest.test_case "arrival vs forwarding order" `Quick
      test_arrival_vs_forward_order;
    Alcotest.test_case "added latency" `Quick test_added_latency;
    Alcotest.test_case "evented/buffered queries" `Quick
      test_evented_and_buffered_ids;
  ]
