(* Unit and property tests for the utility layer: RNG, hashing, LZ,
   statistics and binary I/O. *)

module Rng = Opennf_util.Rng
module Hashing = Opennf_util.Hashing
module Lz = Opennf_util.Lz
module Stats = Opennf_util.Stats
module Bytes_io = Opennf_util.Bytes_io

(* --- rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:5 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:3.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f close to 3.0" mean)
    true
    (abs_float (mean -. 3.0) < 0.15)

let test_rng_pareto_heavy_tail () =
  let rng = Rng.create ~seed:6 in
  let n = 20000 in
  let above = ref 0 in
  for _ = 1 to n do
    if Rng.pareto rng ~shape:1.1 ~scale:60.0 > 1500.0 then incr above
  done;
  (* P(X > 1500) = (60/1500)^1.1 ~ 2.9%: heavy-tailed but not absurd. *)
  Alcotest.(check bool) "tail mass plausible" true (!above > 200 && !above < 1500)

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:8 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* --- hashing -------------------------------------------------------------- *)

let test_fnv_known_distinct () =
  Alcotest.(check bool) "distinct inputs, distinct hashes" true
    (Hashing.fnv1a64 "hello" <> Hashing.fnv1a64 "hellp");
  Alcotest.(check int64) "stable" (Hashing.fnv1a64 "x") (Hashing.fnv1a64 "x")

let test_fnv_sub_matches_whole () =
  let s = "abcdefgh" in
  Alcotest.(check int64) "substring hash"
    (Hashing.fnv1a64 "cde")
    (Hashing.fnv1a64_sub s ~pos:2 ~len:3)

let test_digest_streaming_invariance () =
  let d1 = Hashing.Digest_sig.create () in
  Hashing.Digest_sig.feed d1 "hello ";
  Hashing.Digest_sig.feed d1 "world";
  let d2 = Hashing.Digest_sig.create () in
  Hashing.Digest_sig.feed d2 "hello world";
  Alcotest.(check int64) "split-independent"
    (Hashing.Digest_sig.value d1)
    (Hashing.Digest_sig.value d2)

let test_digest_order_sensitive () =
  let d1 = Hashing.Digest_sig.create () in
  Hashing.Digest_sig.feed d1 "ab";
  let d2 = Hashing.Digest_sig.create () in
  Hashing.Digest_sig.feed d2 "ba";
  Alcotest.(check bool) "order matters" true
    (Hashing.Digest_sig.value d1 <> Hashing.Digest_sig.value d2)

let test_digest_export_restore () =
  let d = Hashing.Digest_sig.create () in
  Hashing.Digest_sig.feed d "partial";
  let resumed = Hashing.Digest_sig.restore (Hashing.Digest_sig.export d) in
  Hashing.Digest_sig.feed d " rest";
  Hashing.Digest_sig.feed resumed " rest";
  Alcotest.(check int64) "resumable"
    (Hashing.Digest_sig.value d)
    (Hashing.Digest_sig.value resumed)

(* --- lz -------------------------------------------------------------------- *)

let test_lz_roundtrip_cases () =
  List.iter
    (fun s ->
      Alcotest.(check string) "roundtrip" s (Lz.decompress (Lz.compress s)))
    [
      ""; "a"; "abc"; String.make 1000 'x';
      "abcabcabcabcabcabc"; "the quick brown fox jumps over the lazy dog";
      String.concat "" (List.init 50 (fun i -> Printf.sprintf "field%d=0;" i));
    ]

let test_lz_compresses_repetitive () =
  let s = String.concat "" (List.init 100 (fun _ -> "conn{state=est;os=linux};")) in
  Alcotest.(check bool) "smaller" true
    (String.length (Lz.compress s) < String.length s / 2)

let test_lz_overlapping_match () =
  (* "aaaa..." forces overlapping back-references. *)
  let s = String.make 500 'a' in
  Alcotest.(check string) "overlap ok" s (Lz.decompress (Lz.compress s))

let test_lz_rejects_garbage () =
  Alcotest.check_raises "bad token" (Invalid_argument "Lz.decompress: bad token")
    (fun () -> ignore (Lz.decompress "\x07zzz"))

let test_lz_stream_ratio_bounds () =
  let chunks = List.init 20 (fun i -> Printf.sprintf "template-text-%03d" i) in
  let r = Lz.stream_ratio chunks in
  Alcotest.(check bool) "in (0, 1]" true (r > 0.0 && r <= 1.0);
  Alcotest.(check bool) "cross-chunk redundancy exploited" true (r < 0.9)

let lz_roundtrip_prop =
  QCheck.Test.make ~name:"lz roundtrip (random strings)" ~count:300
    QCheck.(string_of_size Gen.(0 -- 2000))
    (fun s -> Lz.decompress (Lz.compress s) = s)

let lz_roundtrip_repetitive_prop =
  QCheck.Test.make ~name:"lz roundtrip (repetitive strings)" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 40)) (int_range 1 100))
    (fun (piece, n) ->
      let s = String.concat "" (List.init n (fun _ -> piece)) in
      Lz.decompress (Lz.compress s) = s)

(* --- stats ------------------------------------------------------------------ *)

let test_summary_basics () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944 (Stats.Summary.stddev s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats.Summary.mean s)

let test_reservoir_percentiles () =
  let r = Stats.Reservoir.create () in
  for i = 1 to 100 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.Reservoir.percentile r 0.5);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.Reservoir.percentile r 0.99);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Stats.Reservoir.max r)

let test_counter () =
  let c = Stats.Counter.create () in
  Stats.Counter.incr c;
  Stats.Counter.incr ~by:5 c;
  Alcotest.(check int) "counter" 6 (Stats.Counter.get c)

(* --- bytes_io ----------------------------------------------------------------- *)

let test_bytes_io_roundtrip () =
  let w = Bytes_io.Writer.create () in
  Bytes_io.Writer.u8 w 200;
  Bytes_io.Writer.u16 w 40000;
  Bytes_io.Writer.u32 w 3_000_000_000;
  Bytes_io.Writer.i64 w (-42L);
  Bytes_io.Writer.int w (-123456789);
  Bytes_io.Writer.f64 w 3.14159;
  Bytes_io.Writer.bool w true;
  Bytes_io.Writer.string w "hello";
  Bytes_io.Writer.list w (Bytes_io.Writer.int w) [ 1; 2; 3 ];
  let r = Bytes_io.Reader.of_string (Bytes_io.Writer.contents w) in
  Alcotest.(check int) "u8" 200 (Bytes_io.Reader.u8 r);
  Alcotest.(check int) "u16" 40000 (Bytes_io.Reader.u16 r);
  Alcotest.(check int) "u32" 3_000_000_000 (Bytes_io.Reader.u32 r);
  Alcotest.(check int64) "i64" (-42L) (Bytes_io.Reader.i64 r);
  Alcotest.(check int) "int" (-123456789) (Bytes_io.Reader.int r);
  Alcotest.(check (float 1e-12)) "f64" 3.14159 (Bytes_io.Reader.f64 r);
  Alcotest.(check bool) "bool" true (Bytes_io.Reader.bool r);
  Alcotest.(check string) "string" "hello" (Bytes_io.Reader.string r);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ]
    (Bytes_io.Reader.list r (fun () -> Bytes_io.Reader.int r));
  Alcotest.(check bool) "at end" true (Bytes_io.Reader.at_end r)

let test_bytes_io_truncated () =
  let r = Bytes_io.Reader.of_string "\x01" in
  ignore (Bytes_io.Reader.u8 r);
  Alcotest.check_raises "past end" (Bytes_io.Decode_error "u8: past end")
    (fun () -> ignore (Bytes_io.Reader.u8 r))

let test_bytes_io_bad_string_length () =
  let w = Bytes_io.Writer.create () in
  Bytes_io.Writer.u32 w 1000;
  let r = Bytes_io.Reader.of_string (Bytes_io.Writer.contents w) in
  Alcotest.check_raises "string past end"
    (Bytes_io.Decode_error "string: past end") (fun () ->
      ignore (Bytes_io.Reader.string r))

let bytes_io_string_prop =
  QCheck.Test.make ~name:"bytes_io string roundtrip" ~count:300
    QCheck.(list (string_of_size Gen.(0 -- 100)))
    (fun strings ->
      let w = Bytes_io.Writer.create () in
      Bytes_io.Writer.list w (Bytes_io.Writer.string w) strings;
      let r = Bytes_io.Reader.of_string (Bytes_io.Writer.contents w) in
      Bytes_io.Reader.list r (fun () -> Bytes_io.Reader.string r) = strings)

let bytes_io_int_prop =
  QCheck.Test.make ~name:"bytes_io int roundtrip" ~count:500 QCheck.int
    (fun i ->
      let w = Bytes_io.Writer.create () in
      Bytes_io.Writer.int w i;
      Bytes_io.Reader.int (Bytes_io.Reader.of_string (Bytes_io.Writer.contents w))
      = i)

let suite =
  [
    Alcotest.test_case "rng: deterministic per seed" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng: int range" `Quick test_rng_int_range;
    Alcotest.test_case "rng: float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng: exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng: pareto tail" `Quick test_rng_pareto_heavy_tail;
    Alcotest.test_case "rng: shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "hash: fnv distinct & stable" `Quick test_fnv_known_distinct;
    Alcotest.test_case "hash: fnv substring" `Quick test_fnv_sub_matches_whole;
    Alcotest.test_case "digest: streaming invariance" `Quick
      test_digest_streaming_invariance;
    Alcotest.test_case "digest: order sensitive" `Quick test_digest_order_sensitive;
    Alcotest.test_case "digest: export/restore" `Quick test_digest_export_restore;
    Alcotest.test_case "lz: roundtrip cases" `Quick test_lz_roundtrip_cases;
    Alcotest.test_case "lz: compresses repetition" `Quick
      test_lz_compresses_repetitive;
    Alcotest.test_case "lz: overlapping matches" `Quick test_lz_overlapping_match;
    Alcotest.test_case "lz: rejects garbage" `Quick test_lz_rejects_garbage;
    Alcotest.test_case "lz: stream ratio bounds" `Quick test_lz_stream_ratio_bounds;
    QCheck_alcotest.to_alcotest lz_roundtrip_prop;
    QCheck_alcotest.to_alcotest lz_roundtrip_repetitive_prop;
    Alcotest.test_case "stats: summary" `Quick test_summary_basics;
    Alcotest.test_case "stats: empty summary" `Quick test_summary_empty;
    Alcotest.test_case "stats: percentiles" `Quick test_reservoir_percentiles;
    Alcotest.test_case "stats: counter" `Quick test_counter;
    Alcotest.test_case "bytes_io: roundtrip" `Quick test_bytes_io_roundtrip;
    Alcotest.test_case "bytes_io: truncated" `Quick test_bytes_io_truncated;
    Alcotest.test_case "bytes_io: bad length" `Quick test_bytes_io_bad_string_length;
    QCheck_alcotest.to_alcotest bytes_io_string_prop;
    QCheck_alcotest.to_alcotest bytes_io_int_prop;
  ]
