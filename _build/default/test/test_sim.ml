(* Tests for the discrete-event engine and the effect-based processes. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:0.3 (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:0.1 (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:0.2 (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~delay:0.5 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO at equal times"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref 0.0 in
  Engine.schedule e ~delay:1.5 (fun () -> seen := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 1e-9)) "clock at event" 1.5 !seen

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:2.0 (fun () -> fired := true);
  Engine.run ~until:1.0 e;
  Alcotest.(check bool) "not yet" false !fired;
  Alcotest.(check int) "still pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check bool) "eventually" true !fired

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1.0 (fun () ->
      Alcotest.(check bool) "raises" true
        (try
           Engine.schedule_at e 0.5 ignore;
           false
         with Invalid_argument _ -> true));
  Engine.run e

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:0.1 (fun () ->
      log := "a" :: !log;
      Engine.schedule e ~delay:0.1 (fun () -> log := "c" :: !log));
  Engine.schedule e ~delay:0.15 (fun () -> log := "b" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "interleaved" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_many_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rng = Engine.rng e in
  for _ = 1 to 10_000 do
    Engine.schedule e ~delay:(Opennf_util.Rng.float rng 10.0) (fun () -> incr count)
  done;
  Engine.run e;
  Alcotest.(check int) "all ran" 10_000 !count;
  Alcotest.(check int) "processed counter" 10_000 (Engine.processed e)

(* --- processes ---------------------------------------------------------- *)

let test_proc_sleep_sequence () =
  let e = Engine.create () in
  let log = ref [] in
  Proc.spawn e (fun () ->
      log := (Engine.now e, "start") :: !log;
      Proc.sleep 1.0;
      log := (Engine.now e, "mid") :: !log;
      Proc.sleep 0.5;
      log := (Engine.now e, "end") :: !log);
  Engine.run e;
  Alcotest.(check (list (pair (float 1e-9) string)))
    "timeline"
    [ (0.0, "start"); (1.0, "mid"); (1.5, "end") ]
    (List.rev !log)

let test_proc_ivar_blocks () =
  let e = Engine.create () in
  let iv = Proc.Ivar.create e in
  let got = ref None in
  Proc.spawn e (fun () -> got := Some (Proc.Ivar.read iv));
  Proc.spawn e (fun () ->
      Proc.sleep 2.0;
      Proc.Ivar.fill iv 42);
  Engine.run e;
  Alcotest.(check (option int)) "received" (Some 42) !got

let test_proc_ivar_already_filled () =
  let e = Engine.create () in
  let iv = Proc.Ivar.create e in
  Proc.Ivar.fill iv "x";
  let got = ref "" in
  Proc.spawn e (fun () -> got := Proc.Ivar.read iv);
  Engine.run e;
  Alcotest.(check string) "immediate read" "x" !got

let test_proc_ivar_double_fill () =
  let e = Engine.create () in
  let iv = Proc.Ivar.create e in
  Proc.Ivar.fill iv 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Proc.Ivar.fill iv 2)

let test_proc_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Proc.Ivar.create e in
  let sum = ref 0 in
  for _ = 1 to 5 do
    Proc.spawn e (fun () -> sum := !sum + Proc.Ivar.read iv)
  done;
  Proc.spawn e (fun () ->
      Proc.sleep 1.0;
      Proc.Ivar.fill iv 10);
  Engine.run e;
  Alcotest.(check int) "all readers resumed" 50 !sum

let test_proc_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Proc.Mailbox.create e in
  let got = ref [] in
  Proc.spawn e (fun () ->
      for _ = 1 to 5 do
        got := Proc.Mailbox.recv mb :: !got
      done);
  Proc.spawn e (fun () ->
      for i = 1 to 5 do
        Proc.Mailbox.send mb i;
        Proc.sleep 0.1
      done);
  Engine.run e;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_proc_mailbox_buffers_before_recv () =
  let e = Engine.create () in
  let mb = Proc.Mailbox.create e in
  Proc.Mailbox.send mb "early";
  Alcotest.(check int) "queued" 1 (Proc.Mailbox.length mb);
  let got = ref "" in
  Proc.spawn e (fun () -> got := Proc.Mailbox.recv mb);
  Engine.run e;
  Alcotest.(check string) "delivered" "early" !got

let test_proc_blocking_outside_raises () =
  Alcotest.check_raises "sleep outside process" Proc.Not_in_process (fun () ->
      Proc.sleep 1.0)

let test_proc_suspend_resume () =
  let e = Engine.create () in
  let resume_cell = ref None in
  let stage = ref 0 in
  Proc.spawn e (fun () ->
      stage := 1;
      Proc.suspend (fun resume -> resume_cell := Some resume);
      stage := 2);
  Engine.run e;
  Alcotest.(check int) "parked" 1 !stage;
  (match !resume_cell with Some r -> r () | None -> Alcotest.fail "no resume");
  Engine.run e;
  Alcotest.(check int) "resumed" 2 !stage

let test_proc_many_interleaved () =
  let e = Engine.create () in
  let total = ref 0 in
  for i = 1 to 100 do
    Proc.spawn e (fun () ->
        Proc.sleep (float_of_int (i mod 7) /. 10.0);
        total := !total + i)
  done;
  Engine.run e;
  Alcotest.(check int) "all processes ran" 5050 !total

let suite =
  [
    Alcotest.test_case "engine: time order" `Quick test_engine_time_order;
    Alcotest.test_case "engine: FIFO on ties" `Quick test_engine_fifo_ties;
    Alcotest.test_case "engine: clock" `Quick test_engine_clock_advances;
    Alcotest.test_case "engine: run until" `Quick test_engine_until;
    Alcotest.test_case "engine: rejects the past" `Quick test_engine_rejects_past;
    Alcotest.test_case "engine: nested scheduling" `Quick
      test_engine_nested_scheduling;
    Alcotest.test_case "engine: 10k random events" `Quick test_engine_many_events;
    Alcotest.test_case "proc: sleep timeline" `Quick test_proc_sleep_sequence;
    Alcotest.test_case "proc: ivar blocks until filled" `Quick
      test_proc_ivar_blocks;
    Alcotest.test_case "proc: ivar immediate read" `Quick
      test_proc_ivar_already_filled;
    Alcotest.test_case "proc: ivar double fill" `Quick test_proc_ivar_double_fill;
    Alcotest.test_case "proc: ivar broadcast" `Quick
      test_proc_ivar_multiple_readers;
    Alcotest.test_case "proc: mailbox FIFO" `Quick test_proc_mailbox_fifo;
    Alcotest.test_case "proc: mailbox buffers" `Quick
      test_proc_mailbox_buffers_before_recv;
    Alcotest.test_case "proc: blocking outside raises" `Quick
      test_proc_blocking_outside_raises;
    Alcotest.test_case "proc: suspend/resume" `Quick test_proc_suspend_resume;
    Alcotest.test_case "proc: 100 interleaved" `Quick test_proc_many_interleaved;
  ]
