(* Tests for the NF implementations: IDS, PRADS, proxy, NAT, RE codec,
   dummy. Each is exercised directly through its [impl] (no simulator),
   checking detection logic, the state taxonomy, serialization
   roundtrips and merge-on-import semantics. *)

module Nf_api = Opennf_sb.Nf_api
open Opennf_net
open Opennf_state

let ip = Ipaddr.v

let mk_packet =
  let next = ref 1000 in
  fun ?(flags = []) ?(seq = 0) ?(payload = "") key ->
    incr next;
    Packet.create ~id:!next ~key ~flags ~seq ~payload ~sent_at:0.0 ()

let feed impl pkts = List.iter impl.Nf_api.process_packet pkts

let http_key client server sport =
  Flow.make ~src:client ~dst:server ~proto:Flow.Tcp ~sport ~dport:80 ()

(* Build the packets of one HTTP exchange (without the simulator). *)
let http_exchange ?(agent = "Firefox") ~client ~server ~sport ~body () =
  let key = http_key client server sport in
  let back = Flow.reverse key in
  let piece_len = 1000 in
  let rec pieces acc off =
    if off >= String.length body then List.rev acc
    else
      let n = min piece_len (String.length body - off) in
      pieces (String.sub body off n :: acc) (off + n)
  in
  let body_pieces = pieces [] 0 in
  let n = List.length body_pieces in
  [ mk_packet ~flags:[ Syn ] key;
    mk_packet ~flags:[ Syn; Ack ] back;
    mk_packet ~seq:1 ~payload:(Printf.sprintf "GET /x UA=%s" agent) key ]
  @ List.mapi
      (fun i piece ->
        let flags = if i = n - 1 then [ Packet.Ack; Packet.Fin ] else [ Packet.Ack ] in
        mk_packet ~flags ~seq:(i + 1) ~payload:piece back)
      body_pieces

(* --- IDS ------------------------------------------------------------------- *)

let test_ids_scan_detection () =
  let ids = Opennf_nfs.Ids.create ~scan_threshold:5 () in
  let impl = Opennf_nfs.Ids.impl ids in
  let scanner = ip 203 0 113 9 in
  for port = 1000 to 1004 do
    impl.Nf_api.process_packet
      (mk_packet ~flags:[ Syn ]
         (Flow.make ~src:scanner ~dst:(ip 10 0 0 5) ~sport:40000 ~dport:port ()))
  done;
  match Opennf_nfs.Ids.alert_log ids with
  | [ Opennf_nfs.Ids.Port_scan host ] ->
    Alcotest.(check string) "scanner identified" (Ipaddr.to_string scanner)
      (Ipaddr.to_string host)
  | l -> Alcotest.fail (Printf.sprintf "expected one scan alert, got %d" (List.length l))

let test_ids_scan_below_threshold_silent () =
  let ids = Opennf_nfs.Ids.create ~scan_threshold:5 () in
  let impl = Opennf_nfs.Ids.impl ids in
  for port = 1000 to 1003 do
    impl.Nf_api.process_packet
      (mk_packet ~flags:[ Syn ]
         (Flow.make ~src:(ip 1 1 1 1) ~dst:(ip 10 0 0 5) ~sport:1 ~dport:port ()))
  done;
  Alcotest.(check int) "no alert" 0 (List.length (Opennf_nfs.Ids.alert_log ids))

let test_ids_malware_detection () =
  let body, digest = Opennf_trace.Gen.malware_body 5000 in
  let ids = Opennf_nfs.Ids.create ~malware:[ digest ] () in
  let impl = Opennf_nfs.Ids.impl ids in
  feed impl (http_exchange ~client:(ip 10 0 0 1) ~server:(ip 8 8 8 8) ~sport:1 ~body ());
  Alcotest.(check bool) "malware alert" true
    (List.exists
       (function Opennf_nfs.Ids.Malware _ -> true | _ -> false)
       (Opennf_nfs.Ids.alert_log ids))

let test_ids_clean_body_silent () =
  let _, digest = Opennf_trace.Gen.malware_body 5000 in
  let ids = Opennf_nfs.Ids.create ~malware:[ digest ] () in
  let impl = Opennf_nfs.Ids.impl ids in
  feed impl
    (http_exchange ~client:(ip 10 0 0 1) ~server:(ip 8 8 8 8) ~sport:1
       ~body:(String.make 5000 'z') ());
  Alcotest.(check bool) "no malware alert" false
    (List.exists
       (function Opennf_nfs.Ids.Malware _ -> true | _ -> false)
       (Opennf_nfs.Ids.alert_log ids))

let test_ids_malware_lost_packet_missed () =
  (* The §5.1.1 motivation: drop one reply packet and the digest never
     completes — the malware goes undetected. *)
  let body, digest = Opennf_trace.Gen.malware_body 5000 in
  let ids = Opennf_nfs.Ids.create ~malware:[ digest ] () in
  let impl = Opennf_nfs.Ids.impl ids in
  let pkts = http_exchange ~client:(ip 10 0 0 1) ~server:(ip 8 8 8 8) ~sport:1 ~body () in
  let dropped_one =
    List.filteri (fun i _ -> i <> 4) pkts (* lose one body segment *)
  in
  feed impl dropped_one;
  Alcotest.(check bool) "missed" false
    (List.exists
       (function Opennf_nfs.Ids.Malware _ -> true | _ -> false)
       (Opennf_nfs.Ids.alert_log ids))

let test_ids_malware_reordered_still_detected () =
  (* Bro reassembles by sequence number, so loss-free is enough even
     without order preservation (§6's remote-processing app). *)
  let body, digest = Opennf_trace.Gen.malware_body 5000 in
  let ids = Opennf_nfs.Ids.create ~malware:[ digest ] () in
  let impl = Opennf_nfs.Ids.impl ids in
  let pkts = http_exchange ~client:(ip 10 0 0 1) ~server:(ip 8 8 8 8) ~sport:1 ~body () in
  (* Swap two body segments. *)
  let arr = Array.of_list pkts in
  let tmp = arr.(4) in
  arr.(4) <- arr.(5);
  arr.(5) <- tmp;
  feed impl (Array.to_list arr);
  Alcotest.(check bool) "detected despite reordering" true
    (List.exists
       (function Opennf_nfs.Ids.Malware _ -> true | _ -> false)
       (Opennf_nfs.Ids.alert_log ids))

let test_ids_weird_alert_on_reordered_syn () =
  let ids = Opennf_nfs.Ids.create () in
  let impl = Opennf_nfs.Ids.impl ids in
  let key = http_key (ip 10 0 0 1) (ip 8 8 8 8) 99 in
  impl.Nf_api.process_packet (mk_packet ~flags:[ Ack ] ~seq:1 ~payload:"data" key);
  impl.Nf_api.process_packet (mk_packet ~flags:[ Syn ] key);
  Alcotest.(check bool) "SYN_inside_connection" true
    (List.exists
       (function
         | Opennf_nfs.Ids.Weird { kind = "SYN_inside_connection"; _ } -> true
         | _ -> false)
       (Opennf_nfs.Ids.alert_log ids))

let test_ids_no_weird_in_order () =
  let ids = Opennf_nfs.Ids.create () in
  let impl = Opennf_nfs.Ids.impl ids in
  let key = http_key (ip 10 0 0 1) (ip 8 8 8 8) 99 in
  impl.Nf_api.process_packet (mk_packet ~flags:[ Syn ] key);
  impl.Nf_api.process_packet (mk_packet ~flags:[ Ack ] ~seq:1 ~payload:"data" key);
  Alcotest.(check int) "silent" 0 (List.length (Opennf_nfs.Ids.alert_log ids))

let test_ids_outdated_browser () =
  let ids = Opennf_nfs.Ids.create () in
  let impl = Opennf_nfs.Ids.impl ids in
  feed impl
    (http_exchange ~agent:"IE6" ~client:(ip 10 0 0 1) ~server:(ip 8 8 8 8)
       ~sport:1 ~body:"ok" ());
  Alcotest.(check bool) "alerted" true
    (List.exists
       (function
         | Opennf_nfs.Ids.Outdated_browser { agent = "IE6"; _ } -> true
         | _ -> false)
       (Opennf_nfs.Ids.alert_log ids))

let test_ids_perflow_roundtrip_preserves_detection () =
  (* Split an exchange across two instances, moving conn state by
     export/import mid-reply: the second instance completes detection. *)
  let body, digest = Opennf_trace.Gen.malware_body 5000 in
  let ids1 = Opennf_nfs.Ids.create ~malware:[ digest ] () in
  let ids2 = Opennf_nfs.Ids.create ~malware:[ digest ] () in
  let impl1 = Opennf_nfs.Ids.impl ids1 and impl2 = Opennf_nfs.Ids.impl ids2 in
  let pkts = http_exchange ~client:(ip 10 0 0 1) ~server:(ip 8 8 8 8) ~sport:1 ~body () in
  let first, second = (List.filteri (fun i _ -> i < 5) pkts, List.filteri (fun i _ -> i >= 5) pkts) in
  feed impl1 first;
  (match impl1.Nf_api.list_perflow Filter.any with
  | [ flowid ] ->
    let chunk = Option.get (impl1.Nf_api.export_perflow flowid) in
    impl1.Nf_api.delete_perflow flowid;
    impl2.Nf_api.import_perflow flowid chunk
  | _ -> Alcotest.fail "expected one flow");
  feed impl2 second;
  Alcotest.(check bool) "detection completed at the destination" true
    (List.exists
       (function Opennf_nfs.Ids.Malware _ -> true | _ -> false)
       (Opennf_nfs.Ids.alert_log ids2));
  Alcotest.(check int) "source has no leftover conn" 0
    (Opennf_nfs.Ids.conn_count ids1)

let test_ids_multiflow_merge_unions_ports () =
  let ids1 = Opennf_nfs.Ids.create ~scan_threshold:8 () in
  let ids2 = Opennf_nfs.Ids.create ~scan_threshold:8 () in
  let impl1 = Opennf_nfs.Ids.impl ids1 and impl2 = Opennf_nfs.Ids.impl ids2 in
  let scanner = ip 203 0 113 9 in
  let syn_to inst port =
    inst.Nf_api.process_packet
      (mk_packet ~flags:[ Syn ]
         (Flow.make ~src:scanner ~dst:(ip 10 0 0 5) ~sport:40000 ~dport:port ()))
  in
  for port = 1 to 5 do syn_to impl1 (1000 + port) done;
  for port = 1 to 4 do syn_to impl2 (2000 + port) done;
  Alcotest.(check int) "neither alerted yet" 0
    (List.length (Opennf_nfs.Ids.alert_log ids1 @ Opennf_nfs.Ids.alert_log ids2));
  (* Copy instance 1's counters into instance 2: union reaches 9 >= 8,
     so the very next attempt at instance 2 fires the alert. *)
  (match impl1.Nf_api.list_multiflow (Filter.of_src_host scanner) with
  | [ flowid ] ->
    impl2.Nf_api.import_multiflow flowid
      (Option.get (impl1.Nf_api.export_multiflow flowid))
  | _ -> Alcotest.fail "expected one counter");
  syn_to impl2 3000;
  Alcotest.(check bool) "merged counters detect the scan" true
    (List.exists
       (function Opennf_nfs.Ids.Port_scan _ -> true | _ -> false)
       (Opennf_nfs.Ids.alert_log ids2))

let test_ids_multiflow_selected_by_target_prefix () =
  (* The movePrefix copy (Figure 8): a local-prefix filter selects the
     counters of external hosts scanning into that prefix. *)
  let ids = Opennf_nfs.Ids.create () in
  let impl = Opennf_nfs.Ids.impl ids in
  impl.Nf_api.process_packet
    (mk_packet ~flags:[ Syn ]
       (Flow.make ~src:(ip 203 0 113 9) ~dst:(ip 10 2 0 7) ~sport:1 ~dport:80 ()));
  let selected =
    impl.Nf_api.list_multiflow
      (Filter.of_src_prefix (Ipaddr.Prefix.of_string "10.2.0.0/16"))
  in
  Alcotest.(check bool) "external scanner's counter selected" true
    (List.exists
       (fun flowid -> Filter.exact_src_host flowid = Some (ip 203 0 113 9))
       selected)

let test_ids_allflows_merge () =
  let ids1 = Opennf_nfs.Ids.create () in
  let ids2 = Opennf_nfs.Ids.create () in
  let impl1 = Opennf_nfs.Ids.impl ids1 and impl2 = Opennf_nfs.Ids.impl ids2 in
  feed impl1
    (http_exchange ~client:(ip 10 0 0 1) ~server:(ip 8 8 8 8) ~sport:1 ~body:"aaaa" ());
  feed impl2
    (http_exchange ~client:(ip 10 0 0 2) ~server:(ip 8 8 8 8) ~sport:2 ~body:"bbbb" ());
  let total_before =
    Opennf_nfs.Ids.total_bytes ids1 + Opennf_nfs.Ids.total_bytes ids2
  in
  impl2.Nf_api.import_allflows (impl1.Nf_api.export_allflows ());
  Alcotest.(check int) "byte counters summed" total_before
    (Opennf_nfs.Ids.total_bytes ids2)

(* --- PRADS ------------------------------------------------------------------ *)

let test_prads_assets_and_services () =
  let prads = Opennf_nfs.Prads.create () in
  let impl = Opennf_nfs.Prads.impl prads in
  let key = http_key (ip 10 0 0 1) (ip 8 8 8 8) 5555 in
  impl.Nf_api.process_packet (mk_packet ~flags:[ Syn ] key);
  impl.Nf_api.process_packet (mk_packet ~flags:[ Syn; Ack ] (Flow.reverse key));
  Alcotest.(check int) "two assets" 2 (Opennf_nfs.Prads.asset_count prads);
  Alcotest.(check (list (pair int string))) "http service on the server"
    [ (80, "http") ]
    (Opennf_nfs.Prads.services_of prads (ip 8 8 8 8))

let test_prads_conn_roundtrip () =
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let impl1 = Opennf_nfs.Prads.impl prads1 and impl2 = Opennf_nfs.Prads.impl prads2 in
  let key = http_key (ip 10 0 0 1) (ip 8 8 8 8) 7777 in
  impl1.Nf_api.process_packet (mk_packet ~flags:[ Syn ] key);
  impl1.Nf_api.process_packet (mk_packet ~flags:[ Ack ] key);
  (match impl1.Nf_api.list_perflow Filter.any with
  | [ flowid ] ->
    impl2.Nf_api.import_perflow flowid
      (Option.get (impl1.Nf_api.export_perflow flowid))
  | _ -> Alcotest.fail "one flow expected");
  Alcotest.(check int) "imported" 1 (Opennf_nfs.Prads.connection_count prads2)

let test_prads_asset_merge () =
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let impl1 = Opennf_nfs.Prads.impl prads1 and impl2 = Opennf_nfs.Prads.impl prads2 in
  let server = ip 8 8 8 8 in
  (* Instance 1 sees the server speak http, instance 2 sees ssh. *)
  impl1.Nf_api.process_packet
    (mk_packet ~flags:[ Syn; Ack ]
       (Flow.make ~src:server ~dst:(ip 10 0 0 1) ~sport:80 ~dport:5000 ()));
  impl2.Nf_api.process_packet
    (mk_packet ~flags:[ Syn; Ack ]
       (Flow.make ~src:server ~dst:(ip 10 0 0 2) ~sport:22 ~dport:5001 ()));
  (match impl1.Nf_api.list_multiflow (Filter.of_src_host server) with
  | flowid :: _ ->
    impl2.Nf_api.import_multiflow flowid
      (Option.get (impl1.Nf_api.export_multiflow flowid))
  | [] -> Alcotest.fail "no asset");
  Alcotest.(check (list (pair int string))) "services unioned"
    [ (22, "ssh"); (80, "http") ]
    (Opennf_nfs.Prads.services_of prads2 server)

let test_prads_stats_merge () =
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let impl1 = Opennf_nfs.Prads.impl prads1 and impl2 = Opennf_nfs.Prads.impl prads2 in
  let key = http_key (ip 10 0 0 1) (ip 8 8 8 8) 1 in
  impl1.Nf_api.process_packet (mk_packet ~flags:[ Syn ] key);
  impl2.Nf_api.process_packet (mk_packet ~flags:[ Syn ] (Flow.reverse key));
  impl2.Nf_api.import_allflows (impl1.Nf_api.export_allflows ());
  let pkts, _, flows = Opennf_nfs.Prads.stats prads2 in
  Alcotest.(check int) "packets summed" 2 pkts;
  Alcotest.(check int) "flows summed" 2 flows

(* --- proxy ------------------------------------------------------------------- *)

let proxy_key client sport =
  Flow.make ~src:client ~dst:(ip 10 0 0 100) ~proto:Flow.Tcp ~sport ~dport:3128 ()

let run_transfer impl key url =
  impl.Nf_api.process_packet (mk_packet ~payload:("GET " ^ url) key);
  let conts =
    (Opennf_nfs.Proxy.object_size url + 65535) / 65536
  in
  for i = 1 to conts do
    impl.Nf_api.process_packet (mk_packet ~seq:i ~payload:"CONT" key)
  done

let test_proxy_hit_miss () =
  let proxy = Opennf_nfs.Proxy.create () in
  let impl = Opennf_nfs.Proxy.impl proxy in
  run_transfer impl (proxy_key (ip 10 0 0 1) 1) "/a";
  Alcotest.(check int) "first is a miss" 0 (Opennf_nfs.Proxy.hits proxy);
  Alcotest.(check int) "miss count" 1 (Opennf_nfs.Proxy.misses proxy);
  run_transfer impl (proxy_key (ip 10 0 0 1) 2) "/a";
  Alcotest.(check int) "second is a hit" 1 (Opennf_nfs.Proxy.hits proxy);
  Alcotest.(check int) "one object cached" 1 (Opennf_nfs.Proxy.cache_size proxy)

let test_proxy_crash_on_missing_entry () =
  let proxy1 = Opennf_nfs.Proxy.create () in
  let proxy2 = Opennf_nfs.Proxy.create () in
  let impl1 = Opennf_nfs.Proxy.impl proxy1 and impl2 = Opennf_nfs.Proxy.impl proxy2 in
  let key = proxy_key (ip 10 0 0 1) 1 in
  (* Start a transfer at proxy1, move only the per-flow state. *)
  impl1.Nf_api.process_packet (mk_packet ~payload:"GET /big" key);
  impl1.Nf_api.process_packet (mk_packet ~seq:1 ~payload:"CONT" key);
  (match impl1.Nf_api.list_perflow Filter.any with
  | [ flowid ] ->
    impl2.Nf_api.import_perflow flowid
      (Option.get (impl1.Nf_api.export_perflow flowid))
  | _ -> Alcotest.fail "one conn expected");
  Alcotest.(check int) "transfer in progress at proxy2" 1
    (Opennf_nfs.Proxy.in_progress proxy2);
  impl2.Nf_api.process_packet (mk_packet ~seq:2 ~payload:"CONT" key);
  Alcotest.(check bool) "crashed" true (Opennf_nfs.Proxy.crashed proxy2)

let test_proxy_no_crash_with_entry_copied () =
  let proxy1 = Opennf_nfs.Proxy.create () in
  let proxy2 = Opennf_nfs.Proxy.create () in
  let impl1 = Opennf_nfs.Proxy.impl proxy1 and impl2 = Opennf_nfs.Proxy.impl proxy2 in
  let client = ip 10 0 0 1 in
  let key = proxy_key client 1 in
  impl1.Nf_api.process_packet (mk_packet ~payload:"GET /big" key);
  impl1.Nf_api.process_packet (mk_packet ~seq:1 ~payload:"CONT" key);
  (* Copy the multi-flow state relevant to the client, then the conn. *)
  List.iter
    (fun flowid ->
      impl2.Nf_api.import_multiflow flowid
        (Option.get (impl1.Nf_api.export_multiflow flowid)))
    (impl1.Nf_api.list_multiflow (Filter.of_src_host client));
  (match impl1.Nf_api.list_perflow Filter.any with
  | [ flowid ] ->
    impl2.Nf_api.import_perflow flowid
      (Option.get (impl1.Nf_api.export_perflow flowid))
  | _ -> Alcotest.fail "one conn expected");
  impl2.Nf_api.process_packet (mk_packet ~seq:2 ~payload:"CONT" key);
  Alcotest.(check bool) "no crash" false (Opennf_nfs.Proxy.crashed proxy2)

let test_proxy_entry_relevance () =
  let proxy = Opennf_nfs.Proxy.create () in
  let impl = Opennf_nfs.Proxy.impl proxy in
  let c1 = ip 10 0 0 1 and c2 = ip 10 0 0 2 in
  (* c1 finishes a transfer of /a; c2 is mid-transfer of /b. *)
  run_transfer impl (proxy_key c1 1) "/a";
  impl.Nf_api.process_packet (mk_packet ~payload:"GET /b" (proxy_key c2 2));
  let for_c2 = impl.Nf_api.list_multiflow (Filter.of_src_host c2) in
  Alcotest.(check int) "only the active entry" 1 (List.length for_c2);
  let all = impl.Nf_api.list_multiflow Filter.any in
  Alcotest.(check int) "whole cache" 2 (List.length all);
  (* The URL-extended flowid selects exactly one entry. *)
  Alcotest.(check int) "by url" 1
    (List.length (impl.Nf_api.list_multiflow (Filter.of_app "/a")))

let test_proxy_entry_chunk_carries_content () =
  let proxy = Opennf_nfs.Proxy.create () in
  let impl = Opennf_nfs.Proxy.impl proxy in
  run_transfer impl (proxy_key (ip 10 0 0 1) 1) "/payload-size";
  match impl.Nf_api.list_multiflow Filter.any with
  | [ flowid ] ->
    let chunk = Option.get (impl.Nf_api.export_multiflow flowid) in
    Alcotest.(check bool) "chunk about as big as the object" true
      (Chunk.size chunk >= Opennf_nfs.Proxy.object_size "/payload-size")
  | _ -> Alcotest.fail "one entry expected"

(* --- NAT ---------------------------------------------------------------------- *)

let test_nat_connection_lifecycle () =
  let nat = Opennf_nfs.Nat.create () in
  let impl = Opennf_nfs.Nat.impl nat in
  let key = http_key (ip 10 0 0 1) (ip 8 8 8 8) 1234 in
  impl.Nf_api.process_packet (mk_packet ~flags:[ Syn ] key);
  Alcotest.(check bool) "new" true (Opennf_nfs.Nat.state_of nat key = Some Opennf_nfs.Nat.New);
  impl.Nf_api.process_packet (mk_packet ~flags:[ Ack ] key);
  Alcotest.(check bool) "established" true
    (Opennf_nfs.Nat.state_of nat key = Some Opennf_nfs.Nat.Established);
  impl.Nf_api.process_packet (mk_packet ~flags:[ Fin; Ack ] key);
  impl.Nf_api.process_packet (mk_packet ~flags:[ Ack ] key);
  Alcotest.(check bool) "closed" true
    (Opennf_nfs.Nat.state_of nat key = Some Opennf_nfs.Nat.Closed)

let test_nat_rejects_unknown_non_syn () =
  let nat = Opennf_nfs.Nat.create () in
  let impl = Opennf_nfs.Nat.impl nat in
  impl.Nf_api.process_packet
    (mk_packet ~flags:[ Ack ] (http_key (ip 10 0 0 1) (ip 8 8 8 8) 1));
  Alcotest.(check int) "invalid" 1 (Opennf_nfs.Nat.invalid_count nat);
  Alcotest.(check int) "no entry" 0 (Opennf_nfs.Nat.entry_count nat)

let test_nat_port_allocation_distinct () =
  let nat = Opennf_nfs.Nat.create ~port_base:30000 () in
  let impl = Opennf_nfs.Nat.impl nat in
  let k1 = http_key (ip 10 0 0 1) (ip 8 8 8 8) 1 in
  let k2 = http_key (ip 10 0 0 2) (ip 8 8 8 8) 2 in
  impl.Nf_api.process_packet (mk_packet ~flags:[ Syn ] k1);
  impl.Nf_api.process_packet (mk_packet ~flags:[ Syn ] k2);
  Alcotest.(check bool) "ports differ" true
    (Opennf_nfs.Nat.translation_of nat k1 <> Opennf_nfs.Nat.translation_of nat k2)

let test_nat_roundtrip_preserves_translation () =
  let nat1 = Opennf_nfs.Nat.create () in
  let nat2 = Opennf_nfs.Nat.create () in
  let impl1 = Opennf_nfs.Nat.impl nat1 and impl2 = Opennf_nfs.Nat.impl nat2 in
  let key = http_key (ip 10 0 0 1) (ip 8 8 8 8) 1234 in
  impl1.Nf_api.process_packet (mk_packet ~flags:[ Syn ] key);
  impl1.Nf_api.process_packet (mk_packet ~flags:[ Ack ] key);
  let port = Opennf_nfs.Nat.translation_of nat1 key in
  (match impl1.Nf_api.list_perflow Filter.any with
  | [ flowid ] ->
    impl2.Nf_api.import_perflow flowid
      (Option.get (impl1.Nf_api.export_perflow flowid))
  | _ -> Alcotest.fail "one entry");
  Alcotest.(check bool) "translation preserved" true
    (Opennf_nfs.Nat.translation_of nat2 key = port);
  (* Mid-flow packets are valid at the destination after the move. *)
  impl2.Nf_api.process_packet (mk_packet ~flags:[ Ack ] key);
  Alcotest.(check int) "no invalids" 0 (Opennf_nfs.Nat.invalid_count nat2)

let test_nat_has_no_multiflow_state () =
  let nat = Opennf_nfs.Nat.create () in
  let impl = Opennf_nfs.Nat.impl nat in
  Alcotest.(check int) "no multi-flow" 0
    (List.length (impl.Nf_api.list_multiflow Filter.any));
  Alcotest.(check int) "no all-flows" 0
    (List.length (impl.Nf_api.export_allflows ()))

(* --- RE codec ------------------------------------------------------------------- *)

let test_re_encode_decode () =
  let enc = Opennf_nfs.Re_codec.Encoder.create () in
  let first = Opennf_nfs.Re_codec.Encoder.encode_payload enc "hello world" in
  Alcotest.(check string) "first pass-through" "hello world" first;
  let second = Opennf_nfs.Re_codec.Encoder.encode_payload enc "hello world" in
  Alcotest.(check bool) "second is a reference" true (second <> "hello world");
  let dec = Opennf_nfs.Re_codec.Decoder.create () in
  let dimpl = Opennf_nfs.Re_codec.Decoder.impl dec in
  let key = http_key (ip 1 1 1 1) (ip 2 2 2 2) 1 in
  dimpl.Nf_api.process_packet (mk_packet ~payload:first key);
  dimpl.Nf_api.process_packet (mk_packet ~seq:1 ~payload:second key);
  Alcotest.(check int) "decoded" 1 (Opennf_nfs.Re_codec.Decoder.decoded_count dec);
  Alcotest.(check int) "no desync" 0 (Opennf_nfs.Re_codec.Decoder.desync_count dec)

let test_re_desync_on_reorder () =
  let enc = Opennf_nfs.Re_codec.Encoder.create () in
  let first = Opennf_nfs.Re_codec.Encoder.encode_payload enc "hello world" in
  let second = Opennf_nfs.Re_codec.Encoder.encode_payload enc "hello world" in
  let dec = Opennf_nfs.Re_codec.Decoder.create () in
  let dimpl = Opennf_nfs.Re_codec.Decoder.impl dec in
  let key = http_key (ip 1 1 1 1) (ip 2 2 2 2) 1 in
  (* Reference arrives before the data packet it was encoded against. *)
  dimpl.Nf_api.process_packet (mk_packet ~seq:1 ~payload:second key);
  dimpl.Nf_api.process_packet (mk_packet ~payload:first key);
  Alcotest.(check int) "silently dropped" 1
    (Opennf_nfs.Re_codec.Decoder.desync_count dec)

let test_re_store_transfer_heals () =
  let enc = Opennf_nfs.Re_codec.Encoder.create () in
  ignore (Opennf_nfs.Re_codec.Encoder.encode_payload enc "payload-one");
  ignore (Opennf_nfs.Re_codec.Encoder.encode_payload enc "payload-two");
  let eimpl = Opennf_nfs.Re_codec.Encoder.impl enc in
  let dec = Opennf_nfs.Re_codec.Decoder.create () in
  let dimpl = Opennf_nfs.Re_codec.Decoder.impl dec in
  dimpl.Nf_api.import_allflows (eimpl.Nf_api.export_allflows ());
  Alcotest.(check int) "store copied" 2
    (Opennf_nfs.Re_codec.Decoder.store_size dec);
  (* A reference now decodes even though the decoder never saw the data. *)
  let re = Opennf_nfs.Re_codec.Encoder.encode_payload enc "payload-one" in
  let key = http_key (ip 1 1 1 1) (ip 2 2 2 2) 1 in
  dimpl.Nf_api.process_packet (mk_packet ~payload:re key);
  Alcotest.(check int) "decoded from copied store" 1
    (Opennf_nfs.Re_codec.Decoder.decoded_count dec)

(* --- dummy ----------------------------------------------------------------------- *)

let test_dummy_seed_and_export () =
  let d = Opennf_nfs.Dummy.create ~chunk_bytes:100 () in
  let impl = Opennf_nfs.Dummy.impl d in
  Opennf_nfs.Dummy.seed_flows d
    [ http_key (ip 1 1 1 1) (ip 2 2 2 2) 1; http_key (ip 1 1 1 2) (ip 2 2 2 2) 2 ];
  Alcotest.(check int) "seeded" 2 (Opennf_nfs.Dummy.flow_count d);
  let flowids = impl.Nf_api.list_perflow Filter.any in
  Alcotest.(check int) "listed" 2 (List.length flowids);
  List.iter
    (fun flowid ->
      match impl.Nf_api.export_perflow flowid with
      | Some c -> Alcotest.(check int) "chunk size" 100 (String.length c.Chunk.data)
      | None -> Alcotest.fail "export failed")
    flowids

let suite =
  [
    Alcotest.test_case "ids: scan detection" `Quick test_ids_scan_detection;
    Alcotest.test_case "ids: below threshold silent" `Quick
      test_ids_scan_below_threshold_silent;
    Alcotest.test_case "ids: malware detection" `Quick test_ids_malware_detection;
    Alcotest.test_case "ids: clean body silent" `Quick test_ids_clean_body_silent;
    Alcotest.test_case "ids: lost packet misses malware" `Quick
      test_ids_malware_lost_packet_missed;
    Alcotest.test_case "ids: reassembly beats reordering" `Quick
      test_ids_malware_reordered_still_detected;
    Alcotest.test_case "ids: weird alert on reordered SYN" `Quick
      test_ids_weird_alert_on_reordered_syn;
    Alcotest.test_case "ids: in-order is silent" `Quick test_ids_no_weird_in_order;
    Alcotest.test_case "ids: outdated browser" `Quick test_ids_outdated_browser;
    Alcotest.test_case "ids: per-flow roundtrip mid-detection" `Quick
      test_ids_perflow_roundtrip_preserves_detection;
    Alcotest.test_case "ids: multi-flow merge unions" `Quick
      test_ids_multiflow_merge_unions_ports;
    Alcotest.test_case "ids: counters selected by target prefix" `Quick
      test_ids_multiflow_selected_by_target_prefix;
    Alcotest.test_case "ids: all-flows merge" `Quick test_ids_allflows_merge;
    Alcotest.test_case "prads: assets & services" `Quick
      test_prads_assets_and_services;
    Alcotest.test_case "prads: conn roundtrip" `Quick test_prads_conn_roundtrip;
    Alcotest.test_case "prads: asset merge" `Quick test_prads_asset_merge;
    Alcotest.test_case "prads: stats merge" `Quick test_prads_stats_merge;
    Alcotest.test_case "proxy: hit/miss" `Quick test_proxy_hit_miss;
    Alcotest.test_case "proxy: crash without entry" `Quick
      test_proxy_crash_on_missing_entry;
    Alcotest.test_case "proxy: copied entry avoids crash" `Quick
      test_proxy_no_crash_with_entry_copied;
    Alcotest.test_case "proxy: entry relevance" `Quick test_proxy_entry_relevance;
    Alcotest.test_case "proxy: chunks carry content" `Quick
      test_proxy_entry_chunk_carries_content;
    Alcotest.test_case "nat: lifecycle" `Quick test_nat_connection_lifecycle;
    Alcotest.test_case "nat: rejects unknown non-SYN" `Quick
      test_nat_rejects_unknown_non_syn;
    Alcotest.test_case "nat: distinct ports" `Quick test_nat_port_allocation_distinct;
    Alcotest.test_case "nat: roundtrip keeps translation" `Quick
      test_nat_roundtrip_preserves_translation;
    Alcotest.test_case "nat: per-flow only" `Quick test_nat_has_no_multiflow_state;
    Alcotest.test_case "re: encode/decode" `Quick test_re_encode_decode;
    Alcotest.test_case "re: desync on reorder" `Quick test_re_desync_on_reorder;
    Alcotest.test_case "re: store transfer heals" `Quick test_re_store_transfer_heals;
    Alcotest.test_case "dummy: seed & export" `Quick test_dummy_seed_and_export;
  ]
