test/test_trace.ml: Alcotest Flow Int Ipaddr List Opennf_net Opennf_trace Opennf_util Packet String
