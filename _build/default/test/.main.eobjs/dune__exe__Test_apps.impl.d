test/test_apps.ml: Alcotest Controller Fabric Filter Flow Fun Ipaddr List Move Opennf Opennf_apps Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace Option String
