test/test_state.ml: Alcotest Chunk Filter Flow Ipaddr List Opennf_net Opennf_state Opennf_util Scope Store String
