test/test_nat_move.ml: Alcotest Controller Fabric Filter Flow Helpers List Move Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace
