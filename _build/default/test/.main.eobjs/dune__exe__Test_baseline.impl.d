test/test_baseline.ml: Alcotest Audit Fabric Filter Flow Helpers Ipaddr List Move Opennf Opennf_baseline Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace Option Packet
