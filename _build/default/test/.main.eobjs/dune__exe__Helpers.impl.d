test/helpers.ml: Alcotest Audit Controller Fabric Filter Float Flow List Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace
