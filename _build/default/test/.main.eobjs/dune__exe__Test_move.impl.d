test/test_move.ml: Alcotest Audit Filter Helpers List Move Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_state Option
