test/test_sb.ml: Alcotest Audit Channel Chunk Filter Flow Ipaddr List Opennf_net Opennf_sb Opennf_sim Opennf_state Packet Store String
