test/test_util.ml: Alcotest Array Fun Gen List Opennf_util Printf QCheck QCheck_alcotest String
