test/test_net.ml: Alcotest Audit Channel Filter Flow Flowtable Ipaddr List Opennf_net Opennf_sim Option Packet QCheck QCheck_alcotest Switch
