test/test_move_edge.ml: Alcotest Audit Controller Fabric Filter Helpers Ipaddr List Move Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_state Opennf_trace
