test/test_audit.ml: Alcotest Audit Filter Flow Ipaddr List Opennf_net Opennf_sim Packet
