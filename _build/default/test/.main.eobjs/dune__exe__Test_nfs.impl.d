test/test_nfs.ml: Alcotest Array Chunk Filter Flow Ipaddr List Opennf_net Opennf_nfs Opennf_sb Opennf_state Opennf_trace Option Packet Printf String
