test/main.mli:
