test/test_re_move.ml: Alcotest Array Audit Controller Fabric Filter Flow Ipaddr List Move Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_state Opennf_trace Printf
