test/test_props.ml: Audit Copy_op Filter Flow Helpers Ipaddr List Move Opennf Opennf_net Opennf_nfs Opennf_sim Opennf_state Printf QCheck QCheck_alcotest
