test/test_sim.ml: Alcotest List Opennf_sim Opennf_util
