(* Tests for the synthetic workload generators. *)

module Gen = Opennf_trace.Gen
open Opennf_net

let ip = Ipaddr.v

let sorted schedule =
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && check rest
    | [ _ ] | [] -> true
  in
  check schedule

let test_steady_flows_shape () =
  let gen = Gen.create () in
  let schedule, keys = Gen.steady_flows gen ~flows:10 ~rate:100.0 ~start:1.0 ~duration:1.0 () in
  Alcotest.(check int) "flow count" 10 (List.length keys);
  Alcotest.(check bool) "time-sorted" true (sorted schedule);
  Alcotest.(check bool) "starts at start" true (fst (List.hd schedule) >= 1.0);
  (* handshakes (2/flow) + data (rate*duration) + fins (2/flow) *)
  Alcotest.(check int) "packet count" (20 + 100 + 20) (List.length schedule);
  (* Each flow opens with a SYN and closes with FINs. *)
  let by_flow k =
    List.filter (fun (_, p) -> Flow.equal (Flow.canonical p.Packet.key) (Flow.canonical k)) schedule
  in
  List.iter
    (fun k ->
      let pkts = by_flow k in
      Alcotest.(check bool) "opens with SYN" true
        (Packet.is_syn (snd (List.hd pkts)));
      Alcotest.(check bool) "closes with FIN" true
        (Packet.has_flag (snd (List.nth pkts (List.length pkts - 1))) Fin))
    keys

let test_steady_flows_distinct_keys () =
  let gen = Gen.create () in
  let _, keys = Gen.steady_flows gen ~flows:300 ~rate:100.0 ~start:0.0 ~duration:0.1 () in
  let uniq = List.sort_uniq Flow.compare keys in
  Alcotest.(check int) "all distinct" 300 (List.length uniq)

let test_packet_ids_unique () =
  let gen = Gen.create () in
  let s1, _ = Gen.steady_flows gen ~flows:5 ~rate:100.0 ~start:0.0 ~duration:0.5 () in
  let s2 =
    Gen.http_session gen ~client:(ip 1 1 1 1) ~server:(ip 2 2 2 2) ~sport:9
      ~start:0.0 ~url:"/x" ~body:"abc" ()
  in
  let ids = List.map (fun (_, p) -> p.Packet.id) (s1 @ s2) in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq Int.compare ids))

let test_http_session_structure () =
  let gen = Gen.create () in
  let body = String.make 3000 'b' in
  let s =
    Gen.http_session gen ~client:(ip 1 1 1 1) ~server:(ip 2 2 2 2) ~sport:9
      ~start:0.5 ~url:"/file" ~agent:"IE6" ~body ~body_pkt_bytes:1000 ()
  in
  Alcotest.(check bool) "sorted" true (sorted s);
  (* SYN, SYN+ACK, GET, 3 body, client FIN = 7 *)
  Alcotest.(check int) "packet count" 7 (List.length s);
  let payloads = List.map (fun (_, p) -> p.Packet.payload) s in
  Alcotest.(check bool) "request carries UA" true
    (List.exists (fun pl -> pl = "GET /file UA=IE6") payloads);
  let body_bytes =
    List.fold_left
      (fun acc (_, (p : Packet.t)) ->
        if Ipaddr.equal p.Packet.key.Flow.src_ip (ip 2 2 2 2) then
          acc + String.length p.Packet.payload
        else acc)
      0 s
  in
  Alcotest.(check int) "body fully carried" 3000 body_bytes

let test_port_scan_targets () =
  let gen = Gen.create () in
  let s = Gen.port_scan gen ~src:(ip 9 9 9 9) ~dst:(ip 10 0 0 1)
      ~ports:[ 1; 2; 3 ] ~start:0.0 () in
  Alcotest.(check int) "one SYN per port" 3 (List.length s);
  List.iter
    (fun (_, (p : Packet.t)) ->
      Alcotest.(check bool) "is SYN" true (Packet.is_syn p))
    s

let test_proxy_requests_continuations () =
  let gen = Gen.create () in
  let urls = [| "/only" |] in
  let s =
    Gen.proxy_requests gen ~client:(ip 1 1 1 1) ~proxy:(ip 2 2 2 2) ~urls
      ~requests:1 ~start:0.0 ~object_size:(fun _ -> 200_000) ~cont_bytes:65536 ()
  in
  (* SYN + GET + ceil(200000/65536)=4 continuations. *)
  Alcotest.(check int) "packets" 6 (List.length s);
  Alcotest.(check bool) "sorted" true (sorted s)

let test_malware_body_digest_matches_ids_math () =
  let body, digest = Gen.malware_body 10_000 in
  Alcotest.(check int) "length" 10_000 (String.length body);
  let d = Opennf_util.Hashing.Digest_sig.create () in
  Opennf_util.Hashing.Digest_sig.feed d body;
  Alcotest.(check int64) "digest consistent" digest
    (Opennf_util.Hashing.Digest_sig.value d);
  let body2, digest2 = Gen.malware_body ~tag:"OTHER" 10_000 in
  Alcotest.(check bool) "tags differentiate" true
    (body <> body2 && digest <> digest2)

let test_merge_stable_sort () =
  let gen = Gen.create () in
  let a = [ Gen.packet gen ~at:1.0 ~key:(Flow.make ~src:(ip 1 1 1 1) ~dst:(ip 2 2 2 2) ~sport:1 ~dport:2 ()) () ] in
  let b = [ Gen.packet gen ~at:0.5 ~key:(Flow.make ~src:(ip 3 3 3 3) ~dst:(ip 4 4 4 4) ~sport:3 ~dport:4 ()) () ] in
  let merged = Gen.merge [ a; b ] in
  Alcotest.(check bool) "sorted after merge" true (sorted merged);
  Alcotest.(check int) "kept all" 2 (List.length merged)

let suite =
  [
    Alcotest.test_case "steady flows: shape" `Quick test_steady_flows_shape;
    Alcotest.test_case "steady flows: distinct keys" `Quick
      test_steady_flows_distinct_keys;
    Alcotest.test_case "generator: unique packet ids" `Quick test_packet_ids_unique;
    Alcotest.test_case "http session: structure" `Quick test_http_session_structure;
    Alcotest.test_case "port scan: one SYN per port" `Quick test_port_scan_targets;
    Alcotest.test_case "proxy requests: continuations" `Quick
      test_proxy_requests_continuations;
    Alcotest.test_case "malware body: digest math" `Quick
      test_malware_body_digest_matches_ids_math;
    Alcotest.test_case "merge: stable sort" `Quick test_merge_stable_sort;
  ]
