(** Split/Merge-style migrate (Rajagopalan et al., NSDI'13 — [34] in the
    paper).

    The orchestrator halts matching traffic by diverting it to the
    controller, transfers per-flow state {e without} an event
    abstraction, then races the buffered-packet flush against the
    forwarding update (Figure 5 of the paper). Consequences this
    implementation reproduces:

    - packets in transit to (or queued at) the source when migrate
      starts are dropped at the source, losing their state updates;
    - a packet can reach the controller after the flush but before the
      new rule is active, and is then forwarded to the destination after
      later packets already went direct — reordering. *)

open Opennf_net
open Opennf

type report = {
  started : float;
  finished : float;
  chunks : int;
  buffered : int;  (** Packets halted at the controller. *)
  late : int;  (** Packets relayed after the flush (the Figure 5 race). *)
}

val migrate :
  Controller.t -> src:Controller.nf -> dst:Controller.nf -> filter:Filter.t ->
  report
(** Blocking; call from a simulation process. *)
