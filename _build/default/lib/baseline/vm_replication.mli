(** VM/process replication baseline (§2.2, §8.4).

    Clones an NF instance in its entirety: every piece of per-flow,
    multi-flow and all-flows state is copied to the clone, relevant or
    not. The unneeded state wastes memory and — worse — produces
    incorrect NF behaviour: flows that never reach the clone terminate
    abruptly in its bookkeeping (and vice-versa at the original once
    traffic is split). *)

open Opennf_net

type report = {
  total_bytes : int;  (** Serialized size of everything cloned. *)
  needed_bytes : int;  (** Portion matching [needed] (what OpenNF would move). *)
  chunks : int;
}

val clone :
  src:Opennf_sb.Nf_api.impl ->
  dst:Opennf_sb.Nf_api.impl ->
  needed:Filter.t ->
  report
(** Copies all state from [src] into [dst] directly (a VM snapshot does
    not go through any API). [needed] is only used for accounting: how
    many of the copied bytes a state-aware move would actually have
    transferred. *)
