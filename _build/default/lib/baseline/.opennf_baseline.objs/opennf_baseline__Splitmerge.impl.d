lib/baseline/splitmerge.ml: Controller Filter Flowtable List Opennf Opennf_net Opennf_sim Queue
