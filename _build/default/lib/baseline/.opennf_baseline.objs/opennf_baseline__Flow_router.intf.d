lib/baseline/flow_router.mli: Controller Filter Flow Opennf Opennf_net Packet
