lib/baseline/vm_replication.ml: Filter List Opennf_net Opennf_sb Opennf_state
