lib/baseline/vm_replication.mli: Filter Opennf_net Opennf_sb
