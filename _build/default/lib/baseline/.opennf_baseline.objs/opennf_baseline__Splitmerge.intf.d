lib/baseline/splitmerge.mli: Controller Filter Opennf Opennf_net
