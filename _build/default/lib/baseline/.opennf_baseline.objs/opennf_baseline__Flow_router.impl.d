lib/baseline/flow_router.ml: Controller Filter Flow Flowtable List Opennf Opennf_net Opennf_sim Option Packet
