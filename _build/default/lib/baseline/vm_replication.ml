module Nf_api = Opennf_sb.Nf_api
module Chunk = Opennf_state.Chunk
open Opennf_net

type report = { total_bytes : int; needed_bytes : int; chunks : int }

let clone ~(src : Nf_api.impl) ~(dst : Nf_api.impl) ~needed =
  let total = ref 0 and needed_b = ref 0 and chunks = ref 0 in
  let account flowid chunk =
    incr chunks;
    total := !total + Chunk.size chunk;
    if Filter.accepts_flowid needed flowid then
      needed_b := !needed_b + Chunk.size chunk
  in
  List.iter
    (fun flowid ->
      match src.Nf_api.export_perflow flowid with
      | None -> ()
      | Some chunk ->
        account flowid chunk;
        dst.Nf_api.import_perflow flowid chunk)
    (src.Nf_api.list_perflow Filter.any);
  List.iter
    (fun flowid ->
      match src.Nf_api.export_multiflow flowid with
      | None -> ()
      | Some chunk ->
        account flowid chunk;
        dst.Nf_api.import_multiflow flowid chunk)
    (src.Nf_api.list_multiflow Filter.any);
  let all = src.Nf_api.export_allflows () in
  List.iter (fun chunk -> account Filter.any chunk) all;
  dst.Nf_api.import_allflows all;
  { total_bytes = !total; needed_bytes = !needed_b; chunks = !chunks }
