module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf

type report = {
  started : float;
  finished : float;
  chunks : int;
  buffered : int;
  late : int;
}

let migrate t ~src ~dst ~filter =
  let engine = Controller.engine t in
  let started = Engine.now engine in
  let dst_name = Controller.nf_name dst in
  (* Halt: divert matching traffic to the controller and buffer it. *)
  let buffer = Queue.create () in
  let flushed = ref false in
  let late = ref 0 in
  let buffered = ref 0 in
  let sub =
    Controller.subscribe_packet_in t filter (fun p ->
        if !flushed then begin
          (* The Figure 5 race: the forwarding update has been issued but
             is not yet active, so stragglers keep arriving here and are
             relayed behind packets the switch already sends direct. *)
          incr late;
          Controller.packet_out t ~port:dst_name p
        end
        else begin
          incr buffered;
          Queue.push p buffer
        end)
  in
  let filters =
    if Filter.is_symmetric filter then [ filter ]
    else [ filter; Filter.mirror filter ]
  in
  let divert = Controller.fresh_cookie t in
  Controller.install_rule t ~cookie:divert
    ~priority:Controller.phase1_priority ~filters
    ~actions:[ Flowtable.To_controller ];
  Controller.barrier t;
  (* Transfer state with the plain get/del/put — no events, so updates
     from packets that were in flight toward the source are lost and the
     packets themselves are dropped there. *)
  let chunks = Controller.get_perflow t src filter () in
  Controller.del_perflow t src (List.map fst chunks);
  if chunks <> [] then Controller.put_perflow t dst chunks;
  (* Flush the buffer, then issue the forwarding update: the two race. *)
  Queue.iter (fun p -> Controller.packet_out t ~port:dst_name p) buffer;
  Queue.clear buffer;
  flushed := true;
  let final = Controller.fresh_cookie t in
  Controller.install_rule t ~cookie:final
    ~priority:Controller.phase2_priority ~filters
    ~actions:[ Flowtable.Forward dst_name ];
  Controller.barrier t;
  Controller.remove_rule t ~cookie:divert;
  (* Leave the subscription briefly so stragglers are counted, then
     detach. *)
  Proc.sleep 0.05;
  Controller.unsubscribe t sub;
  {
    started;
    finished = Engine.now engine;
    chunks = List.length chunks;
    buffered = !buffered;
    late = !late;
  }
