(** A per-flow SDN load balancer with sticky routing — the
    "scaling without re-balancing active flows" baseline (§2.2, §8.4).

    The default switch rule sends unmatched packets to the controller;
    at the first packet of each connection the [policy] picks an
    instance and an exact-match rule pins the whole connection there.
    Changing the policy (scale-out) affects only {e new} flows, so an
    overloaded instance stays overloaded until its flows end, and
    scale-in must wait for the last pinned flow to finish. *)

open Opennf_net
open Opennf

type t

val start :
  Controller.t -> policy:(Packet.t -> Controller.nf) -> ?filter:Filter.t ->
  unit -> t
(** Blocking (installs the punt rule). [filter] limits which traffic the
    router manages (default all). *)

val set_policy : t -> (Packet.t -> Controller.nf) -> unit
(** Applies to new flows only — that is the point of this baseline. *)

val pinned_flows : t -> (Flow.key * string) list
(** Connections currently pinned, with their instance. *)

val pinned_on : t -> Controller.nf -> int
val stop : t -> unit
