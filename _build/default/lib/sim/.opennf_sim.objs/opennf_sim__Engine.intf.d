lib/sim/engine.mli: Opennf_util
