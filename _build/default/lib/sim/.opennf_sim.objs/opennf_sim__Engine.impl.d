lib/sim/engine.ml: Array Opennf_util Printf
