type action = Forward of string | To_controller

type rule = {
  cookie : int;
  priority : int;
  filters : Filter.t list;
  actions : action list;
  mutable matched : int;
}

type entry = { rule : rule; installed_seq : int }
type t = { mutable entries : entry list; mutable next_seq : int }

let create () = { entries = []; next_seq = 0 }

let install t ~cookie ~priority ~filters ~actions =
  let rule = { cookie; priority; filters; actions; matched = 0 } in
  let entry = { rule; installed_seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  t.entries <- entry :: List.filter (fun e -> e.rule.cookie <> cookie) t.entries

let remove t ~cookie =
  t.entries <- List.filter (fun e -> e.rule.cookie <> cookie) t.entries

let rule_matches r p = List.exists (fun f -> Filter.matches_packet f p) r.filters

let lookup t p =
  let best =
    List.fold_left
      (fun best e ->
        if rule_matches e.rule p then
          match best with
          | None -> Some e
          | Some b ->
            if
              e.rule.priority > b.rule.priority
              || (e.rule.priority = b.rule.priority
                 && e.installed_seq > b.installed_seq)
            then Some e
            else best
        else best)
      None t.entries
  in
  match best with
  | None -> None
  | Some e ->
    e.rule.matched <- e.rule.matched + 1;
    Some e.rule

let find t ~cookie =
  List.find_map
    (fun e -> if e.rule.cookie = cookie then Some e.rule else None)
    t.entries

let rules t = List.map (fun e -> e.rule) t.entries
let size t = List.length t.entries
