type 'a t = {
  engine : Opennf_sim.Engine.t;
  latency : float;
  bandwidth : float option;
  name : string;
  mutable handler : ('a -> int -> unit) option;
  mutable busy_until : float;  (** Sender-side serialization. *)
  mutable last_delivery : float;  (** Enforces FIFO delivery. *)
  mutable sent_count : int;
  mutable bytes_sent : int;
}

let create engine ~latency ?bandwidth ~name () =
  {
    engine;
    latency;
    bandwidth;
    name;
    handler = None;
    busy_until = 0.0;
    last_delivery = 0.0;
    sent_count = 0;
    bytes_sent = 0;
  }

let set_handler t f = t.handler <- Some (fun msg _size -> f msg)
let set_handler_with_size t f = t.handler <- Some f

let send t ?(size = 0) msg =
  let module Engine = Opennf_sim.Engine in
  let now = Engine.now t.engine in
  let start = Float.max now t.busy_until in
  let tx_time =
    match t.bandwidth with
    | None -> 0.0
    | Some bw -> float_of_int size /. bw
  in
  t.busy_until <- start +. tx_time;
  let delivery = Float.max (t.busy_until +. t.latency) t.last_delivery in
  t.last_delivery <- delivery;
  t.sent_count <- t.sent_count + 1;
  t.bytes_sent <- t.bytes_sent + size;
  Engine.schedule_at t.engine delivery (fun () ->
      match t.handler with
      | Some f -> f msg size
      | None ->
        invalid_arg (Printf.sprintf "Channel %s: no handler installed" t.name))

let name t = t.name
let sent_count t = t.sent_count
let bytes_sent t = t.bytes_sent
