type t = int

let octet_ok x = x >= 0 && x <= 255

let v a b c d =
  if not (octet_ok a && octet_ok b && octet_ok c && octet_ok d) then
    invalid_arg "Ipaddr.v: octet out of range";
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let of_int i = i land 0xFFFFFFFF
let to_int t = t

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    try v (int_of_string a) (int_of_string b) (int_of_string c) (int_of_string d)
    with Failure _ -> invalid_arg ("Ipaddr.of_string: " ^ s))
  | _ -> invalid_arg ("Ipaddr.of_string: " ^ s)

let to_string t =
  Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF)
    ((t lsr 8) land 0xFF) (t land 0xFF)

let pp ppf t = Format.pp_print_string ppf (to_string t)
let compare = Int.compare
let equal = Int.equal
let hash t = t

module Prefix = struct
  type nonrec t = { network : t; bits : int }

  let mask bits = if bits = 0 then 0 else 0xFFFFFFFF lsl (32 - bits) land 0xFFFFFFFF

  let make addr bits =
    if bits < 0 || bits > 32 then invalid_arg "Prefix.make: bad length";
    { network = addr land mask bits; bits }

  let of_string s =
    match String.index_opt s '/' with
    | None -> make (of_string s) 32
    | Some i ->
      let addr = of_string (String.sub s 0 i) in
      let bits =
        try int_of_string (String.sub s (i + 1) (String.length s - i - 1))
        with Failure _ -> invalid_arg ("Prefix.of_string: " ^ s)
      in
      make addr bits

  let host addr = make addr 32
  let mem addr t = addr land mask t.bits = t.network
  let subset a b = a.bits >= b.bits && a.network land mask b.bits = b.network
  let bits t = t.bits
  let network t = t.network
  let to_string t = Printf.sprintf "%s/%d" (to_string t.network) t.bits
  let pp ppf t = Format.pp_print_string ppf (to_string t)
  let compare a b =
    match Int.compare a.network b.network with
    | 0 -> Int.compare a.bits b.bits
    | c -> c

  let equal a b = compare a b = 0
end
