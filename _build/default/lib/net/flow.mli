(** Flow identification: 5-tuples and direction handling. *)

type proto = Tcp | Udp | Icmp

val proto_to_string : proto -> string
val proto_of_string : string -> proto
val pp_proto : Format.formatter -> proto -> unit

type key = {
  src_ip : Ipaddr.t;
  dst_ip : Ipaddr.t;
  proto : proto;
  src_port : int;
  dst_port : int;
}
(** A directed 5-tuple: the header of one packet. Both directions of a
    connection have mirrored keys; use [canonical] when indexing
    connection-scoped state. *)

val make :
  src:Ipaddr.t -> dst:Ipaddr.t -> ?proto:proto -> sport:int -> dport:int ->
  unit -> key

val reverse : key -> key

val canonical : key -> key
(** Direction-independent representative: the lexicographically smaller
    of [k] and [reverse k]. [canonical k = canonical (reverse k)]. *)

val is_forward : key -> bool
(** True iff [canonical k = k]. *)

val compare : key -> key -> int
val equal : key -> key -> bool
val hash : key -> int
val pp : Format.formatter -> key -> unit
val to_string : key -> string

module Map : Map.S with type key = key
module Set : Set.S with type elt = key
module Table : Hashtbl.S with type key = key
