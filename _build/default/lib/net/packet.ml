type tcp_flag = Syn | Ack | Fin | Rst | Psh

type t = {
  id : int;
  key : Flow.key;
  flags : tcp_flag list;
  seq : int;
  payload : string;
  wire_size : int;
  sent_at : float;
  mutable do_not_buffer : bool;
  mutable do_not_drop : bool;
}

let header_size = 54

let create ~id ~key ?(flags = []) ?(seq = 0) ?(payload = "") ?wire_size
    ~sent_at () =
  let wire_size =
    match wire_size with
    | Some s -> s
    | None -> header_size + String.length payload
  in
  {
    id;
    key;
    flags;
    seq;
    payload;
    wire_size;
    sent_at;
    do_not_buffer = false;
    do_not_drop = false;
  }

let has_flag t f = List.mem f t.flags
let is_syn t = has_flag t Syn && not (has_flag t Ack)

let flag_to_string = function
  | Syn -> "S"
  | Ack -> "A"
  | Fin -> "F"
  | Rst -> "R"
  | Psh -> "P"

let pp_flags ppf flags =
  List.iter (fun f -> Format.pp_print_string ppf (flag_to_string f)) flags

let pp ppf t =
  Format.fprintf ppf "#%d %a [%a] seq=%d %dB" t.id Flow.pp t.key pp_flags
    t.flags t.seq t.wire_size
