(** IPv4 addresses and prefixes. *)

type t
(** An IPv4 address. Total order; usable as a map key. *)

val v : int -> int -> int -> int -> t
(** [v 10 0 0 1] is 10.0.0.1. Each octet must be in [\[0, 255\]]. *)

val of_int : int -> t
(** From a 32-bit value (host order). *)

val to_int : t -> int

val of_string : string -> t
(** Parses dotted-quad notation. Raises [Invalid_argument] otherwise. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

module Prefix : sig
  type addr := t

  type t
  (** A CIDR prefix such as 10.0.0.0/8. *)

  val make : addr -> int -> t
  (** [make addr len]; [len] in [\[0, 32\]]. Host bits are zeroed. *)

  val of_string : string -> t
  (** Parses ["10.0.0.0/8"]; a bare address means /32. *)

  val host : addr -> t
  (** /32 prefix for one address. *)

  val mem : addr -> t -> bool
  val subset : t -> t -> bool
  (** [subset a b] iff every address in [a] is in [b]. *)

  val bits : t -> int
  val network : t -> addr
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit
  val compare : t -> t -> int
  val equal : t -> t -> bool
end
