type proto = Tcp | Udp | Icmp

let proto_to_string = function Tcp -> "tcp" | Udp -> "udp" | Icmp -> "icmp"

let proto_of_string = function
  | "tcp" -> Tcp
  | "udp" -> Udp
  | "icmp" -> Icmp
  | s -> invalid_arg ("Flow.proto_of_string: " ^ s)

let pp_proto ppf p = Format.pp_print_string ppf (proto_to_string p)

type key = {
  src_ip : Ipaddr.t;
  dst_ip : Ipaddr.t;
  proto : proto;
  src_port : int;
  dst_port : int;
}

let make ~src ~dst ?(proto = Tcp) ~sport ~dport () =
  { src_ip = src; dst_ip = dst; proto; src_port = sport; dst_port = dport }

let reverse k =
  {
    k with
    src_ip = k.dst_ip;
    dst_ip = k.src_ip;
    src_port = k.dst_port;
    dst_port = k.src_port;
  }

let compare a b =
  let c = Ipaddr.compare a.src_ip b.src_ip in
  if c <> 0 then c
  else
    let c = Ipaddr.compare a.dst_ip b.dst_ip in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.proto b.proto in
      if c <> 0 then c
      else
        let c = Int.compare a.src_port b.src_port in
        if c <> 0 then c else Int.compare a.dst_port b.dst_port

let equal a b = compare a b = 0

let canonical k =
  let r = reverse k in
  if compare k r <= 0 then k else r

let is_forward k = equal (canonical k) k

let hash k =
  let open Opennf_util.Hashing in
  let h =
    combine
      (Int64.of_int (Ipaddr.hash k.src_ip))
      (Int64.of_int (Ipaddr.hash k.dst_ip))
  in
  let h = combine h (Int64.of_int k.src_port) in
  let h = combine h (Int64.of_int k.dst_port) in
  let h =
    combine h (Int64.of_int (match k.proto with Tcp -> 0 | Udp -> 1 | Icmp -> 2))
  in
  Int64.to_int h land max_int

let to_string k =
  Printf.sprintf "%s:%d>%s:%d/%s"
    (Ipaddr.to_string k.src_ip)
    k.src_port
    (Ipaddr.to_string k.dst_ip)
    k.dst_port
    (proto_to_string k.proto)

let pp ppf k = Format.pp_print_string ppf (to_string k)

module Ord = struct
  type t = key

  let compare = compare
end

module Hashed = struct
  type t = key

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Table = Hashtbl.Make (Hashed)
