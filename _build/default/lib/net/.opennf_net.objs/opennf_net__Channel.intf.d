lib/net/channel.mli: Opennf_sim
