lib/net/switch.ml: Audit Channel Filter Float Flowtable Hashtbl List Opennf_sim Packet Printf
