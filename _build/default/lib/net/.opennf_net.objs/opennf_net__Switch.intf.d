lib/net/switch.mli: Audit Channel Filter Flowtable Opennf_sim Packet
