lib/net/channel.ml: Float Opennf_sim Printf
