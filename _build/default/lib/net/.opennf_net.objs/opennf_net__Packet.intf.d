lib/net/packet.mli: Flow Format
