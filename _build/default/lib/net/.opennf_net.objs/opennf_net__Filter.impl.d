lib/net/filter.ml: Flow Format Int Ipaddr List Option Packet Printf Stdlib String
