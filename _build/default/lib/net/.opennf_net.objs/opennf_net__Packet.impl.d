lib/net/packet.ml: Flow Format List String
