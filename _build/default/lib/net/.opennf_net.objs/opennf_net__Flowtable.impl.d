lib/net/flowtable.ml: Filter List
