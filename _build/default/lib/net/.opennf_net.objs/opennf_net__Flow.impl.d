lib/net/flow.ml: Format Hashtbl Int Int64 Ipaddr Map Opennf_util Printf Set Stdlib
