lib/net/audit.mli: Filter Opennf_sim Packet
