lib/net/flowtable.mli: Filter Packet
