lib/net/audit.ml: Filter Flow Hashtbl List Opennf_sim Option Packet
