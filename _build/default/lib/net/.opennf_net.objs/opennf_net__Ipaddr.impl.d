lib/net/ipaddr.ml: Format Int Printf String
