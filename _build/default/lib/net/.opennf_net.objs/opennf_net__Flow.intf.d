lib/net/flow.mli: Format Hashtbl Ipaddr Map Set
