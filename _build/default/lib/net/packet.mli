(** Packets.

    A packet is immutable except for the two control flags the OpenNF
    controller sets when re-injecting packets ("do-not-buffer" for
    order-preserving moves, "do-not-drop" for share). Identity is the
    [id]: relayed copies keep the id of the original packet, which is how
    the audit log establishes exactly-once processing. *)

type tcp_flag = Syn | Ack | Fin | Rst | Psh

type t = {
  id : int;  (** Unique per generated packet; stable across relays. *)
  key : Flow.key;
  flags : tcp_flag list;
  seq : int;  (** Position of this packet within its flow (0-based). *)
  payload : string;  (** Application bytes carried (may be [""]). *)
  wire_size : int;  (** Bytes on the wire (headers + payload). *)
  sent_at : float;  (** Virtual time the packet entered the network. *)
  mutable do_not_buffer : bool;
  mutable do_not_drop : bool;
}

val create :
  id:int ->
  key:Flow.key ->
  ?flags:tcp_flag list ->
  ?seq:int ->
  ?payload:string ->
  ?wire_size:int ->
  sent_at:float ->
  unit ->
  t
(** [wire_size] defaults to [54 + String.length payload]. *)

val has_flag : t -> tcp_flag -> bool
val is_syn : t -> bool
(** SYN without ACK (a connection-opening packet). *)

val pp : Format.formatter -> t -> unit
val pp_flags : Format.formatter -> tcp_flag list -> unit
