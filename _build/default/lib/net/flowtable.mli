(** Priority flow tables (the data-plane half of the SDN switch). *)

type action =
  | Forward of string  (** Output on the port with this name. *)
  | To_controller  (** Send a packet-in to the controller. *)

type rule = {
  cookie : int;  (** Controller-chosen identity; install replaces. *)
  priority : int;
  filters : Filter.t list;  (** The rule matches if any filter matches. *)
  actions : action list;
  mutable matched : int;  (** Packets matched so far (OpenFlow counter). *)
}

type t

val create : unit -> t

val install :
  t -> cookie:int -> priority:int -> filters:Filter.t list ->
  actions:action list -> unit
(** Atomically adds the rule, replacing any rule with the same cookie. *)

val remove : t -> cookie:int -> unit
(** No-op if absent. *)

val lookup : t -> Packet.t -> rule option
(** Highest-priority matching rule; among equal priorities the most
    recently installed wins. *)

val find : t -> cookie:int -> rule option
val rules : t -> rule list
val size : t -> int
