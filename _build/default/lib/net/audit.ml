module Engine = Opennf_sim.Engine

type record = { pkt : int; key : Flow.key; nf : string; time : float }

type t = {
  engine : Engine.t;
  mutable arrivals : record list;  (** Reverse chronological. *)
  mutable forwards : record list;  (** Reverse chronological. *)
  mutable processes : record list;
  mutable drops : record list;
  mutable events : record list;
  mutable buffers : record list;
  arrived : (int, unit) Hashtbl.t;
  first_forward : (int, float) Hashtbl.t;
  first_arrival : (int, float) Hashtbl.t;
  first_process : (int, float) Hashtbl.t;
}

let create engine =
  {
    engine;
    arrivals = [];
    arrived = Hashtbl.create 1024;
    forwards = [];
    processes = [];
    drops = [];
    events = [];
    buffers = [];
    first_forward = Hashtbl.create 1024;
    first_arrival = Hashtbl.create 1024;
    first_process = Hashtbl.create 1024;
  }

let record t (p : Packet.t) name =
  { pkt = p.id; key = p.key; nf = name; time = Engine.now t.engine }

let remember tbl id time = if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id time

let log_switch_arrival t p =
  if not (Hashtbl.mem t.arrived p.Packet.id) then begin
    Hashtbl.add t.arrived p.Packet.id ();
    t.arrivals <- record t p "sw" :: t.arrivals
  end

let log_forward t p ~dst =
  let r = record t p dst in
  t.forwards <- r :: t.forwards;
  remember t.first_forward p.id r.time

let log_nf_arrival t p ~nf =
  let r = record t p nf in
  remember t.first_arrival p.id r.time

let log_process t p ~nf =
  let r = record t p nf in
  t.processes <- r :: t.processes;
  remember t.first_process p.id r.time

let log_drop t p ~nf = t.drops <- record t p nf :: t.drops
let log_evented t p ~nf = t.events <- record t p nf :: t.events
let log_buffered t p ~nf = t.buffers <- record t p nf :: t.buffers

let in_filter filter (r : record) =
  match filter with None -> true | Some f -> Filter.matches_flow f r.key

let by_nf nf (r : record) = match nf with None -> true | Some n -> r.nf = n

let forwarded_order ?filter t =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun r ->
      if in_filter filter r && not (Hashtbl.mem seen r.pkt) then begin
        Hashtbl.add seen r.pkt ();
        Some r.pkt
      end
      else None)
    (List.rev t.forwards)

let processed_order ?filter ?nf t =
  List.filter_map
    (fun r -> if in_filter filter r && by_nf nf r then Some r.pkt else None)
    (List.rev t.processes)

let drop_count ?nf t = List.length (List.filter (by_nf nf) t.drops)
let processed_count ?nf t = List.length (List.filter (by_nf nf) t.processes)

let lost ?filter t ~nfs =
  let processed = Hashtbl.create 1024 in
  List.iter
    (fun (r : record) ->
      if List.mem r.nf nfs then Hashtbl.replace processed r.pkt ())
    t.processes;
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (r : record) ->
      if
        in_filter filter r
        && List.mem r.nf nfs
        && (not (Hashtbl.mem seen r.pkt))
        && not (Hashtbl.mem processed r.pkt)
      then begin
        Hashtbl.add seen r.pkt ();
        Some r.pkt
      end
      else None)
    (List.rev t.forwards)

let duplicated ?filter t =
  let counts = Hashtbl.create 1024 in
  List.iter
    (fun (r : record) ->
      if in_filter filter r then
        Hashtbl.replace counts r.pkt
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts r.pkt)))
    t.processes;
  Hashtbl.fold (fun id n acc -> if n > 1 then id :: acc else acc) counts []

let violations_against t reference_order ?filter () =
  let pos = Hashtbl.create 1024 in
  List.iteri (fun i id -> Hashtbl.replace pos id i) reference_order;
  let proc =
    List.filter (fun id -> Hashtbl.mem pos id) (processed_order ?filter t)
  in
  (* A violation is an inversion between the reference position and the
     processing position. Report adjacent-in-processing inversions, which
     is enough to witness any reordering. *)
  let rec scan acc = function
    | a :: (b :: _ as rest) ->
      let pa = Hashtbl.find pos a and pb = Hashtbl.find pos b in
      let acc = if pa > pb then (b, a) :: acc else acc in
      scan acc rest
    | [ _ ] | [] -> List.rev acc
  in
  scan [] proc

let order_violations ?filter t =
  violations_against t (forwarded_order ?filter t) ?filter ()

let arrival_order t filter =
  List.filter_map
    (fun r -> if in_filter filter r then Some r.pkt else None)
    (List.rev t.arrivals)

let arrival_order_violations ?filter t =
  violations_against t (arrival_order t filter) ?filter ()

let added_latency t ~pkt =
  match
    (Hashtbl.find_opt t.first_arrival pkt, Hashtbl.find_opt t.first_process pkt)
  with
  | Some arrival, Some proc -> Some (proc -. arrival)
  | _ -> None

let evented_ids ?nf t =
  List.rev
    (List.filter_map
       (fun r -> if by_nf nf r then Some r.pkt else None)
       t.events)

let buffered_ids ?nf t =
  List.rev
    (List.filter_map
       (fun r -> if by_nf nf r then Some r.pkt else None)
       t.buffers)

let first_forward_time t ~pkt = Hashtbl.find_opt t.first_forward pkt
let process_time t ~pkt = Hashtbl.find_opt t.first_process pkt
