(** Deterministic pseudo-random number generator.

    A small, fast splitmix64 generator. Every simulation component draws
    from an explicitly threaded generator so that runs are reproducible
    bit-for-bit from a seed; the global OCaml [Random] state is never
    used. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Two generators created with
    the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use to give each subsystem its own stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto-distributed value; heavy-tailed flow sizes/durations. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
