(** Hashing and digests.

    [fnv1a*] are fast non-cryptographic hashes used for fingerprint tables
    (redundancy elimination) and hash-based sharding. [Digest_sig] is a
    64-bit rolling content digest standing in for the md5sums the Bro IDS
    computes over reassembled HTTP bodies: it is order- and
    content-sensitive, so any lost or reordered payload byte changes it. *)

val fnv1a64 : string -> int64
(** FNV-1a over the whole string. *)

val fnv1a64_sub : string -> pos:int -> len:int -> int64
(** FNV-1a over a substring. *)

val combine : int64 -> int64 -> int64
(** Mix two hashes into one (not commutative). *)

module Digest_sig : sig
  type t
  (** Incremental digest over a byte stream. *)

  val create : unit -> t
  val feed : t -> string -> unit
  val value : t -> int64
  (** Digest of everything fed so far. *)

  val to_hex : int64 -> string

  val export : t -> int64 * int
  (** Internal state, for NF serialization. *)

  val restore : int64 * int -> t
  (** Inverse of [export]. *)
end
