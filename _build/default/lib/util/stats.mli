(** Online statistics accumulators used by the measurement harness. *)

module Summary : sig
  type t
  (** Streaming summary: count, mean (Welford), min, max, variance. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val stddev : t -> float
  val pp : Format.formatter -> t -> unit
end

module Reservoir : sig
  type t
  (** Keeps all samples; supports exact percentiles. Intended for the
      bounded sample counts of simulation experiments. *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t 0.99]; nearest-rank on the sorted samples. 0 when
      empty. *)

  val mean : t -> float
  val max : t -> float
  val to_list : t -> float list
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val get : t -> int
end
