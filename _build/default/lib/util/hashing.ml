let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a64_sub s ~pos ~len =
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h fnv_prime
  done;
  !h

let fnv1a64 s = fnv1a64_sub s ~pos:0 ~len:(String.length s)

let combine a b =
  let h = Int64.logxor a (Int64.add b 0x9E3779B97F4A7C15L) in
  Int64.mul (Int64.logxor h (Int64.shift_right_logical h 29)) fnv_prime

module Digest_sig = struct
  type t = { mutable h : int64; mutable count : int }

  let create () = { h = fnv_offset; count = 0 }

  let feed t s =
    let h = ref t.h in
    for i = 0 to String.length s - 1 do
      h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
      h := Int64.mul !h fnv_prime
    done;
    t.h <- !h;
    t.count <- t.count + String.length s

  let value t = combine t.h (Int64.of_int t.count)

  let to_hex v = Printf.sprintf "%016Lx" v
  let export t = (t.h, t.count)
  let restore (h, count) = { h; count }
end
