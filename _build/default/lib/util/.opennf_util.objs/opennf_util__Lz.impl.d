lib/util/lz.ml: Array Buffer Char List String
