lib/util/rng.mli:
