lib/util/lz.mli:
