lib/util/bytes_io.ml: Buffer Char Int64 List Printf String
