lib/util/hashing.mli:
