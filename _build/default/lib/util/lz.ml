(* Token stream format:
   - 0x00 len(u16) bytes...      literal run (len >= 1)
   - 0x01 dist(u16) len(u16)     back-reference: copy [len] bytes from
                                 [dist] bytes behind the output cursor
   Matches are found with a 4-byte hash table, greedy parsing. *)

let min_match = 4
let min_gainful = 6
(* A back-reference costs 5 bytes, so shorter matches are kept literal. *)
let max_match = 0xFFFF
let max_dist = 0xFFFF
let hash_bits = 15
let hash_size = 1 lsl hash_bits

let hash4 s i =
  let b k = Char.code s.[i + k] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  (v * 2654435761) lsr (31 - hash_bits) land (hash_size - 1)

let put_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let flush_literals buf s lit_start lit_end =
  let pos = ref lit_start in
  while !pos < lit_end do
    let len = min (lit_end - !pos) 0xFFFF in
    Buffer.add_char buf '\x00';
    put_u16 buf len;
    Buffer.add_substring buf s !pos len;
    pos := !pos + len
  done

let compress s =
  let n = String.length s in
  if n < min_match then begin
    let buf = Buffer.create (n + 3) in
    flush_literals buf s 0 n;
    Buffer.contents buf
  end
  else begin
    let buf = Buffer.create (n / 2) in
    let table = Array.make hash_size (-1) in
    let lit_start = ref 0 in
    let i = ref 0 in
    while !i + min_match <= n do
      let h = hash4 s !i in
      let cand = table.(h) in
      table.(h) <- !i;
      let matched =
        cand >= 0
        && !i - cand <= max_dist
        && String.sub s cand min_match = String.sub s !i min_match
      in
      let len = ref 0 in
      if matched then begin
        (* Extend the match as far as possible. *)
        len := min_match;
        while
          !len < max_match
          && !i + !len < n
          && s.[cand + !len] = s.[!i + !len]
        do
          incr len
        done
      end;
      if matched && !len >= min_gainful then begin
        flush_literals buf s !lit_start !i;
        Buffer.add_char buf '\x01';
        put_u16 buf (!i - cand);
        put_u16 buf !len;
        i := !i + !len;
        lit_start := !i
      end
      else incr i
    done;
    flush_literals buf s !lit_start n;
    Buffer.contents buf
  end

let get_u16 s i = Char.code s.[i] lor (Char.code s.[i + 1] lsl 8)

let decompress s =
  let n = String.length s in
  let out = Buffer.create (n * 2) in
  let i = ref 0 in
  while !i < n do
    match s.[!i] with
    | '\x00' ->
      if !i + 3 > n then invalid_arg "Lz.decompress: truncated literal";
      let len = get_u16 s (!i + 1) in
      if !i + 3 + len > n then invalid_arg "Lz.decompress: truncated literal";
      Buffer.add_substring out s (!i + 3) len;
      i := !i + 3 + len
    | '\x01' ->
      if !i + 5 > n then invalid_arg "Lz.decompress: truncated match";
      let dist = get_u16 s (!i + 1) in
      let len = get_u16 s (!i + 3) in
      let start = Buffer.length out - dist in
      if start < 0 then invalid_arg "Lz.decompress: bad distance";
      (* Copy byte-by-byte: source may overlap destination. *)
      for k = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done;
      i := !i + 5
    | _ -> invalid_arg "Lz.decompress: bad token"
  done;
  Buffer.contents out

let ratio s =
  let n = String.length s in
  if n = 0 then 1.0
  else float_of_int (String.length (compress s)) /. float_of_int n

let wire_size_with_dict ~dict s =
  if String.length s = 0 then 0
  else begin
    let base = String.length (compress dict) in
    let full = String.length (compress (dict ^ s)) in
    max 4 (full - base)
  end

let stream_ratio chunks =
  let total = List.fold_left (fun acc s -> acc + String.length s) 0 chunks in
  if total = 0 then 1.0
  else begin
    let wire, _ =
      List.fold_left
        (fun (acc, dict) s -> (acc + wire_size_with_dict ~dict s, s))
        (0, "") chunks
    in
    float_of_int wire /. float_of_int total
  end
