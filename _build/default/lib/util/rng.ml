type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (bits64 t) in
  { state = Int64.of_int seed }

let int t n =
  assert (n > 0);
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  scale /. (u ** (1.0 /. shape))

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
