exception Decode_error of string

let fail msg = raise (Decode_error msg)

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t v;
    u8 t (v lsr 8)

  let u32 t v =
    u16 t (v land 0xFFFF);
    u16 t ((v lsr 16) land 0xFFFF)

  let i64 t v =
    for shift = 0 to 7 do
      u8 t (Int64.to_int (Int64.shift_right_logical v (shift * 8)) land 0xFF)
    done

  let int t v = i64 t (Int64.of_int v)
  let f64 t v = i64 t (Int64.bits_of_float v)
  let bool t v = u8 t (if v then 1 else 0)

  let string t s =
    u32 t (String.length s);
    Buffer.add_string t s

  let list t f xs =
    u32 t (List.length xs);
    List.iter f xs

  let contents = Buffer.contents
  let length = Buffer.length
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string src = { src; pos = 0 }

  let u8 t =
    if t.pos >= String.length t.src then fail "u8: past end";
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let lo = u8 t in
    let hi = u8 t in
    lo lor (hi lsl 8)

  let u32 t =
    let lo = u16 t in
    let hi = u16 t in
    lo lor (hi lsl 16)

  let i64 t =
    let v = ref 0L in
    for shift = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 t)) (shift * 8))
    done;
    !v

  let int t = Int64.to_int (i64 t)
  let f64 t = Int64.float_of_bits (i64 t)

  let bool t =
    match u8 t with
    | 0 -> false
    | 1 -> true
    | n -> fail (Printf.sprintf "bool: bad byte %d" n)

  let string t =
    let len = u32 t in
    if t.pos + len > String.length t.src then fail "string: past end";
    let s = String.sub t.src t.pos len in
    t.pos <- t.pos + len;
    s

  let list t f =
    let n = u32 t in
    List.init n (fun _ -> f ())

  let at_end t = t.pos = String.length t.src
end
