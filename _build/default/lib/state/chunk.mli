(** Serialized state chunks.

    A chunk is "one or more related internal NF structures associated
    with the same flow (or set of flows)" (§4.2), serialized to bytes by
    the owning NF. The controller treats chunks as opaque: it never
    inspects [data], it only transfers (and optionally compresses) it. *)

type t = {
  kind : string;  (** NF-specific tag, e.g. ["ids.conn"]. *)
  data : string;  (** Serialized bytes. *)
}

val v : kind:string -> string -> t
val size : t -> int
(** Bytes of payload plus the kind tag. *)

val encode : kind:string -> (Opennf_util.Bytes_io.Writer.t -> unit) -> t
(** Build the payload with a binary writer. *)

val reader : t -> Opennf_util.Bytes_io.Reader.t
(** A reader positioned at the start of [data]. *)

val compress : t -> t
(** LZ-compressed copy ([kind] suffixed with ["+lz"]). *)

val decompress : t -> t
val pp : Format.formatter -> t -> unit
