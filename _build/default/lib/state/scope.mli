(** The paper's state taxonomy (§4.1, Figure 3).

    State created or updated by an NF applies to one flow ([Per]), a
    collection of flows such as all flows of a host ([Multi]), or every
    flow the NF processes ([All]). Northbound operations take a list of
    scopes to act on. *)

type t = Per | Multi | All

val all : t list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val mem : t -> t list -> bool
