lib/state/chunk.mli: Format Opennf_util
