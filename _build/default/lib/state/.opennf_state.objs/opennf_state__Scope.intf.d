lib/state/scope.mli: Format
