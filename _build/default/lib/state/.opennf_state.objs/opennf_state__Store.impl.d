lib/state/store.ml: Filter Flow Hashtbl Ipaddr List Opennf_net
