lib/state/store.mli: Filter Flow Ipaddr Opennf_net
