lib/state/chunk.ml: Filename Format Opennf_util String
