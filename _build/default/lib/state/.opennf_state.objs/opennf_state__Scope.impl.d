lib/state/scope.ml: Format List
