type t = Per | Multi | All

let all = [ Per; Multi; All ]

let to_string = function
  | Per -> "per-flow"
  | Multi -> "multi-flow"
  | All -> "all-flows"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let mem = List.mem
