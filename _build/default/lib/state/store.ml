open Opennf_net

(* Deterministic enumeration: sort by key so simulation runs do not
   depend on hash-table iteration order. *)

module Perflow = struct
  type 'a t = 'a Flow.Table.t

  let create () = Flow.Table.create 64
  let find t k = Flow.Table.find_opt t (Flow.canonical k)
  let set t k v = Flow.Table.replace t (Flow.canonical k) v
  let remove t k = Flow.Table.remove t (Flow.canonical k)
  let mem t k = Flow.Table.mem t (Flow.canonical k)

  let matching t filter =
    Flow.Table.fold
      (fun k v acc -> if Filter.matches_flow filter k then (k, v) :: acc else acc)
      t []
    |> List.sort (fun (a, _) (b, _) -> Flow.compare a b)

  let fold t ~init ~f = Flow.Table.fold (fun k v acc -> f k v acc) t init
  let size = Flow.Table.length
end

module Per_host = struct
  type 'a t = (Ipaddr.t, 'a) Hashtbl.t

  let create () = Hashtbl.create 64
  let find t ip = Hashtbl.find_opt t ip
  let set t ip v = Hashtbl.replace t ip v
  let remove t ip = Hashtbl.remove t ip

  let update t ip ~default ~f =
    let current = match find t ip with Some v -> v | None -> default () in
    set t ip (f current)

  let matching t filter =
    Hashtbl.fold
      (fun ip v acc ->
        if Filter.matches_host filter ip then (ip, v) :: acc else acc)
      t []
    |> List.sort (fun (a, _) (b, _) -> Ipaddr.compare a b)

  let fold t ~init ~f = Hashtbl.fold (fun k v acc -> f k v acc) t init
  let size = Hashtbl.length
end

module Keyed = struct
  type ('k, 'a) t = {
    table : ('k, 'a) Hashtbl.t;
    relevant : Filter.t -> 'k -> 'a -> bool;
  }

  let create ~relevant = { table = Hashtbl.create 64; relevant }
  let find t k = Hashtbl.find_opt t.table k
  let set t k v = Hashtbl.replace t.table k v
  let remove t k = Hashtbl.remove t.table k

  let matching t filter =
    Hashtbl.fold
      (fun k v acc -> if t.relevant filter k v then (k, v) :: acc else acc)
      t.table []
    |> List.sort compare

  let fold t ~init ~f = Hashtbl.fold (fun k v acc -> f k v acc) t.table init
  let size t = Hashtbl.length t.table
end
