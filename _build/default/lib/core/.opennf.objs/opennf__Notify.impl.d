lib/core/notify.ml: Controller Filter Opennf_net Opennf_sb
