lib/core/fabric.mli: Audit Controller Opennf_net Opennf_sb Opennf_sim Packet Switch
