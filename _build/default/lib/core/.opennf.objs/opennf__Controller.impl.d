lib/core/controller.ml: Audit Channel Chunk Filter Flowtable Hashtbl List Opennf_net Opennf_sb Opennf_sim Opennf_state Option Packet String Switch
