lib/core/share.ml: Controller Filter Flow Flowtable Hashtbl List Opennf_net Opennf_sb Opennf_sim Opennf_state Option Packet Queue Scope
