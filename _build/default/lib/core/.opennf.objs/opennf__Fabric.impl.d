lib/core/fabric.ml: Audit Channel Controller Opennf_net Opennf_sb Opennf_sim Switch
