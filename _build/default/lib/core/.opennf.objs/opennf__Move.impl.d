lib/core/move.ml: Chunk Controller Filter Flow Flowtable Format Hashtbl List Opennf_net Opennf_sb Opennf_sim Opennf_state Option Packet Queue Scope
