lib/core/controller.mli: Audit Chunk Filter Flowtable Opennf_net Opennf_sb Opennf_sim Opennf_state Packet Switch
