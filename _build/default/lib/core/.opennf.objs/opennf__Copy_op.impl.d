lib/core/copy_op.ml: Chunk Controller Filter Format List Opennf_net Opennf_sim Opennf_state Scope
