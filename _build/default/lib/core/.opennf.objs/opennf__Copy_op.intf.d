lib/core/copy_op.mli: Controller Filter Format Opennf_net Opennf_sim Opennf_state Scope
