lib/core/share.mli: Controller Filter Opennf_net Opennf_sim Opennf_state Packet Scope
