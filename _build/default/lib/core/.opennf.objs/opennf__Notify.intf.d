lib/core/notify.mli: Controller Filter Opennf_net Packet
