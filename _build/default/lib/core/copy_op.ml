module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf_state

type report = {
  cp_filter : Filter.t;
  cp_src : string;
  cp_dst : string;
  cp_scope : Scope.t list;
  started : float;
  finished : float;
  chunks : int;
  state_bytes : int;
}

let duration r = r.finished -. r.started

let pp_report ppf r =
  Format.fprintf ppf "copy %s->%s %a: %.1fms, %d chunks, %dB" r.cp_src r.cp_dst
    Filter.pp r.cp_filter
    (1000.0 *. duration r)
    r.chunks r.state_bytes

let copy_stream t ~src ~dst ~filter ~parallel
    ~(get :
       Controller.t ->
       Controller.nf ->
       Filter.t ->
       ?on_piece:(Filter.t -> Chunk.t -> unit) ->
       unit ->
       (Filter.t * Chunk.t) list) ~put_async ~put counters =
  let chunks_n, bytes = counters in
  let account chunks =
    chunks_n := !chunks_n + List.length chunks;
    bytes :=
      !bytes + List.fold_left (fun acc (_, c) -> acc + Chunk.size c) 0 chunks
  in
  if parallel then begin
    let pending = ref [] in
    let chunks =
      get t src filter
        ~on_piece:(fun flowid chunk ->
          pending := put_async t dst [ (flowid, chunk) ] :: !pending)
        ()
    in
    List.iter Proc.Ivar.read !pending;
    account chunks
  end
  else begin
    let chunks = get t src filter () in
    if chunks <> [] then put t dst chunks;
    account chunks
  end

let run t ~src ~dst ~filter ?(scope = [ Scope.Multi ]) ?(parallel = true) () =
  let engine = Controller.engine t in
  let started = Engine.now engine in
  let chunks_n = ref 0 and bytes = ref 0 in
  if Scope.mem Scope.Per scope then
    copy_stream t ~src ~dst ~filter ~parallel
      ~get:(fun t nf filter ?on_piece () ->
        Controller.get_perflow t nf filter ?on_piece ())
      ~put_async:Controller.put_perflow_async ~put:Controller.put_perflow
      (chunks_n, bytes);
  if Scope.mem Scope.Multi scope then
    copy_stream t ~src ~dst ~filter ~parallel
      ~get:(fun t nf filter ?on_piece () ->
        Controller.get_multiflow t nf filter ?on_piece ())
      ~put_async:Controller.put_multiflow_async ~put:Controller.put_multiflow
      (chunks_n, bytes);
  if Scope.mem Scope.All scope then begin
    let chunks = Controller.get_allflows t src in
    if chunks <> [] then Controller.put_allflows t dst chunks;
    chunks_n := !chunks_n + List.length chunks;
    bytes := !bytes + List.fold_left (fun acc c -> acc + Chunk.size c) 0 chunks
  end;
  {
    cp_filter = filter;
    cp_src = Controller.nf_name src;
    cp_dst = Controller.nf_name dst;
    cp_scope = scope;
    started;
    finished = Engine.now engine;
    chunks = !chunks_n;
    state_bytes = !bytes;
  }

let start t ~src ~dst ~filter ?scope ?parallel () =
  let engine = Controller.engine t in
  let ivar = Proc.Ivar.create engine in
  Proc.spawn engine (fun () ->
      Proc.Ivar.fill ivar (run t ~src ~dst ~filter ?scope ?parallel ()));
  ivar
