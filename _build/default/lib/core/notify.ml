module Protocol = Opennf_sb.Protocol
open Opennf_net

type handle = {
  nf : Controller.nf;
  filter : Filter.t;
  sub : Controller.subscription;
}

let enable t nf filter callback =
  let sub =
    Controller.subscribe_events t ~nf:(Controller.nf_name nf) filter
      (fun packet disposition ->
        match disposition with
        | Protocol.Process -> callback packet
        | Protocol.Buffer | Protocol.Drop -> ())
  in
  Controller.enable_events t nf filter Protocol.Process;
  { nf; filter; sub }

let disable t handle =
  Controller.disable_events t handle.nf handle.filter;
  Controller.unsubscribe t handle.sub
