lib/sb/protocol.ml: Chunk Filter Format List Opennf_net Opennf_state Packet
