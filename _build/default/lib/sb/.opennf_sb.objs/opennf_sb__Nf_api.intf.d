lib/sb/nf_api.mli: Chunk Filter Opennf_net Opennf_state Packet
