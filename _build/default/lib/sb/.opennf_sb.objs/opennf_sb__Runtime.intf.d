lib/sb/runtime.mli: Audit Channel Costs Nf_api Opennf_net Opennf_sim Packet Protocol
