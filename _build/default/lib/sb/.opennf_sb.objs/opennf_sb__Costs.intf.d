lib/sb/costs.mli:
