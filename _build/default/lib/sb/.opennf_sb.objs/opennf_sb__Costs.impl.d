lib/sb/costs.ml:
