lib/sb/runtime.ml: Audit Channel Chunk Costs Filter List Nf_api Opennf_net Opennf_sim Opennf_state Opennf_util Packet Protocol Queue
