lib/sb/nf_api.ml: Chunk Filter List Opennf_net Opennf_state Option Packet
