lib/sb/protocol.mli: Chunk Filter Format Opennf_net Opennf_state Packet
