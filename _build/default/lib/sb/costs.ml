type t = {
  proc_time : float;
  serialize_chunk : float;
  serialize_byte : float;
  deserialize_chunk : float;
  deserialize_byte : float;
  export_penalty : float;
}

(* Calibration targets (paper §8.1.1, §8.2.1, Figure 12):
   - PRADS getPerflow(500) ≈ 89 ms, putPerflow(500) ≈ 54 ms;
   - putPerflow at least 2x faster than getPerflow for every NF;
   - Bro slowest (big object graphs), iptables cheapest;
   - PRADS per-packet 0.120 ms, +5.8% during export;
   - Bro per-packet ≈ 0.8 ms of CPU (paper reports 6.93 ms including
     queueing), +0.12 ms absolute during export. *)

let bro =
  {
    proc_time = 0.0008;
    serialize_chunk = 0.00090;
    serialize_byte = 4e-9;
    deserialize_chunk = 0.00036;
    deserialize_byte = 2e-9;
    export_penalty = 0.017;
  }

let prads =
  {
    (* 75 us of CPU -> ~13k pkt/s capacity, so the Figure 11 sweeps up
       to 10k pkt/s run without saturating the instance; the paper's
       reported 0.120 ms is latency including queueing. *)
    proc_time = 0.000075;
    serialize_chunk = 0.000172;
    serialize_byte = 4e-9;
    deserialize_chunk = 0.000104;
    deserialize_byte = 2e-9;
    export_penalty = 0.058;
  }

let squid =
  {
    proc_time = 0.000200;
    serialize_chunk = 0.000420;
    serialize_byte = 6e-9;
    deserialize_chunk = 0.000180;
    deserialize_byte = 3e-9;
    export_penalty = 0.040;
  }

let iptables =
  {
    proc_time = 0.000015;
    serialize_chunk = 0.000110;
    serialize_byte = 2e-9;
    deserialize_chunk = 0.000048;
    deserialize_byte = 1e-9;
    export_penalty = 0.010;
  }

let dummy =
  {
    proc_time = 1e-6;
    serialize_chunk = 2e-5;
    serialize_byte = 0.0;
    deserialize_chunk = 1e-5;
    deserialize_byte = 0.0;
    export_penalty = 0.0;
  }

let serialize_time t ~bytes =
  t.serialize_chunk +. (t.serialize_byte *. float_of_int bytes)

let deserialize_time t ~bytes =
  t.deserialize_chunk +. (t.deserialize_byte *. float_of_int bytes)
