open Opennf_net
open Opennf_state

type impl = {
  kind : string;
  process_packet : Packet.t -> unit;
  list_perflow : Filter.t -> Filter.t list;
  export_perflow : Filter.t -> Chunk.t option;
  import_perflow : Filter.t -> Chunk.t -> unit;
  delete_perflow : Filter.t -> unit;
  list_multiflow : Filter.t -> Filter.t list;
  export_multiflow : Filter.t -> Chunk.t option;
  import_multiflow : Filter.t -> Chunk.t -> unit;
  delete_multiflow : Filter.t -> unit;
  export_allflows : unit -> Chunk.t list;
  import_allflows : Chunk.t list -> unit;
}

let getters_complete impl filter =
  List.for_all
    (fun flowid -> Option.is_some (impl.export_perflow flowid))
    (impl.list_perflow filter)
