(** NF cost model.

    Virtual-time costs charged by the NF runtime. The per-NF presets are
    calibrated so simulated operations land near the paper's testbed
    numbers (§8.1–8.2): e.g. PRADS exports 500 chunks in ≈89 ms and
    imports them ≈2× faster; Bro chunks are the most expensive to
    (de)serialize; per-packet processing slows by <6% during export. *)

type t = {
  proc_time : float;  (** Seconds of NF CPU per processed packet. *)
  serialize_chunk : float;  (** Per-chunk serialization base cost. *)
  serialize_byte : float;  (** Additional cost per serialized byte. *)
  deserialize_chunk : float;
  deserialize_byte : float;
  export_penalty : float;
      (** Fractional per-packet slowdown while an export/import runs
          (contention on the state mutexes, §8.2.1). *)
}

val bro : t
val prads : t
val squid : t
val iptables : t
val dummy : t
(** Negligible costs; used by the §8.3 controller-scalability dummies. *)

val serialize_time : t -> bytes:int -> float
val deserialize_time : t -> bytes:int -> float
