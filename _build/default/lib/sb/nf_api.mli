(** The interface an NF implements to join OpenNF (§4.2).

    The controller never sees NF internals: it names state with filters
    and flowids, and the NF is responsible for gathering matching state
    ([export_*]) and for replacing-or-merging on import ([import_*]).
    Flowids are [Opennf_net.Filter.t] values whose present fields
    describe exactly the flow (5-tuple) or flow aggregate (host, ...)
    the chunk pertains to. *)

open Opennf_net
open Opennf_state

type impl = {
  kind : string;  (** NF type name, e.g. ["bro"]. *)
  process_packet : Packet.t -> unit;
  list_perflow : Filter.t -> Filter.t list;
      (** Flowids of all per-flow state matching the filter. *)
  export_perflow : Filter.t -> Chunk.t option;
      (** Capture the chunk for one flowid at this instant ([None] if the
          state vanished since [list_perflow]). *)
  import_perflow : Filter.t -> Chunk.t -> unit;
  delete_perflow : Filter.t -> unit;
  list_multiflow : Filter.t -> Filter.t list;
  export_multiflow : Filter.t -> Chunk.t option;
  import_multiflow : Filter.t -> Chunk.t -> unit;
      (** Must merge with existing state for the same flowid (§4.2:
          add counters, union sets, newest timestamp, ...). *)
  delete_multiflow : Filter.t -> unit;
  export_allflows : unit -> Chunk.t list;
  import_allflows : Chunk.t list -> unit;
      (** Must merge with existing all-flows state. *)
}

val getters_complete : impl -> Filter.t -> bool
(** Diagnostic used by tests: every listed per-flow flowid currently
    exports successfully. *)
