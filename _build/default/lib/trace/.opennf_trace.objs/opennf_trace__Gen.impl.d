lib/trace/gen.ml: Array Char Float Flow Ipaddr List Opennf_net Opennf_util Packet Printf String
