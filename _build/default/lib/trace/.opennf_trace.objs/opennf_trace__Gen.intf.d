lib/trace/gen.mli: Flow Ipaddr Opennf_net Opennf_util Packet
