(** Synthetic workload generation.

    Stands in for the paper's replayed university-to-cloud and
    datacenter traces. Generators return time-stamped packets sorted by
    emission time; the caller injects them into a switch (e.g. with
    [Fabric.inject_at]). All randomness comes from an explicit
    {!Opennf_util.Rng.t}, so workloads are reproducible. *)

open Opennf_net

type t
(** Generator context: packet-id counter + RNG. *)

val create : ?seed:int -> unit -> t
val rng : t -> Opennf_util.Rng.t

val packet :
  t ->
  at:float ->
  key:Flow.key ->
  ?flags:Packet.tcp_flag list ->
  ?seq:int ->
  ?payload:string ->
  ?size:int ->
  unit ->
  float * Packet.t

(** {1 Workloads} *)

val steady_flows :
  t ->
  flows:int ->
  rate:float ->
  start:float ->
  duration:float ->
  ?src_net:Ipaddr.t ->
  ?dst_net:Ipaddr.t ->
  unit ->
  (float * Packet.t) list * Flow.key list
(** The §8.1.1 workload: [flows] long-lived TCP connections carrying an
    aggregate of [rate] packets/second, round-robin. Each flow opens
    with a SYN and a SYN+ACK; data packets alternate directions. Returns
    the schedule and the flow keys. *)

val http_session :
  t ->
  client:Ipaddr.t ->
  server:Ipaddr.t ->
  sport:int ->
  start:float ->
  url:string ->
  ?agent:string ->
  body:string ->
  ?body_pkt_bytes:int ->
  ?gap:float ->
  unit ->
  (float * Packet.t) list
(** Full HTTP exchange: handshake, GET request (with a User-Agent tag),
    reply body split into packets, FIN from the server, final ACK. *)

val port_scan :
  t ->
  src:Ipaddr.t ->
  dst:Ipaddr.t ->
  ports:int list ->
  start:float ->
  ?gap:float ->
  unit ->
  (float * Packet.t) list
(** One SYN per target port. *)

val proxy_requests :
  t ->
  client:Ipaddr.t ->
  proxy:Ipaddr.t ->
  urls:string array ->
  requests:int ->
  start:float ->
  ?rate:float ->
  ?object_size:(string -> int) ->
  ?cont_bytes:int ->
  ?cont_gap:float ->
  unit ->
  (float * Packet.t) list
(** Table 1 workload: [requests] GETs drawn (log-skewed) from [urls] at
    [rate] requests/second, each followed by the continuation packets
    that drive the transfer ([object_size url / cont_bytes] of them). *)

val malware_body : ?tag:string -> int -> string * int64
(** [malware_body n] builds an [n]-byte HTTP body and returns it with
    its {!Opennf_util.Hashing.Digest_sig} digest, for seeding an IDS
    malware database. *)

val merge : (float * Packet.t) list list -> (float * Packet.t) list
(** Merge schedules, keeping time order (stable). *)
