module Rng = Opennf_util.Rng
module Hashing = Opennf_util.Hashing
open Opennf_net

type t = { mutable next_id : int; rng : Rng.t }

let create ?(seed = 42) () = { next_id = 0; rng = Rng.create ~seed }
let rng t = t.rng

let fresh_id t =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  id

let packet t ~at ~key ?(flags = []) ?(seq = 0) ?payload ?size () =
  let p =
    Packet.create ~id:(fresh_id t) ~key ~flags ~seq ?payload
      ?wire_size:size ~sent_at:at ()
  in
  (at, p)

let merge schedules =
  List.stable_sort
    (fun (a, _) (b, _) -> Float.compare a b)
    (List.concat schedules)

let default_src_net = Ipaddr.v 10 1 0 0
let default_dst_net = Ipaddr.v 172 16 0 0

(* Distinct 5-tuples: vary host low bytes and ports with the index. *)
let nth_flow ~src_net ~dst_net i =
  let src = Ipaddr.of_int (Ipaddr.to_int src_net + (i mod 250) + 1) in
  let dst = Ipaddr.of_int (Ipaddr.to_int dst_net + (i / 250 mod 250) + 1) in
  Flow.make ~src ~dst ~proto:Flow.Tcp ~sport:(10000 + (i mod 50000))
    ~dport:80 ()

let steady_flows t ~flows ~rate ~start ~duration ?(src_net = default_src_net)
    ?(dst_net = default_dst_net) () =
  assert (flows > 0 && rate > 0.0);
  let keys = List.init flows (fun i -> nth_flow ~src_net ~dst_net i) in
  let keys_arr = Array.of_list keys in
  let interval = 1.0 /. rate in
  let total = int_of_float (duration *. rate) in
  let seqs = Array.make flows 0 in
  let schedule = ref [] in
  (* Handshakes first: SYN then SYN+ACK per flow, paced at the aggregate
     rate so the warm-up is part of the workload. *)
  let time = ref start in
  Array.iteri
    (fun i key ->
      schedule := packet t ~at:!time ~key ~flags:[ Syn ] () :: !schedule;
      time := !time +. interval;
      schedule :=
        packet t ~at:!time ~key:(Flow.reverse key) ~flags:[ Syn; Ack ] ~seq:1 ()
        :: !schedule;
      time := !time +. interval;
      seqs.(i) <- 2)
    keys_arr;
  (* Steady data packets, round-robin across flows, alternating
     direction, each with a small payload. *)
  for n = 0 to total - 1 do
    let i = n mod flows in
    let key = keys_arr.(i) in
    let key = if seqs.(i) mod 2 = 0 then key else Flow.reverse key in
    let payload = Printf.sprintf "data-%d-%d" i seqs.(i) in
    schedule :=
      packet t ~at:!time ~key ~flags:[ Ack ] ~seq:seqs.(i) ~payload ()
      :: !schedule;
    seqs.(i) <- seqs.(i) + 1;
    time := !time +. interval
  done;
  (* Orderly teardown: each flow closes with a FIN exchange, so NF
     bookkeeping can distinguish completed connections from abruptly
     abandoned ones (§8.4). *)
  Array.iteri
    (fun i key ->
      schedule :=
        packet t ~at:!time ~key ~flags:[ Ack; Fin ] ~seq:seqs.(i) ()
        :: !schedule;
      time := !time +. interval;
      schedule :=
        packet t ~at:!time ~key:(Flow.reverse key) ~flags:[ Ack; Fin ]
          ~seq:(seqs.(i) + 1) ()
        :: !schedule;
      time := !time +. interval)
    keys_arr;
  (List.rev !schedule, keys)

let split_body body n =
  let len = String.length body in
  let rec go acc off =
    if off >= len then List.rev acc
    else
      let k = min n (len - off) in
      go (String.sub body off k :: acc) (off + k)
  in
  go [] 0

let http_session t ~client ~server ~sport ~start ~url ?(agent = "Firefox")
    ~body ?(body_pkt_bytes = 1400) ?(gap = 0.0005) () =
  let key = Flow.make ~src:client ~dst:server ~proto:Flow.Tcp ~sport ~dport:80 () in
  let back = Flow.reverse key in
  let time = ref start in
  let step () =
    let now = !time in
    time := !time +. gap;
    now
  in
  let schedule = ref [] in
  let emit ~key ?(flags = [ Packet.Ack ]) ?seq ?payload () =
    schedule := packet t ~at:(step ()) ~key ~flags ?seq ?payload () :: !schedule
  in
  emit ~key ~flags:[ Syn ] ~seq:0 ();
  emit ~key:back ~flags:[ Syn; Ack ] ~seq:0 ();
  emit ~key ~seq:1 ~payload:(Printf.sprintf "GET %s UA=%s" url agent) ();
  let pieces = split_body body body_pkt_bytes in
  let n = List.length pieces in
  List.iteri
    (fun i piece ->
      let flags =
        if i = n - 1 then [ Packet.Ack; Packet.Fin ] else [ Packet.Ack ]
      in
      emit ~key:back ~flags ~seq:(1 + i) ~payload:piece ())
    pieces;
  emit ~key ~flags:[ Packet.Ack; Packet.Fin ] ~seq:2 ();
  List.rev !schedule

let port_scan t ~src ~dst ~ports ~start ?(gap = 0.001) () =
  List.mapi
    (fun i port ->
      let key = Flow.make ~src ~dst ~proto:Flow.Tcp ~sport:(40000 + i) ~dport:port () in
      packet t ~at:(start +. (float_of_int i *. gap)) ~key ~flags:[ Syn ] ())
    ports

(* Log-skewed URL popularity: index ~ floor(u^2 * n) favours low indexes. *)
let skewed_index rng n =
  let u = Rng.float rng 1.0 in
  let i = int_of_float (u *. u *. float_of_int n) in
  min (n - 1) i

let proxy_requests t ~client ~proxy ~urls ~requests ~start ?(rate = 5.0)
    ?object_size ?(cont_bytes = 65536) ?(cont_gap = 0.0005) () =
  let object_size =
    match object_size with Some f -> f | None -> fun _ -> 1024 * 1024
  in
  let interval = 1.0 /. rate in
  let schedule = ref [] in
  let time = ref start in
  for r = 0 to requests - 1 do
    let url = urls.(skewed_index t.rng (Array.length urls)) in
    let key =
      Flow.make ~src:client ~dst:proxy ~proto:Flow.Tcp ~sport:(20000 + r)
        ~dport:3128 ()
    in
    let req_at = !time in
    schedule :=
      packet t ~at:req_at ~key ~flags:[ Syn ] () :: !schedule;
    schedule :=
      packet t ~at:(req_at +. 0.0002) ~key ~seq:1 ~payload:("GET " ^ url) ()
      :: !schedule;
    (* Continuations drive the transfer chunk by chunk. *)
    let conts = (object_size url + cont_bytes - 1) / cont_bytes in
    for c = 0 to conts - 1 do
      schedule :=
        packet t
          ~at:(req_at +. 0.0004 +. (float_of_int c *. cont_gap))
          ~key ~seq:(2 + c) ~payload:"CONT" ()
        :: !schedule
    done;
    time := !time +. interval
  done;
  merge [ List.rev !schedule ]

let malware_body ?(tag = "EICAR") n =
  let base = Printf.sprintf "MALWARE:%s:" tag in
  let body =
    String.init n (fun i ->
        if i < String.length base then base.[i]
        else Char.chr (65 + ((i * 7) mod 26)))
  in
  let d = Hashing.Digest_sig.create () in
  Hashing.Digest_sig.feed d body;
  (body, Hashing.Digest_sig.value d)
