(** Dummy NF for the controller-scalability experiment (§8.3).

    Replays canned state: every flow it has seen exports a fixed-size
    chunk (the paper uses 202-byte chunks derived from PRADS traces),
    imports are consumed without interpretation, and processing is
    nearly free. This isolates controller performance from NF costs. *)

open Opennf_net

type t

val create : ?chunk_bytes:int -> unit -> t
(** Default [chunk_bytes] = 202. *)

val impl : t -> Opennf_sb.Nf_api.impl

val seed_flows : t -> Flow.key list -> unit
(** Pre-populate per-flow state without replaying traffic. *)

val flow_count : t -> int
val imported_count : t -> int
