(** A Squid-like caching web proxy.

    The proxy is an on-path NF (Figure 4(b)): clients request objects
    by URL and the proxy serves them from its in-memory cache (hit) or
    fetches and caches them (miss). State taxonomy (§7):

    - {b per-flow}: client connection context, including the in-progress
      transfer (URL and byte offset);
    - {b multi-flow}: cache entries, keyed by URL and referenced by the
      client addresses actively being served from them.

    If a connection whose transfer is in progress arrives at an instance
    lacking the cache entry it is being served from, the instance
    {e crashes} — exactly the failure Table 1's "ignore multi-flow
    state" column reports. *)


type t

val create : unit -> t
(** Object sizes are derived deterministically from the URL (0.5–4 MB),
    so two instances agree on content without shared configuration. *)

val impl : t -> Opennf_sb.Nf_api.impl

val object_size : string -> int
(** The deterministic size of a URL's object. *)

(** {1 Packet payload conventions (shared with the traffic generator)} *)

val request_payload : string -> string
(** ["GET <url>"]. *)

val continuation_payload : string
(** A client-side transfer continuation ("give me the next chunk"). *)

(** {1 Inspection} *)

val hits : t -> int
val misses : t -> int
val crashed : t -> bool
val cache_size : t -> int
(** Number of cached objects. *)

val cache_bytes : t -> int
(** Total bytes of cached content. *)

val in_progress : t -> int
(** Connections with an active transfer. *)
