open Opennf_net
open Opennf_state

type t = {
  chunk_bytes : int;
  flows : unit Store.Perflow.t;
  mutable imported : int;
}

let create ?(chunk_bytes = 202) () =
  { chunk_bytes; flows = Store.Perflow.create (); imported = 0 }

(* Canned state: a fixed structural template (as real serialized state
   shares field layout and label text across chunks) plus per-flow bytes
   that do not compress. The mix approximates the ~38% stream
   compressibility the paper measured on PRADS-derived state. *)
let template =
  "prads.conn{src_ip;dst_ip;proto:tcp;first_seen;last_seen;pkts;bytes;\
   os:linux;link:ethernet;svc:http};"

let chunk_for t key =
  let n = t.chunk_bytes in
  let seed = Flow.hash key in
  let rng = Opennf_util.Rng.create ~seed in
  String.init n (fun i ->
      if i < String.length template then template.[i]
      else Char.chr (Opennf_util.Rng.int rng 256))

let seed_flows t keys = List.iter (fun k -> Store.Perflow.set t.flows k ()) keys

let impl t =
  {
    Opennf_sb.Nf_api.kind = "dummy";
    process_packet =
      (fun p -> Store.Perflow.set t.flows p.Packet.key ());
    list_perflow =
      (fun filter ->
        List.map (fun (k, _) -> Filter.of_key k)
          (Store.Perflow.matching t.flows filter));
    export_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> None
        | Some key ->
          if Store.Perflow.mem t.flows key then
            Some (Chunk.v ~kind:"dummy" (chunk_for t key))
          else None);
    import_perflow =
      (fun flowid _chunk ->
        t.imported <- t.imported + 1;
        match Filter.exact_key flowid with
        | None -> ()
        | Some key -> Store.Perflow.set t.flows key ());
    delete_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> ()
        | Some key -> Store.Perflow.remove t.flows key);
    list_multiflow = (fun _ -> []);
    export_multiflow = (fun _ -> None);
    import_multiflow = (fun _ _ -> ());
    delete_multiflow = (fun _ -> ());
    export_allflows = (fun () -> []);
    import_allflows = (fun _ -> ());
  }

let flow_count t = Store.Perflow.size t.flows
let imported_count t = t.imported
