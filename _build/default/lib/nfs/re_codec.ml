module Hashing = Opennf_util.Hashing
module Bytes_io = Opennf_util.Bytes_io
open Opennf_net
open Opennf_state

let ref_prefix = "REF:"

let fingerprint payload = Hashing.fnv1a64 payload

let is_ref payload =
  String.length payload > String.length ref_prefix
  && String.sub payload 0 (String.length ref_prefix) = ref_prefix

let ref_payload fp = Printf.sprintf "%s%Lx" ref_prefix fp

let fp_of_ref payload =
  let body =
    String.sub payload (String.length ref_prefix)
      (String.length payload - String.length ref_prefix)
  in
  Int64.of_string ("0x" ^ body)

(* The fingerprint store is all-flows state for both NFs: one chunk
   containing the whole table. *)
type store = (int64, string) Hashtbl.t

let store_chunk ~kind (s : store) =
  Chunk.encode ~kind (fun w ->
      let open Bytes_io.Writer in
      let entries = Hashtbl.fold (fun fp payload acc -> (fp, payload) :: acc) s [] in
      let entries = List.sort compare entries in
      list w
        (fun (fp, payload) ->
          i64 w fp;
          string w payload)
        entries)

let merge_store_chunk (s : store) chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let entries =
    list r (fun () ->
        let fp = i64 r in
        let payload = string r in
        (fp, payload))
  in
  List.iter (fun (fp, payload) -> Hashtbl.replace s fp payload) entries

let no_perflow =
  (fun (_ : Filter.t) -> ([] : Filter.t list))

module Encoder = struct
  type t = { store : store; mutable encoded : int }

  let create () = { store = Hashtbl.create 256; encoded = 0 }

  let encode_payload t payload =
    if String.length payload = 0 then payload
    else begin
      let fp = fingerprint payload in
      if Hashtbl.mem t.store fp then begin
        t.encoded <- t.encoded + 1;
        ref_payload fp
      end
      else begin
        Hashtbl.replace t.store fp payload;
        payload
      end
    end

  let process_packet t (p : Packet.t) = ignore (encode_payload t p.payload)

  let impl t =
    {
      Opennf_sb.Nf_api.kind = "re-encoder";
      process_packet = process_packet t;
      list_perflow = no_perflow;
      export_perflow = (fun _ -> None);
      import_perflow = (fun _ _ -> ());
      delete_perflow = (fun _ -> ());
      list_multiflow = no_perflow;
      export_multiflow = (fun _ -> None);
      import_multiflow = (fun _ _ -> ());
      delete_multiflow = (fun _ -> ());
      export_allflows = (fun () -> [ store_chunk ~kind:"re.store" t.store ]);
      import_allflows = (fun chunks -> List.iter (merge_store_chunk t.store) chunks);
    }

  let store_size t = Hashtbl.length t.store
  let encoded_count t = t.encoded
end

module Decoder = struct
  type t = { store : store; mutable decoded : int; mutable desync : int }

  let create () = { store = Hashtbl.create 256; decoded = 0; desync = 0 }

  let process_packet t (p : Packet.t) =
    let payload = p.payload in
    if String.length payload > 0 then
      if is_ref payload then begin
        match Hashtbl.find_opt t.store (fp_of_ref payload) with
        | Some _ -> t.decoded <- t.decoded + 1
        | None ->
          (* Reference to content we never saw: the encoded packet
             overtook its data packet. Silent drop; stores diverge. *)
          t.desync <- t.desync + 1
      end
      else Hashtbl.replace t.store (fingerprint payload) payload

  let impl t =
    {
      Opennf_sb.Nf_api.kind = "re-decoder";
      process_packet = process_packet t;
      list_perflow = no_perflow;
      export_perflow = (fun _ -> None);
      import_perflow = (fun _ _ -> ());
      delete_perflow = (fun _ -> ());
      list_multiflow = no_perflow;
      export_multiflow = (fun _ -> None);
      import_multiflow = (fun _ _ -> ());
      delete_multiflow = (fun _ -> ());
      export_allflows = (fun () -> [ store_chunk ~kind:"re.store" t.store ]);
      import_allflows = (fun chunks -> List.iter (merge_store_chunk t.store) chunks);
    }

  let store_size t = Hashtbl.length t.store
  let decoded_count t = t.decoded
  let desync_count t = t.desync
end
