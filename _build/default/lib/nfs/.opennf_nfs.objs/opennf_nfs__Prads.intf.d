lib/nfs/prads.mli: Ipaddr Opennf_net Opennf_sb
