lib/nfs/proxy.mli: Opennf_sb
