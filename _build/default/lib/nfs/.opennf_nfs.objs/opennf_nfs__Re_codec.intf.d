lib/nfs/re_codec.mli: Opennf_sb
