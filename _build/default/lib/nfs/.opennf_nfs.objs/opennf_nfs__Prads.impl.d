lib/nfs/prads.ml: Chunk Filter Float Flow Int Ipaddr List Map Opennf_net Opennf_sb Opennf_state Opennf_util Option Packet Printf Store
