lib/nfs/re_codec.ml: Chunk Filter Hashtbl Int64 List Opennf_net Opennf_sb Opennf_state Opennf_util Packet Printf String
