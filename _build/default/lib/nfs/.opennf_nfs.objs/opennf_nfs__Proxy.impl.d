lib/nfs/proxy.ml: Chunk Filter Flow Int64 Ipaddr List Opennf_net Opennf_sb Opennf_state Opennf_util Option Packet Set Store String
