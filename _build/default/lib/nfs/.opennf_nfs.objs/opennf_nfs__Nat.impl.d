lib/nfs/nat.ml: Chunk Filter Flow Ipaddr List Opennf_net Opennf_sb Opennf_state Opennf_util Option Packet Store
