lib/nfs/nat.mli: Flow Ipaddr Opennf_net Opennf_sb
