lib/nfs/ids.ml: Chunk Filter Flow Format Hashtbl Int Int64 Ipaddr List Opennf_net Opennf_sb Opennf_state Opennf_util Option Packet Printf Set Store String
