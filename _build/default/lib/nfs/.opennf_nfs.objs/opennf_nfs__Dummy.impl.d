lib/nfs/dummy.ml: Char Chunk Filter Flow List Opennf_net Opennf_sb Opennf_state Opennf_util Packet Store String
