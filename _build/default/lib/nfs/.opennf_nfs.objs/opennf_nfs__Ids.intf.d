lib/nfs/ids.mli: Flow Format Ipaddr Opennf_net Opennf_sb
