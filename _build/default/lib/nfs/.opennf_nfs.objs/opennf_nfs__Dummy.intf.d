lib/nfs/dummy.mli: Flow Opennf_net Opennf_sb
