(** A Bro-like intrusion detection system.

    Mirrors the state structure of Figure 1 in the paper:

    - {b per-flow}: a connection object plus protocol analyzers (TCP
      bookkeeping and an HTTP analyzer that reassembles the body and
      digests it for malware matching);
    - {b multi-flow}: per-host connection counters used for port-scan
      detection;
    - {b all-flows}: global packet/flow statistics.

    It also reproduces the two accuracy failure modes the paper uses to
    motivate guarantees: a lost payload packet corrupts the body digest
    (missed malware, §5.1.1) and a reordered SYN raises a spurious
    "SYN_inside_connection" weird-activity alert (§5.1.2). *)

open Opennf_net

type alert =
  | Port_scan of Ipaddr.t  (** Scanning source host. *)
  | Malware of { flow : Flow.key; digest : int64 }
  | Weird of { kind : string; flow : Flow.key }
  | Outdated_browser of { flow : Flow.key; agent : string }

val pp_alert : Format.formatter -> alert -> unit
val alert_equal : alert -> alert -> bool

type t

val create :
  ?malware:int64 list ->
  ?scan_threshold:int ->
  ?check_malware:bool ->
  unit ->
  t
(** [malware] lists digests ({!Opennf_util.Hashing.Digest_sig}) of
    known-bad HTTP bodies. [scan_threshold] is the number of distinct
    destination ports contacted by one host before [Port_scan] fires
    (default 10). [check_malware] is true for instances that run the
    malware script (the paper's cloud instances, §6); default [true]. *)

val impl : t -> Opennf_sb.Nf_api.impl

(** {1 Inspection} *)

val alert_log : t -> alert list
(** Alerts in the order raised. *)

val on_alert : t -> (alert -> unit) -> unit
(** Register a callback invoked at every alert (used by control
    applications watching the IDS output). *)

val conn_count : t -> int
val host_count : t -> int

val total_bytes : t -> int
(** Sum of payload bytes processed (all-flows state). *)

val conn_bytes : t -> Flow.key -> int option
(** Payload bytes recorded on a connection, if tracked. *)

type http_progress = {
  body_bytes : int;
  next_seq : int;
  pending : int;  (** Out-of-order segments awaiting reassembly. *)
  fin_seen : bool;
  digest : int64;
}

val http_progress : t -> Flow.key -> http_progress option
(** Reassembly state of a connection's HTTP analyzer (tests/debug). *)

val bogus_log_entries : t -> int
(** Connections whose bookkeeping is inconsistent (e.g. terminated
    without ever seeing their setup) — the paper's "incorrect entries in
    conn.log" under VM replication (§8.4). *)
