(** An iptables/conntrack-like NAT and stateful firewall.

    Tracks the 5-tuple, TCP state and the allocated translation port for
    every active flow (per-flow state only — like iptables, it has no
    multi- or all-flows state, §7). A non-SYN packet for an unknown flow
    is invalid and dropped, which is why moving conntrack entries
    alongside reroutes matters. *)

open Opennf_net

type tcp_state = New | Established | Fin_wait | Closed

type t

val create : ?nat_ip:Ipaddr.t -> ?port_base:int -> unit -> t
val impl : t -> Opennf_sb.Nf_api.impl

(** {1 Inspection} *)

val entry_count : t -> int
val invalid_count : t -> int
(** Packets rejected for lacking a conntrack entry. *)

val state_of : t -> Flow.key -> tcp_state option
val translation_of : t -> Flow.key -> int option
(** The external port allocated to a flow. *)
