(** Redundancy-elimination encoder/decoder (SmartRE-style, [16] in the
    paper).

    The encoder fingerprints packet payloads (all-flows state: the
    fingerprint table) and replaces repeated content with a reference;
    the decoder keeps a mirrored table and reconstructs. The paper uses
    this pair twice: as the motivating example for copy/consistency of
    all-flows state, and (§5.1.2) as an NF broken by reordering — an
    encoded packet arriving before the data packet it was encoded
    against is silently dropped and the decoder's store desynchronizes.

    Payload conventions: [encode_payload]/[decode] are pure helpers used
    by tests and the traffic generator. *)


module Encoder : sig
  type t

  val create : unit -> t
  val impl : t -> Opennf_sb.Nf_api.impl

  val encode_payload : t -> string -> string
  (** What the encoder would emit for this payload: either the payload
      itself (first sighting, fingerprint stored) or ["REF:<fp>"]. *)

  val store_size : t -> int
  val encoded_count : t -> int
end

module Decoder : sig
  type t

  val create : unit -> t
  val impl : t -> Opennf_sb.Nf_api.impl

  val store_size : t -> int
  val decoded_count : t -> int

  val desync_count : t -> int
  (** Reference packets whose fingerprint was missing — each one is a
      silently lost packet and a diverged store. *)
end
