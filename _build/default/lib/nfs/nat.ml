module Bytes_io = Opennf_util.Bytes_io
open Opennf_net
open Opennf_state

type tcp_state = New | Established | Fin_wait | Closed

type entry = {
  key : Flow.key;
  mutable state : tcp_state;
  translated_port : int;
  mutable pkts : int;
}

type t = {
  nat_ip : Ipaddr.t;
  table : entry Store.Perflow.t;
  mutable next_port : int;
  mutable invalid : int;
}

let create ?(nat_ip = Ipaddr.v 192 0 2 1) ?(port_base = 20000) () =
  { nat_ip; table = Store.Perflow.create (); next_port = port_base; invalid = 0 }

let advance_state e (p : Packet.t) =
  e.pkts <- e.pkts + 1;
  if Packet.has_flag p Rst then e.state <- Closed
  else
    match e.state with
    | New -> if Packet.has_flag p Ack then e.state <- Established
    | Established -> if Packet.has_flag p Fin then e.state <- Fin_wait
    | Fin_wait -> if Packet.has_flag p Ack then e.state <- Closed
    | Closed -> ()

let process_packet t (p : Packet.t) =
  match Store.Perflow.find t.table p.key with
  | Some e -> advance_state e p
  | None ->
    if Packet.is_syn p then begin
      let e =
        {
          key = Flow.canonical p.key;
          state = New;
          translated_port = t.next_port;
          pkts = 1;
        }
      in
      t.next_port <- t.next_port + 1;
      Store.Perflow.set t.table p.key e
    end
    else t.invalid <- t.invalid + 1

(* --- serialization ------------------------------------------------------ *)

let entry_chunk (e : entry) =
  Chunk.encode ~kind:"nat.conntrack" (fun w ->
      let open Bytes_io.Writer in
      int w (Ipaddr.to_int e.key.Flow.src_ip);
      int w (Ipaddr.to_int e.key.Flow.dst_ip);
      u8 w (match e.key.Flow.proto with Flow.Tcp -> 0 | Udp -> 1 | Icmp -> 2);
      u16 w e.key.Flow.src_port;
      u16 w e.key.Flow.dst_port;
      u8 w
        (match e.state with
        | New -> 0
        | Established -> 1
        | Fin_wait -> 2
        | Closed -> 3);
      u16 w e.translated_port;
      int w e.pkts)

let entry_of_chunk chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let src = Ipaddr.of_int (int r) in
  let dst = Ipaddr.of_int (int r) in
  let proto = match u8 r with 0 -> Flow.Tcp | 1 -> Flow.Udp | _ -> Flow.Icmp in
  let sport = u16 r in
  let dport = u16 r in
  let key = Flow.make ~src ~dst ~proto ~sport ~dport () in
  let state =
    match u8 r with
    | 0 -> New
    | 1 -> Established
    | 2 -> Fin_wait
    | _ -> Closed
  in
  let translated_port = u16 r in
  let pkts = int r in
  { key; state; translated_port; pkts }

(* --- southbound implementation ------------------------------------------ *)

let impl t =
  {
    Opennf_sb.Nf_api.kind = "iptables";
    process_packet = process_packet t;
    list_perflow =
      (fun filter ->
        List.map (fun (k, _) -> Filter.of_key k)
          (Store.Perflow.matching t.table filter));
    export_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> None
        | Some key -> Option.map entry_chunk (Store.Perflow.find t.table key));
    import_perflow =
      (fun _flowid chunk ->
        let e = entry_of_chunk chunk in
        Store.Perflow.set t.table e.key e);
    delete_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> ()
        | Some key -> Store.Perflow.remove t.table key);
    (* iptables has no multi- or all-flows state (§7). *)
    list_multiflow = (fun _ -> []);
    export_multiflow = (fun _ -> None);
    import_multiflow = (fun _ _ -> ());
    delete_multiflow = (fun _ -> ());
    export_allflows = (fun () -> []);
    import_allflows = (fun _ -> ());
  }

(* --- inspection ----------------------------------------------------------- *)

let entry_count t = Store.Perflow.size t.table
let invalid_count t = t.invalid
let state_of t key = Option.map (fun e -> e.state) (Store.Perflow.find t.table key)

let translation_of t key =
  Option.map (fun e -> e.translated_port) (Store.Perflow.find t.table key)
