module Bytes_io = Opennf_util.Bytes_io
open Opennf_net
open Opennf_state

type conn = {
  key : Flow.key;
  mutable first_seen : float;
  mutable last_seen : float;
  mutable pkts : int;
  mutable bytes : int;
}

module Service_map = Map.Make (Int)

type asset = {
  ip : Ipaddr.t;
  mutable os_guess : string;
  mutable services : string Service_map.t;  (* port -> service *)
  mutable a_first_seen : float;
  mutable a_last_seen : float;
}

type globals = { mutable g_pkts : int; mutable g_bytes : int; mutable g_flows : int }

type t = {
  conns : conn Store.Perflow.t;
  assets : asset Store.Per_host.t;
  globals : globals;
  mutable now : float;  (* Advanced by packet timestamps. *)
}

let create () =
  {
    conns = Store.Perflow.create ();
    assets = Store.Per_host.create ();
    globals = { g_pkts = 0; g_bytes = 0; g_flows = 0 };
    now = 0.0;
  }

let service_of_port = function
  | 80 -> "http"
  | 443 -> "https"
  | 22 -> "ssh"
  | 53 -> "dns"
  | 25 -> "smtp"
  | p when p < 1024 -> "well-known"
  | _ -> "ephemeral"

(* A stand-in for passive OS fingerprinting: deterministic per host. *)
let os_of_host ip =
  match Ipaddr.to_int ip mod 4 with
  | 0 -> "linux"
  | 1 -> "windows"
  | 2 -> "macos"
  | _ -> "bsd"

let touch_asset t ip =
  match Store.Per_host.find t.assets ip with
  | Some a ->
    a.a_last_seen <- t.now;
    a
  | None ->
    let a =
      {
        ip;
        os_guess = os_of_host ip;
        services = Service_map.empty;
        a_first_seen = t.now;
        a_last_seen = t.now;
      }
    in
    Store.Per_host.set t.assets ip a;
    a

let process_packet t (p : Packet.t) =
  t.now <- Float.max t.now p.sent_at;
  t.globals.g_pkts <- t.globals.g_pkts + 1;
  t.globals.g_bytes <- t.globals.g_bytes + p.wire_size;
  (match Store.Perflow.find t.conns p.key with
  | Some c ->
    c.last_seen <- t.now;
    c.pkts <- c.pkts + 1;
    c.bytes <- c.bytes + p.wire_size
  | None ->
    t.globals.g_flows <- t.globals.g_flows + 1;
    Store.Perflow.set t.conns p.key
      {
        key = Flow.canonical p.key;
        first_seen = t.now;
        last_seen = t.now;
        pkts = 1;
        bytes = p.wire_size;
      });
  let src_asset = touch_asset t p.key.Flow.src_ip in
  ignore (touch_asset t p.key.Flow.dst_ip);
  (* A reply from a server port reveals a service on the source host. *)
  if Packet.has_flag p Ack && p.key.Flow.src_port < 10000 then
    src_asset.services <-
      Service_map.add p.key.Flow.src_port
        (service_of_port p.key.Flow.src_port)
        src_asset.services

(* --- serialization ----------------------------------------------------- *)

(* The textual fingerprint hints PRADS records per connection; they make
   real PRADS state a couple hundred bytes per flow and are what makes
   compression worthwhile (§8.3). *)
let conn_fingerprint (c : conn) =
  Printf.sprintf
    "match:tcp-syn[%s];os:%s;uptime:unknown;link:ethernet;distance:%d;service:%s"
    (Flow.proto_to_string c.key.Flow.proto)
    (os_of_host c.key.Flow.src_ip)
    (Ipaddr.to_int c.key.Flow.src_ip mod 30)
    (service_of_port c.key.Flow.dst_port)

let conn_chunk (c : conn) =
  Chunk.encode ~kind:"prads.conn" (fun w ->
      let open Bytes_io.Writer in
      int w (Ipaddr.to_int c.key.Flow.src_ip);
      int w (Ipaddr.to_int c.key.Flow.dst_ip);
      u8 w (match c.key.Flow.proto with Flow.Tcp -> 0 | Udp -> 1 | Icmp -> 2);
      u16 w c.key.Flow.src_port;
      u16 w c.key.Flow.dst_port;
      f64 w c.first_seen;
      f64 w c.last_seen;
      int w c.pkts;
      int w c.bytes;
      string w (conn_fingerprint c))

let conn_of_chunk chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let src = Ipaddr.of_int (int r) in
  let dst = Ipaddr.of_int (int r) in
  let proto =
    match u8 r with
    | 0 -> Flow.Tcp
    | 1 -> Flow.Udp
    | _ -> Flow.Icmp
  in
  let sport = u16 r in
  let dport = u16 r in
  let key = Flow.make ~src ~dst ~proto ~sport ~dport () in
  let first_seen = f64 r in
  let last_seen = f64 r in
  let pkts = int r in
  let bytes = int r in
  let _fingerprint = string r in
  { key; first_seen; last_seen; pkts; bytes }

let asset_chunk (a : asset) =
  Chunk.encode ~kind:"prads.asset" (fun w ->
      let open Bytes_io.Writer in
      int w (Ipaddr.to_int a.ip);
      string w a.os_guess;
      list w
        (fun (port, svc) ->
          u16 w port;
          string w svc)
        (Service_map.bindings a.services);
      f64 w a.a_first_seen;
      f64 w a.a_last_seen)

let asset_of_chunk chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let ip = Ipaddr.of_int (int r) in
  let os_guess = string r in
  let services =
    List.fold_left
      (fun m (port, svc) -> Service_map.add port svc m)
      Service_map.empty
      (list r (fun () ->
           let port = u16 r in
           let svc = string r in
           (port, svc)))
  in
  let a_first_seen = f64 r in
  let a_last_seen = f64 r in
  { ip; os_guess; services; a_first_seen; a_last_seen }

(* --- southbound implementation ------------------------------------------ *)

let impl t =
  {
    Opennf_sb.Nf_api.kind = "prads";
    process_packet = process_packet t;
    list_perflow =
      (fun filter ->
        List.map (fun (k, _) -> Filter.of_key k)
          (Store.Perflow.matching t.conns filter));
    export_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> None
        | Some key -> Option.map conn_chunk (Store.Perflow.find t.conns key));
    import_perflow =
      (fun _flowid chunk ->
        let c = conn_of_chunk chunk in
        Store.Perflow.set t.conns c.key c);
    delete_perflow =
      (fun flowid ->
        match Filter.exact_key flowid with
        | None -> ()
        | Some key -> Store.Perflow.remove t.conns key);
    list_multiflow =
      (fun filter ->
        List.map (fun (ip, _) -> Filter.of_src_host ip)
          (Store.Per_host.matching t.assets filter));
    export_multiflow =
      (fun flowid ->
        match Filter.exact_src_host flowid with
        | None -> None
        | Some ip -> Option.map asset_chunk (Store.Per_host.find t.assets ip));
    import_multiflow =
      (fun _flowid chunk ->
        let incoming = asset_of_chunk chunk in
        match Store.Per_host.find t.assets incoming.ip with
        | None -> Store.Per_host.set t.assets incoming.ip incoming
        | Some existing ->
          (* Merge: union services, earliest first-seen, latest last-seen. *)
          existing.services <-
            Service_map.union (fun _ a _ -> Some a) existing.services
              incoming.services;
          existing.a_first_seen <-
            Float.min existing.a_first_seen incoming.a_first_seen;
          existing.a_last_seen <-
            Float.max existing.a_last_seen incoming.a_last_seen);
    delete_multiflow =
      (fun flowid ->
        match Filter.exact_src_host flowid with
        | None -> ()
        | Some ip -> Store.Per_host.remove t.assets ip);
    export_allflows =
      (fun () ->
        [
          Chunk.encode ~kind:"prads.stats" (fun w ->
              let open Bytes_io.Writer in
              int w t.globals.g_pkts;
              int w t.globals.g_bytes;
              int w t.globals.g_flows);
        ]);
    import_allflows =
      (fun chunks ->
        List.iter
          (fun chunk ->
            let r = Chunk.reader chunk in
            let open Bytes_io.Reader in
            t.globals.g_pkts <- t.globals.g_pkts + int r;
            t.globals.g_bytes <- t.globals.g_bytes + int r;
            t.globals.g_flows <- t.globals.g_flows + int r)
          chunks);
  }

(* --- inspection ---------------------------------------------------------- *)

let connection_count t = Store.Perflow.size t.conns
let asset_count t = Store.Per_host.size t.assets

let services_of t ip =
  match Store.Per_host.find t.assets ip with
  | None -> []
  | Some a -> Service_map.bindings a.services

let stats t = (t.globals.g_pkts, t.globals.g_bytes, t.globals.g_flows)

let last_seen t ip =
  Option.map (fun a -> a.a_last_seen) (Store.Per_host.find t.assets ip)
