module Hashing = Opennf_util.Hashing
module Bytes_io = Opennf_util.Bytes_io
open Opennf_net
open Opennf_state

type alert =
  | Port_scan of Ipaddr.t
  | Malware of { flow : Flow.key; digest : int64 }
  | Weird of { kind : string; flow : Flow.key }
  | Outdated_browser of { flow : Flow.key; agent : string }

let pp_alert ppf = function
  | Port_scan ip -> Format.fprintf ppf "port-scan from %a" Ipaddr.pp ip
  | Malware { flow; digest } ->
    Format.fprintf ppf "malware %s in %a" (Hashing.Digest_sig.to_hex digest)
      Flow.pp flow
  | Weird { kind; flow } -> Format.fprintf ppf "weird %s in %a" kind Flow.pp flow
  | Outdated_browser { flow; agent } ->
    Format.fprintf ppf "outdated browser %s in %a" agent Flow.pp flow

let alert_equal a b =
  match (a, b) with
  | Port_scan x, Port_scan y -> Ipaddr.equal x y
  | Malware a, Malware b -> Flow.equal a.flow b.flow && Int64.equal a.digest b.digest
  | Weird a, Weird b -> a.kind = b.kind && Flow.equal a.flow b.flow
  | Outdated_browser a, Outdated_browser b ->
    a.agent = b.agent && Flow.equal a.flow b.flow
  | (Port_scan _ | Malware _ | Weird _ | Outdated_browser _), _ -> false

module Port_set = Set.Make (Int)
module Ip_set = Set.Make (Ipaddr)

type http_analyzer = {
  mutable url : string;
  mutable agent : string;
  mutable body : Hashing.Digest_sig.t;
  mutable body_bytes : int;
  (* TCP reassembly of the reply: segments are digested in sequence
     order regardless of arrival order, like Bro's reassembler. *)
  mutable next_seq : int;
  mutable pending : (int * string) list;  (* out-of-order segments *)
  mutable fin_seq : int option;  (* seq of the reply's last segment *)
}

type conn = {
  key : Flow.key;  (* Canonical orientation. *)
  client : Ipaddr.t;  (* Source of the first packet seen. *)
  mutable established : bool;  (* A SYN was seen. *)
  mutable started_properly : bool;  (* The first packet was the SYN. *)
  mutable pkts : int;
  mutable bytes : int;
  mutable fin_seen : bool;
  mutable http : http_analyzer option;
}

type host_counters = {
  mutable attempts : int;
  mutable ports : Port_set.t;
  mutable targets : Ip_set.t;  (* Hosts this source attempted to reach. *)
  mutable scan_alerted : bool;
}

type globals = { mutable g_pkts : int; mutable g_bytes : int; mutable g_flows : int }

type t = {
  malware : (int64, unit) Hashtbl.t;
  scan_threshold : int;
  check_malware : bool;
  outdated_agents : string list;
  conns : conn Store.Perflow.t;
  hosts : host_counters Store.Per_host.t;
  globals : globals;
  mutable alerts : alert list;  (* Newest first. *)
  mutable alert_hooks : (alert -> unit) list;
  mutable bogus_imports : int;
}

let create ?(malware = []) ?(scan_threshold = 10) ?(check_malware = true) () =
  let table = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace table d ()) malware;
  {
    malware = table;
    scan_threshold;
    check_malware;
    outdated_agents = [ "IE6"; "Netscape4" ];
    conns = Store.Perflow.create ();
    hosts = Store.Per_host.create ();
    globals = { g_pkts = 0; g_bytes = 0; g_flows = 0 };
    alerts = [];
    alert_hooks = [];
    bogus_imports = 0;
  }

let raise_alert t alert =
  t.alerts <- alert :: t.alerts;
  List.iter (fun hook -> hook alert) t.alert_hooks

(* --- packet processing ------------------------------------------------ *)

let parse_request payload =
  (* "GET <url> UA=<agent>" *)
  match String.split_on_char ' ' payload with
  | "GET" :: url :: rest ->
    let agent =
      List.find_map
        (fun part ->
          if String.length part > 3 && String.sub part 0 3 = "UA=" then
            Some (String.sub part 3 (String.length part - 3))
          else None)
        rest
    in
    Some (url, Option.value ~default:"unknown" agent)
  | _ -> None

let new_conn t (p : Packet.t) =
  t.globals.g_flows <- t.globals.g_flows + 1;
  {
    key = Flow.canonical p.key;
    client = p.key.Flow.src_ip;
    established = Packet.is_syn p;
    started_properly = Packet.is_syn p;
    pkts = 0;
    bytes = 0;
    fin_seen = false;
    http = None;
  }

let track_scan t (p : Packet.t) =
  if Packet.is_syn p then
    Store.Per_host.update t.hosts p.key.Flow.src_ip
      ~default:(fun () ->
        {
          attempts = 0;
          ports = Port_set.empty;
          targets = Ip_set.empty;
          scan_alerted = false;
        })
      ~f:(fun c ->
        c.attempts <- c.attempts + 1;
        c.ports <- Port_set.add p.key.Flow.dst_port c.ports;
        c.targets <- Ip_set.add p.key.Flow.dst_ip c.targets;
        if Port_set.cardinal c.ports >= t.scan_threshold && not c.scan_alerted
        then begin
          c.scan_alerted <- true;
          raise_alert t (Port_scan p.key.Flow.src_ip)
        end;
        c)

let http_of conn =
  match conn.http with
  | Some h -> h
  | None ->
    let h =
      {
        url = "";
        agent = "";
        body = Hashing.Digest_sig.create ();
        body_bytes = 0;
        next_seq = 1;
        pending = [];
        fin_seq = None;
      }
    in
    conn.http <- Some h;
    h

(* Feed reply segments to the digest in sequence order, buffering
   out-of-order arrivals and dropping duplicates. *)
let rec feed_in_order h seq payload =
  if seq = h.next_seq then begin
    Hashing.Digest_sig.feed h.body payload;
    h.body_bytes <- h.body_bytes + String.length payload;
    h.next_seq <- h.next_seq + 1;
    match List.assoc_opt h.next_seq h.pending with
    | Some next ->
      h.pending <- List.remove_assoc h.next_seq h.pending;
      feed_in_order h h.next_seq next
    | None -> ()
  end
  else if seq > h.next_seq && not (List.mem_assoc seq h.pending) then
    h.pending <- (seq, payload) :: h.pending

let reply_complete h =
  match h.fin_seq with None -> false | Some fin -> h.next_seq > fin

let analyze_http t conn (p : Packet.t) =
  let from_client = Ipaddr.equal p.key.Flow.src_ip conn.client in
  if from_client then begin
    match parse_request p.payload with
    | Some (url, agent) ->
      let h = http_of conn in
      h.url <- url;
      h.agent <- agent;
      if List.mem agent t.outdated_agents then
        raise_alert t (Outdated_browser { flow = conn.key; agent })
    | None -> ()
  end
  else begin
    (* Server-to-client: reply body bytes, reassembled by sequence. *)
    if String.length p.payload > 0 then begin
      let h = http_of conn in
      feed_in_order h p.seq p.payload
    end;
    if Packet.has_flag p Fin then begin
      let h = http_of conn in
      if h.fin_seq = None then h.fin_seq <- Some p.seq
    end;
    if t.check_malware then
      match conn.http with
      | Some h when h.body_bytes > 0 && reply_complete h ->
        let digest = Hashing.Digest_sig.value h.body in
        if Hashtbl.mem t.malware digest then begin
          h.fin_seq <- None;  (* Alert once per reply. *)
          raise_alert t (Malware { flow = conn.key; digest })
        end
      | Some _ | None -> ()
  end

let process_packet t (p : Packet.t) =
  t.globals.g_pkts <- t.globals.g_pkts + 1;
  t.globals.g_bytes <- t.globals.g_bytes + String.length p.payload;
  track_scan t p;
  let conn =
    match Store.Perflow.find t.conns p.key with
    | Some c -> c
    | None ->
      let c = new_conn t p in
      Store.Perflow.set t.conns p.key c;
      c
  in
  if Packet.is_syn p then begin
    if conn.pkts > 0 then
      raise_alert t (Weird { kind = "SYN_inside_connection"; flow = conn.key });
    conn.established <- true
  end;
  conn.pkts <- conn.pkts + 1;
  conn.bytes <- conn.bytes + String.length p.payload;
  if Packet.has_flag p Fin then conn.fin_seen <- true;
  if p.key.Flow.proto = Flow.Tcp then analyze_http t conn p

(* --- serialization ---------------------------------------------------- *)

let write_key w (k : Flow.key) =
  let open Bytes_io.Writer in
  int w (Ipaddr.to_int k.src_ip);
  int w (Ipaddr.to_int k.dst_ip);
  u8 w (match k.proto with Flow.Tcp -> 0 | Udp -> 1 | Icmp -> 2);
  u16 w k.src_port;
  u16 w k.dst_port

let read_key r =
  let open Bytes_io.Reader in
  let src = Ipaddr.of_int (int r) in
  let dst = Ipaddr.of_int (int r) in
  let proto =
    match u8 r with
    | 0 -> Flow.Tcp
    | 1 -> Flow.Udp
    | 2 -> Flow.Icmp
    | n -> raise (Bytes_io.Decode_error (Printf.sprintf "bad proto %d" n))
  in
  let sport = u16 r in
  let dport = u16 r in
  Flow.make ~src ~dst ~proto ~sport ~dport ()

let conn_chunk conn =
  Chunk.encode ~kind:"ids.conn" (fun w ->
      let open Bytes_io.Writer in
      write_key w conn.key;
      int w (Ipaddr.to_int conn.client);
      bool w conn.established;
      bool w conn.started_properly;
      int w conn.pkts;
      int w conn.bytes;
      bool w conn.fin_seen;
      match conn.http with
      | None -> bool w false
      | Some h ->
        bool w true;
        string w h.url;
        string w h.agent;
        let digest_h, digest_n = Hashing.Digest_sig.export h.body in
        i64 w digest_h;
        int w digest_n;
        int w h.body_bytes;
        int w h.next_seq;
        list w
          (fun (seq, payload) ->
            int w seq;
            string w payload)
          h.pending;
        (match h.fin_seq with
        | None -> bool w false
        | Some fin ->
          bool w true;
          int w fin))

let conn_of_chunk chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let key = read_key r in
  let client = Ipaddr.of_int (int r) in
  let established = bool r in
  let started_properly = bool r in
  let pkts = int r in
  let bytes = int r in
  let fin_seen = bool r in
  let http =
    if bool r then begin
      let url = string r in
      let agent = string r in
      let digest_h = i64 r in
      let digest_n = int r in
      let body_bytes = int r in
      let next_seq = int r in
      let pending =
        list r (fun () ->
            let seq = int r in
            let payload = string r in
            (seq, payload))
      in
      let fin_seq = if bool r then Some (int r) else None in
      Some
        {
          url;
          agent;
          body = Hashing.Digest_sig.restore (digest_h, digest_n);
          body_bytes;
          next_seq;
          pending;
          fin_seq;
        }
    end
    else None
  in
  { key; client; established; started_properly; pkts; bytes; fin_seen; http }

let host_chunk ip (c : host_counters) =
  Chunk.encode ~kind:"ids.host" (fun w ->
      let open Bytes_io.Writer in
      int w (Ipaddr.to_int ip);
      int w c.attempts;
      list w (u16 w) (Port_set.elements c.ports);
      list w (fun ip -> int w (Ipaddr.to_int ip)) (Ip_set.elements c.targets);
      bool w c.scan_alerted)

let host_of_chunk chunk =
  let r = Chunk.reader chunk in
  let open Bytes_io.Reader in
  let ip = Ipaddr.of_int (int r) in
  let attempts = int r in
  let ports = Port_set.of_list (list r (fun () -> u16 r)) in
  let targets =
    Ip_set.of_list (List.map Ipaddr.of_int (list r (fun () -> int r)))
  in
  let scan_alerted = bool r in
  (ip, { attempts; ports; targets; scan_alerted })

let globals_chunk g =
  Chunk.encode ~kind:"ids.globals" (fun w ->
      let open Bytes_io.Writer in
      int w g.g_pkts;
      int w g.g_bytes;
      int w g.g_flows)

(* --- southbound implementation ---------------------------------------- *)

let list_perflow t filter =
  List.map (fun (k, _) -> Filter.of_key k) (Store.Perflow.matching t.conns filter)

let export_perflow t flowid =
  match Filter.exact_key flowid with
  | None -> None
  | Some key ->
    Option.map conn_chunk (Store.Perflow.find t.conns key)

let import_perflow t _flowid chunk =
  match conn_of_chunk chunk with
  | conn -> Store.Perflow.set t.conns conn.key conn
  | exception Bytes_io.Decode_error _ -> t.bogus_imports <- t.bogus_imports + 1

let delete_perflow t flowid =
  match Filter.exact_key flowid with
  | None -> ()
  | Some key -> Store.Perflow.remove t.conns key

(* A host counter is relevant to a filter if the counted host itself
   matches, or if any host it attempted to reach matches — so a filter
   naming a local prefix selects the counters of external hosts scanning
   into that prefix (the movePrefix application's copy, Figure 8). *)
let counter_relevant filter ip (c : host_counters) =
  Filter.matches_host filter ip
  || Ip_set.exists (fun target -> Filter.matches_host filter target) c.targets

let list_multiflow t filter =
  Store.Per_host.fold t.hosts ~init:[] ~f:(fun ip c acc ->
      if counter_relevant filter ip c then Filter.of_src_host ip :: acc
      else acc)
  |> List.sort Filter.compare

let export_multiflow t flowid =
  match Filter.exact_src_host flowid with
  | None -> None
  | Some ip -> Option.map (host_chunk ip) (Store.Per_host.find t.hosts ip)

let import_multiflow t _flowid chunk =
  let ip, incoming = host_of_chunk chunk in
  match Store.Per_host.find t.hosts ip with
  | None -> Store.Per_host.set t.hosts ip incoming
  | Some existing ->
    (* Merge (§4.2): add counters, union sets. *)
    existing.attempts <- existing.attempts + incoming.attempts;
    existing.ports <- Port_set.union existing.ports incoming.ports;
    existing.targets <- Ip_set.union existing.targets incoming.targets;
    existing.scan_alerted <- existing.scan_alerted || incoming.scan_alerted

let delete_multiflow t flowid =
  match Filter.exact_src_host flowid with
  | None -> ()
  | Some ip -> Store.Per_host.remove t.hosts ip

let export_allflows t = [ globals_chunk t.globals ]

let import_allflows t chunks =
  List.iter
    (fun chunk ->
      let r = Chunk.reader chunk in
      let open Bytes_io.Reader in
      t.globals.g_pkts <- t.globals.g_pkts + int r;
      t.globals.g_bytes <- t.globals.g_bytes + int r;
      t.globals.g_flows <- t.globals.g_flows + int r)
    chunks

let impl t =
  {
    Opennf_sb.Nf_api.kind = "bro";
    process_packet = process_packet t;
    list_perflow = list_perflow t;
    export_perflow = export_perflow t;
    import_perflow = import_perflow t;
    delete_perflow = delete_perflow t;
    list_multiflow = list_multiflow t;
    export_multiflow = export_multiflow t;
    import_multiflow = import_multiflow t;
    delete_multiflow = delete_multiflow t;
    export_allflows = (fun () -> export_allflows t);
    import_allflows = import_allflows t;
  }

(* --- inspection -------------------------------------------------------- *)

let alert_log t = List.rev t.alerts
let on_alert t hook = t.alert_hooks <- hook :: t.alert_hooks
let conn_count t = Store.Perflow.size t.conns
let host_count t = Store.Per_host.size t.hosts
let total_bytes t = t.globals.g_bytes

let conn_bytes t key =
  Option.map (fun c -> c.bytes) (Store.Perflow.find t.conns key)

type http_progress = {
  body_bytes : int;
  next_seq : int;
  pending : int;
  fin_seen : bool;
  digest : int64;
}

let http_progress t key =
  match Store.Perflow.find t.conns key with
  | None -> None
  | Some conn ->
    Option.map
      (fun (h : http_analyzer) ->
        {
          body_bytes = h.body_bytes;
          next_seq = h.next_seq;
          pending = List.length h.pending;
          fin_seen = h.fin_seq <> None;
          digest = Hashing.Digest_sig.value h.body;
        })
      conn.http

let bogus_log_entries t =
  Store.Perflow.fold t.conns ~init:0 ~f:(fun _ conn acc ->
      if conn.key.Flow.proto <> Flow.Tcp then acc
      else if not conn.started_properly then acc + 1
      else if conn.established && not conn.fin_seen then acc + 1
      else acc)
