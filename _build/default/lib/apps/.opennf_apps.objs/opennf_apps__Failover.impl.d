lib/apps/failover.ml: Controller Copy_op Filter Flow Ipaddr List Notify Opennf Opennf_net Opennf_sim Opennf_state Packet
