lib/apps/lb_monitor.ml: Controller Copy_op Filter Ipaddr List Move Opennf Opennf_net Opennf_sim Opennf_state
