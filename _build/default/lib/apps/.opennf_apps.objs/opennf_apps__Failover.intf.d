lib/apps/failover.mli: Controller Filter Ipaddr Opennf Opennf_net
