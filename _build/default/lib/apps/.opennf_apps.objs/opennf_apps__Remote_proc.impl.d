lib/apps/remote_proc.ml: Controller Filter Flow List Move Opennf Opennf_net Opennf_nfs Opennf_sim Opennf_state
