lib/apps/lb_monitor.mli: Controller Ipaddr Move Opennf Opennf_net
