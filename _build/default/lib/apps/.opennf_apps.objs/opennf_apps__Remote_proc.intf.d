lib/apps/remote_proc.mli: Controller Flow Opennf Opennf_net Opennf_nfs
