(* Fast failure recovery (the paper's Figure 9 application).

   A Bro-like IDS instance monitors local traffic while a hot standby is
   kept eventually consistent: every TCP SYN/RST and local HTTP request
   triggers a notify event, and the failure-recovery app copies that
   flow's state to the standby. When the primary "fails", traffic is
   rerouted instantly — and the standby already holds the per-flow and
   multi-flow state it needs, so a port scan straddling the failure is
   still detected.

   Run with: dune exec examples/failure_recovery.exe *)

module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

let scanner = Ipaddr.v 198 51 100 9

let () =
  let fab = Fabric.create ~seed:31 () in
  let scan_threshold = 10 in
  let primary_ids = Opennf_nfs.Ids.create ~scan_threshold () in
  let standby_ids = Opennf_nfs.Ids.create ~scan_threshold () in
  let primary, rt_primary =
    Fabric.add_nf fab ~name:"bro-primary" ~impl:(Opennf_nfs.Ids.impl primary_ids)
      ~costs:Costs.bro
  in
  let standby, rt_standby =
    Fabric.add_nf fab ~name:"bro-standby" ~impl:(Opennf_nfs.Ids.impl standby_ids)
      ~costs:Costs.bro
  in
  ignore standby;

  (* Workload: HTTP sessions from local clients plus a 10-port scan that
     is half done when the primary dies at t = 1.0 s. *)
  let gen = Opennf_trace.Gen.create ~seed:3 () in
  let http =
    List.concat_map
      (fun i ->
        Opennf_trace.Gen.http_session gen
          ~client:(Ipaddr.v 10 0 1 (10 + i))
          ~server:(Ipaddr.v 93 184 216 34) ~sport:(31000 + i)
          ~start:(0.1 +. (0.12 *. float_of_int i))
          ~url:(Printf.sprintf "/doc-%d" i)
          ~body:(String.make 3000 'p') ())
      (List.init 10 Fun.id)
  in
  let scan =
    Opennf_trace.Gen.port_scan gen ~src:scanner ~dst:(Ipaddr.v 10 0 1 99)
      ~ports:(List.init scan_threshold (fun i -> 3000 + i))
      ~start:0.3 ~gap:0.16 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p)
    (Opennf_trace.Gen.merge [ http; scan ]);

  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any primary;
      let app =
        Opennf_apps.Failover.init_standby fab.ctrl ~normal:primary
          ~standby ()
      in
      Proc.sleep 1.0;
      (* Primary fails: reroute everything to the standby. *)
      Opennf_apps.Failover.stop app;
      Opennf_apps.Failover.fail_over app ~filter:Filter.any;
      Format.printf "failed over at t=1.0s after %d state refreshes@."
        (Opennf_apps.Failover.refreshes app));
  Fabric.run fab;

  let scan_alerts ids =
    List.filter
      (function Opennf_nfs.Ids.Port_scan _ -> true | _ -> false)
      (Opennf_nfs.Ids.alert_log ids)
  in
  Format.printf "primary: processed=%d standby: processed=%d@."
    (Opennf_sb.Runtime.processed_count rt_primary)
    (Opennf_sb.Runtime.processed_count rt_standby);
  Format.printf "standby connections after failover: %d@."
    (Opennf_nfs.Ids.conn_count standby_ids);
  Format.printf "scan detected at standby: %b@." (scan_alerts standby_ids <> []);
  (* The scan's first half was only ever seen by the failed primary; the
     standby detects it because the counters were replicated. *)
  assert (scan_alerts standby_ids <> [])
