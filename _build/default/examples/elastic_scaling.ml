(* Elastic IDS scaling (the paper's Figure 1 / Figure 8 scenario).

   One Bro-like IDS instance monitors two local subnets. A port scan is
   in progress from an external host against machines in both subnets,
   interleaved with regular HTTP traffic. Mid-scan, load forces us to
   split the subnets across two instances. The load-balancer app copies
   the multi-flow scan counters and loss-free-moves the per-flow state,
   so the scan is still detected even though its connection attempts are
   split across instances — the headline capability rerouting-only
   control planes lack.

   Run with: dune exec examples/elastic_scaling.exe *)

module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

let subnet_a = Ipaddr.Prefix.of_string "10.1.0.0/16"
let subnet_b = Ipaddr.Prefix.of_string "10.2.0.0/16"
let scanner = Ipaddr.v 203 0 113 66

let () =
  let fab = Fabric.create ~seed:23 () in
  let scan_threshold = 12 in
  let ids1 = Opennf_nfs.Ids.create ~scan_threshold () in
  let ids2 = Opennf_nfs.Ids.create ~scan_threshold () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"bro1" ~impl:(Opennf_nfs.Ids.impl ids1)
      ~costs:Costs.bro
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"bro2" ~impl:(Opennf_nfs.Ids.impl ids2)
      ~costs:Costs.bro
  in

  (* Traffic: HTTP sessions from both subnets + a slow scan that probes
     hosts in subnet A and subnet B alternately (8 ports each — neither
     half alone reaches the 12-port threshold). *)
  let gen = Opennf_trace.Gen.create ~seed:5 () in
  let http =
    List.concat_map
      (fun i ->
        let client =
          Ipaddr.of_int
            (Ipaddr.to_int
               (Ipaddr.Prefix.network (if i mod 2 = 0 then subnet_a else subnet_b))
            + 10 + i)
        in
        Opennf_trace.Gen.http_session gen ~client
          ~server:(Ipaddr.v 93 184 216 34) ~sport:(30000 + i)
          ~start:(0.1 +. (0.05 *. float_of_int i))
          ~url:(Printf.sprintf "/page-%d" i)
          ~body:(String.make 4000 'b') ())
      (List.init 20 Fun.id)
  in
  (* The scanner's probes target hosts inside the subnets, so the
     prefix-based routing (on nw_src of local traffic / nw_dst of
     inbound) sees them; the IDS counts per scanning host. *)
  let scan_a =
    Opennf_trace.Gen.port_scan gen ~src:scanner
      ~dst:(Ipaddr.of_int (Ipaddr.to_int (Ipaddr.Prefix.network subnet_a) + 7))
      ~ports:(List.init 8 (fun i -> 1000 + i))
      ~start:0.2 ~gap:0.12 ()
  in
  let scan_b =
    Opennf_trace.Gen.port_scan gen ~src:scanner
      ~dst:(Ipaddr.of_int (Ipaddr.to_int (Ipaddr.Prefix.network subnet_b) + 7))
      ~ports:(List.init 8 (fun i -> 2000 + i))
      ~start:0.26 ~gap:0.12 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p)
    (Opennf_trace.Gen.merge [ http; scan_a; scan_b ]);

  (* Both subnets start on bro1; at t=0.7s, rebalance subnet B to bro2.
     Routing is by destination subnet for inbound traffic, so the app
     uses dst-prefix filters via mirror matching (set_route installs
     both directions). *)
  Proc.spawn fab.engine (fun () ->
      let app =
        Opennf_apps.Lb_monitor.create fab.ctrl
          ~instances:[ (nf1, [ subnet_a; subnet_b ]) ]
          ~sync_period:0.5 ()
      in
      Proc.sleep 0.7;
      let report = Opennf_apps.Lb_monitor.move_prefix app subnet_b ~to_:nf2 in
      Format.printf "rebalanced %s: %a@."
        (Ipaddr.Prefix.to_string subnet_b)
        Move.pp_report report;
      (* Let the rest of the scan and a couple of sync rounds play out. *)
      Proc.sleep 2.0;
      Opennf_apps.Lb_monitor.stop app);
  Fabric.run fab;

  let alerts ids = Opennf_nfs.Ids.alert_log ids in
  let scans ids =
    List.filter
      (function Opennf_nfs.Ids.Port_scan _ -> true | _ -> false)
      (alerts ids)
  in
  Format.printf "bro1 alerts: %d (%d scans), bro2 alerts: %d (%d scans)@."
    (List.length (alerts ids1))
    (List.length (scans ids1))
    (List.length (alerts ids2))
    (List.length (scans ids2));
  let detected = scans ids1 <> [] || scans ids2 <> [] in
  Format.printf "port scan detected despite the split: %b@." detected;
  assert detected
