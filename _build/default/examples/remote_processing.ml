(* Selectively invoking advanced remote processing (§2.1, §6).

   Two local IDS instances identify browsers but do not run the
   expensive malware analysis; a cloud instance does. When a local
   instance flags an HTTP request from an outdated browser, the app
   loss-free-moves that flow to the cloud IDS, whose digest then covers
   the entire reply — including the bytes that arrived before the move —
   so the malware in it is caught. Everyone else's traffic stays local.

   Run with: dune exec examples/remote_processing.exe *)

module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

let () =
  let body, digest = Opennf_trace.Gen.malware_body 60_000 in
  let fab = Fabric.create ~seed:17 () in
  (* Local instances skip malware checking (limited resources); the
     cloud instance checks against the signature corpus. *)
  let local_ids = Opennf_nfs.Ids.create ~check_malware:false () in
  let cloud_ids = Opennf_nfs.Ids.create ~malware:[ digest ] () in
  let local, _ =
    Fabric.add_nf fab ~name:"bro-local" ~impl:(Opennf_nfs.Ids.impl local_ids)
      ~costs:Costs.bro
  in
  let cloud, _ =
    Fabric.add_nf fab ~name:"bro-cloud" ~impl:(Opennf_nfs.Ids.impl cloud_ids)
      ~costs:Costs.bro
  in

  (* One suspicious client on an outdated browser fetches the infected
     object; modern-browser clients fetch clean pages. The reply is slow
     (2ms between packets) so the move happens mid-download. *)
  let gen = Opennf_trace.Gen.create ~seed:9 () in
  let suspicious =
    Opennf_trace.Gen.http_session gen ~client:(Ipaddr.v 10 0 2 7)
      ~server:(Ipaddr.v 203 0 113 80) ~sport:34000 ~start:0.2
      ~url:"/free-screensaver.exe" ~agent:"IE6" ~body ~gap:0.002 ()
  in
  let clean =
    List.concat_map
      (fun i ->
        Opennf_trace.Gen.http_session gen
          ~client:(Ipaddr.v 10 0 2 (20 + i))
          ~server:(Ipaddr.v 93 184 216 34) ~sport:(35000 + i)
          ~start:(0.1 +. (0.05 *. float_of_int i))
          ~url:(Printf.sprintf "/news-%d" i)
          ~body:(String.make 8000 'n') ())
      (List.init 8 Fun.id)
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p)
    (Opennf_trace.Gen.merge [ suspicious; clean ]);

  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any local);
  let app =
    Opennf_apps.Remote_proc.start fab.ctrl
      ~local:[ (local, local_ids) ]
      ~cloud ()
  in
  Fabric.run fab;

  let malware_alerts ids =
    List.filter
      (function Opennf_nfs.Ids.Malware _ -> true | _ -> false)
      (Opennf_nfs.Ids.alert_log ids)
  in
  Format.printf "flows offloaded to the cloud: %d@."
    (Opennf_apps.Remote_proc.offload_count app);
  List.iter
    (fun k -> Format.printf "  offloaded %a@." Flow.pp k)
    (Opennf_apps.Remote_proc.offloaded app);
  Format.printf "malware alerts at cloud: %d@."
    (List.length (malware_alerts cloud_ids));
  Format.printf "clean flows that stayed local: %d@."
    (Opennf_nfs.Ids.conn_count local_ids);
  assert (Opennf_apps.Remote_proc.offload_count app = 1);
  assert (malware_alerts cloud_ids <> []);
  assert (Opennf_nfs.Ids.conn_count local_ids >= 8)
