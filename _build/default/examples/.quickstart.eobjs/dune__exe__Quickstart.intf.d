examples/quickstart.mli:
