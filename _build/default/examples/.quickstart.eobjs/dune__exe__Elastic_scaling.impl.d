examples/elastic_scaling.ml: Fabric Format Fun Ipaddr List Move Opennf Opennf_apps Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace Printf String
