examples/remote_processing.mli:
