examples/quickstart.ml: Audit Controller Fabric Filter Format List Move Opennf Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace
