examples/remote_processing.ml: Controller Fabric Filter Flow Format Fun Ipaddr List Opennf Opennf_apps Opennf_net Opennf_nfs Opennf_sb Opennf_sim Opennf_trace Printf String
