(* Quickstart: two PRADS asset monitors behind one SDN switch; traffic
   initially lands on prads1; mid-run we ask OpenNF for a loss-free,
   parallelized move of every flow's state to prads2.

   Run with: dune exec examples/quickstart.exe *)

module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

let () =
  (* 1. Build the testbed: engine + switch + controller. *)
  let fab = Fabric.create ~seed:11 () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, rt1 =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl prads1)
      ~costs:Costs.prads
  in
  let nf2, rt2 =
    Fabric.add_nf fab ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl prads2)
      ~costs:Costs.prads
  in

  (* 2. Generate 2 seconds of traffic: 100 flows at 2500 packets/s. *)
  let gen = Opennf_trace.Gen.create () in
  let schedule, keys =
    Opennf_trace.Gen.steady_flows gen ~flows:100 ~rate:2500.0 ~start:0.05
      ~duration:2.0 ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;

  (* 3. Route everything to prads1, then move it all at t=1s. *)
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  Fabric.Engine.schedule_at fab.engine 1.0 (fun () ->
      Proc.spawn fab.engine (fun () ->
          let report =
            match
              Move.run fab.ctrl
                (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any
                   ~guarantee:Move.Loss_free ~parallel:true ())
            with
            | Ok r -> r
            | Error e -> raise (Op_error.Op_failed e)
          in
          Format.printf "%a@." Move.pp_report report));
  Fabric.run fab;

  (* 4. Verify: nothing lost, state relocated. *)
  let lost = Audit.lost fab.audit ~nfs:[ "prads1"; "prads2" ] in
  Format.printf "flows: %d@." (List.length keys);
  Format.printf "processed: prads1=%d prads2=%d@."
    (Opennf_sb.Runtime.processed_count rt1)
    (Opennf_sb.Runtime.processed_count rt2);
  Format.printf "connections now: prads1=%d prads2=%d@."
    (Opennf_nfs.Prads.connection_count prads1)
    (Opennf_nfs.Prads.connection_count prads2);
  Format.printf "packets lost: %d (loss-free!)@." (List.length lost);
  assert (lost = []);
  assert (Opennf_nfs.Prads.connection_count prads2 = List.length keys)
