(* Runtime-monitor gate (ISSUE 10, satellite of the online guarantee
   monitor).

   Three claims, each enforced with [failwith] so @bench-check fails
   loudly:

   1. {b Soundness on fault-free runs}: with the live monitors attached,
      the §8-style scenarios — a loss-free and an order-preserving PRADS
      move (with and without a resilience policy armed), and the
      shard-scaling workload at 1/2/4 shards, serial and [~par:true] —
      report {e zero} violations.

   2. {b Pure observation}: a monitored run of the shard workload has
      the same virtual makespan and the same semantic digest as the
      unmonitored run of the identical scenario.

   3. {b Completeness on a seeded bug}: a move whose flush deliberately
      discards a buffered packet ([Move.Drop_buffered]) yields at least
      one finding, the finding is a loss on the expected NF, and the
      rendered verdict is byte-identical across two fresh runs. *)

module H = Harness
module Monitor = Opennf_obs.Monitor
open Opennf_net
open Opennf

let check cond fmt =
  Printf.ksprintf (fun msg -> if not cond then failwith ("moncheck: " ^ msg)) fmt

(* --- fault-free PRADS moves ---------------------------------------------- *)

let clean_move ~label ?resilience ~guarantee () =
  let bed = H.prads_bed ~flows:200 ~rate:2000.0 ?resilience ~monitor:true () in
  H.run_at bed.H.fab ~at:bed.H.move_at (fun () ->
      match
        Move.run bed.H.fab.Fabric.ctrl
          (Move.spec ~src:bed.H.nf1 ~dst:bed.H.nf2 ~filter:Filter.any
             ~guarantee ~parallel:true ())
      with
      | Ok _ -> ()
      | Error e -> failwith (Format.asprintf "moncheck: %s move failed: %a" label Op_error.pp e));
  let live = Fabric.live_findings bed.H.fab in
  let verdict = Fabric.verdict bed.H.fab in
  check (live = []) "%s: %d online finding(s) on a fault-free run" label
    (List.length live);
  check (Monitor.clean verdict) "%s: dirty verdict on a fault-free run:\n%s"
    label (Monitor.render verdict);
  H.note "  %-28s clean (%d packets processed)" label
    (Audit.processed_count bed.H.fab.Fabric.audit)

(* --- fault-free shard workload, monitored vs not -------------------------- *)

let clean_shards ~shards ~par () =
  let label = Printf.sprintf "shards=%d%s" shards (if par then " par" else "") in
  let baseline =
    H.run_shard_workload ~ops:(2 * shards) ~flows:40 ~shards ~par ()
  in
  let verdict = ref [] in
  let monitored =
    H.run_shard_workload ~ops:(2 * shards) ~flows:40 ~shards ~par ~monitor:true
      ~on_fabric:(fun fab ->
        verdict := Fabric.verdict fab;
        check (Fabric.monitored fab) "%s: monitors not attached" label)
      ()
  in
  check
    (Float.equal baseline.H.s_makespan monitored.H.s_makespan)
    "%s: monitoring changed the virtual makespan (%.9f vs %.9f)" label
    baseline.H.s_makespan monitored.H.s_makespan;
  check
    (Int64.equal baseline.H.s_digest monitored.H.s_digest)
    "%s: monitoring changed the semantic digest" label;
  check (Monitor.clean !verdict) "%s: dirty verdict on a fault-free run:\n%s"
    label (Monitor.render !verdict);
  H.note "  %-28s clean; makespan %.6fs unchanged" label monitored.H.s_makespan

(* --- seeded violation ------------------------------------------------------ *)

(* One run of the broken controller: a loss-free move whose flush drops
   the first buffered packet. Returns the rendered verdict. *)
let broken_verdict () =
  let bed = H.prads_bed ~flows:200 ~rate:2000.0 ~monitor:true () in
  H.run_at bed.H.fab ~at:bed.H.move_at (fun () ->
      match
        Move.run bed.H.fab.Fabric.ctrl
          (Move.spec ~src:bed.H.nf1 ~dst:bed.H.nf2 ~filter:Filter.any
             ~guarantee:Move.Loss_free ~break_for_test:Move.Drop_buffered ())
      with
      | Ok _ -> ()
      | Error e ->
        failwith (Format.asprintf "moncheck: broken move failed: %a" Op_error.pp e));
  Fabric.verdict bed.H.fab

let seeded_violation () =
  let v1 = broken_verdict () in
  check (not (Monitor.clean v1)) "seeded Drop_buffered bug not detected";
  check
    (List.exists (fun f -> f.Monitor.property = Monitor.Loss) v1)
    "seeded Drop_buffered bug detected, but not as a loss";
  let r1 = Monitor.render v1 and r2 = Monitor.render (broken_verdict ()) in
  check (String.equal r1 r2)
    "seeded-violation report not byte-identical across runs:\n--- a\n%s--- b\n%s"
    r1 r2;
  H.note "  %-28s %d finding(s), report deterministic" "seeded Drop_buffered"
    (List.length v1)

(* --- driver ----------------------------------------------------------------- *)

let run () =
  H.section "Runtime guarantee monitor gate (moncheck)";
  clean_move ~label:"loss-free move" ~guarantee:Move.Loss_free ();
  clean_move ~label:"order-preserving move" ~guarantee:Move.Order_preserving ();
  clean_move ~label:"resilient loss-free move"
    ~resilience:
      {
        Controller.call_timeout = 0.05;
        max_retries = 1;
        backoff = 0.01;
        liveness_misses = 2;
        probe_period = 0.1;
      }
    ~guarantee:Move.Loss_free ();
  List.iter (fun shards -> clean_shards ~shards ~par:false ()) [ 1; 2; 4 ];
  List.iter (fun shards -> clean_shards ~shards ~par:true ()) [ 2; 4 ];
  seeded_violation ();
  H.note "moncheck: all gates passed"

let () =
  H.register ~id:"moncheck"
    ~descr:"runtime guarantee monitor: clean fault-free, fires on seeded bugs"
    run
