(* Parallel execution gate for @bench-check (ISSUE 9).

   The serial single-engine fabric is the reference oracle; the
   parallel fabric (one engine per shard, one domain per shard, coupled
   by {!Opennf_sim.Par}) must compute exactly what it computes. At each
   shard count the gate compares

   - the semantic digest (move reports + final store contents), and
   - the canonical virtual-time trace content
     ({!Opennf_obs.Export.canonical} over per-shard trace hubs vs the
     serial fabric's single hub),

   then runs the parallel configuration a second time and demands both
   repeat byte-for-byte (determinism across runs, whatever the domain
   scheduling did). Exits nonzero on any divergence.

   On a 1-domain host the parallel path degenerates (the coordinator
   still runs, on one worker); the digest checks hold there too, but
   the gate skips to keep @bench-check cheap where parallelism cannot
   actually be exercised. *)

module H = Harness
module Hub = Opennf_obs.Hub
module Export = Opennf_obs.Export

let ops = 6
let flows = 40

let serial_oracle ~shards =
  let obs = Hub.create ~trace:true () in
  let r = H.run_shard_workload ~obs ~ops ~flows ~shards () in
  (r, Export.canonical [ Hub.trace obs ])

(* At shards = 1 parallel mode is inert by contract ([Fabric.create]
   forces it off), so the "parallel" run is the serial path again —
   which is exactly the 1-shard claim: [~par:true] changes nothing. *)
let parallel_run ~shards =
  if shards = 1 then
    let obs = Hub.create ~trace:true () in
    let r = H.run_shard_workload ~obs ~par:true ~ops ~flows ~shards () in
    (r, Export.canonical [ Hub.trace obs ])
  else begin
    let hubs = Array.init shards (fun _ -> Hub.create ~trace:true ()) in
    let r =
      H.run_shard_workload
        ~shard_obs:(fun k -> hubs.(k))
        ~par:true ~ops ~flows ~shards ()
    in
    (r, Export.canonical (Array.to_list (Array.map Hub.trace hubs)))
  end

let run_parcheck () =
  H.section "Parallel shard execution vs serial oracle (one engine per shard)";
  if Opennf_util.Domain_pool.default_domains () = 1 then
    H.note
      "1 usable domain: parallel stepping cannot be exercised; skipping \
       (the equivalence contract is still covered by `dune runtest`)"
  else
    List.iter
      (fun shards ->
        let serial, canon_serial = serial_oracle ~shards in
        let p1, c1 = parallel_run ~shards in
        let p2, c2 = parallel_run ~shards in
        let digest_ok = p1.H.s_digest = serial.H.s_digest in
        let trace_ok = c1 = canon_serial in
        let repeat_ok = p1 = p2 && c1 = c2 in
        H.note
          "shards=%d: digest %s, trace content %s, repeat run %s (domains=%d, \
           cross-shard ops %d)"
          shards
          (if digest_ok then "identical" else "DIVERGED")
          (if trace_ok then "identical" else "DIVERGED")
          (if repeat_ok then "identical" else "DIVERGED")
          p1.H.s_domains p1.H.s_cross;
        if not digest_ok then
          failwith "par check: parallel run diverged from the serial oracle";
        if not trace_ok then
          failwith
            "par check: parallel trace content diverged from the serial oracle";
        if not repeat_ok then
          failwith "par check: repeated parallel run was not deterministic")
      [ 1; 2; 4 ]

let () =
  H.register ~id:"parcheck"
    ~descr:
      "parallel (one engine per shard) vs serial control plane: digest and \
       trace equivalence gate" run_parcheck
