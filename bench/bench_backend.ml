(* State-backend economics (the FlexState-style redesign): what does it
   cost to keep a hot standby ready for a surprise failure, and what
   does a [move] cost once instances stop owning their state?

   Failover: an iptables-like NAT tracks n conntrack entries under
   sparse keepalives and a steady churn of new flows; the primary
   crashes without warning at [fail_at]. Two strategies ship state to
   the standby:

   - periodic full checkpoints (the copy-based baseline, two periods),
     bytes counted as the serialized chunk bytes of every checkpoint;
   - the replicated backend's per-packet delta stream (the Failover app
     in promote mode), bytes counted as delta-frame wire bytes
     including all framing overhead.

   We report bytes shipped and coverage at the crash instant: how many
   of the primary's live entries exist at the standby at all, and how
   many are byte-identical. Checkpoint transport is modeled out of band
   (direct impl-to-impl export/import with no virtual serialize cost,
   no framing bytes counted) — both choices favor the baseline, so the
   reported delta advantage is a floor. NF costs use [Costs.dummy]: at
   100k entries an iptables-cost full copy occupies ~11 virtual
   seconds, which only proves the baseline cannot run at checkpoint
   frequencies matching the delta stream's freshness; the byte and
   coverage comparison is the point of this bench.

   Move: the same NAT pair over local, shared and replicated backends.
   An in-scope move over a shared backend is a metadata flip and over a
   replicated pair the standby already holds the state — both must
   transfer zero state bytes.

   Sizes come from OPENNF_BACKEND_SIZES (e.g. "10k 100k"), defaulting
   to 10k and 100k. Emits BENCH_backend.json (+ METRICS_backend.json).
   All JSON fields are virtual-time or byte counts, so the committed
   baseline is byte-identical run to run. [backendcheck] is the
   @bench-check smoke: replicated-vs-local digest and packet-order
   equality, 100% replicated coverage, zero-byte shared/replicated
   moves, a >= 5x byte advantage over the fast checkpoint, and
   reconciliation of the observability counters against the bench's own
   totals — any miss fails the build. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
module Costs = Opennf_sb.Costs
module Nf_api = Opennf_sb.Nf_api
module Backend = Opennf_state.Backend
module Chunk = Opennf_state.Chunk
module Nat = Opennf_nfs.Nat
module Failover = Opennf_apps.Failover
open Opennf_net
open Opennf
module H = Harness

let default_sizes = [ 10_000; 100_000 ]

let parse_sizes s =
  String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) s)
  |> List.filter (fun tok -> tok <> "")
  |> List.map (fun tok ->
         let mult, digits =
           match tok.[String.length tok - 1] with
           | 'k' | 'K' -> (1_000, String.sub tok 0 (String.length tok - 1))
           | 'm' | 'M' -> (1_000_000, String.sub tok 0 (String.length tok - 1))
           | _ -> (1, tok)
         in
         mult * int_of_string digits)

let sizes () =
  match Sys.getenv_opt "OPENNF_BACKEND_SIZES" with
  | Some s -> parse_sizes s
  | None -> default_sizes

(* --- workload ------------------------------------------------------------ *)

(* Establishment ramp, then sparse keepalives round-robin over every
   live flow plus a steady churn of new flows. No teardown: the
   conntrack table must be full at the crash. Churn stops shortly
   before [fail_at] so every flow a keepalive can hit was seen by the
   primary (SYNs racing the reroute window would otherwise create
   flows that exist nowhere, polluting the invalid-packet signal). *)

let t_up = 0.05
let t_ramp_end = 0.45
let t_steady = 0.5
let t_end = 1.9
let fail_at = 1.5
let snap_at = fail_at +. 0.01
let reroute_at = fail_at +. 0.05
let churn_period = 0.1
let ka_per_flow = 0.2 (* keepalive pps per established flow *)
let fast_period = 0.03
let slow_period = 0.3

let base_key i =
  Flow.make
    ~src:(Ipaddr.of_int (0x0A000000 lor (i lsr 6)))
    ~dst:(Ipaddr.of_int 0xC0A80101)
    ~sport:(1024 + (i land 63))
    ~dport:80 ()

let churn_key i =
  Flow.make
    ~src:(Ipaddr.of_int (0x0B000000 lor (i lsr 6)))
    ~dst:(Ipaddr.of_int 0xC0A80102)
    ~sport:(1024 + (i land 63))
    ~dport:443 ()

let build_workload ~flows =
  let gen = Opennf_trace.Gen.create ~seed:11 () in
  let acc = ref [] in
  let n = ref 0 in
  let emit ~at ~key ?flags ?seq () =
    incr n;
    acc := Opennf_trace.Gen.packet gen ~at ~key ?flags ?seq () :: !acc
  in
  (* Establishment ramp: SYN / SYN+ACK per base flow across the ramp. *)
  let est_dt = (t_ramp_end -. t_up) /. float_of_int (2 * flows) in
  let births = ref [] in
  for i = 0 to flows - 1 do
    let k = base_key i in
    let t0 = t_up +. (float_of_int (2 * i) *. est_dt) in
    emit ~at:t0 ~key:k ~flags:[ Packet.Syn ] ();
    emit ~at:(t0 +. est_dt) ~key:(Flow.reverse k)
      ~flags:[ Packet.Syn; Packet.Ack ] ~seq:1 ();
    births := (t0 +. est_dt, k) :: !births
  done;
  (* Churn: a batch of fresh flows every [churn_period] through the
     steady phase, stopping before the crash. *)
  let per_batch = max 1 (flows / 100) in
  let batch = ref 0 in
  let t = ref (t_steady +. 0.02) in
  while !t < fail_at -. 0.05 do
    for j = 0 to per_batch - 1 do
      let k = churn_key ((!batch * per_batch) + j) in
      emit ~at:!t ~key:k ~flags:[ Packet.Syn ] ();
      emit ~at:(!t +. 0.001) ~key:(Flow.reverse k)
        ~flags:[ Packet.Syn; Packet.Ack ] ~seq:1 ()
    done;
    List.iter
      (fun j -> births := (!t +. 0.001, churn_key ((!batch * per_batch) + j)) :: !births)
      (List.init per_batch Fun.id);
    incr batch;
    t := !t +. churn_period
  done;
  let births =
    Array.of_list
      (List.sort
         (fun (a, ka) (b, kb) ->
           match Float.compare a b with 0 -> Flow.compare ka kb | c -> c)
         !births)
  in
  (* Keepalives: aggregate [ka_per_flow * flows] pps, round-robin over
     every flow established by the send instant. *)
  let ka_dt = 1.0 /. (ka_per_flow *. float_of_int flows) in
  let alive = ref 0 in
  let idx = ref 0 in
  let t = ref t_steady in
  while !t < t_end do
    while !alive < Array.length births && fst births.(!alive) <= !t do
      incr alive
    done;
    if !alive > 0 then begin
      let _, k = births.(!idx mod !alive) in
      emit ~at:!t ~key:k ~flags:[ Packet.Ack ] ~seq:(2 + !idx) ();
      incr idx
    end;
    t := !t +. ka_dt
  done;
  (!acc, !n)

(* --- testbed ------------------------------------------------------------- *)

type bed = {
  fab : Fabric.t;
  obs : Opennf_obs.Hub.t;
  nat1 : Nat.t;
  nat2 : Nat.t;
  nf1 : Controller.nf;
  nf2 : Controller.nf;
  packets : int;
}

let bed ~flows ~make_backends () =
  let obs = Opennf_obs.Hub.create ~metrics:true () in
  let fab = Fabric.create ~seed:9 ~obs () in
  let b1, b2 = make_backends fab in
  (* Full u16 translation-port range: a single NAT instance can track at
     most 65,535 concurrent flows, so the 100k row runs the table
     saturated — offered flows beyond capacity are dropped (and
     counted) by the NF, and the "live" column reports what the table
     actually held at the crash. *)
  let nat1 = Nat.create ?backend:b1 ~port_base:1 ~port_limit:65535 () in
  let nat2 = Nat.create ?backend:b2 ~port_base:1 ~port_limit:65535 () in
  let nf1, _ =
    Fabric.add_nf ?backend:b1 fab ~name:"nat1" ~impl:(Nat.impl nat1)
      ~costs:Costs.dummy
  in
  let nf2, _ =
    Fabric.add_nf ?backend:b2 fab ~name:"nat2" ~impl:(Nat.impl nat2)
      ~costs:Costs.dummy
  in
  let sched, packets = build_workload ~flows in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) sched;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  { fab; obs; nat1; nat2; nf1; nf2; packets }

let no_backends _fab = (None, None)

(* --- digests and coverage ------------------------------------------------ *)

let chunk_str (c : Chunk.t) = c.Chunk.kind ^ "|" ^ c.Chunk.data

let digest (i : Nf_api.impl) =
  i.Nf_api.list_perflow Filter.any
  |> List.filter_map (fun fl ->
         Option.map chunk_str (i.Nf_api.export_perflow fl))
  |> List.sort String.compare

type coverage = { live : int; present : int; exact : int }

let zero_cov = { live = 0; present = 0; exact = 0 }

let coverage ~(primary : Nf_api.impl) ~(standby : Nf_api.impl) =
  List.fold_left
    (fun acc fl ->
      match primary.Nf_api.export_perflow fl with
      | None -> acc
      | Some pc -> (
        let acc = { acc with live = acc.live + 1 } in
        match standby.Nf_api.export_perflow fl with
        | None -> acc
        | Some sc ->
          {
            acc with
            present = acc.present + 1;
            exact = (acc.exact + if chunk_str pc = chunk_str sc then 1 else 0);
          }))
    zero_cov
    (primary.Nf_api.list_perflow Filter.any)

(* --- failover strategies ------------------------------------------------- *)

(* Out-of-band full checkpoint: what a periodic Copy_op would ship,
   counted from the real serialized chunks but without charging the
   virtual serialize/transfer time (see the header comment). *)
let checkpoint ~(src : Nf_api.impl) ~(dst : Nf_api.impl) =
  List.fold_left
    (fun bytes fl ->
      match src.Nf_api.export_perflow fl with
      | None -> bytes
      | Some c ->
        dst.Nf_api.import_perflow fl c;
        bytes + Chunk.size c)
    0
    (src.Nf_api.list_perflow Filter.any)

type fo_result = {
  f_label : string;
  f_period : float option;
  f_bytes : int;
  f_cov : coverage;
  f_invalid : int; (* standby invalid-packet drops, all post-reroute *)
  f_recovered : float option;
  f_packets : int;
  f_primary_digest : string list;
  f_standby_digest : string list;
  f_order : int list; (* primary's processed packet ids, frozen at crash *)
  f_reconciled : bool;
}

let snapshot b cov pdig sdig =
  Engine.schedule_at b.fab.engine snap_at (fun () ->
      cov := coverage ~primary:(Nat.impl b.nat1) ~standby:(Nat.impl b.nat2);
      pdig := digest (Nat.impl b.nat1);
      sdig := digest (Nat.impl b.nat2))

let run_periodic ~flows ~period =
  let b = bed ~flows ~make_backends:no_backends () in
  let bytes = ref 0 in
  let cov = ref zero_cov and pdig = ref [] and sdig = ref [] in
  Faults.crash_at b.fab.faults ~node:"nat1" fail_at;
  let rec tick t =
    if t < fail_at then begin
      Engine.schedule_at b.fab.engine t (fun () ->
          bytes :=
            !bytes + checkpoint ~src:(Nat.impl b.nat1) ~dst:(Nat.impl b.nat2));
      tick (t +. period)
    end
  in
  tick (t_up +. period);
  snapshot b cov pdig sdig;
  H.run_at b.fab ~at:reroute_at (fun () ->
      Controller.set_route b.fab.ctrl Filter.any b.nf2);
  {
    f_label = Printf.sprintf "periodic copy, %.0f ms" (1000.0 *. period);
    f_period = Some period;
    f_bytes = !bytes;
    f_cov = !cov;
    f_invalid = Nat.invalid_count b.nat2;
    f_recovered = None;
    f_packets = b.packets;
    f_primary_digest = !pdig;
    f_standby_digest = !sdig;
    f_order = Audit.processed_order ~nf:"nat1" b.fab.audit;
    f_reconciled = true;
  }

(* The oracle for the equality checks: same bed, same crash, no backup
   machinery at all. The primary's behavior must be bit-identical to
   the replicated run's. *)
let run_local_oracle ~flows =
  let b = bed ~flows ~make_backends:no_backends () in
  let cov = ref zero_cov and pdig = ref [] and sdig = ref [] in
  Faults.crash_at b.fab.faults ~node:"nat1" fail_at;
  snapshot b cov pdig sdig;
  H.run_at b.fab ~at:reroute_at (fun () ->
      Controller.set_route b.fab.ctrl Filter.any b.nf2);
  {
    f_label = "no backup (oracle)";
    f_period = None;
    f_bytes = 0;
    f_cov = !cov;
    f_invalid = Nat.invalid_count b.nat2;
    f_recovered = None;
    f_packets = b.packets;
    f_primary_digest = !pdig;
    f_standby_digest = !sdig;
    f_order = Audit.processed_order ~nf:"nat1" b.fab.audit;
    f_reconciled = true;
  }

let run_replicated ~flows =
  let pair = ref None in
  let b =
    bed ~flows
      ~make_backends:(fun fab ->
        let p, s =
          Backend.replicated_pair fab.Fabric.engine ~name:"fo"
            ~faults:fab.Fabric.faults ()
        in
        pair := Some (p, s);
        (Some p, Some s))
      ()
  in
  let app = ref None in
  let cov = ref zero_cov and pdig = ref [] and sdig = ref [] in
  Faults.crash_at b.fab.faults ~node:"nat1" fail_at;
  Proc.spawn b.fab.engine (fun () ->
      let a = Failover.init_standby b.fab.ctrl ~normal:b.nf1 ~standby:b.nf2 () in
      if not (Failover.replicated a) then
        failwith "bench backend: Failover app did not detect the pair";
      app := Some a);
  snapshot b cov pdig sdig;
  H.run_at b.fab ~at:reroute_at (fun () ->
      Failover.fail_over (Option.get !app) ~filter:Filter.any);
  let app = Option.get !app in
  let primary_be, _ = Option.get !pair in
  (* Reconcile the three byte counters: the backend's own stats, the
     Failover app's accessor, and the observability hub. *)
  let hub_bytes =
    Opennf_obs.Metrics.counter_value
      (Opennf_obs.Hub.metrics b.obs)
      "backend.delta.bytes"
  in
  let bytes = Backend.delta_bytes primary_be in
  let reconciled =
    bytes = Failover.delta_bytes app
    && bytes = hub_bytes
    && Failover.bulk_bytes app = 0
  in
  let r =
    {
      f_label = "replicated delta stream";
      f_period = None;
      f_bytes = bytes;
      f_cov = !cov;
      f_invalid = Nat.invalid_count b.nat2;
      f_recovered = Failover.recovered_at app;
      f_packets = b.packets;
      f_primary_digest = !pdig;
      f_standby_digest = !sdig;
      f_order = Audit.processed_order ~nf:"nat1" b.fab.audit;
      f_reconciled = reconciled;
    }
  in
  (r, b)

(* --- move flavors -------------------------------------------------------- *)

type mv_result = {
  m_backend : string;
  m_bytes : int;
  m_chunks : int;
  m_op_s : float;
}

let run_move ~flows ~flavor =
  let label, make_backends =
    match flavor with
    | `Local -> ("local", no_backends)
    | `Shared ->
      ( "shared",
        fun _fab ->
          let b = Backend.shared ~name:"pool" () in
          (Some b, Some b) )
    | `Replicated ->
      ( "replicated",
        fun (fab : Fabric.t) ->
          let p, s =
            Backend.replicated_pair fab.Fabric.engine ~name:"mv"
              ~faults:fab.Fabric.faults ()
          in
          (Some p, Some s) )
  in
  let b = bed ~flows ~make_backends () in
  let report = ref None in
  H.run_at b.fab ~at:(t_end +. 0.1) (fun () ->
      match
        Move.run b.fab.ctrl
          (Move.spec ~src:b.nf1 ~dst:b.nf2 ~filter:Filter.any
             ~guarantee:Move.Loss_free ~parallel:true ())
      with
      | Ok r -> report := Some r
      | Error e -> raise (Op_error.Op_failed e));
  let r = Option.get !report in
  {
    m_backend = label;
    m_bytes = r.Move.state_bytes;
    m_chunks = r.Move.per_chunks;
    m_op_s = Move.duration r;
  }

(* --- per-size sweep ------------------------------------------------------ *)

type size_result = {
  s_flows : int;
  s_packets : int;
  s_failover : fo_result list;
  s_ratio : float; (* fast-checkpoint bytes / delta bytes *)
  s_moves : mv_result list;
  s_reconciled : bool;
}

let sweep_size ~flows =
  let fast = run_periodic ~flows ~period:fast_period in
  let slow = run_periodic ~flows ~period:slow_period in
  let rep, rep_bed = run_replicated ~flows in
  let moves =
    [
      run_move ~flows ~flavor:`Local;
      run_move ~flows ~flavor:`Shared;
      run_move ~flows ~flavor:`Replicated;
    ]
  in
  let ratio = float_of_int fast.f_bytes /. float_of_int (max 1 rep.f_bytes) in
  ( {
      s_flows = flows;
      s_packets = rep.f_packets;
      s_failover = [ fast; slow; rep ];
      s_ratio = ratio;
      s_moves = moves;
      s_reconciled = rep.f_reconciled;
    },
    rep_bed )

(* --- reporting ----------------------------------------------------------- *)

let pct part whole =
  Printf.sprintf "%.1f%%" (100.0 *. float_of_int part /. float_of_int (max 1 whole))

let fo_row (r : fo_result) =
  [
    r.f_label;
    H.mb r.f_bytes;
    string_of_int r.f_cov.live;
    pct r.f_cov.present r.f_cov.live;
    pct r.f_cov.exact r.f_cov.live;
    string_of_int r.f_invalid;
    (match r.f_recovered with
    | Some t -> Printf.sprintf "%.0f ms" (1000.0 *. (t -. fail_at))
    | None -> "-");
  ]

let mv_row (m : mv_result) =
  [
    m.m_backend;
    string_of_int m.m_bytes;
    string_of_int m.m_chunks;
    Printf.sprintf "%.1f ms" (1000.0 *. m.m_op_s);
  ]

let json_fo (r : fo_result) =
  Printf.sprintf
    "        {\"strategy\": %S, \"period_s\": %s, \"bytes\": %d, \"live\": %d, \
     \"present\": %d, \"exact\": %d, \"post_fail_invalid\": %d, \
     \"recovered_s\": %s}"
    r.f_label
    (match r.f_period with Some p -> Printf.sprintf "%.3f" p | None -> "null")
    r.f_bytes r.f_cov.live r.f_cov.present r.f_cov.exact r.f_invalid
    (match r.f_recovered with
    | Some t -> Printf.sprintf "%.6f" t
    | None -> "null")

let json_mv (m : mv_result) =
  Printf.sprintf
    "        {\"backend\": %S, \"state_bytes\": %d, \"chunks\": %d, \"op_s\": %.6f}"
    m.m_backend m.m_bytes m.m_chunks m.m_op_s

let json_size (s : size_result) =
  String.concat "\n"
    [
      Printf.sprintf "    {\"flows\": %d, \"packets\": %d," s.s_flows s.s_packets;
      "      \"failover\": [";
      String.concat ",\n" (List.map json_fo s.s_failover);
      "      ],";
      Printf.sprintf "      \"bytes_ratio_fast_copy_vs_delta\": %.2f," s.s_ratio;
      "      \"move\": [";
      String.concat ",\n" (List.map json_mv s.s_moves);
      "      ],";
      Printf.sprintf "      \"delta_counter_reconciled\": %b}" s.s_reconciled;
    ]

let write_json results =
  let oc = open_out "BENCH_backend.json" in
  output_string oc "{\n  \"bench\": \"backend\",\n";
  Printf.fprintf oc
    "  \"workload\": {\"fail_at\": %.2f, \"keepalive_per_flow_pps\": %.2f, \
     \"churn_batch_frac\": 0.01, \"fast_period_s\": %.3f, \"slow_period_s\": \
     %.3f},\n"
    fail_at ka_per_flow fast_period slow_period;
  output_string oc "  \"sizes\": [\n";
  output_string oc (String.concat ",\n" (List.map json_size results));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  H.note "wrote BENCH_backend.json"

let run () =
  H.section
    "State backends: checkpoint vs delta-stream failover, move cost by backend";
  let results_and_beds = List.map (fun flows -> sweep_size ~flows) (sizes ()) in
  let results = List.map fst results_and_beds in
  List.iter
    (fun (s : size_result) ->
      H.note "%d flows, %d packets:" s.s_flows s.s_packets;
      H.table
        ~header:
          [
            "standby strategy"; "shipped (MB)"; "live @fail"; "present";
            "byte-exact"; "invalid pkts"; "recovery";
          ]
        (List.map fo_row s.s_failover);
      H.note "  fast-checkpoint / delta byte ratio: %.2fx%s" s.s_ratio
        (if s.s_reconciled then "" else "  [COUNTER MISMATCH]");
      H.table
        ~header:[ "move backend"; "state bytes"; "chunks"; "op time" ]
        (List.map mv_row s.s_moves))
    results;
  H.note
    "Expected shape: checkpoints fresh enough to matter re-ship the whole \
     table over and over; the delta stream spends bytes proportional to the \
     packet rate and is byte-exact at the crash instant; shared and \
     replicated moves ship zero state bytes.";
  write_json results;
  (* Metrics snapshot from the largest size's replicated failover run:
     the backend.delta.* counters land next to the usual engine series. *)
  (match List.rev results_and_beds with
  | (last, last_bed) :: _ ->
    let metrics = Opennf_obs.Hub.metrics last_bed.obs in
    Opennf_obs.Metrics.set
      (Opennf_obs.Metrics.gauge metrics "backend.bench.flows")
      (float_of_int last.s_flows);
    Opennf_obs.Metrics.set
      (Opennf_obs.Metrics.gauge metrics "backend.bench.copy_delta_ratio")
      last.s_ratio;
    H.write_metrics ~bench:"backend" last_bed.obs
  | [] -> ())

(* --- @bench-check smoke -------------------------------------------------- *)

let check cond fmt =
  Printf.ksprintf (fun msg -> if not cond then failwith ("backendcheck: " ^ msg)) fmt

let run_backendcheck () =
  H.section "backend check: replicated == local, zero-byte moves, counters";
  let flows = 2_000 in
  let oracle = run_local_oracle ~flows in
  let fast = run_periodic ~flows ~period:fast_period in
  let slow = run_periodic ~flows ~period:slow_period in
  let rep, _bed = run_replicated ~flows in
  (* Replication must not perturb the primary: same packets processed in
     the same order, bit-identical state at the crash. *)
  check (rep.f_order = oracle.f_order) "replicated run diverged from local (processed order)";
  check
    (rep.f_primary_digest = oracle.f_primary_digest)
    "replicated run diverged from local (primary state digest)";
  (* Surprise-failover coverage: every live entry present and
     byte-identical at the standby, no invalid drops after reroute. *)
  check (rep.f_cov.live > 0) "replicated run tracked no flows";
  check
    (rep.f_cov.present = rep.f_cov.live && rep.f_cov.exact = rep.f_cov.live)
    "replicated coverage below 100%% (%d live, %d present, %d exact)"
    rep.f_cov.live rep.f_cov.present rep.f_cov.exact;
  check
    (rep.f_standby_digest = rep.f_primary_digest)
    "standby digest differs from crashed primary";
  check (rep.f_invalid = 0) "replicated standby dropped %d invalid packets"
    rep.f_invalid;
  check (rep.f_recovered <> None) "Failover app never recovered";
  (* The copy-based baseline at matching freshness must cost >= 5x the
     bytes, and at relaxed freshness must be visibly stale. *)
  check
    (fast.f_bytes >= 5 * rep.f_bytes)
    "fast checkpoint only %d bytes vs delta %d (< 5x)" fast.f_bytes rep.f_bytes;
  check
    (slow.f_cov.present < slow.f_cov.live)
    "slow checkpoint unexpectedly fresh (%d/%d present)" slow.f_cov.present
    slow.f_cov.live;
  (* In-scope moves over shared and replicated backends ship nothing. *)
  let mv_local = run_move ~flows ~flavor:`Local in
  let mv_shared = run_move ~flows ~flavor:`Shared in
  let mv_rep = run_move ~flows ~flavor:`Replicated in
  check (mv_local.m_bytes > 0) "local move shipped no state";
  check
    (mv_shared.m_bytes = 0 && mv_shared.m_chunks = 0)
    "shared move shipped %d bytes" mv_shared.m_bytes;
  check
    (mv_rep.m_bytes = 0 && mv_rep.m_chunks = 0)
    "replicated move shipped %d bytes" mv_rep.m_bytes;
  (* Observability counters agree with the bench's own totals. *)
  check rep.f_reconciled "backend.delta.bytes counter disagrees with bench total";
  H.note
    "backend check OK: order/digest equality, 100%% coverage, 0-byte moves, \
     %.1fx byte advantage"
    (float_of_int fast.f_bytes /. float_of_int (max 1 rep.f_bytes))

let () =
  H.register ~id:"backend"
    ~descr:"state backends: checkpoint vs delta failover, move by backend" run;
  H.register ~id:"backendcheck"
    ~descr:"backend smoke: replicated == local, 0-byte moves, counters"
    run_backendcheck
