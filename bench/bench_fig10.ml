(* Figure 10: efficiency of move with guarantees and optimizations.
   Two PRADS instances, 500 flows at 2500 packets/s; move everything.

   (a) total move time for NG, NG+PL, LF+PL, LF+PL+ER, LF+OP+PL+ER
       (paper: 193 / 134 / 218 / ~215 / 426 ms);
   (b) average and maximum added per-packet latency for packets caught
       by the move (paper: LF+PL 185 ms max; ER cuts the average 63%). *)

module Runtime = Opennf_sb.Runtime
open Opennf
module H = Harness

type config = {
  label : string;
  guarantee : Move.guarantee;
  parallel : bool;
  early_release : bool;
  paper_ms : string;
}

let configs =
  [
    { label = "NG"; guarantee = Move.No_guarantee; parallel = false;
      early_release = false; paper_ms = "193" };
    { label = "NG PL"; guarantee = Move.No_guarantee; parallel = true;
      early_release = false; paper_ms = "134" };
    { label = "LF PL"; guarantee = Move.Loss_free; parallel = true;
      early_release = false; paper_ms = "218" };
    { label = "LF PL+ER"; guarantee = Move.Loss_free; parallel = true;
      early_release = true; paper_ms = "~215" };
    { label = "LF+OP PL+ER"; guarantee = Move.Order_preserving;
      parallel = true; early_release = true; paper_ms = "426" };
  ]

let run_config cfg =
  let bed = H.prads_bed () in
  let report = ref None in
  H.run_at bed.H.fab ~at:bed.H.move_at (fun () ->
      let spec =
        Move.spec ~src:bed.H.nf1 ~dst:bed.H.nf2
          ~filter:Opennf_net.Filter.any ~guarantee:cfg.guarantee
          ~parallel:cfg.parallel ~early_release:cfg.early_release ()
      in
      report := Some (Move.run_exn bed.H.fab.ctrl spec));
  let report = Option.get !report in
  let lat = H.affected_latency bed.H.fab.audit in
  let drops = Runtime.tombstone_dropped bed.H.rt1 in
  (report, lat, drops)

let run () =
  H.section
    "Figure 10: move efficiency with guarantees (500 flows, 2500 pkt/s)";
  let rows =
    List.map
      (fun cfg ->
        let report, lat, drops = run_config cfg in
        let module S = Opennf_util.Stats.Summary in
        [
          cfg.label;
          H.ms (Move.duration report);
          cfg.paper_ms;
          string_of_int drops;
          string_of_int report.Move.relayed;
          (if S.count lat = 0 then "-" else H.ms (S.mean lat));
          (if S.count lat = 0 then "-" else H.ms (S.max lat));
        ])
      configs
  in
  H.table
    ~header:
      [
        "config"; "total(ms)"; "paper(ms)"; "dropped"; "relayed";
        "avg-added-lat(ms)"; "max-added-lat(ms)";
      ]
    rows;
  H.note
    "Expected shape: PL < plain; guarantees add time (LF > NG, LF+OP ~2x \
     LF); NG drops packets, LF/OP drop none; ER cuts the average added \
     latency vs plain LF."

let () = H.register ~id:"fig10" ~descr:"move time & latency vs guarantees" run
