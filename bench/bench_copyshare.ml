(* §8.1.1 (text): copy and share efficiency.

   - A parallelized copy of all multi-flow state for the 500-flow PRADS
     workload (paper: ≈111 ms, no drops, no added packet latency).
   - share with strong consistency: every matching packet is serialized
     through the controller, adding ≥13 ms each; the latency stays flat
     as instances grow from 2 to 6 because the puts go out in parallel. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
module H = Harness

let copy_experiment () =
  let bed = H.prads_bed () in
  let report = ref None in
  H.run_at bed.H.fab ~at:bed.H.move_at (fun () ->
      report :=
        Some
          (Copy_op.run_exn bed.H.fab.ctrl ~src:bed.H.nf1 ~dst:bed.H.nf2
             ~filter:Filter.any
             ~scope:[ Opennf_state.Scope.Multi ]
             ()));
  let report = Option.get !report in
  let lat = H.affected_latency bed.H.fab.audit in
  ( Copy_op.duration report,
    report.Copy_op.chunks,
    Opennf_util.Stats.Summary.count lat )

let share_experiment ~rate ~instances =
  let fab = Fabric.create ~seed:77 () in
  let nfs =
    List.init instances (fun i ->
        let prads = Opennf_nfs.Prads.create () in
        let name = Printf.sprintf "prads%d" (i + 1) in
        let nf, _ = Fabric.add_nf fab ~name ~impl:(Opennf_nfs.Prads.impl prads) ~costs:Costs.prads in
        nf)
  in
  (* Light traffic: the strong-consistency path serializes packets, so
     feed it at a rate it can sustain. *)
  let gen = Opennf_trace.Gen.create ~seed:5 () in
  let schedule, _keys =
    Opennf_trace.Gen.steady_flows gen ~flows:4 ~rate ~start:0.5 ~duration:5.0
      ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any (List.hd nfs);
      let share =
        Share.start_exn fab.ctrl ~instances:nfs ~filter:Filter.any
          ~scope:[ Opennf_state.Scope.Multi ]
          ~consistency:Share.Strong ()
      in
      Proc.sleep 6.5;
      Share.stop share);
  Fabric.run fab;
  let audit = fab.audit in
  let stats = Opennf_util.Stats.Summary.create () in
  List.iter
    (fun pkt ->
      match Audit.added_latency audit ~pkt with
      | Some l -> Opennf_util.Stats.Summary.add stats l
      | None -> ())
    (List.sort_uniq Int.compare (Audit.evented_ids audit));
  stats

let run () =
  H.section "Copy and share efficiency (§8.1.1)";
  let duration, chunks, affected = copy_experiment () in
  H.note "parallelized copy of multi-flow state: %sms (%d chunks), %d packets affected (paper: ~111ms, none affected)"
    (H.ms duration) chunks affected;
  let rows =
    List.concat_map
      (fun instances ->
        List.map
          (fun rate ->
            let stats = share_experiment ~rate ~instances in
            let module S = Opennf_util.Stats.Summary in
            [
              string_of_int instances;
              Printf.sprintf "%.0f" rate;
              H.ms (S.mean stats);
              H.ms (S.max stats);
              string_of_int (S.count stats);
            ])
          [ 30.0; 120.0 ])
      [ 2; 3; 4; 6 ]
  in
  H.section "share (strong consistency): per-packet added latency";
  H.table
    ~header:
      [ "instances"; "pkt/s"; "avg-added(ms)"; "max-added(ms)"; "packets" ]
    rows;
  H.note
    "Expected shape: every packet pays a fixed floor (two controller \
     hops; the paper's testbed floor was 13 ms), more when it queues \
     behind an earlier packet's synchronization (higher rate), and the \
     cost stays flat as instances grow (puts go out in parallel)."

let () = H.register ~id:"copyshare" ~descr:"copy time; share strong-consistency latency" run
