(* §8.3 (text): compressing state transfers. In the paper's
   controller-scalability setup (dummy NFs replaying PRADS-derived
   canned state), compressing the transfer shrank the state ~38% and cut
   a 500-flow move from 110 ms to 70 ms — the controller is busy reading
   sockets, so its cost scales with wire bytes. Compression here is a
   real LZ pass over the actual chunk bytes (streaming, with the
   previous chunk as dictionary), so the ratio is measured. *)

module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
module H = Harness

let flows = 500
let subnet = Ipaddr.Prefix.make (Ipaddr.v 10 80 0 0) 16

let keys () =
  let base = Ipaddr.to_int (Ipaddr.v 10 80 0 0) in
  List.init flows (fun k ->
      Flow.make
        ~src:(Ipaddr.of_int (base + (k mod 250) + 1))
        ~dst:(Ipaddr.v 172 31 (k / 250) 1)
        ~proto:Flow.Tcp ~sport:(20000 + k) ~dport:443 ())

let run_move ~compress =
  let fab = Fabric.create ~seed:88 () in
  let d1 = Opennf_nfs.Dummy.create () in
  let d2 = Opennf_nfs.Dummy.create () in
  Opennf_nfs.Dummy.seed_flows d1 (keys ());
  let nf1, _ =
    Fabric.add_nf fab ~name:"src" ~impl:(Opennf_nfs.Dummy.impl d1)
      ~costs:Costs.dummy
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"dst" ~impl:(Opennf_nfs.Dummy.impl d2)
      ~costs:Costs.dummy
  in
  let report = ref None in
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl (Filter.of_src_prefix subnet) nf1);
  H.run_at fab ~at:0.5 (fun () ->
      report :=
        Some
          (Move.run_exn fab.ctrl
             (Move.spec ~src:nf1 ~dst:nf2
                ~filter:(Filter.of_src_prefix subnet)
                ~guarantee:Move.Loss_free ~parallel:true ~compress ())));
  Option.get !report

(* Measure the actual stream-compression ratio of the canned state. *)
let measured_ratio () =
  let d = Opennf_nfs.Dummy.create () in
  Opennf_nfs.Dummy.seed_flows d (keys ());
  let impl = Opennf_nfs.Dummy.impl d in
  let datas =
    List.filter_map
      (fun flowid ->
        Option.map
          (fun c -> c.Opennf_state.Chunk.data)
          (impl.Opennf_sb.Nf_api.export_perflow flowid))
      (impl.Opennf_sb.Nf_api.list_perflow Filter.any)
  in
  Opennf_util.Lz.stream_ratio datas

let run () =
  H.section "§8.3: state compression (dummy NFs, 500 flows)";
  let plain = run_move ~compress:false in
  let compressed = run_move ~compress:true in
  let ratio = measured_ratio () in
  H.table
    ~header:[ "mode"; "move time (ms)"; "paper (ms)" ]
    [
      [ "plain"; H.ms (Move.duration plain); "110" ];
      [ "compressed"; H.ms (Move.duration compressed); "70" ];
    ];
  H.note "measured stream-compression of the state: %.0f%% smaller (paper: ~38%%)"
    (100.0 *. (1.0 -. ratio));
  H.note "move sped up %.0f%% (paper: ~36%%)"
    (100.0 *. (1.0 -. (Move.duration compressed /. Move.duration plain)))

let () = H.register ~id:"sec83" ~descr:"state compression effect on move time" run
