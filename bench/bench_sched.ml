(* Operation scheduler + southbound batching benchmark (ISSUE 3).

   Mixed concurrent workloads of loss-free moves and copies over dummy
   NFs, admitted through {!Opennf.Sched}:

   - disjoint filters at growing concurrency caps: makespan should be
     sublinear in the number of operations (they overlap in virtual
     time), approaching the sequential sum at cap 1;
   - deliberately overlapping operations: the scheduler serializes them,
     so makespan matches the sequential baseline regardless of cap;
   - southbound piece batching on vs off: same transfers, fewer inbound
     controller messages (§8.3), shorter makespan under contention.

   Emits BENCH_sched.json so future PRs can track the trajectory. Sizes
   are kept small: this experiment also runs under `dune build @ci` as a
   bench smoke test. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
module H = Harness

let subnet_prefix i = Ipaddr.Prefix.make (Ipaddr.v 10 (60 + i) 0 0) 16
let server_prefix = Ipaddr.Prefix.make (Ipaddr.v 172 31 0 0) 16

(* Pin both ends: [Filter.overlaps] is connection-level (it also checks
   the mirrored direction), so src-only prefixes always intersect. With
   src and dst both bound, distinct subnets are genuinely disjoint. *)
let op_filter i = Filter.make ~src:(subnet_prefix i) ~dst:server_prefix ()

let keys_in_subnet i n =
  let base = Ipaddr.to_int (Ipaddr.v 10 (60 + i) 0 0) in
  List.init n (fun k ->
      Flow.make
        ~src:(Ipaddr.of_int (base + (k mod 250) + 1))
        ~dst:(Ipaddr.v 172 31 0 1) ~proto:Flow.Tcp
        ~sport:(20000 + k) ~dport:443 ())

type outcome = {
  makespan : float;  (* Virtual s, submit of first to completion of last. *)
  avg_op : float;  (* Mean per-operation virtual duration. *)
  messages : int;  (* Controller inbound messages over the whole run. *)
  peak_active : int;
  peak_waiting : int;
  rep_chunks : int;  (* Chunks summed over the operation reports. *)
  rep_bytes : int;  (* State bytes summed over the operation reports. *)
}

(* [ops] operation slots; every even slot is a loss-free move, every odd
   slot a multi-scope copy, each between its own src/dst dummy pair.
   [overlap] gives every operation the same filter (subnet 0) so the
   scheduler must serialize; otherwise each slot owns subnet [i]. *)
let run_once ~obs ~cap ~ops ~flows ~overlap ~batch =
  let config = { Controller.default_config with sb_batch_bytes = batch } in
  let fab =
    Fabric.create ~seed:(ops + flows) ~obs ~config ~max_concurrent_ops:cap ()
  in
  let pairs =
    List.init ops (fun i ->
        let d1 = Opennf_nfs.Dummy.create () in
        let d2 = Opennf_nfs.Dummy.create () in
        let seed_subnet = if overlap then 0 else i in
        Opennf_nfs.Dummy.seed_flows d1 (keys_in_subnet seed_subnet flows);
        let nf1, _ =
          Fabric.add_nf fab
            ~name:(Printf.sprintf "src%d" i)
            ~impl:(Opennf_nfs.Dummy.impl d1) ~costs:Costs.dummy
        in
        let nf2, _ =
          Fabric.add_nf fab
            ~name:(Printf.sprintf "dst%d" i)
            ~impl:(Opennf_nfs.Dummy.impl d2) ~costs:Costs.dummy
        in
        (i, nf1, nf2))
  in
  Proc.spawn fab.engine (fun () ->
      List.iter
        (fun (i, nf1, _) ->
          let sn = if overlap then 0 else i in
          Controller.set_route fab.ctrl (op_filter sn) nf1)
        pairs);
  let durations = ref [] in
  let chunks = ref 0 in
  let bytes = ref 0 in
  let finished = ref 0.0 in
  H.run_at fab ~at:1.0 (fun () ->
      let pending =
        List.map
          (fun (i, nf1, nf2) ->
            let filter = op_filter (if overlap then 0 else i) in
            if i mod 2 = 0 then
              let ivar =
                Move.submit fab.sched
                  (Move.spec ~src:nf1 ~dst:nf2 ~filter ~guarantee:Move.Loss_free
                     ~parallel:true ())
              in
              fun () ->
                match Proc.Ivar.read ivar with
                | Ok r ->
                  durations := Move.duration r :: !durations;
                  chunks := !chunks + r.Move.per_chunks + r.Move.multi_chunks;
                  bytes := !bytes + r.Move.state_bytes
                | Error e -> failwith (Format.asprintf "%a" Op_error.pp e)
            else
              let ivar =
                Copy_op.submit fab.sched ~src:nf1 ~dst:nf2 ~filter
                  ~scope:[ Opennf_state.Scope.Per ] ()
              in
              fun () ->
                match Proc.Ivar.read ivar with
                | Ok r ->
                  durations := Copy_op.duration r :: !durations;
                  chunks := !chunks + r.Copy_op.chunks;
                  bytes := !bytes + r.Copy_op.state_bytes
                | Error e -> failwith (Format.asprintf "%a" Op_error.pp e))
          pairs
      in
      List.iter (fun wait -> wait ()) pending;
      finished := Engine.now fab.engine);
  let stats = Sched.stats fab.sched in
  let n = max 1 (List.length !durations) in
  {
    makespan = !finished -. 1.0;
    avg_op = List.fold_left ( +. ) 0.0 !durations /. float_of_int n;
    messages = Controller.messages_handled fab.ctrl;
    peak_active = stats.Sched.peak_active;
    peak_waiting = stats.Sched.peak_waiting;
    rep_chunks = !chunks;
    rep_bytes = !bytes;
  }

let ops = 8
let flows = 60

type scenario = {
  name : string;
  cap : int;
  overlap : bool;
  batch : int option;
}

let scenarios =
  [
    { name = "disjoint cap=1"; cap = 1; overlap = false; batch = None };
    { name = "disjoint cap=2"; cap = 2; overlap = false; batch = None };
    { name = "disjoint cap=4"; cap = 4; overlap = false; batch = None };
    { name = "disjoint cap=8"; cap = 8; overlap = false; batch = None };
    { name = "overlapping cap=8"; cap = 8; overlap = true; batch = None };
    { name = "disjoint cap=8 batch=4k"; cap = 8; overlap = false;
      batch = Some 4096 };
  ]

let json_row s o =
  Printf.sprintf
    "    {\"scenario\": %S, \"cap\": %d, \"overlap\": %b, \"batch_bytes\": %s, \
     \"ops\": %d, \"flows_per_op\": %d, \"makespan_virtual_s\": %.6f, \
     \"avg_op_virtual_s\": %.6f, \"ctrl_messages\": %d, \"peak_active\": %d, \
     \"peak_waiting\": %d}"
    s.name s.cap s.overlap
    (match s.batch with None -> "null" | Some b -> string_of_int b)
    ops flows o.makespan o.avg_op o.messages o.peak_active o.peak_waiting

(* --- shard scaling ------------------------------------------------------- *)

(* Controller-CPU-bound: 8 disjoint moves of 200 flows each is ~29 ms of
   serialized controller CPU per move, so the serial fabric's makespan is
   dominated by the one inbox worker and sharding it shows up directly. *)
let sweep_ops = 8
let sweep_flows = 200

let shard_sweep () =
  let runs =
    List.map
      (fun shards ->
        H.run_shard_workload ~ops:sweep_ops ~flows:sweep_flows ~shards ())
      (H.shard_counts ())
  in
  let serial =
    match runs with
    | first :: _ when first.H.s_shards = 1 -> Some first
    | _ -> None
  in
  let speedup r =
    match serial with
    | Some s -> s.H.s_makespan /. r.H.s_makespan
    | None -> 1.0
  in
  H.table
    ~header:
      [ "shards"; "makespan (ms)"; "speedup"; "cross-shard ops"; "ctrl msgs" ]
    (List.map
       (fun r ->
         [
           string_of_int r.H.s_shards; H.ms r.H.s_makespan;
           Printf.sprintf "%.2fx" (speedup r); string_of_int r.H.s_cross;
           string_of_int r.H.s_messages;
         ])
       runs);
  (match serial with
  | Some s
    when List.exists (fun r -> r.H.s_digest <> s.H.s_digest) runs ->
    H.note "shard sweep: semantic DIVERGENCE between shard counts"
  | _ -> H.note "shard sweep: identical semantic digests at every count");
  (runs, speedup)

let json_shard_row speedup r =
  Printf.sprintf
    "    {\"shards\": %d, \"ops\": %d, \"flows_per_op\": %d, \
     \"makespan_virtual_s\": %.6f, \"speedup_vs_serial\": %.2f, \
     \"cross_shard_ops\": %d, \"ctrl_messages\": %d}"
    r.H.s_shards sweep_ops sweep_flows r.H.s_makespan (speedup r) r.H.s_cross
    r.H.s_messages

let run () =
  H.section
    "Scheduler: mixed moves+copies makespan vs concurrency cap (dummy NFs)";
  (* One metrics-only hub shared by every scenario's fabric: the final
     snapshot aggregates the whole bench and must reconcile with the
     per-operation reports. *)
  let obs = Opennf_obs.Hub.create () in
  let rows =
    List.map
      (fun s ->
        (s, run_once ~obs ~cap:s.cap ~ops ~flows ~overlap:s.overlap ~batch:s.batch))
      scenarios
  in
  H.table
    ~header:
      [ "scenario"; "makespan (ms)"; "avg op (ms)"; "ctrl msgs";
        "peak active"; "peak waiting" ]
    (List.map
       (fun (s, o) ->
         [ s.name; H.ms o.makespan; H.ms o.avg_op; string_of_int o.messages;
           string_of_int o.peak_active; string_of_int o.peak_waiting ])
       rows);
  H.note
    "Expected shape: disjoint-filter makespan shrinks as the cap grows \
     (operations overlap in virtual time); overlapping operations \
     serialize to the cap=1 shape; piece batching cuts controller \
     messages for the same transfers.";
  H.section "Sharded control plane: disjoint-move makespan vs shard count";
  (* Separate fabrics without the shared hub: a sharded fabric interns
     shard-suffixed metric names, which would pollute the aggregated
     snapshot the reconciliation below checks. *)
  let shard_runs, speedup = shard_sweep () in
  let oc = open_out "BENCH_sched.json" in
  output_string oc "{\n  \"bench\": \"sched\",\n  \"rows\": [\n";
  output_string oc (String.concat ",\n" (List.map (fun (s, o) -> json_row s o) rows));
  output_string oc "\n  ],\n  \"shard_sweep\": [\n";
  output_string oc
    (String.concat ",\n" (List.map (json_shard_row speedup) shard_runs));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  H.note "wrote BENCH_sched.json";
  let metrics = Opennf_obs.Hub.metrics obs in
  let cv = Opennf_obs.Metrics.counter_value metrics in
  let want_ops = List.length scenarios * ops in
  let want_chunks = List.fold_left (fun a (_, o) -> a + o.rep_chunks) 0 rows in
  let want_bytes = List.fold_left (fun a (_, o) -> a + o.rep_bytes) 0 rows in
  H.note
    "metrics reconciliation: op.completed=%d (reports: %d), op.chunks=%d \
     (reports: %d), op.bytes=%d (reports: %d)%s"
    (cv "op.completed") want_ops (cv "op.chunks") want_chunks (cv "op.bytes")
    want_bytes
    (if
       cv "op.completed" = want_ops
       && cv "op.chunks" = want_chunks
       && cv "op.bytes" = want_bytes
     then " -- ok"
     else " -- MISMATCH");
  H.write_metrics ~bench:"sched" obs

(* Standalone gate for @bench-check: the same disjoint workload on 1, 2
   and 4 shards must produce identical semantic digests (reports + final
   stores), and a repeated sharded run must reproduce its virtual
   makespan exactly (the sharded control plane stays deterministic). *)
let run_shardcheck () =
  H.section "Shard equivalence (sharded vs serial control plane)";
  let ops = 6 and flows = 40 in
  let run shards = H.run_shard_workload ~ops ~flows ~shards () in
  let serial = run 1 in
  let sharded = List.map run [ 2; 4 ] in
  List.iter
    (fun r ->
      H.note "shards=%d: makespan %s ms, cross-shard ops %d, digest %s"
        r.H.s_shards (H.ms r.H.s_makespan) r.H.s_cross
        (if r.H.s_digest = serial.H.s_digest then "identical" else "DIVERGED"))
    (serial :: sharded);
  if List.exists (fun r -> r.H.s_digest <> serial.H.s_digest) sharded then
    failwith "shard check: sharded run diverged from the serial control plane";
  let again = run 4 in
  if again <> List.nth sharded 1 then
    failwith "shard check: repeated 4-shard run was not deterministic"

let () =
  H.register ~id:"sched" ~descr:"op scheduler + sb batching" run;
  H.register ~id:"shardcheck"
    ~descr:"sharded vs serial control plane: semantic-digest equivalence gate"
    run_shardcheck
