(* §2.1's "fast failure recovery with low resource footprint" claim:
   periodically snapshotting all NF state costs bandwidth and leaves the
   backup stale between snapshots; copying state when it is updated
   (notify-driven, Figure 9) spends bytes proportional to the update
   rate and keeps the backup fresh.

   Workload: Bro-like IDS monitoring churning HTTP sessions; the primary
   "fails" at t = 6 s. We report the bytes shipped to the standby and
   how much of the primary's state the standby actually holds at the
   instant of failure. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
module Scope = Opennf_state.Scope
open Opennf_net
open Opennf
module H = Harness

let fail_at = 6.0

let workload fab =
  let gen = Opennf_trace.Gen.create ~seed:14 () in
  (* A new short HTTP session every 100 ms: state churns constantly. *)
  List.iter
    (fun i ->
      List.iter (fun (at, p) -> Fabric.inject_at fab at p)
        (Opennf_trace.Gen.http_session gen
           ~client:(Ipaddr.v 10 0 3 (1 + (i mod 200)))
           ~server:(Ipaddr.v 93 184 216 34)
           ~sport:(25000 + i)
           ~start:(0.2 +. (0.1 *. float_of_int i))
           ~url:(Printf.sprintf "/s%d" i)
           ~body:(String.make 2500 'w') ()))
    (List.init 70 Fun.id)

let bed () =
  let fab = Fabric.create ~seed:14 () in
  let primary_ids = Opennf_nfs.Ids.create () in
  let standby_ids = Opennf_nfs.Ids.create () in
  let primary, _ =
    Fabric.add_nf fab ~name:"primary" ~impl:(Opennf_nfs.Ids.impl primary_ids)
      ~costs:Costs.bro
  in
  let standby, _ =
    Fabric.add_nf fab ~name:"standby" ~impl:(Opennf_nfs.Ids.impl standby_ids)
      ~costs:Costs.bro
  in
  workload fab;
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any primary);
  (fab, primary_ids, standby_ids, primary, standby)

(* Coverage = connections present at the standby at the failure instant
   over connections live at the primary. *)
let snapshot_coverage primary_ids standby_ids =
  let p = Opennf_nfs.Ids.conn_count primary_ids in
  let s = Opennf_nfs.Ids.conn_count standby_ids in
  (p, s)

let run_periodic ~period =
  let fab, primary_ids, standby_ids, primary, standby = bed () in
  let bytes = ref 0 in
  let coverage = ref (0, 0) in
  Proc.spawn fab.engine (fun () ->
      let rec loop () =
        Proc.sleep period;
        if Engine.now fab.engine < fail_at then begin
          let r =
            Copy_op.run_exn fab.ctrl ~src:primary ~dst:standby ~filter:Filter.any
              ~scope:[ Scope.Per; Scope.Multi; Scope.All ] ()
          in
          bytes := !bytes + r.Copy_op.state_bytes;
          loop ()
        end
      in
      loop ());
  Engine.schedule_at fab.engine fail_at (fun () ->
      coverage := snapshot_coverage primary_ids standby_ids);
  Fabric.run fab;
  (!bytes, !coverage)

let run_incremental () =
  let fab, primary_ids, standby_ids, primary, standby = bed () in
  let coverage = ref (0, 0) in
  let app = ref None in
  Proc.spawn fab.engine (fun () ->
      app :=
        Some
          (Opennf_apps.Failover.init_standby fab.ctrl ~normal:primary ~standby
             ()));
  Engine.schedule_at fab.engine fail_at (fun () ->
      coverage := snapshot_coverage primary_ids standby_ids);
  Fabric.run fab;
  (Opennf_apps.Failover.bytes_transferred (Option.get !app), !coverage)

let row label (bytes, (at_primary, at_standby)) =
  [
    label;
    H.kb bytes;
    string_of_int at_standby;
    string_of_int at_primary;
    Printf.sprintf "%.0f%%"
      (100.0 *. float_of_int at_standby /. float_of_int (max 1 at_primary));
  ]

let run () =
  H.section "Failure-recovery footprint (§2.1): periodic vs notify-driven backup";
  H.table
    ~header:
      [
        "strategy"; "bytes shipped (KB)"; "conns at standby @fail";
        "conns at primary @fail"; "coverage";
      ]
    [
      row "periodic, 5s" (run_periodic ~period:5.0);
      row "periodic, 1s" (run_periodic ~period:1.0);
      row "notify-driven (Fig. 9)" (run_incremental ());
    ];
  H.note
    "Expected shape: a slow periodic snapshot is cheap but stale at the \
     failure instant; a fast one is fresh but ships the whole state over \
     and over; the notify-driven copy is both fresh and proportional to \
     the update rate."

let () =
  H.register ~id:"failover" ~descr:"backup footprint: periodic vs notify-driven" run
