(* Shared experiment scaffolding: table rendering, testbed builders and
   measurement helpers used by every bench_* module. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
module Runtime = Opennf_sb.Runtime
open Opennf_net
open Opennf

(* --- output ------------------------------------------------------------ *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let ms v = Printf.sprintf "%.1f" (1000.0 *. v)
let mb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1_048_576.0)
let kb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1024.0)

(* --- wall-clock measurement ---------------------------------------------- *)

type timed = {
  t_min : float;  (** Best of the repeats (s) — the noise-robust estimate. *)
  t_spread : float;  (** max - min over the repeats (s): run-to-run jitter. *)
  t_repeats : int;
}

(* Min-of-k wall time of [f], rebuilding everything each repeat. The
   minimum is the estimate (scheduling noise and cold caches only ever
   add time); the spread is recorded next to it in the BENCH JSON so a
   consumer gating on a ratio can judge whether the numbers are stable
   enough to gate on. OPENNF_BENCH_REPEATS overrides [k]. *)
let time_min_of ?(k = 3) f =
  let k =
    match Sys.getenv_opt "OPENNF_BENCH_REPEATS" with
    | Some s -> Stdlib.max 1 (int_of_string (String.trim s))
    | None -> k
  in
  let result = ref None in
  let times =
    List.init k (fun _ ->
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        let r = f () in
        result := Some r;
        Unix.gettimeofday () -. t0)
  in
  let mn = List.fold_left Float.min infinity times in
  let mx = List.fold_left Float.max neg_infinity times in
  ({ t_min = mn; t_spread = mx -. mn; t_repeats = k }, Option.get !result)

(* --- testbeds ----------------------------------------------------------- *)

type prads_bed = {
  fab : Fabric.t;
  nf1 : Controller.nf;
  nf2 : Controller.nf;
  rt1 : Runtime.t;
  rt2 : Runtime.t;
  keys : Flow.key list;
  move_at : float;
      (** Earliest time every flow's state exists at nf1 (the paper
          moves "once state for 500 flows has been created"). *)
}

(* The §8.1.1 testbed: two PRADS monitors, [flows] flows at [rate]
   packets/second initially routed to the first instance. *)
let prads_bed ?(seed = 101) ?(flows = 500) ?(rate = 2500.0) ?duration
    ?packet_out_rate ?resilience ?monitor () =
  let fab = Fabric.create ~seed ?packet_out_rate ?resilience ?monitor () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, rt1 =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl prads1)
      ~costs:Costs.prads
  in
  let nf2, rt2 =
    Fabric.add_nf fab ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl prads2)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create ~seed:(seed * 3) () in
  let handshakes = 2.0 *. float_of_int flows /. rate in
  let move_at = 0.05 +. handshakes +. 0.5 in
  let duration =
    match duration with Some d -> d | None -> handshakes +. 2.5
  in
  let schedule, keys =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05 ~duration ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  { fab; nf1; nf2; rt1; rt2; keys; move_at }

(* Run [body] at virtual time [at], then the whole simulation. *)
let run_at ?workers fab ~at body =
  Engine.schedule_at fab.Fabric.engine at (fun () ->
      Proc.spawn fab.Fabric.engine body);
  Fabric.run ?workers fab

(* Added latency (s) of the packets a move affected: those carried in
   events or buffered at the destination. *)
let affected_latency audit =
  let ids =
    List.sort_uniq Int.compare (Audit.evented_ids audit @ Audit.buffered_ids audit)
  in
  let stats = Opennf_util.Stats.Summary.create () in
  List.iter
    (fun pkt ->
      match Audit.added_latency audit ~pkt with
      | Some l -> Opennf_util.Stats.Summary.add stats l
      | None -> ())
    ids;
  stats

(* --- sharded control plane ----------------------------------------------- *)

(* The shard counts a bench sweeps. OPENNF_SHARDS pins the whole sweep
   to one count (the same variable Fabric.create reads as its default),
   so `OPENNF_SHARDS=2 ./main.exe sched` measures exactly that
   configuration. *)
let shard_counts ?(default = [ 1; 2; 4 ]) () =
  match Sys.getenv_opt "OPENNF_SHARDS" with
  | None -> default
  | Some s -> [ int_of_string (String.trim s) ]

type shard_run = {
  s_shards : int;
  s_makespan : float;  (* Virtual s, submission to completion of last. *)
  s_cross : int;  (* Operations admitted via the cross-shard handshake. *)
  s_messages : int;  (* Inbound controller messages, summed over shards. *)
  s_digest : int64;  (* Semantic outcome digest (reports + final stores). *)
  s_domains : int;  (* Worker domains a parallel run stepped on; 0 serial. *)
}

(* The shard-scaling workload: [ops] disjoint loss-free moves between
   dummy pairs, pair [i] homed on shard [i mod shards]. Controller CPU
   dominates (3 inbound messages per flow), so the virtual makespan
   measures how well the control plane parallelizes; the digest proves
   the sharded run computed the same thing as the serial one. [par]
   runs each shard on its own engine/domain (the ISSUE 9 parallel
   path); [obs]/[shard_obs] attach tracing hubs for canonical trace
   comparison; [workers] caps the domains of a parallel run. *)
(* [monitor] attaches the live guarantee checkers ({!Fabric.create});
   [on_fabric] runs after the simulation completes, before the fabric is
   dropped — the moncheck gate reads {!Fabric.verdict} through it. *)
let run_shard_workload ?(seed = 42) ?obs ?shard_obs ?par ?workers ?monitor
    ?on_fabric ~ops ~flows ~shards () =
  let subnet i = Ipaddr.Prefix.make (Ipaddr.v 10 (160 + i) 0 0) 16 in
  let servers = Ipaddr.Prefix.make (Ipaddr.v 172 31 0 0) 16 in
  let filter i = Filter.make ~src:(subnet i) ~dst:servers () in
  let keys i n =
    let base = Ipaddr.to_int (Ipaddr.v 10 (160 + i) 0 0) in
    List.init n (fun k ->
        Flow.make
          ~src:(Ipaddr.of_int (base + (k mod 250) + 1))
          ~dst:(Ipaddr.v 172 31 0 1) ~proto:Flow.Tcp ~sport:(20000 + k)
          ~dport:443 ())
  in
  let fab = Fabric.create ~seed ?obs ?shard_obs ?par ?monitor ~shards () in
  let pairs =
    List.init ops (fun i ->
        let d1 = Opennf_nfs.Dummy.create () in
        let d2 = Opennf_nfs.Dummy.create () in
        Opennf_nfs.Dummy.seed_flows d1 (keys i flows);
        let home = i mod shards in
        let nf1, _ =
          Fabric.add_nf fab ~shard:home
            ~name:(Printf.sprintf "src%d" i)
            ~impl:(Opennf_nfs.Dummy.impl d1) ~costs:Costs.dummy
        in
        let nf2, _ =
          Fabric.add_nf fab ~shard:home
            ~name:(Printf.sprintf "dst%d" i)
            ~impl:(Opennf_nfs.Dummy.impl d2) ~costs:Costs.dummy
        in
        (i, nf1, nf2, d1, d2))
  in
  Proc.spawn fab.engine (fun () ->
      List.iter
        (fun (i, nf1, _, _, _) -> Controller.set_route fab.ctrl (filter i) nf1)
        pairs);
  let finished = ref 0.0 in
  let digest = ref (Opennf_util.Hashing.fnv1a64 "shards") in
  let fold i = digest := Opennf_util.Hashing.combine !digest (Int64.of_int i) in
  run_at ?workers fab ~at:1.0 (fun () ->
      let ivars =
        List.map
          (fun (i, nf1, nf2, _, _) ->
            Move.submit_sharded fab.Fabric.group
              (Move.spec ~src:nf1 ~dst:nf2 ~filter:(filter i)
                 ~guarantee:Move.Loss_free ~parallel:true ()))
          pairs
      in
      List.iter
        (fun ivar ->
          match Proc.Ivar.read ivar with
          | Ok r ->
            fold r.Move.per_chunks;
            fold r.Move.state_bytes
          | Error e -> failwith (Format.asprintf "%a" Op_error.pp e))
        ivars;
      finished := Engine.now fab.Fabric.engine);
  List.iter
    (fun (_, _, _, d1, d2) ->
      fold (Opennf_nfs.Dummy.flow_count d1);
      fold (Opennf_nfs.Dummy.imported_count d2))
    pairs;
  Option.iter (fun f -> f fab) on_fabric;
  {
    s_shards = shards;
    s_makespan = !finished -. 1.0;
    s_cross = Opennf.Shard.cross_shard_ops fab.Fabric.group;
    s_messages = Opennf.Shard.messages_handled fab.Fabric.group;
    s_digest = !digest;
    s_domains =
      (match fab.Fabric.par with
      | Some p -> Opennf_sim.Par.workers_used p
      | None -> 0);
  }

(* --- metrics snapshots --------------------------------------------------- *)

(* Metrics snapshot written next to the BENCH_*.json files. A separate
   file on purpose: the committed BENCH baselines must stay
   byte-identical whether or not a bench carries an observability hub. *)
let write_metrics ~bench hub =
  let path = Printf.sprintf "METRICS_%s.json" bench in
  let oc = open_out path in
  output_string oc
    (Opennf_obs.Export.metrics_json (Opennf_obs.Hub.metrics hub));
  output_string oc "\n";
  close_out oc;
  note "wrote %s" path

(* --- registry ------------------------------------------------------------ *)

type experiment = { id : string; descr : string; run : unit -> unit }

let experiments : experiment list ref = ref []
let register ~id ~descr run = experiments := { id; descr; run } :: !experiments
let all () = List.rev !experiments
