(* Shared experiment scaffolding: table rendering, testbed builders and
   measurement helpers used by every bench_* module. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
module Runtime = Opennf_sb.Runtime
open Opennf_net
open Opennf

(* --- output ------------------------------------------------------------ *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let ms v = Printf.sprintf "%.1f" (1000.0 *. v)
let mb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1_048_576.0)
let kb bytes = Printf.sprintf "%.1f" (float_of_int bytes /. 1024.0)

(* --- testbeds ----------------------------------------------------------- *)

type prads_bed = {
  fab : Fabric.t;
  nf1 : Controller.nf;
  nf2 : Controller.nf;
  rt1 : Runtime.t;
  rt2 : Runtime.t;
  keys : Flow.key list;
  move_at : float;
      (** Earliest time every flow's state exists at nf1 (the paper
          moves "once state for 500 flows has been created"). *)
}

(* The §8.1.1 testbed: two PRADS monitors, [flows] flows at [rate]
   packets/second initially routed to the first instance. *)
let prads_bed ?(seed = 101) ?(flows = 500) ?(rate = 2500.0) ?duration
    ?packet_out_rate () =
  let fab = Fabric.create ~seed ?packet_out_rate () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, rt1 =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl prads1)
      ~costs:Costs.prads
  in
  let nf2, rt2 =
    Fabric.add_nf fab ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl prads2)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create ~seed:(seed * 3) () in
  let handshakes = 2.0 *. float_of_int flows /. rate in
  let move_at = 0.05 +. handshakes +. 0.5 in
  let duration =
    match duration with Some d -> d | None -> handshakes +. 2.5
  in
  let schedule, keys =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05 ~duration ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  { fab; nf1; nf2; rt1; rt2; keys; move_at }

(* Run [body] at virtual time [at], then the whole simulation. *)
let run_at fab ~at body =
  Engine.schedule_at fab.Fabric.engine at (fun () ->
      Proc.spawn fab.Fabric.engine body);
  Fabric.run fab

(* Added latency (s) of the packets a move affected: those carried in
   events or buffered at the destination. *)
let affected_latency audit =
  let ids =
    List.sort_uniq Int.compare (Audit.evented_ids audit @ Audit.buffered_ids audit)
  in
  let stats = Opennf_util.Stats.Summary.create () in
  List.iter
    (fun pkt ->
      match Audit.added_latency audit ~pkt with
      | Some l -> Opennf_util.Stats.Summary.add stats l
      | None -> ())
    ids;
  stats

(* --- metrics snapshots --------------------------------------------------- *)

(* Metrics snapshot written next to the BENCH_*.json files. A separate
   file on purpose: the committed BENCH baselines must stay
   byte-identical whether or not a bench carries an observability hub. *)
let write_metrics ~bench hub =
  let path = Printf.sprintf "METRICS_%s.json" bench in
  let oc = open_out path in
  output_string oc
    (Opennf_obs.Export.metrics_json (Opennf_obs.Hub.metrics hub));
  output_string oc "\n";
  close_out oc;
  note "wrote %s" path

(* --- registry ------------------------------------------------------------ *)

type experiment = { id : string; descr : string; run : unit -> unit }

let experiments : experiment list ref = ref []
let register ~id ~descr run = experiments := { id; descr; run } :: !experiments
let all () = List.rev !experiments
