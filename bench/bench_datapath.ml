(* Data-path indexing benchmark (ISSUE 1).

   Measures, at 10k / 100k / 1M installed flows:

   - flow-table lookup cost (and packets/sec) for the indexed path —
     exact-match hash + priority-bucketed wildcards + per-flow decision
     cache — against the retained linear-scan reference
     ([Flowtable.lookup_reference], the seed implementation's shape);
   - exact-filter [Store.Perflow.matching] (the getPerflow hot path of a
     single-flow move) against the fold-based reference;
   - end-to-end wall-clock and virtual latency of a loss-free
     single-flow move out of a PRADS instance holding that many flows.

   Emits machine-readable BENCH_datapath.json next to the working
   directory so future PRs can track the trajectory. *)

module H = Harness
module Rng = Opennf_util.Rng
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

let sizes = [ 10_000; 100_000; 1_000_000 ]

(* Deterministic distinct flows; 64 flows per source host so host-scoped
   queries have a fixed-size answer at every table size. *)
let key_of_int i =
  Flow.make
    ~src:(Ipaddr.of_int (0x0A000000 lor (i lsr 6)))
    ~dst:(Ipaddr.of_int 0xC0A80101)
    ~sport:(1024 + (i land 63))
    ~dport:80 ()

let packet_of_int i =
  Packet.create ~id:i ~key:(key_of_int i) ~sent_at:0.0 ()

let seconds_per f ~iters =
  let t0 = Sys.time () in
  for _ = 1 to iters do
    f ()
  done;
  (Sys.time () -. t0) /. float_of_int iters

(* Best of [reps] repetitions: the minimum discards GC/scheduler noise,
   the standard microbenchmark estimator. *)
let best_of ?(reps = 5) f ~iters =
  let best = ref infinity in
  for _ = 1 to reps do
    best := Float.min !best (seconds_per f ~iters)
  done;
  !best

let ns v = 1e9 *. v

(* --- flow-table lookup -------------------------------------------------- *)

type ft_row = { ft_cold : float; ft_warm : float; ft_ref : float }

let bench_flowtable n =
  let table = Flowtable.create () in
  for i = 0 to n - 1 do
    let f = Filter.of_key (key_of_int i) in
    Flowtable.install table ~cookie:i ~priority:100
      ~filters:[ f; Filter.mirror f ]
      ~actions:[ Flowtable.Forward "nf" ]
  done;
  (* One low-priority catch-all, as a realistic wildcard fallback. *)
  Flowtable.install table ~cookie:n ~priority:10 ~filters:[ Filter.any ]
    ~actions:[ Flowtable.To_controller ];
  (* Fixed-size active working set at every table size: the controlled
     variable is installed-flow count, the traffic mix is held constant. *)
  let rng = Rng.create ~seed:17 in
  let sample =
    Array.init 4096 (fun _ -> packet_of_int (Rng.int rng n))
  in
  let m = Array.length sample in
  let idx = ref 0 in
  let lookup_next () =
    ignore (Flowtable.lookup table sample.(!idx));
    idx := if !idx + 1 >= m then 0 else !idx + 1
  in
  (* Cold: first visit of each sampled flow populates the decision
     cache. Warm: every lookup is a cache hit. *)
  let ft_cold = seconds_per lookup_next ~iters:m in
  let ft_warm = best_of lookup_next ~iters:(4 * m) in
  let ref_iters = max 3 (200_000 / n) in
  let ft_ref =
    seconds_per
      (fun () ->
        ignore (Flowtable.lookup_reference table sample.(!idx));
        idx := if !idx + 1 >= m then 0 else !idx + 1)
      ~iters:ref_iters
  in
  { ft_cold; ft_warm; ft_ref }

(* --- per-flow state getters --------------------------------------------- *)

type store_row = {
  st_get : float;  (* NF-side getPerflow: list matching flowids + export. *)
  st_get_ref : float;  (* Same, but enumerating via the reference fold. *)
  st_exact : float;  (* Raw indexed Store.Perflow.matching probe. *)
  st_exact_ref : float;  (* Raw fold-based reference. *)
  st_host : float;  (* Host-scoped matching via the per-host index. *)
  st_host_ref : float;
}

let bench_store n =
  (* A PRADS instance holding [n] flows serves the NF-level getter; a
     parallel plain store with the same keys carries the raw probes. *)
  let prads = Opennf_nfs.Prads.create () in
  let impl = Opennf_nfs.Prads.impl prads in
  let store = Opennf_state.Store.Perflow.create () in
  for i = 0 to n - 1 do
    impl.Opennf_sb.Nf_api.process_packet (packet_of_int i);
    Opennf_state.Store.Perflow.set store (key_of_int i) i
  done;
  (* Fixed-size set of targeted flows at every store size, mirroring
     the lookup bench's controlled working set. *)
  let rng = Rng.create ~seed:23 in
  let exact_filters =
    Array.init 1024 (fun _ -> Filter.of_key (key_of_int (Rng.int rng n)))
  in
  let host_filters =
    Array.init 256 (fun _ ->
        Filter.of_src_host (Ipaddr.of_int (0x0A000000 lor (Rng.int rng n lsr 6))))
  in
  let cycle arr =
    let i = ref 0 in
    fun () ->
      let v = arr.(!i) in
      i := if !i + 1 >= Array.length arr then 0 else !i + 1;
      v
  in
  let next_exact = cycle exact_filters and next_host = cycle host_filters in
  let export flowid = ignore (impl.Opennf_sb.Nf_api.export_perflow flowid) in
  let st_get =
    best_of
      (fun () ->
        List.iter export (impl.Opennf_sb.Nf_api.list_perflow (next_exact ())))
      ~iters:20_000
  in
  let st_exact =
    best_of
      (fun () -> ignore (Opennf_state.Store.Perflow.matching store (next_exact ())))
      ~iters:50_000
  in
  let st_host =
    best_of
      (fun () -> ignore (Opennf_state.Store.Perflow.matching store (next_host ())))
      ~iters:2_000
  in
  let ref_iters = max 3 (100_000 / n) in
  let st_get_ref =
    seconds_per
      (fun () ->
        Opennf_state.Store.Perflow.matching_reference store (next_exact ())
        |> List.iter (fun (k, _) -> export (Filter.of_key k)))
      ~iters:ref_iters
  in
  let st_exact_ref =
    seconds_per
      (fun () ->
        ignore (Opennf_state.Store.Perflow.matching_reference store (next_exact ())))
      ~iters:ref_iters
  in
  let st_host_ref =
    seconds_per
      (fun () ->
        ignore (Opennf_state.Store.Perflow.matching_reference store (next_host ())))
      ~iters:ref_iters
  in
  { st_get; st_get_ref; st_exact; st_exact_ref; st_host; st_host_ref }

(* --- end-to-end move ---------------------------------------------------- *)

type move_row = { mv_wall : float; mv_virtual : float }

(* Single-flow loss-free move out of a PRADS instance already holding
   [n] flows of state. The state is preloaded directly into the NF
   implementation (outside the simulation) so the bench isolates the
   move itself. [obs] is shared across the sizes, so one registry (and
   one trace buffer) accumulates all three moves — the critical-path
   reconciliation below sums them against [op.duration_s]. *)
let bench_move ~obs n =
  let fab = Fabric.create ~seed:5 ~obs () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, _rt1 =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl prads1)
      ~costs:Costs.prads
  in
  let nf2, _rt2 =
    Fabric.add_nf fab ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl prads2)
      ~costs:Costs.prads
  in
  let impl1 = Opennf_nfs.Prads.impl prads1 in
  for i = 0 to n - 1 do
    impl1.Opennf_sb.Nf_api.process_packet (packet_of_int i)
  done;
  let filter = Filter.of_key (key_of_int (n / 2)) in
  let wall = ref 0.0 and virt = ref 0.0 in
  Fabric.run_proc fab (fun () ->
      Controller.set_route fab.ctrl Filter.any nf1;
      let t0 = Sys.time () in
      let report =
        Move.run_exn fab.ctrl (Move.spec ~src:nf1 ~dst:nf2 ~filter ())
      in
      wall := Sys.time () -. t0;
      virt := Move.duration report);
  { mv_wall = !wall; mv_virtual = !virt }

(* --- driver -------------------------------------------------------------- *)

let json_row n ft st mv =
  Printf.sprintf
    {|    {"flows": %d, "ft_lookup_cold_ns": %.1f, "ft_lookup_warm_ns": %.1f, "ft_lookup_reference_ns": %.1f, "ft_pps_indexed": %.0f, "get_perflow_ns": %.1f, "get_perflow_reference_ns": %.1f, "store_exact_ns": %.1f, "store_exact_reference_ns": %.1f, "store_host_ns": %.1f, "store_host_reference_ns": %.1f, "move_wall_ms": %.3f, "move_virtual_ms": %.3f}|}
    n (ns ft.ft_cold) (ns ft.ft_warm) (ns ft.ft_ref)
    (1.0 /. ft.ft_warm)
    (ns st.st_get) (ns st.st_get_ref)
    (ns st.st_exact) (ns st.st_exact_ref) (ns st.st_host) (ns st.st_host_ref)
    (1000.0 *. mv.mv_wall)
    (1000.0 *. mv.mv_virtual)

let run () =
  H.section "Data-plane indexing (flow-table lookup, getPerflow, move)";
  let obs = Opennf_obs.Hub.create ~trace:true () in
  let rows =
    List.map
      (fun n ->
        let ft = bench_flowtable n in
        Gc.compact ();
        let st = bench_store n in
        Gc.compact ();
        let mv = bench_move ~obs n in
        Gc.compact ();
        (n, ft, st, mv))
      sizes
  in
  H.table
    ~header:
      [
        "flows"; "lookup ns (warm)"; "lookup ns (cold)"; "lookup ns (ref)";
        "Mpps"; "getPf ns"; "getPf ns (ref)"; "move ms (wall)";
        "move ms (virt)";
      ]
    (List.map
       (fun (n, ft, st, mv) ->
         [
           string_of_int n;
           Printf.sprintf "%.0f" (ns ft.ft_warm);
           Printf.sprintf "%.0f" (ns ft.ft_cold);
           Printf.sprintf "%.0f" (ns ft.ft_ref);
           Printf.sprintf "%.2f" (1e-6 /. ft.ft_warm);
           Printf.sprintf "%.0f" (ns st.st_get);
           Printf.sprintf "%.0f" (ns st.st_get_ref);
           Printf.sprintf "%.3f" (1000.0 *. mv.mv_wall);
           Printf.sprintf "%.3f" (1000.0 *. mv.mv_virtual);
         ])
       rows);
  (let first (n, ft, st, _) = (n, ft, st) in
   let _, ft0, st0 = first (List.hd rows) in
   let _, ftN, stN = first (List.nth rows (List.length rows - 1)) in
   let ratio a b = b /. a in
   H.note "10k -> 1M growth: lookup %.2fx (reference %.1fx), getPerflow %.2fx (reference %.1fx)"
     (ratio ft0.ft_warm ftN.ft_warm)
     (ratio ft0.ft_ref ftN.ft_ref)
     (ratio st0.st_get stN.st_get)
     (ratio st0.st_get_ref stN.st_get_ref));
  let oc = open_out "BENCH_datapath.json" in
  output_string oc "{\n  \"bench\": \"datapath\",\n  \"rows\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.map (fun (n, ft, st, mv) -> json_row n ft st mv) rows));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  H.note "wrote BENCH_datapath.json";
  (* Attribute each move's virtual time to protocol phases and prove the
     attribution lost nothing: the span-derived total must equal the
     [op.duration_s] histogram's running sum bit for bit. *)
  let ops = Opennf_obs.Critical_path.analyze (Opennf_obs.Hub.trace obs) in
  let cp_total = Opennf_obs.Critical_path.total ops in
  let hist_sum =
    match
      List.assoc_opt "op.duration_s"
        (Opennf_obs.Metrics.hists (Opennf_obs.Hub.metrics obs))
    with
    | Some h -> Opennf_util.Stats.Histogram.sum h
    | None -> 0.0
  in
  H.note "reconcile: critical-path total %.9fs vs op.duration_s sum %.9fs (%s, %d moves)"
    cp_total hist_sum
    (if Float.equal cp_total hist_sum then "exact" else "MISMATCH")
    (List.length ops);
  if not (Float.equal cp_total hist_sum) then
    failwith "datapath: critical-path total does not reconcile";
  Opennf_obs.Critical_path.observe (Opennf_obs.Hub.metrics obs) ops;
  H.write_metrics ~bench:"datapath" obs

let () = H.register ~id:"datapath" ~descr:"indexed data path: lookup/getPerflow/move scaling" run
