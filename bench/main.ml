(* Benchmark harness entry point.

   Runs every experiment from the paper's evaluation (§8) — each table
   and figure has a registered bench module — or a selection given on
   the command line:

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe fig10 sec83
     dune exec bench/main.exe -- --list  *)

(* Force linkage of the experiment modules (each registers itself). *)
let experiments_linked =
  [
    Bench_fig10.run; Bench_fig11.run; Bench_copyshare.run; Bench_table1.run;
    Bench_fig12.run; Bench_table2.run; Bench_fig13.run; Bench_sec83.run;
    Bench_sec84.run; Bench_ablation.run; Bench_failover.run; Bench_micro.run;
    Bench_datapath.run; Bench_faults.run; Bench_sched.run; Bench_scale.run;
    Bench_backend.run; Bench_par.run_parcheck; Bench_moncheck.run;
  ]

let () =
  ignore experiments_linked;
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let all = Harness.all () in
  if List.mem "--list" args then
    List.iter
      (fun e -> Printf.printf "%-10s %s\n" e.Harness.id e.Harness.descr)
      all
  else begin
    let selected =
      match args with
      | [] -> all
      | ids ->
        List.iter
          (fun id ->
            if not (List.exists (fun e -> e.Harness.id = id) all) then begin
              Printf.eprintf "unknown experiment %s (try --list)\n" id;
              exit 2
            end)
          ids;
        List.filter (fun e -> List.mem e.Harness.id ids) all
    in
    List.iter (fun e -> e.Harness.run ()) selected;
    print_newline ()
  end
