(* Table 1: benefits of granular control — handling of Squid's
   multi-flow state (cache entries) when a second instance takes over
   one client's traffic.

   Paper: ignore ⇒ Squid2 crashes; copy-client ⇒ 39 hits on Squid2 with
   3.8 MB transferred; copy-all ⇒ 50 hits with 54.4 MB (14.2x more). *)

module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
module H = Harness

type approach = Ignore | Copy_client | Copy_all

let label = function
  | Ignore -> "ignore"
  | Copy_client -> "copy client"
  | Copy_all -> "copy all"

let client1 = Ipaddr.v 10 0 0 11
let client2 = Ipaddr.v 10 0 0 22
let proxy_ip = Ipaddr.v 10 0 0 1
let urls = Array.init 40 (fun i -> Printf.sprintf "/objects/item-%02d" i)

let run_approach approach =
  (* Bulk state transfer: the per-byte controller cost calibrated for
     small control messages would bill a 55 MB cache at 2 MB/s; real
     controllers stream bulk state, so Table 1 uses a bulk-rate config
     (the experiment's point is bytes and hits, not controller time). *)
  let config =
    {
      Controller.default_config with
      Controller.msg_cost_per_byte = 5e-9;
    }
  in
  let fab = Fabric.create ~seed:55 ~config () in
  let squid1 = Opennf_nfs.Proxy.create () in
  let squid2 = Opennf_nfs.Proxy.create () in
  let nf1, _ =
    Fabric.add_nf fab ~name:"squid1" ~impl:(Opennf_nfs.Proxy.impl squid1)
      ~costs:Costs.squid
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"squid2" ~impl:(Opennf_nfs.Proxy.impl squid2)
      ~costs:Costs.squid
  in
  let gen = Opennf_trace.Gen.create ~seed:8 () in
  let mk_requests client =
    Opennf_trace.Gen.proxy_requests gen ~client ~proxy:proxy_ip ~urls
      ~requests:100 ~start:0.5 ~rate:2.5
      ~object_size:Opennf_nfs.Proxy.object_size ~cont_gap:0.05 ()
  in
  let schedule = Opennf_trace.Gen.merge [ mk_requests client1; mk_requests client2 ] in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  let transferred = ref 0 in
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any nf1;
      (* After 20 s, bring up Squid2 for client2's traffic. *)
      Proc.sleep 20.0;
      (match approach with
      | Ignore -> ()
      | Copy_client ->
        let report =
          Copy_op.run_exn fab.ctrl ~src:nf1 ~dst:nf2
            ~filter:(Filter.of_src_host client2)
            ~scope:[ Opennf_state.Scope.Multi ]
            ()
        in
        transferred := report.Copy_op.state_bytes
      | Copy_all ->
        let report =
          Copy_op.run_exn fab.ctrl ~src:nf1 ~dst:nf2 ~filter:Filter.any
            ~scope:[ Opennf_state.Scope.Multi ]
            ()
        in
        transferred := report.Copy_op.state_bytes);
      (* Move the per-flow state for client2's in-progress connections
         and reroute (the paper updates routing for in-progress and
         future requests from client 2). *)
      ignore
        (Move.run_exn fab.ctrl
           (Move.spec ~src:nf1 ~dst:nf2 ~filter:(Filter.of_src_host client2)
              ~guarantee:Move.Loss_free ~parallel:true ())));
  Fabric.run fab;
  (squid1, squid2, !transferred)

let run () =
  H.section "Table 1: handling of Squid multi-flow state on scale-out";
  let rows =
    List.map
      (fun approach ->
        let squid1, squid2, transferred = run_approach approach in
        [
          label approach;
          string_of_int (Opennf_nfs.Proxy.hits squid1);
          (if Opennf_nfs.Proxy.crashed squid2 then "crashed"
           else string_of_int (Opennf_nfs.Proxy.hits squid2));
          H.mb transferred;
        ])
      [ Ignore; Copy_client; Copy_all ]
  in
  H.table
    ~header:
      [ "approach"; "hits on squid1"; "hits on squid2"; "state moved (MB)" ]
    rows;
  H.note
    "Expected shape (paper: 117 / crashed|39|50 / 0|3.8|54.4 MB): ignore \
     crashes the new instance; copy-client avoids the crash with a much \
     smaller transfer but a lower hit ratio than copy-all."

let () = H.register ~id:"table1" ~descr:"Squid multi-flow handling on scale-out" run
