(* Figure 11: impact of packet rate and number of per-flow states.

   (a) packets dropped during a parallelized no-guarantee move — grows
       linearly with packet rate;
   (b) total time of a parallelized loss-free move — grows with rate
       because flushing buffered events is limited by the switch's
       packet-out rate, and with the number of flows. *)

module Runtime = Opennf_sb.Runtime
open Opennf
module H = Harness

let flow_counts = [ 250; 500; 1000 ]
let rates = [ 500.0; 2500.0; 5000.0; 7500.0; 10000.0 ]

let run_once ~flows ~rate ~guarantee =
  let bed = H.prads_bed ~flows ~rate () in
  let report = ref None in
  H.run_at bed.H.fab ~at:bed.H.move_at (fun () ->
      let spec =
        Move.spec ~src:bed.H.nf1 ~dst:bed.H.nf2
          ~filter:Opennf_net.Filter.any ~guarantee ~parallel:true ()
      in
      report := Some (Move.run_exn bed.H.fab.ctrl spec));
  (Option.get !report, Runtime.tombstone_dropped bed.H.rt1)

let sweep ~guarantee ~metric =
  List.map
    (fun rate ->
      string_of_int (int_of_float rate)
      :: List.map
           (fun flows ->
             let report, drops = run_once ~flows ~rate ~guarantee in
             metric report drops)
           flow_counts)
    rates

let header = "rate(pkt/s)" :: List.map (fun f -> Printf.sprintf "%d flows" f) flow_counts

let run () =
  H.section "Figure 11(a): drops during a parallelized no-guarantee move";
  H.table ~header
    (sweep ~guarantee:Move.No_guarantee ~metric:(fun _ drops ->
         string_of_int drops));
  H.note "Expected shape: drops grow ~linearly with packet rate.";
  H.section "Figure 11(b): total time (ms) of a parallelized loss-free move";
  H.table ~header
    (sweep ~guarantee:Move.Loss_free ~metric:(fun report _ ->
         H.ms (Move.duration report)));
  H.note
    "Expected shape: time grows with flow count (state transfer) and \
     with rate (packet-out-bound event flush)."

let () =
  H.register ~id:"fig11" ~descr:"move drops & time vs rate and flow count" run
