(* Fault tolerance of the control plane: what does a crash actually
   cost, and how does that cost move with the knobs the operator has?

   Two sweeps over a primary/standby PRADS pair with steady traffic and
   the Figure-9 failover app driven by the controller's liveness
   monitor:

   - detection-timeout sweep: crash the primary at a fixed instant and
     vary the liveness budget (probe period x miss threshold). Recovery
     time should track the detection budget and packets lost should be
     roughly traffic rate x (detection + reroute) — the paper's case for
     fast, controller-driven recovery (§2.1).

   - crash-point sweep: crash an instance at each protocol phase of a
     loss-free move and report the typed error, the rollback, and how
     many packets the blackhole window cost. Every row must end with
     traffic flowing (no permanent loss accrual after recovery).

   Emits machine-readable BENCH_faults.json next to the working
   directory's other BENCH_*.json files. All times are virtual, so the
   numbers are deterministic. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Faults = Opennf_sim.Faults
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
module H = Harness

let crash_t = 1.5
let duration = 3.0
let rate = 1000.0
let flows = 40

let bed ~obs ~resilience =
  let fab = Fabric.create ~seed:21 ~obs ~resilience () in
  let primary_p = Opennf_nfs.Prads.create () in
  let standby_p = Opennf_nfs.Prads.create () in
  let primary, rt1 =
    Fabric.add_nf fab ~name:"primary" ~impl:(Opennf_nfs.Prads.impl primary_p)
      ~costs:Costs.prads
  in
  let standby, rt2 =
    Fabric.add_nf fab ~name:"standby" ~impl:(Opennf_nfs.Prads.impl standby_p)
      ~costs:Costs.prads
  in
  let gen = Opennf_trace.Gen.create ~seed:22 () in
  let schedule, _keys =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05 ~duration ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any primary);
  (fab, primary, standby, rt1, rt2, primary_p, standby_p)

(* --- sweep 1: recovery vs detection budget ------------------------------ *)

(* The liveness budget is what an idle controller needs before declaring
   death: a probe must first time out (call_timeout per attempt, plus
   backoffs) and [liveness_misses] consecutive probes must miss. *)
let policy ~probe_period ~misses =
  {
    Controller.call_timeout = probe_period /. 2.0;
    max_retries = 0;
    backoff = 0.0;
    liveness_misses = misses;
    probe_period;
  }

let detection_budget (r : Controller.resilience) =
  float_of_int r.liveness_misses
  *. (r.probe_period +. Controller.call_budget r)

let run_detection ~obs ~probe_period ~misses =
  let resilience = policy ~probe_period ~misses in
  let fab, primary, standby, _, rt2, _, _ = bed ~obs ~resilience in
  let app = ref None in
  Proc.spawn fab.engine (fun () ->
      let a =
        Opennf_apps.Failover.init_standby fab.ctrl ~normal:primary ~standby ()
      in
      Opennf_apps.Failover.enable_auto a ~filter:Filter.any;
      app := Some a);
  Controller.start_probes fab.ctrl ~until:duration;
  Faults.crash_at fab.faults ~node:"primary" crash_t;
  let standby_at_crash = ref 0 in
  Engine.schedule_at fab.engine crash_t (fun () ->
      standby_at_crash := Opennf_sb.Runtime.processed_count rt2);
  Fabric.run fab;
  let recovered_at = Opennf_apps.Failover.recovered_at (Option.get !app) in
  let lost = List.length (Audit.lost fab.audit ~nfs:[ "primary"; "standby" ]) in
  let recovery =
    match recovered_at with Some t -> t -. crash_t | None -> Float.nan
  in
  let standby_took_over =
    Opennf_sb.Runtime.processed_count rt2 > !standby_at_crash
  in
  (detection_budget resilience, recovery, lost, standby_took_over)

(* --- sweep 2: packets lost vs crash point of a move --------------------- *)

let phase_name = function
  | Move.Transfer_started -> "transfer-started"
  | State_captured -> "state-captured"
  | State_deleted -> "state-deleted"
  | State_installed -> "state-installed"
  | Phase1_installed -> "phase1-installed"
  | Phase2_installed -> "phase2-installed"

let move_resilience =
  {
    Controller.call_timeout = 0.05;
    max_retries = 1;
    backoff = 0.01;
    liveness_misses = 2;
    probe_period = 0.1;
  }

(* Crash [node] the instant the move reaches [phase]; the move's own
   supervision detects the death and rolls back to the survivor. *)
let run_crash_point ~obs ~node ~phase =
  let fab, primary, standby, rt1, rt2, _, _ =
    bed ~obs ~resilience:move_resilience
  in
  let outcome = ref "no-crash" in
  let survivor_rt = if node = "primary" then rt2 else rt1 in
  let survivor_at_crash = ref (-1) in
  Proc.spawn fab.engine (fun () ->
      Proc.sleep crash_t;
      let r =
        Move.run fab.ctrl
          (Move.spec ~src:primary ~dst:standby ~filter:Filter.any
             ~guarantee:Move.Loss_free
             ~on_phase:(fun p ->
               if p = phase then begin
                 Faults.crash_now fab.faults ~node;
                 survivor_at_crash :=
                   Opennf_sb.Runtime.processed_count survivor_rt
               end)
             ())
      in
      outcome :=
        match r with
        | Ok _ -> "ok"
        | Error e -> Op_error.to_string e);
  Fabric.run fab;
  let lost = List.length (Audit.lost fab.audit ~nfs:[ "primary"; "standby" ]) in
  let recovered =
    !survivor_at_crash >= 0
    && Opennf_sb.Runtime.processed_count survivor_rt > !survivor_at_crash
  in
  (!outcome, lost, recovered)

(* --- report ------------------------------------------------------------- *)

let run () =
  H.section
    "Fault tolerance: recovery time and packets lost (crash injection)";
  (* One metrics-only hub across both sweeps; its snapshot lands next to
     BENCH_faults.json. *)
  let obs = Opennf_obs.Hub.create () in
  let detection_rows =
    List.map
      (fun (probe_period, misses) ->
        let budget, recovery, lost, took_over =
          run_detection ~obs ~probe_period ~misses
        in
        (probe_period, misses, budget, recovery, lost, took_over))
      [ (0.025, 2); (0.05, 2); (0.05, 3); (0.1, 3); (0.2, 3); (0.4, 4) ]
  in
  H.table
    ~header:
      [
        "probe (ms)"; "misses"; "budget (ms)"; "recovery (ms)"; "pkts lost";
        "standby took over";
      ]
    (List.map
       (fun (p, m, budget, recovery, lost, took_over) ->
         [
           Printf.sprintf "%.0f" (1000.0 *. p);
           string_of_int m;
           Printf.sprintf "%.0f" (1000.0 *. budget);
           Printf.sprintf "%.1f" (1000.0 *. recovery);
           string_of_int lost;
           (if took_over then "yes" else "NO");
         ])
       detection_rows);
  H.note
    "Expected shape: recovery tracks the detection budget; packets lost \
     scale with recovery time at ~%.0f pps." rate;
  let crash_rows =
    List.concat_map
      (fun phase ->
        List.map
          (fun node ->
            let outcome, lost, recovered = run_crash_point ~obs ~node ~phase in
            (node, phase_name phase, outcome, lost, recovered))
          (match phase with
          (* Before any state moved only the source's death is
             interesting; later phases stress the destination dying with
             state in flight. *)
          | Move.Transfer_started -> [ "primary" ]
          | _ -> [ "standby" ]))
      [
        Move.Transfer_started; Move.State_captured; Move.State_deleted;
        Move.State_installed;
      ]
  in
  H.table
    ~header:[ "crashed"; "at phase"; "move result"; "pkts lost"; "traffic resumed" ]
    (List.map
       (fun (node, phase, outcome, lost, recovered) ->
         [ node; phase; outcome; string_of_int lost;
           (if recovered then "yes" else "NO") ])
       crash_rows);
  H.note
    "Every row must report a typed error and resumed traffic: rollback \
     re-installs held state on the survivor and reroutes, so a crash \
     mid-move never leaves flows blackholed.";
  let oc = open_out "BENCH_faults.json" in
  output_string oc "{\n  \"bench\": \"faults\",\n  \"detection_sweep\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun (p, m, budget, recovery, lost, took_over) ->
            Printf.sprintf
              "    {\"probe_period_s\": %.3f, \"liveness_misses\": %d, \
               \"detection_budget_s\": %.4f, \"recovery_s\": %.4f, \
               \"packets_lost\": %d, \"standby_took_over\": %b}"
              p m budget recovery lost took_over)
          detection_rows));
  output_string oc "\n  ],\n  \"crash_point_sweep\": [\n";
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun (node, phase, outcome, lost, recovered) ->
            Printf.sprintf
              "    {\"crashed\": \"%s\", \"phase\": \"%s\", \"result\": \
               \"%s\", \"packets_lost\": %d, \"traffic_resumed\": %b}"
              node phase (String.escaped outcome) lost recovered)
          crash_rows));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  H.note "wrote BENCH_faults.json";
  let cv = Opennf_obs.Metrics.counter_value (Opennf_obs.Hub.metrics obs) in
  let crash_errors =
    List.length
      (List.filter (fun (_, _, outcome, _, _) -> outcome <> "ok") crash_rows)
  in
  H.note
    "metrics reconciliation: op.failed=%d, op.rollbacks=%d vs %d crash-point \
     move errors (the detection sweep's failover app may add its own failed \
     internal ops on top); ctrl.retries=%d"
    (cv "op.failed") (cv "op.rollbacks") crash_errors (cv "ctrl.retries");
  H.write_metrics ~bench:"faults" obs

let () =
  H.register ~id:"faults"
    ~descr:"crash injection: recovery time and packets lost" run
