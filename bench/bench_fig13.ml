(* Figure 13 (§8.3): controller scalability — average time per loss-free
   move as a function of the number of simultaneous moves, with dummy
   NFs replaying canned 202-byte state so the controller is the
   bottleneck. Paper: grows linearly with both the number of moves and
   the flows per move. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
module H = Harness

(* [n] distinct flow keys confined to the /16 subnet index [i], so each
   concurrent move has a disjoint filter. *)
let subnet_prefix i = Ipaddr.Prefix.make (Ipaddr.v 10 (40 + i) 0 0) 16

let keys_in_subnet i n =
  let base = Ipaddr.to_int (Ipaddr.v 10 (40 + i) 0 0) in
  List.init n (fun k ->
      Flow.make
        ~src:(Ipaddr.of_int (base + (k mod 250) + 1))
        ~dst:(Ipaddr.v 172 30 (k / 250 mod 250) 1)
        ~proto:Flow.Tcp
        ~sport:(10000 + (k mod 50000))
        ~dport:443 ())

let run_once ~moves ~flows =
  let fab = Fabric.create ~seed:(moves + flows) () in
  let pairs =
    List.init moves (fun i ->
        let d1 = Opennf_nfs.Dummy.create () in
        let d2 = Opennf_nfs.Dummy.create () in
        Opennf_nfs.Dummy.seed_flows d1 (keys_in_subnet i flows);
        let nf1, _ =
          Fabric.add_nf fab
            ~name:(Printf.sprintf "src%d" i)
            ~impl:(Opennf_nfs.Dummy.impl d1) ~costs:Costs.dummy
        in
        let nf2, _ =
          Fabric.add_nf fab
            ~name:(Printf.sprintf "dst%d" i)
            ~impl:(Opennf_nfs.Dummy.impl d2) ~costs:Costs.dummy
        in
        (i, nf1, nf2))
  in
  let durations = ref [] in
  Proc.spawn fab.engine (fun () ->
      List.iter
        (fun (i, nf1, _) ->
          Controller.set_route fab.ctrl
            (Filter.of_src_prefix (subnet_prefix i))
            nf1)
        pairs);
  H.run_at fab ~at:1.0 (fun () ->
      let ivars =
        List.map
          (fun (i, nf1, nf2) ->
            Move.start_exn fab.ctrl
              (Move.spec ~src:nf1 ~dst:nf2
                 ~filter:(Filter.of_src_prefix (subnet_prefix i))
                 ~guarantee:Move.Loss_free ~parallel:true ()))
          pairs
      in
      List.iter
        (fun ivar ->
          let report = Proc.Ivar.read ivar in
          durations := Move.duration report :: !durations)
        ivars);
  let n = List.length !durations in
  List.fold_left ( +. ) 0.0 !durations /. float_of_int (max 1 n)

let move_counts = [ 1; 2; 4; 8; 12; 16; 20 ]
let flow_counts = [ 1000; 2000; 3000 ]

let run () =
  H.section
    "Figure 13: avg time per loss-free move vs simultaneous moves (dummy NFs)";
  let rows =
    List.map
      (fun moves ->
        string_of_int moves
        :: List.map (fun flows -> H.ms (run_once ~moves ~flows)) flow_counts)
      move_counts
  in
  H.table
    ~header:
      ("simultaneous moves"
      :: List.map (fun f -> Printf.sprintf "%d flows (ms)" f) flow_counts)
    rows;
  H.note
    "Expected shape: average per-move time grows ~linearly with the \
     number of simultaneous moves and with the per-move flow count (the \
     controller CPU is the bottleneck)."

let () = H.register ~id:"fig13" ~descr:"controller scalability (dummy NFs)" run
