(* Million-flow wall-clock scaling (ISSUE 4, rebased on the flat-memory
   arenas and the timing-wheel scheduler of ISSUE 6).

   Four questions, each in real seconds (not virtual time):

   - ordered stores: what does a bulk scoped get (the getPerflow
     enumeration behind a move of every flow) cost at 10k / 100k / 1M
     flows on the always-sorted walk, against the retained
     sort-per-call reference ([Store.Perflow.matching_reference])?
   - allocation: how many minor-heap words does one getPerflow
     (enumerate + scratch-buffer chunk encode) burn?
   - throughput: how many simulation events per wall second does the
     traffic window itself sustain while the NF holds that much
     resident state — preload (building the flows) is timed separately,
     and the GC's minor/major collection counts and major-heap words
     over the window say *why* a heap hurts or doesn't.
   - schedulers: the timing wheel and the reference binary heap must
     produce identical virtual-time results on the same scenario.

   Sizes come from OPENNF_SCALE_SIZES (e.g. "10k 100k 1m"), defaulting
   to the full sweep; the @bench-check smoke run sets small sizes.
   Emits BENCH_scale.json (+ METRICS_scale.json). Wall times use
   [Unix.gettimeofday]: [Sys.time] is process CPU time, which
   double-counts the pool. *)

module H = Harness
module Engine = Opennf_sim.Engine
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf

let default_sizes = [ 10_000; 100_000; 1_000_000 ]

let parse_sizes s =
  String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) s)
  |> List.filter (fun tok -> tok <> "")
  |> List.map (fun tok ->
         let mult, digits =
           match tok.[String.length tok - 1] with
           | 'k' | 'K' -> (1_000, String.sub tok 0 (String.length tok - 1))
           | 'm' | 'M' -> (1_000_000, String.sub tok 0 (String.length tok - 1))
           | _ -> (1, tok)
         in
         mult * int_of_string digits)

let sizes () =
  match Sys.getenv_opt "OPENNF_SCALE_SIZES" with
  | Some s -> parse_sizes s
  | None -> default_sizes

let key_of_int i =
  Flow.make
    ~src:(Ipaddr.of_int (0x0A000000 lor (i lsr 6)))
    ~dst:(Ipaddr.of_int 0xC0A80101)
    ~sport:(1024 + (i land 63))
    ~dport:80 ()

let packet_of_int i =
  Packet.create ~id:i ~key:(key_of_int i) ~sent_at:0.0 ()

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let wall_per f ~iters =
  let t, () = wall (fun () -> for _ = 1 to iters do f () done) in
  t /. float_of_int iters

let best_of ?(reps = 3) f ~iters =
  let best = ref infinity in
  for _ = 1 to reps do
    best := Float.min !best (wall_per f ~iters)
  done;
  !best

let minor_words_per f ~iters =
  f ();
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int iters

(* --- bulk scoped get ---------------------------------------------------- *)

type get_row = {
  g_walk : float;  (* ordered in-order walk (Store.Perflow.matching) *)
  g_ref : float;  (* fold-then-sort reference, the seed's shape *)
  g_words : float;  (* minor words per NF-level getPerflow (list+export) *)
  g_export_words : float;  (* minor words per single chunk export *)
}

let bench_get n =
  let store = Opennf_state.Store.Perflow.create () in
  let prads = Opennf_nfs.Prads.create () in
  let impl = Opennf_nfs.Prads.impl prads in
  for i = 0 to n - 1 do
    Opennf_state.Store.Perflow.set store (key_of_int i) i;
    impl.Opennf_sb.Nf_api.process_packet (packet_of_int i)
  done;
  (* The move-everything enumeration: an unconstrained filter takes the
     ordered-walk path; the reference folds the hash table and sorts
     the full result, which is what every scoped get used to pay. *)
  let iters = max 1 (200_000 / n) in
  let g_walk =
    best_of ~iters (fun () ->
        ignore (Opennf_state.Store.Perflow.matching store Filter.any))
  in
  let g_ref =
    wall_per ~iters:(max 1 (50_000 / n)) (fun () ->
        ignore (Opennf_state.Store.Perflow.matching_reference store Filter.any))
  in
  (* Allocation cost of one single-flow getPerflow: enumerate the
     matching flowid, then serialize its connection through the
     domain-local scratch writer. *)
  let f = Filter.of_key (key_of_int (n / 2)) in
  let g_words =
    minor_words_per ~iters:1000 (fun () ->
        List.iter
          (fun flowid -> ignore (impl.Opennf_sb.Nf_api.export_perflow flowid))
          (impl.Opennf_sb.Nf_api.list_perflow f))
  in
  let g_export_words =
    minor_words_per ~iters:1000 (fun () ->
        ignore (impl.Opennf_sb.Nf_api.export_perflow f))
  in
  { g_walk; g_ref; g_words; g_export_words }

(* --- event throughput under load ----------------------------------------- *)

(* Virtual-time results only: everything here must be bit-identical
   across schedulers, domains and instrumentation, so the pool- and
   scheduler-equivalence checks compare whole values. *)
type scenario_result = {
  sc_events : int;
  sc_virtual_end : float;
  sc_conns : int;
  sc_assets : int;
  sc_stats : int * int * int;
}

(* Wall-clock and GC costs of one scenario, phase-split: [c_preload]
   covers building the fabric and the resident flows, [c_traffic] the
   simulation run only — events/s over a big heap means events over
   the traffic window, not amortized preload. GC deltas are measured
   across the traffic window. *)
type scenario_cost = {
  c_preload : float;
  c_traffic : float;
  c_minor_cols : int;
  c_major_cols : int;
  c_major_words : float;
}

(* A traffic window against a PRADS instance preloaded with [preload]
   connections: [flows] fresh flows at [rate] pps for [duration]
   virtual seconds. Fully seeded; runs on whichever domain calls it. *)
let scenario_full ~seed ~preload ~flows ~rate ~duration () =
  let t0 = Unix.gettimeofday () in
  let fab = Fabric.create ~seed () in
  let prads1 = Opennf_nfs.Prads.create () in
  let nf1, _rt1 =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl prads1)
      ~costs:Costs.prads
  in
  let impl1 = Opennf_nfs.Prads.impl prads1 in
  for i = 0 to preload - 1 do
    impl1.Opennf_sb.Nf_api.process_packet (packet_of_int i)
  done;
  let gen = Opennf_trace.Gen.create ~seed:(seed * 7) () in
  let schedule, _keys =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.01 ~duration ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Opennf_sim.Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any nf1);
  let t1 = Unix.gettimeofday () in
  let s0 = Gc.quick_stat () in
  Fabric.run fab;
  let s1 = Gc.quick_stat () in
  let t2 = Unix.gettimeofday () in
  ( {
      sc_events = Engine.processed fab.engine;
      sc_virtual_end = Engine.now fab.engine;
      sc_conns = Opennf_nfs.Prads.connection_count prads1;
      sc_assets = Opennf_nfs.Prads.asset_count prads1;
      sc_stats = Opennf_nfs.Prads.stats prads1;
    },
    {
      c_preload = t1 -. t0;
      c_traffic = t2 -. t1;
      c_minor_cols = s1.Gc.minor_collections - s0.Gc.minor_collections;
      c_major_cols = s1.Gc.major_collections - s0.Gc.major_collections;
      c_major_words = s1.Gc.major_words -. s0.Gc.major_words;
    } )

let scenario ~seed ~preload ~flows ~rate ~duration () =
  fst (scenario_full ~seed ~preload ~flows ~rate ~duration ())

let bench_throughput n =
  scenario_full ~seed:(31 + n) ~preload:n ~flows:500 ~rate:20_000.0
    ~duration:1.0 ()

(* --- scheduler equivalence ----------------------------------------------- *)

(* The same scenario under the reference binary heap and the timing
   wheel: every virtual-time field (events dispatched, final clock,
   NF state digest) must match exactly, or the wheel broke the
   (time, seq) dispatch order. *)
let bench_schedulers () =
  let run kind =
    Unix.putenv "OPENNF_SCHEDULER" kind;
    scenario ~seed:77 ~preload:2_000 ~flows:200 ~rate:5_000.0 ~duration:0.5 ()
  in
  let heap = run "heap" in
  let wheel = run "wheel" in
  Unix.putenv "OPENNF_SCHEDULER" "";
  (heap, wheel)

(* --- domain pool --------------------------------------------------------- *)

type pool_row = {
  p_tasks : int;
  p_domains : int;
  p_dispatch : bool; (* false: one domain, tasks ran inline *)
  p_serial : float;
  p_pool : float;
  p_deterministic : bool;
}

(* Independent seeded scenarios, serial then pooled. The pooled run must
   reproduce the serial results bit-for-bit: each scenario is
   single-domain deterministic, and the pool only changes placement.
   Each timed run starts from a compacted heap — otherwise the second
   run inherits the first one's garbage and the comparison measures GC
   debt, not dispatch. *)
let bench_pool ~preload =
  let tasks =
    Array.init 8 (fun i ->
        scenario ~seed:(1000 + (137 * i)) ~preload ~flows:400 ~rate:10_000.0
          ~duration:1.0)
  in
  let domains =
    Opennf_util.Domain_pool.pool_size ~tasks:(Array.length tasks) ()
  in
  Gc.compact ();
  let p_serial, serial = wall (fun () -> Array.map (fun f -> f ()) tasks) in
  Gc.compact ();
  let p_pool, pooled = wall (fun () -> Opennf_util.Domain_pool.run tasks) in
  {
    p_tasks = Array.length tasks;
    p_domains = domains;
    p_dispatch = domains > 1;
    p_serial;
    p_pool;
    p_deterministic = serial = pooled;
  }

(* --- sharded control plane ------------------------------------------------ *)

type shard_row = {
  sh_run : H.shard_run;
  sh_wall : H.timed; (* Serial engine: wall min-of-k for the whole sim. *)
  sh_par : (H.shard_run * H.timed) option;
      (* The same workload with one engine per shard on its own domain
         (ISSUE 9); [None] at shards = 1, where parallel mode is inert. *)
}

(* Scaling of the control plane itself: the same controller-bound
   disjoint-move workload at growing shard counts, first with every
   shard in one engine (virtual-time speedup only — parallelism of the
   modeled control plane, not of the host), then with one engine per
   shard on its own domain, where the same speedup must show up on the
   wall clock. Wall numbers are min-of-k with the spread recorded. *)
let bench_shards () =
  List.map
    (fun shards ->
      let sh_wall, sh_run =
        H.time_min_of (fun () ->
            H.run_shard_workload ~ops:8 ~flows:300 ~shards ())
      in
      let sh_par =
        if shards <= 1 then None
        else
          let t, r =
            H.time_min_of (fun () ->
                H.run_shard_workload ~ops:8 ~flows:300 ~shards ~par:true ())
          in
          Some (r, t)
      in
      { sh_run; sh_wall; sh_par })
    (H.shard_counts ())

(* --- driver -------------------------------------------------------------- *)

let json_row n g r c =
  Printf.sprintf
    {|    {"flows": %d, "scoped_get_wall_ms": %.3f, "scoped_get_reference_wall_ms": %.3f, "scoped_get_speedup": %.2f, "get_perflow_minor_words": %.1f, "chunk_export_minor_words": %.1f, "preload_wall_ms": %.1f, "traffic_wall_ms": %.1f, "scenario_events": %d, "events_per_sec": %.0f, "gc_minor_collections": %d, "gc_major_collections": %d, "gc_major_words_per_event": %.1f}|}
    n (1000.0 *. g.g_walk) (1000.0 *. g.g_ref) (g.g_ref /. g.g_walk)
    g.g_words g.g_export_words (1000.0 *. c.c_preload) (1000.0 *. c.c_traffic)
    r.sc_events
    (float_of_int r.sc_events /. c.c_traffic)
    c.c_minor_cols c.c_major_cols
    (c.c_major_words /. float_of_int r.sc_events)

let run () =
  H.section "Wall-clock scaling (ordered stores, allocation, multicore)";
  let sizes = sizes () in
  let metrics_hub = Opennf_obs.Hub.create ~metrics:true () in
  let metrics = Opennf_obs.Hub.metrics metrics_hub in
  let rows =
    List.map
      (fun n ->
        let g = bench_get n in
        Gc.compact ();
        let r, c = bench_throughput n in
        Gc.compact ();
        (n, g, r, c))
      sizes
  in
  H.table
    ~header:
      [
        "flows"; "bulk get ms"; "getPf words"; "events/s"; "minor GCs";
        "major GCs"; "major w/event";
      ]
    (List.map
       (fun (n, g, r, c) ->
         [
           string_of_int n;
           Printf.sprintf "%.2f" (1000.0 *. g.g_walk);
           Printf.sprintf "%.0f" g.g_words;
           Printf.sprintf "%.0f" (float_of_int r.sc_events /. c.c_traffic);
           string_of_int c.c_minor_cols;
           string_of_int c.c_major_cols;
           Printf.sprintf "%.1f" (c.c_major_words /. float_of_int r.sc_events);
         ])
       rows);
  List.iter
    (fun (n, g, r, c) ->
      let set name v =
        Opennf_obs.Metrics.set
          (Opennf_obs.Metrics.gauge metrics (Printf.sprintf "scale.%d.%s" n name))
          v
      in
      set "events_per_sec" (float_of_int r.sc_events /. c.c_traffic);
      set "traffic_wall_ms" (1000.0 *. c.c_traffic);
      set "get_perflow_minor_words" g.g_words;
      set "gc_minor_collections" (float_of_int c.c_minor_cols);
      set "gc_major_collections" (float_of_int c.c_major_cols);
      set "gc_major_words_per_event"
        (c.c_major_words /. float_of_int r.sc_events))
    rows;
  let heap, wheel = bench_schedulers () in
  let sched_ok = heap = wheel in
  H.note "schedulers: heap %d events / wheel %d events, virtual results %s"
    heap.sc_events wheel.sc_events
    (if sched_ok then "identical" else "DIVERGED");
  let pool = bench_pool ~preload:(List.fold_left Stdlib.min max_int sizes) in
  if pool.p_dispatch then
    H.note
      "pool: %d scenarios on %d domains: serial %.0f ms, pooled %.0f ms (%.2fx), results %s"
      pool.p_tasks pool.p_domains (1000.0 *. pool.p_serial)
      (1000.0 *. pool.p_pool)
      (pool.p_serial /. pool.p_pool)
      (if pool.p_deterministic then "identical" else "DIVERGED")
  else
    H.note
      "pool: 1 usable domain — %d scenarios ran inline (no dispatch); serial %.0f ms, pooled %.0f ms, results %s"
      pool.p_tasks (1000.0 *. pool.p_serial)
      (1000.0 *. pool.p_pool)
      (if pool.p_deterministic then "identical" else "DIVERGED");
  H.section "Sharded control plane: virtual makespan vs shard count";
  let shard_rows = bench_shards () in
  let serial_span =
    match shard_rows with
    | first :: _ when first.sh_run.H.s_shards = 1 -> first.sh_run.H.s_makespan
    | _ -> 0.0
  in
  let serial_wall =
    match shard_rows with
    | first :: _ when first.sh_run.H.s_shards = 1 -> first.sh_wall.H.t_min
    | _ -> 0.0
  in
  let shard_speedup row =
    if serial_span > 0.0 then serial_span /. row.sh_run.H.s_makespan else 1.0
  in
  let par_wall_speedup t =
    if serial_wall > 0.0 then serial_wall /. t.H.t_min else 1.0
  in
  let digests_ok =
    match shard_rows with
    | first :: rest ->
      List.for_all
        (fun r ->
          r.sh_run.H.s_digest = first.sh_run.H.s_digest
          && match r.sh_par with
             | None -> true
             | Some (p, _) -> p.H.s_digest = first.sh_run.H.s_digest)
        rest
    | [] -> true
  in
  H.table
    ~header:
      [
        "shards"; "virtual makespan (ms)"; "speedup"; "wall (ms)";
        "par wall (ms)"; "domains"; "par wall speedup";
      ]
    (List.map
       (fun row ->
         [
           string_of_int row.sh_run.H.s_shards;
           H.ms row.sh_run.H.s_makespan;
           Printf.sprintf "%.2fx" (shard_speedup row);
           H.ms row.sh_wall.H.t_min;
         ]
         @
         match row.sh_par with
         | None -> [ "-"; "-"; "-" ]
         | Some (p, t) ->
           [
             H.ms t.H.t_min; string_of_int p.H.s_domains;
             Printf.sprintf "%.2fx" (par_wall_speedup t);
           ])
       shard_rows);
  H.note "shard digests across counts and execution modes: %s"
    (if digests_ok then "identical" else "DIVERGED");
  (* The wall-clock speedup claim needs real cores under the domains;
     record applicability so a consumer gating on the ratio skips
     honestly on small runners instead of failing or lying. *)
  let usable = Opennf_util.Domain_pool.default_domains () in
  if usable < 4 then
    H.note
      "parallel wall-clock gate: not applicable (%d usable domain%s < 4)"
      usable
      (if usable = 1 then "" else "s")
  else
    List.iter
      (fun row ->
        match row.sh_par with
        | Some (p, t) when row.sh_run.H.s_shards = 4 ->
          H.note "parallel wall-clock at 4 shards: %.2fx on %d domains%s"
            (par_wall_speedup t) p.H.s_domains
            (if par_wall_speedup t >= 2.0 then " -- ok (>= 2x)"
             else " -- BELOW 2x")
        | _ -> ())
      shard_rows;
  let oc = open_out "BENCH_scale.json" in
  output_string oc "{\n  \"bench\": \"scale\",\n  \"rows\": [\n";
  output_string oc
    (String.concat ",\n" (List.map (fun (n, g, r, c) -> json_row n g r c) rows));
  output_string oc "\n  ],\n";
  Printf.fprintf oc "  \"shards\": [\n%s\n  ],\n"
    (String.concat ",\n"
       (List.map
          (fun row ->
            let par_fields =
              match row.sh_par with
              | None -> ""
              | Some (p, t) ->
                Printf.sprintf
                  ", \"par_wall_min_ms\": %.1f, \"par_wall_spread_ms\": %.1f, \
                   \"par_domains\": %d, \"par_wall_speedup_vs_serial\": %.2f"
                  (1000.0 *. t.H.t_min)
                  (1000.0 *. t.H.t_spread)
                  p.H.s_domains (par_wall_speedup t)
            in
            Printf.sprintf
              "    {\"shards\": %d, \"makespan_virtual_s\": %.6f, \
               \"speedup_vs_serial\": %.2f, \"wall_min_ms\": %.1f, \
               \"wall_spread_ms\": %.1f, \"wall_repeats\": %d, \
               \"digest_identical\": %b%s}"
              row.sh_run.H.s_shards row.sh_run.H.s_makespan (shard_speedup row)
              (1000.0 *. row.sh_wall.H.t_min)
              (1000.0 *. row.sh_wall.H.t_spread)
              row.sh_wall.H.t_repeats digests_ok par_fields)
          shard_rows));
  Printf.fprintf oc
    "  \"schedulers\": {\"heap_events\": %d, \"wheel_events\": %d, \"virtual_end\": %.6f, \"identical\": %b},\n"
    heap.sc_events wheel.sc_events wheel.sc_virtual_end sched_ok;
  Printf.fprintf oc
    "  \"pool\": {\"scenarios\": %d, \"domains\": %d, \"dispatch\": %b, \"serial_wall_ms\": %.1f, \"pool_wall_ms\": %.1f, \"speedup\": %.2f, \"deterministic\": %b}\n"
    pool.p_tasks pool.p_domains pool.p_dispatch (1000.0 *. pool.p_serial)
    (1000.0 *. pool.p_pool)
    (pool.p_serial /. pool.p_pool)
    pool.p_deterministic;
  output_string oc "}\n";
  close_out oc;
  H.note "wrote BENCH_scale.json";
  H.write_metrics ~bench:"scale" metrics_hub

(* Standalone smoke for @bench-check: the same scenario under both
   schedulers, failing the build on any virtual-time divergence. *)
let run_schedcheck () =
  H.section "Scheduler equivalence (binary heap vs timing wheel)";
  let heap, wheel = bench_schedulers () in
  H.note
    "heap: %d events, clock %.6f | wheel: %d events, clock %.6f | digest %s"
    heap.sc_events heap.sc_virtual_end wheel.sc_events wheel.sc_virtual_end
    (if heap = wheel then "identical" else "DIVERGED");
  if heap <> wheel then
    failwith "scheduler check: wheel diverged from the reference heap"

let () =
  H.register ~id:"scale"
    ~descr:"wall-clock scaling: ordered getPerflow, allocation, domain pool" run;
  H.register ~id:"schedcheck"
    ~descr:"timing wheel vs binary heap: virtual-time equivalence smoke"
    run_schedcheck
