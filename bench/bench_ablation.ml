(* Ablations over the cost-model knobs: which mechanism produces which
   curve. Each sweep varies exactly one parameter of the standard
   Figure 10 setup (500 flows, 2500 pkt/s, loss-free parallelized move)
   and reports the total move time and drops of a no-guarantee move.

   - flow-mod delay drives the no-guarantee drop count (the del→route
     window) but barely moves the loss-free total;
   - the control-connection bandwidth drives the loss-free total (event
     flush) but not the serialization-bound get/put;
   - the per-chunk serialization cost drives both get-bound numbers;
   - the controller per-message cost shifts everything uniformly. *)

module Runtime = Opennf_sb.Runtime
module Costs = Opennf_sb.Costs
module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
open Opennf_net
open Opennf
module H = Harness

let flows = 500
let rate = 2500.0

let run_pair ?config ?flow_mod_delay ?costs () =
  let costs = Option.value ~default:Costs.prads costs in
  let fab = Fabric.create ~seed:101 ?config ?flow_mod_delay () in
  let prads1 = Opennf_nfs.Prads.create () in
  let prads2 = Opennf_nfs.Prads.create () in
  let nf1, rt1 =
    Fabric.add_nf fab ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl prads1) ~costs
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl prads2) ~costs
  in
  let gen = Opennf_trace.Gen.create ~seed:303 () in
  let handshakes = 2.0 *. float_of_int flows /. rate in
  let schedule, _ =
    Opennf_trace.Gen.steady_flows gen ~flows ~rate ~start:0.05
      ~duration:(handshakes +. 2.5) ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  Proc.spawn fab.engine (fun () -> Controller.set_route fab.ctrl Filter.any nf1);
  let move_at = 0.05 +. handshakes +. 0.5 in
  let lf = ref None and ng_drops = ref 0 in
  Engine.schedule_at fab.engine move_at (fun () ->
      Proc.spawn fab.engine (fun () ->
          lf :=
            Some
              (Move.run_exn fab.ctrl
                 (Move.spec ~src:nf1 ~dst:nf2 ~filter:Filter.any
                    ~guarantee:Move.Loss_free ~parallel:true ()))));
  Fabric.run fab;
  (* Separate run for the no-guarantee drops (fresh bed, same knobs). *)
  let fab2 = Fabric.create ~seed:101 ?config ?flow_mod_delay () in
  let p1 = Opennf_nfs.Prads.create () in
  let p2 = Opennf_nfs.Prads.create () in
  let n1, r1 = Fabric.add_nf fab2 ~name:"prads1" ~impl:(Opennf_nfs.Prads.impl p1) ~costs in
  let n2, _ = Fabric.add_nf fab2 ~name:"prads2" ~impl:(Opennf_nfs.Prads.impl p2) ~costs in
  let gen2 = Opennf_trace.Gen.create ~seed:303 () in
  let schedule2, _ =
    Opennf_trace.Gen.steady_flows gen2 ~flows ~rate ~start:0.05
      ~duration:(handshakes +. 2.5) ()
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab2 at p) schedule2;
  Proc.spawn fab2.engine (fun () -> Controller.set_route fab2.ctrl Filter.any n1);
  Engine.schedule_at fab2.engine move_at (fun () ->
      Proc.spawn fab2.engine (fun () ->
          ignore
            (Move.run_exn fab2.ctrl
               (Move.spec ~src:n1 ~dst:n2 ~filter:Filter.any
                  ~guarantee:Move.No_guarantee ~parallel:true ()))));
  Fabric.run fab2;
  ng_drops := Runtime.tombstone_dropped r1;
  ignore rt1;
  (Move.duration (Option.get !lf), !ng_drops)

let row label (lf_time, drops) =
  [ label; H.ms lf_time; string_of_int drops ]

let header = [ "setting"; "LF move (ms)"; "NG drops" ]

let run () =
  H.section "Ablation: flow-mod install delay";
  H.table ~header
    (List.map
       (fun d -> row (Printf.sprintf "%.0f ms" (1000.0 *. d)) (run_pair ~flow_mod_delay:d ()))
       [ 0.002; 0.010; 0.040 ]);
  H.note "Expected: NG drops grow with the delay (longer del-to-route window); LF time moves only slightly.";
  H.section "Ablation: control-connection bandwidth";
  H.table ~header
    (List.map
       (fun bw ->
         let config =
           { Controller.default_config with Controller.sw_bandwidth = Some bw }
         in
         row (Printf.sprintf "%.0f kB/s" (bw /. 1000.0)) (run_pair ~config ()))
       [ 200_000.0; 600_000.0; 2_400_000.0 ]);
  H.note "Expected: LF time falls as the event flush drains faster; NG drops barely move.";
  H.section "Ablation: per-chunk serialization cost";
  H.table ~header
    (List.map
       (fun ser ->
         let costs = { Costs.prads with Costs.serialize_chunk = ser } in
         row (Printf.sprintf "%.0f us" (1e6 *. ser)) (run_pair ~costs ()))
       [ 50e-6; 172e-6; 500e-6 ]);
  H.note
    "Expected: LF time tracks serialization (the get dominates). NG drops \
     move the other way: cheap serialization front-loads the per-chunk \
     deletes so flows sit tombstoned while the puts and route update \
     drain; expensive serialization paces the deletes late.";
  H.section "Ablation: controller per-message cost";
  H.table ~header
    (List.map
       (fun c ->
         let config = { Controller.default_config with Controller.msg_cost = c } in
         row (Printf.sprintf "%.0f us" (1e6 *. c)) (run_pair ~config ()))
       [ 5e-6; 25e-6; 100e-6 ]);
  H.note "Expected: a uniform shift of everything that flows through the controller."

let () = H.register ~id:"ablation" ~descr:"cost-model knob sweeps" run
