(* §8.4: prior NF control planes on the elastic-monitoring scenario.

   (a) VM replication: cloning Bro1 wholesale copies megabytes of
       unneeded state and produces bogus connection-log entries at both
       instances, because each instance holds connections whose traffic
       it never sees again. OpenNF moves only the HTTP flows' state and
       produces none.
   (b) Scaling without re-balancing active flows: new flows go to the
       new instance but existing flows stay pinned, so the old instance
       stays loaded until its longest flow ends — scale-in waits tens of
       minutes, versus a sub-second loss-free move. *)

module Engine = Opennf_sim.Engine
module Proc = Opennf_sim.Proc
module Costs = Opennf_sb.Costs
open Opennf_net
open Opennf
module H = Harness

let http_filter = Filter.make ~proto:Flow.Tcp ~dst_port:80 ()

(* Mixed workload: HTTP flows (dport 80) and other flows (dport 7000+). *)
let mixed_schedule gen ~rate ~duration =
  let http, http_keys =
    Opennf_trace.Gen.steady_flows gen ~flows:150 ~rate:(rate /. 2.0) ~start:0.1
      ~duration ()
  in
  let other, other_keys =
    Opennf_trace.Gen.steady_flows gen ~flows:150 ~rate:(rate /. 2.0) ~start:0.1
      ~duration
      ~src_net:(Ipaddr.v 10 9 0 0)
      ~dst_net:(Ipaddr.v 172 20 0 0)
      ()
  in
  (* Retarget "other" flows to a non-HTTP port. *)
  let other =
    List.map
      (fun ((at, p) : float * Packet.t) ->
        let key = p.Packet.key in
        let key =
          if key.Flow.dst_port = 80 then { key with Flow.dst_port = 7001 }
          else if key.Flow.src_port = 80 then { key with Flow.src_port = 7001 }
          else key
        in
        ( at,
          Packet.create ~id:p.Packet.id ~key ~flags:p.Packet.flags
            ~seq:p.Packet.seq ~payload:p.Packet.payload ~sent_at:p.Packet.sent_at
            () ))
      other
  in
  ( Opennf_trace.Gen.merge [ http; other ],
    http_keys,
    List.map
      (fun (k : Flow.key) ->
        if k.Flow.dst_port = 80 then { k with Flow.dst_port = 7001 } else k)
      other_keys )

type approach = Vm_clone | Opennf_move

let run_split approach =
  let fab = Fabric.create ~seed:66 () in
  let ids1 = Opennf_nfs.Ids.create () in
  let ids2 = Opennf_nfs.Ids.create () in
  let impl1 = Opennf_nfs.Ids.impl ids1 in
  let impl2 = Opennf_nfs.Ids.impl ids2 in
  let nf1, _ = Fabric.add_nf fab ~name:"bro1" ~impl:impl1 ~costs:Costs.bro in
  let nf2, _ = Fabric.add_nf fab ~name:"bro2" ~impl:impl2 ~costs:Costs.bro in
  let gen = Opennf_trace.Gen.create ~seed:12 () in
  let schedule, _, _ = mixed_schedule gen ~rate:1000.0 ~duration:8.0 in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  let vm_report = ref None in
  let mv_report = ref None in
  Proc.spawn fab.engine (fun () ->
      Controller.set_route fab.ctrl Filter.any nf1;
      Proc.sleep 4.0;
      (* Scale out: HTTP flows are rebalanced to bro2. *)
      match approach with
      | Vm_clone ->
        vm_report :=
          Some
            (Opennf_baseline.Vm_replication.clone ~src:impl1 ~dst:impl2
               ~needed:http_filter);
        Controller.set_route fab.ctrl http_filter nf2
      | Opennf_move ->
        mv_report :=
          Some
            (Move.run_exn fab.ctrl
               (Move.spec ~src:nf1 ~dst:nf2 ~filter:http_filter
                  ~scope:[ Opennf_state.Scope.Per; Opennf_state.Scope.Multi ]
                  ~guarantee:Move.Loss_free ~parallel:true ())));
  Fabric.run fab;
  (ids1, ids2, !vm_report, !mv_report)

(* (b) Sticky per-flow routing: heavy-tailed flow lengths mean the old
   instance drains extremely slowly after a scale-out. *)
let sticky_drain () =
  let fab = Fabric.create ~seed:44 () in
  let ids1 = Opennf_nfs.Ids.create () in
  let ids2 = Opennf_nfs.Ids.create () in
  let nf1, rt1 =
    Fabric.add_nf fab ~name:"bro1" ~impl:(Opennf_nfs.Ids.impl ids1)
      ~costs:Costs.bro
  in
  let nf2, _ =
    Fabric.add_nf fab ~name:"bro2" ~impl:(Opennf_nfs.Ids.impl ids2)
      ~costs:Costs.bro
  in
  let gen = Opennf_trace.Gen.create ~seed:21 () in
  let rng = Opennf_trace.Gen.rng gen in
  (* 80 flows with Pareto durations (scale 60s, shape 1.1, capped at
     1 hour): ~9-15% run longer than 25 minutes, echoing the paper. *)
  let scale_out_at = 120.0 in
  let flows =
    List.init 80 (fun i ->
        let dur =
          Float.min 3600.0
            (Opennf_util.Rng.pareto rng ~shape:1.1 ~scale:60.0)
        in
        let start = Opennf_util.Rng.float rng 100.0 in
        (i, start, dur))
  in
  let schedule =
    List.concat_map
      (fun (i, start, dur) ->
        let key =
          Flow.make
            ~src:(Ipaddr.v 10 3 (i / 250) (1 + (i mod 250)))
            ~dst:(Ipaddr.v 172 18 0 1) ~proto:Flow.Tcp ~sport:(15000 + i)
            ~dport:80 ()
        in
        let syn = Opennf_trace.Gen.packet gen ~at:start ~key ~flags:[ Syn ] () in
        (* One packet every 2 s keeps the flow alive without swamping
           the simulation. *)
        let n = int_of_float (dur /. 2.0) in
        let data =
          List.init n (fun j ->
              Opennf_trace.Gen.packet gen
                ~at:(start +. (2.0 *. float_of_int (j + 1)))
                ~key ~flags:[ Ack ] ~seq:(j + 1) ())
        in
        syn :: data)
      flows
  in
  List.iter (fun (at, p) -> Fabric.inject_at fab at p) schedule;
  let router = ref None in
  Proc.spawn fab.engine (fun () ->
      let r =
        Opennf_baseline.Flow_router.start fab.ctrl ~policy:(fun _ -> nf1) ()
      in
      router := Some r;
      Proc.sleep scale_out_at;
      (* Scale-out: only new flows go to bro2. *)
      Opennf_baseline.Flow_router.set_policy r (fun _ -> nf2));
  Fabric.run fab;
  ignore rt1;
  (* When did bro1 process its last packet after the policy change? *)
  let last_at_bro1 =
    List.fold_left
      (fun acc pkt ->
        match Audit.process_time fab.audit ~pkt with
        | Some t -> Float.max acc t
        | None -> acc)
      0.0
      (Audit.processed_order ~nf:"bro1" fab.audit)
  in
  let long_flows =
    List.length (List.filter (fun (_, _, d) -> d > 1500.0) flows)
  in
  (scale_out_at, last_at_bro1, long_flows, List.length flows)

let run () =
  H.section "§8.4(a): VM replication vs OpenNF move (split HTTP to bro2)";
  let ids1_vm, ids2_vm, vm, _ = run_split Vm_clone in
  let ids1_nf, ids2_nf, _, mv = run_split Opennf_move in
  let vm = Option.get vm and mv = Option.get mv in
  H.table
    ~header:
      [
        "approach"; "state copied (KB)"; "unneeded (KB)";
        "bogus log entries bro1"; "bogus log entries bro2";
      ]
    [
      [
        "VM replication";
        H.kb vm.Opennf_baseline.Vm_replication.total_bytes;
        H.kb
          (vm.Opennf_baseline.Vm_replication.total_bytes
          - vm.Opennf_baseline.Vm_replication.needed_bytes);
        string_of_int (Opennf_nfs.Ids.bogus_log_entries ids1_vm);
        string_of_int (Opennf_nfs.Ids.bogus_log_entries ids2_vm);
      ];
      [
        "OpenNF move";
        H.kb mv.Move.state_bytes;
        "0.0";
        string_of_int (Opennf_nfs.Ids.bogus_log_entries ids1_nf);
        string_of_int (Opennf_nfs.Ids.bogus_log_entries ids2_nf);
      ];
    ];
  H.note
    "Expected shape: replication copies everything (unneeded state at \
     both instances) and leaves abruptly-terminated connections in both \
     logs; the move transfers only HTTP state and leaves clean logs.";
  H.section "§8.4(b): scale-in delay without re-balancing active flows";
  let scale_at, drained_at, long_flows, total = sticky_drain () in
  H.table
    ~header:[ "metric"; "value" ]
    [
      [ "scale-out at"; Printf.sprintf "%.0fs" scale_at ];
      [ "bro1 drained at"; Printf.sprintf "%.0fs" drained_at ];
      [
        "scale-in wait";
        Printf.sprintf "%.1f minutes" ((drained_at -. scale_at) /. 60.0);
      ];
      [
        "flows > 25 min";
        Printf.sprintf "%d of %d (%.0f%%)" long_flows total
          (100.0 *. float_of_int long_flows /. float_of_int total);
      ];
      [ "OpenNF loss-free move instead"; "~0.2s (Figure 10)" ];
    ];
  H.note
    "Expected shape: heavy-tailed flow durations keep the old instance \
     occupied for tens of minutes after scale-out (paper: >25 minutes, \
     ~9%% of flows longer than 25 min)."

let () = H.register ~id:"sec84" ~descr:"prior control planes comparison" run
